//! Umbrella crate for the TGOpt reproduction.
//!
//! Re-exports the workspace crates so examples and integration tests can use
//! a single dependency. See `README.md` for the architecture overview and
//! `DESIGN.md` for the system inventory.

pub use tg_datasets as datasets;
pub use tg_error as error;
pub use tg_graph as graph;
pub use tg_serve as serve;
pub use tg_telemetry as telemetry;
pub use tg_tensor as tensor;
pub use tgat;
pub use tgopt;
