//! Schema-drift gate for the `tg-xtask lint --format json` report and the
//! `tg-xtask effects --format json` dump.
//!
//! Both hand-rolled JSON writers' shapes are frozen behind
//! [`tg_xtask::SCHEMA_VERSION`]: the sorted field-path fingerprint
//! (`report::schema_paths` prefixed `report.`, plus
//! `report::effects_schema_paths` prefixed `effects.`) must match the
//! committed golden file `tests/golden/lint_schema.txt` exactly, in both
//! directions — the same discipline `tests/telemetry_schema.rs` applies to
//! telemetry snapshots. A field added, removed, or renamed fails this
//! suite until the golden is regenerated *and* the schema version is
//! bumped:
//!
//! ```sh
//! UPDATE_LINT_GOLDEN=1 cargo test --test lint_schema
//! ```

use tg_xtask::{render_json, EffectEngine, LintReport, SourceFile, SCHEMA_VERSION};

const GOLDEN: &str = include_str!("golden/lint_schema.txt");
const GOLDEN_PATH: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/lint_schema.txt");

fn golden_lines() -> Vec<String> {
    GOLDEN
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// A report with at least one finding, so the `findings[]` element paths
/// are exercised by the renderer.
fn sample_report() -> LintReport {
    let fixture = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/crates/xtask/fixtures/l9_fail.rs"
    );
    let text = std::fs::read_to_string(fixture).expect("l9 fixture exists");
    let src = tg_xtask::SourceFile::parse("l9_fail.rs".to_string(), text);
    let scope = tg_xtask::Scope { hot_path_alloc: true, ..Default::default() };
    let findings = tg_xtask::lint_source(&src, scope);
    assert!(!findings.is_empty(), "l9 fail fixture must fire");
    LintReport { findings, files_checked: 1 }
}

/// The combined fingerprint: every lint-report path under `report.`, every
/// effects-dump path under `effects.`, sorted as one list.
fn fingerprint() -> Vec<String> {
    let mut out: Vec<String> = tg_xtask::report::schema_paths()
        .iter()
        .map(|p| format!("report.{p}"))
        .chain(tg_xtask::report::effects_schema_paths().iter().map(|p| format!("effects.{p}")))
        .collect();
    out.sort();
    out
}

#[test]
fn fingerprint_matches_committed_golden() {
    let actual = fingerprint();
    if std::env::var_os("UPDATE_LINT_GOLDEN").is_some() {
        let mut text = String::from(
            "# Field-path fingerprint of the lint JSON report (report.*) and the\n\
             # effects dump (effects.*), from report::schema_paths and\n\
             # report::effects_schema_paths.\n\
             # Regenerate: UPDATE_LINT_GOLDEN=1 cargo test --test lint_schema\n\
             # Any diff here is a JSON schema change: bump tg_xtask SCHEMA_VERSION too.\n",
        );
        for path in &actual {
            text.push_str(path);
            text.push('\n');
        }
        std::fs::write(GOLDEN_PATH, text).expect("write golden");
        return;
    }
    let golden = golden_lines();
    let removed: Vec<&String> = golden.iter().filter(|p| !actual.contains(p)).collect();
    let added: Vec<&String> = actual.iter().filter(|p| !golden.contains(p)).collect();
    assert!(
        removed.is_empty() && added.is_empty(),
        "lint report schema drift detected.\n\
         paths in golden but missing from report: {removed:#?}\n\
         paths in report but not in golden: {added:#?}\n\
         If intentional: bump tg_xtask::SCHEMA_VERSION and regenerate with\n\
         UPDATE_LINT_GOLDEN=1 cargo test --test lint_schema"
    );
}

#[test]
fn golden_file_is_sorted_and_deduped() {
    if std::env::var_os("UPDATE_LINT_GOLDEN").is_some() {
        return; // being rewritten by the sibling test this run
    }
    let golden = golden_lines();
    assert!(!golden.is_empty(), "golden fingerprint must not be empty");
    let mut sorted = golden.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(golden, sorted, "golden file must stay sorted and duplicate-free");
}

/// The rendered JSON carries the current schema version first and contains
/// every key the fingerprint promises; the empty-report shape is exactly
/// the fingerprint's top-level key set, so an unfingerprinted key can't
/// slip into the writer unnoticed either.
#[test]
fn rendered_report_covers_the_fingerprint() {
    let json = render_json(&sample_report());
    assert!(
        json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")),
        "schema_version must be the first emitted field: {json}"
    );
    for path in tg_xtask::report::schema_paths() {
        let (field, _ty) = path.split_once(':').expect("path: type convention");
        let key = field.trim().rsplit('.').next().expect("nonempty").trim_end_matches("[]");
        assert!(
            json.contains(&format!("\"{key}\":")),
            "fingerprinted key {key} (from {path}) missing in rendered JSON"
        );
    }
    // Reverse direction: the fully deterministic empty report must consist
    // of exactly the fingerprint's top-level keys, in writer order.
    let empty = render_json(&LintReport { findings: vec![], files_checked: 0 });
    assert_eq!(
        empty,
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"files_checked\":0,\"count\":0,\"findings\":[]}}"
        ),
        "empty report emits a key outside (or missing from) the frozen shape"
    );
    let top_level: Vec<&str> = tg_xtask::report::schema_paths()
        .iter()
        .map(|p| p.split(':').next().expect("path").trim())
        .map(|f| f.split(&['.', '['][..]).next().expect("segment"))
        .collect();
    for key in ["schema_version", "files_checked", "count", "findings"] {
        assert!(
            top_level.contains(&key),
            "writer key {key} is not fingerprinted in schema_paths"
        );
    }
}

/// Same coverage discipline for the effects dump: a tiny engine with one
/// allocating root exercises the `roots[]` element paths, and every
/// fingerprinted key must appear in the rendered JSON.
#[test]
fn rendered_effects_dump_covers_the_fingerprint() {
    let src = SourceFile::parse(
        "t.rs",
        "// hot-path-root(alloc)\nfn hot() { let mut v = Vec::new(); v.push(1u64); }\n",
    );
    let json = EffectEngine::build(std::slice::from_ref(&src)).render_json();
    assert!(
        json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")),
        "schema_version must be the first emitted field: {json}"
    );
    assert!(json.contains("\"effects\":[\"alloc\"]"), "the root's alloc effect is missing: {json}");
    for path in tg_xtask::report::effects_schema_paths() {
        let (field, _ty) = path.split_once(':').expect("path: type convention");
        let key = field.trim().rsplit('.').next().expect("nonempty").trim_end_matches("[]");
        assert!(
            json.contains(&format!("\"{key}\":")),
            "fingerprinted key {key} (from {path}) missing in rendered effects JSON"
        );
    }
}
