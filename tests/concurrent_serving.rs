//! Concurrent inference serving: several engines on separate threads share
//! one memoization cache over the same graph. The sharded tables are
//! internally synchronized and every cached value is a deterministic
//! function of its key, so concurrency can only change *who computes* an
//! embedding — never its value.

use std::sync::Arc;
use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

#[test]
fn threads_sharing_a_cache_produce_correct_embeddings() {
    let spec = spec_by_name("snap-email").unwrap();
    let data = generate(&spec, 0.01, 21).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, 3).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };

    // Overlapping query workloads for 4 serving threads.
    let t = data.stream.max_time() * 1.01;
    let workloads: Vec<(Vec<u32>, Vec<f32>)> = (0..4)
        .map(|w| {
            let ns: Vec<u32> = (0..60)
                .map(|i| data.stream.edges()[(i * (w + 3)) % data.stream.len()].src)
                .collect();
            let ts = vec![t; ns.len()];
            (ns, ts)
        })
        .collect();

    // Ground truth from the baseline.
    let expected: Vec<Tensor> = workloads
        .iter()
        .map(|(ns, ts)| BaselineEngine::new(&params, ctx).embed_batch(ns, ts))
        .collect();

    let seed_engine = TgoptEngine::new(&params, ctx, OptConfig::all());
    let shared = seed_engine.shared_cache();

    let results: Vec<Tensor> = std::thread::scope(|scope| {
        let handles: Vec<_> = workloads
            .iter()
            .map(|(ns, ts)| {
                let shared = Arc::clone(&shared);
                let params = &params;
                scope.spawn(move || {
                    let mut eng = TgoptEngine::with_cache(
                        params,
                        ctx,
                        OptConfig::all(),
                        shared,
                        Default::default(),
                    );
                    // Two passes: the second is served mostly from entries
                    // that *other* threads may have stored.
                    let _ = eng.embed_batch(ns, ts).unwrap();
                    eng.embed_batch(ns, ts).unwrap()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread panicked")).collect()
    });

    for (i, (got, want)) in results.iter().zip(&expected).enumerate() {
        let diff = got.max_abs_diff(want);
        assert!(diff < 1e-4, "thread {i}: max diff {diff} vs baseline");
    }
    assert!(!shared.is_empty(), "threads populated the shared cache");
    assert!(shared.len() <= shared.limit());
}

#[test]
fn shared_cache_under_tiny_limit_stays_bounded_and_correct() {
    let spec = spec_by_name("snap-msg").unwrap();
    let data = generate(&spec, 0.05, 2).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, 3).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };
    let opt = OptConfig::all().with_cache_limit(32);
    let seed_engine = TgoptEngine::new(&params, ctx, opt);
    let shared = seed_engine.shared_cache();

    let checks: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..3)
            .map(|_| {
                let shared = Arc::clone(&shared);
                let params = &params;
                let data = &data;
                scope.spawn(move || {
                    let mut eng = TgoptEngine::with_cache(
                        params,
                        ctx,
                        opt,
                        shared,
                        Default::default(),
                    );
                    let mut sum = 0.0f64;
                    for batch in BatchIter::new(&data.stream, 100) {
                        let (ns, ts) = batch.targets();
                        let h = eng.embed_batch(&ns, &ts).unwrap();
                        sum += h.as_slice().iter().map(|&v| v as f64).sum::<f64>();
                    }
                    sum
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("thread panicked")).collect()
    });

    // Each thread replayed the identical workload: identical checksums.
    for w in checks.windows(2) {
        let drift = (w[0] - w[1]).abs() / w[0].abs().max(1.0);
        assert!(drift < 1e-9, "threads disagree: {checks:?}");
    }
    assert!(shared.len() <= 32, "shared cache exceeded its limit: {}", shared.len());
    assert!(shared.total_evictions() > 0);
}
