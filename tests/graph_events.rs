//! Future-work (§7) graph-change events: additions are reuse-safe, cache
//! carry-over across engine rebuilds works, and deletions restore
//! correctness after targeted invalidation.

use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::TemporalGraph;
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn cfg(edge_dim: usize) -> TgatConfig {
    TgatConfig { dim: 8, edge_dim, time_dim: 8, n_layers: 2, n_heads: 2, n_neighbors: 4 }
}

#[test]
fn additions_preserve_cached_results_and_reuse() {
    let spec = spec_by_name("snap-msg").unwrap();
    let data = generate(&spec, 0.05, 9).unwrap();
    let cfg = cfg(data.dim());
    let params = TgatParams::init(cfg, 6).unwrap();
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let edges = data.stream.edges();
    let split = edges.len() / 2;

    let mut graph = TemporalGraph::with_nodes(data.stream.num_nodes());
    for e in &edges[..split] {
        graph.insert(e);
    }
    let t = edges[split - 1].time + 1.0;
    let ns: Vec<u32> = (0..30).map(|i| edges[i * 3 % split].src).collect();
    let ts = vec![t; ns.len()];

    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
    let h_before = eng.embed_batch(&ns, &ts).unwrap();

    // Grow the graph; carry the cache.
    let (cache, counters) = eng.into_cache();
    for e in &edges[split..] {
        graph.insert(e);
    }
    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut eng = TgoptEngine::with_cache(&params, ctx, OptConfig::all(), cache, counters);
    let before = eng.counters();
    let h_after = eng.embed_batch(&ns, &ts).unwrap();
    let delta = eng.counters().delta_since(&before);

    // Same (node, t) targets: additions are screened out by t_j < t, so
    // results are identical and reuse is total for the cached layer.
    assert_eq!(h_before.max_abs_diff(&h_after), 0.0);
    assert_eq!(delta.cache_hits, delta.cache_lookups);
    assert_eq!(delta.cache_stores, 0);

    // And the cold baseline on the grown graph agrees.
    let hb = BaselineEngine::new(&params, ctx).embed_batch(&ns, &ts);
    assert!(hb.max_abs_diff(&h_after) < 1e-4);
}

#[test]
fn deletion_with_invalidation_matches_fresh_baseline() {
    let spec = spec_by_name("snap-email").unwrap();
    let data = generate(&spec, 0.01, 9).unwrap();
    let cfg = cfg(data.dim());
    let params = TgatParams::init(cfg, 6).unwrap();
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let mut graph = TemporalGraph::from_stream(&data.stream);
    let edges = data.stream.edges();
    let t = data.stream.max_time() + 1.0;
    let ns: Vec<u32> = (0..40).map(|i| edges[i * 5 % edges.len()].src).collect();
    let ts = vec![t; ns.len()];

    // Warm the cache.
    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
    let _ = eng.embed_batch(&ns, &ts).unwrap();

    // Delete an edge whose endpoint is among the queried targets.
    let victim = *edges
        .iter()
        .rev()
        .find(|e| ns.contains(&e.src))
        .expect("some queried node has an edge");
    let (cache, counters) = eng.into_cache();
    assert!(graph.delete_edge(victim.src, victim.dst, victim.eid));
    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut eng = TgoptEngine::with_cache(&params, ctx, OptConfig::all(), cache, counters);

    // For a 2-layer model only the endpoints' layer-1 embeddings can embed
    // the deleted interaction, so invalidating them restores correctness.
    eng.invalidate_node(victim.src);
    eng.invalidate_node(victim.dst);
    let h_opt = eng.embed_batch(&ns, &ts).unwrap();
    let h_base = BaselineEngine::new(&params, ctx).embed_batch(&ns, &ts);
    assert!(
        h_opt.max_abs_diff(&h_base) < 1e-4,
        "deletion + invalidation must match a fresh baseline"
    );
}

#[test]
fn deep_model_deletion_needs_multi_hop_invalidation() {
    // With 3 layers, layer-2 embeddings of the endpoints' *neighbors* also
    // embed a deleted interaction; `invalidate_edge_deletion` handles the
    // hop expansion that per-endpoint invalidation misses.
    let spec = spec_by_name("snap-msg").unwrap();
    let data = generate(&spec, 0.05, 12).unwrap();
    let cfg3 = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 3,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg3, 6).unwrap();
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg3.dim);
    let mut graph = TemporalGraph::from_stream(&data.stream);
    let edges = data.stream.edges();
    let victim = *edges.last().unwrap();
    let t = data.stream.max_time() * 1.01;
    // Query the victim's most recent *neighbors* too, whose deep embeddings
    // transitively include the deleted edge.
    let mut ns = vec![victim.src, victim.dst];
    ns.extend(graph.k_hop_nodes(victim.src, 1));
    ns.truncate(12);
    let ts = vec![t; ns.len()];

    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
    let _ = eng.embed_batch(&ns, &ts).unwrap();

    let (cache, counters) = eng.into_cache();
    assert!(graph.delete_edge(victim.src, victim.dst, victim.eid));
    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut eng = TgoptEngine::with_cache(&params, ctx, OptConfig::all(), cache, counters);
    let removed = eng.invalidate_edge_deletion(victim.src, victim.dst);
    assert!(removed > 0);

    let h_opt = eng.embed_batch(&ns, &ts).unwrap();
    let h_base = BaselineEngine::new(&params, ctx).embed_batch(&ns, &ts);
    assert!(
        h_opt.max_abs_diff(&h_base) < 1e-4,
        "multi-hop invalidation must restore correctness for a 3-layer model"
    );
}

#[test]
fn deletion_without_invalidation_can_go_stale() {
    // Documents *why* invalidation is needed: skipping it leaves the cache
    // serving pre-deletion history. (If the deleted edge was not in any
    // sampled neighborhood this can coincide, so pick the victim to be the
    // most recent interaction of a queried node.)
    let spec = spec_by_name("snap-msg").unwrap();
    let data = generate(&spec, 0.05, 10).unwrap();
    let cfg = cfg(data.dim());
    let params = TgatParams::init(cfg, 8).unwrap();
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let mut graph = TemporalGraph::from_stream(&data.stream);
    let edges = data.stream.edges();
    let victim = *edges.last().unwrap();
    // A relative bump: large f32 timestamps have ulp > 1, so `+ 1.0` could
    // round back to max_time and exclude the victim via `t_j < t` already.
    let t = data.stream.max_time() * 1.01;
    let ns = vec![victim.src];
    let ts = vec![t];

    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
    let _ = eng.embed_batch(&ns, &ts).unwrap();

    let (cache, counters) = eng.into_cache();
    graph.delete_edge(victim.src, victim.dst, victim.eid);
    let ctx = GraphContext { graph: &graph, node_features: &node_features, edge_features: &data.edge_features };
    let mut stale = TgoptEngine::with_cache(&params, ctx, OptConfig::all(), cache, counters);
    let h_stale = stale.embed_batch(&ns, &ts).unwrap();
    let h_fresh = BaselineEngine::new(&params, ctx).embed_batch(&ns, &ts);

    // The uncached top layer re-samples the mutated graph, but the cached
    // layer-1 embedding of (src, t) still reflects pre-deletion history, so
    // the result no longer matches the fresh graph state...
    assert!(
        h_fresh.max_abs_diff(&h_stale) > 1e-6,
        "deleting a node's most recent edge must change its embedding"
    );
    // ...until the node is invalidated, which restores agreement.
    stale.invalidate_node(victim.src);
    stale.invalidate_node(victim.dst);
    let h_repaired = stale.embed_batch(&ns, &ts).unwrap();
    assert!(h_fresh.max_abs_diff(&h_repaired) < 1e-4);
}
