//! The static-analysis gate: `cargo test` fails on any lint finding, so a
//! violation can't land without either fixing it or leaving an explicit
//! `// lint: allow(<name>, <reason>)` annotation in the diff.
//!
//! The same analysis runs standalone as `cargo run -p tg-xtask -- lint`
//! (add `--format json` for machine-readable output).

use std::path::Path;

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = tg_xtask::lint_workspace(root).expect("lint walk failed");
    assert!(
        report.files_checked > 10,
        "lint walked only {} files — scope lists are stale",
        report.files_checked
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        tg_xtask::render_text(&report)
    );
}
