//! The static-analysis gate: `cargo test` fails on any lint finding, so a
//! violation can't land without either fixing it or leaving an explicit
//! `// lint: allow(<name>, <reason>)` annotation in the diff.
//!
//! The same analysis runs standalone as `cargo run -p tg-xtask -- lint`
//! (add `--format json` for machine-readable output).

use std::path::Path;
use tg_xtask::{effects, lint_source, CallGraph, EffectEngine, Scope, SourceFile};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = tg_xtask::lint_workspace(root).expect("lint walk failed");
    assert!(
        report.files_checked > 10,
        "lint walked only {} files — scope lists are stale",
        report.files_checked
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        tg_xtask::render_text(&report)
    );
}

/// The concurrency rules (L5 lock-order, L6 atomics, L7 lock-across, L8
/// unguarded-counter) each keep a pass/fail fixture pair under
/// `crates/xtask/fixtures/`. This gate re-checks them from outside the
/// analyzer crate: every fail fixture must still fire and every pass
/// fixture must stay clean, so a rule that silently stops matching (or
/// starts over-matching) fails `cargo test` at the workspace level too.
#[test]
fn concurrency_fixture_pairs_hold() {
    check_fixture_pairs(&[
        ("l5", Scope { lock_order: true, ..Scope::default() }),
        ("l6", Scope { atomics: true, ..Scope::default() }),
        ("l7", Scope { lock_across: true, ..Scope::default() }),
        ("l8", Scope { counters: true, ..Scope::default() }),
    ]);
}

/// Same gate for the call-graph reachability lints (L9 hot-path-alloc,
/// L10 panic-reach, L11 float-determinism, L12 error-coverage): each fail
/// fixture must fire through the single-file reachability analysis, each
/// pass fixture must stay clean under the same scope.
#[test]
fn reachability_fixture_pairs_hold() {
    check_fixture_pairs(&[
        ("l9", Scope { hot_path_alloc: true, ..Scope::default() }),
        ("l10", Scope { panic_reach: true, ..Scope::default() }),
        ("l11", Scope { float_determinism: true, ..Scope::default() }),
        ("l12", Scope { error_coverage: true, ..Scope::default() }),
    ]);
}

/// Same gate for the effect-inference lints (L13 lock-held-effects, L14
/// deadline-safety, L15 unsafe-audit): the fail fixtures must fire through
/// the summary engine, the pass fixtures must stay clean (hoisted calls,
/// bounded waits, justified unsafe).
#[test]
fn effect_fixture_pairs_hold() {
    check_fixture_pairs(&[
        ("l13", Scope { lock_held: true, ..Scope::default() }),
        ("l14", Scope { deadline: true, ..Scope::default() }),
        ("l15", Scope { unsafe_audit: true, ..Scope::default() }),
    ]);
}

/// The acceptance bar for the annotation escape hatches: deleting any one
/// justification from a pass fixture must flip the relevant lint to
/// failing. Each entry is `(fixture, marker-to-delete, scope)`.
#[test]
fn deleting_one_annotation_trips_the_relevant_lint() {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/xtask/fixtures");
    let cases: &[(&str, &str, Scope)] = &[
        ("l9_pass.rs", "alloc-ok:", Scope { hot_path_alloc: true, ..Scope::default() }),
        ("l13_pass.rs", "lint: allow(", Scope { lock_held: true, ..Scope::default() }),
        ("l14_pass.rs", "bounded-by:", Scope { deadline: true, ..Scope::default() }),
        ("l15_pass.rs", "safety:", Scope { unsafe_audit: true, ..Scope::default() }),
    ];
    for (name, marker, scope) in cases {
        let text = std::fs::read_to_string(fixtures.join(name)).expect("fixture exists");
        assert!(text.contains(marker), "{name} no longer carries `{marker}`");
        let stripped = text.replace(marker, "gone:");
        let findings = lint_source(&SourceFile::parse(name.to_string(), stripped), *scope);
        assert!(
            !findings.is_empty(),
            "{name} stayed clean after deleting `{marker}` — the escape hatch is dead weight"
        );
    }
}

/// L16 end to end through the library API: adding an allocation to a
/// hot-path root both fires L9 and changes the root's effect summary, so
/// a committed `effects.lock` from before the change reports drift.
#[test]
fn adding_an_allocation_to_a_hot_path_root_trips_alloc_and_drift() {
    let clean = "// hot-path-root(alloc)\nfn hot(x: u64) -> u64 { x + 1 }\n";
    let dirty =
        "// hot-path-root(alloc)\nfn hot(x: u64) -> u64 { let mut v = Vec::new(); v.push(x); x + 1 }\n";
    let scope = Scope { hot_path_alloc: true, ..Scope::default() };
    assert!(lint_source(&SourceFile::parse("t.rs", clean), scope).is_empty());
    assert!(
        !lint_source(&SourceFile::parse("t.rs", dirty), scope).is_empty(),
        "the new Vec::new() must fire hot-path-alloc"
    );
    let before = SourceFile::parse("t.rs", clean);
    let lock = effects::serialize_lock(
        &EffectEngine::build(std::slice::from_ref(&before)).root_summaries(),
    );
    let after = SourceFile::parse("t.rs", dirty);
    let roots = EffectEngine::build(std::slice::from_ref(&after)).root_summaries();
    let drift = effects::check_drift(&roots, Some(&lock));
    assert!(
        drift.iter().any(|f| f.message.contains("appeared in the summary")),
        "effects-drift must report the new alloc effect: {drift:?}"
    );
}

/// The refactor's equivalence guarantee: L9/L10 derived from the effect
/// summaries must be byte-identical to the original per-root BFS twins
/// over the real workspace tree.
#[test]
fn summary_derived_reachability_matches_the_bfs_oracles() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let sources = tg_xtask::workspace_graph_sources(root).expect("workspace walk failed");
    let graph = CallGraph::build(&sources);
    let engine = EffectEngine::build(&sources);
    assert_eq!(
        engine.lint_hot_path_alloc(),
        graph.lint_hot_path_alloc_bfs(),
        "summary-derived L9 diverged from the BFS oracle"
    );
    assert_eq!(
        engine.lint_panic_reach(),
        graph.lint_panic_reach_bfs(),
        "summary-derived L10 diverged from the BFS oracle"
    );
}

/// CI artifacts must diff cleanly: the call-graph JSON/DOT dumps and the
/// effects dump are canonically ordered, so source discovery order cannot
/// leak into the output. Pinned against an exact rendering.
#[test]
fn callgraph_and_effects_artifacts_are_canonically_ordered() {
    let a = || SourceFile::parse("a.rs", "fn helper() { }\n");
    let b = || SourceFile::parse(
        "b.rs",
        "// hot-path-root(alloc)\nfn hot() { helper(); other(); }\nfn other() { }\n",
    );
    let fwd = [a(), b()];
    let rev = [b(), a()];
    let g_fwd = CallGraph::build(&fwd);
    let g_rev = CallGraph::build(&rev);
    assert_eq!(g_fwd.render_json(), g_rev.render_json(), "JSON depends on discovery order");
    assert_eq!(g_fwd.render_dot(), g_rev.render_dot(), "DOT depends on discovery order");
    assert_eq!(
        EffectEngine::build(&fwd).render_json(),
        EffectEngine::build(&rev).render_json(),
        "effects JSON depends on discovery order"
    );
    assert_eq!(
        g_fwd.render_dot(),
        "digraph hot_paths {\n  rankdir=LR;\n  node [shape=box];\n\
         \x20 n0 [label=\"helper\\na.rs:1\", color=blue];\n\
         \x20 n1 [label=\"hot\\nb.rs:2\", color=red];\n\
         \x20 n2 [label=\"other\\nb.rs:3\", color=blue];\n\
         \x20 n1 -> n0;\n\
         \x20 n1 -> n2;\n}\n"
    );
}

fn check_fixture_pairs(cases: &[(&str, Scope)]) {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/xtask/fixtures");
    for (lint, scope) in cases {
        for (suffix, must_fire) in [("fail", true), ("pass", false)] {
            let name = format!("{lint}_{suffix}.rs");
            let text = std::fs::read_to_string(fixtures.join(&name))
                .unwrap_or_else(|e| panic!("missing fixture {name}: {e}"));
            let findings = lint_source(&SourceFile::parse(name.clone(), text), *scope);
            if must_fire {
                assert!(!findings.is_empty(), "{name} must produce findings");
            } else {
                assert!(findings.is_empty(), "{name} must be clean, got: {findings:?}");
            }
        }
    }
}
