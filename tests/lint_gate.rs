//! The static-analysis gate: `cargo test` fails on any lint finding, so a
//! violation can't land without either fixing it or leaving an explicit
//! `// lint: allow(<name>, <reason>)` annotation in the diff.
//!
//! The same analysis runs standalone as `cargo run -p tg-xtask -- lint`
//! (add `--format json` for machine-readable output).

use std::path::Path;
use tg_xtask::{lint_source, Scope, SourceFile};

#[test]
fn workspace_is_lint_clean() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let report = tg_xtask::lint_workspace(root).expect("lint walk failed");
    assert!(
        report.files_checked > 10,
        "lint walked only {} files — scope lists are stale",
        report.files_checked
    );
    assert!(
        report.is_clean(),
        "workspace has lint findings:\n{}",
        tg_xtask::render_text(&report)
    );
}

/// The concurrency rules (L5 lock-order, L6 atomics, L7 lock-across, L8
/// unguarded-counter) each keep a pass/fail fixture pair under
/// `crates/xtask/fixtures/`. This gate re-checks them from outside the
/// analyzer crate: every fail fixture must still fire and every pass
/// fixture must stay clean, so a rule that silently stops matching (or
/// starts over-matching) fails `cargo test` at the workspace level too.
#[test]
fn concurrency_fixture_pairs_hold() {
    check_fixture_pairs(&[
        ("l5", Scope { lock_order: true, ..Scope::default() }),
        ("l6", Scope { atomics: true, ..Scope::default() }),
        ("l7", Scope { lock_across: true, ..Scope::default() }),
        ("l8", Scope { counters: true, ..Scope::default() }),
    ]);
}

/// Same gate for the call-graph reachability lints (L9 hot-path-alloc,
/// L10 panic-reach, L11 float-determinism, L12 error-coverage): each fail
/// fixture must fire through the single-file reachability analysis, each
/// pass fixture must stay clean under the same scope.
#[test]
fn reachability_fixture_pairs_hold() {
    check_fixture_pairs(&[
        ("l9", Scope { hot_path_alloc: true, ..Scope::default() }),
        ("l10", Scope { panic_reach: true, ..Scope::default() }),
        ("l11", Scope { float_determinism: true, ..Scope::default() }),
        ("l12", Scope { error_coverage: true, ..Scope::default() }),
    ]);
}

fn check_fixture_pairs(cases: &[(&str, Scope)]) {
    let fixtures = Path::new(env!("CARGO_MANIFEST_DIR")).join("crates/xtask/fixtures");
    for (lint, scope) in cases {
        for (suffix, must_fire) in [("fail", true), ("pass", false)] {
            let name = format!("{lint}_{suffix}.rs");
            let text = std::fs::read_to_string(fixtures.join(&name))
                .unwrap_or_else(|e| panic!("missing fixture {name}: {e}"));
            let findings = lint_source(&SourceFile::parse(name.clone(), text), *scope);
            if must_fire {
                assert!(!findings.is_empty(), "{name} must produce findings");
            } else {
                assert!(findings.is_empty(), "{name} must be clean, got: {findings:?}");
            }
        }
    }
}
