#![cfg(loom)]
//! Loom models of the three cache/serve hot-path protocols (see DESIGN.md
//! "Concurrency model"). Compiled only under `--cfg loom`:
//!
//! ```sh
//! RUSTFLAGS="--cfg loom" cargo test --test loom_concurrency --release
//! ```
//!
//! `LOOM_ITERATIONS` (default 64) controls how many seeded schedules each
//! model explores. The vendored `loom` is a randomized-interleaving shim,
//! not exhaustive DPOR — see vendor/loom's crate docs — so these models
//! drive the *real* `tgopt::EmbedCache` and `tg_serve::BoundedQueue` with
//! real threads; only the Ticket/Slot protocol is mirrored (the `Slot`
//! type is `pub(crate)`).

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, Condvar, Mutex};
use loom::thread;
use std::time::Duration;
use tg_graph::{Edge, LiveGraph, NodeId, TemporalGraph};
use tg_serve::BoundedQueue;
use tg_telemetry::LatencyHistogram;
use tg_tensor::Tensor;
use tgopt::{pack_key, EmbedCache};

/// Mirror of `tg_serve::request::Slot`'s first-write-wins protocol
/// (`fulfill` + consuming `wait`); the real type is crate-private.
struct SlotModel {
    cell: Mutex<Option<u32>>,
    ready: Condvar,
}

impl SlotModel {
    fn new() -> Self {
        Self { cell: Mutex::new(None), ready: Condvar::new() }
    }

    /// Returns true if this call's value won the slot.
    fn fulfill(&self, value: u32) -> bool {
        let mut cell = self.cell.lock().unwrap();
        if cell.is_none() {
            *cell = Some(value);
            drop(cell);
            self.ready.notify_all();
            true
        } else {
            false
        }
    }

    fn wait(&self) -> u32 {
        let mut cell = self.cell.lock().unwrap();
        loop {
            if let Some(v) = cell.take() {
                return v;
            }
            cell = self.ready.wait(cell).unwrap();
        }
    }
}

/// (a) Ticket/Slot scatter: two racing fulfillments (a batch result vs a
/// deadline rejection) produce exactly one winner and the waiter observes
/// exactly that winner's value — no lost write, no double completion.
#[test]
fn slot_first_write_wins_under_racing_fulfillments() {
    static ITERS: AtomicUsize = AtomicUsize::new(0);
    loom::model(|| {
        ITERS.fetch_add(1, Ordering::SeqCst);
        let slot = Arc::new(SlotModel::new());
        let s1 = Arc::clone(&slot);
        let s2 = Arc::clone(&slot);
        let t1 = thread::spawn(move || s1.fulfill(1));
        let t2 = thread::spawn(move || s2.fulfill(2));
        let w1 = t1.join().unwrap();
        let w2 = t2.join().unwrap();
        // Exactly one fulfillment wins; the other is ignored.
        assert!(w1 ^ w2, "exactly one writer must win (got w1={w1}, w2={w2})");
        let observed = slot.wait();
        let winner = if w1 { 1 } else { 2 };
        assert_eq!(observed, winner, "waiter must observe the winning write");
    });
    assert!(ITERS.load(Ordering::SeqCst) > 1, "model must explore more than one schedule");
}

/// (e) LiveGraph epoch publish vs reader pin: a writer appends edges —
/// crossing the compaction threshold mid-stream so a generation swap
/// races the readers — while one thread repeatedly takes fresh views and
/// a view pinned before the first append is held across the whole run.
/// Epochs only advance, every view is internally consistent (each
/// visible edge contributes exactly two adjacency postings, so a
/// half-published append would break the identity), and the pinned
/// snapshot is immutable even after compaction replaced the generation
/// beneath it.
#[test]
fn live_graph_epoch_publish_never_tears_a_view() {
    static ITERS: AtomicUsize = AtomicUsize::new(0);
    const N_NODES: u32 = 4;

    fn postings(v: &tg_graph::GraphView) -> u64 {
        (0..N_NODES).map(|n| v.hist_len_before(n as NodeId, 1e9) as u64).sum()
    }

    loom::model(|| {
        ITERS.fetch_add(1, Ordering::SeqCst);
        let mut base = TemporalGraph::with_nodes(N_NODES as usize);
        base.insert(&Edge { src: 0, dst: 1, time: 1.0, eid: 0 });
        base.insert(&Edge { src: 1, dst: 2, time: 2.0, eid: 1 });
        base.freeze();
        let live = Arc::new(LiveGraph::new(base).with_compact_threshold(2));

        let pinned = live.view();
        assert_eq!(pinned.num_edges(), 2);

        let g = Arc::clone(&live);
        let writer = thread::spawn(move || {
            for i in 0..3u32 {
                // Serialized appends get contiguous sequence numbers; the
                // second one crosses the threshold and compacts inline.
                let seq = g.append(&Edge {
                    src: i % N_NODES,
                    dst: (i + 2) % N_NODES,
                    time: 3.0 + i as f32,
                    eid: 2 + i,
                });
                assert_eq!(seq, 2 + u64::from(i), "appends must publish contiguous seqs");
                thread::yield_now();
            }
        });

        let g = Arc::clone(&live);
        let reader = thread::spawn(move || {
            let mut last = 0u64;
            for _ in 0..4 {
                let v = g.view();
                let epoch = v.epoch();
                assert!(epoch >= last, "epoch went backwards: {last} -> {epoch}");
                last = epoch;
                assert_eq!(v.num_edges(), epoch, "view visibility must equal its epoch");
                assert_eq!(
                    postings(&v),
                    2 * v.num_edges(),
                    "torn view at epoch {epoch}: postings do not match visible edges"
                );
                thread::yield_now();
            }
        });

        writer.join().unwrap();
        reader.join().unwrap();

        // The pinned pre-write snapshot never moved, even though the
        // writer's inline compaction swapped the generation under it.
        assert_eq!(pinned.num_edges(), 2, "pinned view must stay frozen");
        assert_eq!(postings(&pinned), 4, "pinned view postings must stay frozen");
        let final_view = live.view();
        assert_eq!(final_view.num_edges(), 5);
        assert_eq!(postings(&final_view), 10);
        assert!(live.ingest_stats().compactions >= 1, "threshold 2 must force a compaction");
    });
    assert!(ITERS.load(Ordering::SeqCst) > 1, "model must explore more than one schedule");
}

/// (b) EmbedCache store/lookup vs `invalidate_node`: after a writer, a
/// reader, and an invalidator race, the atomic accounting (`len()`)
/// agrees with the actual live entries, never underflows (an underflow
/// wraps a usize and would blow the `<= limit` bound), and the capacity
/// limit holds.
#[test]
fn cache_accounting_survives_store_lookup_invalidate_race() {
    static ITERS: AtomicUsize = AtomicUsize::new(0);
    loom::model(|| {
        ITERS.fetch_add(1, Ordering::SeqCst);
        let cache = Arc::new(EmbedCache::new(4, 2));

        let c = Arc::clone(&cache);
        let writer = thread::spawn(move || {
            for t in 0..3u32 {
                let keys = [pack_key(7, t as f32), pack_key(100 + t, 1.0)];
                let h = Tensor::from_vec(2, 2, vec![t as f32, 1.0, t as f32, 2.0]);
                c.store(&keys, &h, false).unwrap();
            }
        });

        let c = Arc::clone(&cache);
        let invalidator = thread::spawn(move || {
            let mut removed = 0;
            for _ in 0..2 {
                removed += c.invalidate_node(7);
                thread::yield_now();
            }
            removed
        });

        let c = Arc::clone(&cache);
        let reader = thread::spawn(move || {
            let mut out = Tensor::zeros(1, 2);
            for t in 0..3u32 {
                let hit = c.lookup(&[pack_key(7, t as f32)], &mut out, false).unwrap();
                if hit[0] {
                    // A hit row is a fully-written row, never a torn one.
                    assert_eq!(out.row(0), &[t as f32, 1.0], "lookup returned a torn row");
                }
            }
        });

        writer.join().unwrap();
        invalidator.join().unwrap();
        reader.join().unwrap();

        let live = cache.export_fifo_order().len();
        assert_eq!(
            cache.len(),
            live,
            "atomic count diverged from live entries (underflow or lost accounting)"
        );
        assert!(cache.len() <= cache.limit(), "capacity bound violated: {}", cache.len());
    });
    assert!(ITERS.load(Ordering::SeqCst) > 1, "model must explore more than one schedule");
}

/// (c) BoundedQueue close/backpressure handshake: every accepted push is
/// popped exactly once (no lost or duplicated items), rejected pushes are
/// really rejected, close wakes the blocked consumer, and the backlog
/// never exceeds capacity.
#[test]
fn bounded_queue_close_backpressure_handshake() {
    static ITERS: AtomicUsize = AtomicUsize::new(0);
    loom::model(|| {
        ITERS.fetch_add(1, Ordering::SeqCst);
        let queue: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(2));

        let producers: Vec<_> = (0..2u32)
            .map(|p| {
                let q = Arc::clone(&queue);
                thread::spawn(move || {
                    let mut accepted = Vec::new();
                    for i in 0..3u32 {
                        let item = p * 10 + i;
                        if q.push(item).is_ok() {
                            accepted.push(item);
                        }
                        assert!(q.len() <= q.capacity(), "backlog exceeded capacity");
                        thread::yield_now();
                    }
                    accepted
                })
            })
            .collect();

        let q = Arc::clone(&queue);
        let consumer = thread::spawn(move || {
            let mut popped = Vec::new();
            while let Some(wave) = q.pop_wave(2, Duration::ZERO) {
                assert!(!wave.is_empty(), "pop_wave returned an empty wave");
                assert!(wave.len() <= 2, "wave exceeded max");
                popped.extend(wave);
            }
            popped
        });

        let mut accepted: Vec<u32> =
            producers.into_iter().flat_map(|t| t.join().unwrap()).collect();
        // Consumer exits only once the queue is closed *and* drained.
        queue.close();
        assert!(queue.is_closed());
        assert!(queue.push(99).is_err(), "push after close must be rejected");

        let mut popped = consumer.join().unwrap();
        accepted.sort_unstable();
        popped.sort_unstable();
        assert_eq!(popped, accepted, "every accepted item pops exactly once");
        assert_eq!(queue.len(), 0, "drained queue must account to empty");
    });
    assert!(ITERS.load(Ordering::SeqCst) > 1, "model must explore more than one schedule");
}

/// (d) Latency histogram conservation: concurrent `record()`s from two
/// recorder threads race against a `merge_from` into a sink histogram.
/// Every recorded sample must land in exactly one bucket (count equals the
/// bucket sum), nothing is lost or double-counted across the merge, and a
/// mid-race snapshot is never ahead of what was recorded.
#[test]
fn latency_histogram_conserves_counts_under_concurrent_record_and_merge() {
    static ITERS: AtomicUsize = AtomicUsize::new(0);
    loom::model(|| {
        ITERS.fetch_add(1, Ordering::SeqCst);
        let hist = Arc::new(LatencyHistogram::new());
        let sink = Arc::new(LatencyHistogram::new());

        let recorders: Vec<_> = (0..2u32)
            .map(|r| {
                let h = Arc::clone(&hist);
                thread::spawn(move || {
                    // Distinct magnitudes per thread so both land in
                    // different log2 buckets (no masking of lost updates
                    // by same-bucket collisions).
                    for i in 0..3u64 {
                        h.record((u64::from(r) + 1) * 1000 + i);
                        thread::yield_now();
                    }
                })
            })
            .collect();

        let h = Arc::clone(&hist);
        let s = Arc::clone(&sink);
        let merger = thread::spawn(move || {
            // Mid-race observation: `record()` bumps the bucket before the
            // `count` atomic, so a snapshot taken between the two sees the
            // bucket sum ahead of `count` by at most one per in-flight
            // recorder — never behind, never more than 2 ahead here.
            let mid = h.snapshot();
            let bucket_sum = mid.buckets().iter().sum::<u64>();
            assert!(mid.count() <= 6, "snapshot counted more records than issued");
            assert!(bucket_sum <= 6, "snapshot bucketed more records than issued");
            assert!(
                bucket_sum >= mid.count() && bucket_sum - mid.count() <= 2,
                "bucket sum {bucket_sum} vs count {} exceeds in-flight bound",
                mid.count()
            );
            s.merge_from(&h);
            thread::yield_now();
        });

        for t in recorders {
            t.join().unwrap();
        }
        merger.join().unwrap();

        // Quiescent: everything recorded is in `hist`; the sink holds a
        // prefix of it (whatever the merge observed), never more.
        let final_snap = hist.snapshot();
        assert_eq!(final_snap.count(), 6, "records lost or double-counted");
        assert_eq!(
            final_snap.count(),
            final_snap.buckets().iter().sum::<u64>(),
            "bucket sum diverged from count"
        );
        assert_eq!(
            final_snap.sum_ns(),
            1000 + 1001 + 1002 + 2000 + 2001 + 2002,
            "sum_ns diverged from the recorded samples"
        );
        // The sink holds whatever prefix the merge observed — a mid-race
        // source snapshot can be up to 2 bucket-bumps ahead of its count.
        let merged = sink.snapshot();
        let merged_sum = merged.buckets().iter().sum::<u64>();
        assert!(merged_sum <= 6, "merge manufactured records");
        assert!(
            merged_sum >= merged.count() && merged_sum - merged.count() <= 2,
            "merged bucket sum {merged_sum} vs count {} exceeds in-flight bound",
            merged.count()
        );
    });
    assert!(ITERS.load(Ordering::SeqCst) > 1, "model must explore more than one schedule");
}
