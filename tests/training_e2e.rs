//! End-to-end training pipeline: train on a synthetic dataset, checkpoint,
//! reload, and serve through both engines with identical results.

use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::TemporalGraph;
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::train::{train, TrainConfig};
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

#[test]
fn train_checkpoint_and_serve() {
    let spec = spec_by_name("jodie-mooc").unwrap();
    let data = generate(&spec, 0.002, 17).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let mut params = TgatParams::init(cfg, 1).unwrap();
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);

    let tc = TrainConfig { epochs: 2, batch_size: 100, lr: 3e-3, train_frac: 0.8, seed: 2, ..Default::default() };
    let report = train(&mut params, &data.stream, &node_features, &data.edge_features, &tc);
    assert_eq!(report.epoch_losses.len(), 2);
    assert!(report.epoch_losses.iter().all(|l| l.is_finite() && *l > 0.0));
    assert!(report.val_auc > 0.0 && report.val_auc <= 1.0);

    // Checkpoint round-trip.
    let path = std::env::temp_dir().join(format!("tgat-e2e-{}.json", std::process::id()));
    params.save(&path).unwrap();
    let loaded = TgatParams::load(&path).unwrap();
    std::fs::remove_file(&path).ok();

    // Serve with trained weights through both engines; outputs must agree.
    let graph = TemporalGraph::from_stream(&data.stream);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };
    let t = data.stream.max_time() + 5.0;
    let ns: Vec<u32> = data.stream.edges().iter().take(30).map(|e| e.src).collect();
    let ts = vec![t; ns.len()];
    let hb = BaselineEngine::new(&loaded, ctx).embed_batch(&ns, &ts);
    let ho = TgoptEngine::new(&loaded, ctx, OptConfig::all()).embed_batch(&ns, &ts).unwrap();
    assert!(hb.max_abs_diff(&ho) < 1e-4, "trained-weight serving must agree across engines");
    assert!(hb.all_finite());
}

#[test]
fn training_loss_decreases_on_learnable_structure() {
    // A strongly structured stream: user i always interacts with item i%K.
    let n_users = 20u32;
    let n_items = 5u32;
    let n_edges = 300usize;
    let mut srcs = Vec::new();
    let mut dsts = Vec::new();
    let mut times = Vec::new();
    for i in 0..n_edges {
        let u = (i as u32 * 3) % n_users;
        srcs.push(u);
        dsts.push(n_users + u % n_items);
        times.push((i + 1) as f32);
    }
    let stream = tgopt_repro::graph::EdgeStream::new(&srcs, &dsts, &times);
    let cfg = TgatConfig { dim: 8, edge_dim: 8, time_dim: 8, n_layers: 2, n_heads: 2, n_neighbors: 4 };
    let mut params = TgatParams::init(cfg, 3).unwrap();
    let node_features = Tensor::zeros(stream.num_nodes(), cfg.dim);
    let mut rng = tgopt_repro::tensor::init::seeded_rng(5);
    let edge_features = tgopt_repro::tensor::init::normal(&mut rng, n_edges, cfg.edge_dim, 0.5);

    let tc = TrainConfig { epochs: 5, batch_size: 60, lr: 5e-3, train_frac: 0.8, seed: 4, ..Default::default() };
    let report = train(&mut params, &stream, &node_features, &edge_features, &tc);
    let first = report.epoch_losses[0];
    let last = *report.epoch_losses.last().unwrap();
    assert!(last < first, "loss should fall: {:?}", report.epoch_losses);
    assert!(report.val_auc > 0.55, "AUC should beat chance, got {}", report.val_auc);
}
