//! Robustness contracts of the serving layer: backpressure (a saturated
//! bounded queue rejects with `Overloaded`, never blocks), deadlines (an
//! expired request yields `DeadlineExceeded`, never a partial tensor), and
//! degraded store-skipping mode (correct results while the cache stops
//! growing).

use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tgopt_repro::graph::{EdgeStream, NodeId, TemporalGraph, Time};
use tgopt_repro::serve::{ModelBundle, ServeConfig, TgServer};
use tgopt_repro::tensor::init;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::TgoptEngine;
use tg_error::TgError;

fn world() -> &'static Arc<ModelBundle> {
    static WORLD: OnceLock<Arc<ModelBundle>> = OnceLock::new();
    WORLD.get_or_init(|| {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 11).unwrap();
        let n_nodes = 10;
        let n_edges = 60;
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        for i in 0..n_edges {
            srcs.push((i % n_nodes) as NodeId);
            dsts.push(((i * 7 + 2) % n_nodes) as NodeId);
            times.push((i + 1) as Time);
        }
        let stream = EdgeStream::new(&srcs, &dsts, &times);
        let graph = TemporalGraph::from_stream(&stream);
        let mut rng = init::seeded_rng(3);
        let nf = init::normal(&mut rng, n_nodes, cfg.dim, 0.5);
        let ef = init::normal(&mut rng, n_edges, cfg.edge_dim, 0.5);
        Arc::new(ModelBundle::new(params, graph, nf, ef).unwrap())
    })
}

#[test]
fn saturated_queue_rejects_overloaded_without_blocking() {
    let cfg = ServeConfig::default().with_queue_capacity(2);
    let server = TgServer::deterministic(Arc::clone(world()), cfg).unwrap();
    let t1 = server.submit(0, 70.0).unwrap();
    let t2 = server.submit(1, 70.0).unwrap();

    // The third submission must return immediately with the typed error —
    // a blocking submit would hang this single-threaded test forever.
    let started = Instant::now();
    match server.submit(2, 70.0) {
        Err(TgError::Overloaded { capacity }) => assert_eq!(capacity, 2),
        other => panic!("expected Overloaded, got {other:?}"),
    }
    assert!(started.elapsed() < Duration::from_secs(1), "rejection must not block");
    assert_eq!(server.stats().rejected_overload, 1);

    // Draining frees the queue; admission resumes.
    server.drain().unwrap();
    assert!(t1.wait().is_ok() && t2.wait().is_ok());
    let t3 = server.submit(2, 70.0).unwrap();
    server.drain().unwrap();
    assert!(t3.wait().is_ok());
}

#[test]
fn already_expired_deadline_is_rejected_at_submit() {
    let server = TgServer::deterministic(Arc::clone(world()), ServeConfig::default()).unwrap();
    let past = Instant::now();
    std::thread::sleep(Duration::from_millis(2));
    match server.submit_with_deadline(0, 70.0, past) {
        Err(TgError::DeadlineExceeded) => {}
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(server.stats().rejected_deadline, 1);
    assert_eq!(server.queued(), 0, "an expired request must not consume a queue slot");
}

#[test]
fn deadline_expiring_in_queue_yields_error_not_partial_tensor() {
    let server = TgServer::deterministic(Arc::clone(world()), ServeConfig::default()).unwrap();
    // Admitted alive, expires while waiting in the queue.
    let doomed = server
        .submit_with_deadline(0, 70.0, Instant::now() + Duration::from_millis(5))
        .unwrap();
    // Same target, no deadline: must be unaffected by its neighbor's fate.
    let healthy = server.submit(0, 70.0).unwrap();
    std::thread::sleep(Duration::from_millis(20));
    server.drain().unwrap();

    match doomed.wait() {
        Err(TgError::DeadlineExceeded) => {}
        Ok(row) => panic!("expired request returned a tensor of {} floats", row.len()),
        Err(other) => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    let row = healthy.wait().unwrap();
    assert!(row.iter().all(|v| v.is_finite()));
    let stats = server.stats();
    assert_eq!(stats.rejected_deadline, 1);
    assert_eq!(stats.completed, 1);
}

#[test]
fn degraded_mode_serves_correct_embeddings_without_growing_the_cache() {
    let bundle = world();
    let cfg = ServeConfig::default().with_max_batch(4).with_memory_budget(0);
    let server = TgServer::deterministic(Arc::clone(bundle), cfg).unwrap();

    let ns: Vec<NodeId> = vec![0, 1, 2, 3, 0, 1];
    let ts: Vec<Time> = vec![70.0; 6];
    // Two passes: the second finds nothing cached (stores were skipped)
    // and must still be exact.
    for _pass in 0..2 {
        let tickets = server.submit_many(&ns, &ts).unwrap();
        server.drain().unwrap();
        let mut direct = TgoptEngine::new(&bundle.params, bundle.context(), cfg.opt);
        let expected = direct.embed_batch(&ns, &ts).unwrap();
        for (i, ticket) in tickets.into_iter().enumerate() {
            let row = ticket.wait().unwrap();
            let diff: f32 = row
                .iter()
                .zip(expected.row(i))
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f32::max);
            assert!(diff < 1e-5, "degraded row {i} deviates by {diff}");
        }
    }

    assert!(server.shared_cache().is_empty(), "budget 0 must keep the cache empty");
    let counters = server.engine_counters();
    assert_eq!(counters.cache_stores, 0);
    assert!(counters.stores_skipped > 0);
    let stats = server.shutdown();
    assert_eq!(stats.degraded_batches, stats.batches);
    assert!(stats.batches > 0);
}

#[test]
fn threaded_server_end_to_end_matches_direct() {
    let bundle = world();
    let cfg = ServeConfig::default()
        .with_workers(2)
        .with_max_batch(8)
        .with_linger(Duration::from_millis(1));
    let server = TgServer::threaded(Arc::clone(bundle), cfg).unwrap();

    let ns: Vec<NodeId> = (0..40u32).map(|i| (i % 10) as NodeId).collect();
    let ts: Vec<Time> = (0..40).map(|i| 65.0 + (i % 5) as Time).collect();

    // Two client threads submit the same workload concurrently.
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..2)
            .map(|_| {
                let server = &server;
                let (ns, ts) = (&ns, &ts);
                scope.spawn(move || {
                    let tickets = server.submit_many(ns, ts).unwrap();
                    tickets
                        .into_iter()
                        .map(|t| t.wait().unwrap())
                        .collect::<Vec<Vec<f32>>>()
                })
            })
            .collect();
        let results: Vec<Vec<Vec<f32>>> =
            handles.into_iter().map(|h| h.join().expect("client panicked")).collect();

        let mut direct = TgoptEngine::new(&bundle.params, bundle.context(), cfg.opt);
        let expected = direct.embed_batch(&ns, &ts).unwrap();
        for rows in &results {
            for (i, row) in rows.iter().enumerate() {
                let diff: f32 = row
                    .iter()
                    .zip(expected.row(i))
                    .map(|(a, b)| (a - b).abs())
                    .fold(0.0, f32::max);
                assert!(diff < 1e-4, "threaded row {i} deviates by {diff}");
            }
        }
    });

    let stats = server.shutdown();
    assert_eq!(stats.completed, 80);
    assert!(stats.batches > 0);
    assert!(stats.unique_rows <= stats.batched_requests);
}

#[test]
fn invalid_configs_and_mode_misuse_are_typed_errors() {
    let bundle = world();
    assert!(matches!(
        TgServer::threaded(Arc::clone(bundle), ServeConfig::default().with_workers(0)),
        Err(TgError::InvalidConfig(_))
    ));
    assert!(matches!(
        TgServer::deterministic(Arc::clone(bundle), ServeConfig::default().with_max_batch(0)),
        Err(TgError::InvalidConfig(_))
    ));

    // drain() is a deterministic-mode API.
    let threaded = TgServer::threaded(Arc::clone(bundle), ServeConfig::default()).unwrap();
    assert!(matches!(threaded.drain(), Err(TgError::InvalidArgument(_))));
    threaded.shutdown();

    // Submitting after shutdown is a caller bug, not an overload.
    let server = TgServer::deterministic(Arc::clone(bundle), ServeConfig::default()).unwrap();
    let stats = server.shutdown();
    assert_eq!(stats.submitted, 0);
}
