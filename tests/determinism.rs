//! Determinism: everything in the pipeline is reproducible from seeds —
//! generation, initialization, and both engines — including under the
//! (single-core or multi-core) rayon parallel paths, which only partition
//! work and never reorder accumulation.

use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn full_replay(seed: u64, opt: Option<OptConfig>) -> Vec<f32> {
    let spec = spec_by_name("snap-email").unwrap();
    let data = generate(&spec, 0.004, seed).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, seed).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };
    let mut out = Vec::new();
    match opt {
        None => {
            let mut eng = BaselineEngine::new(&params, ctx);
            for batch in BatchIter::new(&data.stream, 100) {
                let (ns, ts) = batch.targets();
                out.extend_from_slice(eng.embed_batch(&ns, &ts).as_slice());
            }
        }
        Some(opt) => {
            let mut eng = TgoptEngine::new(&params, ctx, opt);
            for batch in BatchIter::new(&data.stream, 100) {
                let (ns, ts) = batch.targets();
                out.extend_from_slice(eng.embed_batch(&ns, &ts).unwrap().as_slice());
            }
        }
    }
    out
}

#[test]
fn baseline_replay_is_bitwise_deterministic() {
    assert_eq!(full_replay(11, None), full_replay(11, None));
}

#[test]
fn tgopt_replay_is_bitwise_deterministic() {
    let opt = OptConfig::all();
    assert_eq!(full_replay(11, Some(opt)), full_replay(11, Some(opt)));
}

#[test]
fn parallel_flags_do_not_change_bits() {
    let par = OptConfig { parallel_lookup: true, parallel_store: true, ..OptConfig::all() };
    let seq = OptConfig { parallel_lookup: false, parallel_store: false, ..OptConfig::all() };
    assert_eq!(full_replay(11, Some(par)), full_replay(11, Some(seq)));
}

#[test]
fn different_seeds_produce_different_embeddings() {
    assert_ne!(full_replay(11, None), full_replay(12, None));
}
