//! Equivalence and caching behavior across model depths: TGOpt must remain
//! a drop-in replacement for 1-layer (no cached layers at all by default)
//! and 3-layer (two cached layers, which exercises the per-layer cache
//! tables) configurations.

use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn run_depth(n_layers: usize, opt: OptConfig) -> (f64, f64, u64) {
    let spec = spec_by_name("jodie-mooc").unwrap();
    let data = generate(&spec, 0.002, 19).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, 6).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };
    let mut base = BaselineEngine::new(&params, ctx);
    let mut ours = TgoptEngine::new(&params, ctx, opt);
    let mut sum_b = 0.0f64;
    let mut sum_o = 0.0f64;
    // Two passes over the stream: the second re-queries identical targets,
    // so any cached layer (including a cached last layer) must show reuse.
    for pass in 0..2 {
        for batch in BatchIter::new(&data.stream, 100) {
            let (ns, ts) = batch.targets();
            let hb = base.embed_batch(&ns, &ts);
            let ho = ours.embed_batch(&ns, &ts).unwrap();
            assert!(
                hb.max_abs_diff(&ho) < 1e-4,
                "{n_layers}-layer pass {pass} batch {} diverged",
                batch.index
            );
            sum_b += hb.as_slice().iter().map(|&v| v as f64).sum::<f64>();
            sum_o += ho.as_slice().iter().map(|&v| v as f64).sum::<f64>();
        }
    }
    (sum_b, sum_o, ours.counters().cache_hits)
}

#[test]
fn one_layer_model_matches_baseline() {
    // With L=1 and the last layer uncached, no layer caches exist at all;
    // TGOpt degenerates to dedup + time precompute and must still match.
    let (b, o, hits) = run_depth(1, OptConfig::all());
    assert!((b - o).abs() / b.abs().max(1.0) < 1e-6);
    // Even across repeated passes: L=1 with the last layer uncached means
    // no layer is cached at all.
    assert_eq!(hits, 0, "a 1-layer model has no cacheable layer by default");
}

#[test]
fn one_layer_model_with_last_layer_caching_reuses() {
    let opt = OptConfig { cache_last_layer: true, ..OptConfig::all() };
    let (b, o, hits) = run_depth(1, opt);
    assert!((b - o).abs() / b.abs().max(1.0) < 1e-6);
    assert!(hits > 0, "caching the only layer must produce reuse");
}

#[test]
fn three_layer_model_matches_baseline_and_caches_two_layers() {
    let (b, o, hits) = run_depth(3, OptConfig::all());
    assert!((b - o).abs() / b.abs().max(1.0) < 1e-6);
    assert!(hits > 0, "layers 1 and 2 are cached in a 3-layer model");
}

#[test]
fn three_layer_model_with_every_layer_cached_matches() {
    let opt = OptConfig { cache_last_layer: true, ..OptConfig::all() };
    let (b, o, _) = run_depth(3, opt);
    assert!((b - o).abs() / b.abs().max(1.0) < 1e-6);
}
