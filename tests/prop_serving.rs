//! Serving-layer equivalence properties: anything served through
//! `tg-serve` must equal a direct `TgoptEngine::embed_batch` call within
//! 1e-5, for arbitrary request streams, arrival interleavings, and
//! batch-size/linger configurations — including with deadlines attached
//! and degraded (store-skipping) mode forced on.
//!
//! The deterministic single-threaded batcher mode makes every scheduling
//! decision a pure function of the submit/drain sequence, so each random
//! case is exactly reproducible.

use proptest::prelude::*;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tgopt_repro::graph::{EdgeStream, NodeId, TemporalGraph, Time};
use tgopt_repro::serve::{ModelBundle, ServeConfig, TgServer, Ticket};
use tgopt_repro::tensor::init;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

const N_NODES: usize = 12;

/// One shared model + graph world for every case (building it per-case
/// would dominate the run without adding coverage: the randomness that
/// matters is in the request streams and schedules).
fn world() -> &'static Arc<ModelBundle> {
    static WORLD: OnceLock<Arc<ModelBundle>> = OnceLock::new();
    WORLD.get_or_init(|| {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let n_edges = 80;
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        for i in 0..n_edges {
            srcs.push((i % N_NODES) as NodeId);
            dsts.push(((i * 3 + 1) % N_NODES) as NodeId);
            times.push((i + 1) as Time);
        }
        let stream = EdgeStream::new(&srcs, &dsts, &times);
        let graph = TemporalGraph::from_stream(&stream);
        let mut rng = init::seeded_rng(5);
        let nf = init::normal(&mut rng, N_NODES, cfg.dim, 0.5);
        let ef = init::normal(&mut rng, n_edges, cfg.edge_dim, 0.5);
        Arc::new(ModelBundle::new(params, graph, nf, ef).unwrap())
    })
}

/// Direct (unbatched-by-the-server) reference: one fresh engine, one call.
fn direct_rows(ns: &[NodeId], ts: &[Time], opt: OptConfig) -> Vec<Vec<f32>> {
    let bundle = world();
    let mut eng = TgoptEngine::new(&bundle.params, bundle.context(), opt);
    let h = eng.embed_batch(ns, ts).unwrap();
    (0..ns.len()).map(|i| h.row(i).to_vec()).collect()
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Decodes a raw proptest tuple into a query on the shared world.
fn decode(node_raw: u32, t_raw: u32) -> (NodeId, Time) {
    ((node_raw % N_NODES as u32) as NodeId, 40.0 + (t_raw % 80) as Time * 0.5)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: served == direct within 1e-5 under arbitrary
    /// interleavings of submissions and drains, arbitrary micro-batch
    /// sizes, optional (non-expiring) deadlines, and forced degraded mode.
    fn served_equals_direct_under_arbitrary_interleavings(
        reqs in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..40),
        max_batch in 1usize..8,
        use_deadline in any::<bool>(),
        degraded in any::<bool>(),
    ) {
        let bundle = world();
        let mut cfg = ServeConfig::default()
            .with_max_batch(max_batch)
            .with_queue_capacity(reqs.len() + 1);
        if degraded {
            // Budget 0: every wave runs lookup-only (stores skipped).
            cfg = cfg.with_memory_budget(0);
        }
        let server = TgServer::deterministic(Arc::clone(bundle), cfg).unwrap();

        let far_deadline = Instant::now() + Duration::from_secs(3600);
        let mut tickets: Vec<Ticket> = Vec::new();
        let mut ns: Vec<NodeId> = Vec::new();
        let mut ts: Vec<Time> = Vec::new();
        for &(node_raw, t_raw, drain_now) in &reqs {
            let (n, t) = decode(node_raw, t_raw);
            ns.push(n);
            ts.push(t);
            let ticket = if use_deadline {
                server.submit_with_deadline(n, t, far_deadline).unwrap()
            } else {
                server.submit(n, t).unwrap()
            };
            tickets.push(ticket);
            if drain_now {
                server.drain().unwrap();
            }
        }
        server.drain().unwrap();

        let expected = direct_rows(&ns, &ts, cfg.opt);
        for (i, ticket) in tickets.into_iter().enumerate() {
            let got = ticket.wait().unwrap();
            let diff = max_abs_diff(&got, &expected[i]);
            prop_assert!(
                diff < 1e-5,
                "request {i} ({}, {}): served row deviates by {diff}",
                ns[i], ts[i]
            );
        }

        let stats = server.shutdown();
        prop_assert_eq!(stats.completed, reqs.len() as u64);
        prop_assert_eq!(stats.rejected_deadline, 0);
        prop_assert!(stats.unique_rows <= stats.batched_requests);
        if degraded {
            prop_assert_eq!(stats.degraded_batches, stats.batches);
        }
    }

    /// Duplicate-heavy streams: cross-request dedup collapses repeats, yet
    /// every request still receives its own row in submission order.
    fn row_order_preserved_under_heavy_duplication(
        reqs in proptest::collection::vec((0u32..3, 0u32..2), 2..30),
        max_batch in 1usize..6,
    ) {
        let bundle = world();
        let cfg = ServeConfig::default()
            .with_max_batch(max_batch)
            .with_queue_capacity(reqs.len() + 1);
        let server = TgServer::deterministic(Arc::clone(bundle), cfg).unwrap();

        let ns: Vec<NodeId> = reqs.iter().map(|&(n, t)| decode(n, t).0).collect();
        let ts: Vec<Time> = reqs.iter().map(|&(n, t)| decode(n, t).1).collect();
        let tickets = server.submit_many(&ns, &ts).unwrap();
        server.drain().unwrap();

        let expected = direct_rows(&ns, &ts, cfg.opt);
        for (i, ticket) in tickets.into_iter().enumerate() {
            let got = ticket.wait().unwrap();
            prop_assert!(
                max_abs_diff(&got, &expected[i]) < 1e-5,
                "row {i} out of order or wrong"
            );
        }

        let stats = server.shutdown();
        // Only 6 distinct (node, time) targets exist, so any stream longer
        // than 6 must coalesce inside at least one wave unless every wave
        // is tiny.
        prop_assert!(stats.unique_rows <= stats.batched_requests);
        let ratio = stats.cross_dedup_ratio();
        prop_assert!((0.0..=1.0).contains(&ratio), "dedup ratio {ratio} out of range");
    }

    /// Degraded mode really does stop cache growth: with a zero budget the
    /// shared cache never stores anything, and results stay exact.
    fn zero_budget_serves_lookup_only(
        reqs in proptest::collection::vec((any::<u32>(), any::<u32>()), 1..20),
    ) {
        let bundle = world();
        let cfg = ServeConfig::default()
            .with_max_batch(4)
            .with_queue_capacity(reqs.len() + 1)
            .with_memory_budget(0);
        let server = TgServer::deterministic(Arc::clone(bundle), cfg).unwrap();
        let ns: Vec<NodeId> = reqs.iter().map(|&(n, t)| decode(n, t).0).collect();
        let ts: Vec<Time> = reqs.iter().map(|&(n, t)| decode(n, t).1).collect();
        let tickets = server.submit_many(&ns, &ts).unwrap();
        server.drain().unwrap();

        prop_assert!(server.shared_cache().is_empty(), "zero budget must never store");
        let counters = server.engine_counters();
        prop_assert_eq!(counters.cache_stores, 0);
        prop_assert!(counters.stores_skipped > 0, "skipped stores must be counted");

        let expected = direct_rows(&ns, &ts, cfg.opt);
        for (i, ticket) in tickets.into_iter().enumerate() {
            let got = ticket.wait().unwrap();
            prop_assert!(max_abs_diff(&got, &expected[i]) < 1e-5);
        }
    }
}
