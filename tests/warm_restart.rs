//! Warm restarts: snapshotting the embedding caches to disk and restoring
//! them lets a restarted server skip the Figure 7 hit-rate ramp-up.

use std::sync::Arc;
use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::tgopt::{pack_key, LayerCaches};
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::{persist, OptConfig, TgoptEngine};

/// Regression: invalidating a key and then re-storing it used to leave
/// two FIFO slots behind — the snapshot exported the row twice (inflating
/// the on-disk image and `restored.len()`), and eviction later treated
/// the re-stored entry as old, dropping the *newest* data first.
#[test]
fn restore_after_invalidation_snapshots_each_key_once() {
    let caches = LayerCaches::new(1, true, 4, 2);
    let c1 = caches.layer(1).unwrap();
    let keys: Vec<u64> = (0u32..3).map(|n| pack_key(n, (n + 1) as f32)).collect();
    let rows = Tensor::from_vec(3, 2, vec![0.0; 6]);
    c1.store(&keys, &rows, false).unwrap();

    // Invalidate the middle key, then re-store it with fresh data.
    let removed = c1.invalidate_node(1);
    assert_eq!(removed, 1);
    let fresh = Tensor::from_vec(1, 2, vec![9.0, 9.0]);
    c1.store(&keys[1..2], &fresh, false).unwrap();
    assert_eq!(c1.len(), 3);

    // The export — and therefore the snapshot — must carry the key once,
    // with the re-stored row, and the restored cache must agree on len.
    let export = c1.export_fifo_order();
    assert_eq!(export.len(), 3, "duplicate FIFO slot leaked into export");
    let dup = export.iter().filter(|(k, _)| *k == keys[1]).count();
    assert_eq!(dup, 1);
    let row = &export.iter().find(|(k, _)| *k == keys[1]).unwrap().1;
    assert_eq!(row.as_ref(), &[9.0, 9.0], "export must keep the re-stored row");

    let path = std::env::temp_dir().join(format!("tgopt-dedupe-{}.bin", std::process::id()));
    persist::save(&caches, &path).unwrap();
    let restored = persist::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.len(), 3, "snapshot round trip must not duplicate rows");

    // Eviction order: the re-stored key is the *youngest* entry. Filling
    // the cache past its 4-slot limit must evict the two untouched old
    // keys before it.
    let more: Vec<u64> = (10u32..13).map(|n| pack_key(n, 1.0)).collect();
    let rows = Tensor::from_vec(3, 2, vec![0.0; 6]);
    c1.store(&more, &rows, false).unwrap();
    assert!(
        c1.contains(keys[1]),
        "re-stored key evicted as if it were old"
    );
    assert!(!c1.contains(keys[0]) && !c1.contains(keys[2]));
}

#[test]
fn snapshot_restore_continues_with_full_reuse() {
    let spec = spec_by_name("snap-email").unwrap();
    let data = generate(&spec, 0.01, 31).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, 9).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };

    // Continuous reference run over the whole stream.
    let mut reference = TgoptEngine::new(&params, ctx, OptConfig::all());
    let mut ref_sums: Vec<f64> = Vec::new();
    for batch in BatchIter::new(&data.stream, 100) {
        let (ns, ts) = batch.targets();
        let h = reference.embed_batch(&ns, &ts).unwrap();
        ref_sums.push(h.as_slice().iter().map(|&v| v as f64).sum());
    }

    // Run A: first half, then snapshot to disk.
    let half = BatchIter::new(&data.stream, 100).num_batches() / 2;
    let mut a = TgoptEngine::new(&params, ctx, OptConfig::all());
    for batch in BatchIter::new(&data.stream, 100).take(half) {
        let (ns, ts) = batch.targets();
        let _ = a.embed_batch(&ns, &ts).unwrap();
    }
    let path = std::env::temp_dir().join(format!("tgopt-warm-{}.bin", std::process::id()));
    persist::save(a.cache(), &path).unwrap();
    let warm_items = a.cache().len();
    drop(a); // "process exits"

    // Run B: restore and continue from the second half.
    let restored = persist::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.len(), warm_items, "snapshot captured everything");
    let mut b = TgoptEngine::with_cache(
        &params,
        ctx,
        OptConfig::all(),
        Arc::new(restored),
        Default::default(),
    );
    for (i, batch) in BatchIter::new(&data.stream, 100).enumerate().skip(half) {
        let (ns, ts) = batch.targets();
        let h = b.embed_batch(&ns, &ts).unwrap();
        let sum: f64 = h.as_slice().iter().map(|&v| v as f64).sum();
        let drift = (sum - ref_sums[i]).abs() / ref_sums[i].abs().max(1.0);
        assert!(drift < 1e-9, "batch {i}: restored run diverged (drift {drift:.2e})");
    }
    // The restored run must reuse, not rebuild: its stores are far fewer
    // than the warm set it inherited.
    let c = b.counters();
    assert!(c.cache_hits > 0, "restored cache must serve hits");
    assert!(
        (c.cache_stores as usize) < warm_items,
        "restored run should mostly reuse ({} stores vs {} inherited)",
        c.cache_stores,
        warm_items
    );
}
