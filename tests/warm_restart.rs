//! Warm restarts: snapshotting the embedding caches to disk and restoring
//! them lets a restarted server skip the Figure 7 hit-rate ramp-up.

use std::sync::Arc;
use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::{persist, OptConfig, TgoptEngine};

#[test]
fn snapshot_restore_continues_with_full_reuse() {
    let spec = spec_by_name("snap-email").unwrap();
    let data = generate(&spec, 0.01, 31).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, 9).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };

    // Continuous reference run over the whole stream.
    let mut reference = TgoptEngine::new(&params, ctx, OptConfig::all());
    let mut ref_sums: Vec<f64> = Vec::new();
    for batch in BatchIter::new(&data.stream, 100) {
        let (ns, ts) = batch.targets();
        let h = reference.embed_batch(&ns, &ts).unwrap();
        ref_sums.push(h.as_slice().iter().map(|&v| v as f64).sum());
    }

    // Run A: first half, then snapshot to disk.
    let half = BatchIter::new(&data.stream, 100).num_batches() / 2;
    let mut a = TgoptEngine::new(&params, ctx, OptConfig::all());
    for batch in BatchIter::new(&data.stream, 100).take(half) {
        let (ns, ts) = batch.targets();
        let _ = a.embed_batch(&ns, &ts).unwrap();
    }
    let path = std::env::temp_dir().join(format!("tgopt-warm-{}.bin", std::process::id()));
    persist::save(a.cache(), &path).unwrap();
    let warm_items = a.cache().len();
    drop(a); // "process exits"

    // Run B: restore and continue from the second half.
    let restored = persist::load(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(restored.len(), warm_items, "snapshot captured everything");
    let mut b = TgoptEngine::with_cache(
        &params,
        ctx,
        OptConfig::all(),
        Arc::new(restored),
        Default::default(),
    );
    for (i, batch) in BatchIter::new(&data.stream, 100).enumerate().skip(half) {
        let (ns, ts) = batch.targets();
        let h = b.embed_batch(&ns, &ts).unwrap();
        let sum: f64 = h.as_slice().iter().map(|&v| v as f64).sum();
        let drift = (sum - ref_sums[i]).abs() / ref_sums[i].abs().max(1.0);
        assert!(drift < 1e-9, "batch {i}: restored run diverged (drift {drift:.2e})");
    }
    // The restored run must reuse, not rebuild: its stores are far fewer
    // than the warm set it inherited.
    let c = b.counters();
    assert!(c.cache_hits > 0, "restored cache must serve hits");
    assert!(
        (c.cache_stores as usize) < warm_items,
        "restored run should mostly reuse ({} stores vs {} inherited)",
        c.cache_stores,
        warm_items
    );
}
