//! Cross-crate cache behavior: limits, hit-rate growth over a replayed
//! stream, reuse accounting, and sampling-strategy interactions.

use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::{BatchIter, SamplingStrategy, TemporalGraph, TemporalSampler};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

fn cfg(edge_dim: usize) -> TgatConfig {
    TgatConfig { dim: 8, edge_dim, time_dim: 8, n_layers: 2, n_heads: 2, n_neighbors: 5 }
}

struct World {
    data: tgopt_repro::datasets::Dataset,
    graph: TemporalGraph,
    node_features: Tensor,
    params: TgatParams,
}

fn world(name: &str, scale: f64) -> World {
    let spec = spec_by_name(name).unwrap();
    let data = generate(&spec, scale, 3).unwrap();
    let cfg = cfg(data.dim());
    let params = TgatParams::init(cfg, 2).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    World { data, graph, node_features, params }
}

impl World {
    fn ctx(&self) -> GraphContext<'_> {
        GraphContext {
            graph: &self.graph,
            node_features: &self.node_features,
            edge_features: &self.data.edge_features,
        }
    }
}

#[test]
fn cache_never_exceeds_its_limit_during_replay() {
    let w = world("snap-msg", 0.05);
    let limit = 64;
    let mut eng = TgoptEngine::new(&w.params, w.ctx(), OptConfig::all().with_cache_limit(limit));
    for batch in BatchIter::new(&w.data.stream, 50) {
        let (ns, ts) = batch.targets();
        let _ = eng.embed_batch(&ns, &ts).unwrap();
        assert!(eng.cache().len() <= limit, "cache overflow: {}", eng.cache().len());
    }
    assert!(eng.cache().total_evictions() > 0, "limit was never exercised");
}

#[test]
fn hit_rate_grows_as_the_stream_progresses() {
    let w = world("jodie-lastfm", 0.005);
    let mut eng = TgoptEngine::new(&w.params, w.ctx(), OptConfig::all());
    let mut per_batch = Vec::new();
    let mut prev = eng.counters();
    for batch in BatchIter::new(&w.data.stream, 200) {
        let (ns, ts) = batch.targets();
        let _ = eng.embed_batch(&ns, &ts).unwrap();
        let now = eng.counters();
        per_batch.push(now.delta_since(&prev).hit_rate());
        prev = now;
    }
    assert!(per_batch.len() >= 10, "need a real stream for this test");
    let early: f64 = per_batch[1..4].iter().sum::<f64>() / 3.0;
    let late_window = &per_batch[per_batch.len() - 3..];
    let late: f64 = late_window.iter().sum::<f64>() / late_window.len() as f64;
    assert!(
        late > early,
        "hit rate should climb over time: early {early:.3}, late {late:.3}"
    );
    assert!(late > 0.5, "late hit rate should be substantial, got {late:.3}");
}

#[test]
fn unbounded_cache_reuse_dominates_on_jodie_like_data() {
    // Figure 3's claim: reuse grows to dominate recomputation.
    let w = world("jodie-wiki", 0.1);
    let mut eng =
        TgoptEngine::new(&w.params, w.ctx(), OptConfig::all().with_cache_limit(usize::MAX / 2));
    for batch in BatchIter::new(&w.data.stream, 200) {
        let (ns, ts) = batch.targets();
        let _ = eng.embed_batch(&ns, &ts).unwrap();
    }
    let c = eng.counters();
    assert!(
        c.cache_hits > c.cache_stores,
        "reuse ({}) should exceed recomputation-and-store ({})",
        c.cache_hits,
        c.cache_stores
    );
}

#[test]
fn smaller_cache_means_fewer_hits_but_same_results() {
    let w = world("snap-email", 0.01);
    let run = |limit: usize| {
        let mut eng =
            TgoptEngine::new(&w.params, w.ctx(), OptConfig::all().with_cache_limit(limit));
        let mut checksum = 0.0f64;
        for batch in BatchIter::new(&w.data.stream, 100) {
            let (ns, ts) = batch.targets();
            let h = eng.embed_batch(&ns, &ts).unwrap();
            checksum += h.as_slice().iter().map(|&v| v as f64).sum::<f64>();
        }
        (eng.counters().hit_rate(), checksum)
    };
    let (small_rate, small_sum) = run(32);
    let (big_rate, big_sum) = run(100_000);
    assert!(big_rate >= small_rate, "bigger cache can't hit less: {big_rate} vs {small_rate}");
    let drift = (small_sum - big_sum).abs() / big_sum.abs().max(1.0);
    assert!(drift < 1e-4, "cache size must not change results (drift {drift:.2e})");
}

#[test]
fn uniform_sampling_disables_memoization_but_still_works() {
    let w = world("snap-msg", 0.02);
    let sampler = TemporalSampler::new(5, SamplingStrategy::Uniform { seed: 4 });
    let mut eng = TgoptEngine::with_sampler(&w.params, w.ctx(), OptConfig::all(), sampler);
    assert!(!eng.memoization_active());
    for batch in BatchIter::new(&w.data.stream, 100) {
        let (ns, ts) = batch.targets();
        let h = eng.embed_batch(&ns, &ts).unwrap();
        assert!(h.all_finite());
    }
    assert_eq!(eng.counters().cache_lookups, 0);
    assert!(eng.cache().is_empty());
    assert!(eng.counters().dedup_removed > 0, "dedup stays active under uniform sampling");
}

#[test]
fn time_window_hit_rate_is_high_on_bursty_data() {
    let w = world("snap-msg", 0.05);
    let mut eng = TgoptEngine::new(&w.params, w.ctx(), OptConfig::all());
    for batch in BatchIter::new(&w.data.stream, 100) {
        let (ns, ts) = batch.targets();
        let _ = eng.embed_batch(&ns, &ts).unwrap();
    }
    let (hits, misses) = eng.time_cache_stats();
    assert!(hits + misses > 0);
    assert!(
        eng.time_cache_hit_rate() > 0.3,
        "deltas cluster near zero, so the window should serve many: {:.3}",
        eng.time_cache_hit_rate()
    );
}
