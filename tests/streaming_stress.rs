//! Concurrent ingest + query stress: real threads hammer a live-ingest
//! server while a checker thread reads snapshots, then quiescent-state
//! invariants are verified:
//!
//! * **No torn epoch reads** — every `GraphView` taken mid-run has a
//!   monotonically advancing epoch and internally consistent postings
//!   (each visible edge contributes exactly two adjacency entries, so a
//!   half-published edge would break the count identity).
//! * **Cache accounting identity** — at quiescence, every admitted row is
//!   accounted for: `inserted == evictions + invalidated + len`.
//! * **No stale survivors** — targeted invalidation may retain entries,
//!   but every layer-1 entry still cached after the run must equal a
//!   from-scratch recompute over the fully-rebuilt graph (a one-layer
//!   engine is the oracle: the layer-1 cache stores exactly the layer-1
//!   embedding of its `(node, time)` key).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use tgopt_repro::graph::{Edge, EdgeStream, NodeId, TemporalGraph, Time};
use tgopt_repro::serve::{ModelBundle, ServeConfig, TgServer};
use tgopt_repro::tensor::init;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::{unpack_key, OptConfig, TgoptEngine};

const N_NODES: usize = 16;
const N_BASE: usize = 100;
const N_POOL: usize = 120;
const QUERY_THREADS: usize = 3;
const QUERIES_PER_THREAD: usize = 400;

fn build_world() -> (Arc<ModelBundle>, Vec<Edge>) {
    let cfg = TgatConfig::tiny();
    let params = TgatParams::init(cfg, 13).unwrap();
    let mut srcs = Vec::new();
    let mut dsts = Vec::new();
    let mut times = Vec::new();
    for i in 0..N_BASE {
        srcs.push((i % N_NODES) as NodeId);
        dsts.push(((i * 5 + 2) % N_NODES) as NodeId);
        times.push((i + 1) as Time);
    }
    let stream = EdgeStream::new(&srcs, &dsts, &times);
    let graph = TemporalGraph::from_stream(&stream);
    let mut rng = init::seeded_rng(3);
    let nf = init::normal(&mut rng, N_NODES, cfg.dim, 0.5);
    let ef = init::normal(&mut rng, N_BASE + N_POOL, cfg.edge_dim, 0.5);
    // Live edges: a mix of fresh (past the base) and out-of-order times,
    // including an occasional self-loop and exact tie.
    let pool: Vec<Edge> = (0..N_POOL)
        .map(|i| Edge {
            src: ((i * 3 + 1) % N_NODES) as NodeId,
            dst: if i % 17 == 0 {
                ((i * 3 + 1) % N_NODES) as NodeId
            } else {
                ((i * 11 + 4) % N_NODES) as NodeId
            },
            time: match i % 4 {
                0 | 1 => 101.0 + i as Time * 0.5,
                2 => 20.25 + i as Time * 0.25,
                _ => ((i % N_BASE) + 1) as Time,
            },
            eid: (N_BASE + i) as u32,
        })
        .collect();
    (Arc::new(ModelBundle::new(params, graph, nf, ef).unwrap()), pool)
}

#[test]
fn concurrent_ingest_and_queries_hold_invariants() {
    let (bundle, pool) = build_world();
    let k = bundle.params.cfg.n_neighbors;
    let mut cfg = ServeConfig::default()
        .with_max_batch(16)
        .with_workers(QUERY_THREADS)
        .with_queue_capacity(100_000)
        .with_live_ingest(true)
        .with_compact_threshold(48);
    // Cache the last layer too: the deep-entry oracle below checks that
    // the constraint-tracked sweep never retained a stale layer-2 entry.
    cfg.opt.cache_last_layer = true;
    let server = TgServer::threaded(Arc::clone(&bundle), cfg).unwrap();

    let writer_done = AtomicBool::new(false);
    std::thread::scope(|scope| {
        let server = &server;
        let pool = &pool;
        let writer_done = &writer_done;

        scope.spawn(move || {
            for e in pool {
                let eid = server.submit_edge(e.src, e.dst, e.time).unwrap();
                assert_eq!(eid, e.eid, "edge ids must be assigned in submission order");
                std::thread::yield_now();
            }
            writer_done.store(true, Ordering::Release);
        });

        // Snapshot checker: epochs advance monotonically and no view ever
        // exposes a half-published edge (every visible edge posts exactly
        // two adjacency entries, self-loops included).
        scope.spawn(move || {
            let mut last_epoch = 0u64;
            while !writer_done.load(Ordering::Acquire) {
                let v = server.live_view().unwrap();
                let epoch = v.epoch();
                assert!(epoch >= last_epoch, "epoch went backwards: {last_epoch} -> {epoch}");
                last_epoch = epoch;
                let postings: usize =
                    (0..N_NODES).map(|n| v.hist_len_before(n as NodeId, 1e9)).sum();
                assert_eq!(
                    postings as u64,
                    2 * v.num_edges(),
                    "torn view at epoch {epoch}: posting count does not match visible edges"
                );
                std::thread::yield_now();
            }
        });

        for c in 0..QUERY_THREADS {
            scope.spawn(move || {
                let mut rng = StdRng::seed_from_u64(0xace + c as u64);
                for _ in 0..QUERIES_PER_THREAD {
                    let n = rng.gen_range(0..N_NODES as u32) as NodeId;
                    let t = 1.0 + rng.gen_range(0..400) as Time * 0.5;
                    let ticket = server.submit(n, t).unwrap();
                    let row = ticket.wait().unwrap();
                    assert!(
                        row.iter().all(|x| x.is_finite()),
                        "served row must be finite under concurrent ingest"
                    );
                }
            });
        }
    });

    let final_view = server.live_view().unwrap();
    assert_eq!(final_view.num_edges(), (N_BASE + N_POOL) as u64);
    let ingest = server.ingest_stats().unwrap();
    assert_eq!(ingest.edges_appended, N_POOL as u64);
    assert!(ingest.compactions >= 1, "threshold 48 must compact during a 120-edge ingest");

    let cache = server.shared_cache();
    // Shutdown joins every worker: all stores, sweeps, replays, and counter
    // updates are done before the stats snapshot is taken.
    let stats = server.shutdown();
    assert_eq!(stats.edges_ingested, N_POOL as u64);
    assert_eq!(stats.completed, (QUERY_THREADS * QUERIES_PER_THREAD) as u64);

    // Cache accounting identity at quiescence: every row ever admitted
    // was either evicted, invalidated, or is still resident.
    assert_eq!(
        cache.total_inserted(),
        cache.total_evictions() + cache.total_invalidated() + cache.len() as u64,
        "cache accounting identity violated"
    );

    // Staleness spot-check: every surviving layer-1 entry must match a
    // cold recompute over the final graph. Targeted invalidation retained
    // these entries as provably fresh — verify that proof held.
    let mut full = TemporalGraph::with_nodes(N_NODES);
    let base_edges: Vec<Edge> = {
        // Rebuild the base stream exactly as build_world constructed it.
        let mut v = Vec::new();
        for i in 0..N_BASE {
            v.push(Edge {
                src: (i % N_NODES) as NodeId,
                dst: ((i * 5 + 2) % N_NODES) as NodeId,
                time: (i + 1) as Time,
                eid: i as u32,
            });
        }
        v
    };
    for e in base_edges.iter().chain(&pool) {
        full.insert(e);
    }
    full.freeze();

    let cfg1 = TgatConfig { n_layers: 1, ..bundle.params.cfg };
    assert_eq!(cfg1.n_neighbors, k);
    let params1 = TgatParams {
        cfg: cfg1,
        layers: vec![bundle.params.layers[0].clone()],
        time: bundle.params.time.clone(),
        predictor: bundle.params.predictor.clone(),
    };
    let ctx = GraphContext {
        graph: &full,
        node_features: &bundle.node_features,
        edge_features: &bundle.edge_features,
    };
    let mut oracle = TgoptEngine::new(&params1, ctx, OptConfig::all());

    let layer1 = cache.layer(1).expect("layer-1 cache exists for a 2-layer model");
    let entries = layer1.export_fifo_order();
    assert!(!entries.is_empty(), "stress run must leave layer-1 entries to spot-check");
    let sample: Vec<_> = entries.iter().take(256).collect();
    let (ns, ts): (Vec<NodeId>, Vec<Time>) =
        sample.iter().map(|(key, _)| unpack_key(*key)).unzip();
    let h = oracle.embed_batch(&ns, &ts).unwrap();
    for (i, (key, row)) in sample.iter().enumerate() {
        let (n, t) = unpack_key(*key);
        let diff = row
            .iter()
            .zip(h.row(i))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            diff < 1e-5,
            "stale layer-1 entry survived: ({n}, {t}) deviates from recompute by {diff}"
        );
    }

    // Deep-entry oracle: layer-2 entries survive sweeps only when their
    // recorded fingerprint proves the new edges missed their sample — so
    // every survivor must equal the full two-layer recompute of its key.
    let mut oracle2 = TgoptEngine::new(&bundle.params, ctx, OptConfig::all());
    let layer2 = cache.layer(2).expect("last layer cached under cache_last_layer");
    let entries2 = layer2.export_fifo_order();
    assert!(
        !entries2.is_empty(),
        "stress run must leave layer-2 entries to spot-check"
    );
    let sample2: Vec<_> = entries2.iter().take(256).collect();
    let (ns2, ts2): (Vec<NodeId>, Vec<Time>) =
        sample2.iter().map(|(key, _)| unpack_key(*key)).unzip();
    let h2 = oracle2.embed_batch(&ns2, &ts2).unwrap();
    for (i, (key, row)) in sample2.iter().enumerate() {
        let (n, t) = unpack_key(*key);
        let diff = row
            .iter()
            .zip(h2.row(i))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        assert!(
            diff < 1e-5,
            "stale layer-2 entry survived the fingerprint sweep: ({n}, {t}) deviates by {diff}"
        );
    }
}
