//! Property tests pinning the unrolled/fused kernels to their naive
//! references on arbitrary shapes.
//!
//! The microkernels in `tg_tensor::matmul` dispatch on shape (4x16 register
//! quads, 8-lane tails, per-row nonzero spans), so the dangerous inputs are
//! exactly the ones a fixed unit test misses: dimensions of 0 and 1,
//! non-multiples of the unroll widths, and rows with leading/trailing zeros.
//! Every kernel must stay within 1e-5 of `matmul::reference` (naive triple
//! loops), and the batched scratch attention must match the per-op
//! allocating implementation it replaced.

use proptest::prelude::*;
use tgopt_repro::tensor::matmul::{self, reference};
use tgopt_repro::tensor::{init, ops, Scratch, Tensor};
use tgopt_repro::tgat::attention::{self, AttentionInputs};
use tgopt_repro::tgat::{TgatConfig, TgatParams};

const TOL: f32 = 1e-5;

/// A seeded random `[rows, cols]` tensor with entries in `[-scale, scale]`,
/// with the first `zero_prefix` columns of every row zeroed (exercises the
/// nonzero-span pre-scan that skips TGAT's all-zero node-feature block).
fn tensor_for(rows: usize, cols: usize, seed: u64, zero_prefix: usize) -> Tensor {
    let mut rng = init::seeded_rng(seed);
    let mut t = init::uniform(&mut rng, rows, cols, 1.5);
    let p = zero_prefix.min(cols);
    for r in 0..rows {
        t.row_mut(r)[..p].fill(0.0);
    }
    t
}

/// Shapes hitting every dispatch path: 0, 1, the 4/8/16 unroll widths, and
/// non-multiples on either side of them.
const DIMS: [usize; 12] = [0, 1, 2, 3, 4, 5, 7, 8, 15, 16, 17, 33];

fn dim() -> impl Strategy<Value = usize> {
    (0usize..DIMS.len()).prop_map(|i| DIMS[i])
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn matmul_family_matches_reference(
        m in dim(), n in dim(), k in dim(),
        seed in 0u64..1_000_000,
        zero_prefix in 0usize..20,
    ) {
        let a = tensor_for(m, k, seed, zero_prefix);
        let b = tensor_for(k, n, seed ^ 0x9e37, 0);
        prop_assert!(matmul::matmul(&a, &b).max_abs_diff(&reference::matmul(&a, &b)) <= TOL);

        // matmul_into against stale destination contents.
        let mut c = Tensor::full(m, n, 7.25);
        matmul::matmul_into(&a, &b, &mut c);
        prop_assert!(c.max_abs_diff(&reference::matmul(&a, &b)) <= TOL);

        // addmm fuses the bias into the accumulator seed.
        let bias = tensor_for(1, n, seed ^ 0x5bd1, 0);
        prop_assert!(
            matmul::addmm(&a, &b, &bias).max_abs_diff(&reference::addmm(&a, &b, &bias)) <= TOL
        );

        // B^T variant: b_t is [n, k].
        let b_t = tensor_for(n, k, seed ^ 0x1234, 0);
        prop_assert!(
            matmul::matmul_nt(&a, &b_t).max_abs_diff(&reference::matmul_nt(&a, &b_t)) <= TOL
        );

        // A^T variant: a_t is [k, m].
        let a_t = tensor_for(k, m, seed ^ 0x4321, zero_prefix);
        prop_assert!(
            matmul::matmul_tn(&a_t, &b).max_abs_diff(&reference::matmul_tn(&a_t, &b)) <= TOL
        );
    }

    #[test]
    fn dot_and_axpy_match_naive(len in dim(), seed in 0u64..1_000_000) {
        let x = tensor_for(1, len, seed, 0);
        let y = tensor_for(1, len, seed ^ 0xfeed, 0);
        let naive: f32 = x.as_slice().iter().zip(y.as_slice()).map(|(a, b)| a * b).sum();
        prop_assert!((matmul::dot(x.as_slice(), y.as_slice()) - naive).abs() <= TOL);

        let mut acc = y.clone();
        matmul::axpy(0.75, x.as_slice(), acc.as_mut_slice());
        for i in 0..len {
            let want = y.as_slice()[i] + 0.75 * x.as_slice()[i];
            prop_assert!((acc.as_slice()[i] - want).abs() <= TOL);
        }
    }

    #[test]
    fn fused_scale_softmax_matches_composed_ops(
        n in dim(), k in dim(),
        seed in 0u64..1_000_000,
        s in 0.05f32..4.0,
        mask_seed in 0u64..1_000_000,
    ) {
        let t = tensor_for(n, k, seed, 0);
        let mask = random_mask(n * k, mask_seed);
        let composed = ops::softmax_rows_masked(&ops::scale(&t, s), &mask);
        let mut fused = t.clone();
        ops::scale_softmax_rows_masked_inplace(&mut fused, s, &mask);
        prop_assert!(fused.max_abs_diff(&composed) <= TOL);
    }

    #[test]
    fn fused_attention_tail_matches_allocating_ops(
        n in 1usize..10, k in 1usize..10, d in 1usize..9,
        seed in 0u64..1_000_000,
    ) {
        let q = tensor_for(n, d, seed, 0);
        let key = tensor_for(n * k, d, seed ^ 0xaa, 0);
        let v = tensor_for(n * k, d, seed ^ 0xbb, 0);
        let mask = random_mask(n * k, seed ^ 0xcc);

        let mut scores = Tensor::full(n, k, -3.0);
        ops::attn_scores_into(&q, &key, 0.5, &mut scores);
        prop_assert!(scores.max_abs_diff(&ops::attn_scores(&q, &key, 0.5)) <= TOL);

        ops::scale_softmax_rows_masked_inplace(&mut scores, 1.0, &mask);
        // The fused sum writes into a column block of a wider tensor.
        let col_off = 2;
        let mut wide = Tensor::full(n, d + col_off + 1, 9.5);
        ops::attn_weighted_sum_into(&scores, &v, &mut wide, col_off);
        let plain = ops::attn_weighted_sum(&scores, &v);
        for r in 0..n {
            for c in 0..d {
                prop_assert!((wide.get(r, col_off + c) - plain.get(r, c)).abs() <= TOL);
            }
        }
    }
}

/// Deterministic pseudo-random mask with roughly 1-in-4 padding slots
/// (including occasional fully-masked rows, which both softmax paths must
/// treat identically).
fn random_mask(len: usize, seed: u64) -> Vec<bool> {
    let mut state = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
    (0..len)
        .map(|_| {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 61) != 0 // 7 of 8 values pass
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn scratch_attention_matches_reference_impl(
        n in 1usize..12,
        k_per in 1usize..8,
        n_heads in 1usize..3,
        head_dim in 1usize..5,
        edge_dim in 1usize..7,
        time_dim in 1usize..6,
        seed in 0u64..1_000_000,
    ) {
        let cfg = TgatConfig {
            dim: n_heads * head_dim,
            edge_dim,
            time_dim,
            n_layers: 1,
            n_heads,
            n_neighbors: k_per,
        };
        let params = TgatParams::init(cfg.clone(), seed).expect("valid config");
        let layer = &params.layers[0];

        let nk = n * k_per;
        let h_src = tensor_for(n, cfg.dim, seed ^ 1, 0);
        let ht0 = tensor_for(n, cfg.time_dim, seed ^ 2, 0);
        // Zero prefix mimics layer 0, where neighbor rows are raw (all-zero)
        // node features and the span pre-scan earns its keep.
        let h_ngh = tensor_for(nk, cfg.dim, seed ^ 3, if seed % 2 == 0 { cfg.dim } else { 0 });
        let e_feat = tensor_for(nk, cfg.edge_dim, seed ^ 4, 0);
        let ht = tensor_for(nk, cfg.time_dim, seed ^ 5, 0);
        let mask = random_mask(nk, seed ^ 6);
        let inp = AttentionInputs {
            h_src: &h_src,
            ht0: &ht0,
            h_ngh: &h_ngh,
            e_feat: &e_feat,
            ht: &ht,
            mask: &mask,
        };

        let want = attention::forward_reference(layer, &cfg, &inp);
        let mut scratch = Scratch::new();
        // Run twice through the same scratch: the second pass reuses (and
        // must fully overwrite) the recycled buffers of the first.
        let first = attention::forward_with(layer, &cfg, &inp, &mut scratch);
        scratch.give(first);
        let got = attention::forward_with(layer, &cfg, &inp, &mut scratch);
        prop_assert!(got.max_abs_diff(&want) <= TOL);
    }
}
