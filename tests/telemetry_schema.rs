//! Schema-drift gate for the unified telemetry snapshot.
//!
//! `TelemetrySnapshot`'s JSON shape is frozen behind
//! [`tg_telemetry::SCHEMA_VERSION`]: the sorted field-path fingerprint of
//! a shape-complete snapshot must match the committed golden file
//! `tests/golden/telemetry_schema.txt` exactly, in both directions. A
//! field added, removed, renamed, or retyped fails this suite until the
//! golden is regenerated *and* the schema version is bumped:
//!
//! ```sh
//! UPDATE_TELEMETRY_GOLDEN=1 cargo test --test telemetry_schema
//! ```
//!
//! CI additionally round-trips a real `--stats-json` artifact produced by
//! the inference bench through this gate (see `.github/workflows/ci.yml`):
//!
//! ```sh
//! ./target/release/inference ... --stats-json telemetry.json
//! TELEMETRY_STATS_JSON=telemetry.json cargo test --test telemetry_schema
//! ```

use tgopt_repro::telemetry::{
    schema_paths, Recorder, TelemetrySnapshot, SCHEMA_VERSION,
};

const GOLDEN: &str = include_str!("golden/telemetry_schema.txt");
const GOLDEN_PATH: &str =
    concat!(env!("CARGO_MANIFEST_DIR"), "/tests/golden/telemetry_schema.txt");

/// A snapshot in which every optional-length sequence has at least one
/// element, so the element paths (`stages[].…`, `latency.workers[].…`)
/// materialize in the fingerprint. Counter *values* are irrelevant:
/// `schema_paths` fingerprints shape and leaf types only.
fn shape_complete() -> TelemetrySnapshot {
    let mut snap = TelemetrySnapshot::new();
    snap.stages = Recorder::disabled().breakdown();
    snap.latency.workers.push(Default::default());
    snap.ingest.per_layer.push(Default::default());
    snap
}

fn fingerprint(snap: &TelemetrySnapshot) -> Vec<String> {
    let value = serde::to_value(snap).expect("snapshot serializes");
    schema_paths(&value)
}

fn golden_lines() -> Vec<String> {
    GOLDEN
        .lines()
        .map(str::trim_end)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Diffs `actual` against the committed golden in both directions and
/// panics with a regeneration hint on any drift.
fn assert_matches_golden(actual: &[String], origin: &str) {
    if std::env::var_os("UPDATE_TELEMETRY_GOLDEN").is_some() {
        let mut text = String::from(
            "# Field-path fingerprint of TelemetrySnapshot (schema_paths).\n\
             # Regenerate: UPDATE_TELEMETRY_GOLDEN=1 cargo test --test telemetry_schema\n\
             # Any diff here is a telemetry schema change: bump SCHEMA_VERSION too.\n",
        );
        for path in actual {
            text.push_str(path);
            text.push('\n');
        }
        std::fs::write(GOLDEN_PATH, text).expect("write golden");
        return;
    }
    let golden = golden_lines();
    let removed: Vec<&String> = golden.iter().filter(|p| !actual.contains(p)).collect();
    let added: Vec<&String> = actual.iter().filter(|p| !golden.contains(p)).collect();
    assert!(
        removed.is_empty() && added.is_empty(),
        "telemetry schema drift detected ({origin}).\n\
         paths in golden but missing from snapshot: {removed:#?}\n\
         paths in snapshot but not in golden: {added:#?}\n\
         If intentional: bump tg_telemetry::SCHEMA_VERSION and regenerate with\n\
         UPDATE_TELEMETRY_GOLDEN=1 cargo test --test telemetry_schema"
    );
}

#[test]
fn fingerprint_matches_committed_golden() {
    assert_matches_golden(&fingerprint(&shape_complete()), "in-process snapshot");
}

#[test]
fn golden_file_is_sorted_and_deduped() {
    if std::env::var_os("UPDATE_TELEMETRY_GOLDEN").is_some() {
        return; // being rewritten by the sibling test this run
    }
    let golden = golden_lines();
    assert!(!golden.is_empty(), "golden fingerprint must not be empty");
    let mut sorted = golden.clone();
    sorted.sort();
    sorted.dedup();
    assert_eq!(golden, sorted, "golden file must stay sorted and duplicate-free");
}

#[test]
fn snapshot_round_trips_and_reserialized_shape_is_stable() {
    let snap = shape_complete();
    let json = serde_json::to_string(&snap).expect("serialize");
    let back: TelemetrySnapshot = serde_json::from_str(&json).expect("deserialize");
    assert_eq!(back, snap, "round trip must preserve every field");
    assert_eq!(back.schema_version, SCHEMA_VERSION);
    assert_eq!(
        fingerprint(&back),
        fingerprint(&snap),
        "re-serialized snapshot changed shape"
    );
}

/// CI hook: when `TELEMETRY_STATS_JSON` names a `--stats-json` artifact
/// written by a bench binary, parse it strictly (every schema field must
/// be present), round-trip it, and hold its shape-completed fingerprint
/// to the same golden. A no-op locally when the variable is unset.
#[test]
fn stats_json_artifact_round_trips_against_golden() {
    let Some(path) = std::env::var_os("TELEMETRY_STATS_JSON") else {
        return;
    };
    let text = std::fs::read_to_string(&path)
        .unwrap_or_else(|e| panic!("cannot read {}: {e}", path.to_string_lossy()));
    let mut snap: TelemetrySnapshot = serde_json::from_str(&text)
        .expect("--stats-json artifact must parse as a TelemetrySnapshot");
    assert_eq!(
        snap.schema_version, SCHEMA_VERSION,
        "artifact was written under a different schema version"
    );
    let rejson = serde_json::to_string(&snap).expect("re-serialize");
    let back: TelemetrySnapshot = serde_json::from_str(&rejson).expect("re-parse");
    assert_eq!(back, snap, "artifact must survive a serde round trip");
    // Offline runs leave `stages`/`workers` empty; shape-complete them so
    // the element paths compare against the same golden as the in-process
    // fingerprint.
    if snap.stages.is_empty() {
        snap.stages = Recorder::disabled().breakdown();
    }
    if snap.latency.workers.is_empty() {
        snap.latency.workers.push(Default::default());
    }
    if snap.ingest.per_layer.is_empty() {
        snap.ingest.per_layer.push(Default::default());
    }
    assert_matches_golden(&fingerprint(&snap), "--stats-json artifact");
}
