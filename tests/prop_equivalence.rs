//! The heavyweight property: on *arbitrary* random dynamic graphs, batch
//! compositions, and optimization configurations, TGOpt's embeddings equal
//! the baseline's within floating-point tolerance.

use proptest::prelude::*;
use tgopt_repro::graph::{Edge, EdgeStream, TemporalGraph};
use tgopt_repro::tensor::init;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

#[derive(Debug, Clone)]
struct Scenario {
    edges: Vec<(u32, u32, u32)>, // (src, dst, gap)
    queries: Vec<(u32, f32)>,    // (node, time-fraction of max)
    n_layers: usize,
    k: usize,
    opt_variant: u8,
    cache_limit: usize,
}

fn scenario() -> impl Strategy<Value = Scenario> {
    (
        proptest::collection::vec((0u32..12, 0u32..12, 0u32..10), 5..80),
        proptest::collection::vec((0u32..12, 0.0f32..1.5), 1..40),
        1usize..=3,
        1usize..5,
        0u8..5,
        1usize..200,
    )
        .prop_map(|(edges, queries, n_layers, k, opt_variant, cache_limit)| Scenario {
            edges,
            queries,
            n_layers,
            k,
            opt_variant,
            cache_limit,
        })
}

fn opt_for(variant: u8, cache_limit: usize) -> OptConfig {
    let base = match variant {
        0 => OptConfig::none(),
        1 => OptConfig::cache_only(),
        2 => OptConfig::cache_dedup(),
        3 => OptConfig { cache_last_layer: true, ..OptConfig::all() },
        _ => OptConfig::all(),
    };
    OptConfig { cache_limit, ..base }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn tgopt_equals_baseline_on_random_graphs(s in scenario()) {
        let mut t = 0.0f32;
        let edges: Vec<Edge> = s
            .edges
            .iter()
            .enumerate()
            .map(|(i, &(src, dst, gap))| {
                t += gap as f32;
                Edge { src, dst, time: t, eid: i as u32 }
            })
            .collect();
        let stream = EdgeStream::from_edges(edges);
        let graph = TemporalGraph::from_stream(&stream);
        let max_t = stream.max_time().max(1.0);

        let cfg = TgatConfig {
            dim: 8,
            edge_dim: 6,
            time_dim: 4,
            n_layers: s.n_layers,
            n_heads: 2,
            n_neighbors: s.k,
        };
        let params = TgatParams::init(cfg, 3).unwrap();
        let mut rng = init::seeded_rng(4);
        let node_features = init::normal(&mut rng, 12, cfg.dim, 0.5);
        let edge_features = init::normal(&mut rng, stream.len(), cfg.edge_dim, 0.5);
        let ctx = GraphContext {
            graph: &graph,
            node_features: &node_features,
            edge_features: &edge_features,
        };

        let mut base = BaselineEngine::new(&params, ctx);
        let mut ours = TgoptEngine::new(&params, ctx, opt_for(s.opt_variant, s.cache_limit));

        // Feed the queries in three chunks so the cache sees repeat targets.
        let ns: Vec<u32> = s.queries.iter().map(|&(n, _)| n).collect();
        let ts: Vec<f32> = s.queries.iter().map(|&(_, f)| f * max_t).collect();
        for chunk in 0..3 {
            let lo = chunk * ns.len() / 3;
            let hi = ((chunk + 2) * ns.len() / 3).min(ns.len()); // overlapping chunks
            if lo >= hi {
                continue;
            }
            let hb = base.embed_batch(&ns[lo..hi], &ts[lo..hi]);
            let ho = ours.embed_batch(&ns[lo..hi], &ts[lo..hi]).unwrap();
            let diff = hb.max_abs_diff(&ho);
            prop_assert!(diff < 1e-4, "chunk {chunk}: diff {diff} with {:?}", s);
            prop_assert!(ho.all_finite());
        }
    }
}
