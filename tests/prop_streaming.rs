//! Streaming-ingest equivalence properties: a server whose graph mutates
//! under it must serve exactly what a cold rebuild would.
//!
//! Every case replays a seeded random interleaving of `submit_edge`,
//! query submissions, explicit compactions, and drains against a
//! deterministic live-ingest server, then checks three things:
//!
//! 1. **Embedding equivalence** — every ticket resolved by a drain equals
//!    (within 1e-5, in submission-row order) a fresh engine over a graph
//!    rebuilt cold from the full edge sequence visible at that drain.
//! 2. **Sampling equivalence** — `GraphView` neighborhoods (base + delta
//!    merge, across compactions) are bit-identical to a cold rebuild's,
//!    including exact-time ties and out-of-order arrivals.
//! 3. **Deadline behavior** — deadlines on a live server reject exactly
//!    as on a frozen one; expired requests never consume an embedding.
//!
//! The pool of ingestible edges deliberately mixes late timestamps,
//! mid-stream arrivals (out of order), and exact ties with base edges, so
//! the delta/base merge order is exercised, not just the append fast path.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};
use tgopt_repro::error::TgError;
use tgopt_repro::graph::{
    Edge, EdgeStream, LiveGraph, NodeId, SamplingStrategy, TemporalGraph, TemporalSampler, Time,
};
use tgopt_repro::serve::{ModelBundle, ServeConfig, TgServer, Ticket};
use tgopt_repro::tensor::init;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::TgoptEngine;

const N_NODES: usize = 12;
const N_BASE: usize = 60;
const N_POOL: usize = 30;

struct World {
    bundle: Arc<ModelBundle>,
    base: Vec<Edge>,
    /// Ingestible edges, eids pre-assigned to the rows `submit_edge` will
    /// hand out (`N_BASE..`). Times mix late, out-of-order, and exact
    /// ties with base timestamps.
    pool: Vec<Edge>,
}

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        for i in 0..N_BASE {
            srcs.push((i % N_NODES) as NodeId);
            dsts.push(((i * 3 + 1) % N_NODES) as NodeId);
            times.push((i + 1) as Time);
        }
        let stream = EdgeStream::new(&srcs, &dsts, &times);
        let base: Vec<Edge> = stream.edges().to_vec();
        let graph = TemporalGraph::from_stream(&stream);
        let mut rng = init::seeded_rng(5);
        let nf = init::normal(&mut rng, N_NODES, cfg.dim, 0.5);
        let ef = init::normal(&mut rng, N_BASE + N_POOL, cfg.edge_dim, 0.5);
        let pool: Vec<Edge> = (0..N_POOL)
            .map(|i| Edge {
                src: ((i * 5 + 2) % N_NODES) as NodeId,
                dst: ((i * 7 + 3) % N_NODES) as NodeId,
                time: match i % 3 {
                    // Past the base stream's end.
                    0 => 61.0 + i as Time,
                    // Out of order: lands mid-stream.
                    1 => 30.5 + i as Time * 0.25,
                    // Exact tie with a base timestamp.
                    _ => (i + 1) as Time,
                },
                eid: (N_BASE + i) as u32,
            })
            .collect();
        World { bundle: Arc::new(ModelBundle::new(params, graph, nf, ef).unwrap()), base, pool }
    })
}

/// The cold oracle: base edges plus the first `n_ingested` pool edges
/// inserted in submission order into a fresh graph, then frozen — exactly
/// the history a `GraphView` at that point claims to serve.
fn cold_graph(n_ingested: usize) -> TemporalGraph {
    let w = world();
    let mut g = TemporalGraph::with_nodes(N_NODES);
    for e in &w.base {
        g.insert(e);
    }
    for e in &w.pool[..n_ingested] {
        g.insert(e);
    }
    g.freeze();
    g
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

/// Decodes raw proptest ints into a query; times span the base stream,
/// the tie region, and past-the-end so inserts land on both sides.
fn decode(node_raw: u32, t_raw: u32) -> (NodeId, Time) {
    ((node_raw % N_NODES as u32) as NodeId, 10.0 + (t_raw % 180) as Time * 0.5)
}

/// Resolves every pending ticket against a fresh engine over the cold
/// rebuild at `n_ingested` edges, in submission order.
fn check_pending(
    pending: &mut Vec<(Ticket, NodeId, Time)>,
    n_ingested: usize,
) -> Result<(), TestCaseError> {
    if pending.is_empty() {
        return Ok(());
    }
    let w = world();
    let graph = cold_graph(n_ingested);
    let ctx = tgopt_repro::tgat::engine::GraphContext {
        graph: &graph,
        node_features: &w.bundle.node_features,
        edge_features: &w.bundle.edge_features,
    };
    let opt = ServeConfig::default().opt;
    let mut eng = TgoptEngine::new(&w.bundle.params, ctx, opt);
    let ns: Vec<NodeId> = pending.iter().map(|&(_, n, _)| n).collect();
    let ts: Vec<Time> = pending.iter().map(|&(_, _, t)| t).collect();
    let h = eng.embed_batch(&ns, &ts).unwrap();
    for (i, (ticket, n, t)) in pending.drain(..).enumerate() {
        let got = ticket.wait().unwrap();
        let diff = max_abs_diff(&got, h.row(i));
        prop_assert!(
            diff < 1e-5,
            "query {i} ({n}, {t}) after {n_ingested} ingests: served row deviates by {diff}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: under arbitrary interleavings of ingest,
    /// query, compaction, and drain, every served embedding equals a cold
    /// rebuild of the edge stream visible at its drain, in row order.
    fn streaming_served_equals_cold_rebuild(
        script in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..48),
        max_batch in 1usize..8,
    ) {
        let w = world();
        let cfg = ServeConfig::default()
            .with_max_batch(max_batch)
            .with_queue_capacity(512)
            .with_live_ingest(true)
            // Compaction happens only where the script says so, keeping
            // each case's delta/CSR split reproducible.
            .with_compact_threshold(usize::MAX);
        let server = TgServer::deterministic(Arc::clone(&w.bundle), cfg).unwrap();

        let mut ingested = 0usize;
        let mut pending: Vec<(Ticket, NodeId, Time)> = Vec::new();
        for &(op, a, b) in &script {
            match op % 5 {
                // Ingest ops get 2/5 weight: interleavings where the graph
                // actually moves are the interesting ones.
                0 | 3 => {
                    if ingested < w.pool.len() {
                        let e = w.pool[ingested];
                        let eid = server.submit_edge(e.src, e.dst, e.time).unwrap();
                        prop_assert_eq!(eid as usize, N_BASE + ingested);
                        ingested += 1;
                    }
                }
                1 => {
                    let (n, t) = decode(a, b);
                    pending.push((server.submit(n, t).unwrap(), n, t));
                }
                2 => {
                    server.drain().unwrap();
                    check_pending(&mut pending, ingested)?;
                }
                _ => {
                    prop_assert!(server.compact_live());
                }
            }
        }
        // Flush the tail — one sentinel query guarantees the final drain
        // actually pins (and therefore prunes) the replay log.
        let (n, t) = decode(3, 9);
        pending.push((server.submit(n, t).unwrap(), n, t));
        server.drain().unwrap();
        check_pending(&mut pending, ingested)?;

        prop_assert_eq!(server.pending_ingest_events(), 0);
        let stats = server.stats();
        prop_assert_eq!(stats.edges_ingested, ingested as u64);
        let ingest = server.ingest_stats().unwrap();
        prop_assert_eq!(ingest.edges_appended, ingested as u64);
        server.shutdown();
    }

    /// Fingerprint equivalence: with last-layer caching on, the
    /// constraint-tracked sweep (DESIGN.md "Constraint-tracked
    /// invalidation") retains exactly the deep entries whose recorded
    /// sample the new edges miss. Earlier (node, time) pairs are
    /// re-queried after ingests so retained layer-2 entries are actually
    /// *served*, and every served row must still match a cold rebuild —
    /// a single wrongly-retained entry surfaces as a row deviation here.
    fn fingerprinted_deep_cache_matches_cold_rebuild(
        script in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..48),
    ) {
        let w = world();
        let mut cfg = ServeConfig::default()
            .with_max_batch(4)
            .with_queue_capacity(512)
            .with_live_ingest(true)
            .with_compact_threshold(usize::MAX);
        cfg.opt.cache_last_layer = true;
        let server = TgServer::deterministic(Arc::clone(&w.bundle), cfg).unwrap();

        let mut ingested = 0usize;
        let mut pending: Vec<(Ticket, NodeId, Time)> = Vec::new();
        let mut history: Vec<(NodeId, Time)> = Vec::new();
        for &(op, a, b) in &script {
            match op % 5 {
                0 | 3 => {
                    if ingested < w.pool.len() {
                        let e = w.pool[ingested];
                        server.submit_edge(e.src, e.dst, e.time).unwrap();
                        ingested += 1;
                    }
                }
                1 => {
                    let (n, t) = decode(a, b);
                    history.push((n, t));
                    pending.push((server.submit(n, t).unwrap(), n, t));
                }
                2 => {
                    // Re-query an earlier pair: its layer-2 entry either
                    // survived the sweeps (and must still be right) or was
                    // removed (and is recomputed against the moved graph).
                    let (n, t) = match history.get(a as usize % history.len().max(1)) {
                        Some(&pair) => pair,
                        None => decode(a, b),
                    };
                    pending.push((server.submit(n, t).unwrap(), n, t));
                }
                _ => {
                    server.drain().unwrap();
                    check_pending(&mut pending, ingested)?;
                }
            }
        }
        let (n, t) = decode(3, 9);
        pending.push((server.submit(n, t).unwrap(), n, t));
        server.drain().unwrap();
        check_pending(&mut pending, ingested)?;
        server.shutdown();
    }

    /// `GraphView` neighborhoods are bit-identical to the cold rebuild's,
    /// for both sampling strategies, at every ingest prefix and with a
    /// compaction injected at an arbitrary point.
    fn view_sampling_matches_cold_rebuild(
        n_ingest in 0usize..=N_POOL,
        // Below N_POOL: compact after that ingest; otherwise never.
        compact_raw in 0usize..(2 * N_POOL),
        k in 1usize..6,
        uniform in any::<bool>(),
        t_raw in proptest::collection::vec(any::<u32>(), 1..24),
    ) {
        let w = world();
        let compact_at = (compact_raw < N_POOL).then_some(compact_raw);
        let live = LiveGraph::new(cold_graph(0)).with_compact_threshold(usize::MAX);
        for (i, e) in w.pool[..n_ingest].iter().enumerate() {
            live.append(e);
            if compact_at == Some(i) {
                live.compact();
            }
        }
        let cold = cold_graph(n_ingest);
        let strategy = if uniform {
            SamplingStrategy::Uniform { seed: 11 }
        } else {
            SamplingStrategy::MostRecent
        };
        let sampler = TemporalSampler::new(k, strategy);
        let ns: Vec<NodeId> = t_raw.iter().map(|&r| (r % N_NODES as u32) as NodeId).collect();
        let ts: Vec<Time> = t_raw.iter().map(|&r| 1.0 + (r % 200) as Time * 0.5).collect();
        let view = live.view();
        prop_assert_eq!(view.num_edges(), (N_BASE + n_ingest) as u64);
        let a = sampler.sample(&cold, &ns, &ts);
        let b = sampler.sample_view(&view, &ns, &ts);
        prop_assert_eq!(&a.nodes, &b.nodes);
        prop_assert_eq!(&a.times, &b.times);
        prop_assert_eq!(&a.eids, &b.eids);
        prop_assert_eq!(&a.dts, &b.dts);
    }

    /// Deadlines behave identically on a live server: an expired request
    /// resolves to `DeadlineExceeded` (at submit or at drain), never to a
    /// stale embedding, and live requests still match the cold rebuild.
    fn deadlines_respected_while_ingesting(
        reqs in proptest::collection::vec((any::<u32>(), any::<u32>(), any::<bool>()), 1..24),
        n_ingest in 0usize..=N_POOL,
    ) {
        let w = world();
        let cfg = ServeConfig::default()
            .with_max_batch(4)
            .with_queue_capacity(512)
            .with_live_ingest(true)
            .with_compact_threshold(usize::MAX);
        let server = TgServer::deterministic(Arc::clone(&w.bundle), cfg).unwrap();
        for e in &w.pool[..n_ingest] {
            server.submit_edge(e.src, e.dst, e.time).unwrap();
        }
        let far = Instant::now() + Duration::from_secs(3600);
        let mut live_tickets: Vec<(Ticket, NodeId, Time)> = Vec::new();
        let mut doomed: Vec<Ticket> = Vec::new();
        let mut rejected_at_submit = 0u64;
        for &(a, b, expire) in &reqs {
            let (n, t) = decode(a, b);
            if expire {
                // A deadline that is already (or imminently) expired: the
                // server may reject at submit or at drain — either way it
                // must be an error, never an embedding.
                match server.submit_with_deadline(n, t, Instant::now()) {
                    Ok(ticket) => doomed.push(ticket),
                    Err(TgError::DeadlineExceeded) => rejected_at_submit += 1,
                    Err(e) => prop_assert!(false, "unexpected submit error: {e}"),
                }
            } else {
                live_tickets.push((server.submit_with_deadline(n, t, far).unwrap(), n, t));
            }
        }
        server.drain().unwrap();
        for ticket in doomed {
            prop_assert!(
                matches!(ticket.wait(), Err(TgError::DeadlineExceeded)),
                "expired request must resolve to DeadlineExceeded"
            );
        }
        check_pending(&mut live_tickets, n_ingest)?;
        let stats = server.shutdown();
        prop_assert_eq!(
            stats.rejected_deadline,
            reqs.iter().filter(|&&(_, _, e)| e).count() as u64
        );
        prop_assert!(rejected_at_submit <= stats.rejected_deadline);
    }
}
