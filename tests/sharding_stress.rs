//! Threaded shard-router stress: concurrent clients, live ingest, and
//! invalidation hammering an S-shard [`ShardRouter`], then the books are
//! audited. Values are checked by the deterministic property suite
//! (`prop_sharding.rs`); this file pins the *accounting* under real
//! concurrency — replicated ingest counted once per shard but once per
//! edge at the router, the merged `submitted >= completed +
//! rejected_deadline` identity, per-shard sums matching merged totals,
//! and shard caches draining to zero on a full invalidation sweep.

use std::sync::Arc;
use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::{NodeId, ShardAssignment, TemporalGraph, Time};
use tgopt_repro::serve::{ModelBundle, ServeConfig, ShardRouter};
use tgopt_repro::tensor::{init, Tensor};
use tgopt_repro::tgat::{TgatConfig, TgatParams};

const N_SHARDS: usize = 3;
const N_INGEST: usize = 120;

/// Bundle over a generated graph with `N_INGEST` spare edge-feature rows
/// so live ingest has capacity.
fn bundle() -> (Arc<ModelBundle>, usize, Time) {
    let spec = spec_by_name("snap-email").unwrap();
    let data = generate(&spec, 0.01, 21).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, 3).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let num_nodes = data.stream.num_nodes();
    let max_t = data.stream.max_time();
    let node_features = Tensor::zeros(num_nodes, cfg.dim);
    let base_rows = data.edge_features.rows();
    let mut rng = init::seeded_rng(9);
    let extra = init::normal(&mut rng, N_INGEST, data.dim(), 0.5);
    let mut all = Vec::with_capacity((base_rows + N_INGEST) * data.dim());
    all.extend_from_slice(data.edge_features.as_slice());
    all.extend_from_slice(extra.as_slice());
    let edge_features = Tensor::from_vec(base_rows + N_INGEST, data.dim(), all);
    let b = ModelBundle::new(params, graph, node_features, edge_features).unwrap();
    (Arc::new(b), num_nodes, max_t)
}

/// Queries over sources with history, all past the stream's end.
fn workload(bundle: &ModelBundle, n: usize, t: Time) -> (Vec<NodeId>, Vec<Time>) {
    let mut ns = Vec::with_capacity(n);
    let mut node = 0usize;
    while ns.len() < n {
        if bundle.graph.degree(node as NodeId) > 0 {
            ns.push(node as NodeId);
        }
        node = (node + 1) % bundle.graph.num_nodes();
    }
    (ns, vec![t; n])
}

#[test]
fn sharded_serving_under_concurrent_ingest_keeps_the_books() {
    let (bundle, num_nodes, max_t) = bundle();
    let t_query = max_t * 1.01;
    let (ns, ts) = workload(&bundle, 30, t_query);

    let cfg = ServeConfig::default()
        .with_workers(2)
        .with_queue_capacity(4096)
        .with_live_ingest(true);
    let assignment = ShardAssignment::hash(N_SHARDS);
    let router =
        ShardRouter::threaded(Arc::clone(&bundle), cfg, assignment).unwrap();

    const CLIENTS: usize = 3;
    const ROUNDS: usize = 6;
    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for _ in 0..CLIENTS {
            let router = &router;
            let (ns, ts) = (&ns, &ts);
            clients.push(scope.spawn(move || {
                for _ in 0..ROUNDS {
                    let tickets = router.submit_many(ns, ts).unwrap();
                    for ticket in tickets {
                        // Live edges land mid-flight, so values shift by
                        // design; every ticket must still resolve cleanly.
                        ticket.wait().unwrap();
                    }
                }
            }));
        }

        // Replicated ingest racing the clients: edge ids must come out
        // sequential even though every insert fans out to all shards.
        let ingester = scope.spawn(|| {
            let base = bundle.graph.num_edges() as usize;
            for i in 0..N_INGEST {
                let src = (i * 7 + 1) as NodeId % num_nodes as NodeId;
                let dst = (i * 11 + 3) as NodeId % num_nodes as NodeId;
                let time = t_query - 0.5 + i as Time * 1e-3;
                let eid = router.submit_edge(src, dst, time).unwrap();
                assert_eq!(eid as usize, base + i, "edge ids must stay sequential");
                if i % 16 == 0 {
                    std::thread::yield_now();
                }
            }
        });

        // And an invalidator sweeping every node across every shard.
        let invalidator = scope.spawn(|| {
            for node in 0..num_nodes {
                router.invalidate_node(node as NodeId);
            }
        });

        for c in clients {
            c.join().expect("client thread panicked");
        }
        ingester.join().expect("ingester panicked");
        invalidator.join().expect("invalidator panicked");
    });

    // Ingest accounting: once per edge at the router, once per shard in
    // the merged counters, the full sequence in every shard.
    assert_eq!(router.edges_accepted(), N_INGEST as u64);
    let merged = router.stats();
    assert_eq!(merged.edges_ingested, (N_INGEST * N_SHARDS) as u64);
    let per_shard = router.shard_stats();
    assert_eq!(per_shard.len(), N_SHARDS);
    for (i, s) in per_shard.iter().enumerate() {
        assert_eq!(
            s.edges_ingested, N_INGEST as u64,
            "shard {i} missed part of the replicated edge sequence"
        );
        assert!(
            s.submitted >= s.completed + s.rejected_deadline,
            "shard {i} identity violated: {s:?}"
        );
    }
    assert_eq!(
        per_shard.iter().map(|s| s.submitted).sum::<u64>(),
        merged.submitted,
        "per-shard submissions must sum to the merged total"
    );

    // Telemetry carries one per-shard section per shard, consistent with
    // the shard stats it was derived from.
    let telemetry = router.telemetry();
    assert_eq!(telemetry.shards.len(), N_SHARDS);
    for (sect, s) in telemetry.shards.iter().zip(&per_shard) {
        assert_eq!(sect.submitted, s.submitted);
        assert_eq!(sect.completed, s.completed);
    }

    // Quiesced: a full sweep leaves every shard's cache empty — an
    // underflow or cross-shard leak would show up as a nonzero count.
    for i in 0..N_SHARDS {
        for node in 0..num_nodes {
            router.shard(i).invalidate_node(node as NodeId);
        }
        assert_eq!(router.shard(i).shared_cache().len(), 0, "shard {i} cache not drained");
    }

    let finals = router.shutdown();
    assert_eq!(
        finals.completed,
        (CLIENTS * ROUNDS * 30) as u64,
        "every submitted request must complete"
    );
    assert_eq!(finals.rejected_deadline, 0);
    assert!(finals.submitted >= finals.completed + finals.rejected_deadline);
}
