//! Invalidation racing with serving traffic.
//!
//! Invalidation removes cache entries while worker threads are looking up
//! and storing into the same sharded tables. Because every cached value is
//! a deterministic function of its key, a race can only change *whether* a
//! key is served from cache — never what value comes back. These tests pin
//! that, plus the accounting invariants: `len` / `bytes_used` /
//! `total_evictions` must never underflow or exceed their bounds no matter
//! how invalidation interleaves with stores.

use std::sync::Arc;
use tgopt_repro::datasets::{generate, spec_by_name};
use tgopt_repro::graph::{NodeId, TemporalGraph, Time};
use tgopt_repro::serve::{ModelBundle, ServeConfig, TgServer};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};

fn bundle() -> (Arc<ModelBundle>, usize) {
    let spec = spec_by_name("snap-email").unwrap();
    let data = generate(&spec, 0.01, 21).unwrap();
    let cfg = TgatConfig {
        dim: 8,
        edge_dim: data.dim(),
        time_dim: 8,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 4,
    };
    let params = TgatParams::init(cfg, 3).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let num_nodes = data.stream.num_nodes();
    let node_features = Tensor::zeros(num_nodes, cfg.dim);
    let b = ModelBundle::new(params, graph, node_features, data.edge_features).unwrap();
    (Arc::new(b), num_nodes)
}

/// Queries drawn from the busiest sources, all at one post-stream time.
fn workload(bundle: &ModelBundle, n: usize) -> (Vec<NodeId>, Vec<Time>) {
    let mut ns = Vec::with_capacity(n);
    let max_t = {
        let mut t: Time = 0.0;
        for node in 0..bundle.graph.num_nodes() {
            for e in bundle.graph.neighbors(node as NodeId) {
                t = t.max(e.time);
            }
        }
        t
    };
    let t = max_t * 1.01;
    let mut node = 0usize;
    while ns.len() < n {
        if bundle.graph.degree(node as NodeId) > 0 {
            ns.push(node as NodeId);
        }
        node = (node + 1) % bundle.graph.num_nodes();
    }
    (ns, vec![t; n])
}

#[test]
fn invalidation_racing_with_traffic_keeps_values_and_accounting_correct() {
    let (bundle, num_nodes) = bundle();
    let (ns, ts) = workload(&bundle, 30);

    // Ground truth, computed once up front: invalidation can only force
    // recomputation, never change a value.
    let expected: Tensor = {
        let ctx = GraphContext {
            graph: &bundle.graph,
            node_features: &bundle.node_features,
            edge_features: &bundle.edge_features,
        };
        BaselineEngine::new(&bundle.params, ctx).embed_batch(&ns, &ts)
    };

    let cfg = ServeConfig::default().with_workers(3).with_queue_capacity(4096);
    let server = TgServer::threaded(Arc::clone(&bundle), cfg).unwrap();
    let shared = server.shared_cache();
    let limit = shared.limit();

    std::thread::scope(|scope| {
        // Three client threads replaying the workload repeatedly.
        let mut clients = Vec::new();
        for _ in 0..3 {
            let server = &server;
            let (ns, ts) = (&ns, &ts);
            let expected = &expected;
            clients.push(scope.spawn(move || {
                for _round in 0..6 {
                    let tickets = server.submit_many(ns, ts).unwrap();
                    for (i, ticket) in tickets.into_iter().enumerate() {
                        let row = ticket.wait().unwrap();
                        let diff: f32 = row
                            .iter()
                            .zip(expected.row(i))
                            .map(|(a, b)| (a - b).abs())
                            .fold(0.0, f32::max);
                        assert!(
                            diff < 1e-4,
                            "query {i}: wrong embedding for its key (diff {diff})"
                        );
                    }
                }
            }));
        }

        // Meanwhile, hammer invalidation over every node, twice around.
        let invalidator = scope.spawn(|| {
            let mut removed_total = 0usize;
            for sweep in 0..2 {
                for node in 0..num_nodes {
                    removed_total += server.invalidate_node(node as NodeId);
                    if node % 64 == 0 && sweep == 0 {
                        std::thread::yield_now();
                    }
                }
            }
            removed_total
        });

        for c in clients {
            c.join().expect("client thread panicked");
        }
        invalidator.join().expect("invalidator panicked");
    });

    // Accounting invariants after the storm: the live count is bounded (an
    // underflowing fetch_sub would wrap to a huge usize and trip this),
    // payload bytes follow the count exactly, and evictions are sane.
    assert!(shared.len() <= limit, "len {} exceeds limit {limit}", shared.len());
    let dim = shared.dim().unwrap();
    assert_eq!(shared.bytes_used(), shared.len() * dim * std::mem::size_of::<f32>());

    let stats = server.shutdown();
    assert_eq!(stats.completed, 3 * 6 * 30, "every request must complete");
    assert_eq!(stats.rejected_deadline, 0);

    // Quiesced: invalidating everything must drain the cache to exactly
    // zero — a leak or an underflow would leave len() != 0.
    let removed: usize = (0..num_nodes).map(|n| shared.invalidate_node(n as NodeId)).sum();
    assert_eq!(shared.len(), 0, "after removing {removed} entries the cache must be empty");
    assert_eq!(shared.bytes_used(), 0);
}

#[test]
fn invalidation_racing_with_tiny_cache_never_breaks_the_limit() {
    // A tiny cache forces constant eviction, maximizing contention between
    // the eviction path's count decrements and invalidation's.
    let (bundle, num_nodes) = bundle();
    let (ns, ts) = workload(&bundle, 20);

    let opt = tgopt_repro::tgopt::OptConfig::all().with_cache_limit(16);
    let cfg = ServeConfig::default()
        .with_workers(2)
        .with_queue_capacity(4096)
        .with_opt(opt);
    let server = TgServer::threaded(Arc::clone(&bundle), cfg).unwrap();
    let shared = server.shared_cache();

    std::thread::scope(|scope| {
        let client = scope.spawn(|| {
            for _ in 0..8 {
                let tickets = server.submit_many(&ns, &ts).unwrap();
                for t in tickets {
                    t.wait().unwrap();
                }
            }
        });
        let invalidator = scope.spawn(|| {
            for _ in 0..4 {
                for node in 0..num_nodes {
                    server.invalidate_node(node as NodeId);
                }
            }
        });
        client.join().expect("client panicked");
        invalidator.join().expect("invalidator panicked");
    });

    assert!(shared.len() <= 16, "limit breached: {}", shared.len());
    let evictions = shared.total_evictions();
    // u64 counter: an underflow would show up as an absurd magnitude.
    assert!(evictions < u64::MAX / 2, "eviction counter wrapped: {evictions}");
    server.shutdown();
}
