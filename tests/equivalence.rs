//! The paper's central correctness claim (§5.1.3): TGOpt produces the same
//! embeddings as the baseline, within floating-point tolerance, on every
//! dataset and under every optimization configuration.

use tgopt_repro::datasets::{all_specs, generate};
use tgopt_repro::graph::{BatchIter, TemporalGraph};
use tgopt_repro::tensor::Tensor;
use tgopt_repro::tgat::engine::GraphContext;
use tgopt_repro::tgat::{BaselineEngine, TgatConfig, TgatParams};
use tgopt_repro::tgopt::{OptConfig, TgoptEngine};

const TOL: f32 = 1e-4;

fn tiny_cfg(edge_dim: usize) -> TgatConfig {
    TgatConfig { dim: 8, edge_dim, time_dim: 8, n_layers: 2, n_heads: 2, n_neighbors: 5 }
}

/// Replays a dataset through both engines batch by batch and compares every
/// output tensor elementwise.
fn check_dataset(name: &str, opt: OptConfig, batch_size: usize) {
    let spec = all_specs().into_iter().find(|s| s.name == name).unwrap();
    let data = generate(&spec, 0.002, 13).unwrap();
    let cfg = tiny_cfg(data.dim());
    let params = TgatParams::init(cfg, 5).unwrap();
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &node_features,
        edge_features: &data.edge_features,
    };
    let mut base = BaselineEngine::new(&params, ctx);
    let mut ours = TgoptEngine::new(&params, ctx, opt);
    for batch in BatchIter::new(&data.stream, batch_size) {
        let (ns, ts) = batch.targets();
        let hb = base.embed_batch(&ns, &ts);
        let ho = ours.embed_batch(&ns, &ts).unwrap();
        let diff = hb.max_abs_diff(&ho);
        assert!(
            diff < TOL,
            "{name} batch {}: max abs diff {diff} exceeds tolerance ({opt:?})",
            batch.index
        );
        assert!(ho.all_finite(), "{name}: non-finite embedding");
    }
}

#[test]
fn all_datasets_match_baseline_with_all_optimizations() {
    for spec in all_specs() {
        check_dataset(spec.name, OptConfig::all(), 50);
    }
}

#[test]
fn bipartite_dataset_matches_under_every_ablation_stage() {
    for opt in [
        OptConfig::none(),
        OptConfig::cache_only(),
        OptConfig::cache_dedup(),
        OptConfig::all(),
    ] {
        check_dataset("jodie-wiki", opt, 50);
    }
}

#[test]
fn homogeneous_dataset_matches_under_every_ablation_stage() {
    for opt in [
        OptConfig::none(),
        OptConfig::cache_only(),
        OptConfig::cache_dedup(),
        OptConfig::all(),
    ] {
        check_dataset("snap-msg", opt, 50);
    }
}

#[test]
fn equivalence_holds_under_tiny_cache_and_window() {
    check_dataset("snap-email", OptConfig::all().with_cache_limit(8), 50);
    check_dataset("snap-email", OptConfig::all().with_time_window(1), 50);
}

#[test]
fn equivalence_holds_for_odd_batch_sizes() {
    check_dataset("jodie-mooc", OptConfig::all(), 1);
    check_dataset("jodie-mooc", OptConfig::all(), 7);
    check_dataset("jodie-mooc", OptConfig::all(), 1000);
}

#[test]
fn parallel_store_configuration_matches() {
    let opt = OptConfig { parallel_store: true, ..OptConfig::all() };
    check_dataset("snap-msg", opt, 50);
}

#[test]
fn cache_last_layer_matches() {
    let opt = OptConfig { cache_last_layer: true, ..OptConfig::all() };
    check_dataset("jodie-reddit", opt, 50);
}
