//! Sharding equivalence properties: a node-partitioned [`ShardRouter`]
//! must be semantically invisible. For arbitrary interleavings of
//! queries, live edge ingest, compactions, and drains, the multi-shard
//! router, a single-shard router, and a direct engine over a cold graph
//! rebuild must all agree within 1e-5, row for row.
//!
//! Each case replays one seeded random script against *two* routers
//! built from the same bundle — S shards and 1 shard — checking at every
//! drain point:
//!
//! 1. **Sharded ≡ cold rebuild** — every resolved ticket equals a fresh
//!    engine over the edge sequence visible at that drain.
//! 2. **Sharded ≡ single-shard** — the S-shard and 1-shard routers give
//!    the same rows for the same script (the partitioning never leaks
//!    into results, only into *where* work runs).
//! 3. **Router accounting** — replicated ingest shows up once per shard
//!    in the merged counters while [`ShardRouter::edges_accepted`] stays
//!    deduplicated; the `submitted >= completed + rejected_deadline`
//!    identity survives the merge; per-shard stats sum to the merged
//!    totals.
//!
//! The deterministic shard mode drains shard-by-shard on the calling
//! thread, so every case is exactly reproducible.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::sync::{Arc, OnceLock};
use tgopt_repro::graph::{
    Edge, EdgeStream, NodeId, ShardAssignment, TemporalGraph, Time,
};
use tgopt_repro::serve::{ModelBundle, ServeConfig, ShardRouter, Ticket};
use tgopt_repro::tensor::init;
use tgopt_repro::tgat::{TgatConfig, TgatParams};
use tgopt_repro::tgopt::TgoptEngine;

const N_NODES: usize = 12;
const N_BASE: usize = 60;
const N_POOL: usize = 24;

struct World {
    bundle: Arc<ModelBundle>,
    base: Vec<Edge>,
    /// Ingestible edges with eids pre-assigned to the rows `submit_edge`
    /// hands out (`N_BASE..`); times mix late, out-of-order, and exact
    /// ties so the replicated delta merge is exercised on every shard.
    pool: Vec<Edge>,
}

fn world() -> &'static World {
    static W: OnceLock<World> = OnceLock::new();
    W.get_or_init(|| {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        for i in 0..N_BASE {
            srcs.push((i % N_NODES) as NodeId);
            dsts.push(((i * 3 + 1) % N_NODES) as NodeId);
            times.push((i + 1) as Time);
        }
        let stream = EdgeStream::new(&srcs, &dsts, &times);
        let base: Vec<Edge> = stream.edges().to_vec();
        let graph = TemporalGraph::from_stream(&stream);
        let mut rng = init::seeded_rng(5);
        let nf = init::normal(&mut rng, N_NODES, cfg.dim, 0.5);
        let ef = init::normal(&mut rng, N_BASE + N_POOL, cfg.edge_dim, 0.5);
        let pool: Vec<Edge> = (0..N_POOL)
            .map(|i| Edge {
                src: ((i * 5 + 2) % N_NODES) as NodeId,
                dst: ((i * 7 + 3) % N_NODES) as NodeId,
                time: match i % 3 {
                    0 => 61.0 + i as Time,
                    1 => 30.5 + i as Time * 0.25,
                    _ => (i + 1) as Time,
                },
                eid: (N_BASE + i) as u32,
            })
            .collect();
        World { bundle: Arc::new(ModelBundle::new(params, graph, nf, ef).unwrap()), base, pool }
    })
}

/// The cold oracle: base edges plus the first `n_ingested` pool edges in
/// submission order, frozen — the history every shard's view claims.
fn cold_graph(n_ingested: usize) -> TemporalGraph {
    let w = world();
    let mut g = TemporalGraph::with_nodes(N_NODES);
    for e in &w.base {
        g.insert(e);
    }
    for e in &w.pool[..n_ingested] {
        g.insert(e);
    }
    g.freeze();
    g
}

fn max_abs_diff(a: &[f32], b: &[f32]) -> f32 {
    a.iter().zip(b).map(|(x, y)| (x - y).abs()).fold(0.0, f32::max)
}

fn decode(node_raw: u32, t_raw: u32) -> (NodeId, Time) {
    ((node_raw % N_NODES as u32) as NodeId, 10.0 + (t_raw % 180) as Time * 0.5)
}

fn assignment(degree_balanced: bool, n_shards: usize) -> ShardAssignment {
    if degree_balanced {
        ShardAssignment::degree_balanced(&world().bundle.graph, n_shards)
    } else {
        ShardAssignment::hash(n_shards)
    }
}

/// Resolves every pending (multi, single) ticket pair against the cold
/// rebuild at `n_ingested` edges and against each other.
fn check_pending(
    pending: &mut Vec<(Ticket, Ticket, NodeId, Time)>,
    n_ingested: usize,
) -> Result<(), TestCaseError> {
    if pending.is_empty() {
        return Ok(());
    }
    let w = world();
    let graph = cold_graph(n_ingested);
    let ctx = tgopt_repro::tgat::engine::GraphContext {
        graph: &graph,
        node_features: &w.bundle.node_features,
        edge_features: &w.bundle.edge_features,
    };
    let opt = ServeConfig::default().opt;
    let mut eng = TgoptEngine::new(&w.bundle.params, ctx, opt);
    let ns: Vec<NodeId> = pending.iter().map(|&(_, _, n, _)| n).collect();
    let ts: Vec<Time> = pending.iter().map(|&(_, _, _, t)| t).collect();
    let h = eng.embed_batch(&ns, &ts).unwrap();
    for (i, (multi, single, n, t)) in pending.drain(..).enumerate() {
        let got_multi = multi.wait().unwrap();
        let got_single = single.wait().unwrap();
        let diff_cold = max_abs_diff(&got_multi, h.row(i));
        prop_assert!(
            diff_cold < 1e-5,
            "query {i} ({n}, {t}) after {n_ingested} ingests: sharded row deviates \
             from the cold rebuild by {diff_cold}"
        );
        let diff_single = max_abs_diff(&got_multi, &got_single);
        prop_assert!(
            diff_single < 1e-5,
            "query {i} ({n}, {t}): sharded and single-shard rows diverge by {diff_single}"
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The headline property: under arbitrary interleavings of ingest,
    /// query, compaction, and drain, a multi-shard router serves exactly
    /// what a single-shard router and a cold rebuild serve, and the
    /// router-level accounting holds.
    fn sharded_equals_single_shard_and_cold_rebuild(
        script in proptest::collection::vec((any::<u8>(), any::<u32>(), any::<u32>()), 1..40),
        n_shards in 2usize..=4,
        max_batch in 1usize..8,
        degree_balanced in any::<bool>(),
    ) {
        let w = world();
        let cfg = ServeConfig::default()
            .with_max_batch(max_batch)
            .with_queue_capacity(512)
            .with_live_ingest(true)
            .with_compact_threshold(usize::MAX);
        let multi = ShardRouter::deterministic(
            Arc::clone(&w.bundle), cfg, assignment(degree_balanced, n_shards)).unwrap();
        let single = ShardRouter::deterministic(
            Arc::clone(&w.bundle), cfg, assignment(degree_balanced, 1)).unwrap();

        let mut ingested = 0usize;
        let mut pending: Vec<(Ticket, Ticket, NodeId, Time)> = Vec::new();
        for &(op, a, b) in &script {
            match op % 5 {
                // Ingest ops get 2/5 weight: replicated deltas moving
                // under the shards are the interesting interleavings.
                0 | 3 => {
                    if ingested < w.pool.len() {
                        let e = w.pool[ingested];
                        let em = multi.submit_edge(e.src, e.dst, e.time).unwrap();
                        let es = single.submit_edge(e.src, e.dst, e.time).unwrap();
                        prop_assert_eq!(em as usize, N_BASE + ingested,
                            "replicated ingest must hand out the global edge id");
                        prop_assert_eq!(em, es);
                        ingested += 1;
                    }
                }
                1 => {
                    let (n, t) = decode(a, b);
                    let tm = multi.submit(n, t).unwrap();
                    let ts_ = single.submit(n, t).unwrap();
                    prop_assert!(multi.shard_of(n) < n_shards);
                    pending.push((tm, ts_, n, t));
                }
                2 => {
                    multi.drain().unwrap();
                    single.drain().unwrap();
                    check_pending(&mut pending, ingested)?;
                }
                _ => {
                    prop_assert!(multi.compact_live());
                    prop_assert!(single.compact_live());
                }
            }
        }
        // Flush the tail — one sentinel query per router guarantees the
        // final drain pins (and therefore prunes) every replay log.
        let (n, t) = decode(3, 9);
        pending.push((multi.submit(n, t).unwrap(), single.submit(n, t).unwrap(), n, t));
        multi.drain().unwrap();
        single.drain().unwrap();
        check_pending(&mut pending, ingested)?;

        // Router accounting: ingest is counted once per shard in the
        // merged stats, once per edge at the router; submissions route to
        // exactly one shard so they sum without multiplication.
        prop_assert_eq!(multi.queued(), 0);
        prop_assert_eq!(multi.edges_accepted(), ingested as u64);
        let merged = multi.stats();
        prop_assert_eq!(merged.edges_ingested, (ingested * n_shards) as u64);
        prop_assert!(merged.submitted >= merged.completed + merged.rejected_deadline);
        let per_shard = multi.shard_stats();
        prop_assert_eq!(per_shard.len(), n_shards);
        prop_assert_eq!(per_shard.iter().map(|s| s.submitted).sum::<u64>(), merged.submitted);
        prop_assert_eq!(per_shard.iter().map(|s| s.completed).sum::<u64>(), merged.completed);
        for s in &per_shard {
            prop_assert_eq!(s.edges_ingested, ingested as u64,
                "every shard must see the full replicated edge sequence");
        }

        let final_multi = multi.shutdown();
        prop_assert_eq!(final_multi.completed, merged.completed);
        single.shutdown();
    }

    /// Routing is consistent: the shard that accepts a query is always
    /// the assignment owner, over both strategies, and every shard ends
    /// up owning at least one node on a graph wider than the shard count.
    fn routing_follows_the_assignment(
        nodes in proptest::collection::vec(any::<u32>(), 1..64),
        n_shards in 1usize..=4,
        degree_balanced in any::<bool>(),
    ) {
        let a = assignment(degree_balanced, n_shards);
        for &raw in &nodes {
            let n = raw % (4 * N_NODES as u32); // include ids past the table
            let owner = a.owner(n);
            prop_assert!(owner < n_shards);
            prop_assert_eq!(owner, a.owner(n), "ownership must be stable");
        }
        let counts = a.counts(N_NODES);
        prop_assert_eq!(counts.iter().sum::<usize>(), N_NODES);
        if n_shards <= N_NODES && degree_balanced {
            prop_assert!(counts.iter().all(|&c| c > 0),
                "degree-balanced must spread {N_NODES} nodes over {n_shards} shards: {counts:?}");
        }
    }
}
