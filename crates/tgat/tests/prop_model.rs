//! Property-based tests for the TGAT model components: the attention
//! operator's masking/batching invariants and the time encoder's algebra,
//! over arbitrary inputs.

use proptest::prelude::*;
use tg_tensor::Tensor;
use tgat::attention::{forward, AttentionInputs};
use tgat::{TgatConfig, TgatParams, TimeEncoder};

fn cfg() -> TgatConfig {
    TgatConfig { dim: 6, edge_dim: 4, time_dim: 4, n_layers: 2, n_heads: 2, n_neighbors: 3 }
}

/// Random attention inputs for `n` targets.
#[derive(Debug, Clone)]
struct Inputs {
    h_src: Vec<f32>,
    ht0: Vec<f32>,
    h_ngh: Vec<f32>,
    e_feat: Vec<f32>,
    ht: Vec<f32>,
    mask: Vec<bool>,
    n: usize,
}

fn inputs(max_n: usize) -> impl Strategy<Value = Inputs> {
    let c = cfg();
    (1..=max_n).prop_flat_map(move |n| {
        let k = c.n_neighbors;
        (
            proptest::collection::vec(-2.0f32..2.0, n * c.dim),
            proptest::collection::vec(-1.0f32..1.0, n * c.time_dim),
            proptest::collection::vec(-2.0f32..2.0, n * k * c.dim),
            proptest::collection::vec(-2.0f32..2.0, n * k * c.edge_dim),
            proptest::collection::vec(-1.0f32..1.0, n * k * c.time_dim),
            proptest::collection::vec(any::<bool>(), n * k),
        )
            .prop_map(move |(h_src, ht0, h_ngh, e_feat, ht, mask)| Inputs {
                h_src,
                ht0,
                h_ngh,
                e_feat,
                ht,
                mask,
                n,
            })
    })
}

fn run_attention(params: &TgatParams, inp: &Inputs) -> Tensor {
    let c = cfg();
    let k = c.n_neighbors;
    forward(
        &params.layers[0],
        &c,
        &AttentionInputs {
            h_src: &Tensor::from_vec(inp.n, c.dim, inp.h_src.clone()),
            ht0: &Tensor::from_vec(inp.n, c.time_dim, inp.ht0.clone()),
            h_ngh: &Tensor::from_vec(inp.n * k, c.dim, inp.h_ngh.clone()),
            e_feat: &Tensor::from_vec(inp.n * k, c.edge_dim, inp.e_feat.clone()),
            ht: &Tensor::from_vec(inp.n * k, c.time_dim, inp.ht.clone()),
            mask: &inp.mask,
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn attention_output_is_finite_and_well_shaped(inp in inputs(6)) {
        let params = TgatParams::init(cfg(), 1).unwrap();
        let out = run_attention(&params, &inp);
        prop_assert_eq!(out.shape(), (inp.n, cfg().dim));
        prop_assert!(out.all_finite());
    }

    #[test]
    fn masked_slots_never_influence_attention(inp in inputs(4), noise in -100.0f32..100.0) {
        let params = TgatParams::init(cfg(), 1).unwrap();
        let base = run_attention(&params, &inp);
        // Corrupt every masked slot's neighbor inputs with large noise.
        let c = cfg();
        let k = c.n_neighbors;
        let mut corrupted = inp.clone();
        for slot in 0..inp.n * k {
            if !inp.mask[slot] {
                for d in 0..c.dim {
                    corrupted.h_ngh[slot * c.dim + d] += noise;
                }
                for d in 0..c.edge_dim {
                    corrupted.e_feat[slot * c.edge_dim + d] -= noise;
                }
                for d in 0..c.time_dim {
                    corrupted.ht[slot * c.time_dim + d] += noise * 0.5;
                }
            }
        }
        let out = run_attention(&params, &corrupted);
        prop_assert!(base.max_abs_diff(&out) < 1e-4, "masked slots leaked into the output");
    }

    #[test]
    fn attention_rows_are_independent(inp in inputs(5)) {
        // Permuting *other* targets must not change a target's output row.
        let params = TgatParams::init(cfg(), 1).unwrap();
        let full = run_attention(&params, &inp);
        let c = cfg();
        let k = c.n_neighbors;
        for i in 0..inp.n {
            let pick = |v: &[f32], w: usize, rows: std::ops::Range<usize>| -> Vec<f32> {
                v[rows.start * w..rows.end * w].to_vec()
            };
            let single = Inputs {
                h_src: pick(&inp.h_src, c.dim, i..i + 1),
                ht0: pick(&inp.ht0, c.time_dim, i..i + 1),
                h_ngh: pick(&inp.h_ngh, c.dim, i * k..(i + 1) * k),
                e_feat: pick(&inp.e_feat, c.edge_dim, i * k..(i + 1) * k),
                ht: pick(&inp.ht, c.time_dim, i * k..(i + 1) * k),
                mask: inp.mask[i * k..(i + 1) * k].to_vec(),
                n: 1,
            };
            let alone = run_attention(&params, &single);
            let row = Tensor::from_vec(1, c.dim, full.row(i).to_vec());
            prop_assert!(alone.max_abs_diff(&row) < 1e-4, "row {i} depends on its batch");
        }
    }

    #[test]
    fn time_encoder_is_bounded_and_exact(
        dts in proptest::collection::vec(-1e6f32..1e9, 1..50),
        dim in 1usize..12,
        seed in 0u64..50,
    ) {
        let enc = TimeEncoder::random(dim, seed);
        let out = enc.encode(&dts);
        prop_assert_eq!(out.shape(), (dts.len(), dim));
        prop_assert!(out.as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-5));
        for (r, &dt) in dts.iter().enumerate() {
            for j in 0..dim {
                let expect = (dt * enc.omega.get(0, j) + enc.phi.get(0, j)).cos();
                prop_assert!((out.get(r, j) - expect).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn parameter_count_is_invariant_to_seed(seed in 0u64..1000) {
        let a = TgatParams::init(cfg(), seed).unwrap();
        let b = TgatParams::init(cfg(), seed.wrapping_add(1)).unwrap();
        prop_assert_eq!(a.num_parameters(), b.num_parameters());
        prop_assert_eq!(a.param_list().len(), b.param_list().len());
    }
}
