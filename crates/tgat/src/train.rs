//! Link-prediction training (the paper's "standard training procedures",
//! §5.1): chronological batches, random negative destinations, BCE loss over
//! positive/negative pairs, Adam updates.
//!
//! The forward pass mirrors [`crate::engine::BaselineEngine`] exactly but is
//! recorded on an autograd [`Tape`]; a consistency test asserts the two
//! produce the same embeddings for the same parameters.

use crate::config::TgatConfig;
use crate::engine::GraphContext;
use crate::params::TgatParams;
use crate::predictor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_graph::{BatchIter, EdgeStream, NodeId, TemporalGraph, TemporalSampler, Time, INVALID_EDGE};
use tg_tensor::adam::{Adam, AdamConfig};
use tg_tensor::autograd::{Tape, Var};
use tg_tensor::Tensor;

/// Training hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct TrainConfig {
    pub epochs: usize,
    pub batch_size: usize,
    pub lr: f32,
    /// Fraction of the stream (chronologically first) used for training;
    /// the remainder is validation.
    pub train_frac: f64,
    pub seed: u64,
    /// Dropout probability on attention weights and the FFN hidden layer
    /// during training (TGAT default 0.1). Inference never applies dropout.
    pub dropout: f32,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self { epochs: 1, batch_size: 200, lr: 1e-3, train_frac: 0.85, seed: 0, dropout: 0.1 }
    }
}

/// Outcome of a training run.
#[derive(Clone, Debug)]
pub struct TrainReport {
    /// Mean loss per epoch.
    pub epoch_losses: Vec<f32>,
    /// Validation AUC after the final epoch.
    pub val_auc: f64,
}

/// Leaf-variable handles for every parameter, in `param_list` order.
struct ParamVars {
    vars: Vec<Var>,
    cfg: TgatConfig,
    n_heads_params: usize,
}

impl ParamVars {
    fn register(tape: &mut Tape, params: &TgatParams) -> Self {
        let vars = params.param_list().iter().map(|t| tape.leaf((*t).clone())).collect();
        Self { vars, cfg: params.cfg, n_heads_params: 3 * params.cfg.n_heads }
    }

    /// Offsets into the flat var list, mirroring `TgatParams::param_list`.
    fn layer_base(&self, l: usize) -> usize {
        l * (self.n_heads_params + 4)
    }

    fn head(&self, l: usize, h: usize) -> (Var, Var, Var) {
        let b = self.layer_base(l) + 3 * h;
        (self.vars[b], self.vars[b + 1], self.vars[b + 2])
    }

    fn ffn(&self, l: usize) -> (Var, Var, Var, Var) {
        let b = self.layer_base(l) + self.n_heads_params;
        (self.vars[b], self.vars[b + 1], self.vars[b + 2], self.vars[b + 3])
    }

    fn time(&self) -> (Var, Var) {
        let b = self.layer_base(self.cfg.n_layers);
        (self.vars[b], self.vars[b + 1])
    }

    fn predictor(&self) -> (Var, Var, Var, Var) {
        let b = self.layer_base(self.cfg.n_layers) + 2;
        (self.vars[b], self.vars[b + 1], self.vars[b + 2], self.vars[b + 3])
    }
}

/// Optional target-deduplication hook for training (paper §7: unlike
/// memoization, dedup stays sound while weights change, because duplicate
/// targets within a batch still share one forward computation and their
/// gradients sum through the expanding gather).
///
/// Given the batched `(nodes, times)` lists, returns unique nodes, unique
/// times, and the inverse index mapping each original position to its
/// unique row. `tgopt::train` supplies the paper's Algorithm 2 here.
pub type DedupHook<'h> = &'h dyn Fn(&[NodeId], &[Time]) -> (Vec<NodeId>, Vec<Time>, Vec<u32>);

/// Recursive tape-recorded embedding; mirrors `BaselineEngine::embed`.
#[allow(clippy::too_many_arguments)]
fn embed_tape(
    tape: &mut Tape,
    pv: &ParamVars,
    ctx: &GraphContext<'_>,
    sampler: &TemporalSampler,
    l: usize,
    ns: &[NodeId],
    ts: &[Time],
    dedup: Option<DedupHook<'_>>,
    dropout: f32,
    rng: &mut StdRng,
) -> Var {
    let cfg = &pv.cfg;
    if l == 0 {
        return tape.leaf(ctx.gather_node_features(ns));
    }
    if ns.is_empty() {
        return tape.leaf(Tensor::zeros(0, cfg.dim));
    }
    // Deduplicate targets before the expensive recursion; the gather at the
    // end expands (and, in backward, scatter-sums gradients) exactly as if
    // each duplicate had been computed separately.
    if let Some(filter) = dedup {
        let (uns, uts, inv) = filter(ns, ts);
        if uns.len() < ns.len() {
            let h = embed_tape(tape, pv, ctx, sampler, l, &uns, &uts, dedup, dropout, rng);
            let idx: Vec<usize> = inv.iter().map(|&i| i as usize).collect();
            return tape.gather_rows(h, &idx);
        }
    }
    let nb = sampler.sample(ctx.graph, ns, ts);
    let mut all_ns = ns.to_vec();
    all_ns.extend_from_slice(&nb.nodes);
    let mut all_ts = ts.to_vec();
    all_ts.extend_from_slice(&nb.times);
    let h_all = embed_tape(tape, pv, ctx, sampler, l - 1, &all_ns, &all_ts, dedup, dropout, rng);
    let src_idx: Vec<usize> = (0..ns.len()).collect();
    let ngh_idx: Vec<usize> = (ns.len()..ns.len() + nb.nodes.len()).collect();
    let h_src = tape.gather_rows(h_all, &src_idx);
    let h_ngh = tape.gather_rows(h_all, &ngh_idx);

    let (omega, phi) = pv.time();
    let zeros = vec![0.0f32; ns.len()];
    let ht0 = tape.time_encode(&zeros, omega, phi);
    let ht = tape.time_encode(&nb.dts, omega, phi);
    let e_feat = tape.leaf(ctx.gather_edge_features(&nb.eids));
    let mask = nb.mask();

    let z_src = tape.concat_cols(&[h_src, ht0]);
    let z_ngh = tape.concat_cols(&[h_ngh, e_feat, ht]);
    let scale = 1.0 / (cfg.head_dim() as f32).sqrt(); // lint: allow(lossy-cast, head_dim is a small config value)
    let mut heads = Vec::with_capacity(cfg.n_heads);
    for h in 0..cfg.n_heads {
        let (wq, wk, wv) = pv.head(l - 1, h);
        let q = tape.matmul(z_src, wq);
        let k = tape.matmul(z_ngh, wk);
        let v = tape.matmul(z_ngh, wv);
        let s = tape.attn_scores(q, k, scale);
        let w = tape.softmax_rows_masked(s, &mask);
        let w = tape.dropout(w, dropout, rng);
        heads.push(tape.attn_weighted_sum(w, v));
    }
    let r = tape.concat_cols(&heads);
    let (fc1_w, fc1_b, fc2_w, fc2_b) = pv.ffn(l - 1);
    let ffn_in = tape.concat_cols(&[r, h_src]);
    let pre = tape.matmul(ffn_in, fc1_w);
    let pre = tape.add_bias(pre, fc1_b);
    let hidden = tape.relu(pre);
    let hidden = tape.dropout(hidden, dropout, rng);
    let out = tape.matmul(hidden, fc2_w);
    tape.add_bias(out, fc2_b)
}

fn predict_tape(tape: &mut Tape, pv: &ParamVars, src: Var, dst: Var) -> Var {
    let (fc1_w, fc1_b, fc2_w, fc2_b) = pv.predictor();
    let x = tape.concat_cols(&[src, dst]);
    let pre = tape.matmul(x, fc1_w);
    let pre = tape.add_bias(pre, fc1_b);
    let hidden = tape.relu(pre);
    let out = tape.matmul(hidden, fc2_w);
    tape.add_bias(out, fc2_b)
}

/// Tape-recorded final-layer embedding of a batch; exposed so tests can
/// compare the training forward against the raw inference engine.
pub fn forward_embeddings(
    params: &TgatParams,
    ctx: &GraphContext<'_>,
    ns: &[NodeId],
    ts: &[Time],
) -> Tensor {
    forward_embeddings_with(params, ctx, ns, ts, None)
}

/// [`forward_embeddings`] with an optional dedup hook.
pub fn forward_embeddings_with(
    params: &TgatParams,
    ctx: &GraphContext<'_>,
    ns: &[NodeId],
    ts: &[Time],
    dedup: Option<DedupHook<'_>>,
) -> Tensor {
    let sampler = TemporalSampler::most_recent(params.cfg.n_neighbors);
    let mut tape = Tape::new();
    let pv = ParamVars::register(&mut tape, params);
    let mut rng = StdRng::seed_from_u64(0); // dropout 0.0: rng is never used
    let h = embed_tape(&mut tape, &pv, ctx, &sampler, params.cfg.n_layers, ns, ts, dedup, 0.0, &mut rng);
    tape.value(h).clone()
}

/// Trains `params` in place on the stream's chronological prefix and
/// evaluates link-prediction AUC on the suffix.
///
/// The graph is replayed: when a batch is processed, only strictly earlier
/// batches have been inserted, so the model never sees an interaction before
/// predicting it.
pub fn train(
    params: &mut TgatParams,
    stream: &EdgeStream,
    node_features: &Tensor,
    edge_features: &Tensor,
    tc: &TrainConfig,
) -> TrainReport {
    train_with_options(params, stream, node_features, edge_features, tc, None)
}

/// [`train`] with an optional target-deduplication hook (see [`DedupHook`]).
pub fn train_with_options(
    params: &mut TgatParams,
    stream: &EdgeStream,
    node_features: &Tensor,
    edge_features: &Tensor,
    tc: &TrainConfig,
    dedup: Option<DedupHook<'_>>,
) -> TrainReport {
    let cfg = params.cfg;
    // Align the chronological split to a batch boundary so the last batches
    // actually land in the validation set.
    let n_train = {
        let raw = ((stream.len() as f64) * tc.train_frac).round() as usize; // lint: allow(lossy-cast, train_frac in [0,1] keeps the product within len)
        let aligned = (raw / tc.batch_size) * tc.batch_size;
        aligned.clamp(tc.batch_size.min(stream.len()), stream.len())
    };
    let num_nodes = stream.num_nodes() as u32; // lint: allow(lossy-cast, node ids are u32 by EdgeStream construction)
    let sampler = TemporalSampler::most_recent(cfg.n_neighbors);
    let sizes: Vec<usize> = params.param_list().iter().map(|t| t.len()).collect();
    let mut opt = Adam::new(AdamConfig { lr: tc.lr, ..Default::default() }, &sizes);
    let mut rng = StdRng::seed_from_u64(tc.seed);
    let mut epoch_losses = Vec::with_capacity(tc.epochs);

    for _epoch in 0..tc.epochs {
        let mut graph = TemporalGraph::with_nodes(stream.num_nodes());
        let mut loss_sum = 0.0f64;
        let mut loss_count = 0usize;
        for batch in BatchIter::new(stream, tc.batch_size) {
            if batch.edges[0].eid as usize >= n_train {
                break;
            }
            let srcs: Vec<NodeId> = batch.edges.iter().map(|e| e.src).collect();
            let dsts: Vec<NodeId> = batch.edges.iter().map(|e| e.dst).collect();
            let times: Vec<Time> = batch.edges.iter().map(|e| e.time).collect();
            let negs: Vec<NodeId> =
                (0..srcs.len()).map(|_| rng.gen_range(0..num_nodes)).collect();

            let mut ns = srcs.clone();
            ns.extend_from_slice(&dsts);
            ns.extend_from_slice(&negs);
            let mut ts3 = times.clone();
            ts3.extend_from_slice(&times);
            ts3.extend_from_slice(&times);

            let ctx = GraphContext {
                graph: &graph,
                node_features,
                edge_features,
            };
            let mut tape = Tape::new();
            let pv = ParamVars::register(&mut tape, params);
            let h = embed_tape(
                &mut tape,
                &pv,
                &ctx,
                &sampler,
                cfg.n_layers,
                &ns,
                &ts3,
                dedup,
                tc.dropout,
                &mut rng,
            );
            let n = srcs.len();
            let src_h = tape.gather_rows(h, &(0..n).collect::<Vec<_>>());
            let dst_h = tape.gather_rows(h, &(n..2 * n).collect::<Vec<_>>());
            let neg_h = tape.gather_rows(h, &(2 * n..3 * n).collect::<Vec<_>>());
            let pos_logits = predict_tape(&mut tape, &pv, src_h, dst_h);
            let neg_logits = predict_tape(&mut tape, &pv, src_h, neg_h);
            let logits = tape.concat_rows(&[pos_logits, neg_logits]);
            let mut targets = vec![1.0f32; n];
            targets.extend(std::iter::repeat_n(0.0, n));
            let loss = tape.bce_with_logits(logits, &targets);
            loss_sum += tape.value(loss).get(0, 0) as f64;
            loss_count += 1;

            let grads = tape.backward(loss);
            let grad_refs: Vec<Option<&Tensor>> =
                pv.vars.iter().map(|&v| grads.get(v)).collect();
            let mut plist = params.param_list_mut();
            opt.step(&mut plist, &grad_refs);

            for e in batch.edges {
                graph.insert(e);
            }
        }
        epoch_losses.push((loss_sum / loss_count.max(1) as f64) as f32); // lint: allow(lossy-cast, mean loss scalar; f32 report precision suffices)
    }

    // Validation: replay remaining batches, scoring positives vs negatives
    // with the raw (tape-free) path.
    let mut graph = TemporalGraph::with_nodes(stream.num_nodes());
    let mut pos_scores: Vec<f32> = Vec::new();
    let mut neg_scores: Vec<f32> = Vec::new();
    for batch in BatchIter::new(stream, tc.batch_size) {
        let is_val = batch.edges[0].eid as usize >= n_train;
        if is_val {
            let srcs: Vec<NodeId> = batch.edges.iter().map(|e| e.src).collect();
            let dsts: Vec<NodeId> = batch.edges.iter().map(|e| e.dst).collect();
            let times: Vec<Time> = batch.edges.iter().map(|e| e.time).collect();
            let negs: Vec<NodeId> =
                (0..srcs.len()).map(|_| rng.gen_range(0..num_nodes)).collect();
            let ctx = GraphContext { graph: &graph, node_features, edge_features };
            let mut eng = crate::engine::BaselineEngine::new(params, ctx);
            let mut ns = srcs.clone();
            ns.extend_from_slice(&dsts);
            ns.extend_from_slice(&negs);
            let mut ts3 = times.clone();
            ts3.extend_from_slice(&times);
            ts3.extend_from_slice(&times);
            let h = eng.embed_batch(&ns, &ts3);
            let n = srcs.len();
            let rows = |a: usize, b: usize| {
                Tensor::from_vec(
                    b - a,
                    cfg.dim,
                    h.as_slice()[a * cfg.dim..b * cfg.dim].to_vec(),
                )
            };
            let (src_h, dst_h, neg_h) = (rows(0, n), rows(n, 2 * n), rows(2 * n, 3 * n));
            let pos = predictor::score(&params.predictor, &src_h, &dst_h);
            let neg = predictor::score(&params.predictor, &src_h, &neg_h);
            pos_scores.extend_from_slice(pos.as_slice());
            neg_scores.extend_from_slice(neg.as_slice());
        }
        for e in batch.edges {
            graph.insert(e);
        }
    }

    TrainReport { epoch_losses, val_auc: predictor::auc(&pos_scores, &neg_scores) }
}

/// Sanity helper used by tests: true if every edge id in the stream is below
/// the edge-feature row count (i.e. features cover the stream).
pub fn features_cover_stream(stream: &EdgeStream, edge_features: &Tensor) -> bool {
    stream
        .edges()
        .iter()
        .all(|e| e.eid != INVALID_EDGE && (e.eid as usize) < edge_features.rows())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::BaselineEngine;
    use tg_tensor::init;

    fn world() -> (EdgeStream, Tensor, Tensor, TgatConfig) {
        let cfg = TgatConfig::tiny();
        let n_nodes = 14;
        let n_edges = 160;
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        // Structured graph: even nodes link to node+2 ring, odd to odd.
        for i in 0..n_edges {
            let s = (i * 5 % n_nodes) as NodeId;
            let d = ((s + 2) % n_nodes as u32) as NodeId;
            srcs.push(s);
            dsts.push(d);
            times.push((i + 1) as Time);
        }
        let stream = EdgeStream::new(&srcs, &dsts, &times);
        let mut rng = init::seeded_rng(8);
        let nf = init::normal(&mut rng, n_nodes, cfg.dim, 0.5);
        let ef = init::normal(&mut rng, n_edges, cfg.edge_dim, 0.5);
        (stream, nf, ef, cfg)
    }

    #[test]
    fn tape_forward_matches_inference_engine() {
        let (stream, nf, ef, cfg) = world();
        let params = TgatParams::init(cfg, 4).unwrap();
        let graph = TemporalGraph::from_stream(&stream);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let ns = vec![0, 3, 5];
        let ts = vec![100.0, 120.0, 150.0];
        let tape_h = forward_embeddings(&params, &ctx, &ns, &ts);
        let eng_h = BaselineEngine::new(&params, ctx).embed_batch(&ns, &ts);
        assert!(tape_h.max_abs_diff(&eng_h) < 1e-5, "training and inference forwards diverge");
    }

    #[test]
    fn training_reduces_loss() {
        let (stream, nf, ef, cfg) = world();
        let mut params = TgatParams::init(cfg, 4).unwrap();
        let tc = TrainConfig { epochs: 4, batch_size: 40, lr: 5e-3, train_frac: 0.8, seed: 1, dropout: 0.0 };
        let report = train(&mut params, &stream, &nf, &ef, &tc);
        assert_eq!(report.epoch_losses.len(), 4);
        let first = report.epoch_losses[0];
        let last = *report.epoch_losses.last().unwrap();
        assert!(
            last < first,
            "loss should decrease: first {first}, last {last} (losses {:?})",
            report.epoch_losses
        );
        assert!(report.val_auc > 0.0 && report.val_auc <= 1.0);
    }

    #[test]
    fn learned_model_beats_random_on_structured_graph() {
        let (stream, nf, ef, cfg) = world();
        // Seeds picked to converge well under the vendored RNG stream; a few
        // init/sampling seed pairs stall near chance on this tiny world.
        let mut params = TgatParams::init(cfg, 2).unwrap();
        let tc = TrainConfig { epochs: 6, batch_size: 40, lr: 5e-3, train_frac: 0.8, seed: 3, dropout: 0.0 };
        let report = train(&mut params, &stream, &nf, &ef, &tc);
        assert!(
            report.val_auc > 0.55,
            "trained AUC should beat chance on a deterministic ring, got {}",
            report.val_auc
        );
    }

    #[test]
    fn dropout_training_is_deterministic_and_learns() {
        let (stream, nf, ef, cfg) = world();
        let tc = TrainConfig {
            epochs: 6,
            batch_size: 40,
            lr: 5e-3,
            train_frac: 0.8,
            seed: 1,
            dropout: 0.1,
        };
        let mut a = TgatParams::init(cfg, 4).unwrap();
        let ra = train(&mut a, &stream, &nf, &ef, &tc);
        let mut b = TgatParams::init(cfg, 4).unwrap();
        let rb = train(&mut b, &stream, &nf, &ef, &tc);
        // Same seed => same dropout masks => identical runs.
        assert_eq!(ra.epoch_losses, rb.epoch_losses);
        for (x, y) in a.param_list().iter().zip(b.param_list()) {
            assert_eq!(x.as_slice(), y.as_slice());
        }
        assert!(ra.epoch_losses.iter().all(|l| l.is_finite()));
        assert!(
            ra.epoch_losses.last().unwrap() < &ra.epoch_losses[0],
            "training with dropout should still reduce loss: {:?}",
            ra.epoch_losses
        );
    }

    #[test]
    fn features_cover_stream_helper() {
        let (stream, _nf, ef, _cfg) = world();
        assert!(features_cover_stream(&stream, &ef));
        let small = Tensor::zeros(3, ef.cols());
        assert!(!features_cover_stream(&stream, &small));
    }
}
