//! Link-prediction decoder and evaluation metrics.

use crate::params::PredictorParams;
use tg_tensor::matmul::matmul;
use tg_tensor::{ops, Tensor};

/// Scores node pairs: returns `[N, 1]` logits for edges `(src_i, dst_i)`
/// given their `[N, dim]` temporal embeddings.
pub fn score(pred: &PredictorParams, src: &Tensor, dst: &Tensor) -> Tensor {
    assert_eq!(src.shape(), dst.shape(), "src/dst embedding shape mismatch");
    let x = ops::concat_cols(&[src, dst]);
    let hidden = ops::relu(&ops::add_bias(&matmul(&x, &pred.fc1_w), &pred.fc1_b));
    ops::add_bias(&matmul(&hidden, &pred.fc2_w), &pred.fc2_b)
}

/// Area under the ROC curve from positive/negative scores, computed via the
/// Mann–Whitney U statistic (ties count half).
pub fn auc(pos: &[f32], neg: &[f32]) -> f64 {
    if pos.is_empty() || neg.is_empty() {
        return 0.5;
    }
    let mut wins = 0.0f64;
    for &p in pos {
        for &n in neg {
            if p > n {
                wins += 1.0;
            } else if p == n {
                wins += 0.5;
            }
        }
    }
    wins / (pos.len() as f64 * neg.len() as f64)
}

/// Average-precision-style accuracy: fraction of correct classifications at
/// threshold 0 (logits).
pub fn accuracy_at_zero(pos: &[f32], neg: &[f32]) -> f64 {
    let total = pos.len() + neg.len();
    if total == 0 {
        return 0.0;
    }
    let correct =
        pos.iter().filter(|&&v| v > 0.0).count() + neg.iter().filter(|&&v| v <= 0.0).count();
    correct as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgatConfig;
    use crate::params::TgatParams;
    use tg_tensor::init;

    #[test]
    fn score_shape() {
        let cfg = TgatConfig::tiny();
        let p = TgatParams::init(cfg, 1).unwrap();
        let mut rng = init::seeded_rng(2);
        let src = init::normal(&mut rng, 4, cfg.dim, 1.0);
        let dst = init::normal(&mut rng, 4, cfg.dim, 1.0);
        let s = score(&p.predictor, &src, &dst);
        assert_eq!(s.shape(), (4, 1));
        assert!(s.all_finite());
    }

    #[test]
    fn auc_perfect_separation() {
        assert_eq!(auc(&[2.0, 3.0], &[0.0, 1.0]), 1.0);
        assert_eq!(auc(&[0.0, 1.0], &[2.0, 3.0]), 0.0);
    }

    #[test]
    fn auc_random_overlap_is_half() {
        assert_eq!(auc(&[1.0], &[1.0]), 0.5);
        assert_eq!(auc(&[], &[1.0]), 0.5);
        let sym = auc(&[0.0, 1.0], &[0.0, 1.0]);
        assert!((sym - 0.5).abs() < 1e-9);
    }

    #[test]
    fn accuracy_counts_threshold_zero() {
        assert_eq!(accuracy_at_zero(&[1.0, -1.0], &[-2.0, 0.5]), 0.5);
        assert_eq!(accuracy_at_zero(&[], &[]), 0.0);
    }
}
