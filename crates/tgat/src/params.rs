//! All learnable TGAT weights, with JSON checkpointing.

use crate::config::TgatConfig;
use crate::time_encode::TimeEncoder;
use serde::{Deserialize, Serialize};
use std::path::Path;
use tg_error::TgError;
use tg_tensor::{init, Tensor};

/// Projection weights of one attention head.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct HeadParams {
    /// `[dim + time_dim, head_dim]` query projection.
    pub wq: Tensor,
    /// `[dim + edge_dim + time_dim, head_dim]` key projection.
    pub wk: Tensor,
    /// `[dim + edge_dim + time_dim, head_dim]` value projection.
    pub wv: Tensor,
}

/// One TGAT layer: multi-head attention plus the feed-forward update of
/// Eq. (7), `h = FFN(r_i || h_i^{(l-1)})`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct LayerParams {
    pub heads: Vec<HeadParams>,
    /// `[2*dim, dim]` first FFN weight.
    pub fc1_w: Tensor,
    /// `[1, dim]` first FFN bias.
    pub fc1_b: Tensor,
    /// `[dim, dim]` second FFN weight.
    pub fc2_w: Tensor,
    /// `[1, dim]` second FFN bias.
    pub fc2_b: Tensor,
}

/// Link-prediction decoder: a 2-layer MLP over the concatenated source and
/// destination embeddings, producing one logit.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct PredictorParams {
    /// `[2*dim, dim]`.
    pub fc1_w: Tensor,
    /// `[1, dim]`.
    pub fc1_b: Tensor,
    /// `[dim, 1]`.
    pub fc2_w: Tensor,
    /// `[1, 1]`.
    pub fc2_b: Tensor,
}

/// The complete parameter set of a TGAT model.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TgatParams {
    pub cfg: TgatConfig,
    /// `layers[0]` is the first (closest-to-features) layer.
    pub layers: Vec<LayerParams>,
    pub time: TimeEncoder,
    pub predictor: PredictorParams,
}

impl TgatParams {
    /// Xavier-initialized parameters, deterministic in `seed`.
    ///
    /// Rejects configurations that fail [`TgatConfig::validate`] with
    /// [`TgError::InvalidConfig`] instead of panicking.
    pub fn init(cfg: TgatConfig, seed: u64) -> Result<Self, TgError> {
        cfg.validate().map_err(TgError::InvalidConfig)?;
        let mut rng = init::seeded_rng(seed);
        let dh = cfg.head_dim();
        let layers: Vec<LayerParams> = (0..cfg.n_layers)
            .map(|_| LayerParams {
                heads: (0..cfg.n_heads)
                    .map(|_| HeadParams {
                        wq: init::xavier_uniform(&mut rng, cfg.query_in_dim(), dh),
                        wk: init::xavier_uniform(&mut rng, cfg.key_in_dim(), dh),
                        wv: init::xavier_uniform(&mut rng, cfg.key_in_dim(), dh),
                    })
                    .collect(),
                fc1_w: init::xavier_uniform(&mut rng, 2 * cfg.dim, cfg.dim),
                fc1_b: Tensor::zeros(1, cfg.dim),
                fc2_w: init::xavier_uniform(&mut rng, cfg.dim, cfg.dim),
                fc2_b: Tensor::zeros(1, cfg.dim),
            })
            .collect();
        Ok(Self {
            cfg,
            layers,
            time: TimeEncoder::new(cfg.time_dim),
            predictor: PredictorParams {
                fc1_w: init::xavier_uniform(&mut rng, 2 * cfg.dim, cfg.dim),
                fc1_b: Tensor::zeros(1, cfg.dim),
                fc2_w: init::xavier_uniform(&mut rng, cfg.dim, 1),
                fc2_b: Tensor::zeros(1, 1),
            },
        })
    }

    /// Every learnable tensor in a stable order (used by the optimizer and
    /// by the training tape to pair gradients with parameters).
    pub fn param_list(&self) -> Vec<&Tensor> {
        let mut out = Vec::new();
        for layer in &self.layers {
            for head in &layer.heads {
                out.push(&head.wq);
                out.push(&head.wk);
                out.push(&head.wv);
            }
            out.push(&layer.fc1_w);
            out.push(&layer.fc1_b);
            out.push(&layer.fc2_w);
            out.push(&layer.fc2_b);
        }
        out.push(&self.time.omega);
        out.push(&self.time.phi);
        out.push(&self.predictor.fc1_w);
        out.push(&self.predictor.fc1_b);
        out.push(&self.predictor.fc2_w);
        out.push(&self.predictor.fc2_b);
        out
    }

    /// Mutable counterpart of [`TgatParams::param_list`], same order.
    pub fn param_list_mut(&mut self) -> Vec<&mut Tensor> {
        let mut out: Vec<&mut Tensor> = Vec::new();
        for layer in &mut self.layers {
            for head in &mut layer.heads {
                out.push(&mut head.wq);
                out.push(&mut head.wk);
                out.push(&mut head.wv);
            }
            out.push(&mut layer.fc1_w);
            out.push(&mut layer.fc1_b);
            out.push(&mut layer.fc2_w);
            out.push(&mut layer.fc2_b);
        }
        out.push(&mut self.time.omega);
        out.push(&mut self.time.phi);
        out.push(&mut self.predictor.fc1_w);
        out.push(&mut self.predictor.fc1_b);
        out.push(&mut self.predictor.fc2_w);
        out.push(&mut self.predictor.fc2_b);
        out
    }

    /// Total number of scalar parameters.
    pub fn num_parameters(&self) -> usize {
        self.param_list().iter().map(|t| t.len()).sum()
    }

    /// Saves the model as JSON. I/O failures surface as [`TgError::Io`].
    pub fn save(&self, path: &Path) -> Result<(), TgError> {
        let json = serde_json::to_string(self)
            .map_err(|e| TgError::snapshot(format!("serializing checkpoint: {e}")))?;
        std::fs::write(path, json)?;
        Ok(())
    }

    /// Loads a model saved by [`TgatParams::save`]. Malformed checkpoint
    /// content surfaces as [`TgError::SnapshotCorrupt`], missing files as
    /// [`TgError::Io`].
    pub fn load(path: &Path) -> Result<Self, TgError> {
        let json = std::fs::read_to_string(path)?;
        serde_json::from_str(&json)
            .map_err(|e| TgError::snapshot(format!("parsing checkpoint: {e}")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn init_shapes_are_consistent() {
        let cfg = TgatConfig::tiny();
        let p = TgatParams::init(cfg, 1).unwrap();
        assert_eq!(p.layers.len(), cfg.n_layers);
        for layer in &p.layers {
            assert_eq!(layer.heads.len(), cfg.n_heads);
            for h in &layer.heads {
                assert_eq!(h.wq.shape(), (cfg.query_in_dim(), cfg.head_dim()));
                assert_eq!(h.wk.shape(), (cfg.key_in_dim(), cfg.head_dim()));
                assert_eq!(h.wv.shape(), (cfg.key_in_dim(), cfg.head_dim()));
            }
            assert_eq!(layer.fc1_w.shape(), (2 * cfg.dim, cfg.dim));
            assert_eq!(layer.fc2_w.shape(), (cfg.dim, cfg.dim));
        }
        assert_eq!(p.time.dim(), cfg.time_dim);
        assert_eq!(p.predictor.fc2_w.shape(), (cfg.dim, 1));
    }

    #[test]
    fn init_is_deterministic() {
        let cfg = TgatConfig::tiny();
        let a = TgatParams::init(cfg, 42).unwrap();
        let b = TgatParams::init(cfg, 42).unwrap();
        assert_eq!(a.layers[0].heads[0].wq.as_slice(), b.layers[0].heads[0].wq.as_slice());
        let c = TgatParams::init(cfg, 43).unwrap();
        assert_ne!(a.layers[0].heads[0].wq.as_slice(), c.layers[0].heads[0].wq.as_slice());
    }

    #[test]
    fn param_list_orders_agree() {
        let mut p = TgatParams::init(TgatConfig::tiny(), 1).unwrap();
        let shapes: Vec<(usize, usize)> = p.param_list().iter().map(|t| t.shape()).collect();
        let shapes_mut: Vec<(usize, usize)> =
            p.param_list_mut().iter().map(|t| t.shape()).collect();
        assert_eq!(shapes, shapes_mut);
        // 2 layers * (2 heads * 3 + 4) + 2 time + 4 predictor
        assert_eq!(shapes.len(), 2 * (2 * 3 + 4) + 2 + 4);
    }

    #[test]
    fn num_parameters_is_positive_and_stable() {
        let p = TgatParams::init(TgatConfig::tiny(), 1).unwrap();
        assert!(p.num_parameters() > 0);
        assert_eq!(p.num_parameters(), TgatParams::init(TgatConfig::tiny(), 9).unwrap().num_parameters());
    }

    #[test]
    fn save_load_roundtrip() {
        let p = TgatParams::init(TgatConfig::tiny(), 5).unwrap();
        let mut path = std::env::temp_dir();
        path.push(format!("tgat-params-{}.json", rand::random::<u64>()));
        p.save(&path).unwrap();
        let q = TgatParams::load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(p.cfg, q.cfg);
        for (a, b) in p.param_list().iter().zip(q.param_list()) {
            assert_eq!(a.as_slice(), b.as_slice());
        }
    }
}
