//! Per-operation runtime accounting — now provided by `tg-telemetry`.
//!
//! The Table-3 span types moved to the workspace-wide telemetry crate so
//! the baseline engine, the TGOpt engine, and the serving layer all report
//! the same breakdown schema. `OpStats` remains as a thin alias for the
//! many existing call sites; new code should use [`tg_telemetry::Recorder`]
//! directly.

pub use tg_telemetry::{OpKind, StageSpan};

/// Back-compat alias: the historical name for [`tg_telemetry::Recorder`].
pub type OpStats = tg_telemetry::Recorder;
