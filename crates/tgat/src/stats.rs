//! Per-operation runtime accounting (reproduces the rows of paper Table 3).

use std::time::{Duration, Instant};

/// The operations of Algorithm 1 that the breakdown analysis times.
///
/// The baseline engine only exercises `NghLookup`, the two `TimeEncode`
/// variants, and `Attention`; the TGOpt engine additionally reports its
/// dedup/cache overheads.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    NghLookup,
    DedupFilter,
    DedupInvert,
    TimeEncodeZero,
    TimeEncodeDt,
    ComputeKeys,
    CacheLookup,
    CacheStore,
    Attention,
}

impl OpKind {
    /// All kinds, in Table 3's row order.
    pub const ALL: [OpKind; 9] = [
        OpKind::NghLookup,
        OpKind::DedupFilter,
        OpKind::DedupInvert,
        OpKind::TimeEncodeZero,
        OpKind::TimeEncodeDt,
        OpKind::ComputeKeys,
        OpKind::CacheLookup,
        OpKind::CacheStore,
        OpKind::Attention,
    ];

    /// Table 3's label for the operation.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::NghLookup => "NghLookup",
            OpKind::DedupFilter => "DedupFilter",
            OpKind::DedupInvert => "DedupInvert",
            OpKind::TimeEncodeZero => "TimeEncode (0)",
            OpKind::TimeEncodeDt => "TimeEncode (dt)",
            OpKind::ComputeKeys => "ComputeKeys",
            OpKind::CacheLookup => "CacheLookup",
            OpKind::CacheStore => "CacheStore",
            OpKind::Attention => "attention M",
        }
    }
}

/// Accumulated wall time per operation.
#[derive(Clone, Debug, Default)]
pub struct OpStats {
    totals: [Duration; 9],
    counts: [u64; 9],
    enabled: bool,
}

impl OpStats {
    /// Stats that actually measure. Disabled stats ([`OpStats::disabled`])
    /// skip the clock reads so production inference pays nothing.
    pub fn enabled() -> Self {
        Self { enabled: true, ..Default::default() }
    }

    /// No-op stats (zero overhead on the hot path).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// True if timing is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Times `f`, attributing its wall time to `kind`.
    #[inline]
    pub fn time<T>(&mut self, kind: OpKind, f: impl FnOnce() -> T) -> T {
        if !self.enabled {
            return f();
        }
        let start = Instant::now();
        let out = f();
        self.totals[kind as usize] += start.elapsed();
        self.counts[kind as usize] += 1;
        out
    }

    /// Adds an externally measured duration.
    pub fn record(&mut self, kind: OpKind, d: Duration) {
        self.totals[kind as usize] += d;
        self.counts[kind as usize] += 1;
    }

    /// Total time attributed to `kind`.
    pub fn total(&self, kind: OpKind) -> Duration {
        self.totals[kind as usize]
    }

    /// Number of timed invocations of `kind`.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.counts[kind as usize]
    }

    /// Sum over all operations.
    pub fn grand_total(&self) -> Duration {
        self.totals.iter().sum()
    }

    /// Resets all accumulators, keeping the enabled flag.
    pub fn reset(&mut self) {
        self.totals = Default::default();
        self.counts = Default::default();
    }

    /// Merges another stats object into this one.
    pub fn merge(&mut self, other: &OpStats) {
        for i in 0..self.totals.len() {
            self.totals[i] += other.totals[i];
            self.counts[i] += other.counts[i];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_stats_accumulate() {
        let mut s = OpStats::enabled();
        let v = s.time(OpKind::Attention, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(s.total(OpKind::Attention) >= Duration::from_millis(2));
        assert_eq!(s.count(OpKind::Attention), 1);
        assert_eq!(s.count(OpKind::NghLookup), 0);
    }

    #[test]
    fn disabled_stats_record_nothing() {
        let mut s = OpStats::disabled();
        s.time(OpKind::CacheStore, || ());
        assert_eq!(s.total(OpKind::CacheStore), Duration::ZERO);
        assert_eq!(s.count(OpKind::CacheStore), 0);
        assert!(!s.is_enabled());
    }

    #[test]
    fn merge_and_reset() {
        let mut a = OpStats::enabled();
        a.record(OpKind::NghLookup, Duration::from_millis(5));
        let mut b = OpStats::enabled();
        b.record(OpKind::NghLookup, Duration::from_millis(3));
        b.record(OpKind::CacheLookup, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.total(OpKind::NghLookup), Duration::from_millis(8));
        assert_eq!(a.grand_total(), Duration::from_millis(9));
        a.reset();
        assert_eq!(a.grand_total(), Duration::ZERO);
        assert!(a.is_enabled());
    }

    #[test]
    fn labels_match_table3() {
        assert_eq!(OpKind::Attention.label(), "attention M");
        assert_eq!(OpKind::TimeEncodeZero.label(), "TimeEncode (0)");
        assert_eq!(OpKind::ALL.len(), 9);
    }
}
