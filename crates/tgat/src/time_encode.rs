//! The functional time encoding `Phi(dt) = cos(dt * omega + phi)` (Eq. 8).

use serde::{Deserialize, Serialize};
use tg_tensor::{init, Tensor};

/// Learnable time encoder mapping a time delta to a `d_t`-dim vector.
///
/// Initialized like the reference TGAT: angular frequencies form a geometric
/// ladder `omega_j = 1 / 10^(9 j / (d-1))` spanning ten decades, phases start
/// at zero. Both are trained.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct TimeEncoder {
    /// `1 x d_t` angular frequencies.
    pub omega: Tensor,
    /// `1 x d_t` phases.
    pub phi: Tensor,
}

impl TimeEncoder {
    /// Creates the encoder with TGAT's geometric frequency initialization.
    pub fn new(time_dim: usize) -> Self {
        assert!(time_dim > 0, "time encoder needs a positive dimension");
        let omega: Vec<f32> = (0..time_dim)
            .map(|j| {
                let exponent = if time_dim == 1 { 0.0 } else { 9.0 * j as f32 / (time_dim - 1) as f32 }; // lint: allow(lossy-cast, time_dim is a small config value)
                1.0 / 10.0f32.powf(exponent)
            })
            .collect();
        Self {
            omega: Tensor::from_vec(1, time_dim, omega),
            phi: Tensor::zeros(1, time_dim),
        }
    }

    /// Random-frequency variant used by some tests to avoid symmetry.
    pub fn random(time_dim: usize, seed: u64) -> Self {
        let mut rng = init::seeded_rng(seed);
        Self {
            omega: init::uniform(&mut rng, 1, time_dim, 1.0),
            phi: init::uniform(&mut rng, 1, time_dim, std::f32::consts::PI),
        }
    }

    /// Output dimension `d_t`.
    pub fn dim(&self) -> usize {
        self.omega.cols()
    }

    /// Encodes a batch of time deltas into an `[n, d_t]` tensor.
    pub fn encode(&self, dts: &[f32]) -> Tensor { // alloc-ok: allocating convenience wrapper; the hot path calls encode_into with a scratch destination
        let mut out = Tensor::zeros(dts.len(), self.dim());
        self.encode_into(dts, &mut out);
        out
    }

    /// [`Self::encode`] into a preallocated `[dts.len(), d_t]` destination;
    /// prior contents are overwritten.
    pub fn encode_into(&self, dts: &[f32], out: &mut Tensor) {
        let d = self.dim();
        assert_eq!(out.shape(), (dts.len(), d), "encode_into: bad output shape");
        let om = self.omega.as_slice();
        let ph = self.phi.as_slice();
        for (r, &dt) in dts.iter().enumerate() {
            let row = out.row_mut(r);
            for j in 0..d {
                row[j] = (dt * om[j] + ph[j]).cos();
            }
        }
    }

    /// Encodes a single delta into a `1 x d_t` row.
    pub fn encode_one(&self, dt: f32) -> Tensor {
        self.encode(&[dt])
    }

    /// `Phi(0)` broadcast over `n` rows — the target-side encoding of
    /// Eq. (4). The baseline recomputes this every call (it is one of the
    /// redundancies §3.3 identifies); TGOpt's precomputation replaces it.
    pub fn encode_zeros(&self, n: usize) -> Tensor {
        let mut out = Tensor::zeros(n, self.dim());
        self.encode_zeros_into(&mut out);
        out
    }

    /// [`Self::encode_zeros`] into a preallocated `[n, d_t]` destination.
    pub fn encode_zeros_into(&self, out: &mut Tensor) {
        assert_eq!(out.cols(), self.dim(), "encode_zeros_into: bad output width");
        let zero_row = self.encode_one(0.0);
        for r in 0..out.rows() {
            out.row_mut(r).copy_from_slice(zero_row.row(0));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn frequencies_span_ten_decades() {
        let enc = TimeEncoder::new(10);
        let om = enc.omega.as_slice();
        assert!((om[0] - 1.0).abs() < 1e-6);
        assert!((om[9] - 1e-9).abs() < 1e-12);
        assert!(om.windows(2).all(|w| w[0] > w[1]), "monotone decreasing ladder");
    }

    #[test]
    fn encode_zero_is_cos_phi() {
        let enc = TimeEncoder::new(4);
        let e = enc.encode_one(0.0);
        // phi starts at zero, so Phi(0) = cos(0) = 1 everywhere.
        assert!(e.as_slice().iter().all(|&v| (v - 1.0).abs() < 1e-6));
    }

    #[test]
    fn encode_matches_formula() {
        let enc = TimeEncoder::random(5, 3);
        let dt = 2.5f32;
        let e = enc.encode_one(dt);
        for j in 0..5 {
            let expected = (dt * enc.omega.get(0, j) + enc.phi.get(0, j)).cos();
            assert!((e.get(0, j) - expected).abs() < 1e-6);
        }
    }

    #[test]
    fn encode_batch_rows_match_single_calls() {
        let enc = TimeEncoder::new(8);
        let dts = [0.0, 1.0, 7.0, 10000.0];
        let batch = enc.encode(&dts);
        for (r, &dt) in dts.iter().enumerate() {
            assert_eq!(batch.row(r), enc.encode_one(dt).row(0));
        }
    }

    #[test]
    fn encode_zeros_broadcasts() {
        let enc = TimeEncoder::random(6, 1);
        let z = enc.encode_zeros(3);
        assert_eq!(z.shape(), (3, 6));
        for r in 1..3 {
            assert_eq!(z.row(r), z.row(0));
        }
        assert_eq!(z.row(0), enc.encode_one(0.0).row(0));
    }

    #[test]
    fn values_are_bounded_by_one() {
        let enc = TimeEncoder::new(16);
        let e = enc.encode(&[0.0, 3.3, 1e6, 1e9]);
        assert!(e.as_slice().iter().all(|v| v.abs() <= 1.0 + 1e-6));
    }

    #[test]
    fn single_dim_encoder() {
        let enc = TimeEncoder::new(1);
        assert_eq!(enc.encode_one(5.0).shape(), (1, 1));
    }
}
