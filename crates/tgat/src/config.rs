//! Model hyperparameters.

use serde::{Deserialize, Serialize};

/// TGAT architecture settings.
///
/// The paper evaluates a 2-layer, 2-head model sampling 20 most-recent
/// neighbors with 100-dimensional features ([`TgatConfig::paper_default`]).
/// Tests use [`TgatConfig::tiny`] to keep runtimes negligible.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct TgatConfig {
    /// Embedding / node-feature dimension (`d_h`).
    pub dim: usize,
    /// Edge feature dimension (`d_e`).
    pub edge_dim: usize,
    /// Time-encoding dimension (`d_t`).
    pub time_dim: usize,
    /// Number of stacked attention layers (`L`).
    pub n_layers: usize,
    /// Attention heads per layer; must divide `dim`.
    pub n_heads: usize,
    /// Neighbors sampled per target (`N` in Algorithm 1).
    pub n_neighbors: usize,
}

impl TgatConfig {
    /// The paper's evaluation configuration (§5.1.1) for a dataset with the
    /// given edge feature dimension.
    pub fn paper_default(edge_dim: usize) -> Self {
        Self { dim: 100, edge_dim, time_dim: 100, n_layers: 2, n_heads: 2, n_neighbors: 20 }
    }

    /// A small configuration for unit tests.
    pub fn tiny() -> Self {
        Self { dim: 8, edge_dim: 6, time_dim: 4, n_layers: 2, n_heads: 2, n_neighbors: 3 }
    }

    /// Per-head dimension.
    pub fn head_dim(&self) -> usize {
        self.dim / self.n_heads
    }

    /// Query input width: `dim + time_dim` (Eq. 4: `h_i || Phi(0)`).
    pub fn query_in_dim(&self) -> usize {
        self.dim + self.time_dim
    }

    /// Key/value input width: `dim + edge_dim + time_dim`
    /// (Eq. 5: `h_j || e_ij || Phi(t - t_j)`).
    pub fn key_in_dim(&self) -> usize {
        self.dim + self.edge_dim + self.time_dim
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), String> {
        if self.dim == 0 || self.time_dim == 0 {
            return Err("dim and time_dim must be positive".into());
        }
        if self.n_layers == 0 {
            return Err("need at least one layer".into());
        }
        if self.n_heads == 0 || !self.dim.is_multiple_of(self.n_heads) {
            return Err(format!("heads ({}) must divide dim ({})", self.n_heads, self.dim));
        }
        if self.n_neighbors == 0 {
            return Err("need at least one sampled neighbor".into());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_default_matches_section_5() {
        let c = TgatConfig::paper_default(172);
        assert_eq!(c.n_layers, 2);
        assert_eq!(c.n_heads, 2);
        assert_eq!(c.n_neighbors, 20);
        assert_eq!(c.dim, 100);
        assert_eq!(c.edge_dim, 172);
        assert_eq!(c.head_dim(), 50);
        assert_eq!(c.query_in_dim(), 200);
        assert_eq!(c.key_in_dim(), 372);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn validate_rejects_bad_configs() {
        let mut c = TgatConfig::tiny();
        c.n_heads = 3; // does not divide dim=8
        assert!(c.validate().is_err());
        let mut c = TgatConfig::tiny();
        c.n_layers = 0;
        assert!(c.validate().is_err());
        let mut c = TgatConfig::tiny();
        c.n_neighbors = 0;
        assert!(c.validate().is_err());
        let mut c = TgatConfig::tiny();
        c.dim = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn config_serde_roundtrip() {
        let c = TgatConfig::tiny();
        let json = serde_json::to_string(&c).unwrap();
        let back: TgatConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
