//! The baseline (unoptimized) recursive inference engine.
//!
//! This mirrors the official TGAT implementation's batched computation: for
//! each batch of targets it samples temporal neighborhoods, recursively
//! computes previous-layer embeddings for targets and neighbors together,
//! and applies the attention operator — with no deduplication, memoization,
//! or time-encoding reuse. TGOpt (`crates/core`) is the drop-in optimized
//! replacement that must produce identical outputs.

use crate::attention::{self, AttentionInputs};
use crate::params::TgatParams;
use crate::stats::{OpKind, OpStats};
use tg_graph::{GraphView, NodeId, TemporalGraph, TemporalSampler, Time, INVALID_EDGE};
use tg_tensor::{ops, Scratch, Tensor};

/// Borrowed views of everything an engine reads: the evolving graph plus the
/// static feature matrices.
#[derive(Clone, Copy)]
pub struct GraphContext<'a> {
    pub graph: &'a TemporalGraph,
    /// `[num_nodes, dim]` node features (`h^(0)`).
    pub node_features: &'a Tensor,
    /// `[num_edges, edge_dim]` edge features, indexed by edge id.
    pub edge_features: &'a Tensor,
}

impl<'a> GraphContext<'a> {
    /// Gathers node feature rows for the given ids.
    pub fn gather_node_features(&self, ns: &[NodeId]) -> Tensor {
        let idx: Vec<usize> = ns.iter().map(|&n| n as usize).collect();
        ops::gather_rows(self.node_features, &idx)
    }

    /// [`Self::gather_node_features`] into a scratch-provided destination.
    /// Translates ids on the fly so no index buffer is allocated per batch.
    pub fn gather_node_features_with(&self, ns: &[NodeId], scratch: &mut Scratch) -> Tensor {
        let mut out = scratch.take(ns.len(), self.node_features.cols());
        ops::gather_rows_map_into(self.node_features, ns.len(), |i| ns[i] as usize, &mut out);
        out
    }

    /// Gathers edge feature rows; padding slots ([`INVALID_EDGE`]) read row 0
    /// — their contribution is masked out of the attention softmax, so any
    /// valid row works.
    pub fn gather_edge_features(&self, eids: &[u32]) -> Tensor {
        let idx: Vec<usize> =
            eids.iter().map(|&e| if e == INVALID_EDGE { 0 } else { e as usize }).collect();
        ops::gather_rows(self.edge_features, &idx)
    }

    /// [`Self::gather_edge_features`] into a scratch-provided destination.
    /// Translates ids (and the padding sentinel) on the fly so no index
    /// buffer is allocated per batch.
    pub fn gather_edge_features_with(&self, eids: &[u32], scratch: &mut Scratch) -> Tensor {
        let mut out = scratch.take(eids.len(), self.edge_features.cols());
        ops::gather_rows_map_into(
            self.edge_features,
            eids.len(),
            |i| if eids[i] == INVALID_EDGE { 0 } else { eids[i] as usize },
            &mut out,
        );
        out
    }
}

/// Baseline TGAT inference engine.
pub struct BaselineEngine<'a> {
    params: &'a TgatParams,
    sampler: TemporalSampler,
    ctx: GraphContext<'a>,
    stats: OpStats,
    /// When pinned, neighborhood sampling reads this epoch-stamped live
    /// snapshot instead of `ctx.graph` (streaming-ingest read path).
    view: Option<GraphView>,
    /// Recycled per-batch buffers; owned by the engine so steady-state
    /// batches run allocation-free (see `tg_tensor::scratch`).
    scratch: Scratch,
}

impl<'a> BaselineEngine<'a> {
    /// Builds an engine with the model's configured most-recent sampler.
    pub fn new(params: &'a TgatParams, ctx: GraphContext<'a>) -> Self {
        let sampler = TemporalSampler::most_recent(params.cfg.n_neighbors);
        Self::with_sampler(params, ctx, sampler)
    }

    /// Builds an engine with a custom sampler (e.g. uniform, for the
    /// sampling-strategy comparison).
    pub fn with_sampler(
        params: &'a TgatParams,
        ctx: GraphContext<'a>,
        sampler: TemporalSampler,
    ) -> Self {
        Self {
            params,
            sampler,
            ctx,
            stats: OpStats::disabled(),
            view: None,
            scratch: Scratch::new(),
        }
    }

    /// Pins an epoch-stamped live snapshot: until
    /// [`BaselineEngine::unpin_view`], neighborhood sampling reads `view`
    /// instead of the frozen `ctx.graph`.
    pub fn pin_view(&mut self, view: GraphView) {
        self.view = Some(view);
    }

    /// Unpins the live snapshot; sampling reverts to `ctx.graph`.
    pub fn unpin_view(&mut self) {
        self.view = None;
    }

    /// Turns on per-operation timing (Table 3 reproduction).
    pub fn enable_stats(&mut self) {
        self.stats = OpStats::enabled();
    }

    /// Accumulated operation timings.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Computes final-layer temporal embeddings for the target pairs
    /// `(ns[i], ts[i])`. Returns `[len(ns), dim]`.
    // hot-path-root(alloc)
    pub fn embed_batch(&mut self, ns: &[NodeId], ts: &[Time]) -> Tensor {
        self.embed(self.params.cfg.n_layers, ns, ts)
    }

    fn embed(&mut self, l: usize, ns: &[NodeId], ts: &[Time]) -> Tensor {
        debug_assert_eq!(ns.len(), ts.len());
        if l == 0 {
            return self.ctx.gather_node_features_with(ns, &mut self.scratch);
        }
        if ns.is_empty() {
            return self.scratch.take(0, self.params.cfg.dim);
        }

        let (graph, sampler, view) = (self.ctx.graph, &self.sampler, self.view.as_ref());
        let nb = self.stats.time(OpKind::NghLookup, || match view {
            Some(v) => sampler.sample_view(v, ns, ts),
            None => sampler.sample(graph, ns, ts),
        });

        // One recursive call for targets and neighbors together (Algorithm 1
        // line 12: Embed(l-1, ns ∪ ns_ngh, ts ∪ ts_ngh)).
        let mut all_ns = Vec::with_capacity(ns.len() + nb.nodes.len()); // alloc-ok: per-layer id concatenation mirrors reference TGAT; id lists are not poolable f32 scratch
        all_ns.extend_from_slice(ns);
        all_ns.extend_from_slice(&nb.nodes);
        let mut all_ts = Vec::with_capacity(ts.len() + nb.times.len()); // alloc-ok: per-layer time concatenation, same bookkeeping as all_ns
        all_ts.extend_from_slice(ts);
        all_ts.extend_from_slice(&nb.times);
        let h_all = self.embed(l - 1, &all_ns, &all_ts);
        let mut h_src = self.scratch.take(ns.len(), h_all.cols());
        let mut h_ngh = self.scratch.take(nb.nodes.len(), h_all.cols());
        ops::split_rows_into(&h_all, ns.len(), &mut h_src, &mut h_ngh);
        self.scratch.give(h_all);

        let params = self.params;
        let stats = &mut self.stats;
        let scratch = &mut self.scratch;
        let ht0 = stats.time(OpKind::TimeEncodeZero, || {
            let mut t = scratch.take(ns.len(), params.time.dim());
            params.time.encode_zeros_into(&mut t);
            t
        });
        let ht = stats.time(OpKind::TimeEncodeDt, || {
            let mut t = scratch.take(nb.dts.len(), params.time.dim());
            params.time.encode_into(&nb.dts, &mut t);
            t
        });
        let e_feat = self.ctx.gather_edge_features_with(&nb.eids, &mut self.scratch);
        let mask = nb.mask();

        let layer = &self.params.layers[l - 1];
        let cfg = &self.params.cfg;
        let stats = &mut self.stats;
        let scratch = &mut self.scratch;
        let out = stats.time(OpKind::Attention, || {
            attention::forward_with(
                layer,
                cfg,
                &AttentionInputs {
                    h_src: &h_src,
                    ht0: &ht0,
                    h_ngh: &h_ngh,
                    e_feat: &e_feat,
                    ht: &ht,
                    mask: &mask,
                },
                scratch,
            )
        });
        self.scratch.give(e_feat);
        self.scratch.give(ht);
        self.scratch.give(ht0);
        self.scratch.give(h_ngh);
        self.scratch.give(h_src);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::TgatConfig;
    use tg_graph::EdgeStream;
    use tg_tensor::init;

    /// A small deterministic world: ring graph with feature matrices.
    pub(crate) fn tiny_world(
        cfg: TgatConfig,
        n_nodes: usize,
        n_edges: usize,
    ) -> (TemporalGraph, Tensor, Tensor) {
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        for i in 0..n_edges {
            srcs.push((i % n_nodes) as NodeId);
            dsts.push(((i * 3 + 1) % n_nodes) as NodeId);
            times.push((i + 1) as Time);
        }
        let stream = EdgeStream::new(&srcs, &dsts, &times);
        let graph = TemporalGraph::from_stream(&stream);
        let mut rng = init::seeded_rng(5);
        let node_feat = init::normal(&mut rng, n_nodes, cfg.dim, 0.5);
        let edge_feat = init::normal(&mut rng, n_edges, cfg.edge_dim, 0.5);
        (graph, node_feat, edge_feat)
    }

    #[test]
    fn embed_batch_shape_and_finiteness() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 1).unwrap();
        let (graph, nf, ef) = tiny_world(cfg, 10, 50);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut eng = BaselineEngine::new(&params, ctx);
        let h = eng.embed_batch(&[0, 1, 2], &[40.0, 40.0, 45.0]);
        assert_eq!(h.shape(), (3, cfg.dim));
        assert!(h.all_finite());
    }

    #[test]
    fn embedding_is_deterministic() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 1).unwrap();
        let (graph, nf, ef) = tiny_world(cfg, 10, 50);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let h1 = BaselineEngine::new(&params, ctx).embed_batch(&[3, 4], &[30.0, 35.0]);
        let h2 = BaselineEngine::new(&params, ctx).embed_batch(&[3, 4], &[30.0, 35.0]);
        assert_eq!(h1.max_abs_diff(&h2), 0.0);
    }

    #[test]
    fn batching_does_not_change_results() {
        // Embedding targets together vs one-by-one must agree: the batched
        // recursion is semantically a per-target computation.
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 2).unwrap();
        let (graph, nf, ef) = tiny_world(cfg, 12, 60);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let ns: Vec<NodeId> = vec![0, 5, 7, 0];
        let ts: Vec<Time> = vec![50.0, 44.0, 61.0, 50.0];
        let mut eng = BaselineEngine::new(&params, ctx);
        let batched = eng.embed_batch(&ns, &ts);
        for i in 0..ns.len() {
            let single = BaselineEngine::new(&params, ctx).embed_batch(&[ns[i]], &[ts[i]]);
            let row = Tensor::from_vec(1, cfg.dim, batched.row(i).to_vec());
            assert!(single.max_abs_diff(&row) < 1e-4, "target {i} differs");
        }
    }

    #[test]
    fn duplicate_targets_get_identical_rows() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 2).unwrap();
        let (graph, nf, ef) = tiny_world(cfg, 12, 60);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let h = BaselineEngine::new(&params, ctx).embed_batch(&[4, 4], &[33.0, 33.0]);
        let a = Tensor::from_vec(1, cfg.dim, h.row(0).to_vec());
        let b = Tensor::from_vec(1, cfg.dim, h.row(1).to_vec());
        assert!(a.max_abs_diff(&b) < 1e-6);
    }

    #[test]
    fn isolated_node_embeds_without_neighbors() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 1).unwrap();
        let (graph, nf, ef) = tiny_world(cfg, 10, 20);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        // t=0.5 precedes every edge: all targets have empty neighborhoods.
        let h = BaselineEngine::new(&params, ctx).embed_batch(&[0], &[0.5]);
        assert!(h.all_finite());
    }

    #[test]
    fn stats_capture_baseline_ops_only() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 1).unwrap();
        let (graph, nf, ef) = tiny_world(cfg, 10, 50);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut eng = BaselineEngine::new(&params, ctx);
        eng.enable_stats();
        let _ = eng.embed_batch(&[0, 1], &[30.0, 31.0]);
        let s = eng.stats();
        assert_eq!(s.count(OpKind::NghLookup), cfg.n_layers as u64);
        assert_eq!(s.count(OpKind::Attention), cfg.n_layers as u64);
        assert_eq!(s.count(OpKind::CacheLookup), 0);
        assert_eq!(s.count(OpKind::DedupFilter), 0);
    }
}
