//! Temporal Graph Attention Network (TGAT, Xu et al. ICLR'20) — the model
//! the paper's optimizations target, built from scratch on `tg-tensor`.
//!
//! Components:
//!
//! * [`config::TgatConfig`] — layer/head/neighbor/dimension settings (paper
//!   defaults: 2 layers, 2 heads, 20 most-recent neighbors, 100-dim).
//! * [`time_encode::TimeEncoder`] — the learnable functional time encoding
//!   `Phi(dt) = cos(dt * omega + phi)` of Eq. (8).
//! * [`params::TgatParams`] — all learnable weights, with JSON checkpoints.
//! * [`attention`] — the multi-head temporal attention operator `M`
//!   implementing Eqs. (4)–(7).
//! * [`engine::BaselineEngine`] — the unoptimized recursive batched
//!   inference path (the paper's baseline), instrumented with [`stats`]
//!   per-operation timers so Table 3 can be reproduced.
//! * [`predictor`] / [`train`] — link-prediction decoder and training loop
//!   (negative sampling + BCE + Adam) used to obtain trained weights.

pub mod attention;
pub mod config;
pub mod engine;
pub mod params;
pub mod predictor;
pub mod stats;
pub mod time_encode;
pub mod train;

pub use config::TgatConfig;
pub use engine::BaselineEngine;
pub use params::TgatParams;
pub use stats::{OpKind, OpStats};
pub use time_encode::TimeEncoder;
