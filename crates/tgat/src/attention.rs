//! The temporal multi-head attention operator `M` (Eqs. 4–7).
//!
//! This is the raw (tape-free) forward used by both inference engines; the
//! training path in [`crate::train`] records the identical computation on an
//! autograd tape.

use crate::config::TgatConfig;
use crate::params::LayerParams;
use tg_tensor::matmul::matmul;
use tg_tensor::{ops, Tensor};

/// Inputs to one attention layer for a batch of `N` targets, each with `K`
/// sampled neighbors (rows `i*K..(i+1)*K` of the `N*K` tensors).
pub struct AttentionInputs<'a> {
    /// `[N, dim]` previous-layer embeddings of the targets.
    pub h_src: &'a Tensor,
    /// `[N, time_dim]` target-side time encoding `Phi(0)` (Eq. 4).
    pub ht0: &'a Tensor,
    /// `[N*K, dim]` previous-layer embeddings of the sampled neighbors.
    pub h_ngh: &'a Tensor,
    /// `[N*K, edge_dim]` features of the interaction edges.
    pub e_feat: &'a Tensor,
    /// `[N*K, time_dim]` neighbor-side time encodings `Phi(t - t_j)` (Eq. 5).
    pub ht: &'a Tensor,
    /// `N*K` validity mask; `false` marks padding slots.
    pub mask: &'a [bool],
}

/// Computes `h_i^{(l)}(t)` for every target (Eqs. 4–7). Returns `[N, dim]`.
///
/// # Panics
/// Panics (in debug builds) on inconsistent input shapes.
pub fn forward(layer: &LayerParams, cfg: &TgatConfig, inp: &AttentionInputs<'_>) -> Tensor {
    let n = inp.h_src.rows();
    debug_assert_eq!(inp.ht0.rows(), n);
    debug_assert_eq!(inp.h_ngh.rows() % n.max(1), 0);
    debug_assert_eq!(inp.h_ngh.rows(), inp.e_feat.rows());
    debug_assert_eq!(inp.h_ngh.rows(), inp.ht.rows());
    debug_assert_eq!(inp.h_ngh.rows(), inp.mask.len());

    // Message creation: z_i = h_i || Phi(0); z_j = h_j || e_ij || Phi(dt).
    let z_src = ops::concat_cols(&[inp.h_src, inp.ht0]);
    let z_ngh = ops::concat_cols(&[inp.h_ngh, inp.e_feat, inp.ht]);

    let scale = 1.0 / (cfg.head_dim() as f32).sqrt(); // lint: allow(lossy-cast, head_dim is a small config value)
    let mut head_outs = Vec::with_capacity(layer.heads.len());
    for head in &layer.heads {
        let q = matmul(&z_src, &head.wq);
        let k = matmul(&z_ngh, &head.wk);
        let v = matmul(&z_ngh, &head.wv);
        let scores = ops::attn_scores(&q, &k, scale);
        let weights = ops::softmax_rows_masked(&scores, inp.mask);
        head_outs.push(ops::attn_weighted_sum(&weights, &v));
    }
    let refs: Vec<&Tensor> = head_outs.iter().collect();
    let r = ops::concat_cols(&refs); // [N, dim]

    // Feature update: h = FFN(r || h_src)  (Eq. 7).
    let ffn_in = ops::concat_cols(&[&r, inp.h_src]);
    let hidden = ops::relu(&ops::add_bias(&matmul(&ffn_in, &layer.fc1_w), &layer.fc1_b));
    ops::add_bias(&matmul(&hidden, &layer.fc2_w), &layer.fc2_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TgatParams;
    use tg_tensor::init;

    fn setup(n: usize) -> (TgatConfig, TgatParams, Tensor, Tensor, Tensor, Tensor, Tensor) {
        let cfg = TgatConfig::tiny();
        let p = TgatParams::init(cfg, 3).unwrap();
        let k = cfg.n_neighbors;
        let mut rng = init::seeded_rng(9);
        let h_src = init::normal(&mut rng, n, cfg.dim, 1.0);
        let ht0 = init::normal(&mut rng, n, cfg.time_dim, 1.0);
        let h_ngh = init::normal(&mut rng, n * k, cfg.dim, 1.0);
        let e_feat = init::normal(&mut rng, n * k, cfg.edge_dim, 1.0);
        let ht = init::normal(&mut rng, n * k, cfg.time_dim, 1.0);
        (cfg, p, h_src, ht0, h_ngh, e_feat, ht)
    }

    #[test]
    fn output_shape_is_n_by_dim() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(5);
        let mask = vec![true; 5 * cfg.n_neighbors];
        let out = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        assert_eq!(out.shape(), (5, cfg.dim));
        assert!(out.all_finite());
    }

    #[test]
    fn masked_neighbors_do_not_affect_output() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(2);
        let k = cfg.n_neighbors;
        let mut mask = vec![true; 2 * k];
        mask[1] = false; // target 0, slot 1 is padding
        let out1 = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        // Corrupt the padding slot's inputs; output must not change.
        let mut h_ngh2 = h_ngh.clone();
        for v in h_ngh2.row_mut(1) {
            *v = 1e3;
        }
        let mut e2 = e_feat.clone();
        for v in e2.row_mut(1) {
            *v = -1e3;
        }
        let out2 = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh2, e_feat: &e2, ht: &ht, mask: &mask },
        );
        assert!(out1.max_abs_diff(&out2) < 1e-5);
    }

    #[test]
    fn fully_masked_target_still_produces_finite_output() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(1);
        let mask = vec![false; cfg.n_neighbors];
        let out = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        assert!(out.all_finite());
    }

    #[test]
    fn batch_rows_are_independent() {
        // Computing targets together or separately must give identical rows.
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(4);
        let k = cfg.n_neighbors;
        let mask = vec![true; 4 * k];
        let full = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        for i in 0..4 {
            let hs = Tensor::from_vec(1, cfg.dim, h_src.row(i).to_vec());
            let h0 = Tensor::from_vec(1, cfg.time_dim, ht0.row(i).to_vec());
            let slice = |t: &Tensor, w: usize| {
                Tensor::from_vec(k, w, t.as_slice()[i * k * w..(i + 1) * k * w].to_vec())
            };
            let single = forward(
                &p.layers[0],
                &cfg,
                &AttentionInputs {
                    h_src: &hs,
                    ht0: &h0,
                    h_ngh: &slice(&h_ngh, cfg.dim),
                    e_feat: &slice(&e_feat, cfg.edge_dim),
                    ht: &slice(&ht, cfg.time_dim),
                    mask: &mask[i * k..(i + 1) * k],
                },
            );
            let batch_row = Tensor::from_vec(1, cfg.dim, full.row(i).to_vec());
            assert!(single.max_abs_diff(&batch_row) < 1e-5, "row {i} differs");
        }
    }
}
