//! The temporal multi-head attention operator `M` (Eqs. 4–7).
//!
//! This is the raw (tape-free) forward used by both inference engines; the
//! training path in [`crate::train`] records the identical computation on an
//! autograd tape.
//!
//! The hot entry point is [`forward_with`], which threads a
//! [`Scratch`] arena through the whole layer: every intermediate (`z_src`,
//! `z_ngh`, per-head Q/K/V, scores, the FFN input/hidden) lives in recycled
//! buffers, per-head outputs are written directly into their column block of
//! the FFN input, and the fused `addmm` / `scale+mask+softmax` kernels avoid
//! separate bias/scale passes. A steady-state batch therefore performs O(1)
//! allocator calls (only the escaping output tensor, and none once its
//! buffer cycles back through the pool). [`forward_reference`] keeps the
//! original per-op allocating implementation as the semantic baseline for
//! equivalence tests.

use crate::config::TgatConfig;
use crate::params::LayerParams;
use tg_tensor::matmul::{addmm_into, matmul, matmul_into};
use tg_tensor::{ops, Scratch, Tensor};

/// Inputs to one attention layer for a batch of `N` targets, each with `K`
/// sampled neighbors (rows `i*K..(i+1)*K` of the `N*K` tensors).
pub struct AttentionInputs<'a> {
    /// `[N, dim]` previous-layer embeddings of the targets.
    pub h_src: &'a Tensor,
    /// `[N, time_dim]` target-side time encoding `Phi(0)` (Eq. 4).
    pub ht0: &'a Tensor,
    /// `[N*K, dim]` previous-layer embeddings of the sampled neighbors.
    pub h_ngh: &'a Tensor,
    /// `[N*K, edge_dim]` features of the interaction edges.
    pub e_feat: &'a Tensor,
    /// `[N*K, time_dim]` neighbor-side time encodings `Phi(t - t_j)` (Eq. 5).
    pub ht: &'a Tensor,
    /// `N*K` validity mask; `false` marks padding slots.
    pub mask: &'a [bool],
}

/// Computes `h_i^{(l)}(t)` for every target (Eqs. 4–7). Returns `[N, dim]`.
///
/// Convenience wrapper over [`forward_with`] with a throwaway scratch; the
/// engines hold a long-lived [`Scratch`] and call [`forward_with`] directly.
///
/// # Panics
/// Panics (in debug builds) on inconsistent input shapes.
pub fn forward(layer: &LayerParams, cfg: &TgatConfig, inp: &AttentionInputs<'_>) -> Tensor {
    let mut scratch = Scratch::new();
    forward_with(layer, cfg, inp, &mut scratch)
}

/// [`forward`] with caller-provided scratch buffers (see module docs).
///
/// The returned tensor is owned by the caller; handing it back to the same
/// `Scratch` later (via `give`) closes the recycling loop.
pub fn forward_with(
    layer: &LayerParams,
    cfg: &TgatConfig,
    inp: &AttentionInputs<'_>,
    scratch: &mut Scratch,
) -> Tensor {
    let n = inp.h_src.rows();
    let nk = inp.h_ngh.rows();
    debug_assert_eq!(inp.ht0.rows(), n);
    debug_assert_eq!(nk % n.max(1), 0);
    debug_assert_eq!(nk, inp.e_feat.rows());
    debug_assert_eq!(nk, inp.ht.rows());
    debug_assert_eq!(nk, inp.mask.len());

    let out_dim = layer.fc2_w.cols();
    if n == 0 {
        return scratch.take(0, out_dim);
    }
    let k_per = nk / n;

    // Message creation: z_i = h_i || Phi(0); z_j = h_j || e_ij || Phi(dt).
    // At layer 0 of the recursion h_ngh rows are raw node features, which
    // are all-zero in the standard TGAT setup — the matmul below skips that
    // zero prefix via its per-row span pre-scan.
    let mut z_src = scratch.take(n, inp.h_src.cols() + inp.ht0.cols());
    ops::concat_cols_into(&[inp.h_src, inp.ht0], &mut z_src);
    let mut z_ngh = scratch.take(nk, inp.h_ngh.cols() + inp.e_feat.cols() + inp.ht.cols());
    ops::concat_cols_into(&[inp.h_ngh, inp.e_feat, inp.ht], &mut z_ngh);

    let scale = 1.0 / (cfg.head_dim() as f32).sqrt(); // lint: allow(lossy-cast, head_dim is a small config value)
    let head_dim = cfg.head_dim();
    let r_cols = layer.heads.len() * head_dim;

    // ffn_in = [r || h_src]: head outputs land directly in their column
    // block, so the multi-head concat never materializes separately.
    let mut ffn_in = scratch.take(n, r_cols + inp.h_src.cols());
    let mut q = scratch.take(n, head_dim);
    let mut k = scratch.take(nk, head_dim);
    let mut v = scratch.take(nk, head_dim);
    let mut scores = scratch.take(n, k_per);
    for (hidx, head) in layer.heads.iter().enumerate() {
        matmul_into(&z_src, &head.wq, &mut q);
        matmul_into(&z_ngh, &head.wk, &mut k);
        matmul_into(&z_ngh, &head.wv, &mut v);
        ops::attn_scores_into(&q, &k, 1.0, &mut scores);
        ops::scale_softmax_rows_masked_inplace(&mut scores, scale, inp.mask);
        ops::attn_weighted_sum_into(&scores, &v, &mut ffn_in, hidx * head_dim);
    }
    for i in 0..n {
        ffn_in.row_mut(i)[r_cols..].copy_from_slice(inp.h_src.row(i));
    }
    scratch.give(scores);
    scratch.give(v);
    scratch.give(k);
    scratch.give(q);
    scratch.give(z_ngh);
    scratch.give(z_src);

    // Feature update: h = FFN(r || h_src)  (Eq. 7), with fused bias adds.
    let mut hidden = scratch.take(n, layer.fc1_w.cols());
    addmm_into(&ffn_in, &layer.fc1_w, &layer.fc1_b, &mut hidden);
    ops::relu_inplace(&mut hidden);
    scratch.give(ffn_in);
    let mut out = scratch.take(n, out_dim);
    addmm_into(&hidden, &layer.fc2_w, &layer.fc2_b, &mut out);
    scratch.give(hidden);
    out
}

/// The original one-allocation-per-op implementation of the layer.
///
/// Kept as the semantic reference for the scratch/fused hot path; the
/// equivalence tests (here and in `tests/prop_kernels.rs`) require
/// [`forward_with`] to match it within 1e-5 on random inputs.
pub fn forward_reference(
    layer: &LayerParams,
    cfg: &TgatConfig,
    inp: &AttentionInputs<'_>,
) -> Tensor {
    let z_src = ops::concat_cols(&[inp.h_src, inp.ht0]);
    let z_ngh = ops::concat_cols(&[inp.h_ngh, inp.e_feat, inp.ht]);

    let scale = 1.0 / (cfg.head_dim() as f32).sqrt(); // lint: allow(lossy-cast, head_dim is a small config value)
    let mut head_outs = Vec::with_capacity(layer.heads.len());
    for head in &layer.heads {
        let q = matmul(&z_src, &head.wq);
        let k = matmul(&z_ngh, &head.wk);
        let v = matmul(&z_ngh, &head.wv);
        let scores = ops::attn_scores(&q, &k, scale);
        let weights = ops::softmax_rows_masked(&scores, inp.mask);
        head_outs.push(ops::attn_weighted_sum(&weights, &v));
    }
    let refs: Vec<&Tensor> = head_outs.iter().collect();
    let r = ops::concat_cols(&refs); // [N, dim]

    let ffn_in = ops::concat_cols(&[&r, inp.h_src]);
    let hidden = ops::relu(&ops::add_bias(&matmul(&ffn_in, &layer.fc1_w), &layer.fc1_b));
    ops::add_bias(&matmul(&hidden, &layer.fc2_w), &layer.fc2_b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::params::TgatParams;
    use tg_tensor::init;

    fn setup(n: usize) -> (TgatConfig, TgatParams, Tensor, Tensor, Tensor, Tensor, Tensor) {
        let cfg = TgatConfig::tiny();
        let p = TgatParams::init(cfg, 3).unwrap();
        let k = cfg.n_neighbors;
        let mut rng = init::seeded_rng(9);
        let h_src = init::normal(&mut rng, n, cfg.dim, 1.0);
        let ht0 = init::normal(&mut rng, n, cfg.time_dim, 1.0);
        let h_ngh = init::normal(&mut rng, n * k, cfg.dim, 1.0);
        let e_feat = init::normal(&mut rng, n * k, cfg.edge_dim, 1.0);
        let ht = init::normal(&mut rng, n * k, cfg.time_dim, 1.0);
        (cfg, p, h_src, ht0, h_ngh, e_feat, ht)
    }

    #[test]
    fn output_shape_is_n_by_dim() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(5);
        let mask = vec![true; 5 * cfg.n_neighbors];
        let out = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        assert_eq!(out.shape(), (5, cfg.dim));
        assert!(out.all_finite());
    }

    #[test]
    fn scratch_forward_matches_reference() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(6);
        let mut mask = vec![true; 6 * cfg.n_neighbors];
        mask[3] = false;
        mask[7] = false;
        let inp =
            AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask };
        let reference = forward_reference(&p.layers[0], &cfg, &inp);
        let mut scratch = Scratch::new();
        // Run twice through the same scratch: the second pass exercises
        // reused (stale-content) buffers.
        let first = forward_with(&p.layers[0], &cfg, &inp, &mut scratch);
        scratch.give(first);
        let second = forward_with(&p.layers[0], &cfg, &inp, &mut scratch);
        assert!(second.max_abs_diff(&reference) < 1e-5);
    }

    #[test]
    fn scratch_pool_reaches_steady_state() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(4);
        let mask = vec![true; 4 * cfg.n_neighbors];
        let inp =
            AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask };
        let mut scratch = Scratch::new();
        let out = forward_with(&p.layers[0], &cfg, &inp, &mut scratch);
        scratch.give(out);
        let cap_after_one = scratch.pooled_capacity();
        for _ in 0..5 {
            let out = forward_with(&p.layers[0], &cfg, &inp, &mut scratch);
            scratch.give(out);
        }
        // Steady state: no new capacity is ever acquired after the first
        // batch, i.e. every later batch runs entirely out of the pool.
        assert_eq!(scratch.pooled_capacity(), cap_after_one);
    }

    #[test]
    fn empty_batch_produces_empty_output() {
        let (cfg, p, ..) = setup(1);
        let h_src = Tensor::zeros(0, cfg.dim);
        let ht0 = Tensor::zeros(0, cfg.time_dim);
        let h_ngh = Tensor::zeros(0, cfg.dim);
        let e_feat = Tensor::zeros(0, cfg.edge_dim);
        let ht = Tensor::zeros(0, cfg.time_dim);
        let out = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &[] },
        );
        assert_eq!(out.shape(), (0, cfg.dim));
    }

    #[test]
    fn masked_neighbors_do_not_affect_output() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(2);
        let k = cfg.n_neighbors;
        let mut mask = vec![true; 2 * k];
        mask[1] = false; // target 0, slot 1 is padding
        let out1 = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        // Corrupt the padding slot's inputs; output must not change.
        let mut h_ngh2 = h_ngh.clone();
        for v in h_ngh2.row_mut(1) {
            *v = 1e3;
        }
        let mut e2 = e_feat.clone();
        for v in e2.row_mut(1) {
            *v = -1e3;
        }
        let out2 = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh2, e_feat: &e2, ht: &ht, mask: &mask },
        );
        assert!(out1.max_abs_diff(&out2) < 1e-5);
    }

    #[test]
    fn fully_masked_target_still_produces_finite_output() {
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(1);
        let mask = vec![false; cfg.n_neighbors];
        let out = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        assert!(out.all_finite());
    }

    #[test]
    fn batch_rows_are_independent() {
        // Computing targets together or separately must give identical rows.
        let (cfg, p, h_src, ht0, h_ngh, e_feat, ht) = setup(4);
        let k = cfg.n_neighbors;
        let mask = vec![true; 4 * k];
        let full = forward(
            &p.layers[0],
            &cfg,
            &AttentionInputs { h_src: &h_src, ht0: &ht0, h_ngh: &h_ngh, e_feat: &e_feat, ht: &ht, mask: &mask },
        );
        for i in 0..4 {
            let hs = Tensor::from_vec(1, cfg.dim, h_src.row(i).to_vec());
            let h0 = Tensor::from_vec(1, cfg.time_dim, ht0.row(i).to_vec());
            let slice = |t: &Tensor, w: usize| {
                Tensor::from_vec(k, w, t.as_slice()[i * k * w..(i + 1) * k * w].to_vec())
            };
            let single = forward(
                &p.layers[0],
                &cfg,
                &AttentionInputs {
                    h_src: &hs,
                    ht0: &h0,
                    h_ngh: &slice(&h_ngh, cfg.dim),
                    e_feat: &slice(&e_feat, cfg.edge_dim),
                    ht: &slice(&ht, cfg.time_dim),
                    mask: &mask[i * k..(i + 1) * k],
                },
            );
            let batch_row = Tensor::from_vec(1, cfg.dim, full.row(i).to_vec());
            assert!(single.max_abs_diff(&batch_row) < 1e-5, "row {i} differs");
        }
    }
}
