//! Synthetic CTDG generators matched to the paper's dataset statistics.

use crate::spec::{DatasetSpec, GraphKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_error::TgError;
use tg_graph::{EdgeStream, NodeId, Time};
use tg_tensor::Tensor;

/// A fully materialized dataset: interaction stream plus feature matrices.
///
/// Edge feature row `eid` belongs to interaction `eid`; node features are
/// zero vectors of the same dimension (Table 2), so layer-0 lookups return
/// zeros exactly as in the baseline TGAT setup.
#[derive(Debug)]
pub struct Dataset {
    pub name: String,
    pub spec: DatasetSpec,
    pub stream: EdgeStream,
    pub edge_features: Tensor,
    pub node_features: Tensor,
}

impl Dataset {
    /// Feature dimension shared by nodes and edges.
    pub fn dim(&self) -> usize {
        self.edge_features.cols()
    }
}

/// Zipf sampler over `0..n` via an inverse-CDF table.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, exponent: f64) -> Self {
        assert!(n > 0);
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for i in 0..n {
            acc += 1.0 / ((i + 1) as f64).powf(exponent);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut StdRng) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// Bursty integer inter-arrival time with the given mean.
///
/// A two-mode mixture (short within-session gaps, long between-session gaps)
/// yields the near-zero clustering with a heavy tail seen in Figure 4.
fn inter_arrival(rng: &mut StdRng, mean: f64) -> f64 {
    let exp = |rng: &mut StdRng, m: f64| -> f64 {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        -m * u.ln()
    };
    let dt = if rng.gen_bool(0.7) { exp(rng, mean * 0.1) } else { exp(rng, mean * 3.1) };
    dt.round().max(0.0)
}

/// Gap between events inside one actor's session: half land on the same
/// second (emails to several recipients — the duplicate targets of Table 1),
/// half are short pauses (the near-zero time-delta mass of Figure 4).
fn session_gap(rng: &mut StdRng) -> f64 {
    if rng.gen_bool(0.5) {
        0.0
    } else {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        (1.0 - 120.0 * u.ln()).round()
    }
}

/// Synthesizes a dataset.
///
/// `scale` multiplies the interaction count (`1.0` = the paper's full |E|);
/// node counts are kept so that per-batch structure (duplication rates,
/// neighbor sharing) matches the original. Timestamps keep the original
/// event-rate (so `max(t)` scales with the edge count). Everything is
/// deterministic in `seed`.
pub fn generate(spec: &DatasetSpec, scale: f64, seed: u64) -> Result<Dataset, TgError> {
    if !(scale > 0.0) {
        return Err(TgError::InvalidArgument(format!(
            "dataset scale must be positive, got {scale}"
        )));
    }
    let n_edges = ((spec.num_edges as f64 * scale).round() as usize).max(1); // lint: allow(lossy-cast, rounded edge count is far below 2^52)
    let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ hash_name(spec.name));
    let mean_gap = spec.max_time as f64 / spec.num_edges as f64;

    let mut srcs: Vec<NodeId> = Vec::with_capacity(n_edges);
    let mut dsts: Vec<NodeId> = Vec::with_capacity(n_edges);
    let mut times: Vec<Time> = Vec::with_capacity(n_edges);
    let mut t = 0.0f64;

    match spec.kind {
        GraphKind::Bipartite { users, items } => {
            let user_pick = Zipf::new(users, 1.0);
            let item_pick = Zipf::new(items, spec.zipf_exponent);
            // last item each user interacted with, for repeat behavior
            let mut last_item: Vec<Option<usize>> = vec![None; users];
            // actor continuing a same-timestamp burst, if any
            let mut burst: Option<usize> = None;
            for _ in 0..n_edges {
                let u = match burst.take() {
                    Some(b) => {
                        t += session_gap(&mut rng);
                        b
                    }
                    None => {
                        t += inter_arrival(&mut rng, mean_gap);
                        user_pick.sample(&mut rng)
                    }
                };
                let item = match last_item[u] {
                    Some(prev) if rng.gen_bool(spec.repeat_prob) => prev,
                    _ => item_pick.sample(&mut rng),
                };
                last_item[u] = Some(item);
                srcs.push(u as NodeId);
                dsts.push((users + item) as NodeId);
                times.push(t as Time);
                if spec.burst_prob > 0.0 && rng.gen_bool(spec.burst_prob) {
                    burst = Some(u);
                }
            }
        }
        GraphKind::Homogeneous { nodes } => {
            let node_pick = Zipf::new(nodes, spec.zipf_exponent);
            let mut last_partner: Vec<Option<usize>> = vec![None; nodes];
            let mut burst: Option<usize> = None;
            for _ in 0..n_edges {
                let s = match burst.take() {
                    Some(b) => {
                        t += session_gap(&mut rng);
                        b
                    }
                    None => {
                        t += inter_arrival(&mut rng, mean_gap);
                        node_pick.sample(&mut rng)
                    }
                };
                let d = match last_partner[s] {
                    Some(prev) if rng.gen_bool(spec.repeat_prob) => prev,
                    _ => {
                        let mut d = node_pick.sample(&mut rng);
                        let mut tries = 0;
                        while d == s && tries < 8 {
                            d = node_pick.sample(&mut rng);
                            tries += 1;
                        }
                        if d == s {
                            d = (s + 1) % nodes;
                        }
                        d
                    }
                };
                last_partner[s] = Some(d);
                last_partner[d] = Some(s);
                srcs.push(s as NodeId);
                dsts.push(d as NodeId);
                times.push(t as Time);
                if spec.burst_prob > 0.0 && rng.gen_bool(spec.burst_prob) {
                    // Same actor fires again at the same second (e.g. an
                    // email with several recipients), but to a new partner.
                    burst = Some(s);
                    last_partner[s] = None;
                }
            }
        }
    }

    let dim = spec.effective_edge_dim();
    let mut feat = vec![0.0f32; n_edges * dim];
    for v in &mut feat {
        *v = rng.gen_range(-1.0..=1.0);
    }
    let edge_features = Tensor::from_vec(n_edges, dim, feat);
    // Ensure the node-feature matrix covers the full id space even if a
    // scaled run never touched the highest ids.
    let num_nodes = spec.num_nodes();
    let node_features = Tensor::zeros(num_nodes, dim);

    Ok(Dataset {
        name: spec.name.to_string(),
        spec: *spec,
        stream: EdgeStream::new(&srcs, &dsts, &times),
        edge_features,
        node_features,
    })
}

fn hash_name(name: &str) -> u64 {
    name.bytes().fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
        (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{all_specs, spec_by_name};

    #[test]
    fn generate_is_deterministic() {
        let spec = spec_by_name("snap-msg").unwrap();
        let a = generate(&spec, 0.05, 7).unwrap();
        let b = generate(&spec, 0.05, 7).unwrap();
        assert_eq!(a.stream.edges(), b.stream.edges());
        assert_eq!(a.edge_features.as_slice(), b.edge_features.as_slice());
    }

    #[test]
    fn different_seeds_differ() {
        let spec = spec_by_name("snap-msg").unwrap();
        let a = generate(&spec, 0.05, 7).unwrap();
        let b = generate(&spec, 0.05, 8).unwrap();
        assert_ne!(a.stream.edges(), b.stream.edges());
    }

    #[test]
    fn scale_controls_edge_count() {
        let spec = spec_by_name("jodie-wiki").unwrap();
        let d = generate(&spec, 0.01, 1).unwrap();
        let expected = (spec.num_edges as f64 * 0.01).round() as usize;
        assert_eq!(d.stream.len(), expected);
        assert_eq!(d.edge_features.rows(), expected);
        assert_eq!(d.node_features.rows(), spec.num_nodes());
    }

    #[test]
    fn bipartite_edges_cross_the_partition() {
        let spec = spec_by_name("jodie-mooc").unwrap();
        let d = generate(&spec, 0.005, 3).unwrap();
        let GraphKind::Bipartite { users, .. } = spec.kind else { panic!() };
        for e in d.stream.edges() {
            assert!((e.src as usize) < users, "source must be a user");
            assert!((e.dst as usize) >= users, "destination must be an item");
        }
    }

    #[test]
    fn homogeneous_has_no_self_loops() {
        let spec = spec_by_name("snap-email").unwrap();
        let d = generate(&spec, 0.01, 5).unwrap();
        assert!(d.stream.edges().iter().all(|e| e.src != e.dst));
    }

    #[test]
    fn timestamps_are_integral_and_nondecreasing() {
        let spec = spec_by_name("snap-msg").unwrap();
        let d = generate(&spec, 0.05, 2).unwrap();
        let edges = d.stream.edges();
        for w in edges.windows(2) {
            assert!(w[0].time <= w[1].time);
        }
        assert!(edges.iter().all(|e| e.time.fract() == 0.0), "integer-second timestamps");
    }

    #[test]
    fn node_features_are_zero_with_edge_dim() {
        let spec = spec_by_name("jodie-reddit").unwrap();
        let d = generate(&spec, 0.001, 1).unwrap();
        assert_eq!(d.dim(), 172);
        assert_eq!(d.node_features.cols(), 172);
        assert!(d.node_features.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn repeat_behavior_creates_consecutive_repeats() {
        // jodie-style graphs must show users re-hitting their previous item.
        let spec = spec_by_name("jodie-lastfm").unwrap();
        let d = generate(&spec, 0.01, 11).unwrap();
        let mut last: std::collections::HashMap<NodeId, NodeId> = Default::default();
        let mut repeats = 0usize;
        let mut total = 0usize;
        for e in d.stream.edges() {
            if let Some(&prev) = last.get(&e.src) {
                total += 1;
                if prev == e.dst {
                    repeats += 1;
                }
            }
            last.insert(e.src, e.dst);
        }
        let frac = repeats as f64 / total.max(1) as f64;
        assert!(frac > 0.5, "expected heavy repeat behavior, got {frac:.2}");
    }

    #[test]
    fn non_positive_scale_is_rejected() {
        let spec = spec_by_name("snap-msg").unwrap();
        for bad in [0.0, -1.0, f64::NAN] {
            let err = generate(&spec, bad, 1).unwrap_err();
            assert!(matches!(err, TgError::InvalidArgument(_)), "scale {bad}: {err}");
        }
    }

    #[test]
    fn all_specs_generate_tiny() {
        for spec in all_specs() {
            let d = generate(&spec, 0.0005, 1).unwrap();
            assert!(!d.stream.is_empty());
            assert!(d.stream.num_nodes() <= spec.num_nodes());
        }
    }
}
