//! Published statistics of the seven evaluation datasets (paper Table 2),
//! plus the behavioral knobs the synthetic generators use.

/// Bipartite (user–item) or homogeneous graph.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GraphKind {
    /// JODIE-style interaction graph: sources are users, destinations items.
    Bipartite { users: usize, items: usize },
    /// SNAP-style social/communication graph.
    Homogeneous { nodes: usize },
}

impl GraphKind {
    /// Total number of nodes.
    pub fn num_nodes(&self) -> usize {
        match *self {
            GraphKind::Bipartite { users, items } => users + items,
            GraphKind::Homogeneous { nodes } => nodes,
        }
    }
}

/// Everything needed to synthesize (or validate) one evaluation dataset.
#[derive(Clone, Copy, Debug)]
pub struct DatasetSpec {
    pub name: &'static str,
    pub kind: GraphKind,
    /// Interaction count `|E|` at full scale.
    pub num_edges: usize,
    /// Edge feature dimension; `None` means the original lacks features and
    /// a random 100-dim vector is substituted (Table 2 footnote).
    pub edge_dim: Option<usize>,
    /// Largest timestamp (seconds).
    pub max_time: f32,
    /// Probability that an interaction repeats the actor's previous partner
    /// (the consecutive-repetition behavior JODIE datasets are curated for).
    pub repeat_prob: f64,
    /// Zipf exponent of partner popularity (larger = more skew = more
    /// shared neighbors and intra-batch duplication).
    pub zipf_exponent: f64,
    /// Probability that an event starts a same-timestamp burst from the same
    /// actor (emails to several recipients, posts hitting many subreddits).
    /// This drives the raw-batch (layer-2) duplication of Table 1.
    pub burst_prob: f64,
}

impl DatasetSpec {
    /// Effective edge feature dimension after the random-feature substitute.
    pub fn effective_edge_dim(&self) -> usize {
        self.edge_dim.unwrap_or(100)
    }

    /// Total node count.
    pub fn num_nodes(&self) -> usize {
        self.kind.num_nodes()
    }
}

/// The seven datasets of the paper's evaluation (Table 2). Node splits for
/// the bipartite graphs follow the JODIE sources (users vs items).
pub fn all_specs() -> Vec<DatasetSpec> {
    vec![
        DatasetSpec {
            name: "jodie-lastfm",
            kind: GraphKind::Bipartite { users: 980, items: 1000 },
            num_edges: 1_293_103,
            edge_dim: None,
            max_time: 1.4e8,
            repeat_prob: 0.70,
            zipf_exponent: 1.1,
            burst_prob: 0.0,
        },
        DatasetSpec {
            name: "jodie-mooc",
            kind: GraphKind::Bipartite { users: 7047, items: 97 },
            num_edges: 411_749,
            edge_dim: Some(4),
            max_time: 2.6e6,
            repeat_prob: 0.65,
            zipf_exponent: 1.0,
            burst_prob: 0.02,
        },
        DatasetSpec {
            name: "jodie-reddit",
            kind: GraphKind::Bipartite { users: 10_000, items: 984 },
            num_edges: 672_447,
            edge_dim: Some(172),
            max_time: 2.7e6,
            repeat_prob: 0.75,
            zipf_exponent: 1.1,
            burst_prob: 0.0,
        },
        DatasetSpec {
            name: "jodie-wiki",
            kind: GraphKind::Bipartite { users: 8227, items: 1000 },
            num_edges: 157_474,
            edge_dim: Some(172),
            max_time: 2.7e6,
            repeat_prob: 0.70,
            zipf_exponent: 1.2,
            burst_prob: 0.0,
        },
        DatasetSpec {
            name: "snap-email",
            kind: GraphKind::Homogeneous { nodes: 986 },
            num_edges: 332_334,
            edge_dim: None,
            max_time: 6.9e7,
            repeat_prob: 0.35,
            zipf_exponent: 1.2,
            burst_prob: 0.45,
        },
        DatasetSpec {
            name: "snap-msg",
            kind: GraphKind::Homogeneous { nodes: 1899 },
            num_edges: 59_835,
            edge_dim: None,
            max_time: 1.1e9,
            repeat_prob: 0.30,
            zipf_exponent: 1.1,
            burst_prob: 0.40,
        },
        DatasetSpec {
            name: "snap-reddit",
            kind: GraphKind::Homogeneous { nodes: 67_180 },
            num_edges: 858_488,
            edge_dim: Some(86),
            max_time: 1.5e9,
            repeat_prob: 0.25,
            zipf_exponent: 1.3,
            burst_prob: 0.20,
        },
    ]
}

/// Synthetic datasets that are *not* part of the paper's evaluation —
/// sized for the sharded-serving scaling bench rather than Table 2
/// fidelity. Kept out of [`all_specs`] so the `exp_*` reproduction
/// binaries keep iterating exactly the paper's seven datasets.
///
/// `synth-shard`: a ≥100k-node homogeneous graph. The Zipf exponent is
/// deliberately flatter than the SNAP graphs (0.9) so that at full scale
/// the generator actually touches ~93% of the 131,072 ids — a sharded
/// server is only interesting when ownership spreads over many nodes.
/// `edge_dim` is small (8) to keep the 1.2M-edge feature matrix tens of
/// megabytes instead of the ~480MB a 100-dim substitute would cost.
pub fn synthetic_specs() -> Vec<DatasetSpec> {
    vec![DatasetSpec {
        name: "synth-shard",
        kind: GraphKind::Homogeneous { nodes: 131_072 },
        num_edges: 1_200_000,
        edge_dim: Some(8),
        max_time: 1.2e7,
        repeat_prob: 0.20,
        zipf_exponent: 0.9,
        burst_prob: 0.10,
    }]
}

/// Looks up a spec by dataset name, searching the paper's seven
/// evaluation datasets first and the synthetic scaling datasets second.
pub fn spec_by_name(name: &str) -> Option<DatasetSpec> {
    all_specs()
        .into_iter()
        .chain(synthetic_specs())
        .find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seven_datasets_with_table2_counts() {
        let specs = all_specs();
        assert_eq!(specs.len(), 7);
        let lastfm = spec_by_name("jodie-lastfm").unwrap();
        assert_eq!(lastfm.num_nodes(), 1980);
        assert_eq!(lastfm.num_edges, 1_293_103);
        assert_eq!(lastfm.effective_edge_dim(), 100);
        let reddit = spec_by_name("jodie-reddit").unwrap();
        assert_eq!(reddit.num_nodes(), 10_984);
        assert_eq!(reddit.effective_edge_dim(), 172);
        let snap_reddit = spec_by_name("snap-reddit").unwrap();
        assert_eq!(snap_reddit.num_nodes(), 67_180);
        assert_eq!(snap_reddit.effective_edge_dim(), 86);
    }

    #[test]
    fn unknown_name_is_none() {
        assert!(spec_by_name("nope").is_none());
    }

    #[test]
    fn synthetic_specs_resolve_by_name_but_stay_out_of_all_specs() {
        let s = spec_by_name("synth-shard").unwrap();
        assert!(s.num_nodes() >= 100_000, "scaling bench needs a >=100k-node graph");
        assert_eq!(s.effective_edge_dim(), 8);
        assert!(all_specs().iter().all(|p| p.name != "synth-shard"));
    }

    #[test]
    fn bipartite_node_split_sums() {
        for s in all_specs() {
            if let GraphKind::Bipartite { users, items } = s.kind {
                assert_eq!(users + items, s.num_nodes());
                assert!(users > 0 && items > 0);
            }
        }
    }
}
