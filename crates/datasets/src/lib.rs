//! Dataset specifications, synthetic generators, and loaders.
//!
//! The paper evaluates on four bipartite JODIE graphs and three homogeneous
//! SNAP graphs (Table 2). The curated originals are not redistributable
//! here, so [`generate`] synthesizes graphs that match each dataset's
//! published statistics — node/edge counts, edge feature dimensionality,
//! time span — and, crucially, the *behavioral* properties the TGOpt
//! optimizations exploit:
//!
//! * repetitive consecutive interactions (JODIE graphs were curated for
//!   users repeatedly interacting with the same item, §5.2.1);
//! * skewed (Zipf) partner popularity, producing shared neighbors and hence
//!   intra-batch duplicates (§3.1, Table 1);
//! * bursty integer-second timestamps, producing the power-law time-delta
//!   distribution of §3.3 (Figure 4).
//!
//! [`load_csv`] reads the `ml_{name}.csv` format of the original TGAT
//! artifact for anyone with access to the real data.

pub mod gen;
pub mod loader;
pub mod spec;
pub mod stats;

pub use gen::{generate, Dataset};
pub use loader::load_csv;
pub use spec::{all_specs, spec_by_name, synthetic_specs, DatasetSpec, GraphKind};
pub use stats::{dataset_stats, DatasetStats};
