//! Dataset summary statistics (reproduces the columns of paper Table 2).

use crate::gen::Dataset;

/// Summary row for one dataset.
#[derive(Clone, Debug, PartialEq)]
pub struct DatasetStats {
    pub name: String,
    pub num_nodes: usize,
    pub num_edges: usize,
    pub edge_dim: usize,
    pub max_time: f32,
    /// Mean interactions per node (density indicator, not in Table 2 but
    /// useful when interpreting cache hit rates).
    pub mean_degree: f64,
}

/// Computes Table 2-style statistics for a materialized dataset.
pub fn dataset_stats(d: &Dataset) -> DatasetStats {
    let mut seen = vec![false; d.stream.num_nodes()];
    for e in d.stream.edges() {
        seen[e.src as usize] = true;
        seen[e.dst as usize] = true;
    }
    let active: usize = seen.iter().filter(|&&s| s).count();
    DatasetStats {
        name: d.name.clone(),
        num_nodes: active,
        num_edges: d.stream.len(),
        edge_dim: d.dim(),
        max_time: d.stream.max_time(),
        mean_degree: 2.0 * d.stream.len() as f64 / active.max(1) as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate;
    use crate::spec::spec_by_name;

    #[test]
    fn stats_count_active_nodes_and_edges() {
        let spec = spec_by_name("snap-msg").unwrap();
        let d = generate(&spec, 0.1, 1).unwrap();
        let s = dataset_stats(&d);
        assert_eq!(s.num_edges, d.stream.len());
        assert!(s.num_nodes <= spec.num_nodes());
        assert!(s.num_nodes > 0);
        assert_eq!(s.edge_dim, 100);
        assert!(s.mean_degree > 0.0);
        assert_eq!(s.max_time, d.stream.max_time());
    }
}
