//! Loader for the original TGAT artifact's `ml_{name}.csv` edge-list format.
//!
//! Each data row is `user, item, timestamp, label, idx`. Feature matrices
//! (`.npy` in the artifact) are replaced by seeded random edge features and
//! zero node features of the requested dimension, matching the paper's
//! handling of missing features.

use crate::gen::Dataset;
use crate::spec::{DatasetSpec, GraphKind};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::BufRead;
use std::path::Path;
use tg_error::TgError;
use tg_graph::{EdgeStream, NodeId, Time};
use tg_tensor::Tensor;

/// Parses one numeric CSV field, reporting its file/line/field position on
/// failure so users can locate bad records in multi-million-row inputs.
fn parse_field(
    raw: Option<&str>,
    path: &Path,
    lineno: usize,
    field: &str,
) -> Result<f64, TgError> {
    let file = path.display().to_string();
    match raw {
        None => Err(TgError::parse(file, lineno, field, "field is missing")),
        Some(text) => text.parse::<f64>().map_err(|_| {
            TgError::parse(file, lineno, field, format!("not a number: {text:?}"))
        }),
    }
}

/// Parses a `ml_{name}.csv` file into a [`Dataset`].
///
/// Rows must be time-sorted (the artifact's preprocessing guarantees this).
/// Lines that fail to parse are reported as [`TgError::Parse`] errors
/// carrying the file, 1-based line number, and field name — never skipped.
pub fn load_csv(path: &Path, name: &str, edge_dim: usize, seed: u64) -> Result<Dataset, TgError> {
    let file = std::fs::File::open(path)?;
    let reader = std::io::BufReader::new(file);
    let mut srcs: Vec<NodeId> = Vec::new();
    let mut dsts: Vec<NodeId> = Vec::new();
    let mut times: Vec<Time> = Vec::new();
    for (idx, line) in reader.lines().enumerate() {
        let line = line?;
        let lineno = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() {
            continue;
        }
        // Skip a header row if present.
        if idx == 0 && trimmed.chars().next().is_some_and(|c| c.is_alphabetic()) {
            continue;
        }
        let mut fields = trimmed.split(',').map(str::trim);
        // The artifact writes node ids as floats ("3.0"); truncation back to
        // an integer id is the intended decode, not data loss.
        let u = parse_field(fields.next(), path, lineno, "user")? as NodeId; // lint: allow(lossy-cast, artifact stores integer ids as floats)
        let i = parse_field(fields.next(), path, lineno, "item")? as NodeId; // lint: allow(lossy-cast, artifact stores integer ids as floats)
        let t = parse_field(fields.next(), path, lineno, "timestamp")? as Time; // lint: allow(lossy-cast, times are f32 end-to-end; f64 only for parsing)
        srcs.push(u);
        dsts.push(i);
        times.push(t);
    }
    let stream = EdgeStream::new(&srcs, &dsts, &times);
    let n_edges = stream.len();
    let num_nodes = stream.num_nodes();
    let mut rng = StdRng::seed_from_u64(seed);
    let mut feat = vec![0.0f32; n_edges * edge_dim];
    for v in &mut feat {
        *v = rng.gen_range(-1.0..=1.0);
    }
    Ok(Dataset {
        name: name.to_string(),
        spec: DatasetSpec {
            name: "custom",
            kind: GraphKind::Homogeneous { nodes: num_nodes },
            num_edges: n_edges,
            edge_dim: Some(edge_dim),
            max_time: stream.max_time(),
            repeat_prob: 0.0,
            zipf_exponent: 0.0,
            burst_prob: 0.0,
        },
        stream,
        edge_features: Tensor::from_vec(n_edges, edge_dim, feat),
        node_features: Tensor::zeros(num_nodes, edge_dim),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn write_temp(content: &str) -> std::path::PathBuf {
        let mut path = std::env::temp_dir();
        path.push(format!("tgopt-test-{}.csv", rand::random::<u64>()));
        let mut f = std::fs::File::create(&path).unwrap();
        f.write_all(content.as_bytes()).unwrap();
        path
    }

    #[test]
    fn loads_basic_csv_with_header() {
        let p = write_temp("u,i,ts,label,idx\n0,3,1.0,0,0\n1,3,2.0,0,1\n");
        let d = load_csv(&p, "test", 8, 1).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(d.stream.len(), 2);
        assert_eq!(d.stream.num_nodes(), 4);
        assert_eq!(d.edge_features.shape(), (2, 8));
        assert_eq!(d.stream.edges()[1].time, 2.0);
    }

    #[test]
    fn loads_headerless_and_skips_blank_lines() {
        let p = write_temp("0,1,5,0,0\n\n2,1,6,0,1\n");
        let d = load_csv(&p, "test", 4, 1).unwrap();
        std::fs::remove_file(&p).ok();
        assert_eq!(d.stream.len(), 2);
    }

    #[test]
    fn truncated_row_reports_file_line_and_field() {
        let p = write_temp("0,1,5,0,0\n0,1\n");
        let err = load_csv(&p, "test", 4, 1).unwrap_err();
        std::fs::remove_file(&p).ok();
        match err {
            TgError::Parse { ref file, line, ref field, .. } => {
                assert!(file.ends_with(".csv"), "unexpected file: {file}");
                assert_eq!(line, 2);
                assert_eq!(field, "timestamp");
            }
            other => panic!("expected Parse error, got: {other}"),
        }
    }

    #[test]
    fn non_numeric_field_reports_its_name_and_content() {
        let p = write_temp("0,abc,5,0,0\n");
        let err = load_csv(&p, "test", 4, 1).unwrap_err();
        std::fs::remove_file(&p).ok();
        let msg = err.to_string();
        assert!(msg.contains(":1:"), "missing line number: {msg}");
        assert!(msg.contains("item"), "missing field name: {msg}");
        assert!(msg.contains("abc"), "missing offending content: {msg}");
    }

    #[test]
    fn missing_file_is_an_io_error() {
        let err = load_csv(Path::new("/nonexistent/x.csv"), "x", 4, 1).unwrap_err();
        assert!(matches!(err, TgError::Io(_)));
    }
}
