//! Property-based tests for the synthetic dataset generators: structural
//! invariants must hold for every dataset at every scale and seed.

use proptest::prelude::*;
use tg_datasets::{all_specs, dataset_stats, generate, GraphKind};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn generated_streams_uphold_all_invariants(
        spec_idx in 0usize..7,
        scale_millis in 1u32..20,   // 0.001 .. 0.020
        seed in 0u64..50,
    ) {
        let spec = all_specs()[spec_idx];
        let scale = scale_millis as f64 / 1000.0;
        let ds = generate(&spec, scale, seed).unwrap();

        // Edge count honors the scale; ids stay in range.
        let expected = ((spec.num_edges as f64 * scale).round() as usize).max(1);
        prop_assert_eq!(ds.stream.len(), expected);
        prop_assert!(ds.stream.num_nodes() <= spec.num_nodes());

        // Timestamps: non-decreasing, integral, non-negative.
        let mut prev = f32::NEG_INFINITY;
        for e in ds.stream.edges() {
            prop_assert!(e.time >= prev);
            prop_assert!(e.time >= 0.0);
            prop_assert_eq!(e.time.fract(), 0.0);
            prev = e.time;
        }

        // Edge ids are the row index of the feature matrix.
        for (i, e) in ds.stream.edges().iter().enumerate() {
            prop_assert_eq!(e.eid as usize, i);
        }
        prop_assert_eq!(ds.edge_features.rows(), ds.stream.len());
        prop_assert_eq!(ds.edge_features.cols(), spec.effective_edge_dim());
        prop_assert!(ds.edge_features.all_finite());

        // Node features: zero matrix over the full id space.
        prop_assert_eq!(ds.node_features.rows(), spec.num_nodes());
        prop_assert!(ds.node_features.as_slice().iter().all(|&v| v == 0.0));

        // Bipartite structure holds for jodie graphs.
        if let GraphKind::Bipartite { users, .. } = spec.kind {
            for e in ds.stream.edges() {
                prop_assert!((e.src as usize) < users);
                prop_assert!((e.dst as usize) >= users);
            }
        } else {
            prop_assert!(ds.stream.edges().iter().all(|e| e.src != e.dst));
        }

        // Stats helper is internally consistent.
        let stats = dataset_stats(&ds);
        prop_assert_eq!(stats.num_edges, ds.stream.len());
        prop_assert!(stats.num_nodes <= spec.num_nodes());
        prop_assert!((stats.mean_degree - 2.0 * stats.num_edges as f64 / stats.num_nodes as f64).abs() < 1e-9);
    }

    #[test]
    fn same_seed_same_data_different_seed_different_data(
        spec_idx in 0usize..7,
        seed in 0u64..25,
    ) {
        let spec = all_specs()[spec_idx];
        let a = generate(&spec, 0.002, seed).unwrap();
        let b = generate(&spec, 0.002, seed).unwrap();
        prop_assert_eq!(a.stream.edges(), b.stream.edges());
        prop_assert_eq!(a.edge_features.as_slice(), b.edge_features.as_slice());
        let c = generate(&spec, 0.002, seed + 1000).unwrap();
        prop_assert_ne!(a.stream.edges(), c.stream.edges());
    }

    #[test]
    fn scaling_preserves_event_rate(spec_idx in 0usize..7, seed in 0u64..10) {
        // The generator keeps the original inter-event rate, so max(t)
        // should scale roughly linearly with |E| (burstiness adds noise).
        let spec = all_specs()[spec_idx];
        let small = generate(&spec, 0.002, seed).unwrap();
        let large = generate(&spec, 0.02, seed).unwrap();
        let rate_small = small.stream.max_time() as f64 / small.stream.len() as f64;
        let rate_large = large.stream.max_time() as f64 / large.stream.len() as f64;
        let ratio = rate_small / rate_large;
        prop_assert!((0.2..5.0).contains(&ratio), "event rate drifted: {ratio}");
    }
}
