//! The bounded admission queue between client handles and the batcher.
//!
//! Capacity is a hard bound: a full queue rejects with
//! [`TgError::Overloaded`] instead of blocking the caller or growing
//! without limit, so overload sheds at the front door (backpressure). The
//! consumer side pops *waves* — up to `max` items, after lingering briefly
//! for stragglers — which is what turns individual requests into
//! micro-batches.

use crate::relock;
use std::collections::VecDeque;
use std::sync::{Condvar, Mutex};
use std::time::{Duration, Instant};
use tg_error::TgError;

struct State<T> {
    items: VecDeque<T>,
    closed: bool,
}

/// A bounded MPSC queue with wave-draining consumers.
pub struct BoundedQueue<T> {
    state: Mutex<State<T>>,
    /// Signaled on push and on close.
    arrived: Condvar,
    capacity: usize,
}

impl<T> BoundedQueue<T> {
    /// A queue admitting at most `capacity` pending items.
    ///
    /// # Invariants
    ///
    /// - `capacity` is clamped to at least 1; a zero-capacity queue would
    ///   reject every submission.
    pub fn new(capacity: usize) -> Self {
        Self {
            state: Mutex::new(State { items: VecDeque::new(), closed: false }),
            arrived: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// The hard bound on pending items.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently queued items.
    pub fn len(&self) -> usize {
        relock(self.state.lock()).items.len()
    }

    /// True if nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Non-blocking admission. A full queue returns
    /// [`TgError::Overloaded`]; a closed queue returns
    /// [`TgError::InvalidArgument`] (submitting after shutdown is a caller
    /// bug, not an overload).
    ///
    /// # Invariants
    ///
    /// - Never blocks: the caller either owns a queue slot on return or
    ///   got its item's rejection reason.
    /// - `len() <= capacity()` holds before and after.
    pub fn push(&self, item: T) -> Result<(), TgError> {
        let mut st = relock(self.state.lock());
        if st.closed {
            return Err(TgError::InvalidArgument("submit after shutdown".into()));
        }
        if st.items.len() >= self.capacity {
            return Err(TgError::Overloaded { capacity: self.capacity });
        }
        st.items.push_back(item);
        drop(st);
        self.arrived.notify_one();
        Ok(())
    }

    /// Blocks until at least one item is queued (or the queue is closed
    /// *and* empty — then `None`, the consumer's exit signal), lingers up
    /// to `linger` for more items to coalesce with, then drains up to
    /// `max` items in FIFO order.
    ///
    /// # Invariants
    ///
    /// - Returns `None` only when closed and fully drained: no accepted
    ///   item is ever dropped by shutdown.
    /// - A returned wave is non-empty, at most `max` long, and preserves
    ///   submission order.
    pub fn pop_wave(&self, max: usize, linger: Duration) -> Option<Vec<T>> {
        let max = max.max(1);
        let mut st = relock(self.state.lock());
        loop {
            if !st.items.is_empty() {
                break;
            }
            if st.closed {
                return None;
            }
            st = relock(self.arrived.wait(st));
        }
        // Linger phase: wait for the wave to fill, the timer to expire, or
        // the queue to close (shutdown flushes immediately).
        let deadline = Instant::now() + linger;
        while st.items.len() < max && !st.closed {
            let left = match deadline.checked_duration_since(Instant::now()) {
                Some(left) if !left.is_zero() => left,
                _ => break,
            };
            let (g, timeout) = match self.arrived.wait_timeout(st, left) {
                Ok(pair) => pair,
                Err(poisoned) => poisoned.into_inner(),
            };
            st = g;
            if timeout.timed_out() {
                break;
            }
        }
        let take = st.items.len().min(max);
        Some(st.items.drain(..take).collect())
    }

    /// Drains every queued item without blocking (deterministic mode's
    /// consumer). Returns an empty vec when nothing is queued.
    ///
    /// # Invariants
    ///
    /// - Leaves the queue empty; submission order is preserved.
    pub fn drain_all(&self) -> Vec<T> {
        let mut st = relock(self.state.lock());
        st.items.drain(..).collect()
    }

    /// Marks the queue closed: subsequent pushes fail, blocked consumers
    /// wake, and `pop_wave` returns `None` once the backlog is drained.
    ///
    /// # Invariants
    ///
    /// - Idempotent; already-queued items remain poppable after close.
    pub fn close(&self) {
        relock(self.state.lock()).closed = true;
        self.arrived.notify_all();
    }

    /// True once [`BoundedQueue::close`] has run.
    pub fn is_closed(&self) -> bool {
        relock(self.state.lock()).closed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_queue_rejects_with_overloaded() {
        let q = BoundedQueue::new(2);
        q.push(1).unwrap();
        q.push(2).unwrap();
        match q.push(3) {
            Err(TgError::Overloaded { capacity }) => assert_eq!(capacity, 2),
            other => panic!("expected Overloaded, got {other:?}"),
        }
        assert_eq!(q.len(), 2);
    }

    #[test]
    fn closed_queue_rejects_pushes_but_drains_backlog() {
        let q = BoundedQueue::new(4);
        q.push(1).unwrap();
        q.close();
        assert!(q.push(2).is_err());
        assert_eq!(q.pop_wave(10, Duration::ZERO), Some(vec![1]));
        assert_eq!(q.pop_wave(10, Duration::ZERO), None);
    }

    #[test]
    fn pop_wave_respects_max_and_order() {
        let q = BoundedQueue::new(16);
        for i in 0..5 {
            q.push(i).unwrap();
        }
        assert_eq!(q.pop_wave(3, Duration::ZERO), Some(vec![0, 1, 2]));
        assert_eq!(q.pop_wave(3, Duration::ZERO), Some(vec![3, 4]));
        assert!(q.is_empty());
    }

    #[test]
    fn pop_wave_lingers_for_stragglers() {
        use std::sync::Arc;
        let q = Arc::new(BoundedQueue::new(16));
        q.push(0).unwrap();
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(5));
            q2.push(1).unwrap();
        });
        // A generous linger lets the straggler join the same wave.
        let wave = q.pop_wave(2, Duration::from_secs(2)).unwrap();
        t.join().unwrap();
        assert_eq!(wave, vec![0, 1]);
    }

    #[test]
    fn close_wakes_blocked_consumer() {
        use std::sync::Arc;
        let q: Arc<BoundedQueue<u32>> = Arc::new(BoundedQueue::new(4));
        let q2 = Arc::clone(&q);
        let t = std::thread::spawn(move || q2.pop_wave(4, Duration::from_secs(60)));
        std::thread::sleep(Duration::from_millis(5));
        q.close();
        assert_eq!(t.join().unwrap(), None);
    }

    #[test]
    fn zero_capacity_clamps_to_one() {
        let q = BoundedQueue::new(0);
        assert_eq!(q.capacity(), 1);
        q.push(9).unwrap();
        assert!(q.push(10).is_err());
    }
}
