//! Streaming-ingest coordination: targeted cache invalidation plus the
//! event-replay protocol that makes it safe under concurrent waves.
//!
//! When an edge is appended to the live graph, only cached layer-1
//! entries whose most-recent-k neighbor window the new edge could enter
//! are stale — everything older keeps sampling the same neighborhood and
//! stays valid. [`entry_stale_after_insert`] encodes that predicate
//! exactly; [`sweep_insert`] applies it to the shared cache. This
//! replaces sledgehammer per-node invalidation with a sweep that retains
//! provably-fresh entries (counted in telemetry as `entries_retained`).
//!
//! The sweep alone is not enough under concurrency: a worker that pinned
//! a pre-insert [`GraphView`] may *store* entries computed from stale
//! history after the submitter's sweep already scanned the cache.
//! [`IngestSync`] closes that window: every appended edge leaves an
//! [`IngestEvent`] in a log, each wave registers the epoch it pinned
//! (under the same lock the submitter appends under), and after its
//! stores complete the wave re-applies the sweep for every event at or
//! past its pin. Because the store happens-before the replay (program
//! order) and the event push happens-before the sweep (program order),
//! the mutex forces one of two outcomes: the submitter's sweep sees the
//! store, or the replay sees the event. Either way the stale entry dies.

use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use tg_graph::{GraphView, NodeId, Time};
use tgopt::{pack_key, LayerCaches};

/// One appended edge, kept in the replay log until every wave that could
/// have computed from pre-insert history has released its pin.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IngestEvent {
    /// Global sequence number of the edge (== its edge id).
    pub seq: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Interaction timestamp.
    pub time: Time,
}

/// The replay log and the per-slot epoch pins, guarded by one mutex in
/// the server's `Shared` state. Lock order: `ingest` is taken *before*
/// the live graph's `gen` lock (workers nest `LiveGraph::view` inside
/// their pin registration; submitters nest `LiveGraph::append`).
#[derive(Debug)]
pub(crate) struct IngestSync {
    /// Appended edges not yet proven covered by every active pin.
    events: VecDeque<IngestEvent>,
    /// Per-slot pinned epoch; `u64::MAX` marks an idle slot. Worker `i`
    /// owns slot `i`; the deterministic drain path owns the last slot.
    pins: Vec<u64>,
}

impl IngestSync {
    /// A sync block with `slots` pin slots, all idle.
    pub fn new(slots: usize) -> Self {
        Self { events: VecDeque::new(), pins: vec![u64::MAX; slots] }
    }

    /// Records one appended edge for post-wave replay.
    ///
    /// # Invariants
    ///
    /// - Must be called under the same `ingest` critical section as the
    ///   `LiveGraph::append` that produced `seq`, so no wave can pin an
    ///   epoch `<= seq` after the event is logged without seeing it.
    /// - `seq` values are pushed in strictly increasing order (appends
    ///   are serialized by the `ingest` lock), keeping the log sorted.
    pub fn push_event(&mut self, ev: IngestEvent) {
        debug_assert!(!self.events.back().is_some_and(|last| last.seq >= ev.seq));
        self.events.push_back(ev);
    }

    /// Pins `slot` at `epoch`: edges with `seq >= epoch` must be replayed
    /// by this slot before the pin is released.
    ///
    /// # Invariants
    ///
    /// - Must be called under the same `ingest` critical section as the
    ///   `LiveGraph::view` whose epoch is being pinned — registering the
    ///   pin after releasing the lock would let a concurrent submitter
    ///   prune an event this slot still needs.
    /// - `slot` was previously idle (`u64::MAX`): a slot processes one
    ///   wave at a time.
    pub fn register_pin(&mut self, slot: usize, epoch: u64) {
        debug_assert_eq!(self.pins.get(slot).copied(), Some(u64::MAX));
        if let Some(p) = self.pins.get_mut(slot) {
            *p = epoch;
        }
    }

    /// The events `slot` must replay: everything at or past its pinned
    /// epoch. Empty when the slot is idle.
    pub fn events_since_pin(&self, slot: usize) -> Vec<IngestEvent> {
        let pin = self.pins.get(slot).copied().unwrap_or(u64::MAX);
        let start = self.events.partition_point(|ev| ev.seq < pin);
        self.events.iter().skip(start).copied().collect()
    }

    /// Releases `slot`'s pin and prunes events already covered by every
    /// remaining pin (an event with `seq < min(active pins)` was visible
    /// in every still-pinned view, so no replay will ever need it; with
    /// no active pins the whole log drains).
    ///
    /// # Invariants
    ///
    /// - Called only after the slot's replay sweeps completed: releasing
    ///   first would let the events be pruned before they were applied.
    pub fn release_pin(&mut self, slot: usize) {
        if let Some(p) = self.pins.get_mut(slot) {
            *p = u64::MAX;
        }
        let min_pin = self.pins.iter().copied().min().unwrap_or(u64::MAX);
        let covered = self.events.partition_point(|ev| ev.seq < min_pin);
        self.events.drain(..covered);
    }

    /// Events currently held for replay (test/telemetry visibility).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

/// Could a cached layer-1 entry `(x, t)` change after inserting an edge
/// at time `te` incident to `x`, given the *post-insert* view and a
/// sampler window of `k` most-recent neighbors?
///
/// The entry sampled the `k` most recent interactions of `x` strictly
/// before `t`. The new edge enters that window iff it precedes `t` and
/// either the history is still shorter than `k` (every interaction is in
/// the window) or it lands at-or-after the window's oldest slot. With
/// `cut` the post-insert history length before `t`, the oldest window
/// slot is index `cut - k`; ties insert after equal timestamps (matching
/// `TemporalGraph::insert`), so `te >= entries[cut - k].time` is exact.
pub(crate) fn entry_stale_after_insert(
    view: &GraphView,
    k: usize,
    x: NodeId,
    te: Time,
    t: Time,
) -> bool {
    if te >= t {
        return false;
    }
    let cut = view.hist_len_before(x, t);
    if cut <= k {
        return true;
    }
    match view.nth_before(x, t, cut - k) {
        Some(oldest_in_window) => te >= oldest_in_window.time,
        // cut > k >= 0 guarantees the slot exists; stay conservative if not.
        None => true,
    }
}

/// Per-layer accounting bins tracked by a sweep; layer `l` lands in slot
/// `l - 1`, with every layer past the fourth folded into the last slot.
pub(crate) const TRACKED_SWEEP_LAYERS: usize = 4;

/// What one [`sweep_insert`] did, broken down by cache layer so
/// telemetry can report where invalidation pressure lands (deep-layer
/// retention is the signal that constraint tracking is paying off).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub(crate) struct SweepReport {
    /// `(removed, retained)` per layer bin; see [`TRACKED_SWEEP_LAYERS`].
    pub per_layer: [(u64, u64); TRACKED_SWEEP_LAYERS],
}

impl SweepReport {
    /// The accounting bin for cache layer `layer` (1-based).
    pub fn slot(layer: usize) -> usize {
        layer.saturating_sub(1).min(TRACKED_SWEEP_LAYERS - 1)
    }

    fn add(&mut self, layer: usize, removed: u64, retained: u64) {
        if let Some(bin) = self.per_layer.get_mut(Self::slot(layer)) {
            bin.0 += removed;
            bin.1 += retained;
        }
    }

    /// Total entries removed across layers.
    pub fn removed(&self) -> u64 {
        self.per_layer.iter().map(|&(r, _)| r).sum()
    }

    /// Total at-risk entries retained across layers.
    pub fn retained(&self) -> u64 {
        self.per_layer.iter().map(|&(_, k)| k).sum()
    }
}

/// Applies the targeted invalidation for one inserted edge against the
/// shared cache: the exact window predicate on the layer-1 cache for
/// both endpoints, and the fingerprint check on every deeper cached
/// layer — an entry whose recorded temporal-subgraph constraint
/// (`tgopt::fingerprint`) the new edge cannot enter is provably fresh
/// and survives; entries without a fingerprint (warm-restored) fall
/// back to conservative removal. `retained` counts proven-fresh
/// survivors the old sweeps would have killed: layer-1 endpoint
/// entries outside the window, and deep entries at `t > te` whose
/// fingerprint the edge misses.
///
/// `view` must be a post-insert snapshot (epoch past the edge's seq);
/// both predicates stay sound at any later epoch, so replays may reuse
/// a single fresh view for a batch of events.
pub(crate) fn sweep_insert(
    cache: &LayerCaches,
    view: &GraphView,
    k: usize,
    src: NodeId,
    dst: NodeId,
    te: Time,
) -> SweepReport {
    let mut report = SweepReport::default();
    if let Some(c1) = cache.layer(1) {
        let both = [src, dst];
        let distinct = if src == dst { 1 } else { 2 };
        for &x in both.iter().take(distinct) {
            let (r, kept) =
                c1.invalidate_node_entries_if(x, |t| entry_stale_after_insert(view, k, x, te, t));
            report.add(1, r as u64, kept as u64);
        }
    }
    // Distinct deep entries share frontier pairs heavily (the fingerprints
    // of nearby targets overlap), so memoize the per-pair window check
    // across entries and layers.
    let mut memo: FxHashMap<u64, bool> = FxHashMap::default();
    for l in 2..=cache.num_layers() {
        if let Some(cl) = cache.layer(l) {
            let (r, kept) = cl.invalidate_constraints_after(te, |y, ty| {
                if y != src && y != dst {
                    return false;
                }
                *memo
                    .entry(pack_key(y, ty))
                    .or_insert_with(|| entry_stale_after_insert(view, k, y, te, ty))
            });
            report.add(l, r as u64, kept as u64);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{Edge, LiveGraph, TemporalGraph};

    fn live_with(edges: &[(NodeId, NodeId, Time)]) -> LiveGraph {
        let mut g = TemporalGraph::with_nodes(8);
        for (i, &(s, d, t)) in edges.iter().enumerate() {
            g.insert(&Edge { src: s, dst: d, time: t, eid: i as u32 });
        }
        LiveGraph::new(g)
    }

    #[test]
    fn staleness_predicate_matches_window_membership() {
        // Node 0 history: times 1, 3, 5, 7 (all with node 1).
        let live = live_with(&[(0, 1, 1.0), (0, 1, 3.0), (0, 1, 5.0), (0, 1, 7.0)]);
        // Insert te = 4 — post-insert history before t=8: [1, 3, 4, 5, 7].
        live.append(&Edge { src: 0, dst: 2, time: 4.0, eid: 4 });
        let v = live.view();
        // k = 2 window before t=8 is [5, 7]: te=4 is older than slot 5 → fresh.
        assert!(!entry_stale_after_insert(&v, 2, 0, 4.0, 8.0));
        // k = 3 window is [4, 5, 7]: the new edge is in it → stale.
        assert!(entry_stale_after_insert(&v, 3, 0, 4.0, 8.0));
        // Entries at or before te never change (strictly-before sampling).
        assert!(!entry_stale_after_insert(&v, 3, 0, 4.0, 4.0));
        assert!(!entry_stale_after_insert(&v, 3, 0, 4.0, 3.5));
        // Short history (node 2 has only the new edge): always stale.
        assert!(entry_stale_after_insert(&v, 2, 2, 4.0, 8.0));
    }

    #[test]
    fn tie_at_window_boundary_is_stale() {
        let live = live_with(&[(0, 1, 1.0), (0, 1, 3.0)]);
        // te equals the current most-recent time; ties insert after, so a
        // k=1 window at t=4 now samples the new edge.
        live.append(&Edge { src: 0, dst: 2, time: 3.0, eid: 2 });
        let v = live.view();
        assert!(entry_stale_after_insert(&v, 1, 0, 3.0, 4.0));
        // But an older insert below the k=1 boundary stays fresh.
        live.append(&Edge { src: 0, dst: 2, time: 2.0, eid: 3 });
        let v = live.view();
        assert!(!entry_stale_after_insert(&v, 1, 0, 2.0, 4.0));
    }

    #[test]
    fn deep_sweep_retains_entries_whose_fingerprint_the_edge_misses() {
        use tg_tensor::Tensor;
        use tgopt::fingerprint;

        // Node 0 talks to 1; nodes 4 and 5 talk to each other, far away.
        let live = live_with(&[(0, 1, 1.0), (0, 1, 2.0), (4, 5, 1.0), (4, 5, 2.0)]);
        let view = live.view();
        let k = 2;
        let caches = LayerCaches::new(2, true, 100, 1);
        let c2 = caches.layer(2).unwrap();
        // Two layer-2 entries, fingerprints captured exactly as the engine
        // does (depth l - 1 = 1): one rooted in the 0-1 component, one in
        // the 4-5 component, both keyed past the upcoming insert time.
        let keys = [tgopt::pack_key(0, 8.0), tgopt::pack_key(4, 8.0)];
        let fps = fingerprint::capture_many(&view, k, &[0, 4], &[8.0, 8.0], 1);
        c2.store_with_constraints(&keys, &Tensor::zeros(2, 1), fps, false).unwrap();

        // Insert 0-2@5: enters node 0's k=2 window before t=8, so the
        // first entry dies; the 4-5 entry's fingerprint never mentions the
        // endpoints and must survive the sweep that used to drop it.
        live.append(&Edge { src: 0, dst: 2, time: 5.0, eid: 4 });
        let view = live.view();
        let report = sweep_insert(&caches, &view, k, 0, 2, 5.0);
        assert_eq!(report.per_layer[SweepReport::slot(2)], (1, 1));
        assert!(!c2.contains(keys[0]) && c2.contains(keys[1]));

        // A second, unrelated insert below every window leaves the
        // survivor alone and counts it as retained again.
        live.append(&Edge { src: 6, dst: 7, time: 6.0, eid: 5 });
        let view = live.view();
        let report = sweep_insert(&caches, &view, k, 6, 7, 6.0);
        assert_eq!(report.per_layer[SweepReport::slot(2)], (0, 1));
        assert!(c2.contains(keys[1]));
    }

    #[test]
    fn pins_hold_events_until_released() {
        let mut sync = IngestSync::new(2);
        sync.register_pin(0, 5);
        sync.push_event(IngestEvent { seq: 5, src: 0, dst: 1, time: 1.0 });
        sync.push_event(IngestEvent { seq: 6, src: 2, dst: 3, time: 2.0 });
        // Slot 0 pinned at epoch 5 must replay both; idle slot 1 none.
        assert_eq!(sync.events_since_pin(0).len(), 2);
        assert!(sync.events_since_pin(1).is_empty());
        // A later pin (epoch 7 > both seqs) replays nothing but also
        // holds nothing: only pre-pin history matters.
        sync.register_pin(1, 7);
        assert!(sync.events_since_pin(1).is_empty());
        sync.release_pin(1);
        // Slot 0's pin still holds the log alive.
        assert_eq!(sync.pending_events(), 2);
        sync.release_pin(0);
        assert_eq!(sync.pending_events(), 0);
    }

    #[test]
    fn partial_prune_keeps_uncovered_suffix() {
        let mut sync = IngestSync::new(2);
        sync.register_pin(0, 3);
        sync.register_pin(1, 9);
        for seq in 3..12 {
            sync.push_event(IngestEvent { seq, src: 0, dst: 1, time: seq as Time });
        }
        sync.release_pin(0);
        // min active pin is 9: events 3..9 are covered, 9..12 survive.
        assert_eq!(sync.pending_events(), 3);
        assert_eq!(sync.events_since_pin(1).len(), 3);
        sync.release_pin(1);
        assert_eq!(sync.pending_events(), 0);
    }
}
