//! Streaming-ingest coordination: targeted cache invalidation plus the
//! event-replay protocol that makes it safe under concurrent waves.
//!
//! When an edge is appended to the live graph, only cached layer-1
//! entries whose most-recent-k neighbor window the new edge could enter
//! are stale — everything older keeps sampling the same neighborhood and
//! stays valid. [`entry_stale_after_insert`] encodes that predicate
//! exactly; [`sweep_insert`] applies it to the shared cache. This
//! replaces sledgehammer per-node invalidation with a sweep that retains
//! provably-fresh entries (counted in telemetry as `entries_retained`).
//!
//! The sweep alone is not enough under concurrency: a worker that pinned
//! a pre-insert [`GraphView`] may *store* entries computed from stale
//! history after the submitter's sweep already scanned the cache.
//! [`IngestSync`] closes that window: every appended edge leaves an
//! [`IngestEvent`] in a log, each wave registers the epoch it pinned
//! (under the same lock the submitter appends under), and after its
//! stores complete the wave re-applies the sweep for every event at or
//! past its pin. Because the store happens-before the replay (program
//! order) and the event push happens-before the sweep (program order),
//! the mutex forces one of two outcomes: the submitter's sweep sees the
//! store, or the replay sees the event. Either way the stale entry dies.

use std::collections::VecDeque;
use tg_graph::{GraphView, NodeId, Time};
use tgopt::LayerCaches;

/// One appended edge, kept in the replay log until every wave that could
/// have computed from pre-insert history has released its pin.
#[derive(Clone, Copy, Debug)]
pub(crate) struct IngestEvent {
    /// Global sequence number of the edge (== its edge id).
    pub seq: u64,
    /// Source endpoint.
    pub src: NodeId,
    /// Destination endpoint.
    pub dst: NodeId,
    /// Interaction timestamp.
    pub time: Time,
}

/// The replay log and the per-slot epoch pins, guarded by one mutex in
/// the server's `Shared` state. Lock order: `ingest` is taken *before*
/// the live graph's `gen` lock (workers nest `LiveGraph::view` inside
/// their pin registration; submitters nest `LiveGraph::append`).
#[derive(Debug)]
pub(crate) struct IngestSync {
    /// Appended edges not yet proven covered by every active pin.
    events: VecDeque<IngestEvent>,
    /// Per-slot pinned epoch; `u64::MAX` marks an idle slot. Worker `i`
    /// owns slot `i`; the deterministic drain path owns the last slot.
    pins: Vec<u64>,
}

impl IngestSync {
    /// A sync block with `slots` pin slots, all idle.
    pub fn new(slots: usize) -> Self {
        Self { events: VecDeque::new(), pins: vec![u64::MAX; slots] }
    }

    /// Records one appended edge for post-wave replay.
    ///
    /// # Invariants
    ///
    /// - Must be called under the same `ingest` critical section as the
    ///   `LiveGraph::append` that produced `seq`, so no wave can pin an
    ///   epoch `<= seq` after the event is logged without seeing it.
    /// - `seq` values are pushed in strictly increasing order (appends
    ///   are serialized by the `ingest` lock), keeping the log sorted.
    pub fn push_event(&mut self, ev: IngestEvent) {
        debug_assert!(!self.events.back().is_some_and(|last| last.seq >= ev.seq));
        self.events.push_back(ev);
    }

    /// Pins `slot` at `epoch`: edges with `seq >= epoch` must be replayed
    /// by this slot before the pin is released.
    ///
    /// # Invariants
    ///
    /// - Must be called under the same `ingest` critical section as the
    ///   `LiveGraph::view` whose epoch is being pinned — registering the
    ///   pin after releasing the lock would let a concurrent submitter
    ///   prune an event this slot still needs.
    /// - `slot` was previously idle (`u64::MAX`): a slot processes one
    ///   wave at a time.
    pub fn register_pin(&mut self, slot: usize, epoch: u64) {
        debug_assert_eq!(self.pins.get(slot).copied(), Some(u64::MAX));
        if let Some(p) = self.pins.get_mut(slot) {
            *p = epoch;
        }
    }

    /// The events `slot` must replay: everything at or past its pinned
    /// epoch. Empty when the slot is idle.
    pub fn events_since_pin(&self, slot: usize) -> Vec<IngestEvent> {
        let pin = self.pins.get(slot).copied().unwrap_or(u64::MAX);
        let start = self.events.partition_point(|ev| ev.seq < pin);
        self.events.iter().skip(start).copied().collect()
    }

    /// Releases `slot`'s pin and prunes events already covered by every
    /// remaining pin (an event with `seq < min(active pins)` was visible
    /// in every still-pinned view, so no replay will ever need it; with
    /// no active pins the whole log drains).
    ///
    /// # Invariants
    ///
    /// - Called only after the slot's replay sweeps completed: releasing
    ///   first would let the events be pruned before they were applied.
    pub fn release_pin(&mut self, slot: usize) {
        if let Some(p) = self.pins.get_mut(slot) {
            *p = u64::MAX;
        }
        let min_pin = self.pins.iter().copied().min().unwrap_or(u64::MAX);
        let covered = self.events.partition_point(|ev| ev.seq < min_pin);
        self.events.drain(..covered);
    }

    /// Events currently held for replay (test/telemetry visibility).
    pub fn pending_events(&self) -> usize {
        self.events.len()
    }
}

/// Could a cached layer-1 entry `(x, t)` change after inserting an edge
/// at time `te` incident to `x`, given the *post-insert* view and a
/// sampler window of `k` most-recent neighbors?
///
/// The entry sampled the `k` most recent interactions of `x` strictly
/// before `t`. The new edge enters that window iff it precedes `t` and
/// either the history is still shorter than `k` (every interaction is in
/// the window) or it lands at-or-after the window's oldest slot. With
/// `cut` the post-insert history length before `t`, the oldest window
/// slot is index `cut - k`; ties insert after equal timestamps (matching
/// `TemporalGraph::insert`), so `te >= entries[cut - k].time` is exact.
pub(crate) fn entry_stale_after_insert(
    view: &GraphView,
    k: usize,
    x: NodeId,
    te: Time,
    t: Time,
) -> bool {
    if te >= t {
        return false;
    }
    let cut = view.hist_len_before(x, t);
    if cut <= k {
        return true;
    }
    match view.nth_before(x, t, cut - k) {
        Some(oldest_in_window) => te >= oldest_in_window.time,
        // cut > k >= 0 guarantees the slot exists; stay conservative if not.
        None => true,
    }
}

/// Applies the targeted invalidation for one inserted edge against the
/// shared cache: the exact window predicate on the layer-1 cache for
/// both endpoints, and a conservative `t > te` sweep on any deeper
/// cached layer (a deep entry aggregates multi-hop history, so the
/// window predicate on the endpoint alone is not sound there). Returns
/// `(removed, retained)` — `retained` counts only layer-1 endpoint
/// entries proven fresh, the precision this sweep buys over
/// per-node invalidation.
///
/// `view` must be a post-insert snapshot (epoch past the edge's seq);
/// the predicate stays sound at any later epoch, so replays may reuse a
/// single fresh view for a batch of events.
pub(crate) fn sweep_insert(
    cache: &LayerCaches,
    view: &GraphView,
    k: usize,
    src: NodeId,
    dst: NodeId,
    te: Time,
) -> (u64, u64) {
    let mut removed = 0u64;
    let mut retained = 0u64;
    if let Some(c1) = cache.layer(1) {
        let both = [src, dst];
        let distinct = if src == dst { 1 } else { 2 };
        for &x in both.iter().take(distinct) {
            let (r, kept) =
                c1.invalidate_node_entries_if(x, |t| entry_stale_after_insert(view, k, x, te, t));
            removed += r as u64;
            retained += kept as u64;
        }
    }
    for l in 2..=cache.num_layers() {
        if let Some(cl) = cache.layer(l) {
            let (r, _) = cl.invalidate_time_after(te);
            removed += r as u64;
        }
    }
    (removed, retained)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{Edge, LiveGraph, TemporalGraph};

    fn live_with(edges: &[(NodeId, NodeId, Time)]) -> LiveGraph {
        let mut g = TemporalGraph::with_nodes(8);
        for (i, &(s, d, t)) in edges.iter().enumerate() {
            g.insert(&Edge { src: s, dst: d, time: t, eid: i as u32 });
        }
        LiveGraph::new(g)
    }

    #[test]
    fn staleness_predicate_matches_window_membership() {
        // Node 0 history: times 1, 3, 5, 7 (all with node 1).
        let live = live_with(&[(0, 1, 1.0), (0, 1, 3.0), (0, 1, 5.0), (0, 1, 7.0)]);
        // Insert te = 4 — post-insert history before t=8: [1, 3, 4, 5, 7].
        live.append(&Edge { src: 0, dst: 2, time: 4.0, eid: 4 });
        let v = live.view();
        // k = 2 window before t=8 is [5, 7]: te=4 is older than slot 5 → fresh.
        assert!(!entry_stale_after_insert(&v, 2, 0, 4.0, 8.0));
        // k = 3 window is [4, 5, 7]: the new edge is in it → stale.
        assert!(entry_stale_after_insert(&v, 3, 0, 4.0, 8.0));
        // Entries at or before te never change (strictly-before sampling).
        assert!(!entry_stale_after_insert(&v, 3, 0, 4.0, 4.0));
        assert!(!entry_stale_after_insert(&v, 3, 0, 4.0, 3.5));
        // Short history (node 2 has only the new edge): always stale.
        assert!(entry_stale_after_insert(&v, 2, 2, 4.0, 8.0));
    }

    #[test]
    fn tie_at_window_boundary_is_stale() {
        let live = live_with(&[(0, 1, 1.0), (0, 1, 3.0)]);
        // te equals the current most-recent time; ties insert after, so a
        // k=1 window at t=4 now samples the new edge.
        live.append(&Edge { src: 0, dst: 2, time: 3.0, eid: 2 });
        let v = live.view();
        assert!(entry_stale_after_insert(&v, 1, 0, 3.0, 4.0));
        // But an older insert below the k=1 boundary stays fresh.
        live.append(&Edge { src: 0, dst: 2, time: 2.0, eid: 3 });
        let v = live.view();
        assert!(!entry_stale_after_insert(&v, 1, 0, 2.0, 4.0));
    }

    #[test]
    fn pins_hold_events_until_released() {
        let mut sync = IngestSync::new(2);
        sync.register_pin(0, 5);
        sync.push_event(IngestEvent { seq: 5, src: 0, dst: 1, time: 1.0 });
        sync.push_event(IngestEvent { seq: 6, src: 2, dst: 3, time: 2.0 });
        // Slot 0 pinned at epoch 5 must replay both; idle slot 1 none.
        assert_eq!(sync.events_since_pin(0).len(), 2);
        assert!(sync.events_since_pin(1).is_empty());
        // A later pin (epoch 7 > both seqs) replays nothing but also
        // holds nothing: only pre-pin history matters.
        sync.register_pin(1, 7);
        assert!(sync.events_since_pin(1).is_empty());
        sync.release_pin(1);
        // Slot 0's pin still holds the log alive.
        assert_eq!(sync.pending_events(), 2);
        sync.release_pin(0);
        assert_eq!(sync.pending_events(), 0);
    }

    #[test]
    fn partial_prune_keeps_uncovered_suffix() {
        let mut sync = IngestSync::new(2);
        sync.register_pin(0, 3);
        sync.register_pin(1, 9);
        for seq in 3..12 {
            sync.push_event(IngestEvent { seq, src: 0, dst: 1, time: seq as Time });
        }
        sync.release_pin(0);
        // min active pin is 9: events 3..9 are covered, 9..12 survive.
        assert_eq!(sync.pending_events(), 3);
        assert_eq!(sync.events_since_pin(1).len(), 3);
        sync.release_pin(1);
        assert_eq!(sync.pending_events(), 0);
    }
}
