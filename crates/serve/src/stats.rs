//! Serving-layer counters: admission, batching, dedup, degradation, and
//! the online end-to-end latency distribution.

use crate::ingest::TRACKED_SWEEP_LAYERS;
use std::sync::atomic::{AtomicU64, Ordering};
use tg_telemetry::{HistogramSnapshot, LatencyHistogram};

/// Relaxed-loads an atomic counter bin array into its snapshot form.
fn snapshot_bins(bins: &[AtomicU64; TRACKED_SWEEP_LAYERS]) -> [u64; TRACKED_SWEEP_LAYERS] {
    let mut out = [0u64; TRACKED_SWEEP_LAYERS];
    for (o, bin) in out.iter_mut().zip(bins) {
        *o = bin.load(Ordering::Relaxed);
    }
    out
}

/// Shared atomic counters bumped by client handles, the batcher, and the
/// workers. Read them through [`ServeCounters::snapshot`].
///
/// Accounting identity: every submission attempt that is not shed by
/// backpressure is recorded as `submitted` *before* any terminal counter,
/// so any snapshot satisfies `submitted >= completed + rejected_deadline`
/// (strict once a micro-batch fails with an engine error, since those
/// requests resolve without bumping either terminal counter).
#[derive(Debug, Default)]
pub struct ServeCounters {
    submitted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    unique_rows: AtomicU64,
    degraded_batches: AtomicU64,
    edges_ingested: AtomicU64,
    entries_invalidated: AtomicU64,
    entries_retained: AtomicU64,
    layer_removed: [AtomicU64; TRACKED_SWEEP_LAYERS],
    layer_retained: [AtomicU64; TRACKED_SWEEP_LAYERS],
    frontier_reads: AtomicU64,
    frontier_remote: AtomicU64,
    latency: LatencyHistogram,
}

impl ServeCounters {
    /// Records one submission attempt that was not shed by backpressure —
    /// both admitted requests and submit-time deadline rejections count
    /// (the latter so `submitted >= completed + rejected_deadline` holds).
    ///
    /// # Invariants
    ///
    /// - Monotone: counters only grow; a snapshot is always consistent with
    ///   some interleaving of recorded events.
    /// - Called before the matching terminal counter
    ///   ([`ServeCounters::record_completed`] /
    ///   [`ServeCounters::record_deadline`]), preserving the identity
    ///   `submitted >= completed + rejected_deadline` in every snapshot.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by the full admission queue.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` requests rejected because their deadline expired.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_deadline(&self, n: u64) {
        self.rejected_deadline.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requests completed with an embedding.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one executed micro-batch of `requests` requests that
    /// coalesced to `unique` engine rows, run in (non-)degraded mode.
    ///
    /// # Invariants
    ///
    /// - `unique <= requests` (a batch never grows under dedup).
    /// - All three batch counters move together, so ratios derived from a
    ///   snapshot stay in `[0, 1]`.
    pub fn record_batch(&self, requests: u64, unique: u64, degraded: bool) {
        debug_assert!(unique <= requests);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(requests, Ordering::Relaxed);
        self.unique_rows.fetch_add(unique, Ordering::Relaxed);
        if degraded {
            self.degraded_batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one edge accepted by `submit_edge` into the live graph.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    /// - Bumped after the append is durable in the delta log, so
    ///   `edges_ingested` never exceeds the live graph's own count.
    pub fn record_edge_ingested(&self) {
        self.edges_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the outcome of one targeted-invalidation sweep: `removed`
    /// cached entries dropped as potentially stale, `retained` examined
    /// and proven fresh.
    ///
    /// # Invariants
    ///
    /// - Monotone; both counters only grow.
    /// - Replay sweeps report with `retained = 0` so the retention ratio
    ///   reflects submit-time precision, not idempotent re-examination.
    pub fn record_invalidation_sweep(&self, removed: u64, retained: u64) {
        self.entries_invalidated.fetch_add(removed, Ordering::Relaxed);
        self.entries_retained.fetch_add(retained, Ordering::Relaxed);
    }

    /// Records one layer bin of a sweep's outcome (`slot` as defined by
    /// `SweepReport::slot`: layer `l` → bin `min(l - 1, 3)`), so telemetry
    /// can attribute invalidation pressure and fingerprint-driven
    /// retention per cache layer. Out-of-range slots are ignored.
    ///
    /// # Invariants
    ///
    /// - Monotone; both per-layer counters only grow.
    /// - The per-layer bins partition the totals: callers bump this in
    ///   lockstep with [`ServeCounters::record_invalidation_sweep`] (replay
    ///   sweeps keep the `retained = 0` convention per bin too), so
    ///   summing the bins of a quiescent snapshot reproduces
    ///   `entries_invalidated` / `entries_retained`.
    pub fn record_layer_sweep(&self, slot: usize, removed: u64, retained: u64) {
        if let (Some(r), Some(k)) = (self.layer_removed.get(slot), self.layer_retained.get(slot)) {
            r.fetch_add(removed, Ordering::Relaxed);
            k.fetch_add(retained, Ordering::Relaxed);
        }
    }

    /// Records one wave's sampled layer-1 frontier composition: `total`
    /// neighbor reads, of which `remote` hit nodes owned by another
    /// shard (served from replicated state). Zero-traffic for an
    /// unsharded server.
    ///
    /// # Invariants
    ///
    /// - `remote <= total` (a remote read is a read).
    /// - Monotone; both counters move together in one call, so the
    ///   remote fraction derived from any snapshot stays in `[0, 1]`.
    pub fn record_frontier(&self, total: u64, remote: u64) {
        debug_assert!(remote <= total);
        self.frontier_reads.fetch_add(total, Ordering::Relaxed);
        self.frontier_remote.fetch_add(remote, Ordering::Relaxed);
    }

    /// Records one completed request's end-to-end (submit-to-fulfill)
    /// latency. Only successful completions are sampled, so the histogram
    /// describes the latency a satisfied client observed.
    ///
    /// # Invariants
    ///
    /// - Monotone; wait-free (log2-bucketed `fetch_add`s, no locks).
    pub fn record_latency(&self, ns: u64) {
        self.latency.record(ns);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            unique_rows: self.unique_rows.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            edges_ingested: self.edges_ingested.load(Ordering::Relaxed),
            entries_invalidated: self.entries_invalidated.load(Ordering::Relaxed),
            entries_retained: self.entries_retained.load(Ordering::Relaxed),
            layer_removed: snapshot_bins(&self.layer_removed),
            layer_retained: snapshot_bins(&self.layer_retained),
            frontier_reads: self.frontier_reads.load(Ordering::Relaxed),
            frontier_remote: self.frontier_remote.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// A snapshot of the serving layer's counters.
///
/// Identity: `submitted >= completed + rejected_deadline` in every
/// snapshot (see [`ServeCounters`]); the gap is requests still in flight
/// plus requests resolved by a micro-batch engine error.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submission attempts not shed by backpressure: requests admitted to
    /// the queue plus requests rejected at submit time because their
    /// deadline had already expired.
    pub submitted: u64,
    /// Requests shed with [`tg_error::TgError::Overloaded`].
    pub rejected_overload: u64,
    /// Requests rejected with [`tg_error::TgError::DeadlineExceeded`].
    pub rejected_deadline: u64,
    /// Requests completed with an embedding row.
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that entered a micro-batch (post-deadline-filter).
    pub batched_requests: u64,
    /// Engine rows actually computed/looked up after cross-request dedup.
    pub unique_rows: u64,
    /// Micro-batches run in degraded (store-skipping) mode.
    pub degraded_batches: u64,
    /// Edges accepted by `submit_edge` into the live graph.
    pub edges_ingested: u64,
    /// Cached entries dropped by targeted invalidation sweeps.
    pub entries_invalidated: u64,
    /// Cached entries examined by a submit-time sweep and proven fresh.
    pub entries_retained: u64,
    /// Per-layer breakdown of `entries_invalidated`: bin `i` holds cache
    /// layer `i + 1`, with layers past the fourth folded into the last bin.
    pub layer_removed: [u64; TRACKED_SWEEP_LAYERS],
    /// Per-layer breakdown of `entries_retained`, same binning. Deep bins
    /// (`i >= 1`) count entries the pre-fingerprint conservative sweep
    /// would have removed.
    pub layer_retained: [u64; TRACKED_SWEEP_LAYERS],
    /// Sampled layer-1 frontier neighbor reads (sharded servers only).
    pub frontier_reads: u64,
    /// Frontier reads that hit a node owned by another shard — the
    /// replicated-frontier traffic a smarter placement could cut.
    pub frontier_remote: u64,
    /// Online end-to-end (submit-to-fulfill) latency distribution of
    /// completed requests, log2-bucketed nanoseconds.
    pub latency: HistogramSnapshot,
}

impl ServeStats {
    /// Fraction of batched requests eliminated by cross-request dedup
    /// (0.0 when nothing has been batched — never NaN).
    pub fn cross_dedup_ratio(&self) -> f64 {
        if self.batched_requests == 0 {
            0.0
        } else {
            1.0 - self.unique_rows as f64 / self.batched_requests as f64
        }
    }

    /// Mean requests per executed micro-batch (0.0 before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }

    /// Fraction of sampled frontier reads that crossed a shard boundary
    /// (0.0 before the first read — never NaN).
    pub fn remote_frontier_ratio(&self) -> f64 {
        if self.frontier_reads == 0 {
            0.0
        } else {
            self.frontier_remote as f64 / self.frontier_reads as f64
        }
    }

    /// Combines this snapshot with another (e.g. per-shard snapshots into
    /// a router-wide view): counters add, latency histograms merge
    /// bucket-wise. Because each input satisfies the accounting identity
    /// `submitted >= completed + rejected_deadline` and every field is a
    /// sum of non-negative per-shard terms, the merged snapshot satisfies
    /// it too — pinned by a unit test below.
    pub fn merge(mut self, other: &ServeStats) -> ServeStats {
        self.submitted += other.submitted;
        self.rejected_overload += other.rejected_overload;
        self.rejected_deadline += other.rejected_deadline;
        self.completed += other.completed;
        self.batches += other.batches;
        self.batched_requests += other.batched_requests;
        self.unique_rows += other.unique_rows;
        self.degraded_batches += other.degraded_batches;
        self.edges_ingested += other.edges_ingested;
        self.entries_invalidated += other.entries_invalidated;
        self.entries_retained += other.entries_retained;
        for (mine, theirs) in self.layer_removed.iter_mut().zip(&other.layer_removed) {
            *mine += theirs;
        }
        for (mine, theirs) in self.layer_retained.iter_mut().zip(&other.layer_retained) {
            *mine += theirs;
        }
        self.frontier_reads += other.frontier_reads;
        self.frontier_remote += other.frontier_remote;
        self.latency.merge(&other.latency);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_zero_not_nan_when_fresh() {
        let s = ServeStats::default();
        assert_eq!(s.cross_dedup_ratio(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert!(!s.cross_dedup_ratio().is_nan());
    }

    #[test]
    fn counters_accumulate_into_snapshot() {
        let c = ServeCounters::default();
        c.record_submitted();
        c.record_submitted();
        c.record_overload();
        c.record_deadline(1);
        c.record_batch(4, 3, true);
        c.record_batch(6, 3, false);
        c.record_completed(10);
        c.record_latency(1_500);
        c.record_latency(90_000);
        let s = c.snapshot();
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.latency.sum_ns(), 91_500);
        assert!(s.latency.p99_ns() >= 90_000);
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected_overload, 1);
        assert_eq!(s.rejected_deadline, 1);
        assert_eq!(s.completed, 10);
        assert_eq!(s.batches, 2);
        assert_eq!(s.degraded_batches, 1);
        assert!((s.cross_dedup_ratio() - 0.4).abs() < 1e-12);
        assert!((s.mean_batch_size() - 5.0).abs() < 1e-12);
    }

    /// One shard's worth of plausible traffic: `submitted` strictly covers
    /// `completed + rejected_deadline` with a gap (in-flight requests).
    fn shard_stats(seed: u64) -> ServeStats {
        let c = ServeCounters::default();
        let (completed, deadline, inflight) = (seed * 10, seed, 2 + seed % 3);
        for _ in 0..completed + deadline + inflight {
            c.record_submitted();
        }
        c.record_deadline(deadline);
        c.record_completed(completed);
        c.record_batch(completed, completed.max(1) - 1, seed % 2 == 0);
        c.record_frontier(40 * seed, 10 * seed);
        c.record_latency(1_000 * (seed + 1));
        c.record_latency(50_000 * (seed + 1));
        c.snapshot()
    }

    #[test]
    fn merge_preserves_the_submitted_identity() {
        // The satellite regression this pins: merging per-shard snapshots
        // must keep `submitted >= completed + rejected_deadline` and add
        // counters exactly — no field dropped, no double count.
        let shards: Vec<ServeStats> = (1..=4).map(shard_stats).collect();
        for s in &shards {
            assert!(s.submitted >= s.completed + s.rejected_deadline, "per-shard identity");
        }
        let merged = shards.iter().fold(ServeStats::default(), |acc, s| acc.merge(s));
        assert!(
            merged.submitted >= merged.completed + merged.rejected_deadline,
            "merged identity: {} >= {} + {}",
            merged.submitted,
            merged.completed,
            merged.rejected_deadline
        );
        assert_eq!(merged.submitted, shards.iter().map(|s| s.submitted).sum::<u64>());
        assert_eq!(merged.completed, shards.iter().map(|s| s.completed).sum::<u64>());
        assert_eq!(
            merged.rejected_deadline,
            shards.iter().map(|s| s.rejected_deadline).sum::<u64>()
        );
        assert_eq!(merged.frontier_reads, shards.iter().map(|s| s.frontier_reads).sum::<u64>());
        assert_eq!(merged.frontier_remote, shards.iter().map(|s| s.frontier_remote).sum::<u64>());
        // Latency histograms merge bucket-wise: counts and sums add.
        assert_eq!(merged.latency.count(), shards.iter().map(|s| s.latency.count()).sum::<u64>());
        assert_eq!(
            merged.latency.sum_ns(),
            shards.iter().map(|s| s.latency.sum_ns()).sum::<u64>()
        );
        // The merged remote fraction stays a valid ratio.
        let r = merged.remote_frontier_ratio();
        assert!((0.0..=1.0).contains(&r) && (r - 0.25).abs() < 1e-12, "{r}");
    }

    #[test]
    fn layer_sweep_bins_partition_the_totals_and_merge() {
        let c = ServeCounters::default();
        // One sweep: 3 removed / 5 retained on layer 1, 2 / 7 on layer 2.
        c.record_invalidation_sweep(3 + 2, 5 + 7);
        c.record_layer_sweep(0, 3, 5);
        c.record_layer_sweep(1, 2, 7);
        c.record_layer_sweep(99, 1, 1); // out of range: ignored, not misfiled
        let s = c.snapshot();
        assert_eq!(s.layer_removed, [3, 2, 0, 0]);
        assert_eq!(s.layer_retained, [5, 7, 0, 0]);
        assert_eq!(s.layer_removed.iter().sum::<u64>(), s.entries_invalidated);
        assert_eq!(s.layer_retained.iter().sum::<u64>(), s.entries_retained);
        let merged = s.merge(&s);
        assert_eq!(merged.layer_removed, [6, 4, 0, 0]);
        assert_eq!(merged.layer_retained, [10, 14, 0, 0]);
    }

    #[test]
    fn merge_with_default_is_identity() {
        let s = shard_stats(3);
        let merged = ServeStats::default().merge(&s);
        assert_eq!(merged, s);
        assert_eq!(s.merge(&ServeStats::default()), merged);
    }
}
