//! Serving-layer counters: admission, batching, dedup, and degradation.

use std::sync::atomic::{AtomicU64, Ordering};

/// Shared atomic counters bumped by client handles, the batcher, and the
/// workers. Read them through [`ServeCounters::snapshot`].
#[derive(Debug, Default)]
pub struct ServeCounters {
    submitted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    unique_rows: AtomicU64,
    degraded_batches: AtomicU64,
}

impl ServeCounters {
    /// Records one admitted request.
    ///
    /// # Invariants
    ///
    /// - Monotone: counters only grow; a snapshot is always consistent with
    ///   some interleaving of recorded events.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by the full admission queue.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` requests rejected because their deadline expired.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_deadline(&self, n: u64) {
        self.rejected_deadline.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requests completed with an embedding.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one executed micro-batch of `requests` requests that
    /// coalesced to `unique` engine rows, run in (non-)degraded mode.
    ///
    /// # Invariants
    ///
    /// - `unique <= requests` (a batch never grows under dedup).
    /// - All three batch counters move together, so ratios derived from a
    ///   snapshot stay in `[0, 1]`.
    pub fn record_batch(&self, requests: u64, unique: u64, degraded: bool) {
        debug_assert!(unique <= requests);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(requests, Ordering::Relaxed);
        self.unique_rows.fetch_add(unique, Ordering::Relaxed);
        if degraded {
            self.degraded_batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            unique_rows: self.unique_rows.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
        }
    }
}

/// A snapshot of the serving layer's counters.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Requests admitted to the queue.
    pub submitted: u64,
    /// Requests shed with [`tg_error::TgError::Overloaded`].
    pub rejected_overload: u64,
    /// Requests completed with [`tg_error::TgError::DeadlineExceeded`].
    pub rejected_deadline: u64,
    /// Requests completed with an embedding row.
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that entered a micro-batch (post-deadline-filter).
    pub batched_requests: u64,
    /// Engine rows actually computed/looked up after cross-request dedup.
    pub unique_rows: u64,
    /// Micro-batches run in degraded (store-skipping) mode.
    pub degraded_batches: u64,
}

impl ServeStats {
    /// Fraction of batched requests eliminated by cross-request dedup
    /// (0.0 when nothing has been batched — never NaN).
    pub fn cross_dedup_ratio(&self) -> f64 {
        if self.batched_requests == 0 {
            0.0
        } else {
            1.0 - self.unique_rows as f64 / self.batched_requests as f64
        }
    }

    /// Mean requests per executed micro-batch (0.0 before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_zero_not_nan_when_fresh() {
        let s = ServeStats::default();
        assert_eq!(s.cross_dedup_ratio(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert!(!s.cross_dedup_ratio().is_nan());
    }

    #[test]
    fn counters_accumulate_into_snapshot() {
        let c = ServeCounters::default();
        c.record_submitted();
        c.record_submitted();
        c.record_overload();
        c.record_deadline(1);
        c.record_batch(4, 3, true);
        c.record_batch(6, 3, false);
        c.record_completed(10);
        let s = c.snapshot();
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected_overload, 1);
        assert_eq!(s.rejected_deadline, 1);
        assert_eq!(s.completed, 10);
        assert_eq!(s.batches, 2);
        assert_eq!(s.degraded_batches, 1);
        assert!((s.cross_dedup_ratio() - 0.4).abs() < 1e-12);
        assert!((s.mean_batch_size() - 5.0).abs() < 1e-12);
    }
}
