//! Serving-layer counters: admission, batching, dedup, degradation, and
//! the online end-to-end latency distribution.

use std::sync::atomic::{AtomicU64, Ordering};
use tg_telemetry::{HistogramSnapshot, LatencyHistogram};

/// Shared atomic counters bumped by client handles, the batcher, and the
/// workers. Read them through [`ServeCounters::snapshot`].
///
/// Accounting identity: every submission attempt that is not shed by
/// backpressure is recorded as `submitted` *before* any terminal counter,
/// so any snapshot satisfies `submitted >= completed + rejected_deadline`
/// (strict once a micro-batch fails with an engine error, since those
/// requests resolve without bumping either terminal counter).
#[derive(Debug, Default)]
pub struct ServeCounters {
    submitted: AtomicU64,
    rejected_overload: AtomicU64,
    rejected_deadline: AtomicU64,
    completed: AtomicU64,
    batches: AtomicU64,
    batched_requests: AtomicU64,
    unique_rows: AtomicU64,
    degraded_batches: AtomicU64,
    edges_ingested: AtomicU64,
    entries_invalidated: AtomicU64,
    entries_retained: AtomicU64,
    latency: LatencyHistogram,
}

impl ServeCounters {
    /// Records one submission attempt that was not shed by backpressure —
    /// both admitted requests and submit-time deadline rejections count
    /// (the latter so `submitted >= completed + rejected_deadline` holds).
    ///
    /// # Invariants
    ///
    /// - Monotone: counters only grow; a snapshot is always consistent with
    ///   some interleaving of recorded events.
    /// - Called before the matching terminal counter
    ///   ([`ServeCounters::record_completed`] /
    ///   [`ServeCounters::record_deadline`]), preserving the identity
    ///   `submitted >= completed + rejected_deadline` in every snapshot.
    pub fn record_submitted(&self) {
        self.submitted.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one request shed by the full admission queue.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_overload(&self) {
        self.rejected_overload.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` requests rejected because their deadline expired.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_deadline(&self, n: u64) {
        self.rejected_deadline.fetch_add(n, Ordering::Relaxed);
    }

    /// Records `n` requests completed with an embedding.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    pub fn record_completed(&self, n: u64) {
        self.completed.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one executed micro-batch of `requests` requests that
    /// coalesced to `unique` engine rows, run in (non-)degraded mode.
    ///
    /// # Invariants
    ///
    /// - `unique <= requests` (a batch never grows under dedup).
    /// - All three batch counters move together, so ratios derived from a
    ///   snapshot stay in `[0, 1]`.
    pub fn record_batch(&self, requests: u64, unique: u64, degraded: bool) {
        debug_assert!(unique <= requests);
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_requests.fetch_add(requests, Ordering::Relaxed);
        self.unique_rows.fetch_add(unique, Ordering::Relaxed);
        if degraded {
            self.degraded_batches.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Records one edge accepted by `submit_edge` into the live graph.
    ///
    /// # Invariants
    ///
    /// - Monotone; never decremented.
    /// - Bumped after the append is durable in the delta log, so
    ///   `edges_ingested` never exceeds the live graph's own count.
    pub fn record_edge_ingested(&self) {
        self.edges_ingested.fetch_add(1, Ordering::Relaxed);
    }

    /// Records the outcome of one targeted-invalidation sweep: `removed`
    /// cached entries dropped as potentially stale, `retained` examined
    /// and proven fresh.
    ///
    /// # Invariants
    ///
    /// - Monotone; both counters only grow.
    /// - Replay sweeps report with `retained = 0` so the retention ratio
    ///   reflects submit-time precision, not idempotent re-examination.
    pub fn record_invalidation_sweep(&self, removed: u64, retained: u64) {
        self.entries_invalidated.fetch_add(removed, Ordering::Relaxed);
        self.entries_retained.fetch_add(retained, Ordering::Relaxed);
    }

    /// Records one completed request's end-to-end (submit-to-fulfill)
    /// latency. Only successful completions are sampled, so the histogram
    /// describes the latency a satisfied client observed.
    ///
    /// # Invariants
    ///
    /// - Monotone; wait-free (log2-bucketed `fetch_add`s, no locks).
    pub fn record_latency(&self, ns: u64) {
        self.latency.record(ns);
    }

    /// A point-in-time copy of every counter.
    pub fn snapshot(&self) -> ServeStats {
        ServeStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected_overload: self.rejected_overload.load(Ordering::Relaxed),
            rejected_deadline: self.rejected_deadline.load(Ordering::Relaxed),
            completed: self.completed.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batched_requests: self.batched_requests.load(Ordering::Relaxed),
            unique_rows: self.unique_rows.load(Ordering::Relaxed),
            degraded_batches: self.degraded_batches.load(Ordering::Relaxed),
            edges_ingested: self.edges_ingested.load(Ordering::Relaxed),
            entries_invalidated: self.entries_invalidated.load(Ordering::Relaxed),
            entries_retained: self.entries_retained.load(Ordering::Relaxed),
            latency: self.latency.snapshot(),
        }
    }
}

/// A snapshot of the serving layer's counters.
///
/// Identity: `submitted >= completed + rejected_deadline` in every
/// snapshot (see [`ServeCounters`]); the gap is requests still in flight
/// plus requests resolved by a micro-batch engine error.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ServeStats {
    /// Submission attempts not shed by backpressure: requests admitted to
    /// the queue plus requests rejected at submit time because their
    /// deadline had already expired.
    pub submitted: u64,
    /// Requests shed with [`tg_error::TgError::Overloaded`].
    pub rejected_overload: u64,
    /// Requests rejected with [`tg_error::TgError::DeadlineExceeded`].
    pub rejected_deadline: u64,
    /// Requests completed with an embedding row.
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that entered a micro-batch (post-deadline-filter).
    pub batched_requests: u64,
    /// Engine rows actually computed/looked up after cross-request dedup.
    pub unique_rows: u64,
    /// Micro-batches run in degraded (store-skipping) mode.
    pub degraded_batches: u64,
    /// Edges accepted by `submit_edge` into the live graph.
    pub edges_ingested: u64,
    /// Cached entries dropped by targeted invalidation sweeps.
    pub entries_invalidated: u64,
    /// Cached entries examined by a submit-time sweep and proven fresh.
    pub entries_retained: u64,
    /// Online end-to-end (submit-to-fulfill) latency distribution of
    /// completed requests, log2-bucketed nanoseconds.
    pub latency: HistogramSnapshot,
}

impl ServeStats {
    /// Fraction of batched requests eliminated by cross-request dedup
    /// (0.0 when nothing has been batched — never NaN).
    pub fn cross_dedup_ratio(&self) -> f64 {
        if self.batched_requests == 0 {
            0.0
        } else {
            1.0 - self.unique_rows as f64 / self.batched_requests as f64
        }
    }

    /// Mean requests per executed micro-batch (0.0 before the first batch).
    pub fn mean_batch_size(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.batched_requests as f64 / self.batches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ratios_are_zero_not_nan_when_fresh() {
        let s = ServeStats::default();
        assert_eq!(s.cross_dedup_ratio(), 0.0);
        assert_eq!(s.mean_batch_size(), 0.0);
        assert!(!s.cross_dedup_ratio().is_nan());
    }

    #[test]
    fn counters_accumulate_into_snapshot() {
        let c = ServeCounters::default();
        c.record_submitted();
        c.record_submitted();
        c.record_overload();
        c.record_deadline(1);
        c.record_batch(4, 3, true);
        c.record_batch(6, 3, false);
        c.record_completed(10);
        c.record_latency(1_500);
        c.record_latency(90_000);
        let s = c.snapshot();
        assert_eq!(s.latency.count(), 2);
        assert_eq!(s.latency.sum_ns(), 91_500);
        assert!(s.latency.p99_ns() >= 90_000);
        assert_eq!(s.submitted, 2);
        assert_eq!(s.rejected_overload, 1);
        assert_eq!(s.rejected_deadline, 1);
        assert_eq!(s.completed, 10);
        assert_eq!(s.batches, 2);
        assert_eq!(s.degraded_batches, 1);
        assert!((s.cross_dedup_ratio() - 0.4).abs() < 1e-12);
        assert!((s.mean_batch_size() - 5.0).abs() < 1e-12);
    }
}
