//! The shard router: S independent serving engines behind one facade.
//!
//! A single [`TgServer`] funnels every request through one shared cache
//! and one lock family, which caps throughput at roughly one socket no
//! matter how fast the kernels are. [`ShardRouter`] partitions the
//! serving world instead: each shard is a *complete* [`TgServer`] — its
//! own `LayerCaches`, embed cache, bounded admission queue, worker pool,
//! `LiveGraph` delta view, and `IngestSync` pin table — and a query
//! touches exactly the shard that owns its target node. On the query hot
//! path no lock is shared between shards.
//!
//! **Routing.** A [`ShardAssignment`] (hash or degree-balanced; see
//! `tg_graph::shard`) maps the target node to its owning shard. The
//! assignment is immutable and shared read-only, so routing is a
//! lock-free table/hash lookup.
//!
//! **Replicated frontier.** A layer-2 embedding of an owned node
//! aggregates layer-1 embeddings of its sampled neighbors, which may be
//! owned by *other* shards. Rather than cross-shard RPC on the hot path,
//! each shard computes those frontier embeddings locally from replicated
//! state: layer-0 node features, edge features, and time-encode inputs
//! are immutable and shared (`Arc`), and the delta stream is replicated
//! into every shard's live view (below), so the computation is purely
//! local and bit-identical to the owner's. The price is duplicated
//! compute/cache space, measured by the `frontier_reads` /
//! `frontier_remote` counters so the next PR can judge smarter placement
//! against observed traffic.
//!
//! **Ingest.** [`ShardRouter::submit_edge`] replicates each accepted
//! edge into *every* shard's live graph (an edge between nodes owned by
//! shards A and B changes 2-hop neighborhoods of nodes owned by any
//! shard, so endpoint-only routing would silently corrupt layer-2
//! serving). Each shard runs the windowed staleness sweep against its
//! own cache, and each shard's `IngestSync` pins are private — the
//! sweep-or-replay guarantee holds per shard exactly as it does for a
//! standalone server. The router serializes `submit_edge` calls under
//! its `router` mutex (ordered *before* every per-shard lock) so all
//! shards ingest the same edge sequence and per-shard sequence numbers
//! stay equal to the globally assigned edge id.
//!
//! The base T-CSR is `Arc`-shared (see `ModelBundle`), so S shards cost
//! S delta logs and S caches, not S copies of the graph.

use crate::relock;
use crate::request::{Request, Ticket};
use crate::server::{ModelBundle, ServeConfig, TgServer};
use crate::stats::ServeStats;
use std::sync::{Arc, Mutex};
use tg_error::TgError;
use tg_graph::{EdgeId, NodeId, ShardAssignment, Time};
use tg_telemetry::{HistogramSnapshot, ShardTelemetry, TelemetrySnapshot};

/// Per-shard identity handed to a scoped [`TgServer`]: which shard it is
/// and the assignment it measures replication traffic against.
pub(crate) struct ShardScope {
    /// The router-wide node → shard map.
    pub assignment: Arc<ShardAssignment>,
    /// This shard's index.
    pub shard: usize,
}

/// S independent serving shards behind one submit/drain/stats facade.
pub struct ShardRouter {
    shards: Vec<TgServer>,
    assignment: Arc<ShardAssignment>,
    /// Serializes `submit_edge` across shards — the only cross-shard
    /// lock, and it is not on the query path. Guards the count of edges
    /// accepted by the router (each is replicated into every shard).
    /// Lock order: `router` strictly before any per-shard lock.
    router: Mutex<u64>,
}

impl ShardRouter {
    /// A router over deterministic shards: requests queue per shard until
    /// [`ShardRouter::drain`] processes them shard-by-shard in shard
    /// order. With the same submissions and drain points, results are
    /// bit-reproducible — the mode the property suites replay.
    pub fn deterministic(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        assignment: ShardAssignment,
    ) -> Result<Self, TgError> {
        Self::build(bundle, cfg, assignment, TgServer::deterministic_scoped)
    }

    /// A router over threaded shards: each shard runs its own batcher and
    /// worker pool (`cfg.workers` threads *per shard*).
    pub fn threaded(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        assignment: ShardAssignment,
    ) -> Result<Self, TgError> {
        Self::build(bundle, cfg, assignment, TgServer::threaded_scoped)
    }

    fn build(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        assignment: ShardAssignment,
        make: fn(Arc<ModelBundle>, ServeConfig, Option<ShardScope>) -> Result<TgServer, TgError>,
    ) -> Result<Self, TgError> {
        let assignment = Arc::new(assignment);
        let shards = (0..assignment.n_shards())
            .map(|shard| {
                let scope = ShardScope { assignment: Arc::clone(&assignment), shard };
                make(Arc::clone(&bundle), cfg, Some(scope))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self { shards, assignment, router: Mutex::new(0) })
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// The node → shard map in use.
    pub fn assignment(&self) -> &ShardAssignment {
        &self.assignment
    }

    /// The shard that owns (and will serve) `node`.
    pub fn shard_of(&self, node: NodeId) -> usize {
        self.assignment.owner(node)
    }

    /// Submits one query with no deadline to the owning shard.
    pub fn submit(&self, node: NodeId, time: Time) -> Result<Ticket, TgError> {
        self.submit_request(Request::new(node, time))
    }

    /// Submits a [`Request`] to the shard owning its target node. All of
    /// [`TgServer::submit_request`]'s admission semantics (deadline
    /// pre-check, bounded-queue backpressure) apply per shard.
    pub fn submit_request(&self, req: Request) -> Result<Ticket, TgError> {
        self.shards[self.assignment.owner(req.node)].submit_request(req)
    }

    /// Submits `ns[i], ts[i]` pairs in order; ticket `i` resolves to
    /// query `i`'s embedding row regardless of which shard served it.
    pub fn submit_many(&self, ns: &[NodeId], ts: &[Time]) -> Result<Vec<Ticket>, TgError> {
        if ns.len() != ts.len() {
            return Err(TgError::InvalidArgument(format!(
                "submit_many needs one timestamp per node: {} nodes vs {} times",
                ns.len(),
                ts.len()
            )));
        }
        ns.iter().zip(ts).map(|(&n, &t)| self.submit(n, t)).collect()
    }

    /// Appends one edge to *every* shard's live graph (see the module
    /// docs for why replication, not endpoint routing, is required for
    /// layer-2 correctness) and runs the windowed staleness sweep
    /// shard-locally against each shard's own cache. Returns the
    /// globally assigned edge id.
    ///
    /// # Invariants
    ///
    /// - The `router` mutex serializes cross-shard replication, so every
    ///   shard ingests the identical edge sequence and each shard's
    ///   next sequence number equals the global edge id — the returned
    ///   id is the `edge_features` row on every shard.
    /// - All shards share the admission preconditions (node range,
    ///   edge-feature capacity) and identical edge counts, so the first
    ///   shard's accept/reject decision is every shard's decision: a
    ///   rejection propagates before any shard mutates.
    // hot-path-root(serve)
    pub fn submit_edge(&self, src: NodeId, dst: NodeId, time: Time) -> Result<EdgeId, TgError> {
        let mut accepted = relock(self.router.lock());
        let mut eid: Option<EdgeId> = None;
        for shard in &self.shards {
            let got = shard.submit_edge(src, dst, time)?;
            debug_assert!(eid.is_none_or(|e| e == got), "shards diverged on edge id");
            eid = Some(got);
        }
        *accepted += 1;
        // Build guarantees at least one shard, so the id is present.
        eid.ok_or_else(|| TgError::InvalidArgument("router has no shards".into()))
    }

    /// Edges accepted by this router (each replicated into every shard).
    pub fn edges_accepted(&self) -> u64 {
        *relock(self.router.lock())
    }

    /// Deterministic mode only: drains every shard on the calling thread,
    /// in shard order (shard 0's backlog first, then shard 1's, …).
    /// Returns the total number of requests processed.
    // hot-path-root(serve)
    pub fn drain(&self) -> Result<usize, TgError> {
        let mut n = 0;
        for shard in &self.shards {
            n += shard.drain()?;
        }
        Ok(n)
    }

    /// Merged serving counters across all shards (see
    /// [`ServeStats::merge`]; the `submitted >= completed +
    /// rejected_deadline` identity survives the merge). Note that in a
    /// router, `edges_ingested` counts per-shard appends — each accepted
    /// edge appears once per shard; [`ShardRouter::edges_accepted`] has
    /// the deduplicated count.
    pub fn stats(&self) -> ServeStats {
        self.shards.iter().fold(ServeStats::default(), |acc, s| acc.merge(&s.stats()))
    }

    /// Each shard's own counter snapshot, in shard order.
    pub fn shard_stats(&self) -> Vec<ServeStats> {
        self.shards.iter().map(TgServer::stats).collect()
    }

    /// Requests admitted but not yet batched, summed across shards.
    pub fn queued(&self) -> usize {
        self.shards.iter().map(TgServer::queued).sum()
    }

    /// Direct access to shard `i`'s server (tests/diagnostics).
    pub fn shard(&self, i: usize) -> &TgServer {
        &self.shards[i]
    }

    /// Drops every cached embedding of `node` in *every* shard — the
    /// replicated-frontier strategy means any shard may hold entries
    /// keyed by any node. Returns total entries removed.
    pub fn invalidate_node(&self, node: NodeId) -> usize {
        self.shards.iter().map(|s| s.invalidate_node(node)).sum()
    }

    /// Forces delta-to-CSR compaction on every shard's live graph.
    /// Returns whether live graphs existed to compact.
    pub fn compact_live(&self) -> bool {
        self.shards.iter().fold(true, |all, s| s.compact_live() && all)
    }

    /// Edge-insert events currently held for replay, summed over shards
    /// (drops to zero at quiescence).
    pub fn pending_ingest_events(&self) -> usize {
        self.shards.iter().map(TgServer::pending_ingest_events).sum()
    }

    /// The unified telemetry snapshot: flat sections hold merged totals
    /// across shards; `shards` holds one [`ShardTelemetry`] per shard
    /// (queue depth, hit rate, frontier traffic, latency). The same
    /// caveat as [`TgServer::telemetry`] applies: engine-side values are
    /// complete only after the shard's workers have exited.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let queued: Vec<usize> = self.shards.iter().map(TgServer::queued).collect();
        let per_shard: Vec<TelemetrySnapshot> =
            self.shards.iter().map(TgServer::telemetry).collect();
        merge_telemetry(&per_shard, &queued)
    }

    /// Stops admissions on every shard, flushes queued requests, joins
    /// all threads, and returns the merged final counters.
    pub fn shutdown(self) -> ServeStats {
        self.shards
            .into_iter()
            .fold(ServeStats::default(), |acc, s| acc.merge(&s.shutdown()))
    }

    /// Like [`ShardRouter::shutdown`], but also returns the merged
    /// telemetry snapshot taken after every worker exited — per-shard
    /// engine counters are complete here.
    pub fn shutdown_with_telemetry(self) -> (ServeStats, TelemetrySnapshot) {
        let finals: Vec<(ServeStats, TelemetrySnapshot)> =
            self.shards.into_iter().map(TgServer::shutdown_with_telemetry).collect();
        let stats = finals.iter().fold(ServeStats::default(), |acc, (s, _)| acc.merge(s));
        let snaps: Vec<TelemetrySnapshot> = finals.into_iter().map(|(_, t)| t).collect();
        let queued = vec![0; snaps.len()];
        (stats, merge_telemetry(&snaps, &queued))
    }
}

/// Folds per-shard snapshots into one router-wide snapshot: counters
/// add, stage rows add positionally (fixed nine-row order), histograms
/// merge bucket-wise, and the per-shard sections are preserved under
/// `shards`.
fn merge_telemetry(per_shard: &[TelemetrySnapshot], queued: &[usize]) -> TelemetrySnapshot {
    let mut out = TelemetrySnapshot::new();
    for (i, t) in per_shard.iter().enumerate() {
        // Stage rows are emitted in fixed OpKind order by every recorder;
        // merge positionally, adopting the first shard's labels.
        if out.stages.is_empty() {
            out.stages = t.stages.clone();
        } else {
            for (acc, row) in out.stages.iter_mut().zip(&t.stages) {
                acc.total_ns += row.total_ns;
                acc.count += row.count;
            }
        }
        out.engine.cache_lookups += t.engine.cache_lookups;
        out.engine.cache_hits += t.engine.cache_hits;
        out.engine.cache_stores += t.engine.cache_stores;
        out.engine.recomputed += t.engine.recomputed;
        out.engine.dedup_removed += t.engine.dedup_removed;
        out.engine.stores_skipped += t.engine.stores_skipped;
        out.time_cache.lookups += t.time_cache.lookups;
        out.time_cache.hits += t.time_cache.hits;
        out.embed_cache.items += t.embed_cache.items;
        out.embed_cache.bytes += t.embed_cache.bytes;
        out.embed_cache.limit += t.embed_cache.limit;
        out.embed_cache.evictions += t.embed_cache.evictions;
        out.embed_cache.store_drops += t.embed_cache.store_drops;
        out.serve.submitted += t.serve.submitted;
        out.serve.rejected_overload += t.serve.rejected_overload;
        out.serve.rejected_deadline += t.serve.rejected_deadline;
        out.serve.completed += t.serve.completed;
        out.serve.batches += t.serve.batches;
        out.serve.batched_requests += t.serve.batched_requests;
        out.serve.unique_rows += t.serve.unique_rows;
        out.serve.degraded_batches += t.serve.degraded_batches;
        out.serve.frontier_reads += t.serve.frontier_reads;
        out.serve.frontier_remote += t.serve.frontier_remote;
        out.ingest.edges_appended += t.ingest.edges_appended;
        out.ingest.compactions += t.ingest.compactions;
        out.ingest.delta_edges += t.ingest.delta_edges;
        out.ingest.entries_invalidated += t.ingest.entries_invalidated;
        out.ingest.entries_retained += t.ingest.entries_retained;
        // Per-layer bins are positional (layer i + 1); adopt the first
        // shard's layout and add element-wise across shards.
        if out.ingest.per_layer.is_empty() {
            out.ingest.per_layer = t.ingest.per_layer.clone();
        } else {
            for (acc, bin) in out.ingest.per_layer.iter_mut().zip(&t.ingest.per_layer) {
                acc.removed += bin.removed;
                acc.retained += bin.retained;
            }
        }
        out.latency.end_to_end.merge(&t.latency.end_to_end);
        out.latency.workers.extend(t.latency.workers.iter().cloned());
        let mut wave = HistogramSnapshot::default();
        for w in &t.latency.workers {
            wave.merge(w);
        }
        out.shards.push(ShardTelemetry {
            shard: i as u64,
            queue_depth: queued.get(i).copied().unwrap_or(0) as u64,
            submitted: t.serve.submitted,
            completed: t.serve.completed,
            rejected_overload: t.serve.rejected_overload,
            rejected_deadline: t.serve.rejected_deadline,
            batches: t.serve.batches,
            cache_lookups: t.engine.cache_lookups,
            cache_hits: t.engine.cache_hits,
            cache_items: t.embed_cache.items,
            frontier_reads: t.serve.frontier_reads,
            frontier_remote: t.serve.frontier_remote,
            end_to_end: t.latency.end_to_end.clone(),
            wave,
        });
    }
    out
}
