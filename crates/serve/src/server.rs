//! The micro-batching server: admission queue → batcher → worker pool.
//!
//! Two execution modes share every line of batch-processing logic:
//!
//! * **Threaded** — a batcher thread pops waves off the bounded queue
//!   (flushing on size or linger expiry) and hands them to a pool of
//!   worker threads, each with its own [`TgoptEngine`] over one shared
//!   [`LayerCaches`]. This is the production shape.
//! * **Deterministic** — no threads. Requests accumulate in the queue and
//!   [`TgServer::drain`] processes them on the caller's thread in exact
//!   submission order with size-only flushing, so every scheduling
//!   decision is reproducible under test.

use crate::batch::{coalesce, Pending};
use crate::ingest::{sweep_insert, IngestEvent, IngestSync};
use crate::queue::BoundedQueue;
use crate::relock;
use crate::request::{Request, Slot, Ticket};
use crate::shard::ShardScope;
use crate::stats::{ServeCounters, ServeStats};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tg_error::TgError;
use tg_graph::{Edge, EdgeId, GraphView, IngestStats, LiveGraph, NodeId, TemporalGraph, Time};
use tg_telemetry::{
    EmbedCacheTelemetry, EngineTelemetry, IngestTelemetry, LatencyHistogram, LatencyTelemetry,
    LayerSweepTelemetry, Recorder, ServeTelemetry, TelemetrySnapshot, TimeCacheTelemetry,
};
use tg_tensor::Tensor;
use tgat::engine::GraphContext;
use tgat::TgatParams;
use tgopt::{EngineCounters, LayerCaches, OptConfig, TgoptEngine};

/// Everything a worker needs to build an engine: the model and the graph
/// world it serves, owned in one place so threads can borrow from a shared
/// [`Arc`].
pub struct ModelBundle {
    /// Trained TGAT parameters.
    pub params: TgatParams,
    /// The temporal graph being served, frozen and `Arc`-shared so a
    /// sharded deployment pays for the (large, immutable) T-CSR once no
    /// matter how many per-shard `LiveGraph` delta views sit on top.
    pub graph: Arc<TemporalGraph>,
    /// `[num_nodes, dim]` static node features.
    pub node_features: Tensor,
    /// `[num_edges, edge_dim]` edge features.
    pub edge_features: Tensor,
}

impl ModelBundle {
    /// Validates feature shapes against the model configuration. The
    /// graph is frozen here (reads are unchanged; see
    /// `TemporalGraph::freeze`) so every downstream consumer — engines,
    /// per-shard live views — shares one compact immutable base.
    pub fn new(
        params: TgatParams,
        mut graph: TemporalGraph,
        node_features: Tensor,
        edge_features: Tensor,
    ) -> Result<Self, TgError> {
        if node_features.cols() != params.cfg.dim {
            return Err(TgError::shape(
                "ModelBundle node features",
                format_args!("(_, {})", params.cfg.dim),
                format_args!("{:?}", node_features.shape()),
            ));
        }
        if edge_features.cols() != params.cfg.edge_dim {
            return Err(TgError::shape(
                "ModelBundle edge features",
                format_args!("(_, {})", params.cfg.edge_dim),
                format_args!("{:?}", edge_features.shape()),
            ));
        }
        graph.freeze();
        Ok(Self { params, graph: Arc::new(graph), node_features, edge_features })
    }

    /// A borrow-view for engine construction.
    pub fn context(&self) -> GraphContext<'_> {
        GraphContext {
            graph: &self.graph,
            node_features: &self.node_features,
            edge_features: &self.edge_features,
        }
    }
}

/// Serving-layer configuration.
#[derive(Clone, Copy, Debug)]
pub struct ServeConfig {
    /// Flush a micro-batch once this many requests have coalesced.
    pub max_batch: usize,
    /// Maximum time the batcher lingers waiting for a batch to fill
    /// (threaded mode only; deterministic mode flushes on size alone).
    pub linger: Duration,
    /// Bound on queued-but-unbatched requests; beyond it submissions are
    /// rejected with [`TgError::Overloaded`].
    pub queue_capacity: usize,
    /// Worker threads in threaded mode.
    pub workers: usize,
    /// Cache payload budget: once `bytes_used()` reaches it, batches run
    /// in degraded (store-skipping) mode instead of failing — so a budget
    /// of 0 serves lookup-only from the start. The budget is soft by one
    /// wave: the store that crosses it completes before degradation kicks
    /// in.
    pub memory_budget_bytes: Option<usize>,
    /// Engine optimization settings (shared by every worker).
    pub opt: OptConfig,
    /// Record per-stage (Table 3) spans in every worker engine. Off by
    /// default: the disabled recorder takes no timestamps on the hot path.
    pub record_spans: bool,
    /// Accept [`TgServer::submit_edge`] while serving: the bundle's graph
    /// is wrapped in a [`LiveGraph`] and every wave samples from an
    /// epoch-stamped snapshot pinned at wave start.
    pub live_ingest: bool,
    /// Delta-log length that triggers compaction back into CSR
    /// (live-ingest mode only; `usize::MAX` disables auto-compaction).
    pub compact_threshold: usize,
    /// Best-effort worker-thread core pinning: worker `slot` of shard `s`
    /// asks for logical CPU `s * workers + slot`. A refused mask (fewer
    /// cores than workers, restricted cpuset, non-Linux target) leaves
    /// the thread floating — never an error.
    pub pin_cores: bool,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            max_batch: 64,
            linger: Duration::from_micros(500),
            queue_capacity: 1024,
            workers: 2,
            memory_budget_bytes: None,
            opt: OptConfig::all(),
            record_spans: false,
            live_ingest: false,
            compact_threshold: tg_graph::live::DEFAULT_COMPACT_THRESHOLD,
            pin_cores: false,
        }
    }
}

impl ServeConfig {
    /// Builder-style batch-size threshold.
    pub fn with_max_batch(mut self, n: usize) -> Self {
        self.max_batch = n;
        self
    }

    /// Builder-style linger timer.
    pub fn with_linger(mut self, linger: Duration) -> Self {
        self.linger = linger;
        self
    }

    /// Builder-style queue bound.
    pub fn with_queue_capacity(mut self, n: usize) -> Self {
        self.queue_capacity = n;
        self
    }

    /// Builder-style worker count.
    pub fn with_workers(mut self, n: usize) -> Self {
        self.workers = n;
        self
    }

    /// Builder-style memory budget.
    pub fn with_memory_budget(mut self, bytes: usize) -> Self {
        self.memory_budget_bytes = Some(bytes);
        self
    }

    /// Builder-style engine options.
    pub fn with_opt(mut self, opt: OptConfig) -> Self {
        self.opt = opt;
        self
    }

    /// Builder-style stage-span recording toggle.
    pub fn with_stage_spans(mut self, on: bool) -> Self {
        self.record_spans = on;
        self
    }

    /// Builder-style live-ingest toggle.
    pub fn with_live_ingest(mut self, on: bool) -> Self {
        self.live_ingest = on;
        self
    }

    /// Builder-style compaction threshold (live-ingest mode).
    pub fn with_compact_threshold(mut self, n: usize) -> Self {
        self.compact_threshold = n;
        self
    }

    /// Builder-style best-effort core pinning for worker threads.
    pub fn with_pin_cores(mut self, on: bool) -> Self {
        self.pin_cores = on;
        self
    }

    fn validate(&self) -> Result<(), TgError> {
        if self.max_batch == 0 {
            return Err(TgError::InvalidConfig("max_batch must be positive".into()));
        }
        if self.queue_capacity == 0 {
            return Err(TgError::InvalidConfig("queue_capacity must be positive".into()));
        }
        if self.workers == 0 {
            return Err(TgError::InvalidConfig("workers must be positive".into()));
        }
        Ok(())
    }
}

/// State shared by client handles, the batcher, and the workers.
struct Shared {
    bundle: Arc<ModelBundle>,
    cfg: ServeConfig,
    queue: BoundedQueue<Pending>,
    cache: Arc<LayerCaches>,
    counters: ServeCounters,
    /// Engine counters merged in from exited workers / deterministic drains.
    engine_counters: Mutex<EngineCounters>,
    /// Per-worker wave-processing-time histograms, one per worker slot;
    /// deterministic drains record into slot 0.
    worker_latency: Vec<Arc<LatencyHistogram>>,
    /// Stage spans merged in from exited workers / deterministic drains
    /// (all zeros unless [`ServeConfig::record_spans`] is set).
    stage_spans: Mutex<Recorder>,
    /// Time-encoding cache `(hits, misses)` merged in from exited workers
    /// and deterministic drains.
    time_cache: Mutex<(u64, u64)>,
    /// The mutable graph world when [`ServeConfig::live_ingest`] is set;
    /// waves then sample from pinned snapshots instead of `bundle.graph`.
    live: Option<LiveGraph>,
    /// Replay log and per-slot epoch pins for the ingest/invalidation
    /// protocol. Lock order: `ingest` before the live graph's `gen` —
    /// pins register under the same critical section that takes the view,
    /// and appends pair with their replay event the same way.
    ingest: Mutex<IngestSync>,
    /// Which shard of a [`crate::shard::ShardRouter`] this server is, if
    /// any. Read-only after construction (no locks on the hot path); its
    /// assignment drives the replicated-frontier traffic accounting and
    /// the core-pinning offset.
    scope: Option<ShardScope>,
}

/// Pins `slot` to a fresh snapshot of the live graph. The pin registers
/// under the same `ingest` critical section that takes the view, so an
/// edge invisible to this snapshot is guaranteed to still be (or later
/// become) a replay event this slot will see.
fn pin_live_view(shared: &Shared, live: &LiveGraph, slot: usize) -> GraphView {
    let mut sync = relock(shared.ingest.lock());
    let view = live.view();
    sync.register_pin(slot, view.epoch());
    view
}

/// Replays the targeted invalidation for every edge that raced this
/// slot's wave (its stores may have captured pre-insert history after
/// the submitter's sweep scanned the cache), then releases the pin. See
/// `crate::ingest` for why sweep-or-replay always catches a stale store.
fn finish_live_wave(shared: &Shared, live: &LiveGraph, slot: usize) {
    let replay = relock(shared.ingest.lock()).events_since_pin(slot);
    if !replay.is_empty() {
        let view = live.view();
        let k = shared.bundle.params.cfg.n_neighbors;
        for ev in &replay {
            let report = sweep_insert(&shared.cache, &view, k, ev.src, ev.dst, ev.time);
            // Replay sweeps keep the retained = 0 convention (totals and
            // per-layer bins alike): retention telemetry measures
            // submit-time precision, not idempotent re-examination.
            shared.counters.record_invalidation_sweep(report.removed(), 0);
            for (slot, &(removed, _)) in report.per_layer.iter().enumerate() {
                shared.counters.record_layer_sweep(slot, removed, 0);
            }
        }
    }
    relock(shared.ingest.lock()).release_pin(slot);
}

/// Accounts the sampled layer-1 frontier of one wave's unique targets:
/// how many of each target's `k` most-recent neighbors this shard owns
/// versus how many are *replicated* from another shard's partition.
/// Replicated-frontier serving keeps the compute local (layer-0 features
/// and time-encode state are pure functions of shared immutable inputs,
/// so replication costs memory traffic, not coordination); this counter
/// is the measured price of that choice, recorded so a later placement
/// policy can judge whether smarter routing would pay. No-op for an
/// unsharded server.
fn record_frontier_traffic(shared: &Shared, ns: &[NodeId], ts: &[Time]) {
    let Some(scope) = shared.scope.as_ref() else { return };
    let k = shared.bundle.params.cfg.n_neighbors;
    let mut total = 0u64;
    let mut remote = 0u64;
    let mut count = |ngh: NodeId| {
        total += 1;
        if scope.assignment.owner(ngh) != scope.shard {
            remote += 1;
        }
    };
    match shared.live.as_ref() {
        Some(live) => {
            // A fresh view (Arc clone, no allocation) rather than the
            // wave's pinned one: the counter tolerates being one epoch
            // ahead, and threading the pin here would couple accounting
            // to the ingest protocol for no accuracy gain.
            let view = live.view();
            for (&n, &t) in ns.iter().zip(ts) {
                let take = view.hist_len_before(n, t).min(k);
                view.most_recent(n, t, take, |_, e| count(e.ngh));
            }
        }
        None => {
            for (&n, &t) in ns.iter().zip(ts) {
                let hist = shared.bundle.graph.neighbors_before(n, t);
                // The window is the k most recent; counting order is
                // irrelevant, so walk the suffix backward.
                for e in hist.iter().rev().take(k) {
                    count(e.ngh);
                }
            }
        }
    }
    shared.counters.record_frontier(total, remote);
}

/// Runs one wave through `engine`: deadline filter → cross-request dedup →
/// (possibly degraded) inference → per-request scatter. Every pending
/// request in the wave is fulfilled exactly once before return. Wave
/// processing time lands in `wave_hist` (the executing worker's histogram)
/// and each completed request's submit-to-fulfill latency in the shared
/// end-to-end histogram.
fn process_wave(
    engine: &mut TgoptEngine<'_>,
    wave: Vec<Pending>,
    shared: &Shared,
    wave_hist: &LatencyHistogram,
) {
    let now = Instant::now();
    let (live, expired): (Vec<Pending>, Vec<Pending>) =
        wave.into_iter().partition(|p| !p.req.expired_at(now));
    if !expired.is_empty() {
        shared.counters.record_deadline(expired.len() as u64);
        for p in expired {
            p.slot.fulfill(Err(TgError::DeadlineExceeded));
        }
    }
    if live.is_empty() {
        return;
    }
    let targets: Vec<(NodeId, Time)> = live.iter().map(|p| (p.req.node, p.req.time)).collect();
    let plan = coalesce(&targets);
    let degraded = shared
        .cfg
        .memory_budget_bytes
        .is_some_and(|budget| shared.cache.bytes_used() >= budget);
    engine.set_store_enabled(!degraded);
    shared.counters.record_batch(live.len() as u64, plan.ns.len() as u64, degraded);
    record_frontier_traffic(shared, &plan.ns, &plan.ts);
    match engine.embed_batch(&plan.ns, &plan.ts) {
        Ok(h) => {
            for (p, &row) in live.iter().zip(&plan.row_of) {
                p.slot.fulfill(Ok(h.row(row).to_vec()));
            }
            shared.counters.record_completed(live.len() as u64);
            // One clock read for the whole wave; per-request end-to-end
            // latency is a subtraction against each submit timestamp.
            let done = Instant::now();
            for p in &live {
                let e2e = done.duration_since(p.submitted_at);
                shared
                    .counters
                    .record_latency(u64::try_from(e2e.as_nanos()).unwrap_or(u64::MAX));
            }
        }
        Err(e) => {
            // TgError is not Clone (it can wrap an io::Error), so waiters
            // past the first receive the rendered message.
            let msg = e.to_string();
            let mut first = Some(e);
            for p in &live {
                match first.take() {
                    Some(orig) => p.slot.fulfill(Err(orig)),
                    None => p.slot.fulfill(Err(TgError::InvalidArgument(format!(
                        "micro-batch failed: {msg}"
                    )))),
                }
            }
        }
    }
    let wave_ns = now.elapsed();
    wave_hist.record(u64::try_from(wave_ns.as_nanos()).unwrap_or(u64::MAX));
}

/// Folds one retiring engine's accumulated telemetry (reuse counters,
/// stage spans, time-cache hits/misses) into the shared totals. Locks are
/// taken one at a time, never nested.
fn merge_engine_telemetry(shared: &Shared, engine: TgoptEngine<'_>) {
    let spans = engine.stats().clone();
    let (tc_hits, tc_misses) = engine.time_cache_stats();
    let (_, counters) = engine.into_cache();
    {
        let mut total = relock(shared.engine_counters.lock());
        *total = total.merge(&counters);
    }
    relock(shared.stage_spans.lock()).merge(&spans);
    let mut tc = relock(shared.time_cache.lock());
    tc.0 += tc_hits;
    tc.1 += tc_misses;
}

// hot-path-root(serve)
fn worker_loop(
    shared: Arc<Shared>,
    rx: Arc<Mutex<mpsc::Receiver<Vec<Pending>>>>,
    wave_hist: Arc<LatencyHistogram>,
    slot: usize,
) {
    let bundle = Arc::clone(&shared.bundle);
    if shared.cfg.pin_cores {
        // Best-effort: shard s's worker slot w asks for CPU
        // s * workers + w, giving disjoint core ranges per shard. A
        // refused mask (fewer cores than shards × workers, restricted
        // cpuset, non-Linux) leaves the thread floating.
        let base = shared.scope.as_ref().map_or(0, |s| s.shard * shared.cfg.workers);
        let _ = core_affinity::set_for_current(core_affinity::CoreId { id: base + slot });
    }
    // One engine per worker, reused across waves — which also means one
    // `Scratch` arena per worker: after the first wave, steady-state
    // batches run the whole attention stack out of recycled buffers with
    // no allocator traffic (see DESIGN.md "Kernel architecture").
    let mut engine = TgoptEngine::with_cache(
        &bundle.params,
        bundle.context(),
        shared.cfg.opt,
        Arc::clone(&shared.cache),
        EngineCounters::default(),
    );
    if shared.cfg.record_spans {
        engine.enable_stats();
    }
    loop {
        // The guard is scoped to the recv call: exactly one idle worker
        // waits inside recv, the rest wait on the lock. Processing runs
        // unlocked, so waves execute concurrently across workers.
        // lint: allow(lock-across, rx exists only to make the !Sync Receiver shareable; the guard protects nothing else and no holder ever takes another lock)
        let wave = match relock(rx.lock()).recv() { // bounded-by: idle wait for work, not request latency; the per-wave deadline clock starts at dequeue, and shutdown drops the sender which wakes recv with Err
            Ok(wave) => wave,
            Err(_) => break,
        };
        if let Some(live) = shared.live.as_ref() {
            engine.pin_view(pin_live_view(&shared, live, slot));
        }
        process_wave(&mut engine, wave, &shared, &wave_hist);
        if let Some(live) = shared.live.as_ref() {
            finish_live_wave(&shared, live, slot);
        }
    }
    merge_engine_telemetry(&shared, engine);
}

/// The micro-batching request server over one [`TgoptEngine`] world.
pub struct TgServer {
    shared: Arc<Shared>,
    batcher: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    deterministic: bool,
}

impl TgServer {
    fn shared_state(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        scope: Option<ShardScope>,
    ) -> Result<Arc<Shared>, TgError> {
        cfg.validate()?;
        let n_layers = bundle.params.cfg.n_layers;
        let dim = bundle.params.cfg.dim;
        let cache = Arc::new(LayerCaches::new(
            n_layers,
            cfg.opt.cache_last_layer,
            cfg.opt.cache_limit.max(1),
            dim,
        ));
        let live = cfg.live_ingest.then(|| {
            // Zero-copy over the bundle's frozen base: every shard's live
            // graph layers its own delta on the same shared T-CSR.
            LiveGraph::from_shared(Arc::clone(&bundle.graph))
                .with_compact_threshold(cfg.compact_threshold)
        });
        Ok(Arc::new(Shared {
            bundle,
            queue: BoundedQueue::new(cfg.queue_capacity),
            cache,
            counters: ServeCounters::default(),
            engine_counters: Mutex::new(EngineCounters::default()),
            worker_latency: (0..cfg.workers).map(|_| Arc::new(LatencyHistogram::new())).collect(),
            stage_spans: Mutex::new(Recorder::disabled()),
            time_cache: Mutex::new((0, 0)),
            live,
            // One pin slot per worker plus the deterministic drain slot.
            ingest: Mutex::new(IngestSync::new(cfg.workers + 1)),
            scope,
            cfg,
        }))
    }

    /// A single-threaded server: requests queue until [`TgServer::drain`]
    /// processes them in submission order with size-only flushing. Every
    /// scheduling decision is a pure function of the submit/drain sequence.
    pub fn deterministic(bundle: Arc<ModelBundle>, cfg: ServeConfig) -> Result<Self, TgError> {
        Self::deterministic_scoped(bundle, cfg, None)
    }

    /// [`TgServer::deterministic`] as one shard of a router.
    pub(crate) fn deterministic_scoped(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        scope: Option<ShardScope>,
    ) -> Result<Self, TgError> {
        let shared = Self::shared_state(bundle, cfg, scope)?;
        Ok(Self { shared, batcher: None, workers: Vec::new(), deterministic: true })
    }

    /// A threaded server: one batcher thread plus `cfg.workers` inference
    /// workers sharing a single memoization cache.
    pub fn threaded(bundle: Arc<ModelBundle>, cfg: ServeConfig) -> Result<Self, TgError> {
        Self::threaded_scoped(bundle, cfg, None)
    }

    /// [`TgServer::threaded`] as one shard of a router.
    pub(crate) fn threaded_scoped(
        bundle: Arc<ModelBundle>,
        cfg: ServeConfig,
        scope: Option<ShardScope>,
    ) -> Result<Self, TgError> {
        let shared = Self::shared_state(bundle, cfg, scope)?;
        let (tx, rx) = mpsc::channel::<Vec<Pending>>();
        let rx = Arc::new(Mutex::new(rx));
        let workers: Vec<JoinHandle<()>> = (0..shared.cfg.workers)
            .map(|i| {
                let wave_hist = Arc::clone(&shared.worker_latency[i]);
                let shared = Arc::clone(&shared);
                let rx = Arc::clone(&rx);
                std::thread::spawn(move || worker_loop(shared, rx, wave_hist, i))
            })
            .collect();
        let batcher_shared = Arc::clone(&shared);
        let batcher = std::thread::spawn(move || {
            let (max, linger) = (batcher_shared.cfg.max_batch, batcher_shared.cfg.linger);
            while let Some(wave) = batcher_shared.queue.pop_wave(max, linger) {
                if tx.send(wave).is_err() {
                    break;
                }
            }
            // Dropping `tx` disconnects the channel; workers exit after
            // draining every wave already sent.
        });
        Ok(Self { shared, batcher: Some(batcher), workers, deterministic: false })
    }

    /// Submits one query with no deadline.
    pub fn submit(&self, node: NodeId, time: Time) -> Result<Ticket, TgError> {
        self.submit_request(Request::new(node, time))
    }

    /// Submits one query that is only useful until `deadline`.
    pub fn submit_with_deadline(
        &self,
        node: NodeId,
        time: Time,
        deadline: Instant,
    ) -> Result<Ticket, TgError> {
        self.submit_request(Request::new(node, time).with_deadline(deadline))
    }

    /// Submits a [`Request`]. An already-expired deadline is rejected here,
    /// before consuming a queue slot; a full queue rejects with
    /// [`TgError::Overloaded`] without blocking.
    ///
    /// `submitted` is recorded before any terminal counter — and before
    /// the request becomes visible to workers — so every counter snapshot
    /// satisfies `submitted >= completed + rejected_deadline`.
    // hot-path-root(serve)
    pub fn submit_request(&self, req: Request) -> Result<Ticket, TgError> {
        let submitted_at = Instant::now();
        self.shared.counters.record_submitted();
        if req.expired_at(submitted_at) {
            self.shared.counters.record_deadline(1);
            return Err(TgError::DeadlineExceeded);
        }
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        match self.shared.queue.push(Pending { req, slot, submitted_at }) {
            Ok(()) => Ok(ticket),
            Err(e) => {
                if matches!(e, TgError::Overloaded { .. }) {
                    self.shared.counters.record_overload();
                }
                Err(e)
            }
        }
    }

    /// Appends one edge to the live graph and drops exactly the cached
    /// entries it could have invalidated, retaining everything provably
    /// fresh. Requires a live-ingest server
    /// ([`ServeConfig::with_live_ingest`]); returns the assigned edge id,
    /// which is also the `edge_features` row the edge reads.
    ///
    /// Safe concurrently with serving traffic: in-flight waves keep
    /// sampling their pinned snapshot (an edge is never half-visible),
    /// and any wave whose stores raced this append replays the
    /// invalidation after those stores land, so no stale cache entry
    /// survives (see `crate::ingest` for the protocol).
    // hot-path-root(serve)
    pub fn submit_edge(&self, src: NodeId, dst: NodeId, time: Time) -> Result<EdgeId, TgError> {
        let Some(live) = self.shared.live.as_ref() else {
            return Err(TgError::InvalidArgument(
                "submit_edge requires live ingest (ServeConfig::with_live_ingest)".into(),
            ));
        };
        let bundle = &self.shared.bundle;
        let n_nodes = bundle.node_features.rows();
        if src as usize >= n_nodes || dst as usize >= n_nodes {
            return Err(TgError::InvalidArgument(format!(
                "edge ({src}, {dst}) out of range: {n_nodes} node-feature rows"
            )));
        }
        let max_edges = bundle.edge_features.rows() as u64;
        let (eid, view) = {
            // One critical section serializes edge-id assignment and
            // pairs the append with its replay event, so no wave can pin
            // an epoch at-or-before this edge without later replaying it.
            // The `ingest` lock is taken before the graph's own locks.
            let mut sync = relock(self.shared.ingest.lock());
            let next = live.num_edges_total();
            if next >= max_edges {
                return Err(TgError::InvalidArgument(format!(
                    "edge-feature rows exhausted: {next} edges appended, {max_edges} rows"
                )));
            }
            let eid = next as EdgeId;
            let seq = live.append(&Edge { src, dst, time, eid });
            sync.push_event(IngestEvent { seq, src, dst, time });
            (eid, live.view())
        };
        let k = bundle.params.cfg.n_neighbors;
        let report = sweep_insert(&self.shared.cache, &view, k, src, dst, time);
        self.shared.counters.record_edge_ingested();
        self.shared.counters.record_invalidation_sweep(report.removed(), report.retained());
        for (slot, &(removed, retained)) in report.per_layer.iter().enumerate() {
            self.shared.counters.record_layer_sweep(slot, removed, retained);
        }
        Ok(eid)
    }

    /// Submits `ns[i], ts[i]` pairs in order; ticket `i` resolves to the
    /// embedding row of query `i` (per-request row order is preserved no
    /// matter how the batcher groups or dedups them).
    pub fn submit_many(&self, ns: &[NodeId], ts: &[Time]) -> Result<Vec<Ticket>, TgError> {
        if ns.len() != ts.len() {
            return Err(TgError::InvalidArgument(format!(
                "submit_many needs one timestamp per node: {} nodes vs {} times",
                ns.len(),
                ts.len()
            )));
        }
        ns.iter().zip(ts).map(|(&n, &t)| self.submit(n, t)).collect()
    }

    /// Deterministic mode only: processes every queued request on the
    /// calling thread, in submission order, flushing a micro-batch every
    /// `max_batch` requests. Returns how many requests were processed.
    // hot-path-root(serve)
    pub fn drain(&self) -> Result<usize, TgError> {
        if !self.deterministic {
            return Err(TgError::InvalidArgument(
                "drain() is only available on a deterministic server".into(),
            ));
        }
        let mut items = self.shared.queue.drain_all();
        let n = items.len();
        if n == 0 {
            return Ok(0);
        }
        let bundle = Arc::clone(&self.shared.bundle);
        let counters = *relock(self.shared.engine_counters.lock());
        let mut engine = TgoptEngine::with_cache(
            &bundle.params,
            bundle.context(),
            self.shared.cfg.opt,
            Arc::clone(&self.shared.cache),
            counters,
        );
        if self.shared.cfg.record_spans {
            engine.enable_stats();
        }
        // The drain owns the pin slot past the worker range; one snapshot
        // covers the whole drain so every wave in it sees the same graph.
        let drain_slot = self.shared.cfg.workers;
        if let Some(live) = self.shared.live.as_ref() {
            engine.pin_view(pin_live_view(&self.shared, live, drain_slot));
        }
        // Deterministic mode has no workers; its waves account to slot 0.
        let wave_hist = Arc::clone(&self.shared.worker_latency[0]);
        while !items.is_empty() {
            let tail = items.split_off(items.len().min(self.shared.cfg.max_batch));
            process_wave(&mut engine, items, &self.shared, &wave_hist);
            items = tail;
        }
        if let Some(live) = self.shared.live.as_ref() {
            finish_live_wave(&self.shared, live, drain_slot);
        }
        let spans = engine.stats().clone();
        let (tc_hits, tc_misses) = engine.time_cache_stats();
        let (_, counters) = engine.into_cache();
        *relock(self.shared.engine_counters.lock()) = counters;
        relock(self.shared.stage_spans.lock()).merge(&spans);
        {
            let mut tc = relock(self.shared.time_cache.lock());
            tc.0 += tc_hits;
            tc.1 += tc_misses;
        }
        Ok(n)
    }

    /// Serving-layer counters (admission, batching, dedup, degradation).
    pub fn stats(&self) -> ServeStats {
        self.shared.counters.snapshot()
    }

    /// Aggregated engine counters. In threaded mode, workers merge their
    /// counters when they exit, so the full totals are visible after
    /// [`TgServer::shutdown`]; deterministic drains publish immediately.
    pub fn engine_counters(&self) -> EngineCounters {
        *relock(self.shared.engine_counters.lock())
    }

    /// The unified telemetry snapshot: serving counters, engine counters,
    /// embedding-cache and time-cache accounting, the per-stage breakdown,
    /// and the online latency distributions, in the stable
    /// [`tg_telemetry::SCHEMA_VERSION`] JSON shape.
    ///
    /// Serving counters and latency histograms are live; engine-side
    /// values (stage spans, time-cache hits, reuse counters) are merged in
    /// when workers exit, so in threaded mode they are only complete after
    /// shutdown — use [`TgServer::shutdown_with_telemetry`] for final
    /// totals. Stage spans stay zero unless [`ServeConfig::record_spans`]
    /// is set.
    pub fn telemetry(&self) -> TelemetrySnapshot {
        let serve = self.shared.counters.snapshot();
        let ec = *relock(self.shared.engine_counters.lock());
        let (tc_hits, tc_misses) = *relock(self.shared.time_cache.lock());
        let stages = relock(self.shared.stage_spans.lock()).breakdown();
        let cache = &self.shared.cache;
        TelemetrySnapshot {
            stages,
            engine: EngineTelemetry {
                cache_lookups: ec.cache_lookups,
                cache_hits: ec.cache_hits,
                cache_stores: ec.cache_stores,
                recomputed: ec.recomputed,
                dedup_removed: ec.dedup_removed,
                stores_skipped: ec.stores_skipped,
            },
            time_cache: TimeCacheTelemetry { lookups: tc_hits + tc_misses, hits: tc_hits },
            embed_cache: EmbedCacheTelemetry {
                items: cache.len() as u64,
                bytes: cache.bytes_used() as u64,
                limit: cache.limit() as u64,
                evictions: cache.total_evictions(),
                store_drops: cache.total_store_dropped(),
            },
            serve: ServeTelemetry {
                submitted: serve.submitted,
                rejected_overload: serve.rejected_overload,
                rejected_deadline: serve.rejected_deadline,
                completed: serve.completed,
                batches: serve.batches,
                batched_requests: serve.batched_requests,
                unique_rows: serve.unique_rows,
                degraded_batches: serve.degraded_batches,
                frontier_reads: serve.frontier_reads,
                frontier_remote: serve.frontier_remote,
            },
            ingest: {
                let graph = self.shared.live.as_ref().map(LiveGraph::ingest_stats);
                let graph = graph.unwrap_or_default();
                IngestTelemetry {
                    edges_appended: graph.edges_appended,
                    compactions: graph.compactions,
                    delta_edges: graph.delta_edges,
                    entries_invalidated: serve.entries_invalidated,
                    entries_retained: serve.entries_retained,
                    per_layer: (0..crate::ingest::TRACKED_SWEEP_LAYERS)
                        .map(|i| LayerSweepTelemetry {
                            layer: i as u64 + 1,
                            removed: serve.layer_removed[i],
                            retained: serve.layer_retained[i],
                        })
                        .collect(),
                }
            },
            latency: LatencyTelemetry {
                end_to_end: serve.latency,
                workers: self.shared.worker_latency.iter().map(|h| h.snapshot()).collect(),
            },
            ..TelemetrySnapshot::new()
        }
    }

    /// The memoization cache shared by every worker.
    pub fn shared_cache(&self) -> Arc<LayerCaches> {
        Arc::clone(&self.shared.cache)
    }

    /// Currently queued (admitted, unbatched) requests.
    pub fn queued(&self) -> usize {
        self.shared.queue.len()
    }

    /// Drops every cached embedding of `node` — safe concurrently with
    /// serving traffic (in-flight batches recompute on their next miss).
    /// Returns how many entries were removed.
    pub fn invalidate_node(&self, node: NodeId) -> usize {
        self.shared.cache.invalidate_node(node)
    }

    /// A consistent snapshot of the live graph, or `None` when live
    /// ingest is disabled. The view pins its generation: holding it is
    /// free for appenders and only delays reclaiming a compacted base.
    pub fn live_view(&self) -> Option<GraphView> {
        self.shared.live.as_ref().map(LiveGraph::view)
    }

    /// Live-graph ingest statistics, or `None` when live ingest is
    /// disabled.
    pub fn ingest_stats(&self) -> Option<IngestStats> {
        self.shared.live.as_ref().map(LiveGraph::ingest_stats)
    }

    /// Forces a delta-to-CSR compaction now (live-ingest mode). Returns
    /// whether a live graph existed to compact. Safe concurrently with
    /// queries: existing views keep their generation alive.
    pub fn compact_live(&self) -> bool {
        match self.shared.live.as_ref() {
            Some(live) => {
                live.compact();
                true
            }
            None => false,
        }
    }

    /// Edge-insert events currently held for post-wave replay (drops to
    /// zero at quiescence; primarily for tests and debugging).
    pub fn pending_ingest_events(&self) -> usize {
        relock(self.shared.ingest.lock()).pending_events()
    }

    /// The active configuration.
    pub fn config(&self) -> &ServeConfig {
        &self.shared.cfg
    }

    fn close_and_join(&mut self) {
        self.shared.queue.close();
        if self.deterministic {
            // Flush the backlog so no ticket is left forever pending.
            let _ = self.drain();
        }
        if let Some(b) = self.batcher.take() {
            let _ = b.join();
        }
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }

    /// Stops admissions, flushes every queued request, joins all threads,
    /// and returns the final counters. (Dropping the server does the same
    /// without returning stats.)
    pub fn shutdown(mut self) -> ServeStats {
        self.close_and_join();
        self.shared.counters.snapshot()
    }

    /// Like [`TgServer::shutdown`], but also returns the unified telemetry
    /// snapshot taken *after* every worker has merged its engine-side
    /// totals — the complete end-of-run picture.
    pub fn shutdown_with_telemetry(mut self) -> (ServeStats, TelemetrySnapshot) {
        self.close_and_join();
        (self.shared.counters.snapshot(), self.telemetry())
    }
}

impl Drop for TgServer {
    fn drop(&mut self) {
        self.close_and_join();
    }
}
