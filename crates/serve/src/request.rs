//! Requests, completion slots, and client-side tickets.

use crate::relock;
use std::sync::{Arc, Condvar, Mutex};
use std::time::Instant;
use tg_error::TgError;
use tg_graph::{NodeId, Time};

/// One `(node, time)` embedding query, with an optional wall-clock
/// deadline. A request whose deadline has passed before its batch runs is
/// completed with [`TgError::DeadlineExceeded`] rather than a stale tensor.
#[derive(Clone, Copy, Debug)]
pub struct Request {
    /// The node whose temporal embedding is requested.
    pub node: NodeId,
    /// The query time.
    pub time: Time,
    /// Latest instant at which a result is still useful.
    pub deadline: Option<Instant>,
}

impl Request {
    /// A request with no deadline.
    pub fn new(node: NodeId, time: Time) -> Self {
        Self { node, time, deadline: None }
    }

    /// Builder-style deadline.
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// True if the deadline (if any) has passed at `now`.
    pub fn expired_at(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| now >= d)
    }
}

/// The server side of a ticket: fulfilled exactly once with either an
/// embedding row or a typed error.
pub(crate) struct Slot {
    cell: Mutex<Option<Result<Vec<f32>, TgError>>>,
    ready: Condvar,
}

impl Slot {
    pub(crate) fn new() -> Arc<Self> {
        Arc::new(Self { cell: Mutex::new(None), ready: Condvar::new() })
    }

    /// First write wins; later fulfillments are ignored, so a race between
    /// a deadline rejection and a late batch result cannot clobber the
    /// value a waiter already observed.
    pub(crate) fn fulfill(&self, result: Result<Vec<f32>, TgError>) {
        let mut cell = relock(self.cell.lock());
        if cell.is_none() {
            *cell = Some(result);
            drop(cell);
            self.ready.notify_all();
        }
    }

    fn wait(&self) -> Result<Vec<f32>, TgError> {
        let mut cell = relock(self.cell.lock());
        loop {
            if let Some(result) = cell.take() {
                return result;
            }
            cell = relock(self.ready.wait(cell));
        }
    }

    fn try_take(&self) -> Option<Result<Vec<f32>, TgError>> {
        relock(self.cell.lock()).take()
    }
}

/// The client's handle on one submitted request.
///
/// In threaded mode [`Ticket::wait`] blocks until a worker (or a deadline
/// rejection) fulfills it. In deterministic mode results only appear when
/// the caller runs [`crate::TgServer::drain`], so call that before waiting.
pub struct Ticket {
    slot: Arc<Slot>,
}

impl std::fmt::Debug for Ticket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = if relock(self.slot.cell.lock()).is_some() { "ready" } else { "pending" };
        f.debug_struct("Ticket").field("state", &state).finish()
    }
}

impl Ticket {
    pub(crate) fn new(slot: Arc<Slot>) -> Self {
        Self { slot }
    }

    /// Blocks until the request completes; returns the embedding row or
    /// the typed rejection ([`TgError::DeadlineExceeded`], a batch failure).
    pub fn wait(self) -> Result<Vec<f32>, TgError> {
        self.slot.wait()
    }

    /// Non-blocking probe: `None` while the request is still in flight.
    pub fn try_take(&self) -> Option<Result<Vec<f32>, TgError>> {
        self.slot.try_take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_fulfillment_wins() {
        let slot = Slot::new();
        slot.fulfill(Ok(vec![1.0]));
        slot.fulfill(Err(TgError::DeadlineExceeded));
        assert_eq!(Ticket::new(slot).wait().unwrap(), vec![1.0]);
    }

    #[test]
    fn try_take_reports_in_flight() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        assert!(ticket.try_take().is_none());
        slot.fulfill(Ok(vec![2.0]));
        assert_eq!(ticket.try_take().unwrap().unwrap(), vec![2.0]);
    }

    #[test]
    fn wait_blocks_until_fulfilled_across_threads() {
        let slot = Slot::new();
        let ticket = Ticket::new(Arc::clone(&slot));
        let t = std::thread::spawn(move || ticket.wait());
        std::thread::sleep(std::time::Duration::from_millis(5));
        slot.fulfill(Ok(vec![3.0, 4.0]));
        assert_eq!(t.join().unwrap().unwrap(), vec![3.0, 4.0]);
    }

    #[test]
    fn expiry_respects_deadline() {
        let now = Instant::now();
        let r = Request::new(1, 2.0);
        assert!(!r.expired_at(now), "no deadline never expires");
        let r = r.with_deadline(now);
        assert!(r.expired_at(now));
        assert!(!r.expired_at(now - std::time::Duration::from_millis(1)));
    }
}
