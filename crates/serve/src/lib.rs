//! `tg-serve` — the micro-batching serving layer over the TGOpt engine.
//!
//! The engine's §3.1 dedup only exploits duplicates *within* a
//! caller-provided batch. This crate adds the layer that makes such
//! batches exist in the first place: client handles submit individual
//! `(node, time)` queries into a bounded admission queue, a batcher
//! coalesces them into micro-batches (flushing on a size threshold or a
//! max-linger timer), cross-request deduplication collapses hot targets
//! *across* callers on top of the engine's own dedup, a worker pool runs
//! [`tgopt::TgoptEngine::embed_batch`] over one shared memoization cache,
//! and per-row results scatter back to each waiter in submission order.
//!
//! Robustness is part of the contract, not an afterthought:
//!
//! * **Backpressure** — the admission queue is bounded; a full queue
//!   rejects with [`tg_error::TgError::Overloaded`] instead of blocking or
//!   growing without limit.
//! * **Deadlines** — each request may carry a deadline; expired requests
//!   complete with [`tg_error::TgError::DeadlineExceeded`], never a stale
//!   or partial tensor.
//! * **Degraded mode** — when the cache payload exceeds a configured
//!   memory budget, batches run with stores skipped (the engine keeps
//!   reading the cache and keeps returning exact results) instead of
//!   failing requests.
//!
//! Semantics preservation is testable end to end: embeddings served
//! through this layer equal a direct `embed_batch` call within 1e-5, the
//! same oracle the paper uses for the engine itself (§5.1.3). The
//! deterministic single-threaded mode ([`TgServer::deterministic`] +
//! [`TgServer::drain`]) makes every scheduling decision reproducible so
//! property tests can replay arbitrary interleavings.

pub mod batch;
mod ingest;
pub mod queue;
pub mod request;
pub mod server;
pub mod shard;
pub mod stats;

pub use batch::{coalesce, CoalescePlan};
pub use queue::BoundedQueue;
pub use request::{Request, Ticket};
pub use server::{ModelBundle, ServeConfig, TgServer};
pub use shard::ShardRouter;
pub use stats::{ServeCounters, ServeStats};

use std::sync::{LockResult, MutexGuard};

/// Recovers a guard from a poisoned `std::sync` lock. Poisoning only
/// records that a holder panicked; every critical section in this crate
/// leaves its state consistent at each await point, so recovery is safe
/// and keeps the serving loop panic-free (repo lint L1).
pub(crate) fn relock<T>(r: LockResult<MutexGuard<'_, T>>) -> MutexGuard<'_, T> {
    r.unwrap_or_else(|poisoned| poisoned.into_inner())
}
