//! Cross-request coalescing: the micro-batch and its dedup plan.
//!
//! The engine's own Algorithm-2 dedup removes duplicates *within* the
//! batch it is handed; this module is the layer above it that removes
//! duplicates *across* concurrent requests before the engine ever runs, so
//! N clients asking for the same hot `(node, time)` target cost one
//! engine row. The scatter map (`row_of`) preserves per-request order:
//! request `i` of a wave always receives row `row_of[i]` of the engine
//! output, regardless of how many neighbors it deduplicated with.

use crate::request::{Request, Slot};
use rustc_hash::FxHashMap;
use std::sync::Arc;
use std::time::Instant;
use tg_graph::{NodeId, Time};

/// One admitted request travelling through the pipeline with its
/// completion slot and admission timestamp (the start of the end-to-end
/// latency measurement).
pub(crate) struct Pending {
    pub(crate) req: Request,
    pub(crate) slot: Arc<Slot>,
    pub(crate) submitted_at: Instant,
}

/// The unique targets of a wave plus the per-request scatter map.
#[derive(Clone, Debug, Default)]
pub struct CoalescePlan {
    /// Unique target nodes, in first-appearance order.
    pub ns: Vec<NodeId>,
    /// Unique target times, parallel to `ns`.
    pub ts: Vec<Time>,
    /// `row_of[i]` is the row of the engine output that belongs to the
    /// wave's `i`-th request.
    pub row_of: Vec<usize>,
}

impl CoalescePlan {
    /// Requests that coalesced away: wave size minus unique targets.
    pub fn duplicates_removed(&self) -> usize {
        self.row_of.len() - self.ns.len()
    }
}

/// Builds the dedup plan for one wave of `(node, time)` targets. Times are
/// compared bit-exactly (`f32::to_bits`), matching the engine's own key
/// packing: two requests only share a row if the engine itself would treat
/// them as the same target.
pub fn coalesce(targets: &[(NodeId, Time)]) -> CoalescePlan {
    let mut plan = CoalescePlan {
        ns: Vec::new(),
        ts: Vec::new(),
        row_of: Vec::with_capacity(targets.len()),
    };
    let mut index: FxHashMap<(NodeId, u32), usize> = FxHashMap::default();
    for &(n, t) in targets {
        let row = *index.entry((n, t.to_bits())).or_insert_with(|| {
            plan.ns.push(n);
            plan.ts.push(t);
            plan.ns.len() - 1
        });
        plan.row_of.push(row);
    }
    plan
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn duplicates_share_rows_in_first_appearance_order() {
        let plan = coalesce(&[(5, 1.0), (3, 2.0), (5, 1.0), (5, 3.0), (3, 2.0)]);
        assert_eq!(plan.ns, vec![5, 3, 5]);
        assert_eq!(plan.ts, vec![1.0, 2.0, 3.0]);
        assert_eq!(plan.row_of, vec![0, 1, 0, 2, 1]);
        assert_eq!(plan.duplicates_removed(), 2);
    }

    #[test]
    fn distinct_times_do_not_coalesce() {
        let plan = coalesce(&[(1, 1.0), (1, 1.0000001)]);
        assert_eq!(plan.ns.len(), 2);
        assert_eq!(plan.duplicates_removed(), 0);
    }

    #[test]
    fn empty_wave_yields_empty_plan() {
        let plan = coalesce(&[]);
        assert!(plan.ns.is_empty() && plan.row_of.is_empty());
        assert_eq!(plan.duplicates_removed(), 0);
    }
}
