//! Shared typed error for the TGOpt workspace.
//!
//! Fallible paths that used to panic or return bare `std::io::Error` —
//! dataset loading/generation, snapshot persistence, cache shape checks,
//! model configuration — now surface a [`TgError`] so callers can
//! distinguish bad input data from corrupt snapshots from programmer
//! errors, and so error messages carry enough context (file, line, field)
//! to act on.

use std::fmt;

/// Convenience alias used throughout the workspace.
pub type Result<T> = std::result::Result<T, TgError>;

/// All error conditions the TGOpt crates surface to callers.
#[derive(Debug)]
pub enum TgError {
    /// An underlying filesystem or stream error.
    Io(std::io::Error),

    /// A malformed record in an input file (e.g. a dataset CSV). Carries
    /// the position of the offending token so users can fix their data.
    Parse {
        /// Path of the file being read.
        file: String,
        /// 1-based line number of the bad record.
        line: usize,
        /// Which field of the record was malformed.
        field: String,
        /// What was wrong with it.
        message: String,
    },

    /// A persisted cache snapshot failed validation (bad magic, truncated
    /// payload, version mismatch, or inconsistent counts).
    SnapshotCorrupt {
        /// What check failed.
        detail: String,
    },

    /// A configuration was rejected by validation.
    InvalidConfig(String),

    /// A tensor or batch had the wrong dimensions for an operation.
    ShapeMismatch {
        /// The operation that rejected its input.
        context: String,
        /// Dimensions the operation required.
        expected: String,
        /// Dimensions it was given.
        found: String,
    },

    /// A caller-supplied argument was out of range (e.g. a non-positive
    /// scale factor or cache capacity).
    InvalidArgument(String),

    /// The serving layer's admission queue was full: the request was
    /// rejected instead of queued so load sheds at the front door rather
    /// than growing memory without bound (backpressure).
    Overloaded {
        /// Capacity of the queue that rejected the request.
        capacity: usize,
    },

    /// A request's deadline expired before its embedding was computed; the
    /// caller gets this error instead of a stale or partial tensor.
    DeadlineExceeded,
}

impl TgError {
    /// Builds a [`TgError::Parse`] for a malformed field of `file:line`.
    pub fn parse(
        file: impl Into<String>,
        line: usize,
        field: impl Into<String>,
        message: impl Into<String>,
    ) -> Self {
        TgError::Parse {
            file: file.into(),
            line,
            field: field.into(),
            message: message.into(),
        }
    }

    /// Builds a [`TgError::SnapshotCorrupt`] with the failed check.
    pub fn snapshot(detail: impl Into<String>) -> Self {
        TgError::SnapshotCorrupt { detail: detail.into() }
    }

    /// Builds a [`TgError::ShapeMismatch`] for `context`.
    // alloc-ok: error constructors run only on the failure path; the formatted strings are the payload
    pub fn shape(
        context: impl Into<String>,
        expected: impl fmt::Display,
        found: impl fmt::Display,
    ) -> Self {
        TgError::ShapeMismatch {
            context: context.into(),
            expected: expected.to_string(),
            found: found.to_string(),
        }
    }
}

impl fmt::Display for TgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TgError::Io(e) => write!(f, "I/O error: {e}"),
            TgError::Parse { file, line, field, message } => {
                write!(f, "{file}:{line}: bad `{field}` field: {message}")
            }
            TgError::SnapshotCorrupt { detail } => {
                write!(f, "corrupt snapshot: {detail}")
            }
            TgError::InvalidConfig(msg) => write!(f, "invalid configuration: {msg}"),
            TgError::ShapeMismatch { context, expected, found } => {
                write!(f, "{context}: shape mismatch: expected {expected}, found {found}")
            }
            TgError::InvalidArgument(msg) => write!(f, "invalid argument: {msg}"),
            TgError::Overloaded { capacity } => {
                write!(f, "overloaded: serving queue full at capacity {capacity}")
            }
            TgError::DeadlineExceeded => write!(f, "deadline exceeded before completion"),
        }
    }
}

impl std::error::Error for TgError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TgError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for TgError {
    fn from(e: std::io::Error) -> Self {
        TgError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_carries_position_context() {
        let e = TgError::parse("data/wiki.csv", 17, "time", "not a float: \"abc\"");
        assert_eq!(
            e.to_string(),
            "data/wiki.csv:17: bad `time` field: not a float: \"abc\""
        );
    }

    #[test]
    fn io_errors_convert_and_chain() {
        let io = std::io::Error::new(std::io::ErrorKind::NotFound, "no such file");
        let e: TgError = io.into();
        assert!(e.to_string().contains("no such file"));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn serving_errors_are_descriptive() {
        let e = TgError::Overloaded { capacity: 128 };
        assert!(e.to_string().contains("capacity 128"));
        assert!(TgError::DeadlineExceeded.to_string().contains("deadline"));
    }

    #[test]
    fn shape_mismatch_is_descriptive() {
        let e = TgError::shape("EmbedCache::store", "(3, 64)", "(3, 32)");
        assert!(e.to_string().contains("expected (3, 64), found (3, 32)"));
    }
}
