//! Property-based tests for TGOpt's reuse machinery: key injectivity, the
//! dedup filter/invert contract, cache bounds under arbitrary workloads,
//! and the precomputed time window's exactness.

use proptest::prelude::*;
use std::collections::HashSet;
use tg_tensor::Tensor;
use tgat::TimeEncoder;
use tgopt::dedup::{dedup_filter, dedup_invert};
use tgopt::hash::{pack_key, unpack_key};
use tgopt::{EmbedCache, TimeCache};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn pack_key_is_injective(pairs in proptest::collection::vec((any::<u32>(), -1e9f32..1e9), 1..200)) {
        let mut seen: HashSet<u64> = HashSet::new();
        let mut distinct: HashSet<(u32, u32)> = HashSet::new();
        for (n, t) in pairs {
            let key = pack_key(n, t);
            let fresh = distinct.insert((n, t.to_bits()));
            prop_assert_eq!(seen.insert(key), fresh, "key collision or false duplicate");
            let (n2, t2) = unpack_key(key);
            prop_assert_eq!(n, n2);
            prop_assert_eq!(t.to_bits(), t2.to_bits());
        }
    }

    #[test]
    fn dedup_roundtrip_reconstructs_batch(
        raw in proptest::collection::vec((0u32..40, 0u32..20), 1..300),
    ) {
        let ns: Vec<u32> = raw.iter().map(|&(n, _)| n).collect();
        let ts: Vec<f32> = raw.iter().map(|&(_, t)| t as f32).collect();
        let r = dedup_filter(&ns, &ts);
        // Unique list has no duplicates.
        let mut seen = HashSet::new();
        for (&n, &t) in r.ns.iter().zip(&r.ts) {
            prop_assert!(seen.insert(pack_key(n, t)), "unique list contains a duplicate");
        }
        // Inverse index reconstructs the original arrays exactly.
        for (i, &idx) in r.inv_idx.iter().enumerate() {
            prop_assert_eq!(r.ns[idx as usize], ns[i]);
            prop_assert_eq!(r.ts[idx as usize].to_bits(), ts[i].to_bits());
        }
        // dedup_invert expands a marker tensor back to the batch layout.
        let marker = Tensor::from_vec(
            r.ns.len(),
            1,
            (0..r.ns.len()).map(|i| i as f32).collect(),
        );
        let full = dedup_invert(&marker, &r.inv_idx);
        for (i, &idx) in r.inv_idx.iter().enumerate() {
            prop_assert_eq!(full.get(i, 0), idx as f32);
        }
        // Counting: unique + removed = total.
        prop_assert_eq!(
            r.ns.len() + (ns.len() - r.num_unique()),
            ns.len()
        );
    }

    #[test]
    fn cache_is_a_correct_bounded_map(
        ops in proptest::collection::vec((0u32..60, 0u32..8, any::<bool>()), 1..150),
        limit in 1usize..40,
    ) {
        // Model the cache against an exact FIFO oracle: re-storing a live
        // key overwrites in place (keeping its original queue position);
        // a fresh insertion may evict the oldest live entry.
        let cache = EmbedCache::new(limit, 2);
        let mut fifo: Vec<u64> = Vec::new();
        for (n, t, is_store) in ops {
            let key = pack_key(n, t as f32);
            if is_store {
                let val = Tensor::from_vec(1, 2, vec![n as f32, t as f32]);
                cache.store(&[key], &val, false).unwrap();
                if !fifo.contains(&key) {
                    if fifo.len() == limit {
                        fifo.remove(0);
                    }
                    fifo.push(key);
                }
                prop_assert!(cache.len() <= limit);
                prop_assert_eq!(cache.len(), fifo.len());
            } else {
                let mut out = Tensor::zeros(1, 2);
                let hit = cache.lookup(&[key], &mut out, false).unwrap()[0];
                prop_assert_eq!(hit, fifo.contains(&key), "cache disagrees with FIFO oracle");
                if hit {
                    // Whatever is returned must be the value stored for key.
                    prop_assert_eq!(out.get(0, 0), n as f32);
                    prop_assert_eq!(out.get(0, 1), t as f32);
                }
            }
        }
    }

    #[test]
    fn time_window_exactly_matches_direct_encoding(
        dts in proptest::collection::vec(-100.0f32..20000.0, 1..200),
        window in 1usize..2000,
        dim in 1usize..16,
    ) {
        let enc = TimeEncoder::random(dim, 11);
        let mut tc = TimeCache::precompute(&enc, window);
        // Mix integral and fractional deltas.
        let dts: Vec<f32> = dts.iter().enumerate()
            .map(|(i, &d)| if i % 2 == 0 { d.round() } else { d })
            .collect();
        let cached = tc.encode(&enc, &dts);
        let direct = enc.encode(&dts);
        prop_assert!(cached.max_abs_diff(&direct) < 1e-6);
        prop_assert_eq!(tc.hits() + tc.misses(), dts.len() as u64);
    }

    #[test]
    fn invalidation_is_exhaustive(
        entries in proptest::collection::vec((0u32..10, 0u32..50), 1..100),
        victim in 0u32..10,
    ) {
        let cache = EmbedCache::new(10_000, 1);
        for &(n, t) in &entries {
            cache.store(&[pack_key(n, t as f32)], &Tensor::zeros(1, 1), false).unwrap();
        }
        let expected: HashSet<u64> = entries
            .iter()
            .filter(|&&(n, _)| n == victim)
            .map(|&(n, t)| pack_key(n, t as f32))
            .collect();
        let removed = cache.invalidate_node(victim);
        prop_assert_eq!(removed, expected.len());
        for key in expected {
            let mut out = Tensor::zeros(1, 1);
            prop_assert!(!cache.lookup(&[key], &mut out, false).unwrap()[0]);
        }
    }
}
