//! The embedding memoization cache (§4.2, Algorithm 3).
//!
//! A sharded concurrent hash table maps the collision-free `(node, time)`
//! key to a cached embedding row. Capacity is bounded by an item limit
//! (paper default 2M ≈ <1 GiB at 100 dims) with FIFO eviction. Lookups can
//! be parallelized across keys (the paper parallelizes `CacheLookup` on both
//! machines and `CacheStore` only on the GPU host, §5.1.3 — both are
//! configurable here).

use crate::hash::unpack_key;
use parking_lot::{Mutex, RwLock};
use rayon::prelude::*;
use rustc_hash::FxHashMap;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use tg_error::TgError;
use tg_graph::{NodeId, Time};
use tg_tensor::Tensor;

const NUM_SHARDS: usize = 16;

/// Sharded, size-limited embedding cache with FIFO eviction.
///
/// ```
/// use tgopt::{EmbedCache, pack_key};
/// use tg_tensor::Tensor;
///
/// let cache = EmbedCache::new(1000, 2);
/// let keys = [pack_key(7, 3.0)];
/// cache.store(&keys, &Tensor::from_vec(1, 2, vec![0.5, -0.5]), false).unwrap();
///
/// let mut out = Tensor::zeros(2, 2);
/// let hits = cache.lookup(&[pack_key(7, 3.0), pack_key(8, 3.0)], &mut out, false).unwrap();
/// assert_eq!(hits, vec![true, false]);
/// assert_eq!(out.row(0), &[0.5, -0.5]);
/// ```
pub struct EmbedCache {
    shards: Vec<RwLock<FxHashMap<u64, Entry>>>,
    /// Insertion order across all shards, for FIFO eviction.
    fifo: Mutex<FifoState>,
    count: AtomicUsize,
    limit: usize,
    dim: usize,
    lookups: AtomicU64,
    hits: AtomicU64,
    stores: AtomicU64,
    evictions: AtomicU64,
    /// Fresh keys actually inserted (a subset of `stores`, which counts
    /// attempted rows). Every inserted entry leaves the cache through
    /// exactly one of eviction, invalidation, or residency, giving the
    /// accounting identity `inserted == evictions + invalidated + len()`
    /// at quiescence (asserted by `tests/streaming_stress.rs`).
    inserted: AtomicU64,
    /// Entries removed by `invalidate_node`, the targeted
    /// `invalidate_node_entries_if` / `invalidate_time_after` /
    /// `invalidate_constraints_after` sweeps, or `clear`.
    invalidated: AtomicU64,
    /// Rows silently dropped at admission because a single `store` call
    /// exceeded the whole item limit (the oldest rows of that call). These
    /// never reach a shard and are *not* counted in `stores`.
    store_dropped: AtomicU64,
}

/// A cached embedding row plus its recorded invalidation constraint.
struct Entry {
    row: Box<[f32]>,
    /// Temporal-subgraph fingerprint: packed `(node, time)` pairs whose
    /// most-recent-`k` windows this embedding's computation sampled (the
    /// entry's own `(node, time)` plus every interior pair of its recursive
    /// frontier). An appended edge can change the embedding only by
    /// entering one of these windows. Empty means "unrecorded" (layer-1
    /// entries, which have a closed-form staleness rule, and warm-restored
    /// entries): such entries take the conservative sweep path.
    constraint: Box<[u64]>,
}

/// FIFO queue plus per-key slot counts. Re-storing a key after its entry
/// was invalidated leaves the old (stale) queue slot behind and appends a
/// fresh one; the count lets eviction and export treat only the *newest*
/// slot of a key as owning the live entry.
struct FifoState {
    queue: VecDeque<u64>,
    /// Number of queue slots currently held per key (absent == 0).
    slots: FxHashMap<u64, u32>,
}

impl FifoState {
    fn push(&mut self, key: u64) {
        *self.slots.entry(key).or_insert(0) += 1;
        self.queue.push_back(key);
    }

    /// Pops the oldest slot; returns `(key, newest)` where `newest` is
    /// false when a more recent slot for the same key remains queued (the
    /// popped slot was a stale duplicate and must not touch the live entry).
    fn pop(&mut self) -> Option<(u64, bool)> {
        let key = self.queue.pop_front()?;
        let newest = match self.slots.get_mut(&key) {
            Some(c) if *c > 1 => {
                *c -= 1;
                false
            }
            Some(_) => {
                self.slots.remove(&key);
                true
            }
            // Slot accounting never under-counts queued keys; treat an
            // unknown key as sole owner rather than corrupting eviction.
            None => true,
        };
        Some((key, newest))
    }
}

#[inline]
fn shard_of(key: u64) -> usize {
    // Spread sequential node ids across shards.
    (key.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 60) as usize & (NUM_SHARDS - 1)
}

impl EmbedCache {
    /// A cache holding at most `limit` embeddings of `dim` floats each.
    ///
    /// Panics on a zero `limit` or `dim`; use [`EmbedCache::try_new`] to
    /// surface those as errors instead.
    pub fn new(limit: usize, dim: usize) -> Self {
        assert!(limit > 0, "cache limit must be positive");
        assert!(dim > 0, "embedding dimension must be positive");
        Self {
            shards: (0..NUM_SHARDS).map(|_| RwLock::new(FxHashMap::default())).collect(),
            fifo: Mutex::new(FifoState { queue: VecDeque::new(), slots: FxHashMap::default() }),
            count: AtomicUsize::new(0),
            limit,
            dim,
            lookups: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            stores: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            inserted: AtomicU64::new(0),
            invalidated: AtomicU64::new(0),
            store_dropped: AtomicU64::new(0),
        }
    }

    /// Like [`EmbedCache::new`] but rejects a zero `limit` or `dim` with a
    /// typed error instead of panicking; preferred when the capacity comes
    /// from user configuration or a deserialized snapshot.
    pub fn try_new(limit: usize, dim: usize) -> Result<Self, TgError> {
        if limit == 0 {
            return Err(TgError::InvalidArgument("cache limit must be positive".into()));
        }
        if dim == 0 {
            return Err(TgError::InvalidArgument(
                "embedding dimension must be positive".into(),
            ));
        }
        Ok(Self::new(limit, dim))
    }

    /// `CacheLookup`: fills rows of `out` for hit keys and returns the hit
    /// mask. Missing rows are untouched (the engine fills them after
    /// recomputation), avoiding an intermediate tensor exactly as §4.2.2
    /// describes. Errors if `out` is not `[keys.len(), dim]`.
    ///
    /// # Invariants
    ///
    /// - `out` retains its previous contents in every row whose key missed.
    /// - The hit/lookup counters grow by exactly `keys.len()` attempted and
    ///   `mask.count_ones()` hit; no map or FIFO state changes.
    /// - Sequential and parallel modes produce identical masks and rows.
    pub fn lookup(&self, keys: &[u64], out: &mut Tensor, parallel: bool) -> Result<Vec<bool>, TgError> { // alloc-ok: the hit mask is the return value; embedding rows land in the caller's scratch tensor
        if out.shape() != (keys.len(), self.dim) {
            return Err(TgError::shape(
                "EmbedCache::lookup output",
                format_args!("({}, {})", keys.len(), self.dim),
                format_args!("{:?}", out.shape()),
            ));
        }
        self.lookups.fetch_add(keys.len() as u64, Ordering::Relaxed);
        let dim = self.dim;
        let mut mask = vec![false; keys.len()];
        let fetch = |key: u64, row: &mut [f32], hit: &mut bool| {
            let shard = self.shards[shard_of(key)].read();
            if let Some(v) = shard.get(&key) {
                row.copy_from_slice(&v.row);
                *hit = true;
            }
        };
        if parallel && keys.len() >= 256 {
            out.as_mut_slice()
                .par_chunks_mut(dim)
                .zip(mask.par_iter_mut())
                .zip(keys.par_iter())
                .for_each(|((row, hit), &key)| fetch(key, row, hit));
        } else {
            for ((row, hit), &key) in
                out.as_mut_slice().chunks_mut(dim).zip(mask.iter_mut()).zip(keys)
            {
                fetch(key, row, hit);
            }
        }
        let n_hits = mask.iter().filter(|&&h| h).count() as u64;
        self.hits.fetch_add(n_hits, Ordering::Relaxed);
        Ok(mask)
    }

    /// `CacheStore` (Algorithm 3): evicts FIFO-oldest entries if the new
    /// rows would exceed the limit, then inserts row `i` of `h` under
    /// `keys[i]`. Errors if `h` is not `[keys.len(), dim]`.
    ///
    /// # Invariants
    ///
    /// - `len() <= limit()` holds on return, even under concurrent stores
    ///   (a corrective eviction runs after the FIFO append).
    /// - Re-storing an existing key overwrites in place without growing the
    ///   FIFO, so `len()` only counts distinct live keys.
    /// - Every key newly inserted by this call is appended to the FIFO
    ///   exactly once, after all older entries; a key re-stored after
    ///   invalidation supersedes its stale queue slot (the entry's FIFO age
    ///   restarts from this call).
    /// - The `stores` counter grows by the number of *admitted* rows only;
    ///   rows dropped because this one call exceeds the whole limit are
    ///   counted in [`EmbedCache::total_store_dropped`] instead.
    pub fn store(&self, keys: &[u64], h: &Tensor, parallel: bool) -> Result<(), TgError> {
        self.store_impl(keys, h, None, parallel)
    }

    /// Like [`EmbedCache::store`] but records `constraints[i]` — the
    /// temporal-subgraph fingerprint, sorted packed `(node, time)` pairs —
    /// beside row `i`, for constraint-tracked invalidation via
    /// [`EmbedCache::invalidate_constraints_after`]. Errors if
    /// `constraints.len() != keys.len()`.
    ///
    /// # Invariants
    ///
    /// - Same capacity/FIFO/counter behavior as [`EmbedCache::store`].
    /// - Row `i` and `constraints[i]` are installed atomically under one
    ///   shard lock; an overwrite replaces both.
    pub fn store_with_constraints(
        &self,
        keys: &[u64],
        h: &Tensor,
        constraints: Vec<Box<[u64]>>,
        parallel: bool,
    ) -> Result<(), TgError> {
        if constraints.len() != keys.len() {
            return Err(TgError::shape(
                "EmbedCache::store_with_constraints constraints",
                format_args!("{}", keys.len()),
                format_args!("{}", constraints.len()),
            ));
        }
        self.store_impl(keys, h, Some(constraints), parallel)
    }

    fn store_impl( // alloc-ok: cache admission must copy the rows it will own; the fresh-key list is bounded by the batch
        &self,
        keys: &[u64],
        h: &Tensor,
        mut constraints: Option<Vec<Box<[u64]>>>,
        parallel: bool,
    ) -> Result<(), TgError> {
        if h.shape() != (keys.len(), self.dim) {
            return Err(TgError::shape(
                "EmbedCache::store input",
                format_args!("({}, {})", keys.len(), self.dim),
                format_args!("{:?}", h.shape()),
            ));
        }
        if keys.is_empty() {
            return Ok(());
        }
        let incoming = keys.len().min(self.limit);
        // If a single store call exceeds the whole limit, keep the newest.
        let skip = keys.len() - incoming;
        if skip > 0 {
            self.store_dropped.fetch_add(skip as u64, Ordering::Relaxed);
        }
        // Only keys not already cached consume capacity: overwrites keep
        // their slot, and repeated keys within one call insert once.
        let fresh_count = {
            let mut seen = rustc_hash::FxHashSet::default();
            keys[skip..]
                .iter()
                .filter(|&&k| seen.insert(k) && !self.contains(k))
                .count()
        };
        let cur = self.count.load(Ordering::Relaxed);
        if cur + fresh_count > self.limit {
            self.evict((cur + fresh_count).saturating_sub(self.limit));
        }

        let insert_one = |key: u64, row: &[f32], constraint: Box<[u64]>| -> bool {
            let mut shard = self.shards[shard_of(key)].write();
            shard.insert(key, Entry { row: row.into(), constraint }).is_none()
        };
        // Constrained stores stay sequential so each fingerprint moves by
        // value; deep-layer miss batches are small (the parallel threshold
        // below would rarely trigger anyway).
        if parallel && constraints.is_none() && incoming >= 256 {
            let fresh: Vec<u64> = keys[skip..]
                .par_iter()
                .zip(h.as_slice()[skip * self.dim..].par_chunks(self.dim))
                .filter_map(|(&key, row)| insert_one(key, row, Box::default()).then_some(key))
                .collect();
            self.finish_store(fresh, incoming);
        } else {
            let mut fresh = Vec::with_capacity(incoming);
            for (j, (&key, row)) in keys[skip..]
                .iter()
                .zip(h.as_slice()[skip * self.dim..].chunks(self.dim))
                .enumerate()
            {
                let constraint = match constraints.as_mut() {
                    Some(v) => std::mem::take(&mut v[skip + j]),
                    None => Box::default(),
                };
                if insert_one(key, row, constraint) {
                    fresh.push(key);
                }
            }
            self.finish_store(fresh, incoming);
        }
        Ok(())
    }

    fn finish_store(&self, fresh: Vec<u64>, admitted: usize) {
        self.stores.fetch_add(admitted as u64, Ordering::Relaxed);
        debug_assert!(
            fresh.len() <= admitted,
            "inserted {} fresh keys out of {admitted} admitted",
            fresh.len()
        );
        if fresh.is_empty() {
            return;
        }
        self.inserted.fetch_add(fresh.len() as u64, Ordering::Relaxed);
        self.count.fetch_add(fresh.len(), Ordering::Relaxed);
        {
            let mut fifo = self.fifo.lock();
            for &key in &fresh {
                fifo.push(key); // alloc-ok: FIFO admission grows the queue and slot map by the fresh keys just inserted — bounded by the batch
            }
        }
        // Concurrent stores may each have passed the pre-insert capacity
        // check; a corrective eviction keeps the limit a hard bound.
        let over = self.count.load(Ordering::Relaxed).saturating_sub(self.limit);
        if over > 0 {
            self.evict(over);
        }
        debug_assert!(
            self.count.load(Ordering::Relaxed) <= self.limit,
            "cache count {} exceeds limit {} after corrective eviction",
            self.count.load(Ordering::Relaxed),
            self.limit
        );
    }

    /// True if `key` is currently cached.
    pub fn contains(&self, key: u64) -> bool {
        self.shards[shard_of(key)].read().contains_key(&key)
    }

    /// Snapshot of all live entries in FIFO (oldest-first) order, for
    /// persistence. Stale queue slots (invalidated entries) are skipped,
    /// and a key re-stored after invalidation is emitted exactly once, at
    /// its *newest* slot position — never as a duplicate row.
    pub fn export_fifo_order(&self) -> Vec<(u64, Box<[f32]>)> {
        let fifo = self.fifo.lock();
        let mut remaining = fifo.slots.clone();
        let mut out = Vec::with_capacity(self.len());
        for &key in fifo.queue.iter() {
            let last = match remaining.get_mut(&key) {
                Some(c) => {
                    *c -= 1;
                    *c == 0
                }
                None => true,
            };
            if !last {
                continue; // an older duplicate slot; emit at the newest one
            }
            if let Some(e) = self.shards[shard_of(key)].read().get(&key) {
                out.push((key, e.row.clone()));
            }
        }
        out
    }

    /// Removes the `n` oldest entries.
    fn evict(&self, n: usize) {
        let mut fifo = self.fifo.lock();
        let mut removed = 0usize;
        // Stale FIFO entries (already invalidated) don't free capacity, so
        // keep popping until n live entries are gone.
        while removed < n {
            let Some((key, newest)) = fifo.pop() else { break };
            if !newest {
                // A superseded slot from before the key was invalidated and
                // re-stored: the live entry belongs to a newer slot and must
                // not be evicted as if it were this old.
                continue;
            }
            let mut shard = self.shards[shard_of(key)].write();
            if shard.remove(&key).is_some() {
                removed += 1;
            }
        }
        if removed > 0 {
            self.count.fetch_sub(removed, Ordering::Relaxed);
            self.evictions.fetch_add(removed as u64, Ordering::Relaxed);
        }
    }

    /// Drops every cached embedding of `node` (future-work §7: graph change
    /// events such as node-feature updates or edge deletion invalidate the
    /// node's embeddings). Returns how many entries were removed.
    ///
    /// # Invariants
    ///
    /// - After return, no key unpacking to `node` is live in any shard.
    /// - FIFO slots for removed keys go stale rather than being excised;
    ///   eviction skips them without counting them as live removals.
    /// - `len()` decreases by exactly the returned count.
    pub fn invalidate_node(&self, node: NodeId) -> usize {
        let (removed, _) = self.invalidate_node_entries_if(node, |_| true);
        removed
    }

    /// Targeted invalidation: drops only the entries of `node` whose
    /// cached time `t` satisfies `stale(t)` — the streaming-ingest
    /// replacement for the [`EmbedCache::invalidate_node`] sledgehammer
    /// (an appended edge at `te` can only enter the most-recent-`k`
    /// sample of entries with `t > te` whose window it reaches; see
    /// DESIGN.md "Streaming ingest"). Returns `(removed, retained)` where
    /// `retained` counts `node`'s entries that survived the sweep.
    ///
    /// # Invariants
    ///
    /// - After return, no live key of `node` has a time passing `stale`
    ///   (entries stored concurrently are the *caller's* obligation — the
    ///   serve layer replays pending sweeps after each worker wave).
    /// - Entries of other nodes, and `node`'s non-stale entries, are
    ///   untouched and uncounted except in `retained`.
    /// - `len()` decreases by exactly `removed`; FIFO slots of removed
    ///   keys go stale and are skipped by eviction without freeing
    ///   capacity twice.
    pub fn invalidate_node_entries_if(
        &self,
        node: NodeId,
        mut stale: impl FnMut(Time) -> bool,
    ) -> (usize, usize) {
        let mut removed = 0usize;
        let mut retained = 0usize;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|&key, _| {
                let (n, t) = unpack_key(key);
                if n != node {
                    return true;
                }
                if stale(t) {
                    removed += 1;
                    false
                } else {
                    retained += 1;
                    true
                }
            });
        }
        self.finish_invalidate(removed);
        (removed, retained)
    }

    /// Conservative whole-cache sweep: drops every entry whose cached
    /// time is strictly after `te`, regardless of node. Used for cached
    /// layers `>= 2`, where an appended edge can reach an entry through
    /// multi-hop recursion and the precise per-node window rule no longer
    /// applies. Returns `(removed, retained)` over all entries.
    ///
    /// # Invariants
    ///
    /// - After return, every live entry has time `<= te` (modulo
    ///   concurrent stores, handled by the caller's replay protocol).
    /// - `len()` decreases by exactly `removed`; stale FIFO slots are
    ///   skipped lazily by eviction.
    pub fn invalidate_time_after(&self, te: Time) -> (usize, usize) {
        let mut removed = 0usize;
        let mut retained = 0usize;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|&key, _| {
                let (_, t) = unpack_key(key);
                if t > te {
                    removed += 1;
                    false
                } else {
                    retained += 1;
                    true
                }
            });
        }
        self.finish_invalidate(removed);
        (removed, retained)
    }

    /// Constraint-tracked sweep for an edge appended at time `te`: examines
    /// only entries keyed at `t > te` (all window times in an entry's
    /// subgraph are `<= t`, so entries at `t <= te` are provably
    /// unaffected) and drops an examined entry iff
    ///
    /// - it carries no fingerprint (conservative fallback, e.g. entries
    ///   restored from a persistence snapshot), or
    /// - `stale(node, time)` holds for some recorded `(node, time)` pair —
    ///   i.e. the new edge enters one of the most-recent-`k` windows the
    ///   entry's computation actually sampled.
    ///
    /// Returns `(removed, retained)` where `retained` counts only *at-risk
    /// survivors*: examined entries (`t > te`) whose fingerprint proved
    /// them fresh. This is the precision the sweep buys over the
    /// [`EmbedCache::invalidate_time_after`] sledgehammer, which removes
    /// every examined entry.
    ///
    /// # Invariants
    ///
    /// - Entries keyed at `t <= te` are untouched and uncounted.
    /// - After return, every live entry at `t > te` either had a
    ///   fingerprint with no pair passing `stale`, or was stored
    ///   concurrently (the caller's replay protocol re-runs the sweep).
    /// - `len()` decreases by exactly `removed`; stale FIFO slots are
    ///   skipped lazily by eviction, as for every other sweep.
    pub fn invalidate_constraints_after(
        &self,
        te: Time,
        mut stale: impl FnMut(NodeId, Time) -> bool,
    ) -> (usize, usize) {
        let mut removed = 0usize;
        let mut retained = 0usize;
        for shard in &self.shards {
            let mut shard = shard.write();
            shard.retain(|&key, entry| {
                let (_, t) = unpack_key(key);
                if t <= te {
                    return true;
                }
                if entry.constraint.is_empty() {
                    removed += 1;
                    return false;
                }
                let hit = entry.constraint.iter().any(|&pk| {
                    let (y, ty) = unpack_key(pk);
                    stale(y, ty)
                });
                if hit {
                    removed += 1;
                    false
                } else {
                    retained += 1;
                    true
                }
            });
        }
        self.finish_invalidate(removed);
        (removed, retained)
    }

    fn finish_invalidate(&self, removed: usize) {
        if removed > 0 {
            self.count.fetch_sub(removed, Ordering::Relaxed);
            self.invalidated.fetch_add(removed as u64, Ordering::Relaxed);
        }
        // Stale FIFO entries are skipped lazily during eviction.
    }

    /// Removes everything.
    ///
    /// # Invariants
    ///
    /// - All shards, the FIFO queue, and the live count reset together, so
    ///   `len() == 0` and `bytes_used() == 0` on return.
    /// - Lifetime counters (lookups/hits/stores/evictions) are preserved;
    ///   the dropped entries count as invalidated, keeping the
    ///   `inserted == evictions + invalidated + len()` identity intact.
    pub fn clear(&self) {
        let mut removed = 0usize;
        for shard in &self.shards {
            let mut shard = shard.write();
            removed += shard.len();
            shard.clear();
        }
        {
            let mut fifo = self.fifo.lock();
            fifo.queue.clear();
            fifo.slots.clear();
        }
        self.count.store(0, Ordering::Relaxed);
        if removed > 0 {
            self.invalidated.fetch_add(removed as u64, Ordering::Relaxed);
        }
    }

    /// Current number of cached embeddings.
    pub fn len(&self) -> usize {
        self.count.load(Ordering::Relaxed)
    }

    /// True if nothing is cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Item limit.
    pub fn limit(&self) -> usize {
        self.limit
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Approximate payload memory (embedding floats only), in bytes.
    pub fn bytes_used(&self) -> usize {
        self.len() * self.dim * std::mem::size_of::<f32>()
    }

    /// Total keys looked up.
    pub fn total_lookups(&self) -> u64 {
        self.lookups.load(Ordering::Relaxed)
    }

    /// Total lookup hits.
    pub fn total_hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Total rows admitted by `store` (rows dropped because a single call
    /// exceeded the whole limit are counted in
    /// [`EmbedCache::total_store_dropped`] instead).
    pub fn total_stores(&self) -> u64 {
        self.stores.load(Ordering::Relaxed)
    }

    /// Total rows dropped at admission because one `store` call exceeded
    /// the whole item limit.
    pub fn total_store_dropped(&self) -> u64 {
        self.store_dropped.load(Ordering::Relaxed)
    }

    /// Total evicted entries.
    pub fn total_evictions(&self) -> u64 {
        self.evictions.load(Ordering::Relaxed)
    }

    /// Total fresh keys actually inserted (distinct from
    /// [`EmbedCache::total_stores`], which counts attempted rows).
    pub fn total_inserted(&self) -> u64 {
        self.inserted.load(Ordering::Relaxed)
    }

    /// Total entries removed by invalidation sweeps (including `clear`).
    pub fn total_invalidated(&self) -> u64 {
        self.invalidated.load(Ordering::Relaxed)
    }

    /// Lifetime hit rate.
    pub fn hit_rate(&self) -> f64 {
        let l = self.total_lookups();
        if l == 0 {
            0.0
        } else {
            self.total_hits() as f64 / l as f64
        }
    }
}

/// One [`EmbedCache`] per cached model layer.
///
/// The memoization key is `(node, time)` (§4.1); embeddings of the *same*
/// target at *different layers* differ, so each cached layer gets its own
/// table — sharing one key space across layers would let a layer-1 lookup
/// return a layer-2 embedding. With the paper's configuration (2 layers,
/// last layer uncached) exactly one table exists, matching the paper's
/// single-cache design; deeper models split the item budget evenly.
pub struct LayerCaches {
    per_layer: Vec<Option<EmbedCache>>,
}

impl std::fmt::Debug for LayerCaches {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let layers: Vec<String> = self
            .per_layer
            .iter()
            .map(|c| match c {
                Some(c) => format!("EmbedCache{{len: {}, dim: {}}}", c.len(), c.dim()),
                None => "uncached".to_string(),
            })
            .collect();
        f.debug_struct("LayerCaches").field("per_layer", &layers).finish()
    }
}

impl LayerCaches {
    /// Caches for layers `1..=top` where `top = n_layers - 1` (or
    /// `n_layers` when `cache_last_layer` is set), sharing `total_limit`
    /// items between them.
    pub fn new(n_layers: usize, cache_last_layer: bool, total_limit: usize, dim: usize) -> Self {
        assert!(n_layers >= 1);
        let top = if cache_last_layer { n_layers } else { n_layers - 1 };
        let count = top; // layers 1..=top
        let per = total_limit.checked_div(count).map_or(0, |p| p.max(1));
        let per_layer: Vec<Option<EmbedCache>> = (0..=n_layers)
            .map(|l| (l >= 1 && l <= top).then(|| EmbedCache::new(per, dim)))
            .collect();
        debug_assert!(
            per_layer.iter().flatten().map(|c| c.limit()).sum::<usize>()
                <= total_limit.max(count),
            "per-layer budgets must not exceed the total item budget"
        );
        Self { per_layer }
    }

    /// Rebuilds from explicit per-layer caches (index = layer); used by the
    /// persistence module.
    pub fn from_parts(per_layer: Vec<Option<EmbedCache>>) -> Self {
        Self { per_layer }
    }

    /// Highest addressable layer index (the model's `L`).
    pub fn num_layers(&self) -> usize {
        self.per_layer.len().saturating_sub(1)
    }

    /// The cache for layer `l`, if that layer is cached.
    pub fn layer(&self, l: usize) -> Option<&EmbedCache> {
        self.per_layer.get(l).and_then(|c| c.as_ref())
    }

    fn iter(&self) -> impl Iterator<Item = &EmbedCache> {
        self.per_layer.iter().flatten()
    }

    /// Total cached embeddings across layers.
    pub fn len(&self) -> usize {
        self.iter().map(|c| c.len()).sum()
    }

    /// True if nothing is cached anywhere.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total payload bytes across layers.
    pub fn bytes_used(&self) -> usize {
        self.iter().map(|c| c.bytes_used()).sum()
    }

    /// Total evictions across layers.
    pub fn total_evictions(&self) -> u64 {
        self.iter().map(|c| c.total_evictions()).sum()
    }

    /// Total fresh insertions across layers.
    pub fn total_inserted(&self) -> u64 {
        self.iter().map(|c| c.total_inserted()).sum()
    }

    /// Total invalidated entries across layers.
    pub fn total_invalidated(&self) -> u64 {
        self.iter().map(|c| c.total_invalidated()).sum()
    }

    /// Total rows dropped at store admission across layers.
    pub fn total_store_dropped(&self) -> u64 {
        self.iter().map(|c| c.total_store_dropped()).sum()
    }

    /// Summed item limits across layers.
    pub fn limit(&self) -> usize {
        self.iter().map(|c| c.limit()).sum()
    }

    /// Embedding dimension (uniform across layers); `None` if no layer is
    /// cached.
    pub fn dim(&self) -> Option<usize> {
        self.iter().next().map(|c| c.dim())
    }

    /// Invalidates `node` in every layer; returns total removals.
    ///
    /// # Invariants
    ///
    /// - Applies [`EmbedCache::invalidate_node`] to every cached layer; no
    ///   layer is skipped, so a node never survives at a deeper layer.
    pub fn invalidate_node(&self, node: NodeId) -> usize {
        self.iter().map(|c| c.invalidate_node(node)).sum()
    }

    /// Clears every layer.
    ///
    /// # Invariants
    ///
    /// - Every cached layer is cleared; `len() == 0` on return.
    pub fn clear(&self) {
        for c in self.iter() {
            c.clear();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::pack_key;

    fn row_tensor(rows: &[&[f32]]) -> Tensor {
        let cols = rows[0].len();
        let mut data = Vec::new();
        for r in rows {
            data.extend_from_slice(r);
        }
        Tensor::from_vec(rows.len(), cols, data)
    }

    #[test]
    fn store_then_lookup_roundtrip() {
        let cache = EmbedCache::new(10, 3);
        let keys = [pack_key(1, 1.0), pack_key(2, 1.0)];
        cache.store(&keys, &row_tensor(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]), false).unwrap();
        let mut out = Tensor::zeros(3, 3);
        let mask =
            cache.lookup(&[keys[1], pack_key(9, 9.0), keys[0]], &mut out, false).unwrap();
        assert_eq!(mask, vec![true, false, true]);
        assert_eq!(out.row(0), &[4.0, 5.0, 6.0]);
        assert_eq!(out.row(1), &[0.0, 0.0, 0.0]);
        assert_eq!(out.row(2), &[1.0, 2.0, 3.0]);
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.total_hits(), 2);
        assert_eq!(cache.total_lookups(), 3);
    }

    #[test]
    fn mis_shaped_buffers_are_rejected_as_shape_mismatch() {
        // Callers dispatch on the variant (degraded-mode handling must be
        // able to tell a shape bug from an I/O failure), so assert the
        // variant itself, not just that an error came back.
        let cache = EmbedCache::new(10, 3);
        let keys = [pack_key(1, 1.0)];
        let mut narrow = Tensor::zeros(1, 2);
        let err = cache.lookup(&keys, &mut narrow, false).unwrap_err();
        assert!(matches!(err, TgError::ShapeMismatch { ref context, .. } if context.contains("lookup")));
        let err = cache.store(&keys, &Tensor::zeros(2, 3), false).unwrap_err();
        assert!(matches!(err, TgError::ShapeMismatch { ref context, .. } if context.contains("store")));
    }

    #[test]
    fn fifo_eviction_keeps_newest() {
        let cache = EmbedCache::new(3, 1);
        for i in 0..5u32 {
            cache.store(&[pack_key(i, 0.0)], &Tensor::from_vec(1, 1, vec![i as f32]), false).unwrap();
        }
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.total_evictions(), 2);
        let mut out = Tensor::zeros(5, 1);
        let keys: Vec<u64> = (0..5u32).map(|i| pack_key(i, 0.0)).collect();
        let mask = cache.lookup(&keys, &mut out, false).unwrap();
        assert_eq!(mask, vec![false, false, true, true, true]);
    }

    #[test]
    fn never_exceeds_limit() {
        let cache = EmbedCache::new(7, 2);
        for batch in 0..20u32 {
            let keys: Vec<u64> = (0..5u32).map(|i| pack_key(batch * 5 + i, 0.0)).collect();
            let h = Tensor::zeros(5, 2);
            cache.store(&keys, &h, false).unwrap();
            assert!(cache.len() <= 7, "len {} exceeds limit", cache.len());
        }
    }

    #[test]
    fn oversized_single_store_keeps_newest_rows() {
        let cache = EmbedCache::new(2, 1);
        let keys: Vec<u64> = (0..4u32).map(|i| pack_key(i, 0.0)).collect();
        let h = Tensor::from_vec(4, 1, vec![0.0, 1.0, 2.0, 3.0]);
        cache.store(&keys, &h, false).unwrap();
        assert_eq!(cache.len(), 2);
        let mut out = Tensor::zeros(4, 1);
        let mask = cache.lookup(&keys, &mut out, false).unwrap();
        assert_eq!(mask, vec![false, false, true, true]);
        assert_eq!(out.row(3), &[3.0]);
    }

    #[test]
    fn duplicate_store_overwrites_without_growth() {
        let cache = EmbedCache::new(5, 1);
        let k = [pack_key(1, 2.0)];
        cache.store(&k, &Tensor::from_vec(1, 1, vec![1.0]), false).unwrap();
        cache.store(&k, &Tensor::from_vec(1, 1, vec![9.0]), false).unwrap();
        assert_eq!(cache.len(), 1);
        let mut out = Tensor::zeros(1, 1);
        assert_eq!(cache.lookup(&k, &mut out, false).unwrap(), vec![true]);
        assert_eq!(out.get(0, 0), 9.0);
    }

    #[test]
    fn algorithm3_restore_accounting_does_not_evict_for_existing_keys() {
        // DESIGN.md's Algorithm-3 accounting case: the eviction pre-pass
        // must count only *fresh* keys against the limit — re-storing keys
        // that are already cached reuses their slots and must not push
        // anything out.
        let cache = EmbedCache::new(3, 1);
        let keys: Vec<u64> = (0..3).map(|n| pack_key(n, 1.0)).collect();
        cache.store(&keys, &row_tensor(&[&[1.0], &[2.0], &[3.0]]), false).unwrap();
        assert_eq!(cache.len(), 3);

        // Full-capacity re-store of every key: zero evictions, new values.
        cache.store(&keys, &row_tensor(&[&[10.0], &[20.0], &[30.0]]), false).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.total_evictions(), 0, "re-store must not evict");
        let mut out = Tensor::zeros(3, 1);
        assert_eq!(cache.lookup(&keys, &mut out, false).unwrap(), vec![true; 3]);
        assert_eq!(out.as_slice(), &[10.0, 20.0, 30.0]);

        // Mixed batch at capacity: two existing keys plus one fresh key
        // needs exactly one eviction (the FIFO-oldest), not three.
        let mixed = [keys[1], keys[2], pack_key(9, 9.0)];
        cache.store(&mixed, &row_tensor(&[&[21.0], &[31.0], &[91.0]]), false).unwrap();
        assert_eq!(cache.len(), 3);
        assert_eq!(cache.total_evictions(), 1, "only the fresh key needs capacity");
        assert!(!cache.contains(keys[0]), "the FIFO-oldest key makes room");
        assert!(cache.contains(mixed[2]));
    }

    #[test]
    fn parallel_and_sequential_lookup_agree() {
        let cache = EmbedCache::new(2000, 4);
        let keys: Vec<u64> = (0..1000u32).map(|i| pack_key(i, i as f32)).collect();
        let data: Vec<f32> = (0..4000).map(|i| i as f32).collect();
        cache.store(&keys, &Tensor::from_vec(1000, 4, data), true).unwrap();
        let probe: Vec<u64> = (0..1500u32).map(|i| pack_key(i, i as f32)).collect();
        let mut seq = Tensor::zeros(1500, 4);
        let mut par = Tensor::zeros(1500, 4);
        let m1 = cache.lookup(&probe, &mut seq, false).unwrap();
        let m2 = cache.lookup(&probe, &mut par, true).unwrap();
        assert_eq!(m1, m2);
        assert_eq!(seq.as_slice(), par.as_slice());
        assert_eq!(m1.iter().filter(|&&h| h).count(), 1000);
    }

    #[test]
    fn invalidate_node_removes_all_times() {
        let cache = EmbedCache::new(10, 1);
        cache.store(
            &[pack_key(1, 1.0), pack_key(1, 2.0), pack_key(2, 1.0)],
            &Tensor::zeros(3, 1),
            false,
        ).unwrap();
        assert_eq!(cache.invalidate_node(1), 2);
        assert_eq!(cache.len(), 1);
        let mut out = Tensor::zeros(3, 1);
        let mask = cache.lookup(
            &[pack_key(1, 1.0), pack_key(1, 2.0), pack_key(2, 1.0)],
            &mut out,
            false,
        ).unwrap();
        assert_eq!(mask, vec![false, false, true]);
    }

    #[test]
    fn targeted_invalidation_removes_only_matching_times() {
        let cache = EmbedCache::new(10, 1);
        let keys = [pack_key(1, 1.0), pack_key(1, 5.0), pack_key(1, 9.0), pack_key(2, 9.0)];
        cache.store(&keys, &Tensor::zeros(4, 1), false).unwrap();
        // Stale: node 1 entries with t > 4.0. Node 2 is untouched even
        // though its time matches.
        let (removed, retained) = cache.invalidate_node_entries_if(1, |t| t > 4.0);
        assert_eq!((removed, retained), (2, 1));
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(keys[0]) && cache.contains(keys[3]));
        assert!(!cache.contains(keys[1]) && !cache.contains(keys[2]));
        assert_eq!(cache.total_invalidated(), 2);
    }

    #[test]
    fn time_sweep_removes_entries_after_cutoff_for_all_nodes() {
        let cache = EmbedCache::new(10, 1);
        let keys = [pack_key(1, 1.0), pack_key(2, 5.0), pack_key(3, 9.0)];
        cache.store(&keys, &Tensor::zeros(3, 1), false).unwrap();
        let (removed, retained) = cache.invalidate_time_after(4.0);
        assert_eq!((removed, retained), (2, 1));
        assert!(cache.contains(keys[0]));
        assert!(!cache.contains(keys[1]) && !cache.contains(keys[2]));
    }

    #[test]
    fn accounting_identity_inserted_equals_evicted_plus_invalidated_plus_resident() {
        let cache = EmbedCache::new(3, 1);
        for i in 0..5u32 {
            cache.store(&[pack_key(i, i as f32)], &Tensor::zeros(1, 1), false).unwrap();
        }
        cache.invalidate_node(3);
        cache.invalidate_time_after(100.0); // removes everything left
        cache.store(&[pack_key(9, 1.0)], &Tensor::zeros(1, 1), false).unwrap();
        cache.clear(); // clear counts as invalidation
        cache.store(&[pack_key(10, 1.0)], &Tensor::zeros(1, 1), false).unwrap();
        assert_eq!(
            cache.total_inserted(),
            cache.total_evictions() + cache.total_invalidated() + cache.len() as u64,
            "inserted {} != evicted {} + invalidated {} + resident {}",
            cache.total_inserted(),
            cache.total_evictions(),
            cache.total_invalidated(),
            cache.len()
        );
    }

    #[test]
    fn eviction_skips_invalidated_entries() {
        let cache = EmbedCache::new(3, 1);
        for i in 0..3u32 {
            cache.store(&[pack_key(i, 0.0)], &Tensor::zeros(1, 1), false).unwrap();
        }
        cache.invalidate_node(0);
        assert_eq!(cache.len(), 2);
        // Storing two more must evict exactly one live entry (key 1) while
        // skipping the stale FIFO slot for key 0.
        cache.store(&[pack_key(10, 0.0), pack_key(11, 0.0)], &Tensor::zeros(2, 1), false).unwrap();
        assert!(cache.len() <= 3);
        let mut out = Tensor::zeros(1, 1);
        assert_eq!(cache.lookup(&[pack_key(11, 0.0)], &mut out, false).unwrap(), vec![true]);
    }

    #[test]
    fn oversized_store_counts_only_admitted_rows() {
        // A single call exceeding the whole limit must not inflate the
        // `stores` counter with rows it silently dropped.
        let cache = EmbedCache::new(2, 1);
        let keys: Vec<u64> = (0..4u32).map(|i| pack_key(i, 0.0)).collect();
        cache.store(&keys, &Tensor::zeros(4, 1), false).unwrap();
        assert_eq!(cache.total_stores(), 2, "only admitted rows count as stores");
        assert_eq!(cache.total_store_dropped(), 2, "dropped rows are surfaced");
        // A fitting store drops nothing.
        cache.store(&[pack_key(9, 0.0)], &Tensor::zeros(1, 1), false).unwrap();
        assert_eq!(cache.total_stores(), 3);
        assert_eq!(cache.total_store_dropped(), 2);
    }

    #[test]
    fn restore_after_invalidation_does_not_duplicate_fifo_rows() {
        let cache = EmbedCache::new(10, 1);
        let keys: Vec<u64> = (0..3u32).map(|i| pack_key(i, 1.0)).collect();
        cache.store(&keys, &row_tensor(&[&[0.0], &[1.0], &[2.0]]), false).unwrap();
        cache.invalidate_node(1);
        cache.store(&[keys[1]], &Tensor::from_vec(1, 1, vec![9.0]), false).unwrap();
        let export = cache.export_fifo_order();
        let exported: Vec<u64> = export.iter().map(|(k, _)| *k).collect();
        // Exactly once, at its re-store (newest) position.
        assert_eq!(exported, vec![keys[0], keys[2], keys[1]]);
        assert_eq!(export[2].1.as_ref(), &[9.0]);
    }

    #[test]
    fn eviction_after_restore_treats_the_entry_as_young() {
        let cache = EmbedCache::new(3, 1);
        let keys: Vec<u64> = (0..3u32).map(|i| pack_key(i, 1.0)).collect();
        cache.store(&keys, &Tensor::zeros(3, 1), false).unwrap();
        cache.invalidate_node(0);
        cache.store(&[keys[0]], &Tensor::zeros(1, 1), false).unwrap();
        // FIFO age order is now 1, 2, 0. Two more stores must evict keys 1
        // and 2 — not the re-stored key 0 via its stale front slot.
        cache.store(
            &[pack_key(10, 0.0), pack_key(11, 0.0)],
            &Tensor::zeros(2, 1),
            false,
        ).unwrap();
        assert!(cache.contains(keys[0]), "re-stored entry must survive as youngest");
        assert!(!cache.contains(keys[1]) && !cache.contains(keys[2]));
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn constraint_sweep_removes_only_entries_whose_sample_is_hit() {
        let cache = EmbedCache::new(10, 1);
        let keys = [pack_key(1, 5.0), pack_key(2, 6.0), pack_key(3, 7.0)];
        // Entry 1's subgraph read node 8's window at t=4; entry 2's read
        // node 9's at t=5; entry 3 has no fingerprint (conservative).
        let constraints = vec![
            vec![pack_key(1, 5.0), pack_key(8, 4.0)].into_boxed_slice(),
            vec![pack_key(2, 6.0), pack_key(9, 5.0)].into_boxed_slice(),
            Box::default(),
        ];
        cache.store_with_constraints(&keys, &Tensor::zeros(3, 1), constraints, false).unwrap();
        // Edge at te=4.5: only pairs with time > 4.5 can be entered; say
        // the edge lands in node 9's window but not node 1's or 2's own.
        let (removed, retained) =
            cache.invalidate_constraints_after(4.5, |n, t| t > 4.5 && n == 9);
        assert_eq!((removed, retained), (2, 1), "entry 2 (hit) and entry 3 (no fp) go");
        assert!(cache.contains(keys[0]));
        assert!(!cache.contains(keys[1]) && !cache.contains(keys[2]));
        // Entries at t <= te are never examined.
        let (removed, retained) = cache.invalidate_constraints_after(9.0, |_, _| true);
        assert_eq!((removed, retained), (0, 0));
        assert!(cache.contains(keys[0]));
    }

    #[test]
    fn plain_restore_drops_a_previous_fingerprint() {
        // Overwriting a constrained entry through the plain store path must
        // leave it conservative (empty fingerprint), not freshly guaranteed.
        let cache = EmbedCache::new(10, 1);
        let k = [pack_key(1, 5.0)];
        let fp = vec![vec![pack_key(1, 5.0)].into_boxed_slice()];
        cache.store_with_constraints(&k, &Tensor::zeros(1, 1), fp, false).unwrap();
        cache.store(&k, &Tensor::zeros(1, 1), false).unwrap();
        let (removed, _) = cache.invalidate_constraints_after(4.0, |_, _| false);
        assert_eq!(removed, 1, "fingerprint-less entry takes the conservative path");
    }

    #[test]
    fn layer_caches_default_config_has_single_table() {
        // 2 layers, last layer uncached => only layer 1 is cached, with the
        // full budget (the paper's configuration).
        let lc = LayerCaches::new(2, false, 100, 4);
        assert!(lc.layer(0).is_none(), "layer 0 is feature lookup, never cached");
        assert!(lc.layer(1).is_some());
        assert!(lc.layer(2).is_none());
        assert_eq!(lc.limit(), 100);
        assert_eq!(lc.dim(), Some(4));
        assert!(lc.is_empty());
    }

    #[test]
    fn layer_caches_split_budget_when_caching_all_layers() {
        let lc = LayerCaches::new(3, true, 90, 4);
        assert!(lc.layer(1).is_some() && lc.layer(2).is_some() && lc.layer(3).is_some());
        assert_eq!(lc.limit(), 90);
        assert_eq!(lc.layer(1).unwrap().limit(), 30);
    }

    #[test]
    fn layer_caches_same_key_different_layers_do_not_collide() {
        let lc = LayerCaches::new(2, true, 100, 1);
        let key = [pack_key(5, 3.0)];
        lc.layer(1).unwrap().store(&key, &Tensor::from_vec(1, 1, vec![1.0]), false).unwrap();
        lc.layer(2).unwrap().store(&key, &Tensor::from_vec(1, 1, vec![2.0]), false).unwrap();
        let mut o1 = Tensor::zeros(1, 1);
        let mut o2 = Tensor::zeros(1, 1);
        assert_eq!(lc.layer(1).unwrap().lookup(&key, &mut o1, false).unwrap(), vec![true]);
        assert_eq!(lc.layer(2).unwrap().lookup(&key, &mut o2, false).unwrap(), vec![true]);
        assert_eq!(o1.get(0, 0), 1.0);
        assert_eq!(o2.get(0, 0), 2.0);
        assert_eq!(lc.len(), 2);
    }

    #[test]
    fn layer_caches_aggregate_invalidation_and_clear() {
        let lc = LayerCaches::new(2, true, 100, 1);
        lc.layer(1).unwrap().store(&[pack_key(5, 1.0)], &Tensor::zeros(1, 1), false).unwrap();
        lc.layer(2).unwrap().store(&[pack_key(5, 2.0)], &Tensor::zeros(1, 1), false).unwrap();
        assert_eq!(lc.invalidate_node(5), 2);
        lc.layer(1).unwrap().store(&[pack_key(6, 1.0)], &Tensor::zeros(1, 1), false).unwrap();
        lc.clear();
        assert!(lc.is_empty());
        assert_eq!(lc.bytes_used(), 0);
    }

    #[test]
    fn single_layer_model_without_last_layer_caching_caches_nothing() {
        let lc = LayerCaches::new(1, false, 100, 4);
        assert!(lc.layer(1).is_none());
        assert_eq!(lc.dim(), None);
        assert_eq!(lc.limit(), 0);
    }

    #[test]
    fn hit_rate_is_zero_not_nan_on_fresh_cache() {
        let cache = EmbedCache::new(10, 4);
        assert_eq!(cache.total_lookups(), 0);
        assert_eq!(cache.hit_rate(), 0.0);
        assert!(!cache.hit_rate().is_nan());
        // One miss then one hit: rate becomes well-defined and exact.
        let k = [pack_key(1, 1.0)];
        let mut out = Tensor::zeros(1, 4);
        let _ = cache.lookup(&k, &mut out, false).unwrap();
        cache.store(&k, &Tensor::zeros(1, 4), false).unwrap();
        let _ = cache.lookup(&k, &mut out, false).unwrap();
        assert!((cache.hit_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn clear_and_bytes_used() {
        let cache = EmbedCache::new(10, 8);
        cache.store(&[pack_key(1, 1.0)], &Tensor::zeros(1, 8), false).unwrap();
        assert_eq!(cache.bytes_used(), 32);
        cache.clear();
        assert!(cache.is_empty());
        assert_eq!(cache.bytes_used(), 0);
    }
}
