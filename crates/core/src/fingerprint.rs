//! Temporal-subgraph fingerprints for constraint-tracked invalidation.
//!
//! Under most-recent sampling a layer-`l` embedding of `(node, t)` is a
//! pure function of the windows `W(y, t')` it recursively sampled: the
//! root's own most-recent-`k` window, the windows of those neighbors, and
//! so on down to the pairs whose output is a layer-1 embedding (depth
//! `l - 1`). Deeper pairs only contribute static features and cannot be
//! affected by an appended edge. The *fingerprint* of an entry is the set
//! of `(y, t')` pairs whose windows were sampled, packed with
//! [`crate::hash::pack_key`] and sorted; an appended edge `(src, dst, te)`
//! changes the embedding only if it enters `W(y, te < t')` for some
//! recorded pair with `y ∈ {src, dst}` — the exact check
//! [`crate::cache::EmbedCache::invalidate_constraints_after`] applies,
//! replacing the conservative whole-cache `t > te` sweep for layers ≥ 2
//! (DESIGN.md "Constraint-tracked invalidation").
//!
//! Every recorded time satisfies `t' <= t` (temporal sampling only looks
//! backward), so an entry keyed at `t <= te` can never be hit: the sweep
//! skips those without examining their fingerprints.

use crate::hash::pack_key;
use rustc_hash::FxHashSet;
use tg_graph::{HistorySource, NodeId, Time};

/// The fingerprint of one `(node, t)` target: the packed `(y, t')` pairs
/// whose most-recent-`k` windows a `levels`-deep recursive sampling from
/// the target reads — the target itself plus `levels` breadth-first
/// expansion levels (for a layer-`l` entry, `levels = l - 1`). Sorted and
/// deduplicated.
///
/// Determinism: most-recent sampling is a pure function of the history, so
/// re-walking the frontier here visits exactly the pairs the engine's
/// recursive `embed` sampled for the same target over the same source.
pub fn capture<S: HistorySource>( // alloc-ok: the fingerprint is the return value, owned by the cache entry it guards
    source: &S,
    k: usize,
    node: NodeId,
    t: Time,
    levels: usize,
) -> Box<[u64]> {
    let root = pack_key(node, t);
    let mut seen: FxHashSet<u64> = FxHashSet::default();
    seen.insert(root);
    let mut frontier = vec![(node, t)]; // alloc-ok: BFS worklist, bounded by the visited-pair count
    let mut next: Vec<(NodeId, Time)> = Vec::new(); // alloc-ok: next BFS level, same bound
    for _ in 0..levels {
        for &(n, tn) in &frontier {
            let take = source.hist_len_before(n, tn).min(k);
            if take == 0 {
                continue;
            }
            source.most_recent(n, tn, take, |_, e| {
                if seen.insert(pack_key(e.ngh, e.time)) {
                    next.push((e.ngh, e.time));
                }
            });
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
        if frontier.is_empty() {
            break;
        }
    }
    let mut pairs: Vec<u64> = seen.into_iter().collect(); // alloc-ok: materializes the visited set into the returned fingerprint
    pairs.sort_unstable();
    pairs.into_boxed_slice()
}

/// [`capture`] for a batch of targets, one fingerprint per `(ns[i], ts[i])`.
pub fn capture_many<S: HistorySource>( // alloc-ok: one fingerprint per recomputed deep-layer row, handed to the cache
    source: &S,
    k: usize,
    ns: &[NodeId],
    ts: &[Time],
    levels: usize,
) -> Vec<Box<[u64]>> {
    ns.iter()
        .zip(ts)
        .map(|(&n, &t)| capture(source, k, n, t, levels))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::unpack_key;
    use tg_graph::{EdgeStream, TemporalGraph};

    fn graph() -> TemporalGraph {
        // 0-1@1, 0-2@2, 1-2@3, 2-3@4, 0-3@5
        let stream = EdgeStream::new(
            &[0, 0, 1, 2, 0],
            &[1, 2, 2, 3, 3],
            &[1.0, 2.0, 3.0, 4.0, 5.0],
        );
        TemporalGraph::from_stream(&stream)
    }

    #[test]
    fn zero_levels_is_just_the_root() {
        let g = graph();
        let fp = capture(&g, 10, 0, 6.0, 0);
        assert_eq!(fp.as_ref(), &[pack_key(0, 6.0)]);
    }

    #[test]
    fn one_level_is_root_plus_its_window() {
        let g = graph();
        // Node 0's history before t=6: (1@1), (2@2), (3@5); with k=2 the
        // most-recent window keeps (2@2) and (3@5).
        let fp = capture(&g, 2, 0, 6.0, 1);
        let mut want = vec![pack_key(0, 6.0), pack_key(2, 2.0), pack_key(3, 5.0)];
        want.sort_unstable();
        assert_eq!(fp.as_ref(), want.as_slice());
    }

    #[test]
    fn fingerprints_are_sorted_deduped_and_time_bounded() {
        let g = graph();
        let fp = capture(&g, 10, 2, 5.0, 2);
        let mut sorted = fp.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(fp.as_ref(), sorted.as_slice());
        let (_, root_t) = unpack_key(pack_key(2, 5.0));
        for &pk in fp.iter() {
            let (_, t) = unpack_key(pk);
            assert!(t <= root_t, "sampling only looks backward in time");
        }
    }

    #[test]
    fn isolated_node_has_a_root_only_fingerprint() {
        let g = graph();
        let fp = capture(&g, 10, 3, 1.0, 3);
        assert_eq!(fp.as_ref(), &[pack_key(3, 1.0)]);
    }

    #[test]
    fn capture_many_matches_capture_per_target() {
        let g = graph();
        let ns = [0, 1, 2];
        let ts = [6.0, 4.0, 5.0];
        let many = capture_many(&g, 2, &ns, &ts, 1);
        for (i, fp) in many.iter().enumerate() {
            assert_eq!(fp.as_ref(), capture(&g, 2, ns[i], ts[i], 1).as_ref());
        }
    }
}
