//! Cache persistence: snapshot the embedding caches to disk and restore
//! them on startup, so a redeployed inference server starts warm instead of
//! re-paying the Figure 7 ramp-up.
//!
//! Format (little-endian, version-tagged):
//!
//! ```text
//! magic "TGOC" | version u32 | n_layers u32
//! per layer: present u8 | limit u64 | dim u32 | count u64
//!            count x (key u64, dim x f32)   -- in FIFO (eviction) order
//! ```
//!
//! Entries are written oldest-first so the restored FIFO evicts in the same
//! order the original would have.

use crate::cache::{EmbedCache, LayerCaches};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::io::{Read, Write};
use std::path::Path;
use tg_error::TgError;

const MAGIC: &[u8; 4] = b"TGOC";
const VERSION: u32 = 1;

fn bad(msg: impl Into<String>) -> TgError {
    TgError::snapshot(msg)
}

/// Serializes the caches into a byte buffer.
pub fn to_bytes(caches: &LayerCaches) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    let n_layers = caches.num_layers();
    buf.put_u32_le(n_layers as u32); // lint: allow(lossy-cast, layer counts are tiny)
    for l in 0..=n_layers {
        match caches.layer(l) {
            None => buf.put_u8(0),
            Some(cache) => {
                buf.put_u8(1);
                buf.put_u64_le(cache.limit() as u64);
                buf.put_u32_le(cache.dim() as u32); // lint: allow(lossy-cast, dims are far below 2^32)
                let entries = cache.export_fifo_order();
                buf.put_u64_le(entries.len() as u64);
                for (key, row) in entries {
                    buf.put_u64_le(key);
                    for v in row.iter() {
                        buf.put_f32_le(*v);
                    }
                }
            }
        }
    }
    buf.freeze()
}

/// Reconstructs caches from [`to_bytes`] output.
///
/// Any malformed input — bad magic, unsupported version, an inconsistent
/// header, or truncation at *any* byte offset — yields
/// [`TgError::SnapshotCorrupt`]; this function never panics on untrusted
/// bytes.
pub fn from_bytes(mut data: Bytes) -> Result<LayerCaches, TgError> {
    let need = |data: &Bytes, n: usize| -> Result<(), TgError> {
        if data.remaining() < n {
            Err(bad("truncated cache snapshot"))
        } else {
            Ok(())
        }
    };
    let to_usize = |v: u64, what: &str| -> Result<usize, TgError> {
        usize::try_from(v).map_err(|_| bad(format!("{what} {v} overflows usize")))
    };
    need(&data, 4 + 4 + 4)?;
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("not a TGOpt cache snapshot"));
    }
    let version = data.get_u32_le();
    if version != VERSION {
        return Err(bad(format!("unsupported snapshot version {version}")));
    }
    let n_layers = data.get_u32_le() as usize; // lint: allow(lossy-cast, u32 always fits in usize here)
    if n_layers > 64 {
        return Err(bad("implausible layer count"));
    }
    let mut per_layer: Vec<Option<EmbedCache>> = Vec::with_capacity(n_layers + 1);
    for _ in 0..=n_layers {
        need(&data, 1)?;
        if data.get_u8() == 0 {
            per_layer.push(None);
            continue;
        }
        need(&data, 8 + 4 + 8)?;
        let limit = to_usize(data.get_u64_le(), "cache limit")?;
        let dim = data.get_u32_le() as usize; // lint: allow(lossy-cast, u32 always fits in usize here)
        let count = to_usize(data.get_u64_le(), "entry count")?;
        if limit == 0 || dim == 0 || count > limit {
            return Err(bad("inconsistent snapshot header"));
        }
        let cache = EmbedCache::try_new(limit, dim)?;
        let mut row = vec![0.0f32; dim];
        for _ in 0..count {
            need(&data, 8 + 4 * dim)?;
            let key = data.get_u64_le();
            for v in row.iter_mut() {
                *v = data.get_f32_le();
            }
            cache.store(&[key], &tg_tensor::Tensor::from_vec(1, dim, row.clone()), false)?;
        }
        per_layer.push(Some(cache));
    }
    Ok(LayerCaches::from_parts(per_layer))
}

/// Writes a snapshot to `path`.
pub fn save(caches: &LayerCaches, path: &Path) -> Result<(), TgError> {
    let bytes = to_bytes(caches);
    let mut f = std::io::BufWriter::new(std::fs::File::create(path)?);
    f.write_all(&bytes)?;
    f.flush()?;
    Ok(())
}

/// Reads a snapshot from `path`.
///
/// I/O failures surface as [`TgError::Io`]; malformed content as
/// [`TgError::SnapshotCorrupt`].
pub fn load(path: &Path) -> Result<LayerCaches, TgError> {
    let mut f = std::fs::File::open(path)?;
    let mut data = Vec::new();
    f.read_to_end(&mut data)?;
    from_bytes(Bytes::from(data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hash::pack_key;
    use tg_tensor::Tensor;

    fn populated() -> LayerCaches {
        let lc = LayerCaches::new(3, true, 90, 2);
        for l in 1..=3usize {
            let c = lc.layer(l).unwrap();
            for i in 0..5u32 {
                c.store(
                    &[pack_key(i, l as f32)],
                    &Tensor::from_vec(1, 2, vec![i as f32, l as f32]),
                    false,
                )
                .unwrap();
            }
        }
        lc
    }

    #[test]
    fn roundtrip_preserves_entries_and_structure() {
        let lc = populated();
        let restored = from_bytes(to_bytes(&lc)).unwrap();
        assert_eq!(restored.len(), lc.len());
        assert_eq!(restored.limit(), lc.limit());
        assert_eq!(restored.dim(), lc.dim());
        for l in 1..=3usize {
            let c = restored.layer(l).unwrap();
            for i in 0..5u32 {
                let mut out = Tensor::zeros(1, 2);
                assert_eq!(c.lookup(&[pack_key(i, l as f32)], &mut out, false).unwrap(), vec![true]);
                assert_eq!(out.as_slice(), &[i as f32, l as f32]);
            }
        }
        assert!(restored.layer(0).is_none());
    }

    #[test]
    fn roundtrip_preserves_fifo_eviction_order() {
        let lc = LayerCaches::new(2, false, 3, 1);
        let c = lc.layer(1).unwrap();
        for i in 0..3u32 {
            c.store(&[pack_key(i, 0.0)], &Tensor::from_vec(1, 1, vec![i as f32]), false).unwrap();
        }
        let restored = from_bytes(to_bytes(&lc)).unwrap();
        let rc = restored.layer(1).unwrap();
        // Inserting one more must evict key 0 (the oldest), not key 2.
        rc.store(&[pack_key(9, 0.0)], &Tensor::zeros(1, 1), false).unwrap();
        let mut out = Tensor::zeros(1, 1);
        assert_eq!(rc.lookup(&[pack_key(0, 0.0)], &mut out, false).unwrap(), vec![false]);
        assert_eq!(rc.lookup(&[pack_key(2, 0.0)], &mut out, false).unwrap(), vec![true]);
    }

    #[test]
    fn file_roundtrip() {
        let lc = populated();
        let path = std::env::temp_dir().join(format!("tgoc-{}.bin", std::process::id()));
        save(&lc, &path).unwrap();
        let restored = load(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(restored.len(), lc.len());
    }

    #[test]
    fn rejects_garbage() {
        let corrupt = |b: Bytes| {
            let err = from_bytes(b).unwrap_err();
            assert!(
                matches!(err, TgError::SnapshotCorrupt { .. }),
                "expected SnapshotCorrupt, got: {err}"
            );
        };
        corrupt(Bytes::from_static(b""));
        corrupt(Bytes::from_static(b"NOPExxxxxxxxxxxxx"));
        // Valid magic, wrong version.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(999);
        buf.put_u32_le(2);
        corrupt(buf.freeze());
        // Truncated after a valid header.
        let mut buf = BytesMut::new();
        buf.put_slice(MAGIC);
        buf.put_u32_le(VERSION);
        buf.put_u32_le(2);
        buf.put_u8(1);
        buf.put_u64_le(10);
        buf.put_u32_le(4);
        buf.put_u64_le(3); // claims 3 entries, provides none
        corrupt(buf.freeze());
    }

    #[test]
    fn truncation_at_every_length_errors_never_panics() {
        // Round-trip fuzz: a valid snapshot cut at *every* possible byte
        // boundary must produce a typed SnapshotCorrupt — never a panic and
        // never a silently-short cache.
        let full: Vec<u8> = to_bytes(&populated()).as_ref().to_vec();
        for n in 0..full.len() {
            let err = from_bytes(Bytes::from(full[..n].to_vec())).unwrap_err();
            assert!(
                matches!(err, TgError::SnapshotCorrupt { .. }),
                "cut at {n}/{} bytes: expected SnapshotCorrupt, got: {err}",
                full.len()
            );
        }
        // The uncut buffer still parses.
        assert_eq!(from_bytes(Bytes::from(full)).unwrap().len(), populated().len());
    }

    #[test]
    fn missing_snapshot_file_is_io_not_corrupt() {
        let err = load(Path::new("/nonexistent/tgopt-cache.bin")).unwrap_err();
        assert!(matches!(err, TgError::Io(_)), "expected Io, got: {err}");
    }
}
