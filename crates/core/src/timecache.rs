//! Precomputed time encodings (§4.3).
//!
//! Unlike the 128-interval lookup table of prior work, TGOpt precomputes a
//! contiguous window of deltas starting at 0, so an integral `dt` is itself
//! the index into a dense table — no searching. Misses (deltas outside the
//! window or non-integral) fall back to the original `Phi` computation.
//! `Phi(0)`, used for every target (Eq. 4), is computed once ahead of time.

use tg_tensor::Tensor;
use tgat::TimeEncoder;

/// Dense precomputed window of time-encoding vectors.
///
/// ```
/// use tgopt::TimeCache;
/// use tgat::TimeEncoder;
///
/// let encoder = TimeEncoder::new(8);
/// let mut cache = TimeCache::precompute(&encoder, 100);
/// // Integral deltas inside the window are served from the table ...
/// let out = cache.encode(&encoder, &[0.0, 42.0, 250.0]);
/// assert_eq!(cache.hits(), 2);
/// assert_eq!(cache.misses(), 1); // 250 lies outside the window
/// // ... and are bit-identical to the direct computation.
/// assert_eq!(out.as_slice(), encoder.encode(&[0.0, 42.0, 250.0]).as_slice());
/// ```
#[derive(Clone, Debug)]
pub struct TimeCache {
    /// Row `i` holds `Phi(i)`.
    table: Tensor,
    /// `Phi(0)`, kept separately for the broadcast fast path.
    zero_row: Vec<f32>,
    hits: u64,
    misses: u64,
}

impl TimeCache {
    /// Precomputes `Phi(dt)` for `dt` in `0..window` (paper default 10,000).
    pub fn precompute(encoder: &TimeEncoder, window: usize) -> Self {
        assert!(window > 0, "time window must be positive");
        let dts: Vec<f32> = (0..window).map(|i| i as f32).collect(); // lint: allow(lossy-cast, window deltas stay far below 2^24, exact in f32)
        let table = encoder.encode(&dts);
        let zero_row = table.row(0).to_vec();
        Self { table, zero_row, hits: 0, misses: 0 }
    }

    /// Window length.
    pub fn window(&self) -> usize {
        self.table.rows()
    }

    /// Encoding dimension.
    pub fn dim(&self) -> usize {
        self.table.cols()
    }

    /// Encodes a batch of deltas, copying precomputed rows on hits and
    /// falling back to `encoder` for the misses (computed as one batch).
    ///
    /// # Invariants
    ///
    /// - The table and the `Phi(0)` row are immutable after
    ///   [`TimeCache::precompute`]; only the hit/miss counters change.
    /// - `hits() + misses()` grows by exactly `dts.len()`.
    /// - Every output row is bit-identical to `encoder.encode` of its delta.
    pub fn encode(&mut self, encoder: &TimeEncoder, dts: &[f32]) -> Tensor { // alloc-ok: allocating convenience wrapper; the hot path calls encode_into with a scratch destination
        let mut out = Tensor::zeros(dts.len(), self.dim());
        self.encode_into(encoder, dts, &mut out);
        out
    }

    /// Like [`TimeCache::encode`], but writes into a caller-provided
    /// (typically scratch-backed) destination instead of allocating — the
    /// engine's zero-alloc steady-state path. Every row of `out` is
    /// overwritten; `out` must have shape `(dts.len(), dim())`.
    ///
    /// # Invariants
    ///
    /// - Same as [`TimeCache::encode`]: the table is immutable, only the
    ///   hit/miss counters change, and `hits() + misses()` grows by
    ///   exactly `dts.len()`.
    /// - Allocation-free when every delta hits the window (misses batch
    ///   one `encoder.encode` fallback).
    pub fn encode_into(&mut self, encoder: &TimeEncoder, dts: &[f32], out: &mut Tensor) {
        let d = self.dim();
        let window = self.window();
        assert_eq!(out.shape(), (dts.len(), d), "time-encode destination shape mismatch");
        let mut miss_rows: Vec<usize> = Vec::new(); // alloc-ok: miss bookkeeping stays empty while deltas hit the precomputed window
        let mut miss_dts: Vec<f32> = Vec::new(); // alloc-ok: miss deltas batched into one fallback encode; empty on the all-hit path
        for (r, &dt) in dts.iter().enumerate() {
            let idx = dt as usize; // lint: allow(lossy-cast, used only when dt is a non-negative integer below window)
            // Hit iff dt is a non-negative integer inside the window.
            if dt >= 0.0 && dt.fract() == 0.0 && idx < window {
                out.row_mut(r).copy_from_slice(self.table.row(idx));
                self.hits += 1;
            } else {
                miss_rows.push(r); // alloc-ok: grows only on cache misses
                miss_dts.push(dt); // alloc-ok: grows only on cache misses
                self.misses += 1;
            }
        }
        if !miss_rows.is_empty() {
            let computed = encoder.encode(&miss_dts);
            for (i, &r) in miss_rows.iter().enumerate() {
                out.row_mut(r).copy_from_slice(computed.row(i));
            }
        }
    }

    /// `Phi(0)` broadcast over `n` rows, from the precomputed row.
    pub fn encode_zeros(&self, n: usize) -> Tensor {
        let mut out = Tensor::zeros(n, self.dim());
        self.encode_zeros_into(&mut out);
        out
    }

    /// `Phi(0)` broadcast into a caller-provided (typically scratch-backed)
    /// destination; every row of `out` is overwritten. Allocation-free.
    pub fn encode_zeros_into(&self, out: &mut Tensor) {
        debug_assert_eq!(out.cols(), self.dim(), "Phi(0) destination width mismatch");
        for r in 0..out.rows() {
            out.row_mut(r).copy_from_slice(&self.zero_row);
        }
    }

    /// Window hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Window miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of deltas served from the window.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// Lazily populated hash-table time cache — the ablation alternative to the
/// dense window.
///
/// Where [`TimeCache`] precomputes a contiguous integer window (O(1) lookup,
/// bounded memory, misses on non-integral or far deltas), this variant
/// memoizes *any* repeated delta by its exact bit pattern, growing up to
/// `limit` entries (then serving only what it has). Useful for data whose
/// deltas repeat but are not small integers; slower per hit than the dense
/// window (hash vs direct index) — `benches/micro.rs` quantifies the gap.
#[derive(Clone, Debug, Default)]
pub struct HashTimeCache {
    table: rustc_hash::FxHashMap<u32, Box<[f32]>>,
    limit: usize,
    hits: u64,
    misses: u64,
}

impl HashTimeCache {
    /// An empty cache holding at most `limit` distinct deltas.
    pub fn new(limit: usize) -> Self {
        Self { table: Default::default(), limit: limit.max(1), ..Default::default() }
    }

    /// Number of memoized deltas.
    pub fn len(&self) -> usize {
        self.table.len()
    }

    /// True if nothing is memoized yet.
    pub fn is_empty(&self) -> bool {
        self.table.is_empty()
    }

    /// Window hit count so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Miss count so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Fraction of deltas served from memory.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Encodes a batch of deltas, memoizing newly seen values. Repeats
    /// *within* one batch are deduplicated too: each distinct missing delta
    /// is computed once.
    ///
    /// # Invariants
    ///
    /// - `len() <= limit` holds on return; at the limit, new deltas are
    ///   still computed for the output but no longer memoized.
    /// - A memoized row is never overwritten — repeats of a delta serve the
    ///   originally computed bits.
    /// - `hits() + misses()` grows by exactly `dts.len()`.
    pub fn encode(&mut self, encoder: &TimeEncoder, dts: &[f32]) -> Tensor { // alloc-ok: allocating convenience wrapper; the hot path calls encode_into with a scratch destination
        let mut out = Tensor::zeros(dts.len(), encoder.dim());
        self.encode_into(encoder, dts, &mut out);
        out
    }

    /// Like [`HashTimeCache::encode`], but writes into a caller-provided
    /// (typically scratch-backed) destination instead of allocating. Every
    /// row of `out` is overwritten; `out` must have shape
    /// `(dts.len(), encoder.dim())`.
    ///
    /// # Invariants
    ///
    /// - Same as [`HashTimeCache::encode`]: `len() <= limit`, memoized
    ///   rows are never overwritten, and `hits() + misses()` grows by
    ///   exactly `dts.len()`.
    /// - Memoization happens in first-seen order, so which deltas survive
    ///   an at-limit batch is deterministic.
    pub fn encode_into(&mut self, encoder: &TimeEncoder, dts: &[f32], out: &mut Tensor) {
        assert_eq!(
            out.shape(),
            (dts.len(), encoder.dim()),
            "time-encode destination shape mismatch"
        );
        // rows to fill from the freshly computed block: (out row, block row)
        let mut fills: Vec<(usize, usize)> = Vec::new(); // alloc-ok: miss bookkeeping; empty once the memo table has seen the working set
        let mut pending: rustc_hash::FxHashMap<u32, usize> = Default::default();
        let mut miss_dts: Vec<f32> = Vec::new(); // alloc-ok: distinct missing deltas batched into one fallback encode
        for (r, &dt) in dts.iter().enumerate() {
            if let Some(row) = self.table.get(&dt.to_bits()) {
                out.row_mut(r).copy_from_slice(row);
                self.hits += 1;
                continue;
            }
            match pending.entry(dt.to_bits()) {
                std::collections::hash_map::Entry::Occupied(e) => {
                    fills.push((r, *e.get())); // alloc-ok: grows only on cache misses
                    self.hits += 1;
                }
                std::collections::hash_map::Entry::Vacant(v) => {
                    v.insert(miss_dts.len());
                    fills.push((r, miss_dts.len())); // alloc-ok: grows only on cache misses
                    miss_dts.push(dt); // alloc-ok: grows only on cache misses
                    self.misses += 1;
                }
            }
        }
        if !miss_dts.is_empty() {
            let computed = encoder.encode(&miss_dts);
            for &(r, block_row) in &fills {
                out.row_mut(r).copy_from_slice(computed.row(block_row));
            }
            // Memoize in first-seen (`miss_dts` index) order. `pending` is
            // an FxHashMap whose iteration order is arbitrary, so walking
            // it here made *which* deltas survive an at-limit batch vary
            // run to run — nondeterministic hit counters and row
            // provenance. First-seen order is reproducible.
            for (block_row, &dt) in miss_dts.iter().enumerate() {
                if self.table.len() >= self.limit {
                    break;
                }
                self.table.insert(dt.to_bits(), computed.row(block_row).into());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn window_rows_match_direct_encoding() {
        let enc = TimeEncoder::random(6, 3);
        let mut tc = TimeCache::precompute(&enc, 100);
        let dts = [0.0f32, 1.0, 50.0, 99.0];
        let cached = tc.encode(&enc, &dts);
        let direct = enc.encode(&dts);
        assert!(cached.max_abs_diff(&direct) < 1e-7);
        assert_eq!(tc.hits(), 4);
        assert_eq!(tc.misses(), 0);
    }

    #[test]
    fn misses_fall_back_to_encoder() {
        let enc = TimeEncoder::random(4, 1);
        let mut tc = TimeCache::precompute(&enc, 10);
        // 10 is outside [0,10); 2.5 is non-integral; -1 is negative.
        let dts = [10.0f32, 2.5, -1.0, 3.0];
        let cached = tc.encode(&enc, &dts);
        let direct = enc.encode(&dts);
        assert!(cached.max_abs_diff(&direct) < 1e-7);
        assert_eq!(tc.hits(), 1);
        assert_eq!(tc.misses(), 3);
        assert!((tc.hit_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn encode_zeros_matches_encoder() {
        let enc = TimeEncoder::random(5, 9);
        let tc = TimeCache::precompute(&enc, 16);
        let z = tc.encode_zeros(3);
        let direct = enc.encode_zeros(3);
        assert!(z.max_abs_diff(&direct) < 1e-7);
    }

    #[test]
    fn large_delta_beyond_f32_integer_precision_is_safe() {
        // Deltas above 2^24 lose integer precision in f32; they must still
        // round-trip through the fallback without panicking.
        let enc = TimeEncoder::new(4);
        let mut tc = TimeCache::precompute(&enc, 8);
        let dts = [3.0e8f32];
        let cached = tc.encode(&enc, &dts);
        let direct = enc.encode(&dts);
        assert!(cached.max_abs_diff(&direct) < 1e-7);
        assert_eq!(tc.misses(), 1);
    }

    #[test]
    fn hash_cache_memoizes_exact_repeats() {
        let enc = TimeEncoder::random(4, 2);
        let mut hc = HashTimeCache::new(100);
        let dts = [3.5f32, 1e7, 3.5, -2.0, 1e7, 3.5];
        let out = hc.encode(&enc, &dts);
        let direct = enc.encode(&dts);
        assert!(out.max_abs_diff(&direct) < 1e-7);
        assert_eq!(hc.misses(), 3, "three distinct deltas");
        assert_eq!(hc.hits(), 3, "three repeats");
        assert_eq!(hc.len(), 3);
        assert!(!hc.is_empty());
        // Second pass is all hits.
        let out2 = hc.encode(&enc, &dts);
        assert!(out2.max_abs_diff(&direct) < 1e-7);
        assert_eq!(hc.misses(), 3);
    }

    #[test]
    fn hash_cache_respects_its_limit() {
        let enc = TimeEncoder::new(2);
        let mut hc = HashTimeCache::new(2);
        let dts: Vec<f32> = (0..10).map(|i| i as f32).collect();
        let out = hc.encode(&enc, &dts);
        assert!(out.max_abs_diff(&enc.encode(&dts)) < 1e-7);
        assert_eq!(hc.len(), 2, "stops memoizing at the limit");
        assert!((hc.hit_rate() - 0.0).abs() < 1e-12);
    }

    #[test]
    fn hash_cache_memoizes_first_seen_deltas_deterministically() {
        // Regression: at the limit, memoization used to iterate the
        // per-batch `pending` FxHashMap, whose order is arbitrary — which
        // two of the ten deltas survived varied run to run. First-seen
        // (batch) order is the contract now.
        let enc = TimeEncoder::new(2);
        // Reciprocals: distinct bit patterns whose FxHashMap iteration
        // order differs from insertion order, so the old code picks the
        // wrong pair.
        let dts: Vec<f32> = (0..10).map(|i| 1.0 / (i as f32 + 3.0)).collect(); // lint: allow(lossy-cast, small test integers are exact in f32)
        let fill = || {
            let mut hc = HashTimeCache::new(2);
            let _ = hc.encode(&enc, &dts);
            let mut keys: Vec<u32> = hc.table.keys().copied().collect();
            keys.sort_unstable();
            keys
        };
        let first = fill();
        let second = fill();
        assert_eq!(first, second, "identical fills must memoize identical key sets");
        let mut expected = vec![dts[0].to_bits(), dts[1].to_bits()];
        expected.sort_unstable();
        assert_eq!(first, expected, "the first-seen deltas are the ones memoized");
    }

    #[test]
    fn encode_into_matches_encode_for_both_caches() {
        let enc = TimeEncoder::random(4, 11);
        let dts = [0.0f32, 3.0, 2.5, 300.0, 3.0];
        let mut window = TimeCache::precompute(&enc, 100);
        let direct = enc.encode(&dts);
        let mut dst = Tensor::zeros(dts.len(), enc.dim());
        window.encode_into(&enc, &dts, &mut dst);
        assert!(dst.max_abs_diff(&direct) < 1e-7);
        let mut zeros = Tensor::zeros(3, enc.dim());
        window.encode_zeros_into(&mut zeros);
        assert!(zeros.max_abs_diff(&enc.encode_zeros(3)) < 1e-7);
        let mut hash = HashTimeCache::new(8);
        let mut dst2 = Tensor::zeros(dts.len(), enc.dim());
        hash.encode_into(&enc, &dts, &mut dst2);
        assert!(dst2.max_abs_diff(&direct) < 1e-7);
        assert_eq!(hash.hits(), 1, "within-batch repeat of 3.0");
    }

    #[test]
    fn hash_cache_handles_non_integral_deltas_unlike_window() {
        let enc = TimeEncoder::random(3, 5);
        let mut window = TimeCache::precompute(&enc, 100);
        let mut hash = HashTimeCache::new(100);
        let dts = [0.25f32, 0.25, 0.25];
        let _ = window.encode(&enc, &dts);
        let _ = hash.encode(&enc, &dts);
        assert_eq!(window.hits(), 0, "window cannot serve fractional deltas");
        assert_eq!(hash.hits(), 2, "hash serves repeats of any value");
    }

    #[test]
    fn empty_batch_is_fine() {
        let enc = TimeEncoder::new(4);
        let mut tc = TimeCache::precompute(&enc, 8);
        let out = tc.encode(&enc, &[]);
        assert_eq!(out.shape(), (0, 4));
        assert_eq!(tc.hit_rate(), 0.0);
    }
}
