//! **TGOpt** — redundancy-aware optimizations for TGAT inference
//! (Wang & Mendis, PPoPP 2023).
//!
//! TGOpt is a drop-in replacement for the baseline TGAT inference engine
//! that eliminates three classes of redundant work while producing the same
//! embeddings within floating-point tolerance:
//!
//! 1. **Deduplication** ([`dedup`]) — batched edges expand into `(node, time)`
//!    target pairs with heavy duplication (Table 1 reports up to 96% per
//!    batch); a joint hash-filter over the node and timestamp arrays computes
//!    unique targets plus an inverse index, without materializing a 2-D
//!    intermediate (Algorithm 2).
//! 2. **Memoization** ([`cache`]) — under most-recent sampling, the same
//!    `(node, time)` target always induces the same temporal subgraph
//!    (§3.2), so computed embeddings are cached behind a collision-free
//!    64-bit key ([`hash`]) with a FIFO-evicted, memory-limited store
//!    (Algorithm 3).
//! 3. **Time-encoding precomputation** ([`timecache`]) — time deltas cluster
//!    near zero (§3.3), so `Phi(dt)` is precomputed for a dense window of
//!    deltas starting at 0, and `Phi(0)` (always used for the target side)
//!    is computed once.
//!
//! [`engine::TgoptEngine`] assembles these into Algorithm 1. Each
//! optimization can be toggled independently via [`config::OptConfig`] for
//! the ablation study (Figure 6). [`devicesim`] converts the engine's cache
//! traffic counters into host/device transfer costs, reproducing the cache
//! storage-placement analysis (Table 5) without a GPU.

pub mod cache;
pub mod config;
pub mod dedup;
pub mod devicesim;
pub mod engine;
pub mod fingerprint;
pub mod hash;
pub mod persist;
pub mod timecache;
pub mod train;

pub use cache::{EmbedCache, LayerCaches};
pub use config::{OptConfig, TimeCacheKind};
pub use dedup::{dedup_filter, dedup_invert, DedupResult};
pub use engine::{EngineCounters, TgoptEngine};
pub use hash::{pack_key, unpack_key};
pub use timecache::{HashTimeCache, TimeCache};
