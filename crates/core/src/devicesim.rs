//! Host/device data-movement cost model (Table 5 substitute).
//!
//! The paper profiles CUDA `memcpy` time under two cache placements: storing
//! embeddings on CPU (host) memory vs on GPU (device) memory, and finds that
//! device-side storage drowns in device-to-device traffic from the many
//! small per-row copies of `CacheLookup`/`CacheStore` (§5.2.5).
//!
//! Without a GPU, we reproduce the *shape* of that analysis by replaying the
//! engine's exact cache traffic counts through a V100-class transfer cost
//! model: every transfer pays a per-operation launch/latency cost plus a
//! bandwidth cost, and the per-row copy pattern is what the paper's design
//! discussion says it is — one small copy per hit (lookup) or per stored row.

use crate::engine::EngineCounters;

/// Where cached embeddings live in the simulated GPU deployment.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StorePolicy {
    /// Paper's choice: cache on host; hits cross PCIe host-to-device,
    /// stores cross device-to-host.
    Host,
    /// Alternative: cache on device; hits and stores are device-to-device
    /// copies (plus the copy-out the lookup's gather still performs).
    Device,
}

/// One direction's accumulated traffic.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferStat {
    pub ops: u64,
    pub bytes: u64,
}

impl TransferStat {
    fn add(&mut self, ops: u64, bytes: u64) {
        self.ops += ops;
        self.bytes += bytes;
    }
}

/// Accumulated transfers in the three CUDA memcpy directions.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct TransferLedger {
    pub htod: TransferStat,
    pub dtoh: TransferStat,
    pub dtod: TransferStat,
}

/// Latency/bandwidth model of one device class.
#[derive(Clone, Copy, Debug)]
pub struct CostModel {
    /// PCIe effective bandwidth, bytes/second.
    pub pcie_bandwidth: f64,
    /// Per-memcpy launch overhead across PCIe, seconds.
    pub pcie_latency: f64,
    /// On-device copy bandwidth, bytes/second.
    pub device_bandwidth: f64,
    /// Per-memcpy launch overhead on device, seconds.
    pub device_latency: f64,
}

impl CostModel {
    /// Roughly a Tesla V100 on PCIe gen3 x16 (the paper's GPU machine):
    /// ~12 GB/s effective PCIe, ~10 µs per small transfer; ~700 GB/s HBM2,
    /// ~6 µs per device-side copy kernel.
    pub fn v100() -> Self {
        Self {
            pcie_bandwidth: 12.0e9,
            pcie_latency: 10.0e-6,
            device_bandwidth: 700.0e9,
            device_latency: 6.0e-6,
        }
    }

    fn pcie_time(&self, s: &TransferStat) -> f64 {
        s.ops as f64 * self.pcie_latency + s.bytes as f64 / self.pcie_bandwidth
    }

    fn device_time(&self, s: &TransferStat) -> f64 {
        s.ops as f64 * self.device_latency + s.bytes as f64 / self.device_bandwidth
    }

    /// Seconds spent in each direction for a ledger.
    pub fn times(&self, l: &TransferLedger) -> (f64, f64, f64) {
        (self.pcie_time(&l.htod), self.pcie_time(&l.dtoh), self.device_time(&l.dtod))
    }
}

/// Derives the memcpy ledger a GPU run would have produced, from the
/// engine's cache counters.
///
/// * `row_bytes` — one embedding row (`dim * 4` bytes).
/// * `batch_input_bytes` / `num_batches` — the baseline per-batch input
///   staging (features, indices) every policy pays host-to-device.
///
/// The traffic patterns mirror §4.2.2/§5.2.5:
///
/// * **Host placement** — the per-row copies of `CacheLookup`/`CacheStore`
///   are plain CPU memcpys; only the *assembled* tensors cross PCIe, one
///   transfer per cache call (the lookup result moves HtoD, the stored
///   batch moves DtoH). Few, large transfers.
/// * **Device placement** — the gather/scatter happens on the device, as
///   many small DtoD copies as there are hit/stored rows. This is exactly
///   the "many small data copies ... not favorable to GPUs" pattern the
///   paper measures dominating GPU time.
pub fn simulate_transfers(
    counters: &EngineCounters,
    policy: StorePolicy,
    row_bytes: usize,
    batch_input_bytes: u64,
    num_batches: u64,
) -> TransferLedger {
    let mut ledger = TransferLedger::default();
    // Both policies stage batch inputs onto the device.
    ledger.htod.add(num_batches, batch_input_bytes * num_batches);
    let hit_bytes = counters.cache_hits * row_bytes as u64;
    let store_bytes = counters.cache_stores * row_bytes as u64;
    match policy {
        StorePolicy::Host => {
            // One batched transfer per cache call in each direction.
            ledger.htod.add(num_batches, hit_bytes);
            ledger.dtoh.add(num_batches, store_bytes);
        }
        StorePolicy::Device => {
            // One small on-device copy per hit row and per stored row, plus
            // the store path re-reading rows when assembling the output.
            ledger.dtod.add(counters.cache_hits, hit_bytes);
            ledger.dtod.add(counters.cache_stores * 2, store_bytes * 2);
        }
    }
    ledger
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_counters() -> EngineCounters {
        EngineCounters {
            cache_lookups: 1_000_000,
            cache_hits: 900_000,
            cache_stores: 100_000,
            recomputed: 100_000,
            dedup_removed: 0,
            stores_skipped: 0,
        }
    }

    #[test]
    fn host_policy_batches_transfers_per_call() {
        let l = simulate_transfers(&sample_counters(), StorePolicy::Host, 400, 1_000_000, 100);
        // One staged-input + one hit transfer per batch, one store per batch.
        assert_eq!(l.htod.ops, 100 + 100);
        assert_eq!(l.dtoh.ops, 100);
        assert_eq!(l.dtod.ops, 0);
        assert_eq!(l.dtoh.bytes, 100_000 * 400);
        assert_eq!(l.htod.bytes, 100 * 1_000_000 + 900_000 * 400);
    }

    #[test]
    fn device_policy_is_dominated_by_dtod() {
        let model = CostModel::v100();
        let host = simulate_transfers(&sample_counters(), StorePolicy::Host, 400, 1_000_000, 100);
        let dev =
            simulate_transfers(&sample_counters(), StorePolicy::Device, 400, 1_000_000, 100);
        let (h_htod, h_dtoh, h_dtod) = model.times(&host);
        let (d_htod, d_dtoh, d_dtod) = model.times(&dev);
        // The paper's conclusion: device placement makes DtoD dominate all
        // other directions; host placement keeps DtoD negligible.
        assert!(h_dtod < 1e-9);
        assert!(d_dtod > d_htod + d_dtoh, "DtoD should dominate on device policy");
        assert!(d_dtod > h_htod + h_dtoh, "device policy should cost more overall");
    }

    #[test]
    fn cost_model_times_scale_with_ops_and_bytes() {
        let m = CostModel::v100();
        let mut l = TransferLedger::default();
        l.htod.add(10, 0);
        let (t1, _, _) = m.times(&l);
        assert!((t1 - 10.0 * m.pcie_latency).abs() < 1e-12);
        l.htod.add(0, 12_000_000_000);
        let (t2, _, _) = m.times(&l);
        assert!((t2 - (t1 + 1.0)).abs() < 1e-9, "12 GB at 12 GB/s adds one second");
    }
}
