//! Redundancy-aware *training* (paper §7).
//!
//! Memoization cannot survive weight updates, but target deduplication is
//! weight-independent: duplicate `(node, time)` targets within a batch
//! share one forward computation, and the expanding gather's backward
//! scatter-sums their gradients — bit-for-bit the same parameter updates as
//! the vanilla trainer, at a fraction of the tape size. This module plugs
//! the Algorithm 2 filter into `tgat::train`'s dedup hook.

use crate::dedup::dedup_filter;
use tg_graph::{EdgeStream, NodeId, Time};
use tg_tensor::Tensor;
use tgat::engine::GraphContext;
use tgat::train::{train_with_options, TrainConfig, TrainReport};
use tgat::TgatParams;

/// The Algorithm 2 filter in `tgat::train::DedupHook` form.
fn dedup_hook(ns: &[NodeId], ts: &[Time]) -> (Vec<NodeId>, Vec<Time>, Vec<u32>) {
    let r = dedup_filter(ns, ts);
    (r.ns, r.ts, r.inv_idx)
}

/// Drop-in replacement for [`tgat::train::train`] that deduplicates
/// embedding targets at every layer of the training forward pass. Produces
/// the same learned parameters (within floating-point associativity) while
/// skipping the redundant recursion for duplicated targets.
pub fn train_deduped(
    params: &mut TgatParams,
    stream: &EdgeStream,
    node_features: &Tensor,
    edge_features: &Tensor,
    tc: &TrainConfig,
) -> TrainReport {
    train_with_options(params, stream, node_features, edge_features, tc, Some(&dedup_hook))
}

/// Deduplicated tape-recorded forward, for validation against the vanilla
/// training forward.
pub fn forward_embeddings_deduped(
    params: &TgatParams,
    ctx: &GraphContext<'_>,
    ns: &[NodeId],
    ts: &[Time],
) -> Tensor {
    tgat::train::forward_embeddings_with(params, ctx, ns, ts, Some(&dedup_hook))
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{Edge, TemporalGraph};
    use tg_tensor::init;
    use tgat::TgatConfig;

    fn world() -> (EdgeStream, Tensor, Tensor, TgatConfig) {
        let cfg = TgatConfig::tiny();
        let n_nodes = 14usize;
        let n_edges = 160usize;
        let mut edges = Vec::new();
        for i in 0..n_edges {
            let s = (i * 5 % n_nodes) as NodeId;
            edges.push(Edge {
                src: s,
                dst: (s + 2) % n_nodes as u32,
                time: (i + 1) as Time,
                eid: i as u32,
            });
        }
        let stream = EdgeStream::from_edges(edges);
        let mut rng = init::seeded_rng(8);
        let nf = init::normal(&mut rng, n_nodes, cfg.dim, 0.5);
        let ef = init::normal(&mut rng, n_edges, cfg.edge_dim, 0.5);
        (stream, nf, ef, cfg)
    }

    #[test]
    fn deduped_forward_matches_vanilla_forward() {
        let (stream, nf, ef, cfg) = world();
        let params = TgatParams::init(cfg, 4).unwrap();
        let graph = TemporalGraph::from_stream(&stream);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        // Heavy duplication in the query batch.
        let ns = vec![0, 3, 0, 0, 3, 5];
        let ts = vec![100.0, 120.0, 100.0, 100.0, 120.0, 150.0];
        let plain = tgat::train::forward_embeddings(&params, &ctx, &ns, &ts);
        let deduped = forward_embeddings_deduped(&params, &ctx, &ns, &ts);
        assert!(
            plain.max_abs_diff(&deduped) < 1e-5,
            "dedup must not change the training forward"
        );
    }

    #[test]
    fn deduped_training_learns_the_same_model() {
        let (stream, nf, ef, cfg) = world();
        let tc = TrainConfig { epochs: 2, batch_size: 40, lr: 5e-3, train_frac: 0.8, seed: 1, dropout: 0.0 };

        let mut plain = TgatParams::init(cfg, 4).unwrap();
        let report_plain = tgat::train::train(&mut plain, &stream, &nf, &ef, &tc);

        let mut deduped = TgatParams::init(cfg, 4).unwrap();
        let report_deduped = train_deduped(&mut deduped, &stream, &nf, &ef, &tc);

        // Losses agree closely (floating-point summation order differs).
        for (a, b) in report_plain.epoch_losses.iter().zip(&report_deduped.epoch_losses) {
            assert!((a - b).abs() < 1e-3, "loss diverged: {a} vs {b}");
        }
        // And so do the learned parameters.
        for (p, d) in plain.param_list().iter().zip(deduped.param_list()) {
            assert!(p.max_abs_diff(d) < 1e-2, "parameters diverged");
        }
        assert!((report_plain.val_auc - report_deduped.val_auc).abs() < 0.05);
    }
}
