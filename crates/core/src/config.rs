//! TGOpt optimization settings.

use serde::{Deserialize, Serialize};

/// Which time-encoding reuse structure to use (§4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum TimeCacheKind {
    /// The paper's design: a dense precomputed window of `0..time_window`
    /// integer deltas; the delta is the index (no lookup cost beyond a copy).
    DenseWindow,
    /// Ablation alternative: lazy hash memoization of up to `time_window`
    /// distinct deltas of any value — broader coverage, costlier lookups.
    Hash,
}

/// Which optimizations are active and how the reuse structures are sized.
///
/// The ablation study (Figure 6) enables one optimization at a time via
/// [`OptConfig::cache_only`], [`OptConfig::cache_dedup`], and
/// [`OptConfig::all`].
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct OptConfig {
    /// §4.1 deduplication of batched targets.
    pub enable_dedup: bool,
    /// §4.2 embedding memoization.
    pub enable_cache: bool,
    /// §4.3 precomputed time encodings.
    pub enable_time_precompute: bool,
    /// Maximum cached embeddings (paper default 2M, ≈ <1 GiB at 100 dims).
    pub cache_limit: usize,
    /// Precomputed time-encoding window (paper default 10,000).
    pub time_window: usize,
    /// Parallelize `CacheLookup` across keys (on for both machines in §5.1.3).
    pub parallel_lookup: bool,
    /// Parallelize `CacheStore` (the paper enables this only on the GPU
    /// host to spread work across its slower cores).
    pub parallel_store: bool,
    /// Also cache the final layer's embeddings. Off by default: `H^(L)` is
    /// never an input to another computation, so skipping it reduces memory
    /// (§4.2.2) at a negligible reuse cost.
    pub cache_last_layer: bool,
    /// Time-encoding reuse structure (dense window is the paper's design).
    pub time_cache_kind: TimeCacheKind,
}

impl Default for OptConfig {
    fn default() -> Self {
        Self::all()
    }
}

impl OptConfig {
    /// Everything on — the configuration `--opt-all` benchmarks.
    pub fn all() -> Self {
        Self {
            enable_dedup: true,
            enable_cache: true,
            enable_time_precompute: true,
            cache_limit: 2_000_000,
            time_window: 10_000,
            parallel_lookup: true,
            parallel_store: false,
            cache_last_layer: false,
            time_cache_kind: TimeCacheKind::DenseWindow,
        }
    }

    /// Everything off — behaves like the baseline (used to validate that the
    /// optimized engine's plumbing itself is semantics-preserving).
    pub fn none() -> Self {
        Self {
            enable_dedup: false,
            enable_cache: false,
            enable_time_precompute: false,
            cache_limit: 2_000_000,
            time_window: 10_000,
            parallel_lookup: false,
            parallel_store: false,
            cache_last_layer: false,
            time_cache_kind: TimeCacheKind::DenseWindow,
        }
    }

    /// Ablation stage 1: memoization only.
    pub fn cache_only() -> Self {
        Self { enable_dedup: false, enable_time_precompute: false, ..Self::all() }
    }

    /// Ablation stage 2: memoization + deduplication.
    pub fn cache_dedup() -> Self {
        Self { enable_time_precompute: false, ..Self::all() }
    }

    /// Builder-style cache limit override (Table 4 sweep).
    pub fn with_cache_limit(mut self, limit: usize) -> Self {
        self.cache_limit = limit;
        self
    }

    /// Builder-style time window override.
    pub fn with_time_window(mut self, window: usize) -> Self {
        self.time_window = window;
        self
    }

    /// Builder-style time-cache kind override.
    pub fn with_time_cache_kind(mut self, kind: TimeCacheKind) -> Self {
        self.time_cache_kind = kind;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_ablation_stages() {
        let all = OptConfig::all();
        assert!(all.enable_dedup && all.enable_cache && all.enable_time_precompute);
        assert_eq!(all.cache_limit, 2_000_000);
        assert_eq!(all.time_window, 10_000);

        let c = OptConfig::cache_only();
        assert!(c.enable_cache && !c.enable_dedup && !c.enable_time_precompute);

        let cd = OptConfig::cache_dedup();
        assert!(cd.enable_cache && cd.enable_dedup && !cd.enable_time_precompute);

        let none = OptConfig::none();
        assert!(!none.enable_cache && !none.enable_dedup && !none.enable_time_precompute);
    }

    #[test]
    fn builders_override() {
        let c = OptConfig::all().with_cache_limit(10).with_time_window(5);
        assert_eq!(c.cache_limit, 10);
        assert_eq!(c.time_window, 5);
    }

    #[test]
    fn time_cache_kind_builder() {
        let c = OptConfig::all().with_time_cache_kind(TimeCacheKind::Hash);
        assert_eq!(c.time_cache_kind, TimeCacheKind::Hash);
        assert_eq!(OptConfig::all().time_cache_kind, TimeCacheKind::DenseWindow);
    }

    #[test]
    fn default_is_all() {
        assert_eq!(OptConfig::default(), OptConfig::all());
    }
}
