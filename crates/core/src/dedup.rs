//! Deduplication of batched `(node, time)` targets (§4.1, Algorithm 2).
//!
//! The filter jointly walks the node and timestamp arrays — no intermediate
//! 2-D tensor is built — using the collision-free packed key as identity.
//! An inverse index maps unique results back to the original positions so
//! output shapes (and semantics) are preserved.

use crate::hash::pack_key;
use rustc_hash::FxHashMap;
use tg_graph::{NodeId, Time};
use tg_tensor::{ops, Tensor};

/// Output of [`dedup_filter`].
#[derive(Clone, Debug, PartialEq)]
pub struct DedupResult {
    /// Unique node ids, in first-appearance order.
    pub ns: Vec<NodeId>,
    /// Unique timestamps, parallel to `ns`.
    pub ts: Vec<Time>,
    /// `inv_idx[i]` is the row in the unique arrays holding original item `i`.
    pub inv_idx: Vec<u32>,
}

impl DedupResult {
    /// Number of unique targets.
    pub fn num_unique(&self) -> usize {
        self.ns.len()
    }

    /// Fraction of the original batch that was duplicated (Table 1's metric).
    pub fn duplication_rate(&self) -> f64 {
        if self.inv_idx.is_empty() {
            return 0.0;
        }
        1.0 - self.ns.len() as f64 / self.inv_idx.len() as f64
    }
}

/// Algorithm 2: produces unique `(node, time)` targets plus the inverse
/// index, preserving first-appearance order.
///
/// ```
/// use tgopt::dedup::dedup_filter;
///
/// // Node 5 at t=1.0 appears twice; node 5 at t=2.0 is distinct.
/// let r = dedup_filter(&[5, 3, 5, 5], &[1.0, 1.0, 1.0, 2.0]);
/// assert_eq!(r.ns, vec![5, 3, 5]);
/// assert_eq!(r.ts, vec![1.0, 1.0, 2.0]);
/// assert_eq!(r.inv_idx, vec![0, 1, 0, 2]);
/// assert_eq!(r.duplication_rate(), 0.25);
/// ```
pub fn dedup_filter(ns: &[NodeId], ts: &[Time]) -> DedupResult { // alloc-ok: the dedup table and unique-id lists ARE the DedupResult the caller owns; variable-size id vecs are not poolable f32 scratch
    assert_eq!(ns.len(), ts.len(), "node/time array length mismatch");
    let mut processed: FxHashMap<u64, u32> = FxHashMap::default();
    processed.reserve(ns.len());
    let mut uniq_ns = Vec::with_capacity(ns.len());
    let mut uniq_ts = Vec::with_capacity(ts.len());
    let mut inv_idx = Vec::with_capacity(ns.len());
    for (&n, &t) in ns.iter().zip(ts) {
        let key = pack_key(n, t);
        let next = uniq_ns.len() as u32; // lint: allow(lossy-cast, dedup index; unique targets per batch fit in u32)
        let idx = *processed.entry(key).or_insert_with(|| {
            uniq_ns.push(n);
            uniq_ts.push(t);
            next
        });
        inv_idx.push(idx);
    }
    DedupResult { ns: uniq_ns, ts: uniq_ts, inv_idx }
}

/// Node-only variant used to measure layer-0 duplication for Table 1 (at
/// layer 0 only the node id matters because features are static, §3.1).
pub fn dedup_nodes_only(ns: &[NodeId]) -> DedupResult {
    let mut processed: FxHashMap<NodeId, u32> = FxHashMap::default();
    let mut uniq_ns = Vec::new();
    let mut inv_idx = Vec::with_capacity(ns.len());
    for &n in ns {
        let next = uniq_ns.len() as u32; // lint: allow(lossy-cast, dedup index; unique targets per batch fit in u32)
        let idx = *processed.entry(n).or_insert_with(|| {
            uniq_ns.push(n);
            next
        });
        inv_idx.push(idx);
    }
    let ts = vec![0.0; uniq_ns.len()];
    DedupResult { ns: uniq_ns, ts, inv_idx }
}

/// `DedupInvert`: expands unique-row results back to the original batch
/// layout (`out.row(i) = h.row(inv_idx[i])`).
pub fn dedup_invert(h: &Tensor, inv_idx: &[u32]) -> Tensor {
    let mut out = Tensor::zeros(inv_idx.len(), h.cols()); // alloc-ok: the expanded batch-layout tensor is the return value
    ops::gather_rows_map_into(h, inv_idx.len(), |i| inv_idx[i] as usize, &mut out);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn filter_keeps_first_appearance_order() {
        let ns = [5u32, 3, 5, 7, 3];
        let ts = [1.0f32, 2.0, 1.0, 1.0, 2.0];
        let r = dedup_filter(&ns, &ts);
        assert_eq!(r.ns, vec![5, 3, 7]);
        assert_eq!(r.ts, vec![1.0, 2.0, 1.0]);
        assert_eq!(r.inv_idx, vec![0, 1, 0, 2, 1]);
        assert_eq!(r.num_unique(), 3);
        assert!((r.duplication_rate() - 0.4).abs() < 1e-12);
    }

    #[test]
    fn same_node_different_time_is_not_a_duplicate() {
        let r = dedup_filter(&[1, 1], &[1.0, 2.0]);
        assert_eq!(r.num_unique(), 2);
        assert_eq!(r.duplication_rate(), 0.0);
    }

    #[test]
    fn invert_reconstructs_original_layout() {
        let ns = [5u32, 3, 5, 7, 3];
        let ts = [1.0f32, 2.0, 1.0, 1.0, 2.0];
        let r = dedup_filter(&ns, &ts);
        // Pretend embeddings: row i = [unique node id as f32]
        let h = Tensor::from_vec(3, 1, r.ns.iter().map(|&n| n as f32).collect());
        let full = dedup_invert(&h, &r.inv_idx);
        let expect: Vec<f32> = ns.iter().map(|&n| n as f32).collect();
        assert_eq!(full.as_slice(), expect.as_slice());
    }

    #[test]
    fn empty_batch() {
        let r = dedup_filter(&[], &[]);
        assert_eq!(r.num_unique(), 0);
        assert_eq!(r.duplication_rate(), 0.0);
        let h = Tensor::zeros(0, 4);
        assert_eq!(dedup_invert(&h, &r.inv_idx).shape(), (0, 4));
    }

    #[test]
    fn nodes_only_ignores_time() {
        let r = dedup_nodes_only(&[1, 2, 1, 1]);
        assert_eq!(r.ns, vec![1, 2]);
        assert_eq!(r.inv_idx, vec![0, 1, 0, 0]);
        assert!((r.duplication_rate() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn all_duplicates() {
        let r = dedup_filter(&[9; 100], &[4.0; 100]);
        assert_eq!(r.num_unique(), 1);
        assert!((r.duplication_rate() - 0.99).abs() < 1e-12);
    }
}
