//! The optimized inference engine (Algorithm 1).
//!
//! `TgoptEngine` is a drop-in replacement for `tgat::BaselineEngine`: same
//! inputs, same outputs within floating-point tolerance, with deduplication,
//! memoization, and time-encoding precomputation layered in front of the
//! original computation.

use crate::cache::LayerCaches;
use crate::config::{OptConfig, TimeCacheKind};
use crate::dedup::{dedup_filter, dedup_invert};
use crate::fingerprint;
use crate::hash::compute_keys;
use crate::timecache::{HashTimeCache, TimeCache};
use tg_error::TgError;
use tg_graph::{GraphView, NodeId, SamplingStrategy, TemporalSampler, Time};
use tg_tensor::{ops, Scratch, Tensor};
use tgat::attention::{self, AttentionInputs};
use tgat::engine::GraphContext;
use std::sync::Arc;
use tgat::{OpKind, OpStats, TgatParams};

/// Cumulative reuse counters (drive Figures 3 and 7 and Table 3's hit rate).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineCounters {
    /// Keys probed against the embedding cache.
    pub cache_lookups: u64,
    /// Probes that hit (embeddings reused instead of recomputed).
    pub cache_hits: u64,
    /// Embeddings stored after recomputation.
    pub cache_stores: u64,
    /// Unique targets whose embedding had to be recomputed.
    pub recomputed: u64,
    /// Duplicate targets removed by the dedup filter.
    pub dedup_removed: u64,
    /// Recomputed embeddings *not* stored because the engine was in
    /// degraded (store-skipping) mode — e.g. a serving layer's memory
    /// budget was exceeded, so the cache serves lookups only.
    pub stores_skipped: u64,
}

impl EngineCounters {
    /// Elementwise difference (for per-batch deltas).
    pub fn delta_since(&self, earlier: &EngineCounters) -> EngineCounters {
        EngineCounters {
            cache_lookups: self.cache_lookups - earlier.cache_lookups,
            cache_hits: self.cache_hits - earlier.cache_hits,
            cache_stores: self.cache_stores - earlier.cache_stores,
            recomputed: self.recomputed - earlier.recomputed,
            dedup_removed: self.dedup_removed - earlier.dedup_removed,
            stores_skipped: self.stores_skipped - earlier.stores_skipped,
        }
    }

    /// Elementwise sum (for aggregating per-worker counters).
    pub fn merge(&self, other: &EngineCounters) -> EngineCounters {
        EngineCounters {
            cache_lookups: self.cache_lookups + other.cache_lookups,
            cache_hits: self.cache_hits + other.cache_hits,
            cache_stores: self.cache_stores + other.cache_stores,
            recomputed: self.recomputed + other.recomputed,
            dedup_removed: self.dedup_removed + other.dedup_removed,
            stores_skipped: self.stores_skipped + other.stores_skipped,
        }
    }

    /// Hit rate over these counters (0 if nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// The configured time-encoding reuse structure (§4.3): either the paper's
/// dense precomputed window or the hash-memoization alternative (an
/// ablation of that design choice — see DESIGN.md).
enum TimeCacheImpl {
    Dense(TimeCache),
    Hash { cache: HashTimeCache, zero_row: Vec<f32> },
}

impl TimeCacheImpl {
    fn new(encoder: &tgat::TimeEncoder, opt: &OptConfig) -> Self {
        match opt.time_cache_kind {
            TimeCacheKind::DenseWindow => {
                Self::Dense(TimeCache::precompute(encoder, opt.time_window.max(1)))
            }
            TimeCacheKind::Hash => Self::Hash {
                cache: HashTimeCache::new(opt.time_window.max(1)),
                zero_row: encoder.encode_one(0.0).into_vec(),
            },
        }
    }

    /// Encodes into a caller-provided (scratch-backed) destination so the
    /// all-hit steady state allocates nothing; misses batch one encoder
    /// fallback internally.
    fn encode_into(&mut self, encoder: &tgat::TimeEncoder, dts: &[f32], out: &mut Tensor) {
        match self {
            Self::Dense(c) => c.encode_into(encoder, dts, out),
            Self::Hash { cache, .. } => cache.encode_into(encoder, dts, out),
        }
    }

    /// `Phi(0)` broadcast from the ahead-of-time row (both variants
    /// precompute it once, per §3.3) into a caller-provided destination.
    /// Every row of `out` is overwritten; allocation-free.
    fn encode_zeros_into(&self, out: &mut Tensor) {
        match self {
            Self::Dense(c) => c.encode_zeros_into(out),
            Self::Hash { zero_row, .. } => {
                debug_assert_eq!(out.cols(), zero_row.len());
                for r in 0..out.rows() {
                    out.row_mut(r).copy_from_slice(zero_row);
                }
            }
        }
    }

    fn stats(&self) -> (u64, u64) {
        match self {
            Self::Dense(c) => (c.hits(), c.misses()),
            Self::Hash { cache, .. } => (cache.hits(), cache.misses()),
        }
    }
}

/// TGOpt's redundancy-aware TGAT inference engine.
pub struct TgoptEngine<'a> {
    params: &'a TgatParams,
    ctx: GraphContext<'a>,
    sampler: TemporalSampler,
    opt: OptConfig,
    caches: Arc<LayerCaches>,
    timecache: TimeCacheImpl,
    stats: OpStats,
    counters: EngineCounters,
    store_enabled: bool,
    /// When pinned, neighborhood sampling reads this epoch-stamped live
    /// snapshot instead of `ctx.graph` — the streaming-ingest read path.
    /// Owned (not borrowed) because views are per-wave while the engine
    /// lives for the worker's lifetime.
    view: Option<GraphView>,
    /// Recycled per-batch buffers; owned by the engine (one per serve
    /// worker) so steady-state batches run allocation-free.
    scratch: Scratch,
}

impl<'a> TgoptEngine<'a> {
    /// Builds an engine with the model's configured most-recent sampler.
    pub fn new(params: &'a TgatParams, ctx: GraphContext<'a>, opt: OptConfig) -> Self {
        let sampler = TemporalSampler::most_recent(params.cfg.n_neighbors);
        Self::with_sampler(params, ctx, opt, sampler)
    }

    /// Builds an engine with a custom sampler. With a non-deterministic
    /// strategy (uniform sampling) the embedding cache is automatically
    /// bypassed — memoization is only sound under most-recent sampling
    /// (§3.2 / §7).
    pub fn with_sampler(
        params: &'a TgatParams,
        ctx: GraphContext<'a>,
        opt: OptConfig,
        sampler: TemporalSampler,
    ) -> Self {
        let timecache = TimeCacheImpl::new(&params.time, &opt);
        Self {
            params,
            ctx,
            sampler,
            opt,
            caches: Arc::new(LayerCaches::new(
                params.cfg.n_layers,
                opt.cache_last_layer,
                opt.cache_limit.max(1),
                params.cfg.dim,
            )),
            timecache,
            stats: OpStats::disabled(),
            counters: EngineCounters::default(),
            store_enabled: true,
            view: None,
            scratch: Scratch::new(),
        }
    }

    /// Rebuilds an engine around an existing cache (and counters), e.g.
    /// after the graph grew and a new [`GraphContext`] borrow is needed.
    /// The caller is responsible for invalidating entries whose history
    /// changed semantically (most-recent sampling makes pure *additions*
    /// safe, §3.2; deletions require [`TgoptEngine::invalidate_node`]).
    pub fn with_cache(
        params: &'a TgatParams,
        ctx: GraphContext<'a>,
        opt: OptConfig,
        caches: Arc<LayerCaches>,
        counters: EngineCounters,
    ) -> Self {
        if let Some(dim) = caches.dim() {
            assert_eq!(dim, params.cfg.dim, "cache dimension mismatch");
        }
        let mut eng = Self::new(params, ctx, opt);
        eng.caches = caches;
        eng.counters = counters;
        eng
    }

    /// Tears the engine down, releasing the cache and counters for reuse
    /// with [`TgoptEngine::with_cache`].
    pub fn into_cache(self) -> (Arc<LayerCaches>, EngineCounters) {
        (self.caches, self.counters)
    }

    /// A shareable handle to the engine's caches. Multiple engines (e.g.
    /// one per serving thread) built over the same graph may share caches
    /// via [`TgoptEngine::with_cache`]: the tables are sharded and
    /// internally synchronized, and memoized values are deterministic
    /// functions of their key, so concurrent readers/writers always observe
    /// correct embeddings.
    pub fn shared_cache(&self) -> Arc<LayerCaches> {
        Arc::clone(&self.caches)
    }

    /// Turns on per-operation timing (Table 3 reproduction).
    pub fn enable_stats(&mut self) {
        self.stats = OpStats::enabled();
    }

    /// Accumulated operation timings.
    pub fn stats(&self) -> &OpStats {
        &self.stats
    }

    /// Cumulative reuse counters.
    pub fn counters(&self) -> EngineCounters {
        self.counters
    }

    /// The per-layer embedding caches (for memory accounting and
    /// invalidation).
    pub fn cache(&self) -> &LayerCaches {
        &self.caches
    }

    /// Hit/miss counters of the time-encoding cache `(hits, misses)`.
    pub fn time_cache_stats(&self) -> (u64, u64) {
        self.timecache.stats()
    }

    /// Hit rate of the time-encoding cache.
    pub fn time_cache_hit_rate(&self) -> f64 {
        let (h, m) = self.timecache.stats();
        if h + m == 0 { 0.0 } else { h as f64 / (h + m) as f64 }
    }

    /// The active optimization configuration.
    pub fn opt_config(&self) -> &OptConfig {
        &self.opt
    }

    /// Invalidate all cached embeddings of `node` — called by the holder
    /// after a graph-change event that alters the node's history semantics
    /// (edge deletion, node-feature update; future-work §7).
    pub fn invalidate_node(&mut self, node: NodeId) -> usize {
        self.caches.invalidate_node(node)
    }

    /// Invalidation for the deletion of an edge between `src` and `dst`
    /// (future-work §7), correct for *any* model depth: a cached layer-`l`
    /// embedding of node `X` can embed the deleted interaction when `X` is
    /// within `l - 1` hops of either endpoint, so every node within
    /// `max_cached_layer - 1` hops is invalidated (conservatively across all
    /// cached layers). For the paper's 2-layer configuration this reduces to
    /// invalidating the two endpoints.
    ///
    /// Call *after* removing the edge from the graph; the hop expansion only
    /// shrinks with the deletion, so post-deletion expansion plus the
    /// endpoints themselves covers every affected node.
    pub fn invalidate_edge_deletion(&mut self, src: NodeId, dst: NodeId) -> usize {
        let max_cached = if self.opt.cache_last_layer {
            self.params.cfg.n_layers
        } else {
            self.params.cfg.n_layers.saturating_sub(1)
        };
        let hops = max_cached.saturating_sub(1);
        let mut victims: Vec<NodeId> = self.ctx.graph.k_hop_nodes(src, hops);
        victims.extend(self.ctx.graph.k_hop_nodes(dst, hops));
        victims.sort_unstable();
        victims.dedup();
        victims.iter().map(|&n| self.caches.invalidate_node(n)).sum()
    }

    /// True if memoization is actually in effect (enabled *and* sound under
    /// the configured sampling strategy).
    pub fn memoization_active(&self) -> bool {
        self.opt.enable_cache && self.sampler.strategy() == SamplingStrategy::MostRecent
    }

    /// Toggles degraded (store-skipping) mode: with stores disabled the
    /// engine still *reads* the cache and still recomputes misses correctly,
    /// but recomputed embeddings are not written back, so the cache stops
    /// growing. Serving layers flip this when a memory budget is exceeded —
    /// degrading throughput instead of failing requests. Skipped writes are
    /// counted in [`EngineCounters::stores_skipped`]. Always safe: skipping
    /// a store never changes any returned embedding.
    pub fn set_store_enabled(&mut self, enabled: bool) {
        self.store_enabled = enabled;
    }

    /// True unless degraded (store-skipping) mode is active.
    pub fn store_enabled(&self) -> bool {
        self.store_enabled
    }

    /// Pins an epoch-stamped live snapshot: until [`TgoptEngine::unpin_view`],
    /// neighborhood sampling reads `view` instead of the frozen
    /// `ctx.graph`. Memoization stays sound because a view only ever
    /// *adds* interactions relative to older epochs, and the serve layer
    /// invalidates the (few) entries a new edge can reach before queries
    /// at later epochs are admitted (see DESIGN.md "Streaming ingest").
    pub fn pin_view(&mut self, view: GraphView) {
        self.view = Some(view);
    }

    /// Unpins the live snapshot; sampling reverts to `ctx.graph`.
    pub fn unpin_view(&mut self) {
        self.view = None;
    }

    /// The epoch of the pinned view, if one is pinned.
    pub fn pinned_epoch(&self) -> Option<u64> {
        self.view.as_ref().map(|v| v.epoch())
    }

    /// Computes final-layer temporal embeddings for `(ns[i], ts[i])` targets.
    /// Drop-in equivalent of `BaselineEngine::embed_batch`, except that
    /// internal cache shape violations surface as [`TgError`] instead of
    /// aborting the serving thread.
    // hot-path-root
    pub fn embed_batch(&mut self, ns: &[NodeId], ts: &[Time]) -> Result<Tensor, TgError> {
        if ns.len() != ts.len() {
            return Err(TgError::InvalidArgument(format!( // alloc-ok: rejection path only; one message String per invalid request
                "embed_batch needs one timestamp per node: {} nodes vs {} times",
                ns.len(),
                ts.len()
            )));
        }
        self.embed(self.params.cfg.n_layers, ns, ts)
    }

    fn embed(&mut self, l: usize, ns: &[NodeId], ts: &[Time]) -> Result<Tensor, TgError> {
        debug_assert_eq!(ns.len(), ts.len());
        let cfg = &self.params.cfg;
        if l == 0 {
            // Layer 0 only gathers static features; dedup would cost more
            // than the lookup it saves (§4.1).
            return Ok(self.ctx.gather_node_features_with(ns, &mut self.scratch));
        }
        if ns.is_empty() {
            return Ok(self.scratch.take(0, cfg.dim));
        }

        // §4.1 DedupFilter.
        let dedup = if self.opt.enable_dedup {
            let r = self.stats.time(OpKind::DedupFilter, || dedup_filter(ns, ts));
            self.counters.dedup_removed += (ns.len() - r.num_unique()) as u64;
            Some(r)
        } else {
            None
        };
        let (uns, uts): (&[NodeId], &[Time]) = match &dedup {
            Some(r) => (&r.ns, &r.ts),
            None => (ns, ts),
        };
        let n_uniq = uns.len();
        // Zeroed (not just taken) because a partial cache lookup only fills
        // hit rows; the scatter below covers the misses.
        let mut h = self.scratch.zeros(n_uniq, cfg.dim);

        // §4.2 memoization — sound only under most-recent sampling, and the
        // last layer is skipped unless configured otherwise. Each cached
        // layer has its own table: keys identify a (node, time) target, not
        // a layer.
        let caches = Arc::clone(&self.caches);
        let cache_l = if self.memoization_active() { caches.layer(l) } else { None };
        let (keys, hit_mask) = if let Some(cache) = cache_l {
            let parallel = self.opt.parallel_lookup;
            let keys = self
                .stats
                .time(OpKind::ComputeKeys, || compute_keys(uns, uts, parallel));
            let hit_mask = self
                .stats
                .time(OpKind::CacheLookup, || cache.lookup(&keys, &mut h, parallel))?;
            self.counters.cache_lookups += n_uniq as u64;
            self.counters.cache_hits += hit_mask.iter().filter(|&&m| m).count() as u64;
            (keys, hit_mask)
        } else {
            (Vec::new(), vec![false; n_uniq]) // alloc-ok: cache-disabled fallback; one empty key vec and one bool mask per batch
        };

        let miss_idx: Vec<usize> =
            (0..n_uniq).filter(|&i| !hit_mask[i]).collect(); // alloc-ok: Algorithm 1 miss bookkeeping; shrinks to empty as hit rate rises
        if !miss_idx.is_empty() {
            let m_ns: Vec<NodeId> = miss_idx.iter().map(|&i| uns[i]).collect(); // alloc-ok: miss-target ids; variable-size id lists are not poolable f32 scratch
            let m_ts: Vec<Time> = miss_idx.iter().map(|&i| uts[i]).collect(); // alloc-ok: miss-target times; same per-batch id bookkeeping as m_ns

            let (graph, sampler, view) = (self.ctx.graph, &self.sampler, self.view.as_ref());
            let nb = self.stats.time(OpKind::NghLookup, || match view {
                Some(v) => sampler.sample_view(v, &m_ns, &m_ts),
                None => sampler.sample(graph, &m_ns, &m_ts),
            });

            let mut all_ns = m_ns.clone();
            all_ns.extend_from_slice(&nb.nodes);
            let mut all_ts = m_ts.clone();
            all_ts.extend_from_slice(&nb.times);
            let h_prev = self.embed(l - 1, &all_ns, &all_ts)?;
            let mut h_src = self.scratch.take(m_ns.len(), h_prev.cols());
            let mut h_ngh = self.scratch.take(nb.nodes.len(), h_prev.cols());
            ops::split_rows_into(&h_prev, m_ns.len(), &mut h_src, &mut h_ngh);
            self.scratch.give(h_prev);

            // §4.3 precomputed time encodings — both branches fill
            // scratch-backed destinations, so a steady-state (all-hit)
            // batch performs no time-encode allocations.
            let params = self.params;
            let time_dim = params.time.dim();
            let precompute = self.opt.enable_time_precompute;
            let mut ht0 = self.scratch.take(m_ns.len(), time_dim);
            {
                let timecache = &self.timecache;
                let stats = &mut self.stats;
                stats.time(OpKind::TimeEncodeZero, || {
                    if precompute {
                        timecache.encode_zeros_into(&mut ht0);
                    } else {
                        params.time.encode_zeros_into(&mut ht0);
                    }
                });
            }
            let mut ht = self.scratch.take(nb.dts.len(), time_dim);
            {
                let timecache = &mut self.timecache;
                let stats = &mut self.stats;
                stats.time(OpKind::TimeEncodeDt, || {
                    if precompute {
                        timecache.encode_into(&params.time, &nb.dts, &mut ht);
                    } else {
                        params.time.encode_into(&nb.dts, &mut ht);
                    }
                });
            }
            let (ht0, ht) = (ht0, ht);
            let e_feat = self.ctx.gather_edge_features_with(&nb.eids, &mut self.scratch);
            let mask = nb.mask();

            let layer = &self.params.layers[l - 1];
            let stats = &mut self.stats;
            let scratch = &mut self.scratch;
            let h_m = stats.time(OpKind::Attention, || {
                attention::forward_with(
                    layer,
                    cfg,
                    &AttentionInputs {
                        h_src: &h_src,
                        ht0: &ht0,
                        h_ngh: &h_ngh,
                        e_feat: &e_feat,
                        ht: &ht,
                        mask: &mask,
                    },
                    scratch,
                )
            });
            self.scratch.give(e_feat);
            self.scratch.give(ht);
            self.scratch.give(ht0);
            self.scratch.give(h_ngh);
            self.scratch.give(h_src);

            if let Some(cache) = cache_l {
                if self.store_enabled {
                    let miss_keys: Vec<u64> = miss_idx.iter().map(|&i| keys[i]).collect(); // alloc-ok: Algorithm 3 CacheStore keys; one u64 per recomputed row
                    let parallel = self.opt.parallel_store;
                    if l >= 2 {
                        // Layers >= 2 record each entry's temporal-subgraph
                        // fingerprint so streaming inserts can revalidate
                        // entries instead of sweeping everything at t > te
                        // (DESIGN.md "Constraint-tracked invalidation").
                        // Layer 1 keeps plain stores: its staleness rule is
                        // closed-form over the endpoint's own window.
                        let k = cfg.n_neighbors;
                        let (graph, view) = (self.ctx.graph, self.view.as_ref());
                        let stats = &mut self.stats;
                        stats.time(OpKind::CacheStore, || {
                            let fps = match view {
                                Some(v) => fingerprint::capture_many(v, k, &m_ns, &m_ts, l - 1),
                                None => fingerprint::capture_many(graph, k, &m_ns, &m_ts, l - 1),
                            };
                            cache.store_with_constraints(&miss_keys, &h_m, fps, parallel)
                        })?;
                    } else {
                        self.stats
                            .time(OpKind::CacheStore, || cache.store(&miss_keys, &h_m, parallel))?;
                    }
                    self.counters.cache_stores += miss_keys.len() as u64;
                } else {
                    self.counters.stores_skipped += miss_idx.len() as u64;
                }
            }
            self.counters.recomputed += miss_idx.len() as u64;

            // Copy recomputed rows into their unique-array positions.
            for (src_row, &dst) in miss_idx.iter().enumerate() {
                h.row_mut(dst).copy_from_slice(h_m.row(src_row));
            }
            self.scratch.give(h_m);
        }

        // §4.1 DedupInvert: expand back to the original batch layout.
        Ok(match &dedup {
            Some(r) => {
                let out =
                    self.stats.time(OpKind::DedupInvert, || dedup_invert(&h, &r.inv_idx));
                self.scratch.give(h);
                out
            }
            None => h,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tg_graph::{EdgeStream, TemporalGraph};
    use tg_tensor::init;
    use tgat::{BaselineEngine, TgatConfig};

    fn world(cfg: TgatConfig, n_nodes: usize, n_edges: usize) -> (TemporalGraph, Tensor, Tensor) {
        let mut srcs = Vec::new();
        let mut dsts = Vec::new();
        let mut times = Vec::new();
        for i in 0..n_edges {
            srcs.push((i % n_nodes) as NodeId);
            dsts.push(((i * 3 + 1) % n_nodes) as NodeId);
            times.push((i + 1) as Time);
        }
        let stream = EdgeStream::new(&srcs, &dsts, &times);
        let graph = TemporalGraph::from_stream(&stream);
        let mut rng = init::seeded_rng(5);
        let nf = init::normal(&mut rng, n_nodes, cfg.dim, 0.5);
        let ef = init::normal(&mut rng, n_edges, cfg.edge_dim, 0.5);
        (graph, nf, ef)
    }

    fn assert_matches_baseline(opt: OptConfig) {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut base = BaselineEngine::new(&params, ctx);
        let mut tgopt = TgoptEngine::new(&params, ctx, opt);
        // Several batches with heavy duplication and recurring targets.
        for round in 0..4 {
            let t = 40.0 + round as Time * 5.0;
            let ns: Vec<NodeId> = vec![0, 1, 2, 0, 1, 5, 0];
            let ts: Vec<Time> = vec![t, t, t + 1.0, t, t, t, t];
            let hb = base.embed_batch(&ns, &ts);
            let ho = tgopt.embed_batch(&ns, &ts).unwrap();
            let diff = hb.max_abs_diff(&ho);
            assert!(diff < 1e-4, "round {round}: max diff {diff} vs baseline ({opt:?})");
        }
    }

    #[test]
    fn all_optimizations_preserve_semantics() {
        assert_matches_baseline(OptConfig::all());
    }

    #[test]
    fn each_ablation_stage_preserves_semantics() {
        assert_matches_baseline(OptConfig::none());
        assert_matches_baseline(OptConfig::cache_only());
        assert_matches_baseline(OptConfig::cache_dedup());
        assert_matches_baseline(OptConfig { enable_dedup: true, enable_cache: false, enable_time_precompute: false, ..OptConfig::all() });
        assert_matches_baseline(OptConfig { enable_dedup: false, enable_cache: false, enable_time_precompute: true, ..OptConfig::all() });
    }

    #[test]
    fn cache_last_layer_also_preserves_semantics() {
        assert_matches_baseline(OptConfig { cache_last_layer: true, ..OptConfig::all() });
    }

    #[test]
    fn tiny_cache_limit_preserves_semantics() {
        assert_matches_baseline(OptConfig::all().with_cache_limit(4));
        assert_matches_baseline(OptConfig::all().with_time_window(2));
    }

    #[test]
    fn hash_time_cache_preserves_semantics() {
        use crate::config::TimeCacheKind;
        assert_matches_baseline(OptConfig::all().with_time_cache_kind(TimeCacheKind::Hash));
        assert_matches_baseline(
            OptConfig::all().with_time_cache_kind(TimeCacheKind::Hash).with_time_window(3),
        );
    }

    #[test]
    fn steady_state_time_encode_is_allocation_free() {
        use crate::config::TimeCacheKind;
        for kind in [TimeCacheKind::DenseWindow, TimeCacheKind::Hash] {
            let cfg = TgatConfig::tiny();
            let params = TgatParams::init(cfg, 7).unwrap();
            let (graph, nf, ef) = world(cfg, 12, 80);
            let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
            // Cache and dedup off: every batch re-runs both time-encode
            // stages, and the output tensor stays scratch-backed so it can
            // be returned to the pool.
            let opt = OptConfig { enable_cache: false, enable_dedup: false, ..OptConfig::all() }
                .with_time_cache_kind(kind);
            let mut eng = TgoptEngine::new(&params, ctx, opt);
            let ns: Vec<NodeId> = vec![0, 1, 2, 5];
            let ts: Vec<Time> = vec![50.0, 50.0, 51.0, 52.0];
            // Warm-up: grow the scratch pool and (for Hash) memoize deltas.
            for _ in 0..3 {
                let h = eng.embed_batch(&ns, &ts).unwrap();
                eng.scratch.give(h);
            }
            let pooled = eng.scratch.pooled_capacity();
            for _ in 0..5 {
                let h = eng.embed_batch(&ns, &ts).unwrap();
                eng.scratch.give(h);
            }
            assert_eq!(
                eng.scratch.pooled_capacity(),
                pooled,
                "steady-state batches must not allocate scratch blocks ({kind:?})"
            );
        }
    }

    #[test]
    fn time_cache_stats_accumulate() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
        let _ = eng.embed_batch(&[0, 1], &[50.0, 51.0]).unwrap();
        let (h, m) = eng.time_cache_stats();
        assert!(h + m > 0, "time encoder must have been exercised");
        assert!(eng.time_cache_hit_rate() >= 0.0);
    }

    #[test]
    fn repeated_batches_hit_the_cache() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
        let ns: Vec<NodeId> = vec![0, 1, 2, 3];
        let ts: Vec<Time> = vec![50.0; 4];
        let h1 = eng.embed_batch(&ns, &ts).unwrap();
        let before = eng.counters();
        let h2 = eng.embed_batch(&ns, &ts).unwrap();
        let delta = eng.counters().delta_since(&before);
        assert_eq!(h1.max_abs_diff(&h2), 0.0, "cached results must be bit-identical");
        assert!(delta.cache_hits > 0, "second pass should reuse: {delta:?}");
        // The final layer is not cached (§4.2.2), so exactly the 4 top-level
        // targets recompute; every layer-1 embedding comes from the cache.
        assert_eq!(delta.recomputed, 4, "only the uncached top layer recomputes");
        assert_eq!(delta.cache_hits, delta.cache_lookups, "all layer-1 lookups hit");
        assert_eq!(delta.cache_stores, 0, "nothing new to store on the second pass");
    }

    #[test]
    fn uniform_sampling_bypasses_cache() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let sampler = TemporalSampler::new(cfg.n_neighbors, SamplingStrategy::Uniform { seed: 3 });
        let mut eng = TgoptEngine::with_sampler(&params, ctx, OptConfig::all(), sampler);
        assert!(!eng.memoization_active());
        let _ = eng.embed_batch(&[0, 1], &[50.0, 50.0]).unwrap();
        let c = eng.counters();
        assert_eq!(c.cache_lookups, 0);
        assert_eq!(c.cache_stores, 0);
        // Dedup still applies (it is always sound).
        assert!(eng.cache().is_empty());
    }

    #[test]
    fn counters_track_dedup_and_recompute() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
        let _ = eng.embed_batch(&[4, 4, 4], &[60.0, 60.0, 60.0]).unwrap();
        let c = eng.counters();
        assert!(c.dedup_removed >= 2, "three identical targets leave two duplicates");
        assert!(c.recomputed > 0);
        assert!(c.hit_rate() >= 0.0);
    }

    #[test]
    fn hit_rate_is_zero_not_nan_on_fresh_engine() {
        // 0 lookups must yield 0.0, never 0/0 = NaN (a fresh engine's
        // hit rate is printed by every bench binary before warm-up).
        let c = EngineCounters::default();
        assert_eq!(c.cache_lookups, 0);
        assert_eq!(c.hit_rate(), 0.0);
        assert!(!c.hit_rate().is_nan());
    }

    #[test]
    fn degraded_mode_skips_stores_but_preserves_semantics() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut base = BaselineEngine::new(&params, ctx);
        let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
        assert!(eng.store_enabled());
        eng.set_store_enabled(false);
        assert!(!eng.store_enabled());

        let ns: Vec<NodeId> = vec![0, 1, 2, 0];
        let ts: Vec<Time> = vec![50.0; 4];
        let h = eng.embed_batch(&ns, &ts).unwrap();
        let hb = base.embed_batch(&ns, &ts);
        assert!(h.max_abs_diff(&hb) < 1e-4, "degraded mode must stay correct");

        let c = eng.counters();
        assert_eq!(c.cache_stores, 0, "no writes while degraded");
        assert!(c.stores_skipped > 0, "skipped writes are counted");
        assert!(eng.cache().is_empty(), "the cache must not grow while degraded");

        // Re-enabling stores resumes cache population.
        eng.set_store_enabled(true);
        let _ = eng.embed_batch(&ns, &ts).unwrap();
        assert!(!eng.cache().is_empty());
        assert!(eng.counters().cache_stores > 0);
    }

    #[test]
    fn counters_merge_and_delta_cover_all_fields() {
        let a = EngineCounters {
            cache_lookups: 5,
            cache_hits: 3,
            cache_stores: 2,
            recomputed: 2,
            dedup_removed: 1,
            stores_skipped: 4,
        };
        let sum = a.merge(&a);
        assert_eq!(sum.cache_lookups, 10);
        assert_eq!(sum.stores_skipped, 8);
        assert_eq!(sum.delta_since(&a), a);
    }

    #[test]
    fn invalidation_forces_recompute() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
        let _ = eng.embed_batch(&[0], &[50.0]).unwrap();
        let cached = eng.cache().len();
        assert!(cached > 0);
        let removed: usize = (0..12).map(|n| eng.invalidate_node(n)).sum();
        assert_eq!(removed, cached);
        let before = eng.counters();
        let _ = eng.embed_batch(&[0], &[50.0]).unwrap();
        let delta = eng.counters().delta_since(&before);
        assert_eq!(delta.cache_hits, 0, "invalidation must clear reuse");
    }

    #[test]
    fn stats_cover_tgopt_specific_ops() {
        let cfg = TgatConfig::tiny();
        let params = TgatParams::init(cfg, 7).unwrap();
        let (graph, nf, ef) = world(cfg, 12, 80);
        let ctx = GraphContext { graph: &graph, node_features: &nf, edge_features: &ef };
        let mut eng = TgoptEngine::new(&params, ctx, OptConfig::all());
        eng.enable_stats();
        let _ = eng.embed_batch(&[0, 1, 0], &[50.0, 50.0, 50.0]).unwrap();
        let s = eng.stats();
        assert!(s.count(OpKind::DedupFilter) > 0);
        assert!(s.count(OpKind::DedupInvert) > 0);
        assert!(s.count(OpKind::ComputeKeys) > 0);
        assert!(s.count(OpKind::CacheLookup) > 0);
        assert!(s.count(OpKind::CacheStore) > 0);
        assert!(s.count(OpKind::Attention) > 0);
    }
}
