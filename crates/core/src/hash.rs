//! Collision-free key packing for `(node, time)` targets (§4.1).
//!
//! Node ids and timestamps are 32-bit values, so a 64-bit key built by
//! shifting and OR-ing is injective — no collision handling is ever needed,
//! which is what lets the dedup filter and the memoization cache use the
//! key alone as identity.

use rayon::prelude::*;
use tg_graph::{NodeId, Time};

/// Packs a `(node, time)` pair into a unique 64-bit key.
///
/// The timestamp's IEEE-754 bit pattern is used verbatim: two targets are
/// duplicates exactly when both node id and timestamp bits are equal, which
/// matches the paper's duplicate rule `v_i = v_j ∧ t_i = t_j`.
///
/// ```
/// use tgopt::hash::{pack_key, unpack_key};
///
/// let key = pack_key(42, 1337.5);
/// assert_eq!(unpack_key(key), (42, 1337.5));
/// assert_ne!(key, pack_key(42, 1338.0));
/// assert_ne!(key, pack_key(43, 1337.5));
/// ```
#[inline]
pub fn pack_key(node: NodeId, t: Time) -> u64 {
    ((node as u64) << 32) | (t.to_bits() as u64)
}

/// Recovers the `(node, time)` pair from a key (used by cache invalidation
/// and tests).
#[inline]
pub fn unpack_key(key: u64) -> (NodeId, Time) {
    ((key >> 32) as NodeId, Time::from_bits(key as u32)) // lint: allow(lossy-cast, intentional unpack of the low 32 key bits)
}

/// Batched key computation (the `ComputeKeys` operation of Algorithm 1).
/// Each pair is independent, so large batches are parallelized.
pub fn compute_keys(ns: &[NodeId], ts: &[Time], parallel: bool) -> Vec<u64> { // alloc-ok: the key vector is the return value (ComputeKeys output), one u64 per target
    assert_eq!(ns.len(), ts.len(), "node/time array length mismatch");
    if parallel && ns.len() >= 4096 {
        ns.par_iter().zip(ts.par_iter()).map(|(&n, &t)| pack_key(n, t)).collect()
    } else {
        ns.iter().zip(ts).map(|(&n, &t)| pack_key(n, t)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pack_unpack_roundtrip() {
        for (n, t) in [(0u32, 0.0f32), (1, 1.5), (u32::MAX, 1e9), (42, -3.25)] {
            let (n2, t2) = unpack_key(pack_key(n, t));
            assert_eq!(n, n2);
            assert_eq!(t.to_bits(), t2.to_bits());
        }
    }

    #[test]
    fn keys_are_injective_on_distinct_pairs() {
        let pairs = [(1u32, 2.0f32), (2, 1.0), (1, 2.0000002), (2, 2.0), (1, -2.0)];
        let keys: Vec<u64> = pairs.iter().map(|&(n, t)| pack_key(n, t)).collect();
        for i in 0..keys.len() {
            for j in 0..keys.len() {
                if i != j {
                    assert_ne!(keys[i], keys[j], "pairs {:?} and {:?}", pairs[i], pairs[j]);
                }
            }
        }
    }

    #[test]
    fn compute_keys_parallel_matches_sequential() {
        let ns: Vec<u32> = (0..10_000).map(|i| i % 97).collect();
        let ts: Vec<f32> = (0..10_000).map(|i| (i % 31) as f32).collect();
        assert_eq!(compute_keys(&ns, &ts, true), compute_keys(&ns, &ts, false));
    }

    #[test]
    fn duplicate_pairs_share_a_key() {
        assert_eq!(pack_key(7, 3.0), pack_key(7, 3.0));
        assert_ne!(pack_key(7, 3.0), pack_key(7, 3.5));
    }
}
