//! Property-based tests for the tensor kernels: every optimized kernel must
//! agree with a straightforward reference on arbitrary inputs, and the
//! algebraic invariants of softmax/concat/gather must hold.

use proptest::prelude::*;
use tg_tensor::matmul::{matmul, matmul_nt, matmul_tn};
use tg_tensor::{ops, Tensor};

fn tensor_strategy(max_dim: usize) -> impl Strategy<Value = Tensor> {
    (1..=max_dim, 1..=max_dim).prop_flat_map(|(r, c)| {
        proptest::collection::vec(-10.0f32..10.0, r * c)
            .prop_map(move |data| Tensor::from_vec(r, c, data))
    })
}

fn pair_strategy(max_dim: usize) -> impl Strategy<Value = (Tensor, Tensor)> {
    (1..=max_dim, 1..=max_dim, 1..=max_dim).prop_flat_map(|(m, k, n)| {
        let a = proptest::collection::vec(-5.0f32..5.0, m * k)
            .prop_map(move |d| Tensor::from_vec(m, k, d));
        let b = proptest::collection::vec(-5.0f32..5.0, k * n)
            .prop_map(move |d| Tensor::from_vec(k, n, d));
        (a, b)
    })
}

fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros(m, n);
    for i in 0..m {
        for j in 0..n {
            let mut s = 0.0f32;
            for kk in 0..k {
                s += a.get(i, kk) * b.get(kk, j);
            }
            c.set(i, j, s);
        }
    }
    c
}

fn transpose(t: &Tensor) -> Tensor {
    let (r, c) = t.shape();
    let mut out = Tensor::zeros(c, r);
    for i in 0..r {
        for j in 0..c {
            out.set(j, i, t.get(i, j));
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn matmul_matches_reference((a, b) in pair_strategy(12)) {
        let c = matmul(&a, &b);
        prop_assert!(c.max_abs_diff(&reference_matmul(&a, &b)) < 1e-3);
    }

    #[test]
    fn matmul_variants_are_consistent((a, b) in pair_strategy(10)) {
        // A*B computed three ways: direct, via nt on B^T, via tn on A^T.
        let direct = matmul(&a, &b);
        let via_nt = matmul_nt(&a, &transpose(&b));
        let via_tn = matmul_tn(&transpose(&a), &b);
        prop_assert!(direct.max_abs_diff(&via_nt) < 1e-3);
        prop_assert!(direct.max_abs_diff(&via_tn) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_distributions(t in tensor_strategy(10)) {
        let mask = vec![true; t.len()];
        let s = ops::softmax_rows_masked(&t, &mask);
        for r in 0..s.rows() {
            let sum: f32 = s.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4, "row {r} sums to {sum}");
            prop_assert!(s.row(r).iter().all(|&v| (0.0..=1.0 + 1e-6).contains(&v)));
        }
    }

    #[test]
    fn softmax_respects_arbitrary_masks(
        t in tensor_strategy(8),
        seed in 0u64..1000,
    ) {
        let mut mask = vec![false; t.len()];
        let mut x = seed;
        for m in mask.iter_mut() {
            x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            *m = (x >> 33) & 1 == 1;
        }
        let s = ops::softmax_rows_masked(&t, &mask);
        for (i, (&v, &m)) in s.as_slice().iter().zip(&mask).enumerate() {
            if !m {
                prop_assert_eq!(v, 0.0, "masked slot {} must be zero", i);
            }
        }
        prop_assert!(s.all_finite());
    }

    #[test]
    fn concat_then_split_roundtrips(a in tensor_strategy(8), cols in 1usize..8) {
        let b = Tensor::full(a.rows(), cols, 3.5);
        let c = ops::concat_cols(&[&a, &b]);
        prop_assert_eq!(c.cols(), a.cols() + cols);
        for r in 0..a.rows() {
            prop_assert_eq!(&c.row(r)[..a.cols()], a.row(r));
        }
        let stacked = ops::concat_rows(&[&a, &a]);
        let (top, bottom) = ops::split_rows(&stacked, a.rows());
        prop_assert_eq!(top.as_slice(), a.as_slice());
        prop_assert_eq!(bottom.as_slice(), a.as_slice());
    }

    #[test]
    fn gather_rows_copies_exactly(t in tensor_strategy(10), seed in 0usize..97) {
        let n = t.rows();
        let idx: Vec<usize> = (0..2 * n).map(|i| (i * 7 + seed) % n).collect();
        let g = ops::gather_rows(&t, &idx);
        for (out_row, &src) in idx.iter().enumerate() {
            prop_assert_eq!(g.row(out_row), t.row(src));
        }
    }

    #[test]
    fn attn_kernels_match_naive(
        q_data in proptest::collection::vec(-3.0f32..3.0, 3 * 4),
        k_data in proptest::collection::vec(-3.0f32..3.0, 6 * 4),
        w_data in proptest::collection::vec(0.0f32..1.0, 3 * 2),
    ) {
        let q = Tensor::from_vec(3, 4, q_data);
        let key = Tensor::from_vec(6, 4, k_data);
        let s = ops::attn_scores(&q, &key, 0.5);
        prop_assert_eq!(s.shape(), (3, 2));
        for i in 0..3 {
            for j in 0..2 {
                let expect: f32 = q.row(i).iter().zip(key.row(i * 2 + j)).map(|(a, b)| a * b).sum::<f32>() * 0.5;
                prop_assert!((s.get(i, j) - expect).abs() < 1e-4);
            }
        }
        let w = Tensor::from_vec(3, 2, w_data);
        let v = key.clone();
        let o = ops::attn_weighted_sum(&w, &v);
        for i in 0..3 {
            for d in 0..4 {
                let expect: f32 = (0..2).map(|j| w.get(i, j) * v.get(i * 2 + j, d)).sum();
                prop_assert!((o.get(i, d) - expect).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn relu_and_sigmoid_are_monotone_and_bounded(t in tensor_strategy(10)) {
        let r = ops::relu(&t);
        prop_assert!(r.as_slice().iter().all(|&v| v >= 0.0));
        for (&orig, &relu) in t.as_slice().iter().zip(r.as_slice()) {
            prop_assert_eq!(relu, orig.max(0.0));
        }
        let s = ops::sigmoid(&t);
        prop_assert!(s.as_slice().iter().all(|&v| (0.0..=1.0).contains(&v)));
    }
}
