//! Adam optimizer over a flat list of parameter tensors.

use crate::Tensor;

/// Adam hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Adam state: first/second moment estimates per parameter tensor.
pub struct Adam {
    cfg: AdamConfig,
    m: Vec<Vec<f32>>,
    v: Vec<Vec<f32>>,
    t: u64,
}

impl Adam {
    /// Creates optimizer state for parameters with the given element counts.
    pub fn new(cfg: AdamConfig, param_sizes: &[usize]) -> Self {
        Self {
            cfg,
            m: param_sizes.iter().map(|&n| vec![0.0; n]).collect(),
            v: param_sizes.iter().map(|&n| vec![0.0; n]).collect(),
            t: 0,
        }
    }

    /// Applies one update step. `params[i]` and `grads[i]` must correspond to
    /// the i-th parameter registered at construction. A `None` gradient (the
    /// parameter did not influence this batch's loss) is skipped.
    pub fn step(&mut self, params: &mut [&mut Tensor], grads: &[Option<&Tensor>]) {
        assert_eq!(params.len(), self.m.len(), "parameter count changed");
        assert_eq!(params.len(), grads.len(), "gradient count mismatch");
        self.t += 1;
        let b1t = 1.0 - self.cfg.beta1.powi(self.t as i32);
        let b2t = 1.0 - self.cfg.beta2.powi(self.t as i32);
        for ((p, g), (m, v)) in params
            .iter_mut()
            .zip(grads)
            .zip(self.m.iter_mut().zip(self.v.iter_mut()))
        {
            let Some(g) = g else { continue };
            assert_eq!(g.len(), m.len(), "gradient shape changed");
            for (((pv, &gv), mv), vv) in p
                .as_mut_slice()
                .iter_mut()
                .zip(g.as_slice())
                .zip(m.iter_mut())
                .zip(v.iter_mut())
            {
                let gv = gv + self.cfg.weight_decay * *pv;
                *mv = self.cfg.beta1 * *mv + (1.0 - self.cfg.beta1) * gv;
                *vv = self.cfg.beta2 * *vv + (1.0 - self.cfg.beta2) * gv * gv;
                let mhat = *mv / b1t;
                let vhat = *vv / b2t;
                *pv -= self.cfg.lr * mhat / (vhat.sqrt() + self.cfg.eps);
            }
        }
    }

    /// Number of steps taken so far.
    pub fn steps(&self) -> u64 {
        self.t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_quadratic() {
        // minimize f(x) = (x - 3)^2 elementwise
        let mut x = Tensor::from_vec(1, 2, vec![0.0, 10.0]);
        let mut opt = Adam::new(AdamConfig { lr: 0.1, ..Default::default() }, &[2]);
        for _ in 0..500 {
            let grad = Tensor::from_vec(
                1,
                2,
                x.as_slice().iter().map(|v| 2.0 * (v - 3.0)).collect(),
            );
            opt.step(&mut [&mut x], &[Some(&grad)]);
        }
        assert!((x.get(0, 0) - 3.0).abs() < 1e-2);
        assert!((x.get(0, 1) - 3.0).abs() < 1e-2);
        assert_eq!(opt.steps(), 500);
    }

    #[test]
    fn none_gradient_leaves_param_unchanged() {
        let mut x = Tensor::from_vec(1, 1, vec![5.0]);
        let mut opt = Adam::new(AdamConfig::default(), &[1]);
        opt.step(&mut [&mut x], &[None]);
        assert_eq!(x.get(0, 0), 5.0);
    }

    #[test]
    fn weight_decay_pulls_toward_zero() {
        let mut x = Tensor::from_vec(1, 1, vec![1.0]);
        let cfg = AdamConfig { lr: 0.05, weight_decay: 1.0, ..Default::default() };
        let mut opt = Adam::new(cfg, &[1]);
        let zero_grad = Tensor::zeros(1, 1);
        for _ in 0..200 {
            opt.step(&mut [&mut x], &[Some(&zero_grad)]);
        }
        assert!(x.get(0, 0).abs() < 0.5, "weight decay should shrink the parameter");
    }
}
