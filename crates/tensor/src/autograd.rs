//! Tape-based reverse-mode automatic differentiation.
//!
//! The TGAT training path (link prediction with negative sampling, paper
//! §5.1) records its forward computation on a [`Tape`]; [`Tape::backward`]
//! then produces gradients for every leaf parameter. Operations are executed
//! eagerly, so tape order is already a topological order and the backward
//! pass is a single reverse sweep.
//!
//! Besides standard dense ops, two *fused batched attention primitives* are
//! provided so the per-target attention of TGAT (each of `N` targets attends
//! over its own `K` sampled neighbors) does not need 3-D tensors:
//!
//! * [`Tape::attn_scores`] — `s[n,k] = <q_n, key_{n*K+k}> * scale`
//! * [`Tape::attn_weighted_sum`] — `out_n = sum_k w[n,k] * v_{n*K+k}`
//!
//! and a fused [`Tape::time_encode`] implementing the learnable
//! `Phi(dt) = cos(dt * omega + phi)` encoder of Eq. (8).

use crate::matmul::{matmul, matmul_nt, matmul_tn};
use crate::ops;
use crate::Tensor;
use rand::rngs::StdRng;
use rand::Rng;

/// Handle to a node on a [`Tape`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Var(usize);

/// Recorded operation; stores whatever the backward pass needs.
enum Op {
    Leaf,
    MatMul { a: usize, b: usize },
    AddBias { x: usize, bias: usize },
    Add { a: usize, b: usize },
    Sub { a: usize, b: usize },
    Mul { a: usize, b: usize },
    Scale { x: usize, s: f32 },
    Relu { x: usize },
    Sigmoid { x: usize },
    ConcatCols { parts: Vec<usize> },
    ConcatRows { parts: Vec<usize> },
    GatherRows { src: usize, idx: Vec<usize> },
    SoftmaxRowsMasked { x: usize, mask: Vec<bool> },
    Dropout { x: usize, mask: Vec<bool>, scale: f32 },
    AttnScores { q: usize, k: usize, scale: f32 },
    AttnWeightedSum { w: usize, v: usize },
    TimeEncode { dt: Vec<f32>, omega: usize, phi: usize },
    BceWithLogits { logits: usize, targets: Vec<f32> },
}

/// A gradient tape: values plus the operations that produced them.
#[derive(Default)]
pub struct Tape {
    values: Vec<Tensor>,
    ops: Vec<Op>,
}

/// Gradients produced by [`Tape::backward`], indexed by [`Var`].
pub struct Gradients {
    grads: Vec<Option<Tensor>>,
}

impl Gradients {
    /// Gradient of the loss with respect to `v`, if `v` influenced the loss.
    pub fn get(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }
}

impl Tape {
    pub fn new() -> Self {
        Self::default()
    }

    fn push(&mut self, value: Tensor, op: Op) -> Var {
        self.values.push(value);
        self.ops.push(op);
        Var(self.values.len() - 1)
    }

    /// Registers an input/parameter tensor.
    pub fn leaf(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Leaf)
    }

    /// The forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.values[v.0]
    }

    /// Number of nodes recorded so far.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let v = matmul(&self.values[a.0], &self.values[b.0]);
        self.push(v, Op::MatMul { a: a.0, b: b.0 })
    }

    pub fn add_bias(&mut self, x: Var, bias: Var) -> Var {
        let v = ops::add_bias(&self.values[x.0], &self.values[bias.0]);
        self.push(v, Op::AddBias { x: x.0, bias: bias.0 })
    }

    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let v = ops::add(&self.values[a.0], &self.values[b.0]);
        self.push(v, Op::Add { a: a.0, b: b.0 })
    }

    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let v = ops::sub(&self.values[a.0], &self.values[b.0]);
        self.push(v, Op::Sub { a: a.0, b: b.0 })
    }

    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let v = ops::mul(&self.values[a.0], &self.values[b.0]);
        self.push(v, Op::Mul { a: a.0, b: b.0 })
    }

    pub fn scale(&mut self, x: Var, s: f32) -> Var {
        let v = ops::scale(&self.values[x.0], s);
        self.push(v, Op::Scale { x: x.0, s })
    }

    pub fn relu(&mut self, x: Var) -> Var {
        let v = ops::relu(&self.values[x.0]);
        self.push(v, Op::Relu { x: x.0 })
    }

    pub fn sigmoid(&mut self, x: Var) -> Var {
        let v = ops::sigmoid(&self.values[x.0]);
        self.push(v, Op::Sigmoid { x: x.0 })
    }

    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let refs: Vec<&Tensor> = parts.iter().map(|p| &self.values[p.0]).collect();
        let v = ops::concat_cols(&refs);
        self.push(v, Op::ConcatCols { parts: parts.iter().map(|p| p.0).collect() })
    }

    pub fn concat_rows(&mut self, parts: &[Var]) -> Var {
        let refs: Vec<&Tensor> = parts.iter().map(|p| &self.values[p.0]).collect();
        let v = ops::concat_rows(&refs);
        self.push(v, Op::ConcatRows { parts: parts.iter().map(|p| p.0).collect() })
    }

    pub fn gather_rows(&mut self, src: Var, idx: &[usize]) -> Var {
        let v = ops::gather_rows(&self.values[src.0], idx);
        self.push(v, Op::GatherRows { src: src.0, idx: idx.to_vec() })
    }

    /// Inverted dropout: zeroes each element with probability `p` and
    /// scales survivors by `1/(1-p)`, so expectations match eval mode.
    /// `p == 0` is the identity. Training-only — the inference engines never
    /// apply dropout.
    pub fn dropout(&mut self, x: Var, p: f32, rng: &mut StdRng) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout probability must be in [0, 1)");
        if p == 0.0 {
            return x;
        }
        let xv = &self.values[x.0];
        let mask: Vec<bool> = (0..xv.len()).map(|_| rng.gen::<f32>() >= p).collect();
        let scale = 1.0 / (1.0 - p);
        let mut out = xv.clone();
        for (v, &keep) in out.as_mut_slice().iter_mut().zip(&mask) {
            *v = if keep { *v * scale } else { 0.0 };
        }
        self.push(out, Op::Dropout { x: x.0, mask, scale })
    }

    pub fn softmax_rows_masked(&mut self, x: Var, mask: &[bool]) -> Var {
        let v = ops::softmax_rows_masked(&self.values[x.0], mask);
        self.push(v, Op::SoftmaxRowsMasked { x: x.0, mask: mask.to_vec() })
    }

    /// Batched attention scores: `q` is `[N, d]`, `key` is `[N*K, d]` and the
    /// result is `[N, K]` with `s[n,k] = <q_n, key_{n*K+k}> * scale`.
    pub fn attn_scores(&mut self, q: Var, key: Var, scale: f32) -> Var {
        let qv = &self.values[q.0];
        let kv = &self.values[key.0];
        let n = qv.rows();
        assert!(n > 0, "attn_scores on empty batch");
        assert_eq!(kv.rows() % n, 0, "key rows must be a multiple of q rows");
        assert_eq!(qv.cols(), kv.cols(), "attn_scores dim mismatch");
        let out = ops::attn_scores(qv, kv, scale);
        self.push(out, Op::AttnScores { q: q.0, k: key.0, scale })
    }

    /// Batched weighted sum: `w` is `[N, K]`, `v` is `[N*K, d]` and the result
    /// is `[N, d]` with `out_n = sum_k w[n,k] * v_{n*K+k}`.
    pub fn attn_weighted_sum(&mut self, w: Var, v: Var) -> Var {
        let wv = &self.values[w.0];
        let vv = &self.values[v.0];
        let out = ops::attn_weighted_sum(wv, vv);
        self.push(out, Op::AttnWeightedSum { w: w.0, v: v.0 })
    }

    /// Learnable time encoding `out[r, j] = cos(dt[r] * omega[j] + phi[j])`
    /// (Eq. 8 of the paper). `omega` and `phi` are `1 x d` parameters.
    pub fn time_encode(&mut self, dt: &[f32], omega: Var, phi: Var) -> Var {
        let om = &self.values[omega.0];
        let ph = &self.values[phi.0];
        assert_eq!(om.rows(), 1, "omega must be 1 x d");
        assert_eq!(ph.shape(), om.shape(), "phi shape must match omega");
        let d = om.cols();
        let mut out = Tensor::zeros(dt.len(), d);
        for (r, &t) in dt.iter().enumerate() {
            for (j, o) in out.row_mut(r).iter_mut().enumerate() {
                *o = (t * om.get(0, j) + ph.get(0, j)).cos();
            }
        }
        self.push(out, Op::TimeEncode { dt: dt.to_vec(), omega: omega.0, phi: phi.0 })
    }

    /// Numerically stable binary cross-entropy with logits, averaged over all
    /// elements; produces a `1 x 1` scalar.
    pub fn bce_with_logits(&mut self, logits: Var, targets: &[f32]) -> Var {
        let lv = &self.values[logits.0];
        assert_eq!(lv.len(), targets.len(), "target count must match logits");
        let mut loss = 0.0f64;
        for (&z, &y) in lv.as_slice().iter().zip(targets) {
            // max(z,0) - y*z + ln(1 + exp(-|z|))
            loss += (z.max(0.0) - y * z + (-z.abs()).exp().ln_1p()) as f64;
        }
        let n = targets.len().max(1) as f64;
        let out = Tensor::from_vec(1, 1, vec![(loss / n) as f32]); // lint: allow(lossy-cast, mean loss scalar; f32 storage precision suffices)
        self.push(out, Op::BceWithLogits { logits: logits.0, targets: targets.to_vec() })
    }

    /// Reverse sweep from the scalar `loss` node; returns per-node gradients.
    ///
    /// # Panics
    /// Panics if `loss` is not a `1 x 1` tensor.
    pub fn backward(&self, loss: Var) -> Gradients {
        assert_eq!(self.values[loss.0].shape(), (1, 1), "backward needs a scalar loss");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.values.len()];
        grads[loss.0] = Some(Tensor::from_vec(1, 1, vec![1.0]));

        for i in (0..self.ops.len()).rev() {
            let Some(g) = grads[i].take() else { continue };
            self.backprop_node(i, &g, &mut grads);
            grads[i] = Some(g);
        }
        Gradients { grads }
    }

    /// Accumulates `g` (the gradient of node `i`'s output) into its parents.
    fn backprop_node(&self, i: usize, g: &Tensor, grads: &mut [Option<Tensor>]) {
        match &self.ops[i] {
            Op::Leaf => {}
            Op::MatMul { a, b } => {
                let da = matmul_nt(g, &self.values[*b]);
                let db = matmul_tn(&self.values[*a], g);
                accumulate(grads, *a, da);
                accumulate(grads, *b, db);
            }
            Op::AddBias { x, bias } => {
                accumulate(grads, *x, g.clone());
                let cols = g.cols();
                let mut db = Tensor::zeros(1, cols);
                for r in 0..g.rows() {
                    for (d, &v) in db.row_mut(0).iter_mut().zip(g.row(r)) {
                        *d += v;
                    }
                }
                accumulate(grads, *bias, db);
            }
            Op::Add { a, b } => {
                accumulate(grads, *a, g.clone());
                accumulate(grads, *b, g.clone());
            }
            Op::Sub { a, b } => {
                accumulate(grads, *a, g.clone());
                accumulate(grads, *b, ops::scale(g, -1.0));
            }
            Op::Mul { a, b } => {
                accumulate(grads, *a, ops::mul(g, &self.values[*b]));
                accumulate(grads, *b, ops::mul(g, &self.values[*a]));
            }
            Op::Scale { x, s } => accumulate(grads, *x, ops::scale(g, *s)),
            Op::Relu { x } => {
                let mut dx = g.clone();
                for (d, &v) in dx.as_mut_slice().iter_mut().zip(self.values[*x].as_slice()) {
                    if v <= 0.0 {
                        *d = 0.0;
                    }
                }
                accumulate(grads, *x, dx);
            }
            Op::Sigmoid { x } => {
                let y = &self.values[i];
                let mut dx = g.clone();
                for (d, &yv) in dx.as_mut_slice().iter_mut().zip(y.as_slice()) {
                    *d *= yv * (1.0 - yv);
                }
                accumulate(grads, *x, dx);
            }
            Op::ConcatCols { parts } => {
                let mut off = 0;
                for &p in parts {
                    let w = self.values[p].cols();
                    let mut dp = Tensor::zeros(g.rows(), w);
                    for r in 0..g.rows() {
                        dp.row_mut(r).copy_from_slice(&g.row(r)[off..off + w]);
                    }
                    off += w;
                    accumulate(grads, p, dp);
                }
            }
            Op::ConcatRows { parts } => {
                let mut off = 0;
                for &p in parts {
                    let rows = self.values[p].rows();
                    let cols = self.values[p].cols();
                    let dp = Tensor::from_vec(
                        rows,
                        cols,
                        g.as_slice()[off * cols..(off + rows) * cols].to_vec(),
                    );
                    off += rows;
                    accumulate(grads, p, dp);
                }
            }
            Op::GatherRows { src, idx } => {
                let mut dsrc = Tensor::zeros(self.values[*src].rows(), self.values[*src].cols());
                for (r, &s) in idx.iter().enumerate() {
                    for (d, &v) in dsrc.row_mut(s).iter_mut().zip(g.row(r)) {
                        *d += v;
                    }
                }
                accumulate(grads, *src, dsrc);
            }
            Op::Dropout { x, mask, scale } => {
                let mut dx = g.clone();
                for (d, &keep) in dx.as_mut_slice().iter_mut().zip(mask) {
                    *d = if keep { *d * scale } else { 0.0 };
                }
                accumulate(grads, *x, dx);
            }
            Op::SoftmaxRowsMasked { x, mask } => {
                let y = &self.values[i];
                let cols = y.cols();
                let mut dx = Tensor::zeros(y.rows(), cols);
                for r in 0..y.rows() {
                    let yr = y.row(r);
                    let gr = g.row(r);
                    let mrow = &mask[r * cols..(r + 1) * cols];
                    let dot: f32 = yr.iter().zip(gr).map(|(a, b)| a * b).sum();
                    let dr = dx.row_mut(r);
                    for c in 0..cols {
                        if mrow[c] {
                            dr[c] = yr[c] * (gr[c] - dot);
                        }
                    }
                }
                accumulate(grads, *x, dx);
            }
            Op::AttnScores { q, k, scale } => {
                let qv = &self.values[*q];
                let kv = &self.values[*k];
                let n = qv.rows();
                let kk = kv.rows() / n;
                let mut dq = Tensor::zeros(qv.rows(), qv.cols());
                let mut dk = Tensor::zeros(kv.rows(), kv.cols());
                for i2 in 0..n {
                    for j in 0..kk {
                        let gs = g.get(i2, j) * scale;
                        if gs == 0.0 {
                            continue;
                        }
                        let kr = kv.row(i2 * kk + j);
                        let qr = qv.row(i2);
                        for (d, &x) in dq.row_mut(i2).iter_mut().zip(kr) {
                            *d += gs * x;
                        }
                        for (d, &x) in dk.row_mut(i2 * kk + j).iter_mut().zip(qr) {
                            *d += gs * x;
                        }
                    }
                }
                accumulate(grads, *q, dq);
                accumulate(grads, *k, dk);
            }
            Op::AttnWeightedSum { w, v } => {
                let wv = &self.values[*w];
                let vv = &self.values[*v];
                let (n, kk) = wv.shape();
                let mut dw = Tensor::zeros(n, kk);
                let mut dv = Tensor::zeros(vv.rows(), vv.cols());
                for i2 in 0..n {
                    let gr = g.row(i2);
                    for j in 0..kk {
                        let vr = vv.row(i2 * kk + j);
                        dw.set(i2, j, gr.iter().zip(vr).map(|(a, b)| a * b).sum());
                        let weight = wv.get(i2, j);
                        if weight != 0.0 {
                            for (d, &x) in dv.row_mut(i2 * kk + j).iter_mut().zip(gr) {
                                *d += weight * x;
                            }
                        }
                    }
                }
                accumulate(grads, *w, dw);
                accumulate(grads, *v, dv);
            }
            Op::TimeEncode { dt, omega, phi } => {
                let om = &self.values[*omega];
                let ph = &self.values[*phi];
                let d = om.cols();
                let mut dom = Tensor::zeros(1, d);
                let mut dph = Tensor::zeros(1, d);
                for (r, &t) in dt.iter().enumerate() {
                    for (j, &gv) in g.row(r).iter().enumerate().take(d) {
                        let s = -(t * om.get(0, j) + ph.get(0, j)).sin() * gv;
                        dom.as_mut_slice()[j] += s * t;
                        dph.as_mut_slice()[j] += s;
                    }
                }
                accumulate(grads, *omega, dom);
                accumulate(grads, *phi, dph);
            }
            Op::BceWithLogits { logits, targets } => {
                let lv = &self.values[*logits];
                let gscalar = g.get(0, 0) / targets.len().max(1) as f32; // lint: allow(lossy-cast, batch sizes stay far below 2^24)
                let mut dl = Tensor::zeros(lv.rows(), lv.cols());
                for ((d, &z), &y) in
                    dl.as_mut_slice().iter_mut().zip(lv.as_slice()).zip(targets)
                {
                    let sig = 1.0 / (1.0 + (-z).exp());
                    *d = (sig - y) * gscalar;
                }
                accumulate(grads, *logits, dl);
            }
        }
    }
}

fn accumulate(grads: &mut [Option<Tensor>], idx: usize, delta: Tensor) {
    match &mut grads[idx] {
        Some(existing) => {
            for (e, &d) in existing.as_mut_slice().iter_mut().zip(delta.as_slice()) {
                *e += d;
            }
        }
        slot @ None => *slot = Some(delta),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Central finite difference of a scalar-loss builder with respect to one
    /// leaf tensor; used to validate every backward rule.
    fn numeric_grad(
        build: &dyn Fn(&mut Tape, Var) -> Var,
        leaf_value: &Tensor,
    ) -> Tensor {
        let eps = 1e-3f32;
        let mut grad = Tensor::zeros(leaf_value.rows(), leaf_value.cols());
        for i in 0..leaf_value.len() {
            let mut plus = leaf_value.clone();
            plus.as_mut_slice()[i] += eps;
            let mut minus = leaf_value.clone();
            minus.as_mut_slice()[i] -= eps;
            let lp = {
                let mut tape = Tape::new();
                let v = tape.leaf(plus);
                let loss = build(&mut tape, v);
                tape.value(loss).get(0, 0)
            };
            let lm = {
                let mut tape = Tape::new();
                let v = tape.leaf(minus);
                let loss = build(&mut tape, v);
                tape.value(loss).get(0, 0)
            };
            grad.as_mut_slice()[i] = (lp - lm) / (2.0 * eps);
        }
        grad
    }

    fn check_grad(build: &dyn Fn(&mut Tape, Var) -> Var, leaf_value: Tensor, tol: f32) {
        let mut tape = Tape::new();
        let v = tape.leaf(leaf_value.clone());
        let loss = build(&mut tape, v);
        let grads = tape.backward(loss);
        let analytic = grads.get(v).expect("leaf should receive a gradient");
        let numeric = numeric_grad(build, &leaf_value);
        let diff = analytic.max_abs_diff(&numeric);
        assert!(
            diff < tol,
            "gradient mismatch: max diff {diff}\nanalytic {analytic:?}\nnumeric {numeric:?}"
        );
    }

    fn test_tensor(rows: usize, cols: usize) -> Tensor {
        let data = (0..rows * cols).map(|i| ((i as f32) * 0.37).sin() * 0.8).collect();
        Tensor::from_vec(rows, cols, data)
    }

    /// Reduces any tensor to a scalar via a fixed quadratic so gradients are
    /// nondegenerate.
    fn to_scalar(tape: &mut Tape, v: Var) -> Var {
        let (r, c) = tape.value(v).shape();
        let w = tape.leaf(Tensor::from_vec(
            c,
            1,
            (0..c).map(|i| 0.3 + 0.1 * i as f32).collect(),
        ));
        let col = tape.matmul(v, w); // [r,1]
        let ones = tape.leaf(Tensor::from_vec(1, r, vec![1.0; r]));
        let s = tape.matmul(ones, col); // [1,1]
        tape.mul(s, s)
    }

    #[test]
    fn grad_matmul_left_and_right() {
        let b_val = test_tensor(4, 3);
        check_grad(
            &move |tape, a| {
                let b = tape.leaf(b_val.clone());
                let c = tape.matmul(a, b);
                to_scalar(tape, c)
            },
            test_tensor(2, 4),
            1e-2,
        );
        let a_val = test_tensor(2, 4);
        check_grad(
            &move |tape, b| {
                let a = tape.leaf(a_val.clone());
                let c = tape.matmul(a, b);
                to_scalar(tape, c)
            },
            test_tensor(4, 3),
            1e-2,
        );
    }

    #[test]
    fn grad_add_bias() {
        check_grad(
            &|tape, bias| {
                let x = tape.leaf(test_tensor(3, 2));
                let y = tape.add_bias(x, bias);
                to_scalar(tape, y)
            },
            test_tensor(1, 2),
            1e-2,
        );
    }

    #[test]
    fn grad_elementwise_ops() {
        // Shift values off 0 — ReLU's kink makes finite differences wrong there.
        let mut relu_in = test_tensor(3, 3);
        for v in relu_in.as_mut_slice() {
            if v.abs() < 0.05 {
                *v += 0.1;
            }
        }
        check_grad(
            &|tape, x| {
                let y = tape.relu(x);
                to_scalar(tape, y)
            },
            relu_in,
            1e-2,
        );
        check_grad(
            &|tape, x| {
                let y = tape.sigmoid(x);
                to_scalar(tape, y)
            },
            test_tensor(2, 3),
            1e-2,
        );
        check_grad(
            &|tape, x| {
                let o = tape.leaf(test_tensor(2, 3));
                let y = tape.mul(x, o);
                let z = tape.add(y, x);
                let w = tape.sub(z, o);
                let s = tape.scale(w, 1.3);
                to_scalar(tape, s)
            },
            test_tensor(2, 3),
            1e-2,
        );
    }

    #[test]
    fn grad_concat_and_gather() {
        check_grad(
            &|tape, x| {
                let o = tape.leaf(test_tensor(3, 2));
                let c = tape.concat_cols(&[x, o]);
                let g = tape.gather_rows(c, &[0, 2, 2, 1]);
                to_scalar(tape, g)
            },
            test_tensor(3, 2),
            1e-2,
        );
        check_grad(
            &|tape, x| {
                let o = tape.leaf(test_tensor(2, 3));
                let c = tape.concat_rows(&[o, x]);
                to_scalar(tape, c)
            },
            test_tensor(2, 3),
            1e-2,
        );
    }

    #[test]
    fn grad_softmax_masked() {
        let mask = vec![true, true, false, true, true, true];
        check_grad(
            &move |tape, x| {
                let y = tape.softmax_rows_masked(x, &mask);
                to_scalar(tape, y)
            },
            test_tensor(2, 3),
            1e-2,
        );
    }

    #[test]
    fn grad_attn_scores_and_weighted_sum() {
        // q: [2, 3]; keys: [2*2, 3]; weights: [2,2]; values: [4,3]
        let key_val = test_tensor(4, 3);
        check_grad(
            &move |tape, q| {
                let k = tape.leaf(key_val.clone());
                let s = tape.attn_scores(q, k, 0.5);
                to_scalar(tape, s)
            },
            test_tensor(2, 3),
            1e-2,
        );
        let q_val = test_tensor(2, 3);
        check_grad(
            &move |tape, k| {
                let q = tape.leaf(q_val.clone());
                let s = tape.attn_scores(q, k, 0.5);
                to_scalar(tape, s)
            },
            test_tensor(4, 3),
            1e-2,
        );
        let v_val = test_tensor(4, 3);
        check_grad(
            &move |tape, w| {
                let v = tape.leaf(v_val.clone());
                let o = tape.attn_weighted_sum(w, v);
                to_scalar(tape, o)
            },
            test_tensor(2, 2),
            1e-2,
        );
        let w_val = test_tensor(2, 2);
        check_grad(
            &move |tape, v| {
                let w = tape.leaf(w_val.clone());
                let o = tape.attn_weighted_sum(w, v);
                to_scalar(tape, o)
            },
            test_tensor(4, 3),
            1e-2,
        );
    }

    #[test]
    fn grad_time_encode() {
        let dts = vec![0.0f32, 0.5, 2.0];
        let phi_val = test_tensor(1, 4);
        let dts2 = dts.clone();
        check_grad(
            &move |tape, omega| {
                let phi = tape.leaf(phi_val.clone());
                let e = tape.time_encode(&dts2, omega, phi);
                to_scalar(tape, e)
            },
            test_tensor(1, 4),
            1e-2,
        );
        let omega_val = test_tensor(1, 4);
        check_grad(
            &move |tape, phi| {
                let omega = tape.leaf(omega_val.clone());
                let e = tape.time_encode(&dts, omega, phi);
                to_scalar(tape, e)
            },
            test_tensor(1, 4),
            1e-2,
        );
    }

    #[test]
    fn grad_dropout_with_fixed_mask() {
        use rand::SeedableRng;
        // Seeding inside the builder regenerates the identical mask for the
        // analytic pass and every finite-difference evaluation.
        check_grad(
            &|tape, x| {
                let mut rng = StdRng::seed_from_u64(99);
                let y = tape.dropout(x, 0.4, &mut rng);
                to_scalar(tape, y)
            },
            test_tensor(4, 3),
            1e-2,
        );
    }

    #[test]
    fn dropout_zero_probability_is_identity() {
        use rand::SeedableRng;
        let mut tape = Tape::new();
        let x = tape.leaf(test_tensor(3, 3));
        let mut rng = StdRng::seed_from_u64(1);
        let y = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(x, y, "p = 0 must be a no-op returning the same var");
    }

    #[test]
    fn dropout_preserves_expectation() {
        use rand::SeedableRng;
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::full(100, 100, 1.0));
        let mut rng = StdRng::seed_from_u64(5);
        let y = tape.dropout(x, 0.3, &mut rng);
        let mean = ops::mean_all(tape.value(y));
        assert!((mean - 1.0).abs() < 0.05, "inverted dropout keeps E[x], got {mean}");
        // Survivors are scaled by 1/(1-p), dropped entries are exactly 0.
        for &v in tape.value(y).as_slice() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn grad_bce_with_logits() {
        let targets = vec![1.0f32, 0.0, 1.0, 0.0];
        check_grad(
            &move |tape, logits| tape.bce_with_logits(logits, &targets),
            test_tensor(4, 1),
            1e-2,
        );
    }

    #[test]
    fn bce_loss_value_matches_manual() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_vec(2, 1, vec![0.0, 0.0]));
        let loss = tape.bce_with_logits(logits, &[1.0, 0.0]);
        // BCE at logit 0 is ln 2 regardless of the target.
        assert!((tape.value(loss).get(0, 0) - std::f32::consts::LN_2).abs() < 1e-6);
    }

    #[test]
    fn grads_flow_through_diamond() {
        // x used twice; gradient must accumulate.
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1, vec![3.0]));
        let y = tape.add(x, x); // y = 2x, dy/dx = 2
        let loss = tape.mul(y, y); // loss = 4x^2, d/dx = 8x = 24
        let grads = tape.backward(loss);
        assert!((grads.get(x).unwrap().get(0, 0) - 24.0).abs() < 1e-4);
    }

    #[test]
    fn unused_leaf_gets_no_gradient() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_vec(1, 1, vec![1.0]));
        let unused = tape.leaf(Tensor::from_vec(1, 1, vec![5.0]));
        let loss = tape.mul(x, x);
        let grads = tape.backward(loss);
        assert!(grads.get(unused).is_none());
        assert!(grads.get(x).is_some());
    }
}
