//! The core 2-D `f32` tensor type.

use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};
use std::fmt;

/// A row-major 2-D matrix of `f32`.
///
/// All TGAT computations are batched matrix operations of shape
/// `[batch, features]`, so a dedicated 2-D type keeps the kernels simple and
/// fast. Row vectors are represented as `1 x n`.
#[derive(Clone, PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    rows: usize,
    cols: usize,
}

impl Tensor {
    /// Creates a tensor from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "buffer length {} does not match shape {}x{}",
            data.len(),
            rows,
            cols
        );
        Self { data, rows, cols }
    }

    /// Creates a `rows x cols` tensor filled with zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self { // alloc-ok: the allocation primitive itself; hot paths reach it only through Scratch pool misses
        Self { data: vec![0.0; rows * cols], rows, cols }
    }

    /// Creates a `rows x cols` tensor filled with `value`.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self { data: vec![value; rows * cols], rows, cols }
    }

    /// Creates a `1 x n` row vector from a slice.
    pub fn row_vector(values: &[f32]) -> Self {
        Self::from_vec(1, values.len(), values.to_vec())
    }

    /// Number of rows.
    #[inline]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[inline]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// `(rows, cols)` pair.
    #[inline]
    pub fn shape(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True if the tensor holds no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Flat row-major view of the data.
    #[inline]
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable flat row-major view of the data.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor, returning its flat buffer.
    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrows row `r` as a slice.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutably borrows row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        let c = self.cols;
        &mut self.data[r * c..(r + 1) * c]
    }

    /// Element accessor.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element setter.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Reinterprets the buffer with a new shape of equal element count.
    ///
    /// # Panics
    /// Panics if `rows * cols != self.len()`.
    pub fn reshape(mut self, rows: usize, cols: usize) -> Self {
        assert_eq!(rows * cols, self.data.len(), "reshape must preserve element count");
        self.rows = rows;
        self.cols = cols;
        self
    }

    /// Largest absolute difference against another tensor of the same shape.
    ///
    /// Used by the equivalence tests that validate TGOpt against the
    /// baseline within floating-point tolerance (paper §5.1.3).
    pub fn max_abs_diff(&self, other: &Tensor) -> f32 {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in max_abs_diff");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max)
    }

    /// True if every element is finite (no NaN / infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|v| v.is_finite())
    }
}

impl Serialize for Tensor {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (self.rows, self.cols, &self.data).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for Tensor {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let (rows, cols, data): (usize, usize, Vec<f32>) = Deserialize::deserialize(deserializer)?;
        if data.len() != rows * cols {
            return Err(D::Error::custom(format!(
                "tensor payload length {} does not match shape {}x{}",
                data.len(),
                rows,
                cols
            )));
        }
        Ok(Tensor { data, rows, cols })
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            writeln!(f)?;
            for r in 0..self.rows {
                writeln!(f, "  {:?}", self.row(r))?;
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_and_accessors() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(t.shape(), (2, 3));
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        assert_eq!(t.row(1), &[4.0, 5.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match shape")]
    fn from_vec_bad_shape_panics() {
        let _ = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0]);
    }

    #[test]
    fn zeros_full_and_set() {
        let mut t = Tensor::zeros(3, 2);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
        t.set(2, 1, 7.5);
        assert_eq!(t.get(2, 1), 7.5);
        let f = Tensor::full(2, 2, 3.0);
        assert!(f.as_slice().iter().all(|&v| v == 3.0));
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let r = t.reshape(3, 2);
        assert_eq!(r.shape(), (3, 2));
        assert_eq!(r.row(2), &[5.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "preserve element count")]
    fn reshape_bad_count_panics() {
        let _ = Tensor::zeros(2, 3).reshape(2, 2);
    }

    #[test]
    fn max_abs_diff_works() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![1.5, 2.0, 2.0]);
        assert_eq!(a.max_abs_diff(&b), 1.0);
        assert_eq!(a.max_abs_diff(&a), 0.0);
    }

    #[test]
    fn all_finite_detects_nan() {
        let mut t = Tensor::zeros(1, 2);
        assert!(t.all_finite());
        t.set(0, 1, f32::NAN);
        assert!(!t.all_finite());
    }

    #[test]
    fn row_vector_shape() {
        let v = Tensor::row_vector(&[1.0, 2.0]);
        assert_eq!(v.shape(), (1, 2));
    }
}
