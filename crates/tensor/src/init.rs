//! Parameter initialization helpers.

use crate::Tensor;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Xavier/Glorot uniform initialization for a `fan_in x fan_out` weight.
pub fn xavier_uniform(rng: &mut StdRng, fan_in: usize, fan_out: usize) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out) as f32).sqrt(); // lint: allow(lossy-cast, layer fan sums stay far below 2^24)
    let data = (0..fan_in * fan_out)
        .map(|_| rng.gen_range(-bound..=bound))
        .collect();
    Tensor::from_vec(fan_in, fan_out, data)
}

/// Uniform tensor in `[-bound, bound]`.
pub fn uniform(rng: &mut StdRng, rows: usize, cols: usize, bound: f32) -> Tensor {
    let data = (0..rows * cols).map(|_| rng.gen_range(-bound..=bound)).collect();
    Tensor::from_vec(rows, cols, data)
}

/// Standard-normal tensor scaled by `std`.
pub fn normal(rng: &mut StdRng, rows: usize, cols: usize, std: f32) -> Tensor {
    // Box-Muller transform; rand's distributions feature is avoided to keep
    // the dependency surface minimal.
    let n = rows * cols;
    let mut data = Vec::with_capacity(n);
    while data.len() < n {
        let u1: f32 = rng.gen_range(f32::EPSILON..1.0);
        let u2: f32 = rng.gen_range(0.0..1.0);
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        data.push(r * theta.cos() * std);
        if data.len() < n {
            data.push(r * theta.sin() * std);
        }
    }
    Tensor::from_vec(rows, cols, data)
}

/// Deterministic RNG from a seed; all reproduction experiments are seeded.
pub fn seeded_rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn xavier_respects_bound() {
        let mut rng = seeded_rng(1);
        let w = xavier_uniform(&mut rng, 64, 32);
        let bound = (6.0 / 96.0f32).sqrt();
        assert!(w.as_slice().iter().all(|v| v.abs() <= bound + 1e-6));
        assert_eq!(w.shape(), (64, 32));
    }

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        let wa = xavier_uniform(&mut a, 8, 8);
        let wb = xavier_uniform(&mut b, 8, 8);
        assert_eq!(wa.as_slice(), wb.as_slice());
    }

    #[test]
    fn normal_has_roughly_right_moments() {
        let mut rng = seeded_rng(7);
        let t = normal(&mut rng, 100, 100, 2.0);
        let mean: f32 = t.as_slice().iter().sum::<f32>() / t.len() as f32;
        let var: f32 =
            t.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / t.len() as f32;
        assert!(mean.abs() < 0.1, "mean {mean} too far from 0");
        assert!((var.sqrt() - 2.0).abs() < 0.1, "std {} too far from 2", var.sqrt());
    }

    #[test]
    fn uniform_respects_bound() {
        let mut rng = seeded_rng(3);
        let t = uniform(&mut rng, 10, 10, 0.5);
        assert!(t.as_slice().iter().all(|v| v.abs() <= 0.5));
    }
}
