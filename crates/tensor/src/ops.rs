//! Elementwise kernels, reductions, masked softmax, concatenation and
//! row gathering — the non-matmul operations TGAT needs.
//!
//! Most operators come in two forms: an allocating convenience wrapper and
//! an `_into` / `_inplace` variant that writes into a caller-provided
//! destination (usually a [`crate::scratch::Scratch`] buffer). The hot path
//! uses the latter so a steady-state attention batch touches the allocator
//! O(1) times; the wrappers keep call sites outside the hot path readable.

use crate::matmul::{axpy, dot};
use crate::{Tensor, PAR_THRESHOLD};
use rayon::prelude::*;

/// Applies `f` to every element, in place, parallelizing large tensors.
pub fn map_inplace(t: &mut Tensor, f: impl Fn(f32) -> f32 + Sync) {
    let data = t.as_mut_slice();
    if data.len() < PAR_THRESHOLD {
        for v in data.iter_mut() {
            *v = f(*v);
        }
    } else {
        data.par_iter_mut().for_each(|v| *v = f(*v));
    }
}

/// Returns `relu(t)`.
pub fn relu(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    relu_inplace(&mut out);
    out
}

/// `relu` without the copy.
pub fn relu_inplace(t: &mut Tensor) {
    map_inplace(t, |v| v.max(0.0));
}

/// Returns `sigmoid(t)`.
pub fn sigmoid(t: &Tensor) -> Tensor {
    let mut out = t.clone();
    map_inplace(&mut out, |v| 1.0 / (1.0 + (-v).exp()));
    out
}

/// Elementwise sum of two same-shape tensors.
pub fn add(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "add: shape mismatch");
    let mut out = a.clone();
    for (o, &bv) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o += bv;
    }
    out
}

/// Elementwise difference `a - b`.
pub fn sub(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "sub: shape mismatch");
    let mut out = a.clone();
    for (o, &bv) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o -= bv;
    }
    out
}

/// Elementwise product of two same-shape tensors.
pub fn mul(a: &Tensor, b: &Tensor) -> Tensor {
    assert_eq!(a.shape(), b.shape(), "mul: shape mismatch");
    let mut out = a.clone();
    for (o, &bv) in out.as_mut_slice().iter_mut().zip(b.as_slice()) {
        *o *= bv;
    }
    out
}

/// Scalar multiplication.
pub fn scale(t: &Tensor, s: f32) -> Tensor {
    let mut out = t.clone();
    map_inplace(&mut out, |v| v * s);
    out
}

/// Adds a `1 x cols` bias row to every row of `t`.
pub fn add_bias(t: &Tensor, bias: &Tensor) -> Tensor {
    let mut out = t.clone();
    add_bias_inplace(&mut out, bias);
    out
}

/// `add_bias` without the copy.
///
/// Zero-column (or zero-row) tensors are a no-op: there are no elements to
/// add to, and an explicit early return keeps the `chunks_mut` below away
/// from a zero chunk size.
pub fn add_bias_inplace(t: &mut Tensor, bias: &Tensor) {
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), t.cols(), "bias width must match tensor width");
    let cols = t.cols();
    if t.is_empty() {
        return;
    }
    let b = bias.as_slice();
    for row in t.as_mut_slice().chunks_mut(cols) {
        for (o, &bv) in row.iter_mut().zip(b) {
            *o += bv;
        }
    }
}

/// Concatenates tensors side by side (same row count).
pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
    let rows = parts.first().map_or(0, |p| p.rows());
    let total: usize = parts.iter().map(|p| p.cols()).sum();
    let mut out = Tensor::zeros(rows, total);
    concat_cols_into(parts, &mut out);
    out
}

/// [`concat_cols`] into a preallocated `[rows, sum(cols)]` destination.
///
/// Every output element is written exactly once (no zero-fill pass), which
/// is what makes this the right way to build the attention inputs
/// `[h | e | Phi]` inside scratch buffers.
// hot-path-root(alloc)
pub fn concat_cols_into(parts: &[&Tensor], out: &mut Tensor) {
    assert!(!parts.is_empty(), "concat_cols needs at least one part");
    let rows = parts[0].rows();
    for p in parts {
        assert_eq!(p.rows(), rows, "concat_cols: row count mismatch");
    }
    let total: usize = parts.iter().map(|p| p.cols()).sum();
    assert_eq!(out.shape(), (rows, total), "concat_cols_into: bad output shape");
    for r in 0..rows {
        let orow = out.row_mut(r);
        let mut off = 0;
        for p in parts {
            let w = p.cols();
            orow[off..off + w].copy_from_slice(p.row(r));
            off += w;
        }
    }
}

/// Stacks tensors on top of each other (same column count).
pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
    assert!(!parts.is_empty(), "concat_rows needs at least one part");
    let cols = parts[0].cols();
    let mut data = Vec::with_capacity(parts.iter().map(|p| p.len()).sum());
    let mut rows = 0;
    for p in parts {
        assert_eq!(p.cols(), cols, "concat_rows: column count mismatch");
        data.extend_from_slice(p.as_slice());
        rows += p.rows();
    }
    Tensor::from_vec(rows, cols, data)
}

/// Gathers rows of `src` by index: `out.row(i) = src.row(idx[i])`.
pub fn gather_rows(src: &Tensor, idx: &[usize]) -> Tensor {
    let mut out = Tensor::zeros(idx.len(), src.cols());
    gather_rows_into(src, idx, &mut out);
    out
}

/// [`gather_rows`] into a preallocated `[idx.len(), src.cols()]`
/// destination; prior contents are overwritten.
// hot-path-root(alloc)
pub fn gather_rows_into(src: &Tensor, idx: &[usize], out: &mut Tensor) {
    let cols = src.cols();
    assert_eq!(out.shape(), (idx.len(), cols), "gather_rows_into: bad output shape");
    if out.is_empty() {
        return;
    }
    if idx.len() * cols < PAR_THRESHOLD {
        for (i, &r) in idx.iter().enumerate() {
            out.row_mut(i).copy_from_slice(src.row(r));
        }
    } else {
        out.as_mut_slice()
            .par_chunks_mut(cols)
            .zip(idx.par_iter())
            .for_each(|(orow, &r)| orow.copy_from_slice(src.row(r)));
    }
}

/// [`gather_rows_into`] with the index list expressed as a map over
/// `0..n`: `out.row(i) = src.row(map(i))`. Lets hot-path callers translate
/// ids (node ids, edge ids with padding) on the fly instead of
/// materialising a `Vec<usize>` index buffer per batch.
// hot-path-root(alloc)
pub fn gather_rows_map_into<F>(src: &Tensor, n: usize, map: F, out: &mut Tensor)
where
    F: Fn(usize) -> usize + Sync,
{
    let cols = src.cols();
    assert_eq!(out.shape(), (n, cols), "gather_rows_map_into: bad output shape");
    if out.is_empty() {
        return;
    }
    if n * cols < PAR_THRESHOLD {
        for i in 0..n {
            out.row_mut(i).copy_from_slice(src.row(map(i)));
        }
    } else {
        out.as_mut_slice()
            .par_chunks_mut(cols)
            .enumerate()
            .for_each(|(i, orow)| orow.copy_from_slice(src.row(map(i))));
    }
}

/// Splits the first `n` rows off a tensor, returning `(head, tail)`.
pub fn split_rows(t: &Tensor, n: usize) -> (Tensor, Tensor) {
    assert!(n <= t.rows(), "split point beyond row count");
    let cols = t.cols();
    let head = Tensor::from_vec(n, cols, t.as_slice()[..n * cols].to_vec());
    let tail = Tensor::from_vec(t.rows() - n, cols, t.as_slice()[n * cols..].to_vec());
    (head, tail)
}

/// [`split_rows`] into two preallocated destinations of shapes
/// `[n, cols]` and `[t.rows()-n, cols]`.
// hot-path-root(alloc)
pub fn split_rows_into(t: &Tensor, n: usize, head: &mut Tensor, tail: &mut Tensor) {
    assert!(n <= t.rows(), "split point beyond row count");
    let cols = t.cols();
    assert_eq!(head.shape(), (n, cols), "split_rows_into: bad head shape");
    assert_eq!(tail.shape(), (t.rows() - n, cols), "split_rows_into: bad tail shape");
    head.as_mut_slice().copy_from_slice(&t.as_slice()[..n * cols]);
    tail.as_mut_slice().copy_from_slice(&t.as_slice()[n * cols..]);
}

/// Masked row softmax used by the attention operator.
///
/// `mask[r * cols + c] == false` marks a padding slot whose weight must be
/// exactly zero. Rows whose slots are all masked produce all-zero weights
/// (a node with no temporal neighbors aggregates nothing).
pub fn softmax_rows_masked(t: &Tensor, mask: &[bool]) -> Tensor {
    let mut out = t.clone();
    scale_softmax_rows_masked_inplace(&mut out, 1.0, mask);
    out
}

/// Fused `softmax_rows(masked(scale * t))`, in place.
///
/// The scale is folded into the exponent — `exp(s*v - max(s*v))` equals
/// `exp((v - max_v) * s)` for `s > 0` — so the scores tensor is read and
/// written once instead of taking a separate scaling pass. This is the form
/// the attention operator wants: `softmax(QK^T / sqrt(d))` with the mask
/// marking padded neighbor slots.
pub fn scale_softmax_rows_masked_inplace(t: &mut Tensor, s: f32, mask: &[bool]) {
    assert!(s > 0.0, "softmax scale must be positive (got {s})");
    assert_eq!(mask.len(), t.len(), "mask length must match tensor size");
    let cols = t.cols();
    if t.is_empty() {
        return; // zero rows or zero cols: nothing to normalize
    }
    let len = t.len();
    let body = |(row, mrow): (&mut [f32], &[bool])| {
        let mut max = f32::NEG_INFINITY;
        for (v, &m) in row.iter().zip(mrow) {
            if m && *v > max {
                max = *v;
            }
        }
        if max == f32::NEG_INFINITY {
            row.iter_mut().for_each(|v| *v = 0.0);
            return;
        }
        let mut sum = 0.0;
        for (v, &m) in row.iter_mut().zip(mrow) {
            if m {
                *v = ((*v - max) * s).exp();
                sum += *v;
            } else {
                *v = 0.0;
            }
        }
        let inv = 1.0 / sum;
        row.iter_mut().for_each(|v| *v *= inv);
    };
    if len < PAR_THRESHOLD {
        t.as_mut_slice().chunks_mut(cols).zip(mask.chunks(cols)).for_each(body);
    } else {
        t.as_mut_slice()
            .par_chunks_mut(cols)
            .zip(mask.par_chunks(cols))
            .for_each(body);
    }
}

/// Batched attention scores: `q` is `[N, d]`, `key` is `[N*K, d]`, result is
/// `[N, K]` with `s[n,k] = <q_n, key_{n*K+k}> * scale`.
///
/// This is the hot kernel of the temporal attention operator `M`; each
/// target's score row is independent, so rows are computed in parallel.
pub fn attn_scores(q: &Tensor, key: &Tensor, scale: f32) -> Tensor {
    let n = q.rows();
    if n == 0 {
        return Tensor::zeros(0, 0);
    }
    let k = key.rows() / n;
    let mut out = Tensor::zeros(n, k);
    attn_scores_into(q, key, scale, &mut out);
    out
}

/// [`attn_scores`] into a preallocated `[N, K]` destination; prior contents
/// are overwritten. For `N == 0` the destination must have zero rows.
// hot-path-root(alloc)
pub fn attn_scores_into(q: &Tensor, key: &Tensor, scale: f32, out: &mut Tensor) {
    let (n, d) = q.shape();
    if n == 0 {
        assert_eq!(out.rows(), 0, "attn_scores_into: bad output shape");
        return;
    }
    assert_eq!(key.rows() % n, 0, "key rows must be a multiple of q rows");
    assert_eq!(key.cols(), d, "attn_scores dim mismatch");
    let k = key.rows() / n;
    assert_eq!(out.shape(), (n, k), "attn_scores_into: bad output shape");
    if k == 0 {
        return;
    }
    let body = |i: usize, orow: &mut [f32]| {
        let qr = q.row(i);
        for (j, o) in orow.iter_mut().enumerate() {
            *o = dot(qr, key.row(i * k + j)) * scale;
        }
    };
    if n * k * d < PAR_THRESHOLD {
        for i in 0..n {
            body(i, out.row_mut(i));
        }
    } else {
        out.as_mut_slice()
            .par_chunks_mut(k)
            .enumerate()
            .for_each(|(i, orow)| body(i, orow));
    }
}

/// Batched weighted neighbor sum: `w` is `[N, K]`, `v` is `[N*K, d]`, result
/// is `[N, d]` with `out_n = sum_k w[n,k] * v_{n*K+k}`.
pub fn attn_weighted_sum(w: &Tensor, v: &Tensor) -> Tensor {
    let mut out = Tensor::zeros(w.rows(), v.cols());
    attn_weighted_sum_into(w, v, &mut out, 0);
    out
}

/// [`attn_weighted_sum`] writing head output directly into the column block
/// `[col_off, col_off + d)` of a wider `[N, D]` destination.
///
/// Multi-head attention concatenates per-head outputs; giving the sum a
/// column offset writes each head straight into its slot of the concat
/// buffer, eliminating the per-head temporary plus copy. The target block is
/// zeroed first; the per-slot `weight == 0.0` skip is the masked-padding
/// fast path (softmax writes exact zeros there), not a dense-path branch.
// hot-path-root(alloc)
pub fn attn_weighted_sum_into(w: &Tensor, v: &Tensor, out: &mut Tensor, col_off: usize) {
    let (n, k) = w.shape();
    assert_eq!(v.rows(), n * k, "value rows must equal N*K");
    let d = v.cols();
    assert_eq!(out.rows(), n, "attn_weighted_sum_into: row count mismatch");
    assert!(col_off + d <= out.cols(), "attn_weighted_sum_into: column block out of range");
    if n == 0 || d == 0 {
        return;
    }
    let body = |i: usize, orow_full: &mut [f32]| {
        let orow = &mut orow_full[col_off..col_off + d];
        orow.fill(0.0);
        for j in 0..k {
            let weight = w.get(i, j);
            if weight == 0.0 {
                continue; // masked padding slots
            }
            axpy(weight, v.row(i * k + j), orow);
        }
    };
    if n * k * d < PAR_THRESHOLD {
        for i in 0..n {
            body(i, out.row_mut(i));
        }
    } else {
        let cols = out.cols();
        out.as_mut_slice()
            .par_chunks_mut(cols)
            .enumerate()
            .for_each(|(i, orow)| body(i, orow));
    }
}

/// Sum of all elements.
pub fn sum_all(t: &Tensor) -> f32 {
    t.as_slice().iter().sum()
}

/// Mean of all elements (0 for an empty tensor).
pub fn mean_all(t: &Tensor) -> f32 {
    if t.is_empty() {
        0.0
    } else {
        sum_all(t) / t.len() as f32 // lint: allow(lossy-cast, element counts stay far below 2^24)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn relu_clamps_negatives() {
        let t = Tensor::from_vec(1, 4, vec![-1.0, 0.0, 2.0, -0.5]);
        assert_eq!(relu(&t).as_slice(), &[0.0, 0.0, 2.0, 0.0]);
    }

    #[test]
    fn sigmoid_midpoint_and_bounds() {
        let t = Tensor::from_vec(1, 3, vec![0.0, 100.0, -100.0]);
        let s = sigmoid(&t);
        assert!((s.get(0, 0) - 0.5).abs() < 1e-6);
        assert!((s.get(0, 1) - 1.0).abs() < 1e-6);
        assert!(s.get(0, 2) < 1e-6);
    }

    #[test]
    fn add_sub_mul_scale() {
        let a = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Tensor::from_vec(1, 3, vec![4.0, 5.0, 6.0]);
        assert_eq!(add(&a, &b).as_slice(), &[5.0, 7.0, 9.0]);
        assert_eq!(sub(&b, &a).as_slice(), &[3.0, 3.0, 3.0]);
        assert_eq!(mul(&a, &b).as_slice(), &[4.0, 10.0, 18.0]);
        assert_eq!(scale(&a, 2.0).as_slice(), &[2.0, 4.0, 6.0]);
    }

    #[test]
    fn add_bias_broadcasts() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let b = Tensor::row_vector(&[10.0, 20.0]);
        assert_eq!(add_bias(&t, &b).as_slice(), &[11.0, 22.0, 13.0, 24.0]);
    }

    #[test]
    fn add_bias_zero_cols_and_rows() {
        // The old implementation papered over cols == 0 with `cols.max(1)`;
        // now it is an explicit no-op for any empty tensor.
        let empty_cols = Tensor::zeros(3, 0);
        let out = add_bias(&empty_cols, &Tensor::zeros(1, 0));
        assert_eq!(out.shape(), (3, 0));
        let empty_rows = Tensor::zeros(0, 4);
        let out = add_bias(&empty_rows, &Tensor::row_vector(&[1.0, 2.0, 3.0, 4.0]));
        assert_eq!(out.shape(), (0, 4));
    }

    #[test]
    fn concat_cols_layout() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = concat_cols(&[&a, &b]);
        assert_eq!(c.shape(), (2, 3));
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_cols_into_overwrites_stale() {
        let a = Tensor::from_vec(2, 1, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let mut out = Tensor::full(2, 3, 42.0);
        concat_cols_into(&[&a, &b], &mut out);
        assert_eq!(out.as_slice(), concat_cols(&[&a, &b]).as_slice());
    }

    #[test]
    fn concat_rows_layout() {
        let a = Tensor::from_vec(1, 2, vec![1.0, 2.0]);
        let b = Tensor::from_vec(2, 2, vec![3.0, 4.0, 5.0, 6.0]);
        let c = concat_rows(&[&a, &b]);
        assert_eq!(c.shape(), (3, 2));
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_and_split() {
        let src = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let g = gather_rows(&src, &[2, 0, 2]);
        assert_eq!(g.row(0), &[5.0, 6.0]);
        assert_eq!(g.row(1), &[1.0, 2.0]);
        assert_eq!(g.row(2), &[5.0, 6.0]);
        let (h, t) = split_rows(&src, 1);
        assert_eq!(h.shape(), (1, 2));
        assert_eq!(t.shape(), (2, 2));
        assert_eq!(t.row(0), &[3.0, 4.0]);
    }

    #[test]
    fn split_rows_into_matches_split_rows() {
        let src = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let mut head = Tensor::full(1, 2, 9.0);
        let mut tail = Tensor::full(2, 2, 9.0);
        split_rows_into(&src, 1, &mut head, &mut tail);
        let (h, t) = split_rows(&src, 1);
        assert_eq!(head.as_slice(), h.as_slice());
        assert_eq!(tail.as_slice(), t.as_slice());
    }

    #[test]
    fn gather_rows_map_into_matches_gather_rows() {
        let src = Tensor::from_vec(3, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let idx = [2usize, 0, 2, 1];
        let expect = gather_rows(&src, &idx);
        let mut out = Tensor::full(4, 2, 9.0);
        gather_rows_map_into(&src, idx.len(), |i| idx[i], &mut out);
        assert_eq!(out.as_slice(), expect.as_slice());
    }

    #[test]
    fn gather_rows_zero_cols() {
        let src = Tensor::zeros(3, 0);
        let g = gather_rows(&src, &[0, 2, 1, 1]);
        assert_eq!(g.shape(), (4, 0));
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let t = Tensor::from_vec(2, 3, vec![1.0, 2.0, 3.0, -1.0, 0.0, 1.0]);
        let mask = vec![true; 6];
        let s = softmax_rows_masked(&t, &mask);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-5);
        }
        // Softmax is monotone in its inputs.
        assert!(s.get(0, 2) > s.get(0, 1));
    }

    #[test]
    fn softmax_masks_padding() {
        let t = Tensor::from_vec(1, 3, vec![5.0, 1.0, 100.0]);
        let mask = vec![true, true, false];
        let s = softmax_rows_masked(&t, &mask);
        assert_eq!(s.get(0, 2), 0.0);
        assert!((s.row(0).iter().sum::<f32>() - 1.0).abs() < 1e-5);
    }

    #[test]
    fn softmax_all_masked_row_is_zero() {
        let t = Tensor::from_vec(1, 2, vec![3.0, 4.0]);
        let s = softmax_rows_masked(&t, &[false, false]);
        assert_eq!(s.as_slice(), &[0.0, 0.0]);
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let t = Tensor::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let shifted = Tensor::from_vec(1, 3, vec![1001.0, 1002.0, 1003.0]);
        let mask = vec![true; 3];
        let a = softmax_rows_masked(&t, &mask);
        let b = softmax_rows_masked(&shifted, &mask);
        assert!(a.max_abs_diff(&b) < 1e-5);
    }

    #[test]
    fn fused_scale_softmax_matches_composition() {
        let t = Tensor::from_vec(2, 4, vec![1.0, -2.0, 0.5, 3.0, 0.0, 0.0, 1.0, -1.0]);
        let mask = vec![true, true, false, true, true, false, true, true];
        let s = 0.25;
        let mut fused = t.clone();
        scale_softmax_rows_masked_inplace(&mut fused, s, &mask);
        let composed = softmax_rows_masked(&scale(&t, s), &mask);
        assert!(fused.max_abs_diff(&composed) < 1e-6);
    }

    #[test]
    fn fused_scale_softmax_zero_shapes() {
        let mut t = Tensor::zeros(0, 3);
        scale_softmax_rows_masked_inplace(&mut t, 1.0, &[]);
        let mut t = Tensor::zeros(3, 0);
        scale_softmax_rows_masked_inplace(&mut t, 1.0, &[]);
    }

    #[test]
    fn attn_weighted_sum_into_column_block() {
        // Writing into a column block of a wider tensor must equal the
        // standalone sum placed at that offset, leaving other columns alone.
        let w = Tensor::from_vec(2, 2, vec![0.5, 0.5, 1.0, 0.0]);
        let v = Tensor::from_vec(4, 2, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7.0, 8.0]);
        let standalone = attn_weighted_sum(&w, &v);
        let mut wide = Tensor::full(2, 5, 7.0);
        attn_weighted_sum_into(&w, &v, &mut wide, 2);
        for i in 0..2 {
            assert_eq!(&wide.row(i)[2..4], standalone.row(i));
            assert_eq!(wide.row(i)[0], 7.0);
            assert_eq!(wide.row(i)[4], 7.0);
        }
    }

    #[test]
    fn attn_kernels_zero_shapes() {
        assert_eq!(attn_scores(&Tensor::zeros(0, 4), &Tensor::zeros(0, 4), 1.0).shape(), (0, 0));
        let mut out = Tensor::zeros(0, 0);
        attn_scores_into(&Tensor::zeros(0, 4), &Tensor::zeros(0, 4), 1.0, &mut out);
        assert_eq!(attn_weighted_sum(&Tensor::zeros(0, 0), &Tensor::zeros(0, 3)).shape(), (0, 3));
        assert_eq!(attn_weighted_sum(&Tensor::zeros(2, 1), &Tensor::zeros(2, 0)).shape(), (2, 0));
    }

    #[test]
    fn reductions() {
        let t = Tensor::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        assert_eq!(sum_all(&t), 10.0);
        assert_eq!(mean_all(&t), 2.5);
        assert_eq!(mean_all(&Tensor::zeros(0, 3)), 0.0);
    }
}
