//! A recycling arena for per-batch temporary tensors.
//!
//! The attention forward pass allocates a dozen intermediate matrices per
//! layer; at serving batch rates that is thousands of short-lived `Vec`
//! round-trips through the allocator per second. A [`Scratch`] keeps the
//! retired buffers and hands them back on the next batch, so a steady-state
//! batch performs O(1) allocator calls instead of O(intermediates).
//!
//! # Ownership rules
//!
//! * A tensor obtained from [`Scratch::take`] / [`Scratch::zeros`] is an
//!   ordinary owned [`Tensor`] — nothing distinguishes it from a fresh
//!   allocation, and it is always sound to simply drop it.
//! * Returning a tensor with [`Scratch::give`] is an *optimization*, never
//!   an obligation. Escaping tensors (e.g. the final layer output handed to
//!   the caller) just leave the pool permanently.
//! * [`Scratch::take`] returns a tensor with **unspecified contents**; the
//!   caller must fully overwrite it ( `_into` kernels do). Use
//!   [`Scratch::zeros`] when the kernel accumulates.
//! * A `Scratch` is `&mut`-threaded, single-owner state: one per engine /
//!   per serve worker, never shared across threads (it is `Send`, not
//!   `Sync`-shared).

use crate::Tensor;

/// Upper bound on pooled buffers; beyond this, [`Scratch::give`] drops the
/// smallest pooled buffer instead of growing without bound.
const MAX_POOLED: usize = 32;

/// A best-fit pool of retired `f32` buffers (see module docs).
#[derive(Default)]
pub struct Scratch {
    /// Retired buffers, unordered; best-fit selection scans capacities.
    pool: Vec<Vec<f32>>,
}

impl Scratch {
    /// Creates an empty pool.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pops the smallest pooled buffer with capacity >= `need`, if any.
    fn best_fit(&mut self, need: usize) -> Option<Vec<f32>> {
        let mut best: Option<(usize, usize)> = None; // (index, capacity)
        for (i, buf) in self.pool.iter().enumerate() {
            let cap = buf.capacity();
            if cap >= need && best.map_or(true, |(_, bc)| cap < bc) {
                best = Some((i, cap));
            }
        }
        best.map(|(i, _)| self.pool.swap_remove(i))
    }

    /// Takes a `rows x cols` tensor with **unspecified contents** — the
    /// caller must overwrite every element before reading any.
    ///
    /// (Contents are currently zeroed or stale-but-initialized `f32`s, never
    /// uninitialized memory; "unspecified" is a contract, not a UB hazard.)
    pub fn take(&mut self, rows: usize, cols: usize) -> Tensor { // alloc-ok: allocates only on pool miss; steady-state waves recycle the high-water set
        let need = rows * cols;
        match self.best_fit(need) {
            Some(mut buf) => {
                // `resize` only writes the grown tail; reused prefix keeps
                // stale values, which `take`'s contract allows.
                buf.resize(need, 0.0);
                Tensor::from_vec(rows, cols, buf)
            }
            None => Tensor::zeros(rows, cols),
        }
    }

    /// Takes a `rows x cols` tensor guaranteed to be all zeros.
    pub fn zeros(&mut self, rows: usize, cols: usize) -> Tensor {
        let mut t = self.take(rows, cols);
        t.as_mut_slice().fill(0.0);
        t
    }

    /// Returns a tensor's buffer to the pool for reuse.
    pub fn give(&mut self, t: Tensor) { // alloc-ok: the pool vec grows to MAX_POOLED entries once, then swaps in place
        let buf = t.into_vec();
        if buf.capacity() == 0 {
            return;
        }
        if self.pool.len() >= MAX_POOLED {
            // Evict the smallest buffer so the pool keeps its large, most
            // reusable allocations.
            if let Some((i, _)) = self
                .pool
                .iter()
                .enumerate()
                .min_by_key(|(_, b)| b.capacity())
            {
                self.pool.swap_remove(i);
            }
        }
        self.pool.push(buf);
    }

    /// Number of buffers currently pooled (diagnostics / tests).
    pub fn pooled(&self) -> usize {
        self.pool.len()
    }

    /// Total `f32` capacity currently held by the pool (diagnostics).
    pub fn pooled_capacity(&self) -> usize {
        self.pool.iter().map(|b| b.capacity()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_then_give_reuses_allocation() {
        let mut s = Scratch::new();
        let t = s.zeros(8, 16);
        let ptr = t.as_slice().as_ptr();
        s.give(t);
        assert_eq!(s.pooled(), 1);
        // Same size: must come back from the pool, same allocation.
        let t2 = s.take(8, 16);
        assert_eq!(t2.as_slice().as_ptr(), ptr);
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn smaller_request_reuses_larger_buffer() {
        let mut s = Scratch::new();
        s.give(Tensor::zeros(10, 10));
        let t = s.take(3, 3);
        assert_eq!(t.shape(), (3, 3));
        assert_eq!(s.pooled(), 0);
    }

    #[test]
    fn best_fit_prefers_smallest_adequate() {
        let mut s = Scratch::new();
        s.give(Tensor::zeros(100, 1));
        s.give(Tensor::zeros(10, 1));
        let t = s.take(5, 1);
        // The 10-element buffer should be chosen, leaving the 100 pooled.
        assert!(t.as_slice().len() == 5);
        assert_eq!(s.pooled(), 1);
        assert!(s.pooled_capacity() >= 100);
    }

    #[test]
    fn zeros_clears_stale_contents() {
        let mut s = Scratch::new();
        s.give(Tensor::full(4, 4, 9.0));
        let t = s.zeros(4, 4);
        assert!(t.as_slice().iter().all(|&v| v == 0.0));
    }

    #[test]
    fn pool_is_bounded() {
        let mut s = Scratch::new();
        for i in 1..=MAX_POOLED + 10 {
            s.give(Tensor::zeros(i, 1));
        }
        assert!(s.pooled() <= MAX_POOLED);
        // The evictions removed the smallest buffers first.
        assert!(s.pooled_capacity() > MAX_POOLED);
    }

    #[test]
    fn zero_sized_tensors_are_harmless() {
        let mut s = Scratch::new();
        let t = s.take(0, 5);
        assert_eq!(t.shape(), (0, 5));
        s.give(t);
        let t2 = s.zeros(5, 0);
        assert_eq!(t2.shape(), (5, 0));
    }
}
