//! Dense f32 tensor kernels and reverse-mode automatic differentiation.
//!
//! This crate is the numerical substrate for the TGOpt reproduction. The
//! paper's implementation sits on top of PyTorch; since the Rust GNN
//! ecosystem is thin, we provide the pieces TGAT actually needs:
//!
//! * [`Tensor`] — a row-major 2-D matrix of `f32` (vectors are `1 x n`).
//! * Parallel kernels — blocked matrix multiplication, masked row softmax,
//!   elementwise maps, column concatenation and row gathering, all
//!   parallelized with rayon above a size threshold.
//! * [`autograd`] — a tape-based reverse-mode autodiff engine covering the
//!   operations used by TGAT (including fused batched attention primitives),
//!   plus an [`adam`] optimizer for training.
//!
//! The inference engines in `tgat` and `tgopt` call the raw kernels directly
//! (no tape) for speed; the training path in `tgat::train` records the same
//! computation on a [`autograd::Tape`].

pub mod adam;
pub mod autograd;
pub mod init;
pub mod matmul;
pub mod ops;
pub mod scratch;
pub mod tensor;

pub use scratch::Scratch;
pub use tensor::Tensor;

/// Number of `f32` elements below which kernels stay sequential.
///
/// Parallelizing tiny operations costs more in rayon scheduling than the
/// arithmetic saves; this threshold was picked with `benches/matmul.rs`.
pub const PAR_THRESHOLD: usize = 16 * 1024;
