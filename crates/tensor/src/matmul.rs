//! Blocked, rayon-parallel matrix multiplication kernels.
//!
//! Three layouts cover the forward pass and both backward products of a
//! linear layer without materializing any transposes:
//!
//! * [`matmul`]    — `C = A * B`
//! * [`matmul_nt`] — `C = A * B^T` (B stored `[n, k]`)
//! * [`matmul_tn`] — `C = A^T * B` (A stored `[m, k]`, producing `[k, n]`)

use crate::{Tensor, PAR_THRESHOLD};
use rayon::prelude::*;

/// How many rows of the output each parallel task computes.
const ROW_BLOCK: usize = 32;

/// `C[m,n] = A[m,k] * B[k,n]`.
///
/// Uses the cache-friendly `i-k-j` loop order so the inner loop streams a row
/// of `B` and a row of `C`, which LLVM auto-vectorizes. Row blocks are
/// distributed over the rayon pool when the output is large enough.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");
    let mut c = Tensor::zeros(m, n);
    let work = m * n * k;
    let bs = b.as_slice();
    if work < PAR_THRESHOLD || m == 1 {
        for i in 0..m {
            mm_row(a.row(i), bs, c.row_mut(i), k, n);
        }
    } else {
        c.as_mut_slice()
            .par_chunks_mut(ROW_BLOCK * n)
            .enumerate()
            .for_each(|(blk, c_chunk)| {
                let base = blk * ROW_BLOCK;
                for (r, c_row) in c_chunk.chunks_mut(n).enumerate() {
                    mm_row(a.row(base + r), bs, c_row, k, n);
                }
            });
    }
    c
}

/// Computes one output row: `c_row += a_row * B`.
#[inline]
fn mm_row(a_row: &[f32], b: &[f32], c_row: &mut [f32], k: usize, n: usize) {
    for (kk, &av) in a_row.iter().enumerate().take(k) {
        if av == 0.0 {
            continue; // zero node features are common in TGAT layer 0
        }
        let b_row = &b[kk * n..kk * n + n];
        for (cv, &bv) in c_row.iter_mut().zip(b_row) {
            *cv += av * bv;
        }
    }
}

/// `C[m,n] = A[m,k] * B^T` where `B` is stored as `[n, k]`.
///
/// Each output element is a dot product of two contiguous rows, which is the
/// natural layout for attention scores (`Q * K^T`).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_nt: inner dimensions differ ({k} vs {k2})");
    let mut c = Tensor::zeros(m, n);
    let work = m * n * k;
    if work < PAR_THRESHOLD || m == 1 {
        for i in 0..m {
            let ar = a.row(i);
            let crow = c.row_mut(i);
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = dot(ar, b.row(j));
            }
        }
    } else {
        c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, crow)| {
            let ar = a.row(i);
            for (j, cv) in crow.iter_mut().enumerate() {
                *cv = dot(ar, b.row(j));
            }
        });
    }
    c
}

/// `C[k,n] = A^T * B` where `A` is stored as `[m, k]` and `B` as `[m, n]`.
///
/// This is the weight-gradient product of a linear layer
/// (`dW = X^T * dY`). Parallelized over rows of the output (columns of `A`).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let (m2, n) = b.shape();
    assert_eq!(m, m2, "matmul_tn: outer dimensions differ ({m} vs {m2})");
    let mut c = Tensor::zeros(k, n);
    let asl = a.as_slice();
    let work = m * n * k;
    let body = |i: usize, crow: &mut [f32]| {
        for r in 0..m {
            let av = asl[r * k + i];
            if av == 0.0 {
                continue;
            }
            for (cv, &bv) in crow.iter_mut().zip(b.row(r)) {
                *cv += av * bv;
            }
        }
    };
    if work < PAR_THRESHOLD || k == 1 {
        for i in 0..k {
            body(i, c.row_mut(i));
        }
    } else {
        c.as_mut_slice()
            .par_chunks_mut(n)
            .enumerate()
            .for_each(|(i, crow)| body(i, crow));
    }
    c
}

#[inline]
fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    // Four accumulators break the dependency chain so LLVM can vectorize.
    let mut acc = [0.0f32; 4];
    let chunks = a.len() / 4;
    for i in 0..chunks {
        let j = i * 4;
        acc[0] += a[j] * b[j];
        acc[1] += a[j + 1] * b[j + 1];
        acc[2] += a[j + 2] * b[j + 2];
        acc[3] += a[j + 3] * b[j + 3];
    }
    let mut s = acc[0] + acc[1] + acc[2] + acc[3];
    for i in chunks * 4..a.len() {
        s += a[i] * b[i];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Straightforward triple-loop reference used to validate the kernels.
    fn reference_matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    fn seq_tensor(rows: usize, cols: usize, scale: f32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| ((i as f32 * 0.73).sin()) * scale)
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = t.shape();
        let mut out = Tensor::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, t.get(i, j));
            }
        }
        out
    }

    #[test]
    fn matmul_matches_reference_small() {
        let a = seq_tensor(3, 4, 1.0);
        let b = seq_tensor(4, 5, 2.0);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&reference_matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_matches_reference_large_parallel() {
        let a = seq_tensor(130, 64, 1.0);
        let b = seq_tensor(64, 48, 1.0);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&reference_matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = seq_tensor(7, 9, 1.0);
        let bt = seq_tensor(5, 9, 1.0); // represents B^T stored as [n,k]
        let c = matmul_nt(&a, &bt);
        let c_ref = matmul(&a, &transpose(&bt));
        assert!(c.max_abs_diff(&c_ref) < 1e-5);
    }

    #[test]
    fn matmul_nt_parallel_path() {
        let a = seq_tensor(90, 70, 1.0);
        let bt = seq_tensor(40, 70, 1.0);
        let c = matmul_nt(&a, &bt);
        let c_ref = matmul(&a, &transpose(&bt));
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn matmul_tn_equals_matmul_with_transpose() {
        let at = seq_tensor(6, 8, 1.0); // A stored [m,k]; result is A^T*B = [8,n]
        let b = seq_tensor(6, 5, 1.0);
        let c = matmul_tn(&at, &b);
        let c_ref = matmul(&transpose(&at), &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-5);
    }

    #[test]
    fn matmul_tn_parallel_path() {
        let at = seq_tensor(100, 64, 1.0);
        let b = seq_tensor(100, 32, 1.0);
        let c = matmul_tn(&at, &b);
        let c_ref = matmul(&transpose(&at), &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn identity_multiplication() {
        let a = seq_tensor(4, 4, 1.0);
        let mut eye = Tensor::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_shapes_panic() {
        let _ = matmul(&Tensor::zeros(2, 3), &Tensor::zeros(4, 2));
    }

    #[test]
    fn empty_edges() {
        let c = matmul(&Tensor::zeros(0, 3), &Tensor::zeros(3, 2));
        assert_eq!(c.shape(), (0, 2));
    }
}
