//! Blocked, register-tiled matrix multiplication kernels.
//!
//! Three layouts cover the forward pass and both backward products of a
//! linear layer without materializing any transposes:
//!
//! * [`matmul`]    — `C = A * B`
//! * [`matmul_nt`] — `C = A * B^T` (B stored `[n, k]`)
//! * [`matmul_tn`] — `C = A^T * B` (A stored `[m, k]`, producing `[k, n]`)
//!
//! plus the fused [`addmm`] (`C = A * B + bias`), which is what a linear
//! layer actually wants.
//!
//! # Kernel architecture
//!
//! All dense work funnels into a 4×16 register-tiled rank-1 microkernel
//! ([`quad_panel`]): four rows of `A` update a 16-column panel of `C` held
//! in 64 scalar accumulators, so each 16-wide load of a `B` row feeds four
//! fused multiply-adds and `C` is written once per panel instead of once
//! per `k`-step. The 8/16-lane inner loops are written over constant-length
//! slices so LLVM lowers them to full-width SIMD without per-element bounds
//! checks or branches.
//!
//! The dense path carries **no** per-element `if av == 0.0` skip. TGAT's
//! layer-0 inputs are zero node-feature rows concatenated with dense time
//! encodings, so sparsity appears as a contiguous zero *prefix/suffix* of
//! each `A` row; a per-row pre-scan ([`nonzero_span`]) shrinks the `k`
//! range once, and the inner loops stay branch-free.
//!
//! Every kernel keeps a naive triple-loop twin in [`reference`] for
//! equivalence testing, and a `*_forced` entry point that pins the
//! serial/parallel dispatch for exact-agreement tests.

use crate::{Tensor, PAR_THRESHOLD};
use rayon::prelude::*;

/// How many rows of the output each parallel task computes.
///
/// Retuned for the register-tiled kernels (see DESIGN.md "Kernel
/// architecture"): a multiple of the row-quad height `MR`, big enough that
/// a task amortizes dispatch, small enough to load-balance ragged shapes.
pub const ROW_BLOCK: usize = 32;

/// Row-block height of the microkernel (rows of `A` per register tile).
pub const MR: usize = 4;

/// Column-panel width of the microkernel (columns of `C` per register
/// tile); two 8-lane vectors, or one 16-lane vector on AVX-512.
pub const NR: usize = 16;

/// Dot product with two independent 8-lane accumulator banks.
///
/// The banks break the additive dependency chain so LLVM can keep two
/// vector accumulators in flight; the scalar tail handles `len % 16`.
#[inline]
pub fn dot(a: &[f32], b: &[f32]) -> f32 {
    debug_assert_eq!(a.len(), b.len());
    let mut acc0 = [0.0f32; 8];
    let mut acc1 = [0.0f32; 8];
    let mut ca = a.chunks_exact(16);
    let mut cb = b.chunks_exact(16);
    for (xa, xb) in (&mut ca).zip(&mut cb) {
        for j in 0..8 {
            acc0[j] += xa[j] * xb[j];
        }
        for j in 0..8 {
            acc1[j] += xa[8 + j] * xb[8 + j];
        }
    }
    let mut s = 0.0;
    for j in 0..8 {
        s += acc0[j] + acc1[j];
    }
    for (xa, xb) in ca.remainder().iter().zip(cb.remainder()) {
        s += xa * xb;
    }
    s
}

/// `y += alpha * x`, 8-lane unrolled.
#[inline]
pub fn axpy(alpha: f32, x: &[f32], y: &mut [f32]) {
    debug_assert_eq!(x.len(), y.len());
    let mut cy = y.chunks_exact_mut(8);
    let mut cx = x.chunks_exact(8);
    for (yy, xx) in (&mut cy).zip(&mut cx) {
        for j in 0..8 {
            yy[j] += alpha * xx[j];
        }
    }
    for (yy, xx) in cy.into_remainder().iter_mut().zip(cx.remainder()) {
        *yy += alpha * xx;
    }
}

/// `y += a0*x0 + a1*x1 + a2*x2 + a3*x3`, 8-lane unrolled.
///
/// Fusing four axpys loads and stores each element of `y` once instead of
/// four times — the update kernel of [`matmul_tn`] and the attention
/// weighted sum.
#[inline]
pub fn axpy4(al: [f32; 4], x0: &[f32], x1: &[f32], x2: &[f32], x3: &[f32], y: &mut [f32]) {
    debug_assert!(x0.len() == y.len() && x1.len() == y.len());
    debug_assert!(x2.len() == y.len() && x3.len() == y.len());
    let n = y.len();
    let lanes = n - n % 8;
    let mut j = 0;
    while j < lanes {
        // Constant-length sub-slices so the inner loop is branch-free SIMD.
        let yy = &mut y[j..j + 8];
        let (c0, c1, c2, c3) = (&x0[j..j + 8], &x1[j..j + 8], &x2[j..j + 8], &x3[j..j + 8]);
        for t in 0..8 {
            yy[t] += al[0] * c0[t] + al[1] * c1[t] + al[2] * c2[t] + al[3] * c3[t];
        }
        j += 8;
    }
    while j < n {
        y[j] += al[0] * x0[j] + al[1] * x1[j] + al[2] * x2[j] + al[3] * x3[j];
        j += 1;
    }
}

/// Nonzero column span `[lo, hi)` of a row; `(0, 0)` when entirely zero.
///
/// This is the pre-scan that replaces the old per-element `if av == 0.0`
/// branch: TGAT's zero node features produce zero row *prefixes* after
/// `[h | e | Phi]` concatenation, which a span captures exactly while the
/// dense inner loops stay branch-free.
#[inline]
fn nonzero_span(row: &[f32]) -> (usize, usize) {
    let lo = match row.iter().position(|&v| v != 0.0) {
        Some(i) => i,
        None => return (0, 0),
    };
    let hi = row.iter().rposition(|&v| v != 0.0).map_or(lo, |i| i + 1);
    (lo, hi)
}

/// The 4×16 register-tile microkernel: accumulates
/// `C[r, off..off+w] += A[r, lo..hi] * B[lo..hi, off..off+w]` for the
/// `rows` live rows of one row-quad. `w <= NR`; the full-panel case
/// (`w == NR`) compiles to constant-trip SIMD loops.
#[inline]
fn quad_panel(
    a: &[&[f32]; MR],
    rows: usize,
    b: &[f32],
    n: usize,
    span: (usize, usize),
    c: &mut [f32],
    off: usize,
    w: usize,
) {
    debug_assert!(w <= NR && off + w <= n);
    let mut acc = [[0.0f32; NR]; MR];
    if w == NR {
        for kk in span.0..span.1 {
            let base = kk * n + off;
            let bp = &b[base..base + NR];
            let av = [a[0][kk], a[1][kk], a[2][kk], a[3][kk]];
            for r in 0..MR {
                for j in 0..NR {
                    acc[r][j] += av[r] * bp[j];
                }
            }
        }
    } else {
        for kk in span.0..span.1 {
            let base = kk * n + off;
            let bp = &b[base..base + w];
            let av = [a[0][kk], a[1][kk], a[2][kk], a[3][kk]];
            for r in 0..MR {
                for j in 0..w {
                    acc[r][j] += av[r] * bp[j];
                }
            }
        }
    }
    for r in 0..rows {
        let crow = &mut c[r * n + off..r * n + off + w];
        for j in 0..w {
            crow[j] += acc[r][j];
        }
    }
}

/// Computes one row-quad of `C += A * B`: `c` holds `rows` output rows
/// (`rows <= MR`); missing quad rows alias row 0 and are computed but never
/// stored.
fn mm_quad(a: [&[f32]; MR], rows: usize, b: &[f32], n: usize, c: &mut [f32]) {
    // Union span over the live rows: one pre-scan per row per quad.
    let mut lo = usize::MAX;
    let mut hi = 0usize;
    for row in a.iter().take(rows) {
        let (l, h) = nonzero_span(row);
        if l < h {
            lo = lo.min(l);
            hi = hi.max(h);
        }
    }
    if lo >= hi {
        return; // all live rows zero: C rows keep their initial value
    }
    let mut off = 0;
    while off + NR <= n {
        quad_panel(&a, rows, b, n, (lo, hi), c, off, NR);
        off += NR;
    }
    if off < n {
        quad_panel(&a, rows, b, n, (lo, hi), c, off, n - off);
    }
}

/// Accumulates `C += A * B` over the row range covered by `c_rows` (which
/// starts at row `base` of the full output).
fn mm_rows(a: &Tensor, b: &[f32], n: usize, base: usize, c_rows: &mut [f32]) {
    let nrows = if n == 0 { 0 } else { c_rows.len() / n };
    let mut r = 0;
    while r < nrows {
        let rows = (nrows - r).min(MR);
        let a0 = a.row(base + r);
        let a1 = a.row(base + r + (1).min(rows - 1));
        let a2 = a.row(base + r + (2).min(rows - 1));
        let a3 = a.row(base + r + (3).min(rows - 1));
        mm_quad([a0, a1, a2, a3], rows, b, n, &mut c_rows[r * n..(r + rows) * n]);
        r += rows;
    }
}

/// `C[m,n] = A[m,k] * B[k,n]`.
///
/// # Panics
/// Panics if `A.cols() != B.rows()`.
pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let work = m * b.cols() * k;
    matmul_forced(a, b, work >= PAR_THRESHOLD && m > 1)
}

/// [`matmul`] with the serial/parallel dispatch pinned (exact-agreement
/// tests; not part of the stable API).
#[doc(hidden)]
pub fn matmul_forced(a: &Tensor, b: &Tensor, parallel: bool) -> Tensor {
    let (m, _) = a.shape();
    let n = b.cols();
    let mut c = Tensor::zeros(m, n);
    matmul_accumulate(a, b, &mut c, parallel);
    c
}

/// [`matmul`] into a preallocated `[A.rows(), B.cols()]` destination; prior
/// contents are overwritten.
pub fn matmul_into(a: &Tensor, b: &Tensor, c: &mut Tensor) {
    let (m, _) = a.shape();
    let n = b.cols();
    let work = m * n * a.cols();
    c.as_mut_slice().fill(0.0);
    matmul_accumulate(a, b, c, work >= PAR_THRESHOLD && m > 1);
}

/// `C = A * B + bias` (bias broadcast over rows) — the fused linear-layer
/// kernel: the bias seeds the output instead of a separate add pass.
///
/// # Panics
/// Panics if shapes disagree or `bias` is not `1 x B.cols()`.
pub fn addmm(a: &Tensor, b: &Tensor, bias: &Tensor) -> Tensor {
    let mut c = Tensor::zeros(a.rows(), b.cols());
    addmm_into(a, b, bias, &mut c);
    c
}

/// [`addmm`] writing into a preallocated `c` (any prior contents are
/// overwritten). `c` must already have shape `[A.rows(), B.cols()]`.
pub fn addmm_into(a: &Tensor, b: &Tensor, bias: &Tensor, c: &mut Tensor) {
    assert_eq!(bias.rows(), 1, "addmm: bias must be a row vector");
    assert_eq!(bias.cols(), b.cols(), "addmm: bias width must match B");
    assert_eq!(c.shape(), (a.rows(), b.cols()), "addmm: bad output shape");
    let (m, n) = c.shape();
    let work = m * n * a.cols();
    let bias_row = bias.as_slice();
    for r in 0..m {
        c.row_mut(r).copy_from_slice(bias_row);
    }
    matmul_accumulate(a, b, c, work >= PAR_THRESHOLD && m > 1);
}

/// `C += A * B` into an existing, correctly-shaped output.
fn matmul_accumulate(a: &Tensor, b: &Tensor, c: &mut Tensor, parallel: bool) {
    matmul_accumulate_blocked(a, b, c, parallel, ROW_BLOCK);
}

/// [`matmul_accumulate`] with an explicit task height; only the tuning
/// example (`examples/tune.rs`) and tests pass anything but [`ROW_BLOCK`].
fn matmul_accumulate_blocked(
    a: &Tensor,
    b: &Tensor,
    c: &mut Tensor,
    parallel: bool,
    row_block: usize,
) {
    let (m, k) = a.shape();
    let (k2, n) = b.shape();
    assert_eq!(k, k2, "matmul: inner dimensions differ ({k} vs {k2})");
    assert_eq!(c.shape(), (m, n), "matmul: bad output shape");
    if m == 0 || n == 0 || k == 0 {
        return; // degenerate shapes: explicit early return, output untouched
    }
    let bs = b.as_slice();
    if !parallel {
        mm_rows(a, bs, n, 0, c.as_mut_slice());
    } else {
        c.as_mut_slice()
            .par_chunks_mut(row_block * n)
            .enumerate()
            .for_each(|(blk, c_chunk)| mm_rows(a, bs, n, blk * row_block, c_chunk));
    }
}

/// [`matmul`] with the parallel path pinned on and an explicit task height.
/// Exists solely so `examples/tune.rs` can measure [`ROW_BLOCK`] candidates
/// against each other; not part of the stable API.
#[doc(hidden)]
pub fn matmul_with_row_block(a: &Tensor, b: &Tensor, row_block: usize) -> Tensor {
    assert!(row_block > 0, "row_block must be positive");
    let mut c = Tensor::zeros(a.rows(), b.cols());
    matmul_accumulate_blocked(a, b, &mut c, true, row_block);
    c
}

/// `C[m,n] = A[m,k] * B^T` where `B` is stored as `[n, k]`.
///
/// Each output element is a dot product of two contiguous rows, which is the
/// natural layout for attention scores (`Q * K^T`).
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let work = m * b.rows() * k;
    matmul_nt_forced(a, b, work >= PAR_THRESHOLD && m > 1)
}

/// [`matmul_nt`] with the dispatch pinned (exact-agreement tests).
#[doc(hidden)]
pub fn matmul_nt_forced(a: &Tensor, b: &Tensor, parallel: bool) -> Tensor {
    let (m, k) = a.shape();
    let (n, k2) = b.shape();
    assert_eq!(k, k2, "matmul_nt: inner dimensions differ ({k} vs {k2})");
    let mut c = Tensor::zeros(m, n);
    if m == 0 || n == 0 {
        return c;
    }
    let body = |i: usize, crow: &mut [f32]| {
        let ar = a.row(i);
        for (j, cv) in crow.iter_mut().enumerate() {
            *cv = dot(ar, b.row(j));
        }
    };
    if !parallel {
        for i in 0..m {
            body(i, c.row_mut(i));
        }
    } else {
        c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, crow)| body(i, crow));
    }
    c
}

/// `C[k,n] = A^T * B` where `A` is stored as `[m, k]` and `B` as `[m, n]`.
///
/// This is the weight-gradient product of a linear layer
/// (`dW = X^T * dY`). Parallelized over rows of the output (columns of `A`).
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
    let (m, k) = a.shape();
    let work = m * b.cols() * k;
    matmul_tn_forced(a, b, work >= PAR_THRESHOLD && k > 1)
}

/// [`matmul_tn`] with the dispatch pinned (exact-agreement tests).
#[doc(hidden)]
pub fn matmul_tn_forced(a: &Tensor, b: &Tensor, parallel: bool) -> Tensor {
    let (m, k) = a.shape();
    let (m2, n) = b.shape();
    assert_eq!(m, m2, "matmul_tn: outer dimensions differ ({m} vs {m2})");
    let mut c = Tensor::zeros(k, n);
    if m == 0 || n == 0 || k == 0 {
        return c;
    }
    let asl = a.as_slice();
    let quads = m - m % MR;
    let body = |i: usize, crow: &mut [f32]| {
        let mut r = 0;
        while r < quads {
            let al = [
                asl[r * k + i],
                asl[(r + 1) * k + i],
                asl[(r + 2) * k + i],
                asl[(r + 3) * k + i],
            ];
            axpy4(al, b.row(r), b.row(r + 1), b.row(r + 2), b.row(r + 3), crow);
            r += MR;
        }
        while r < m {
            axpy(asl[r * k + i], b.row(r), crow);
            r += 1;
        }
    };
    if !parallel {
        for i in 0..k {
            body(i, c.row_mut(i));
        }
    } else {
        c.as_mut_slice().par_chunks_mut(n).enumerate().for_each(|(i, crow)| body(i, crow));
    }
    c
}

/// Naive triple-loop twins of every matmul-family kernel.
///
/// These are the semantics the optimized kernels must reproduce; the unit
/// and property tests (`tests/prop_kernels.rs`) compare against them within
/// 1e-5. Deliberately unoptimized — change them only when the *meaning* of
/// a kernel changes.
pub mod reference {
    use crate::Tensor;

    /// Reference `C = A * B`.
    pub fn matmul(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.get(i, kk) * b.get(kk, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    /// Reference `C = A * B^T` (B stored `[n, k]`).
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.rows();
        let mut c = Tensor::zeros(m, n);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0;
                for kk in 0..k {
                    s += a.get(i, kk) * b.get(j, kk);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    /// Reference `C = A^T * B` (A stored `[m, k]`).
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = a.shape();
        let n = b.cols();
        let mut c = Tensor::zeros(k, n);
        for i in 0..k {
            for j in 0..n {
                let mut s = 0.0;
                for r in 0..m {
                    s += a.get(r, i) * b.get(r, j);
                }
                c.set(i, j, s);
            }
        }
        c
    }

    /// Reference `C = A * B + bias`.
    pub fn addmm(a: &Tensor, b: &Tensor, bias: &Tensor) -> Tensor {
        let mut c = matmul(a, b);
        for r in 0..c.rows() {
            for j in 0..c.cols() {
                let v = c.get(r, j) + bias.get(0, j);
                c.set(r, j, v);
            }
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn seq_tensor(rows: usize, cols: usize, scale: f32) -> Tensor {
        let data = (0..rows * cols)
            .map(|i| ((i as f32 * 0.73).sin()) * scale)
            .collect();
        Tensor::from_vec(rows, cols, data)
    }

    fn transpose(t: &Tensor) -> Tensor {
        let (r, c) = t.shape();
        let mut out = Tensor::zeros(c, r);
        for i in 0..r {
            for j in 0..c {
                out.set(j, i, t.get(i, j));
            }
        }
        out
    }

    #[test]
    fn matmul_matches_reference_small() {
        let a = seq_tensor(3, 4, 1.0);
        let b = seq_tensor(4, 5, 2.0);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&reference::matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_matches_reference_odd_shapes() {
        // Shapes straddling the MR/NR tile sizes: quad tails, panel tails.
        for &(m, k, n) in &[(1, 1, 1), (5, 7, 17), (4, 16, 16), (6, 3, 33), (9, 40, 15)] {
            let a = seq_tensor(m, k, 1.0);
            let b = seq_tensor(k, n, 1.0);
            let c = matmul(&a, &b);
            assert!(
                c.max_abs_diff(&reference::matmul(&a, &b)) < 1e-5,
                "({m},{k},{n}) diverged"
            );
        }
    }

    #[test]
    fn matmul_matches_reference_large_parallel() {
        let a = seq_tensor(130, 64, 1.0);
        let b = seq_tensor(64, 48, 1.0);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&reference::matmul(&a, &b)) < 1e-4);
    }

    #[test]
    fn matmul_skips_zero_spans() {
        // Zero prefix/suffix rows (the TGAT layer-0 shape) and fully-zero
        // rows must give exactly the dense result.
        let mut a = seq_tensor(5, 12, 1.0);
        for j in 0..6 {
            a.set(0, j, 0.0); // zero prefix
            a.set(1, 6 + j, 0.0); // zero suffix
        }
        for j in 0..12 {
            a.set(2, j, 0.0); // fully zero row
        }
        let b = seq_tensor(12, 20, 1.0);
        let c = matmul(&a, &b);
        assert!(c.max_abs_diff(&reference::matmul(&a, &b)) < 1e-5);
        assert!(c.row(2).iter().all(|&v| v == 0.0));
    }

    #[test]
    fn addmm_fuses_bias() {
        let a = seq_tensor(7, 9, 1.0);
        let b = seq_tensor(9, 21, 1.0);
        let bias = seq_tensor(1, 21, 0.5);
        let c = addmm(&a, &b, &bias);
        assert!(c.max_abs_diff(&reference::addmm(&a, &b, &bias)) < 1e-5);
    }

    #[test]
    fn addmm_into_overwrites_stale_contents(){
        let a = seq_tensor(3, 4, 1.0);
        let b = seq_tensor(4, 5, 1.0);
        let bias = seq_tensor(1, 5, 1.0);
        let mut c = Tensor::full(3, 5, 777.0);
        addmm_into(&a, &b, &bias, &mut c);
        assert!(c.max_abs_diff(&reference::addmm(&a, &b, &bias)) < 1e-5);
    }

    #[test]
    fn matmul_nt_equals_matmul_with_transpose() {
        let a = seq_tensor(7, 9, 1.0);
        let bt = seq_tensor(5, 9, 1.0); // represents B^T stored as [n,k]
        let c = matmul_nt(&a, &bt);
        let c_ref = matmul(&a, &transpose(&bt));
        assert!(c.max_abs_diff(&c_ref) < 1e-5);
    }

    #[test]
    fn matmul_nt_parallel_path() {
        let a = seq_tensor(90, 70, 1.0);
        let bt = seq_tensor(40, 70, 1.0);
        let c = matmul_nt(&a, &bt);
        let c_ref = matmul(&a, &transpose(&bt));
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn matmul_tn_equals_matmul_with_transpose() {
        let at = seq_tensor(6, 8, 1.0); // A stored [m,k]; result is A^T*B = [8,n]
        let b = seq_tensor(6, 5, 1.0);
        let c = matmul_tn(&at, &b);
        let c_ref = matmul(&transpose(&at), &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-5);
    }

    #[test]
    fn matmul_tn_parallel_path() {
        let at = seq_tensor(100, 64, 1.0);
        let b = seq_tensor(100, 32, 1.0);
        let c = matmul_tn(&at, &b);
        let c_ref = matmul(&transpose(&at), &b);
        assert!(c.max_abs_diff(&c_ref) < 1e-4);
    }

    #[test]
    fn forced_serial_and_parallel_agree_exactly() {
        let a = seq_tensor(70, 33, 1.0);
        let b = seq_tensor(33, 29, 1.0);
        assert_eq!(
            matmul_forced(&a, &b, false).as_slice(),
            matmul_forced(&a, &b, true).as_slice()
        );
        let bt = seq_tensor(29, 33, 1.0);
        assert_eq!(
            matmul_nt_forced(&a, &bt, false).as_slice(),
            matmul_nt_forced(&a, &bt, true).as_slice()
        );
        let b2 = seq_tensor(70, 29, 1.0);
        assert_eq!(
            matmul_tn_forced(&a, &b2, false).as_slice(),
            matmul_tn_forced(&a, &b2, true).as_slice()
        );
    }

    #[test]
    fn microkernels_match_naive() {
        let x: Vec<f32> = (0..37).map(|i| (i as f32 * 0.31).cos()).collect();
        let y: Vec<f32> = (0..37).map(|i| (i as f32 * 0.17).sin()).collect();
        let naive: f32 = x.iter().zip(&y).map(|(a, b)| a * b).sum();
        assert!((dot(&x, &y) - naive).abs() < 1e-5);

        let mut out = y.clone();
        axpy(0.5, &x, &mut out);
        for j in 0..37 {
            assert!((out[j] - (y[j] + 0.5 * x[j])).abs() < 1e-6);
        }

        let mut out4 = y.clone();
        axpy4([0.1, 0.2, 0.3, 0.4], &x, &x, &y, &y, &mut out4);
        for j in 0..37 {
            let want = y[j] + 0.1 * x[j] + 0.2 * x[j] + 0.3 * y[j] + 0.4 * y[j];
            assert!((out4[j] - want).abs() < 1e-5);
        }
    }

    #[test]
    fn row_block_variants_agree_exactly() {
        let a = seq_tensor(70, 33, 1.0);
        let b = seq_tensor(33, 29, 1.0);
        let want = matmul_forced(&a, &b, false);
        for rb in [1, 4, 8, 16, 32, 64, 128] {
            assert_eq!(
                matmul_with_row_block(&a, &b, rb).as_slice(),
                want.as_slice(),
                "row_block {rb} diverged"
            );
        }
    }

    #[test]
    fn identity_multiplication() {
        let a = seq_tensor(4, 4, 1.0);
        let mut eye = Tensor::zeros(4, 4);
        for i in 0..4 {
            eye.set(i, i, 1.0);
        }
        assert!(matmul(&a, &eye).max_abs_diff(&a) < 1e-6);
        assert!(matmul(&eye, &a).max_abs_diff(&a) < 1e-6);
    }

    #[test]
    #[should_panic(expected = "inner dimensions differ")]
    fn mismatched_shapes_panic() {
        let _ = matmul(&Tensor::zeros(2, 3), &Tensor::zeros(4, 2));
    }

    #[test]
    fn zero_row_and_zero_col_edges() {
        // 0-row / 0-col / 0-inner shapes across the whole family: explicit
        // early returns, never a panic or a bogus chunk size.
        assert_eq!(matmul(&Tensor::zeros(0, 3), &Tensor::zeros(3, 2)).shape(), (0, 2));
        assert_eq!(matmul(&Tensor::zeros(2, 3), &Tensor::zeros(3, 0)).shape(), (2, 0));
        assert_eq!(matmul(&Tensor::zeros(2, 0), &Tensor::zeros(0, 3)).shape(), (2, 3));
        assert_eq!(matmul_nt(&Tensor::zeros(0, 3), &Tensor::zeros(2, 3)).shape(), (0, 2));
        assert_eq!(matmul_nt(&Tensor::zeros(2, 0), &Tensor::zeros(3, 0)).shape(), (2, 3));
        assert_eq!(matmul_tn(&Tensor::zeros(0, 2), &Tensor::zeros(0, 3)).shape(), (2, 3));
        assert_eq!(matmul_tn(&Tensor::zeros(3, 2), &Tensor::zeros(3, 0)).shape(), (2, 0));
        let z = matmul(&Tensor::zeros(2, 0), &Tensor::zeros(0, 3));
        assert!(z.as_slice().iter().all(|&v| v == 0.0));
        let bias = Tensor::zeros(1, 0);
        assert_eq!(addmm(&Tensor::zeros(2, 3), &Tensor::zeros(3, 0), &bias).shape(), (2, 0));
    }
}
