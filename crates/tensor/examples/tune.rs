//! Measures the `ROW_BLOCK` / `PAR_THRESHOLD` tuning constants on the
//! matmul shapes the inference hot path actually produces.
//!
//! ```sh
//! cargo run --release -p tg-tensor --example tune
//! ```
//!
//! The measured tables are copied into DESIGN.md ("Kernel architecture");
//! rerun this after changing the kernels or the vendored rayon shim. Note
//! that the shim executes `par_*` sequentially, so `ROW_BLOCK` here only
//! measures chunk-dispatch overhead and `PAR_THRESHOLD` the cost of taking
//! the chunked path at all — with a real thread pool both would be retuned.

use std::time::Instant;
use tg_tensor::matmul::{matmul_forced, matmul_with_row_block};
use tg_tensor::{init, Tensor};

fn bench<F: FnMut() -> Tensor>(mut f: F) -> f64 {
    // Warm up, then take the best of 5 (least-noise estimator for
    // single-threaded compute-bound loops).
    let mut sink = 0.0f64;
    sink += f().as_slice().iter().map(|&v| v as f64).sum::<f64>();
    let mut best = f64::INFINITY;
    for _ in 0..5 {
        let t = Instant::now();
        let c = f();
        best = best.min(t.elapsed().as_secs_f64());
        sink += c.as_slice().first().copied().unwrap_or(0.0) as f64;
    }
    assert!(sink.is_finite());
    best
}

fn main() {
    let mut rng = init::seeded_rng(7);
    // (label, m, k, n): the shapes embed_batch feeds matmul with the bench
    // protocol (batch 200 -> 400 targets, 10 neighbors, dim 32, 2 heads).
    let shapes = [
        ("K/V layer-1  [44000,164]x[164,16]", 44_000usize, 164usize, 16usize),
        ("Q   layer-1  [4400,64]x[64,16]", 4_400, 64, 16),
        ("FFN fc1      [4400,64]x[64,32]", 4_400, 64, 32),
        ("FFN fc2      [4400,32]x[32,32]", 4_400, 32, 32),
        ("Q   layer-2  [400,64]x[64,16]", 400, 64, 16),
    ];

    println!("== ROW_BLOCK sweep (parallel path pinned on, best of 5, ms) ==");
    print!("{:<38}", "shape");
    let blocks = [8usize, 16, 32, 64, 128];
    for rb in blocks {
        print!("  rb={rb:<4}");
    }
    println!();
    for (label, m, k, n) in shapes {
        let a = init::uniform(&mut rng, m, k, 1.0);
        let b = init::uniform(&mut rng, k, n, 1.0);
        print!("{label:<38}");
        for rb in blocks {
            let secs = bench(|| matmul_with_row_block(&a, &b, rb));
            print!("  {:>7.3}", secs * 1e3);
        }
        println!();
    }

    println!();
    println!("== PAR_THRESHOLD crossover (work = m*n*k, best of 5, us) ==");
    println!("{:<26}{:>12}{:>12}{:>12}", "shape", "work", "serial", "chunked");
    for (m, k, n) in [
        (8usize, 32usize, 32usize),
        (16, 32, 32),
        (32, 32, 32),
        (64, 32, 32),
        (128, 32, 32),
        (400, 64, 16),
        (1024, 64, 64),
    ] {
        let a = init::uniform(&mut rng, m, k, 1.0);
        let b = init::uniform(&mut rng, k, n, 1.0);
        let serial = bench(|| matmul_forced(&a, &b, false));
        let chunked = bench(|| matmul_forced(&a, &b, true));
        println!(
            "{:<26}{:>12}{:>12.2}{:>12.2}",
            format!("[{m},{k}]x[{k},{n}]"),
            m * n * k,
            serial * 1e6,
            chunked * 1e6
        );
    }
}
