//! Criterion microbenchmarks for TGOpt's building blocks, including the
//! design-choice ablations called out in DESIGN.md:
//!
//! * dedup: joint two-array hash filter (Algorithm 2) vs sort-based unique
//! * keys: collision-free bit-packing vs generic tuple hashing
//! * cache: sequential vs parallel lookup
//! * time encoding: dense precomputed window vs direct computation
//! * attention operator, temporal sampler, and matmul kernels

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use std::time::Duration;
use tg_graph::{Edge, TemporalGraph, TemporalSampler};
use tg_tensor::{init, matmul::matmul, Tensor};
use tgat::attention::{self, AttentionInputs};
use tgat::{TgatConfig, TgatParams, TimeEncoder};
use tgopt::dedup::dedup_filter;
use tgopt::hash::{compute_keys, pack_key};
use tgopt::{EmbedCache, HashTimeCache, TimeCache};

fn batch_targets(n: usize) -> (Vec<u32>, Vec<f32>) {
    // ~60% duplication, like a layer-1 input batch.
    let ns: Vec<u32> = (0..n).map(|i| (i * i % (n / 3 + 1)) as u32).collect();
    let ts: Vec<f32> = (0..n).map(|i| (i % (n / 3 + 1)) as f32).collect();
    (ns, ts)
}

fn bench_dedup(c: &mut Criterion) {
    let mut g = c.benchmark_group("dedup");
    for &n in &[400usize, 8400] {
        let (ns, ts) = batch_targets(n);
        g.bench_with_input(BenchmarkId::new("algorithm2", n), &n, |b, _| {
            b.iter(|| black_box(dedup_filter(black_box(&ns), black_box(&ts))))
        });
        g.bench_with_input(BenchmarkId::new("sort_based", n), &n, |b, _| {
            b.iter(|| {
                // The naive alternative: materialize pairs, sort, dedup.
                let mut pairs: Vec<(u32, u32)> =
                    ns.iter().zip(&ts).map(|(&a, &t)| (a, t.to_bits())).collect();
                pairs.sort_unstable();
                pairs.dedup();
                black_box(pairs.len())
            })
        });
    }
    g.finish();
}

fn bench_keys(c: &mut Criterion) {
    let mut g = c.benchmark_group("compute_keys");
    let (ns, ts) = batch_targets(8400);
    g.bench_function("bit_packed", |b| {
        b.iter(|| black_box(compute_keys(black_box(&ns), black_box(&ts), false)))
    });
    g.bench_function("generic_hash", |b| {
        use std::hash::{Hash, Hasher};
        b.iter(|| {
            let keys: Vec<u64> = ns
                .iter()
                .zip(&ts)
                .map(|(&n, &t)| {
                    let mut h = std::collections::hash_map::DefaultHasher::new();
                    (n, t.to_bits()).hash(&mut h);
                    h.finish()
                })
                .collect();
            black_box(keys)
        })
    });
    g.finish();
}

fn bench_cache(c: &mut Criterion) {
    let mut g = c.benchmark_group("cache");
    let dim = 100;
    let cache = EmbedCache::new(100_000, dim);
    let keys: Vec<u64> = (0..50_000u32).map(|i| pack_key(i, i as f32)).collect();
    let data = Tensor::zeros(50_000, dim);
    cache.store(&keys, &data, false).unwrap();
    let probe: Vec<u64> = (0..8400u32).map(|i| pack_key(i * 7 % 60_000, (i * 7 % 60_000) as f32)).collect();
    g.bench_function("lookup_seq", |b| {
        b.iter(|| {
            let mut out = Tensor::zeros(probe.len(), dim);
            black_box(cache.lookup(black_box(&probe), &mut out, false).unwrap())
        })
    });
    g.bench_function("lookup_par", |b| {
        b.iter(|| {
            let mut out = Tensor::zeros(probe.len(), dim);
            black_box(cache.lookup(black_box(&probe), &mut out, true).unwrap())
        })
    });
    g.bench_function("store_1000", |b| {
        b.iter(|| {
            let cache = EmbedCache::new(10_000, dim);
            let keys: Vec<u64> = (0..1000u32).map(|i| pack_key(i, 0.0)).collect();
            cache.store(black_box(&keys), &Tensor::zeros(1000, dim), false).unwrap();
            black_box(cache.len())
        })
    });
    g.finish();
}

fn bench_timeencode(c: &mut Criterion) {
    let mut g = c.benchmark_group("time_encode");
    let enc = TimeEncoder::new(100);
    let mut cache = TimeCache::precompute(&enc, 10_000);
    let mut hash_cache = HashTimeCache::new(10_000);
    let dts: Vec<f32> = (0..8000).map(|i| (i % 9000) as f32).collect();
    hash_cache.encode(&enc, &dts); // pre-warm so the bench measures hits
    g.bench_function("direct", |b| b.iter(|| black_box(enc.encode(black_box(&dts)))));
    g.bench_function("precomputed_window", |b| {
        b.iter(|| black_box(cache.encode(&enc, black_box(&dts))))
    });
    g.bench_function("hash_memoized", |b| {
        b.iter(|| black_box(hash_cache.encode(&enc, black_box(&dts))))
    });
    g.finish();
}

fn bench_attention(c: &mut Criterion) {
    let cfg = TgatConfig { dim: 100, edge_dim: 100, time_dim: 100, n_layers: 2, n_heads: 2, n_neighbors: 20 };
    let params = TgatParams::init(cfg, 1).expect("valid model config");
    let n = 200;
    let k = cfg.n_neighbors;
    let mut rng = init::seeded_rng(2);
    let h_src = init::normal(&mut rng, n, cfg.dim, 1.0);
    let ht0 = init::normal(&mut rng, n, cfg.time_dim, 1.0);
    let h_ngh = init::normal(&mut rng, n * k, cfg.dim, 1.0);
    let e_feat = init::normal(&mut rng, n * k, cfg.edge_dim, 1.0);
    let ht = init::normal(&mut rng, n * k, cfg.time_dim, 1.0);
    let mask = vec![true; n * k];
    c.bench_function("attention_forward_200x20", |b| {
        b.iter(|| {
            black_box(attention::forward(
                &params.layers[0],
                &cfg,
                &AttentionInputs {
                    h_src: black_box(&h_src),
                    ht0: &ht0,
                    h_ngh: &h_ngh,
                    e_feat: &e_feat,
                    ht: &ht,
                    mask: &mask,
                },
            ))
        })
    });
}

fn bench_sampler(c: &mut Criterion) {
    let mut g = c.benchmark_group("sampler");
    let n_nodes = 2000u32;
    let mut graph = TemporalGraph::with_nodes(n_nodes as usize);
    for i in 0..200_000u32 {
        graph.insert(&Edge {
            src: i % n_nodes,
            dst: (i * 13 + 1) % n_nodes,
            time: i as f32,
            eid: i,
        });
    }
    let ns: Vec<u32> = (0..8400u32).map(|i| i % n_nodes).collect();
    let ts: Vec<f32> = (0..8400).map(|i| 150_000.0 + (i % 100) as f32).collect();
    let par = TemporalSampler::most_recent(20);
    let seq = TemporalSampler::most_recent(20).sequential();
    g.bench_function("most_recent_par", |b| {
        b.iter(|| black_box(par.sample(&graph, black_box(&ns), black_box(&ts))))
    });
    g.bench_function("most_recent_seq", |b| {
        b.iter(|| black_box(seq.sample(&graph, black_box(&ns), black_box(&ts))))
    });
    g.finish();
}

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    let mut rng = init::seeded_rng(3);
    for &(m, k, n) in &[(400usize, 300usize, 100usize), (4000, 300, 50)] {
        let a = init::normal(&mut rng, m, k, 1.0);
        let b_ = init::normal(&mut rng, k, n, 1.0);
        g.bench_function(format!("{m}x{k}x{n}"), |bch| {
            bch.iter(|| black_box(matmul(black_box(&a), black_box(&b_))))
        });
    }
    g.finish();
}

fn bench_engine(c: &mut Criterion) {
    // End-to-end replay of a small stream: the headline comparison as a
    // tracked microbenchmark.
    use tg_datasets::{generate, spec_by_name};
    use tg_bench::{replay, EngineKind};
    use tgat::TgatParams;
    use tgopt::OptConfig;

    let args = tg_bench::ExpArgs {
        scale: 0.002,
        dim: 16,
        n_neighbors: 5,
        ..Default::default()
    };
    let spec = spec_by_name("snap-email").unwrap();
    let ds = {
        let mut d = generate(&spec, args.scale, args.seed).expect("valid benchmark spec");
        d.node_features = Tensor::zeros(d.node_features.rows(), args.dim);
        d
    };
    let params = TgatParams::init(args.model_config(ds.dim()), 1).expect("valid model config");
    let mut g = c.benchmark_group("engine_replay");
    g.sample_size(10);
    g.bench_function("baseline", |b| {
        b.iter(|| black_box(replay(&ds, &params, EngineKind::Baseline, 200, false).seconds))
    });
    g.bench_function("tgopt", |b| {
        b.iter(|| {
            black_box(
                replay(&ds, &params, EngineKind::Tgopt(OptConfig::all()), 200, false).seconds,
            )
        })
    });
    g.finish();
}

fn config() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(800))
        .warm_up_time(Duration::from_millis(200))
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_dedup, bench_keys, bench_cache, bench_timeencode,
              bench_attention, bench_sampler, bench_matmul, bench_engine
}
criterion_main!(benches);
