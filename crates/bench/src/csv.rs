//! Tiny CSV writer used by the experiment binaries, mirroring the
//! artifact's `logs/*.csv` outputs so downstream plotting scripts can be
//! reused.

use std::io::Write;
use std::path::{Path, PathBuf};

/// Writes rows to `logs/<name>.csv` (creating `logs/` next to the working
/// directory). Returns the path written.
pub fn write_csv(
    name: &str,
    headers: &[&str],
    rows: &[Vec<String>],
) -> std::io::Result<PathBuf> {
    let dir = Path::new("logs");
    std::fs::create_dir_all(dir)?;
    let path = dir.join(format!("{name}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path)?);
    writeln!(f, "{}", headers.join(","))?;
    for row in rows {
        debug_assert_eq!(row.len(), headers.len(), "csv row width mismatch");
        writeln!(f, "{}", row.join(","))?;
    }
    f.flush()?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_header_and_rows() {
        let name = format!("csv-test-{}", std::process::id());
        let path = write_csv(
            &name,
            &["a", "b"],
            &[vec!["1".into(), "2".into()], vec!["3".into(), "4".into()]],
        )
        .unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(content, "a,b\n1,2\n3,4\n");
    }
}
