//! Writes a generated dataset to the artifact's `ml_{name}.csv` edge-list
//! format so external tooling (or the original Python pipeline) can consume
//! the synthetic graphs — and so `--csv` runs of the `inference` binary can
//! be fed reproducible data.
//!
//! ```sh
//! cargo run --release -p tg-bench --bin datagen -- -d snap-msg --scale 0.1 --out data/
//! cargo run --release -p tg-bench --bin inference -- --csv data/ml_snap-msg.csv --opt-all
//! ```

use std::io::Write;
use tg_bench::{harness, ExpArgs};

fn main() -> std::io::Result<()> {
    let mut dataset = "snap-msg".to_string();
    let mut out_dir = "data".to_string();
    let mut passthrough: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "-d" | "--dataset" => dataset = take("-d"),
            "--out" => out_dir = take("--out"),
            "-h" | "--help" => {
                eprintln!(
                    "Usage: datagen [-d NAME] [--out DIR] [--scale F] [--seed N]\n\
                     Writes ml_<name>.csv (u,i,ts,label,idx rows) under DIR."
                );
                std::process::exit(0);
            }
            other => {
                passthrough.push(other.to_string());
                if matches!(other, "--scale" | "--seed" | "--dim" | "--neighbors" | "--batch" | "--runs") {
                    passthrough.push(take(other));
                }
            }
        }
    }
    let args = ExpArgs::parse_from(passthrough);
    let ds = harness::dataset_for(&args, &dataset);

    std::fs::create_dir_all(&out_dir).unwrap_or_else(|e| {
        eprintln!("error: cannot create {out_dir}: {e}");
        std::process::exit(1);
    });
    let path = std::path::Path::new(&out_dir).join(format!("ml_{dataset}.csv"));
    let mut f = std::io::BufWriter::new(std::fs::File::create(&path).unwrap_or_else(|e| {
        eprintln!("error: cannot write {}: {e}", path.display());
        std::process::exit(1);
    }));
    writeln!(f, "u,i,ts,label,idx")?;
    for e in ds.stream.edges() {
        writeln!(f, "{},{},{},0,{}", e.src, e.dst, e.time, e.eid)?;
    }
    f.flush()?;
    println!(
        "wrote {} ({} edges, {} nodes, max t {})",
        path.display(),
        ds.stream.len(),
        ds.stream.num_nodes(),
        ds.stream.max_time()
    );
    Ok(())
}
