//! **Table 2** — dataset statistics of the generated evaluation graphs,
//! printed next to the paper's published full-scale values.

use tg_bench::{harness, table, ExpArgs};
use tg_datasets::dataset_stats;

fn main() {
    let args = ExpArgs::parse();
    println!("Table 2: dataset statistics at scale {} (paper values at scale 1.0)\n", args.scale);
    let mut rows = Vec::new();
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let s = dataset_stats(&ds);
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", s.num_nodes),
            format!("{}", spec.num_nodes()),
            format!("{}", s.num_edges),
            format!("{}", spec.num_edges),
            format!("{}", s.edge_dim),
            format!("{:.1e}", s.max_time),
            format!("{:.1e}", spec.max_time),
        ]);
    }
    println!(
        "{}",
        table::render(
            &["dataset", "|V|", "|V| paper", "|E|", "|E| paper", "d_e", "max(t)", "max(t) paper"],
            &rows
        )
    );
    println!("Note: |V| counts active nodes; scaled runs touch fewer node ids, and max(t)\nscales with |E| because the generators keep the original event rate.");
}
