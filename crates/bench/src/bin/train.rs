//! The reproduction's counterpart to the artifact's `train.py`: train a
//! TGAT model on one dataset with standard link-prediction training and
//! save the checkpoint for later inference runs.
//!
//! ```sh
//! cargo run --release -p tg-bench --bin train -- -d snap-msg --epochs 3 \
//!     --out /tmp/tgat-snap-msg.json
//! cargo run --release -p tg-bench --bin train -- -d jodie-wiki --dedup-train
//! ```

use tg_bench::{harness, ExpArgs};
use tgat::train::TrainConfig;

struct TrainCli {
    base: ExpArgs,
    dataset: String,
    epochs: usize,
    lr: f32,
    dropout: f32,
    dedup_train: bool,
    out: Option<String>,
}

const USAGE: &str = "\
Usage: train [-d NAME] [--epochs N] [--lr F] [--dropout F] [--dedup-train]
             [--out PATH] [--scale F] [--dim N] [--neighbors N] [--batch N] [--seed N]

Trains TGAT for link prediction on the dataset's chronological prefix,
reports per-epoch loss and validation AUC, and optionally saves the model
as JSON. --dedup-train uses TGOpt's redundancy-aware training (same model,
less work).";

fn parse() -> TrainCli {
    let mut out = TrainCli {
        base: ExpArgs::parse_from(std::iter::empty::<String>()),
        dataset: "snap-msg".to_string(),
        epochs: 2,
        lr: 1e-3,
        dropout: 0.1,
        dedup_train: false,
        out: None,
    };
    let mut passthrough: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "-d" | "--dataset" => out.dataset = take("-d"),
            "--epochs" => out.epochs = take("--epochs").parse().unwrap_or(2),
            "--lr" => out.lr = take("--lr").parse().unwrap_or(1e-3),
            "--dropout" => out.dropout = take("--dropout").parse().unwrap_or(0.1),
            "--dedup-train" => out.dedup_train = true,
            "--out" => out.out = Some(take("--out")),
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                passthrough.push(other.to_string());
                if matches!(
                    other,
                    "--scale" | "--runs" | "--seed" | "--dim" | "--neighbors" | "--batch"
                ) {
                    passthrough.push(take(other));
                }
            }
        }
    }
    out.base = ExpArgs::parse_from(passthrough);
    out
}

fn main() {
    let mut cli = parse();
    // Training tapes are memory-hungry; keep the default slice modest.
    if cli.base.scale > 0.02 {
        eprintln!("note: training at scale {} may be slow on one core", cli.base.scale);
    }
    cli.base.datasets = vec![cli.dataset.clone()];
    let ds = harness::dataset_for(&cli.base, &cli.dataset);
    let cfg = cli.base.model_config(ds.dim());
    let mut params = tgat::TgatParams::init(cfg, cli.base.seed).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(1);
    });
    println!(
        "training TGAT on {} ({} edges, dim {}, {} neighbors, {} epochs, lr {}, dropout {})",
        ds.name,
        ds.stream.len(),
        cfg.dim,
        cfg.n_neighbors,
        cli.epochs,
        cli.lr,
        cli.dropout
    );

    let tc = TrainConfig {
        epochs: cli.epochs,
        batch_size: cli.base.batch_size,
        lr: cli.lr,
        train_frac: 0.85,
        seed: cli.base.seed,
        dropout: cli.dropout,
    };
    let start = std::time::Instant::now();
    let report = if cli.dedup_train {
        tgopt::train::train_deduped(
            &mut params,
            &ds.stream,
            &ds.node_features,
            &ds.edge_features,
            &tc,
        )
    } else {
        tgat::train::train(&mut params, &ds.stream, &ds.node_features, &ds.edge_features, &tc)
    };
    let secs = start.elapsed().as_secs_f64();
    for (i, loss) in report.epoch_losses.iter().enumerate() {
        println!("epoch {:>2}: mean BCE loss {loss:.4}", i + 1);
    }
    println!("validation AUC: {:.4}", report.val_auc);
    println!("trained in {secs:.1}s ({} mode)", if cli.dedup_train { "dedup" } else { "vanilla" });

    if let Some(path) = cli.out {
        params.save(std::path::Path::new(&path)).unwrap_or_else(|e| {
            eprintln!("error: failed to save model: {e}");
            std::process::exit(1);
        });
        println!("saved checkpoint to {path}");
    }
}
