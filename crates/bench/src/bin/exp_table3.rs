//! **Table 3** — per-operation runtime breakdown of Algorithm 1 for the
//! baseline and TGOpt, plus average cache hit rate and used cache size, on
//! the two representative datasets.

use tg_bench::{harness, replay, table, EngineKind, ExpArgs};
use tgat::OpKind;
use tgopt::OptConfig;

fn main() {
    let mut args = ExpArgs::parse();
    if args.datasets.is_empty() {
        args.datasets = vec!["jodie-lastfm".into(), "snap-msg".into()];
    }
    println!(
        "Table 3: operation breakdown, scale {}, dim {}, {} neighbors\n",
        args.scale, args.dim, args.n_neighbors
    );
    let opt = OptConfig::all().with_cache_limit(args.effective_cache_limit());
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let params = harness::params_for(&args, &ds);
        let base = replay(&ds, &params, EngineKind::Baseline, args.batch_size, true);
        let ours = replay(&ds, &params, EngineKind::Tgopt(opt), args.batch_size, true);

        let mut rows = Vec::new();
        for kind in OpKind::ALL {
            let b = base.stats.total(kind).as_secs_f64();
            let o = ours.stats.total(kind).as_secs_f64();
            let cell = |v: f64| if v == 0.0 { "-".to_string() } else { format!("{v:.3}") };
            rows.push(vec![kind.label().to_string(), cell(b), cell(o)]);
        }
        println!("{}:", spec.name);
        println!("{}", table::render(&["operation (secs)", "base", "ours"], &rows));
        println!(
            "  total runtime      base {}  ours {}  ({:.2}x)",
            table::fmt_secs(base.seconds),
            table::fmt_secs(ours.seconds),
            base.seconds / ours.seconds.max(1e-12)
        );
        println!("  average hit rate   {:.2}%", 100.0 * ours.counters.hit_rate());
        println!(
            "  used cache size    {} ({} items)\n",
            table::fmt_mib(ours.cache_bytes),
            ours.cache_items
        );
    }
    println!("Paper shape (CPU): attention M and TimeEncode(dt) dominate the baseline;\nTGOpt removes most of both and most of NghLookup, at small dedup/cache cost.\nHit rates: ~90.9% (jodie-lastfm), ~85.9% (snap-msg).");
}
