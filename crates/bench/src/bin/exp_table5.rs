//! **Table 5** — data-movement cost of storing the cache on host vs device
//! memory in a GPU deployment. Reproduced without a GPU by replaying the
//! engine's exact cache traffic through a V100-class transfer cost model
//! (see `tgopt::devicesim` and the substitution note in DESIGN.md).

use tg_bench::{harness, replay, table, EngineKind, ExpArgs};
use tgopt::devicesim::{simulate_transfers, CostModel, StorePolicy, TransferLedger};
use tgopt::OptConfig;

fn main() {
    let mut args = ExpArgs::parse();
    if args.datasets.is_empty() {
        args.datasets = vec!["jodie-lastfm".into(), "snap-msg".into()];
    }
    println!(
        "Table 5: simulated CUDA memcpy time by cache placement, scale {}, dim {}\n",
        args.scale, args.dim
    );
    let model = CostModel::v100();
    let opt = OptConfig::all().with_cache_limit(args.effective_cache_limit());
    let mut rows = Vec::new();
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let params = harness::params_for(&args, &ds);
        let run = replay(&ds, &params, EngineKind::Tgopt(opt), args.batch_size, false);

        let row_bytes = params.cfg.dim * 4;
        // Per-batch staged inputs: both feature gathers plus index arrays,
        // approximated by the batch's target count times a feature row.
        let batch_inputs =
            (2 * args.batch_size * (params.cfg.dim + params.cfg.edge_dim) * 4) as u64;
        let num_batches = run.batches.len() as u64;
        for policy in [StorePolicy::Host, StorePolicy::Device] {
            let ledger: TransferLedger =
                simulate_transfers(&run.counters, policy, row_bytes, batch_inputs, num_batches);
            let (htod, dtoh, dtod) = model.times(&ledger);
            let total = htod + dtoh + dtod;
            let pct =
                |x: f64| format!("{} ({:.1}%)", table::fmt_secs(x), 100.0 * x / total.max(1e-12));
            rows.push(vec![
                spec.name.to_string(),
                format!("{policy:?}"),
                pct(htod),
                pct(dtoh),
                pct(dtod),
            ]);
        }
    }
    println!(
        "{}",
        table::render(&["dataset", "cache on", "HtoD", "DtoH", "DtoD"], &rows)
    );
    println!("Paper shape: host placement keeps DtoD negligible (~0.2%), device placement\nis dominated by DtoD small copies (62-75% of GPU activity).");
}
