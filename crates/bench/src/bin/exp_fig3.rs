//! **Figure 3** — embeddings reused vs recomputed over a dataset's temporal
//! evolution (paper: snap-msg; cumulative counts against edge timestamps).
//!
//! The unbounded-reuse trend is measured with an effectively infinite cache,
//! matching the paper's analysis setting.

use tg_bench::{harness, replay, table, EngineKind, ExpArgs};
use tgopt::OptConfig;

fn main() {
    let mut args = ExpArgs::parse();
    if args.datasets.is_empty() {
        args.datasets = vec!["snap-msg".into()];
    }
    // The analysis dataset is small; default to a larger slice of it.
    if args.scale <= 0.02 {
        args.scale = 0.2;
    }
    println!("Figure 3: reuse vs recompute over time, scale {}, dim {}\n", args.scale, args.dim);
    let opt = OptConfig::all().with_cache_limit(usize::MAX / 2);
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let params = harness::params_for(&args, &ds);
        let run = replay(&ds, &params, EngineKind::Tgopt(opt), args.batch_size, false);

        // Bucket batches into ~16 time points of cumulative counts.
        let nb = run.batches.len().max(1);
        let buckets = 16.min(nb);
        let mut rows = Vec::new();
        let mut reused_cum = 0u64;
        let mut recomputed_cum = 0u64;
        let mut next = nb / buckets;
        let mut peak_ratio = 0.0f64;
        for (i, b) in run.batches.iter().enumerate() {
            reused_cum += b.hits;
            recomputed_cum += b.recomputed;
            let ratio = reused_cum as f64 / recomputed_cum.max(1) as f64;
            peak_ratio = peak_ratio.max(ratio);
            if i + 1 >= next || i + 1 == nb {
                rows.push(vec![
                    format!("{:.2e}", b.time),
                    format!("{reused_cum}"),
                    format!("{recomputed_cum}"),
                    format!("{ratio:.2}"),
                ]);
                next += nb / buckets;
            }
        }
        println!("{}:", spec.name);
        println!(
            "{}",
            table::render(&["time t", "reused (cum)", "recomputed (cum)", "reuse ratio"], &rows)
        );
        let total = reused_cum + recomputed_cum;
        println!(
            "  final reuse share: {:.1}% of {} embeddings (paper snap-msg peak: 89.9%, ~8.9:1)\n",
            100.0 * reused_cum as f64 / total.max(1) as f64,
            total
        );
        println!("  peak reuse:recompute ratio {:.1}:1", peak_ratio);
    }
}
