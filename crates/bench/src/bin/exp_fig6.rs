//! **Figure 6** — ablation study: accumulative speedup when enabling the
//! optimizations one at a time (cache -> +dedup -> +time precompute) on the
//! two representative datasets (paper: jodie-lastfm and snap-msg).

use tg_bench::harness::{self, mean_std};
use tg_bench::{replay, table, EngineKind, ExpArgs};
use tgopt::OptConfig;

fn main() {
    let mut args = ExpArgs::parse();
    if args.datasets.is_empty() {
        args.datasets = vec!["jodie-lastfm".into(), "snap-msg".into()];
    }
    println!(
        "Figure 6: accumulative ablation, {} run(s), scale {}, dim {}\n",
        args.runs, args.scale, args.dim
    );
    let stages: [(&str, Option<OptConfig>); 4] = [
        ("baseline", None),
        ("cache", Some(OptConfig::cache_only())),
        ("cache+dedup", Some(OptConfig::cache_dedup())),
        ("all (+time)", Some(OptConfig::all())),
    ];

    let mut rows = Vec::new();
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let params = harness::params_for(&args, &ds);
        let mut base_mean = 0.0f64;
        let mut labels = Vec::new();
        let mut speeds = Vec::new();
        for (label, cfg) in &stages {
            let kind = match cfg {
                None => EngineKind::Baseline,
                Some(c) => {
                    EngineKind::Tgopt(c.with_cache_limit(args.effective_cache_limit()))
                }
            };
            let times: Vec<f64> = (0..args.runs)
                .map(|_| replay(&ds, &params, kind, args.batch_size, false).seconds)
                .collect();
            let (mean, _) = mean_std(&times);
            if cfg.is_none() {
                base_mean = mean;
            }
            let speedup = base_mean / mean.max(1e-12);
            labels.push(label.to_string());
            speeds.push(speedup);
            rows.push(vec![
                spec.name.to_string(),
                label.to_string(),
                table::fmt_secs(mean),
                format!("{speedup:.2}x"),
            ]);
        }
        println!(
            "{}",
            table::bar_series(&format!("{} accumulative speedup", spec.name), &labels, &speeds, 40)
        );
    }
    println!(
        "{}",
        table::render(&["dataset", "optimizations", "runtime", "speedup"], &rows)
    );
    println!("Paper shape (CPU): cache alone >=3x; +dedup slight gain; +time precompute a\nfurther boost, largest for the jodie-* datasets.");
}
