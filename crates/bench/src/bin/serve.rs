//! Serving-layer benchmark: throughput and latency percentiles of the
//! micro-batching `tg-serve` front end versus direct `embed_batch` calls
//! on the same workload, the cross-request dedup ratio, and — with
//! `--shards` — the scaling curve of the sharded [`ShardRouter`] from one
//! shard up.
//!
//! ```sh
//! cargo run --release -p tg-bench --bin serve -- -d snap-msg --clients 4 --requests 2000
//! cargo run --release -p tg-bench --bin serve -- -d synth-shard --scale 0.25 \
//!     --shards 4 --scaling --json BENCH_serve.json
//! cargo run --release -p tg-bench --bin serve -- --shards 4 --verify
//! ```
//!
//! `--verify` runs the deterministic sharded router against a direct
//! engine on the same query stream and fails (exit 1) on any row deviating
//! by ≥1e-5 — the CI smoke proof that sharding preserves semantics.
//! `--json` writes the scaling curve in the committed `BENCH_serve.json`
//! format (regeneration protocol in EXPERIMENTS.md).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::Serialize;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tg_bench::harness::percentile;
use tg_graph::{NodeId, ShardAssignment, TemporalGraph, Time};
use tg_serve::{ModelBundle, ServeConfig, ShardRouter};
use tg_tensor::Tensor;
use tgat::{TgatConfig, TgatParams};
use tgopt::{OptConfig, TgoptEngine};

// Behind the `jemalloc` feature the vendored shim delegates to the system
// allocator (no registry access in this environment); the report string
// below keeps the numbers honestly attributed either way.
#[cfg(feature = "jemalloc")]
#[global_allocator]
static GLOBAL: jemallocator::Jemalloc = jemallocator::Jemalloc;

fn allocator_name() -> &'static str {
    if cfg!(feature = "jemalloc") {
        "jemalloc-shim(system)"
    } else {
        "system"
    }
}

struct Opts {
    dataset: String,
    scale: f64,
    seed: u64,
    dim: usize,
    clients: usize,
    requests_per_client: usize,
    max_batch: usize,
    linger_us: u64,
    workers: usize,
    hot: usize,
    hot_prob: f64,
    budget_bytes: Option<usize>,
    stats_json: Option<String>,
    shards: usize,
    strategy: String,
    scaling: bool,
    verify: bool,
    json: Option<String>,
    pin_cores: bool,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            dataset: "snap-msg".to_string(),
            scale: 0.02,
            seed: 7,
            dim: 32,
            clients: 4,
            requests_per_client: 1500,
            max_batch: 64,
            linger_us: 200,
            workers: 2,
            hot: 16,
            hot_prob: 0.6,
            budget_bytes: None,
            stats_json: None,
            shards: 1,
            strategy: "hash".to_string(),
            scaling: false,
            verify: false,
            json: None,
            pin_cores: false,
        }
    }
}

const USAGE: &str = "\
Usage: serve [-d NAME] [--scale F] [--seed N] [--dim N] [--clients N]
             [--requests N] [--batch N] [--linger-us N] [--workers N]
             [--hot N] [--hot-prob F] [--budget-bytes N] [--stats-json PATH]
             [--shards N] [--strategy hash|degree] [--scaling] [--verify]
             [--json PATH] [--pin-cores]

Benchmarks the tg-serve layer against direct embed_batch calls on one
generated dataset, reporting throughput, latency percentiles (p50/p95/p99),
and the cross-request dedup ratio. With --shards N the served path runs
through the node-partitioned ShardRouter; --scaling sweeps 1,2,4,...,N
shards and prints the scaling curve; --json writes that curve in the
committed BENCH_serve.json format. --verify replays the stream through a
deterministic sharded router and fails unless every row matches a direct
engine within 1e-5. --strategy degree uses the degree-balanced node
assignment instead of hashing. --workers is per shard. --pin-cores pins
worker threads (shard-major) to cores, best effort.";

fn parse() -> Opts {
    let mut o = Opts::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "-d" | "--dataset" => o.dataset = take("-d"),
            "--scale" => o.scale = num(&take("--scale")),
            "--seed" => o.seed = num::<f64>(&take("--seed")) as u64,
            "--dim" => o.dim = num::<f64>(&take("--dim")) as usize,
            "--clients" => o.clients = num::<f64>(&take("--clients")) as usize,
            "--requests" => o.requests_per_client = num::<f64>(&take("--requests")) as usize,
            "--batch" => o.max_batch = num::<f64>(&take("--batch")) as usize,
            "--linger-us" => o.linger_us = num::<f64>(&take("--linger-us")) as u64,
            "--workers" => o.workers = num::<f64>(&take("--workers")) as usize,
            "--hot" => o.hot = num::<f64>(&take("--hot")) as usize,
            "--hot-prob" => o.hot_prob = num(&take("--hot-prob")),
            "--budget-bytes" => o.budget_bytes = Some(num::<f64>(&take("--budget-bytes")) as usize),
            "--stats-json" => o.stats_json = Some(take("--stats-json")),
            "--shards" => o.shards = (num::<f64>(&take("--shards")) as usize).max(1),
            "--strategy" => o.strategy = take("--strategy"),
            "--scaling" => o.scaling = true,
            "--verify" => o.verify = true,
            "--json" => o.json = Some(take("--json")),
            "--pin-cores" => o.pin_cores = true,
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    if o.strategy != "hash" && o.strategy != "degree" {
        eprintln!("error: --strategy must be hash or degree, got {:?}", o.strategy);
        std::process::exit(2);
    }
    o
}

fn num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid numeric value {s:?}");
        std::process::exit(2);
    })
}

/// Per-client query stream: mostly-hot targets (mimicking production skew,
/// which is what cross-request dedup exploits) plus a random tail.
fn query_stream(
    seed: u64,
    n: usize,
    hot_prob: f64,
    hot: &[(NodeId, Time)],
    all: &[(NodeId, Time)],
) -> Vec<(NodeId, Time)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(hot_prob.clamp(0.0, 1.0)) && !hot.is_empty() {
                hot[rng.gen_range(0..hot.len())]
            } else {
                all[rng.gen_range(0..all.len())]
            }
        })
        .collect()
}

/// Prints `what: err` and exits. Bench binaries fail loudly with a clean
/// message instead of unwinding a panic through worker threads.
fn fail(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {err}");
    std::process::exit(1);
}

fn assignment_for(o: &Opts, graph: &TemporalGraph, n_shards: usize) -> ShardAssignment {
    if o.strategy == "degree" {
        ShardAssignment::degree_balanced(graph, n_shards)
    } else {
        ShardAssignment::hash(n_shards)
    }
}

fn serve_config(o: &Opts, total_requests: usize) -> ServeConfig {
    let mut cfg = ServeConfig::default()
        .with_max_batch(o.max_batch)
        .with_linger(Duration::from_micros(o.linger_us))
        .with_queue_capacity(total_requests.max(1024))
        .with_workers(o.workers)
        .with_pin_cores(o.pin_cores)
        .with_stage_spans(o.stats_json.is_some());
    if let Some(b) = o.budget_bytes {
        cfg = cfg.with_memory_budget(b);
    }
    cfg
}

/// One measured pass through a threaded `ShardRouter` with `n_shards`
/// shards. Returns the scaling-curve row plus the final stats/telemetry.
fn run_sharded(
    o: &Opts,
    bundle: &Arc<ModelBundle>,
    streams: &[Vec<(NodeId, Time)>],
    n_shards: usize,
) -> (ScalingRow, tg_serve::ServeStats, tg_telemetry::TelemetrySnapshot) {
    let total_requests: usize = streams.iter().map(Vec::len).sum();
    let assignment = assignment_for(o, &bundle.graph, n_shards);
    let router = ShardRouter::threaded(Arc::clone(bundle), serve_config(o, total_requests), assignment)
        .unwrap_or_else(|e| fail("router start", e));

    let start = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let router = &router;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(stream.len());
                    for &(n, t) in stream {
                        let submitted = Instant::now();
                        match router.submit(n, t) {
                            Ok(ticket) => {
                                let _ = ticket.wait().unwrap_or_else(|e| fail("serve embed", e));
                                lat.push(submitted.elapsed().as_secs_f64() * 1e6);
                            }
                            Err(e) => fail("submission", e),
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|_| fail("client thread", "panicked")))
            .collect()
    });
    let seconds = start.elapsed().as_secs_f64();

    // Ownership balance: the busiest shard's share of all submissions
    // (1/S is perfect, 1.0 is a single hot shard).
    let per_shard = router.shard_stats();
    let submitted_total: u64 = per_shard.iter().map(|s| s.submitted).sum();
    let max_shard_share = per_shard
        .iter()
        .map(|s| s.submitted as f64 / submitted_total.max(1) as f64)
        .fold(0.0, f64::max);

    let (stats, telemetry) = router.shutdown_with_telemetry();
    latencies_us.sort_by(|a, b| a.total_cmp(b));
    let row = ScalingRow {
        shards: n_shards as u64,
        req_per_s: total_requests as f64 / seconds,
        speedup: 0.0, // filled by the caller against the first row
        p50_us: percentile(&latencies_us, 50.0),
        p95_us: percentile(&latencies_us, 95.0),
        p99_us: percentile(&latencies_us, 99.0),
        frontier_remote_ratio: stats.remote_frontier_ratio(),
        max_shard_share,
    };
    (row, stats, telemetry)
}

/// `--verify`: the deterministic sharded router must serve every query
/// identically (≤ 1e-5) to one direct engine over the same stream.
fn run_verify(o: &Opts, bundle: &Arc<ModelBundle>, streams: &[Vec<(NodeId, Time)>]) {
    let queries: Vec<(NodeId, Time)> = streams.iter().flatten().copied().collect();
    let cfg = ServeConfig::default()
        .with_max_batch(o.max_batch)
        .with_queue_capacity(queries.len() + 1);
    let assignment = assignment_for(o, &bundle.graph, o.shards);
    let router = ShardRouter::deterministic(Arc::clone(bundle), cfg, assignment)
        .unwrap_or_else(|e| fail("router start", e));

    let mut tickets = Vec::with_capacity(queries.len());
    for (i, &(n, t)) in queries.iter().enumerate() {
        tickets.push(router.submit(n, t).unwrap_or_else(|e| fail("submission", e)));
        // Drain at a stride co-prime with common batch sizes so waves cut
        // across shard queues at varying fill levels.
        if i % 97 == 96 {
            router.drain().unwrap_or_else(|e| fail("drain", e));
        }
    }
    router.drain().unwrap_or_else(|e| fail("drain", e));

    let ns: Vec<NodeId> = queries.iter().map(|&(n, _)| n).collect();
    let ts: Vec<Time> = queries.iter().map(|&(_, t)| t).collect();
    let mut eng = TgoptEngine::new(&bundle.params, bundle.context(), OptConfig::all());
    let expected = eng.embed_batch(&ns, &ts).unwrap_or_else(|e| fail("direct embed", e));

    let mut max_diff = 0.0f32;
    for (i, ticket) in tickets.into_iter().enumerate() {
        let got = ticket.wait().unwrap_or_else(|e| fail("serve embed", e));
        let diff = got
            .iter()
            .zip(expected.row(i))
            .map(|(a, b)| (a - b).abs())
            .fold(0.0f32, f32::max);
        max_diff = max_diff.max(diff);
        if diff >= 1e-5 {
            eprintln!(
                "verify: FAIL at row {i} (node {}, t {}): sharded row deviates by {diff}",
                ns[i], ts[i]
            );
            std::process::exit(1);
        }
    }
    let stats = router.shutdown();
    if stats.completed != queries.len() as u64 {
        eprintln!(
            "verify: FAIL: {} completed of {} submitted",
            stats.completed,
            queries.len()
        );
        std::process::exit(1);
    }
    println!(
        "verify: PASS — {} queries over {} shards ({}) match a direct engine; max |Δ| = {max_diff:.2e}",
        queries.len(),
        o.shards,
        o.strategy,
    );
}

#[derive(Serialize)]
struct ScalingRow {
    shards: u64,
    req_per_s: f64,
    speedup: f64,
    p50_us: f64,
    p95_us: f64,
    p99_us: f64,
    frontier_remote_ratio: f64,
    max_shard_share: f64,
}

#[derive(Serialize)]
struct ScalingReport {
    bench: String,
    schema_version: u64,
    dataset: String,
    scale: f64,
    nodes: u64,
    edges: u64,
    host_cpus: u64,
    allocator: String,
    pin_cores: bool,
    strategy: String,
    clients: u64,
    workers_per_shard: u64,
    requests: u64,
    direct_req_per_s: f64,
    note: String,
    rows: Vec<ScalingRow>,
}

fn main() {
    let o = parse();
    let spec = tg_datasets::spec_by_name(&o.dataset).unwrap_or_else(|| {
        eprintln!("error: unknown dataset {:?}", o.dataset);
        std::process::exit(2);
    });
    let data = tg_datasets::generate(&spec, o.scale, o.seed).unwrap_or_else(|e| fail("dataset generation", e));
    let cfg = TgatConfig {
        dim: o.dim,
        edge_dim: data.dim(),
        time_dim: o.dim,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 10,
    };
    let params = TgatParams::init(cfg, o.seed).unwrap_or_else(|e| fail("param init", e));
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let t_query = data.stream.max_time() * 1.01;

    // Candidate targets: sources of the stream, queried just past the end.
    let all: Vec<(NodeId, Time)> =
        data.stream.edges().iter().map(|e| (e.src, t_query)).collect();
    let hot: Vec<(NodeId, Time)> = all.iter().take(o.hot.max(1)).copied().collect();

    let bundle = Arc::new(
        ModelBundle::new(params, graph, node_features, data.edge_features.clone())
            .unwrap_or_else(|e| fail("model bundle", e)),
    );

    let streams: Vec<Vec<(NodeId, Time)>> = (0..o.clients)
        .map(|c| query_stream(o.seed + c as u64 + 1, o.requests_per_client, o.hot_prob, &hot, &all))
        .collect();
    let total_requests = o.clients * o.requests_per_client;

    println!(
        "dataset {} (scale {}): {} nodes, {} edges; {} clients x {} requests, \
         batch {} linger {}us workers {} shards {} ({}); allocator {}{}",
        o.dataset,
        o.scale,
        data.stream.num_nodes(),
        data.stream.len(),
        o.clients,
        o.requests_per_client,
        o.max_batch,
        o.linger_us,
        o.workers,
        o.shards,
        o.strategy,
        allocator_name(),
        if o.pin_cores { ", pinned cores" } else { "" }
    );

    if o.verify {
        run_verify(&o, &bundle, &streams);
        return;
    }

    // ---- Direct path: one engine, caller-formed batches of max_batch. ----
    let direct_seconds = {
        let mut eng = TgoptEngine::new(&bundle.params, bundle.context(), OptConfig::all());
        let start = Instant::now();
        for stream in &streams {
            for chunk in stream.chunks(o.max_batch.max(1)) {
                let ns: Vec<NodeId> = chunk.iter().map(|&(n, _)| n).collect();
                let ts: Vec<Time> = chunk.iter().map(|&(_, t)| t).collect();
                let _ = eng.embed_batch(&ns, &ts).unwrap_or_else(|e| fail("direct embed", e));
            }
        }
        start.elapsed().as_secs_f64()
    };
    let direct_req_per_s = total_requests as f64 / direct_seconds;
    println!(
        "direct    : {:>9.1} req/s  ({} requests in {:.3}s, sequential)",
        direct_req_per_s, total_requests, direct_seconds
    );

    // ---- Served path: 1,2,4,...,S shards (or just S without --scaling). ----
    let shard_counts: Vec<usize> = if o.scaling {
        let mut v = Vec::new();
        let mut s = 1;
        while s < o.shards {
            v.push(s);
            s *= 2;
        }
        v.push(o.shards);
        v
    } else {
        vec![o.shards]
    };

    let mut rows: Vec<ScalingRow> = Vec::new();
    let mut last: Option<(tg_serve::ServeStats, tg_telemetry::TelemetrySnapshot)> = None;
    for &s in &shard_counts {
        let (mut row, stats, telemetry) = run_sharded(&o, &bundle, &streams, s);
        row.speedup = row.req_per_s / rows.first().map_or(row.req_per_s, |r: &ScalingRow| r.req_per_s);
        println!(
            "shards {:>2} : {:>9.1} req/s  speedup {:>5.2}x  p50 {:>8.1}us  p95 {:>8.1}us  \
             p99 {:>8.1}us  remote-frontier {:>5.1}%  max-shard-share {:.2}",
            row.shards,
            row.req_per_s,
            row.speedup,
            row.p50_us,
            row.p95_us,
            row.p99_us,
            100.0 * row.frontier_remote_ratio,
            row.max_shard_share
        );
        rows.push(row);
        last = Some((stats, telemetry));
    }

    if let Some((stats, telemetry)) = last {
        println!(
            "batching  : {} batches, mean size {:.1}, cross-request dedup ratio {:.1}%",
            stats.batches,
            stats.mean_batch_size(),
            100.0 * stats.cross_dedup_ratio()
        );
        println!(
            "admission : {} submitted, {} overloaded, {} deadline-expired, {} degraded batches",
            stats.submitted, stats.rejected_overload, stats.rejected_deadline, stats.degraded_batches
        );
        if let Some(path) = &o.stats_json {
            let text = serde_json::to_string(&telemetry).unwrap_or_else(|e| fail("telemetry snapshot serialization", e));
            if let Err(e) = std::fs::write(path, tg_bench::table::pretty_json(&text) + "\n") {
                eprintln!("error: failed to write {path}: {e}");
                std::process::exit(1);
            }
            println!("wrote {path}");
        }
    }

    if let Some(path) = &o.json {
        let report = ScalingReport {
            bench: "serve-scaling".to_string(),
            schema_version: 1,
            dataset: o.dataset.clone(),
            scale: o.scale,
            nodes: data.stream.num_nodes() as u64,
            edges: data.stream.len() as u64,
            host_cpus: std::thread::available_parallelism().map_or(1, usize::from) as u64,
            allocator: allocator_name().to_string(),
            pin_cores: o.pin_cores,
            strategy: o.strategy.clone(),
            clients: o.clients as u64,
            workers_per_shard: o.workers as u64,
            requests: total_requests as u64,
            direct_req_per_s,
            note: "shards beyond host_cpus cannot scale; see EXPERIMENTS.md for the \
                   multi-core regeneration protocol"
                .to_string(),
            rows,
        };
        let text = serde_json::to_string(&report).unwrap_or_else(|e| fail("report serialization", e));
        if let Err(e) = std::fs::write(path, tg_bench::table::pretty_json(&text) + "\n") {
            eprintln!("error: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
