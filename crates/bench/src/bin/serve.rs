//! Serving-layer benchmark: throughput and latency percentiles of the
//! micro-batching `tg-serve` front end versus direct `embed_batch` calls
//! on the same workload, plus the cross-request dedup ratio.
//!
//! ```sh
//! cargo run --release -p tg-bench --bin serve -- -d snap-msg --clients 4 --requests 2000
//! cargo run --release -p tg-bench --bin serve -- --hot 8 --batch 128 --linger-us 200
//! ```

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use tg_bench::harness::percentile;
use std::sync::Arc;
use std::time::{Duration, Instant};
use tg_graph::{NodeId, TemporalGraph, Time};
use tg_serve::{ModelBundle, ServeConfig, TgServer};
use tg_tensor::Tensor;
use tgat::{TgatConfig, TgatParams};
use tgopt::{OptConfig, TgoptEngine};

struct Opts {
    dataset: String,
    scale: f64,
    seed: u64,
    dim: usize,
    clients: usize,
    requests_per_client: usize,
    max_batch: usize,
    linger_us: u64,
    workers: usize,
    hot: usize,
    hot_prob: f64,
    budget_bytes: Option<usize>,
    stats_json: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            dataset: "snap-msg".to_string(),
            scale: 0.02,
            seed: 7,
            dim: 32,
            clients: 4,
            requests_per_client: 1500,
            max_batch: 64,
            linger_us: 200,
            workers: 2,
            hot: 16,
            hot_prob: 0.6,
            budget_bytes: None,
            stats_json: None,
        }
    }
}

const USAGE: &str = "\
Usage: serve [-d NAME] [--scale F] [--seed N] [--dim N] [--clients N]
             [--requests N] [--batch N] [--linger-us N] [--workers N]
             [--hot N] [--hot-prob F] [--budget-bytes N] [--stats-json PATH]

Benchmarks the tg-serve micro-batching layer against direct embed_batch
calls on one generated dataset, reporting throughput, latency percentiles
(p50/p95/p99, both exact and from the online log2 histogram), and the
cross-request dedup ratio. --stats-json writes the unified telemetry
snapshot (and enables per-stage span recording in the workers).";

fn parse() -> Opts {
    let mut o = Opts::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "-d" | "--dataset" => o.dataset = take("-d"),
            "--scale" => o.scale = num(&take("--scale")),
            "--seed" => o.seed = num::<f64>(&take("--seed")) as u64,
            "--dim" => o.dim = num::<f64>(&take("--dim")) as usize,
            "--clients" => o.clients = num::<f64>(&take("--clients")) as usize,
            "--requests" => o.requests_per_client = num::<f64>(&take("--requests")) as usize,
            "--batch" => o.max_batch = num::<f64>(&take("--batch")) as usize,
            "--linger-us" => o.linger_us = num::<f64>(&take("--linger-us")) as u64,
            "--workers" => o.workers = num::<f64>(&take("--workers")) as usize,
            "--hot" => o.hot = num::<f64>(&take("--hot")) as usize,
            "--hot-prob" => o.hot_prob = num(&take("--hot-prob")),
            "--budget-bytes" => o.budget_bytes = Some(num::<f64>(&take("--budget-bytes")) as usize),
            "--stats-json" => o.stats_json = Some(take("--stats-json")),
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid numeric value {s:?}");
        std::process::exit(2);
    })
}

/// Per-client query stream: mostly-hot targets (mimicking production skew,
/// which is what cross-request dedup exploits) plus a random tail.
fn query_stream(
    seed: u64,
    n: usize,
    hot_prob: f64,
    hot: &[(NodeId, Time)],
    all: &[(NodeId, Time)],
) -> Vec<(NodeId, Time)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            if rng.gen_bool(hot_prob.clamp(0.0, 1.0)) && !hot.is_empty() {
                hot[rng.gen_range(0..hot.len())]
            } else {
                all[rng.gen_range(0..all.len())]
            }
        })
        .collect()
}

/// Prints `what: err` and exits. Bench binaries fail loudly with a clean
/// message instead of unwinding a panic through worker threads.
fn fail(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {err}");
    std::process::exit(1);
}

fn main() {
    let o = parse();
    let spec = tg_datasets::spec_by_name(&o.dataset).unwrap_or_else(|| {
        eprintln!("error: unknown dataset {:?}", o.dataset);
        std::process::exit(2);
    });
    let data = tg_datasets::generate(&spec, o.scale, o.seed).unwrap_or_else(|e| fail("dataset generation", e));
    let cfg = TgatConfig {
        dim: o.dim,
        edge_dim: data.dim(),
        time_dim: o.dim,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 10,
    };
    let params = TgatParams::init(cfg, o.seed).unwrap_or_else(|e| fail("param init", e));
    let graph = TemporalGraph::from_stream(&data.stream);
    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let t_query = data.stream.max_time() * 1.01;

    // Candidate targets: sources of the stream, queried just past the end.
    let all: Vec<(NodeId, Time)> =
        data.stream.edges().iter().map(|e| (e.src, t_query)).collect();
    let hot: Vec<(NodeId, Time)> = all.iter().take(o.hot.max(1)).copied().collect();

    let bundle = Arc::new(
        ModelBundle::new(params, graph, node_features, data.edge_features.clone())
            .unwrap_or_else(|e| fail("model bundle", e)),
    );

    let streams: Vec<Vec<(NodeId, Time)>> = (0..o.clients)
        .map(|c| query_stream(o.seed + c as u64 + 1, o.requests_per_client, o.hot_prob, &hot, &all))
        .collect();
    let total_requests = o.clients * o.requests_per_client;

    println!(
        "dataset {} (scale {}): {} nodes, {} edges; {} clients x {} requests, \
         batch {} linger {}us workers {}",
        o.dataset,
        o.scale,
        data.stream.num_nodes(),
        data.stream.len(),
        o.clients,
        o.requests_per_client,
        o.max_batch,
        o.linger_us,
        o.workers
    );

    // ---- Direct path: one engine, caller-formed batches of max_batch. ----
    let direct_seconds = {
        let mut eng = TgoptEngine::new(&bundle.params, bundle.context(), OptConfig::all());
        let start = Instant::now();
        for stream in &streams {
            for chunk in stream.chunks(o.max_batch.max(1)) {
                let ns: Vec<NodeId> = chunk.iter().map(|&(n, _)| n).collect();
                let ts: Vec<Time> = chunk.iter().map(|&(_, t)| t).collect();
                let _ = eng.embed_batch(&ns, &ts).unwrap_or_else(|e| fail("direct embed", e));
            }
        }
        start.elapsed().as_secs_f64()
    };
    println!(
        "direct    : {:>9.1} req/s  ({} requests in {:.3}s, sequential)",
        total_requests as f64 / direct_seconds,
        total_requests,
        direct_seconds
    );

    // ---- Served path: concurrent clients through the batcher. ----
    let mut cfg_serve = ServeConfig::default()
        .with_max_batch(o.max_batch)
        .with_linger(Duration::from_micros(o.linger_us))
        .with_queue_capacity(total_requests.max(1024))
        .with_workers(o.workers)
        .with_stage_spans(o.stats_json.is_some());
    if let Some(b) = o.budget_bytes {
        cfg_serve = cfg_serve.with_memory_budget(b);
    }
    let server = TgServer::threaded(Arc::clone(&bundle), cfg_serve).unwrap_or_else(|e| fail("server start", e));

    let start = Instant::now();
    let mut latencies_us: Vec<f64> = std::thread::scope(|scope| {
        let handles: Vec<_> = streams
            .iter()
            .map(|stream| {
                let server = &server;
                scope.spawn(move || {
                    let mut lat = Vec::with_capacity(stream.len());
                    for &(n, t) in stream {
                        let submitted = Instant::now();
                        match server.submit(n, t) {
                            Ok(ticket) => {
                                let _ = ticket.wait().unwrap_or_else(|e| fail("serve embed", e));
                                lat.push(submitted.elapsed().as_secs_f64() * 1e6);
                            }
                            Err(e) => fail("submission", e),
                        }
                    }
                    lat
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().unwrap_or_else(|_| fail("client thread", "panicked")))
            .collect()
    });
    let serve_seconds = start.elapsed().as_secs_f64();
    let (stats, telemetry) = server.shutdown_with_telemetry();

    latencies_us.sort_by(|a, b| a.total_cmp(b));
    println!(
        "served    : {:>9.1} req/s  ({} requests in {:.3}s, {} clients)",
        total_requests as f64 / serve_seconds,
        total_requests,
        serve_seconds,
        o.clients
    );
    println!(
        "latency   : p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us  (exact, sorted)",
        percentile(&latencies_us, 50.0),
        percentile(&latencies_us, 95.0),
        percentile(&latencies_us, 99.0)
    );
    // The online histogram reports each quantile's log2-bucket upper edge:
    // within one bucket's relative error (< 2x) of the exact value above.
    let online = &stats.latency;
    println!(
        "online    : p50 {:>8.1}us  p95 {:>8.1}us  p99 {:>8.1}us  ({} samples, log2 histogram)",
        online.p50_ns() as f64 / 1e3,
        online.p95_ns() as f64 / 1e3,
        online.p99_ns() as f64 / 1e3,
        online.count()
    );
    println!(
        "batching  : {} batches, mean size {:.1}, cross-request dedup ratio {:.1}%",
        stats.batches,
        stats.mean_batch_size(),
        100.0 * stats.cross_dedup_ratio()
    );
    println!(
        "admission : {} submitted, {} overloaded, {} deadline-expired, {} degraded batches",
        stats.submitted, stats.rejected_overload, stats.rejected_deadline, stats.degraded_batches
    );

    if let Some(path) = &o.stats_json {
        let text = serde_json::to_string(&telemetry).unwrap_or_else(|e| fail("telemetry snapshot serialization", e));
        if let Err(e) = std::fs::write(path, tg_bench::table::pretty_json(&text) + "\n") {
            eprintln!("error: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
