//! The reproduction's counterpart to the artifact's `inference.py`: run the
//! standard inference task on one dataset with selectable optimizations.
//!
//! ```sh
//! cargo run --release -p tg-bench --bin inference -- -d snap-msg --opt-all --stats
//! cargo run --release -p tg-bench --bin inference -- -d jodie-wiki --opt-cache --opt-dedup
//! cargo run --release -p tg-bench --bin inference -- --csv data/ml_custom.csv --opt-all
//! ```

use tg_bench::harness::{self, mean_std};
use tg_bench::{replay, table, EngineKind, ExpArgs};
use tgat::OpKind;
use tgopt::{OptConfig, TimeCacheKind};

struct CliOpts {
    base: ExpArgs,
    dataset: String,
    csv: Option<String>,
    opt_dedup: bool,
    opt_cache: bool,
    opt_time: bool,
    hash_time_cache: bool,
    stats: bool,
    time_window: usize,
    verify: bool,
    json: Option<String>,
    stats_json: Option<String>,
}

fn parse() -> CliOpts {
    let mut out = CliOpts {
        base: ExpArgs::parse_from(std::iter::empty::<String>()),
        dataset: "snap-msg".to_string(),
        csv: None,
        opt_dedup: false,
        opt_cache: false,
        opt_time: false,
        hash_time_cache: false,
        stats: false,
        time_window: 10_000,
        verify: false,
        json: None,
        stats_json: None,
    };
    let mut passthrough: Vec<String> = Vec::new();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "-d" | "--dataset" => out.dataset = take("-d"),
            "--csv" => out.csv = Some(take("--csv")),
            "--opt-all" => {
                out.opt_dedup = true;
                out.opt_cache = true;
                out.opt_time = true;
            }
            "--opt-dedup" => out.opt_dedup = true,
            "--opt-cache" => out.opt_cache = true,
            "--opt-time" => out.opt_time = true,
            "--hash-time-cache" => out.hash_time_cache = true,
            "--stats" => out.stats = true,
            "--verify" => out.verify = true,
            "--json" => out.json = Some(take("--json")),
            "--stats-json" => out.stats_json = Some(take("--stats-json")),
            "--time-window" => {
                out.time_window = take("--time-window").parse().unwrap_or_else(|_| {
                    eprintln!("error: invalid --time-window");
                    std::process::exit(2);
                })
            }
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                passthrough.push(other.to_string());
                if matches!(
                    other,
                    "--scale" | "--runs" | "--seed" | "--dim" | "--neighbors" | "--batch"
                        | "--cache-limit" | "--datasets"
                ) {
                    passthrough.push(take(other));
                }
            }
        }
    }
    out.base = ExpArgs::parse_from(passthrough);
    out
}

const USAGE: &str = "\
Usage: inference [-d NAME | --csv PATH] [--opt-all | --opt-dedup --opt-cache --opt-time]
                 [--stats] [--verify] [--json PATH] [--stats-json PATH]
                 [--time-window N] [--hash-time-cache]
                 [--scale F] [--runs N] [--dim N] [--neighbors N] [--batch N]
                 [--cache-limit N] [--seed N]

Runs the standard inference task (chronological batches, both endpoints of
every edge embedded) with the baseline TGAT engine and, if any --opt-* flag
is given, the TGOpt engine, reporting runtimes and statistics.

--stats-json writes the unified telemetry snapshot (stable schema shared
with the serve bench); pass --stats as well to populate its per-stage
spans.";

/// The paper's §5.1.3 validation: replay every batch through both engines
/// and report the worst elementwise deviation.
fn verify(cli: &CliOpts, ds: &tg_datasets::Dataset, params: &tgat::TgatParams) {
    use tg_graph::{BatchIter, TemporalGraph};
    use tgat::engine::GraphContext;
    let graph = TemporalGraph::from_stream(&ds.stream);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &ds.node_features,
        edge_features: &ds.edge_features,
    };
    let mut base = tgat::BaselineEngine::new(params, ctx);
    let opt = OptConfig {
        cache_limit: cli.base.effective_cache_limit(),
        time_window: cli.time_window,
        ..OptConfig::all()
    };
    let mut ours = tgopt::TgoptEngine::new(params, ctx, opt);
    let mut worst = 0.0f32;
    let mut batches = 0usize;
    for batch in BatchIter::new(&ds.stream, cli.base.batch_size) {
        let (ns, ts) = batch.targets();
        let hb = base.embed_batch(&ns, &ts);
        let ho = ours.embed_batch(&ns, &ts).unwrap_or_else(|e| fail("tgopt inference", e));
        worst = worst.max(hb.max_abs_diff(&ho));
        batches += 1;
    }
    println!(
        "verified {batches} batches: max abs deviation {worst:.3e} (tolerance 1e-4)"
    );
    if worst >= 1e-4 {
        eprintln!("FAILED: TGOpt diverged from the baseline");
        std::process::exit(1);
    }
    println!("OK: TGOpt matches the baseline within floating-point tolerance");
}

/// One engine's entry in the machine-readable report (see EXPERIMENTS.md for
/// the protocol that produces the committed `BENCH_inference.json`).
#[derive(serde::Serialize)]
struct EngineReport {
    engine: String,
    wall_ms_mean: f64,
    wall_ms_std: f64,
    speedup_vs_baseline: f64,
    checksum: f64,
    counters: CounterReport,
    cache_items: usize,
    cache_bytes: usize,
}

#[derive(serde::Serialize)]
struct CounterReport {
    cache_lookups: u64,
    cache_hits: u64,
    cache_stores: u64,
    recomputed: u64,
    dedup_removed: u64,
    stores_skipped: u64,
}

/// Top-level schema of `--json` output.
#[derive(serde::Serialize)]
struct BenchReport {
    dataset: String,
    edges: usize,
    nodes: usize,
    batch_size: usize,
    runs: usize,
    seed: u64,
    dim: usize,
    neighbors: usize,
    engines: Vec<EngineReport>,
}

fn engine_report(
    kind: &str,
    wall_ms_mean: f64,
    wall_ms_std: f64,
    speedup_vs_baseline: f64,
    run: &tg_bench::harness::RunResult,
) -> EngineReport {
    EngineReport {
        engine: kind.to_string(),
        wall_ms_mean,
        wall_ms_std,
        speedup_vs_baseline,
        checksum: run.checksum,
        counters: CounterReport {
            cache_lookups: run.counters.cache_lookups,
            cache_hits: run.counters.cache_hits,
            cache_stores: run.counters.cache_stores,
            recomputed: run.counters.recomputed,
            dedup_removed: run.counters.dedup_removed,
            stores_skipped: run.counters.stores_skipped,
        },
        cache_items: run.cache_items,
        cache_bytes: run.cache_bytes,
    }
}

/// Prints `what: err` and exits. Bench binaries fail loudly with a clean
/// message instead of unwinding a panic mid-benchmark.
fn fail(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {err}");
    std::process::exit(1);
}

fn main() {
    let cli = parse();
    let ds = match &cli.csv {
        Some(path) => tg_datasets::load_csv(
            std::path::Path::new(path),
            "custom",
            100,
            cli.base.seed,
        )
        .unwrap_or_else(|e| {
            eprintln!("error: failed to load {path}: {e}");
            std::process::exit(1);
        }),
        None => harness::dataset_for(&cli.base, &cli.dataset),
    };
    // CSV-loaded node features may need resizing to the model dim, exactly
    // like the generated ones.
    let mut ds = ds;
    ds.node_features =
        tg_tensor::Tensor::zeros(ds.node_features.rows(), cli.base.dim);
    let params = harness::params_for(&cli.base, &ds);
    println!(
        "dataset {} | {} edges | {} nodes | d_e {} | model dim {} | {} neighbors | batch {}",
        ds.name,
        ds.stream.len(),
        ds.stream.num_nodes(),
        ds.dim(),
        cli.base.dim,
        cli.base.n_neighbors,
        cli.base.batch_size
    );

    if cli.verify {
        verify(&cli, &ds, &params);
        return;
    }

    let any_opt = cli.opt_dedup || cli.opt_cache || cli.opt_time;
    let mut base_times = Vec::new();
    let mut base_run = None;
    for _ in 0..cli.base.runs {
        let r = replay(&ds, &params, EngineKind::Baseline, cli.base.batch_size, cli.stats);
        base_times.push(r.seconds);
        base_run = Some(r);
    }
    let (bm, bs) = mean_std(&base_times);
    println!("baseline: {} +/- {}", table::fmt_secs(bm), table::fmt_secs(bs));
    let mut engine_reports = vec![engine_report(
        "baseline",
        bm * 1e3,
        bs * 1e3,
        1.0,
        base_run.as_ref().unwrap_or_else(|| fail("report", "baseline never ran")),
    )];
    // --stats-json reports the most optimized engine that ran.
    let mut telemetry = base_run.as_ref().map(|r| r.telemetry());

    if any_opt {
        let opt = OptConfig {
            enable_dedup: cli.opt_dedup,
            enable_cache: cli.opt_cache,
            enable_time_precompute: cli.opt_time,
            cache_limit: cli.base.effective_cache_limit(),
            time_window: cli.time_window,
            time_cache_kind: if cli.hash_time_cache {
                TimeCacheKind::Hash
            } else {
                TimeCacheKind::DenseWindow
            },
            ..OptConfig::all()
        };
        let mut opt_times = Vec::new();
        let mut opt_run = None;
        for _ in 0..cli.base.runs {
            let r = replay(&ds, &params, EngineKind::Tgopt(opt), cli.base.batch_size, cli.stats);
            opt_times.push(r.seconds);
            opt_run = Some(r);
        }
        let (om, os) = mean_std(&opt_times);
        println!(
            "tgopt:    {} +/- {}   speedup {:.2}x",
            table::fmt_secs(om),
            table::fmt_secs(os),
            bm / om.max(1e-12)
        );
        let r = opt_run.unwrap_or_else(|| fail("report", "optimized engine never ran"));
        telemetry = Some(r.telemetry());
        engine_reports.push(engine_report("tgopt", om * 1e3, os * 1e3, bm / om.max(1e-12), &r));
        println!(
            "cache: {:.2}% hit rate | {} items | {} | dedup removed {}",
            100.0 * r.counters.hit_rate(),
            r.cache_items,
            table::fmt_mib(r.cache_bytes),
            r.counters.dedup_removed
        );
        if cli.stats {
            let b = base_run.unwrap_or_else(|| fail("report", "baseline never ran"));
            let mut rows = Vec::new();
            for kind in OpKind::ALL {
                let cell = |v: f64| if v == 0.0 { "-".into() } else { format!("{v:.3}") };
                rows.push(vec![
                    kind.label().to_string(),
                    cell(b.stats.total(kind).as_secs_f64()),
                    cell(r.stats.total(kind).as_secs_f64()),
                ]);
            }
            println!("\n{}", table::render(&["operation (secs)", "base", "ours"], &rows));
        }
    } else if cli.stats {
        let b = base_run.unwrap_or_else(|| fail("report", "baseline never ran"));
        let mut rows = Vec::new();
        for kind in OpKind::ALL {
            let v = b.stats.total(kind).as_secs_f64();
            if v > 0.0 {
                rows.push(vec![kind.label().to_string(), format!("{v:.3}")]);
            }
        }
        println!("\n{}", table::render(&["operation (secs)", "base"], &rows));
    }

    if let Some(path) = &cli.json {
        let report = BenchReport {
            dataset: ds.name.clone(),
            edges: ds.stream.len(),
            nodes: ds.stream.num_nodes(),
            batch_size: cli.base.batch_size,
            runs: cli.base.runs,
            seed: cli.base.seed,
            dim: cli.base.dim,
            neighbors: cli.base.n_neighbors,
            engines: engine_reports,
        };
        let text = serde_json::to_string(&report).unwrap_or_else(|e| fail("report serialization", e));
        if let Err(e) = std::fs::write(path, table::pretty_json(&text) + "\n") {
            eprintln!("error: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }

    if let Some(path) = &cli.stats_json {
        let snap = telemetry.take().unwrap_or_else(tg_telemetry::TelemetrySnapshot::new);
        let text = serde_json::to_string(&snap).unwrap_or_else(|e| fail("telemetry snapshot serialization", e));
        if let Err(e) = std::fs::write(path, table::pretty_json(&text) + "\n") {
            eprintln!("error: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
