//! **Figure 4** — distribution of time-delta values processed by the time
//! encoder (paper: snap-msg). Deltas cluster near zero with a power-law
//! tail, which is what makes the contiguous precomputed window effective.

use tg_bench::{harness, table, ExpArgs};
use tg_graph::{BatchIter, TemporalGraph, TemporalSampler};

fn main() {
    let mut args = ExpArgs::parse();
    if args.datasets.is_empty() {
        args.datasets = vec!["snap-msg".into()];
    }
    if args.scale <= 0.02 {
        args.scale = 0.2;
    }
    println!("Figure 4: time-delta distribution at the time encoder, scale {}\n", args.scale);
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let graph = TemporalGraph::from_stream(&ds.stream);
        let sampler = TemporalSampler::most_recent(args.n_neighbors);

        // Log-spaced histogram of the dt values the encoder would see.
        let edges: [f64; 10] =
            [0.0, 1.0, 1e1, 1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 1e8];
        let mut counts = vec![0u64; edges.len()];
        let mut total = 0u64;
        let mut within_window = 0u64;
        for batch in BatchIter::new(&ds.stream, args.batch_size) {
            let (ns, ts) = batch.targets();
            let nb = sampler.sample(&graph, &ns, &ts);
            for i in 0..nb.dts.len() {
                if !nb.is_valid(i) {
                    continue;
                }
                let dt = nb.dts[i] as f64;
                total += 1;
                if dt < 10_000.0 {
                    within_window += 1;
                }
                let bucket = edges.iter().rposition(|&e| dt >= e).unwrap_or(0);
                counts[bucket] += 1;
            }
        }
        let labels: Vec<String> = edges
            .iter()
            .enumerate()
            .map(|(i, &e)| {
                if i + 1 < edges.len() {
                    format!("[{:.0e}, {:.0e})", e, edges[i + 1])
                } else {
                    format!(">= {:.0e}", e)
                }
            })
            .collect();
        let values: Vec<f64> = counts.iter().map(|&c| c as f64).collect();
        println!("{} ({} encoded deltas):", spec.name, total);
        println!("{}", table::bar_series("count per dt bucket", &labels, &values, 40));
        // Probability *density* (count / bucket width) shows the power-law
        // clustering near zero that log-spaced count buckets obscure.
        let density: Vec<f64> = counts
            .iter()
            .enumerate()
            .map(|(i, &c)| {
                let width = if i + 1 < edges.len() { edges[i + 1] - edges[i] } else { edges[i] * 9.0 };
                c as f64 / width.max(1.0)
            })
            .collect();
        println!("{}", table::bar_series("density (count per unit dt, log scale)", &labels,
            &density.iter().map(|&d| (1.0 + d).ln()).collect::<Vec<_>>(), 40));
        println!(
            "  {:.1}% of deltas fall inside the default precompute window (dt < 10,000)\n",
            100.0 * within_window as f64 / total.max(1) as f64
        );
    }
    println!("Paper shape: power-law, clustered near 0 (most-recent sampling keeps t - t_j small).");
}
