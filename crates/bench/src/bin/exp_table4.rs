//! **Table 4** — runtime and cache memory when sweeping the cache limit
//! (paper: {10K, 100K, 1M, 3M} embeddings on jodie-lastfm and snap-msg; a
//! lower limit costs runtime on large graphs and memory grows with the
//! limit until the working set fits).

use tg_bench::harness::{self, mean_std};
use tg_bench::{replay, table, EngineKind, ExpArgs};
use tgopt::OptConfig;

fn main() {
    let mut args = ExpArgs::parse();
    if args.datasets.is_empty() {
        args.datasets = vec!["jodie-lastfm".into(), "snap-msg".into()];
    }
    // Scaled runs produce proportionally fewer cacheable embeddings, so the
    // sweep is scaled down with |E| to keep the paper's shape visible.
    let limits_full: [usize; 4] = [10_000, 100_000, 1_000_000, 3_000_000];
    println!(
        "Table 4: cache-limit sweep, {} run(s), scale {}, dim {}\n",
        args.runs, args.scale, args.dim
    );
    let mut rows = Vec::new();
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let params = harness::params_for(&args, &ds);
        for &limit_full in &limits_full {
            let limit = ((limit_full as f64 * args.scale).round() as usize).max(16); // lint: allow(lossy-cast, scaled cache limit is a small non-negative count)
            let opt = OptConfig::all().with_cache_limit(limit);
            let mut times = Vec::new();
            let mut bytes = 0usize;
            let mut items = 0usize;
            for _ in 0..args.runs {
                let r = replay(&ds, &params, EngineKind::Tgopt(opt), args.batch_size, false);
                times.push(r.seconds);
                bytes = r.cache_bytes;
                items = r.cache_items;
            }
            let (mean, _) = mean_std(&times);
            rows.push(vec![
                spec.name.to_string(),
                format!("{limit}"),
                format!("(paper {})", fmt_k(limit_full)),
                table::fmt_secs(mean),
                table::fmt_mib(bytes),
                format!("{items}"),
            ]);
        }
        eprintln!("  done {}", spec.name);
    }
    println!(
        "{}",
        table::render(
            &["dataset", "limit", "", "runtime", "cache mem", "items"],
            &rows
        )
    );
    println!("Paper shape: jodie-lastfm degrades sharply at small limits (working set\nexceeds cache) while snap-msg barely changes; memory scales with the limit\nuntil the dataset's total unique embeddings fit.");
}

fn fmt_k(n: usize) -> String {
    if n >= 1_000_000 {
        format!("{}M", n / 1_000_000)
    } else {
        format!("{}K", n / 1_000)
    }
}
