//! **Figure 7** — evolution of TGOpt's cache hit rate over batches, averaged
//! over a sliding window of the last 10 batches (paper: jodie-lastfm and
//! snap-msg; the rate passes ~80% early and keeps climbing).

use tg_bench::{harness, replay, table, EngineKind, ExpArgs};
use tgopt::OptConfig;

fn main() {
    let mut args = ExpArgs::parse();
    if args.datasets.is_empty() {
        args.datasets = vec!["jodie-lastfm".into(), "snap-msg".into()];
    }
    println!("Figure 7: cache hit-rate evolution (10-batch sliding window), scale {}\n", args.scale);
    let opt = OptConfig::all().with_cache_limit(args.effective_cache_limit());
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let params = harness::params_for(&args, &ds);
        let run = replay(&ds, &params, EngineKind::Tgopt(opt), args.batch_size, false);

        const WINDOW: usize = 10;
        let mut series = Vec::new();
        for (i, _) in run.batches.iter().enumerate() {
            let lo = i.saturating_sub(WINDOW - 1);
            let (mut hits, mut lookups) = (0u64, 0u64);
            for b in &run.batches[lo..=i] {
                hits += b.hits;
                lookups += b.lookups;
            }
            let rate = if lookups == 0 { 0.0 } else { hits as f64 / lookups as f64 };
            series.push(rate);
        }
        // Print ~20 evenly spaced points of the series.
        let n = series.len().max(1);
        let step = (n / 20).max(1);
        let mut labels = Vec::new();
        let mut values = Vec::new();
        for i in (0..n).step_by(step) {
            labels.push(format!("batch {:>4}", i + 1));
            values.push(100.0 * series[i]);
        }
        if (n - 1) % step != 0 {
            labels.push(format!("batch {:>4}", n));
            values.push(100.0 * series[n - 1]);
        }
        // Artifact parity: logs/<prefix>-<dataset>-hits.csv with one row
        // per batch (batch index, sliding-window hit rate).
        let csv_rows: Vec<Vec<String>> = series
            .iter()
            .enumerate()
            .map(|(i, r)| vec![(i + 1).to_string(), format!("{r:.6}")])
            .collect();
        if let Ok(path) = tg_bench::csv::write_csv(
            &format!("fig7-{}-hits", spec.name),
            &["batch", "hit_rate"],
            &csv_rows,
        ) {
            eprintln!("  wrote {}", path.display());
        }
        println!("{}:", spec.name);
        println!("{}", table::bar_series("hit rate % (sliding window of 10)", &labels, &values, 40));
        println!(
            "  overall average hit rate {:.2}% (paper: 90.94% lastfm, 85.85% msg at full scale)\n",
            100.0 * run.counters.hit_rate()
        );
    }
}
