//! **Figure 5** — end-to-end inference runtime, baseline vs TGOpt, across
//! all datasets, averaged over `--runs` repetitions; bar labels are TGOpt's
//! speedup, and the geomean speedup is reported at the end (paper: 4.9x on
//! the CPU server; this reproduction is CPU-only, see DESIGN.md).

use tg_bench::harness::{self, geomean, mean_std};
use tg_bench::{replay, table, EngineKind, ExpArgs};
use tgopt::OptConfig;

fn main() {
    let args = ExpArgs::parse();
    println!(
        "Figure 5: inference runtime, {} run(s), scale {}, dim {}, {} neighbors\n",
        args.runs, args.scale, args.dim, args.n_neighbors
    );
    let opt = OptConfig::all().with_cache_limit(args.effective_cache_limit());
    let mut rows = Vec::new();
    let mut speedups = Vec::new();
    let mut names = Vec::new();
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let params = harness::params_for(&args, &ds);
        let mut base_times = Vec::new();
        let mut opt_times = Vec::new();
        let mut checks = (0.0f64, 0.0f64);
        for _ in 0..args.runs {
            let b = replay(&ds, &params, EngineKind::Baseline, args.batch_size, false);
            let o = replay(&ds, &params, EngineKind::Tgopt(opt), args.batch_size, false);
            base_times.push(b.seconds);
            opt_times.push(o.seconds);
            checks = (b.checksum, o.checksum);
        }
        let (bm, bs) = mean_std(&base_times);
        let (om, os) = mean_std(&opt_times);
        let speedup = bm / om.max(1e-12);
        let drift = (checks.0 - checks.1).abs() / checks.0.abs().max(1.0);
        assert!(
            drift < 1e-3,
            "{}: engines disagree (checksum drift {drift:.2e})",
            spec.name
        );
        speedups.push(speedup);
        names.push(spec.name.to_string());
        rows.push(vec![
            spec.name.to_string(),
            format!("{}", ds.stream.len()),
            format!("{} +/- {}", table::fmt_secs(bm), table::fmt_secs(bs)),
            format!("{} +/- {}", table::fmt_secs(om), table::fmt_secs(os)),
            format!("{speedup:.2}x"),
        ]);
        eprintln!("  done {}", spec.name);
    }
    println!(
        "{}",
        table::render(&["dataset", "|E|", "baseline", "tgopt", "speedup"], &rows)
    );
    let csv_rows: Vec<Vec<String>> = names
        .iter()
        .zip(&speedups)
        .map(|(n, s)| vec![n.clone(), format!("{s:.4}")])
        .collect();
    if let Ok(path) = tg_bench::csv::write_csv("fig5-speedups", &["dataset", "speedup"], &csv_rows) {
        eprintln!("wrote {}", path.display());
    }
    println!("{}", table::bar_series("speedup over baseline", &names, &speedups, 40));
    println!("geomean speedup: {:.2}x (paper CPU: 4.9x, GPU: 2.9x)", geomean(&speedups));
}
