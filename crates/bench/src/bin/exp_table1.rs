//! **Table 1** — percentage of duplicate `(node, time)` targets per batch at
//! each model layer, averaged over all batches of each dataset.
//!
//! Mirrors the paper's measurement: the layer-2 row is the raw batch input
//! (sources + destinations), layer 1 pools the sampled neighbors of every
//! (non-deduplicated) layer-2 target, and layer 0 repeats the expansion but
//! checks duplicates by node only, since layer 0 merely looks up static
//! features (§3.1).
//!
//! Paper reference values (batch 200, 20 neighbors):
//! ```text
//! dataset        L0   L1   L2
//! jodie-lastfm   94%  48%   0%
//! jodie-mooc     96%  74%   2%
//! jodie-reddit   88%  41%   0%
//! jodie-wiki     96%  68%   0%
//! snap-email     96%  55%  19%
//! snap-msg       96%  70%  16%
//! snap-reddit    83%  35%   8%
//! ```

use tg_bench::{harness, table, ExpArgs};
use tg_graph::{BatchIter, NodeId, TemporalGraph, TemporalSampler, Time};
use tgopt::dedup::{dedup_filter, dedup_nodes_only};

fn main() {
    let mut args = ExpArgs::parse();
    // Duplication is a sampling-only measurement; the paper's neighbor count
    // is cheap enough to use even on the default laptop profile.
    if args.n_neighbors < 20 {
        args.n_neighbors = 20;
    }
    println!(
        "Table 1: duplication per batch of {} edges, {} neighbors, scale {}\n",
        args.batch_size, args.n_neighbors, args.scale
    );

    let mut rows = Vec::new();
    for spec in tg_datasets::all_specs() {
        if !args.selects(spec.name) {
            continue;
        }
        let ds = harness::dataset_for(&args, spec.name);
        let graph = TemporalGraph::from_stream(&ds.stream);
        let sampler = TemporalSampler::most_recent(args.n_neighbors);
        let (mut d0, mut d1, mut d2) = (0.0f64, 0.0f64, 0.0f64);
        let mut batches = 0usize;
        for batch in BatchIter::new(&ds.stream, args.batch_size) {
            let (ns2, ts2) = batch.targets();
            d2 += dedup_filter(&ns2, &ts2).duplication_rate();

            // Layer-1 input: the layer-2 targets plus all their sampled
            // neighbors (baseline pools without dedup).
            let nb = sampler.sample(&graph, &ns2, &ts2);
            let mut ns1: Vec<NodeId> = ns2.clone();
            let mut ts1: Vec<Time> = ts2.clone();
            for i in 0..nb.nodes.len() {
                if nb.is_valid(i) {
                    ns1.push(nb.nodes[i]);
                    ts1.push(nb.times[i]);
                }
            }
            d1 += dedup_filter(&ns1, &ts1).duplication_rate();

            // Layer-0 input: expand once more; duplicates by node only.
            let nb0 = sampler.sample(&graph, &ns1, &ts1);
            let mut ns0: Vec<NodeId> = ns1.clone();
            for i in 0..nb0.nodes.len() {
                if nb0.is_valid(i) {
                    ns0.push(nb0.nodes[i]);
                }
            }
            d0 += dedup_nodes_only(&ns0).duplication_rate();
            batches += 1;
        }
        let b = batches.max(1) as f64;
        rows.push(vec![
            spec.name.to_string(),
            format!("{:.0}%", 100.0 * d0 / b),
            format!("{:.0}%", 100.0 * d1 / b),
            format!("{:.0}%", 100.0 * d2 / b),
        ]);
    }
    println!("{}", table::render(&["dataset", "layer 0", "layer 1", "layer 2"], &rows));
}
