//! Mixed-workload streaming benchmark: query throughput while the graph
//! mutates, versus the same query load on a frozen graph.
//!
//! The generated edge stream is split at `--base-frac`: the prefix builds
//! the server's base graph, the suffix is ingested live through
//! `TgServer::submit_edge` during the run. Each `--ratios` entry runs the
//! same client query load with that fraction of operations replaced by
//! edge inserts, reporting throughput, latency percentiles, engine cache
//! hit rate, and the targeted-invalidation precision (entries retained vs
//! dropped). Ratio 0.0 is the frozen-graph baseline (live ingest off).
//!
//! ```sh
//! cargo run --release -p tg-bench --bin streaming -- -d snap-msg --ratios 0,0.05,0.2
//! cargo run --release -p tg-bench --bin streaming -- --verify --json BENCH_streaming.json
//! ```
//!
//! `--verify` additionally ingests the *entire* suffix through a live
//! server (interleaved with cache-populating queries) and checks that
//! embeddings served afterwards match a cold engine over the full
//! rebuilt graph within 1e-5 — the same oracle the equivalence property
//! tests use. Any mismatch exits nonzero, so CI can gate on it.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};
use tg_bench::harness::percentile;
use tg_bench::table;
use tg_graph::{Edge, NodeId, TemporalGraph, Time};
use tg_serve::{ModelBundle, ServeConfig, TgServer};
use tg_tensor::Tensor;
use tgat::{TgatConfig, TgatParams};
use tgopt::{OptConfig, TgoptEngine};

struct Opts {
    dataset: String,
    scale: f64,
    seed: u64,
    dim: usize,
    clients: usize,
    ops_per_client: usize,
    max_batch: usize,
    linger_us: u64,
    workers: usize,
    hot: usize,
    hot_prob: f64,
    base_frac: f64,
    ratios: Vec<f64>,
    compact_threshold: usize,
    verify: bool,
    json: Option<String>,
}

impl Default for Opts {
    fn default() -> Self {
        Self {
            dataset: "snap-msg".to_string(),
            scale: 0.02,
            seed: 7,
            dim: 32,
            clients: 4,
            ops_per_client: 1500,
            max_batch: 64,
            linger_us: 200,
            workers: 2,
            hot: 16,
            hot_prob: 0.6,
            base_frac: 0.8,
            ratios: vec![0.0, 0.05, 0.1, 0.2],
            compact_threshold: 96,
            verify: false,
            json: None,
        }
    }
}

const USAGE: &str = "\
Usage: streaming [-d NAME] [--scale F] [--seed N] [--dim N] [--clients N]
                 [--ops N] [--batch N] [--linger-us N] [--workers N]
                 [--hot N] [--hot-prob F] [--base-frac F] [--ratios LIST]
                 [--compact-threshold N] [--verify] [--json PATH]

Benchmarks tg-serve under a mixed insert/query workload. The edge stream
splits at --base-frac into a frozen base and a live suffix; each --ratios
entry (comma-separated insert fractions, e.g. 0,0.05,0.2) runs the client
load with that share of operations ingesting suffix edges. Reports
throughput, latency percentiles, engine cache hit rate, and targeted
invalidation precision. --verify replays the full suffix and checks
served embeddings against a cold rebuild (exit 1 on mismatch); --json
writes the per-ratio report.";

fn parse() -> Opts {
    let mut o = Opts::default();
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut take = |name: &str| {
            it.next().unwrap_or_else(|| {
                eprintln!("error: {name} needs a value");
                std::process::exit(2);
            })
        };
        match flag.as_str() {
            "-d" | "--dataset" => o.dataset = take("-d"),
            "--scale" => o.scale = num(&take("--scale")),
            "--seed" => o.seed = num::<f64>(&take("--seed")) as u64,
            "--dim" => o.dim = num::<f64>(&take("--dim")) as usize,
            "--clients" => o.clients = num::<f64>(&take("--clients")) as usize,
            "--ops" => o.ops_per_client = num::<f64>(&take("--ops")) as usize,
            "--batch" => o.max_batch = num::<f64>(&take("--batch")) as usize,
            "--linger-us" => o.linger_us = num::<f64>(&take("--linger-us")) as u64,
            "--workers" => o.workers = num::<f64>(&take("--workers")) as usize,
            "--hot" => o.hot = num::<f64>(&take("--hot")) as usize,
            "--hot-prob" => o.hot_prob = num(&take("--hot-prob")),
            "--base-frac" => o.base_frac = num(&take("--base-frac")),
            "--ratios" => {
                o.ratios = take("--ratios").split(',').map(num).collect();
            }
            "--compact-threshold" => {
                o.compact_threshold = num::<f64>(&take("--compact-threshold")) as usize
            }
            "--verify" => o.verify = true,
            "--json" => o.json = Some(take("--json")),
            "-h" | "--help" => {
                eprintln!("{USAGE}");
                std::process::exit(0);
            }
            other => {
                eprintln!("error: unknown flag {other}\n{USAGE}");
                std::process::exit(2);
            }
        }
    }
    o
}

fn num<T: std::str::FromStr>(s: &str) -> T {
    s.parse().unwrap_or_else(|_| {
        eprintln!("error: invalid numeric value {s:?}");
        std::process::exit(2);
    })
}

/// Prints `what: err` and exits. Bench binaries fail loudly with a clean
/// message instead of unwinding a panic through worker threads.
fn fail(what: &str, err: impl std::fmt::Display) -> ! {
    eprintln!("error: {what}: {err}");
    std::process::exit(1);
}

/// One ratio's measured outcome (a row of `BENCH_streaming.json`).
#[derive(serde::Serialize)]
struct RunReport {
    insert_ratio: f64,
    queries: u64,
    inserts: u64,
    ops_per_s: f64,
    query_p50_us: f64,
    query_p95_us: f64,
    query_p99_us: f64,
    cache_hit_rate: f64,
    edges_appended: u64,
    compactions: u64,
    entries_invalidated: u64,
    entries_retained: u64,
    /// Per-layer sweep split: layer 1 uses the endpoint time-window test,
    /// layers >= 2 the constraint-tracked fingerprint check. A nonzero
    /// deep-layer `retained` is the retention the fingerprints buy over
    /// the old clear-all sweep.
    per_layer: Vec<tg_telemetry::LayerSweepTelemetry>,
}

/// Top-level schema of `--json` output.
#[derive(serde::Serialize)]
struct Report {
    bench: String,
    dataset: String,
    scale: f64,
    seed: u64,
    base_edges: usize,
    live_edges: usize,
    clients: usize,
    ops_per_client: usize,
    base_frac: f64,
    runs: Vec<RunReport>,
    verify: Option<VerifyReport>,
}

/// Result of the `--verify` equivalence replay.
#[derive(serde::Serialize)]
struct VerifyReport {
    checked_rows: usize,
    max_abs_diff: f64,
    tolerance: f64,
}

/// Runs one mixed workload against a fresh server; returns the report row.
#[allow(clippy::too_many_arguments)]
fn run_ratio(
    bundle: &Arc<ModelBundle>,
    o: &Opts,
    ratio: f64,
    tail: &[Edge],
    hot: &[(NodeId, Time)],
    all: &[(NodeId, Time)],
) -> RunReport {
    let live = ratio > 0.0;
    let total_ops = o.clients * o.ops_per_client;
    let mut cfg_serve = ServeConfig::default()
        .with_max_batch(o.max_batch)
        .with_linger(Duration::from_micros(o.linger_us))
        .with_queue_capacity(total_ops.max(1024))
        .with_workers(o.workers)
        .with_live_ingest(live)
        .with_compact_threshold(o.compact_threshold);
    // Cache the last layer too so the deep-layer fingerprint sweep has
    // entries to defend; its retention is what per_layer reports.
    cfg_serve.opt.cache_last_layer = true;
    let server =
        TgServer::threaded(Arc::clone(bundle), cfg_serve).unwrap_or_else(|e| fail("server start", e));

    // Suffix edges are claimed in stream (time) order across clients.
    let next_edge = AtomicUsize::new(0);
    let start = Instant::now();
    let per_client: Vec<(Vec<f64>, u64, u64)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..o.clients)
            .map(|c| {
                let server = &server;
                let next_edge = &next_edge;
                scope.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(o.seed ^ (0x5eed + c as u64));
                    let mut lat = Vec::with_capacity(o.ops_per_client);
                    let (mut queries, mut inserts) = (0u64, 0u64);
                    for _ in 0..o.ops_per_client {
                        let do_insert = live && rng.gen_bool(ratio.clamp(0.0, 1.0));
                        if do_insert {
                            let i = next_edge.fetch_add(1, Ordering::Relaxed);
                            if let Some(e) = tail.get(i) {
                                server
                                    .submit_edge(e.src, e.dst, e.time)
                                    .unwrap_or_else(|err| fail("submit_edge", err));
                                inserts += 1;
                                continue;
                            }
                            // Suffix exhausted: fall through to a query.
                        }
                        let (n, t) = if rng.gen_bool(o.hot_prob.clamp(0.0, 1.0)) && !hot.is_empty()
                        {
                            hot[rng.gen_range(0..hot.len())]
                        } else {
                            all[rng.gen_range(0..all.len())]
                        };
                        let submitted = Instant::now();
                        match server.submit(n, t) {
                            Ok(ticket) => {
                                let _ = ticket.wait().unwrap_or_else(|e| fail("serve embed", e));
                                lat.push(submitted.elapsed().as_secs_f64() * 1e6);
                            }
                            Err(e) => fail("submission", e),
                        }
                        queries += 1;
                    }
                    (lat, queries, inserts)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().unwrap_or_else(|_| fail("client thread", "panicked")))
            .collect()
    });
    let elapsed = start.elapsed().as_secs_f64();
    let (_, telemetry) = server.shutdown_with_telemetry();

    let mut lat: Vec<f64> = Vec::new();
    let (mut queries, mut inserts) = (0u64, 0u64);
    for (l, q, i) in per_client {
        lat.extend(l);
        queries += q;
        inserts += i;
    }
    lat.sort_by(|a, b| a.total_cmp(b));
    let eng = &telemetry.engine;
    let hit_rate = if eng.cache_lookups == 0 {
        0.0
    } else {
        eng.cache_hits as f64 / eng.cache_lookups as f64
    };
    RunReport {
        insert_ratio: ratio,
        queries,
        inserts,
        ops_per_s: (queries + inserts) as f64 / elapsed.max(1e-12),
        query_p50_us: percentile(&lat, 50.0),
        query_p95_us: percentile(&lat, 95.0),
        query_p99_us: percentile(&lat, 99.0),
        cache_hit_rate: hit_rate,
        edges_appended: telemetry.ingest.edges_appended,
        compactions: telemetry.ingest.compactions,
        entries_invalidated: telemetry.ingest.entries_invalidated,
        entries_retained: telemetry.ingest.entries_retained,
        per_layer: telemetry.ingest.per_layer.clone(),
    }
}

/// Ingests the whole suffix through a live server (with interleaved
/// cache-populating queries), then checks embeddings served over the
/// fully-mutated graph against a cold engine on the rebuilt full graph.
fn verify(
    bundle: &Arc<ModelBundle>,
    full_graph: &TemporalGraph,
    o: &Opts,
    tail: &[Edge],
    sample: &[(NodeId, Time)],
) -> VerifyReport {
    let mut cfg_serve = ServeConfig::default()
        .with_max_batch(o.max_batch)
        .with_linger(Duration::from_micros(o.linger_us))
        .with_queue_capacity((sample.len() + tail.len()).max(1024))
        .with_workers(o.workers)
        .with_live_ingest(true)
        .with_compact_threshold(o.compact_threshold);
    // Same caching shape as the measured runs: the oracle must also hold
    // when fingerprinted last-layer entries are being served.
    cfg_serve.opt.cache_last_layer = true;
    let server =
        TgServer::threaded(Arc::clone(bundle), cfg_serve).unwrap_or_else(|e| fail("server start", e));

    // Interleave ingest with queries so the cache holds pre-insert entries
    // the targeted sweep must catch — an empty cache would verify nothing.
    for (i, e) in tail.iter().enumerate() {
        if i % 8 == 0 {
            let (n, t) = sample[i % sample.len()];
            let ticket = server.submit(n, t).unwrap_or_else(|e| fail("verify query", e));
            let _ = ticket.wait().unwrap_or_else(|e| fail("verify embed", e));
        }
        server.submit_edge(e.src, e.dst, e.time).unwrap_or_else(|err| fail("verify ingest", err));
    }

    // Served rows over the live graph, post-ingest.
    let served: Vec<Vec<f32>> = sample
        .iter()
        .map(|&(n, t)| {
            let ticket = server.submit(n, t).unwrap_or_else(|e| fail("verify query", e));
            ticket.wait().unwrap_or_else(|e| fail("verify embed", e))
        })
        .collect();
    drop(server);

    // Cold oracle: a fresh engine over the full graph rebuilt from scratch.
    let ctx = tgat::engine::GraphContext {
        graph: full_graph,
        node_features: &bundle.node_features,
        edge_features: &bundle.edge_features,
    };
    let mut eng = TgoptEngine::new(&bundle.params, ctx, OptConfig::all());
    let ns: Vec<NodeId> = sample.iter().map(|&(n, _)| n).collect();
    let ts: Vec<Time> = sample.iter().map(|&(_, t)| t).collect();
    let h = eng.embed_batch(&ns, &ts).unwrap_or_else(|e| fail("cold embed", e));

    let mut max_diff = 0.0f64;
    for (i, row) in served.iter().enumerate() {
        for (a, b) in row.iter().zip(h.row(i)) {
            max_diff = max_diff.max((*a as f64 - *b as f64).abs());
        }
    }
    let tolerance = 1e-5;
    if max_diff > tolerance {
        fail(
            "streaming equivalence",
            format!("served vs cold-rebuild max abs diff {max_diff:.3e} > {tolerance:.0e}"),
        );
    }
    VerifyReport { checked_rows: served.len(), max_abs_diff: max_diff, tolerance }
}

fn main() {
    let o = parse();
    let spec = tg_datasets::spec_by_name(&o.dataset).unwrap_or_else(|| {
        eprintln!("error: unknown dataset {:?}", o.dataset);
        std::process::exit(2);
    });
    let data =
        tg_datasets::generate(&spec, o.scale, o.seed).unwrap_or_else(|e| fail("dataset generation", e));
    let cfg = TgatConfig {
        dim: o.dim,
        edge_dim: data.dim(),
        time_dim: o.dim,
        n_layers: 2,
        n_heads: 2,
        n_neighbors: 10,
    };
    let params = TgatParams::init(cfg, o.seed).unwrap_or_else(|e| fail("param init", e));

    let edges = data.stream.edges();
    let n_base = ((edges.len() as f64) * o.base_frac.clamp(0.0, 1.0)) as usize;
    let (base_edges, tail) = edges.split_at(n_base.min(edges.len()));
    let mut base = TemporalGraph::with_nodes(data.stream.num_nodes());
    for e in base_edges {
        base.insert(e);
    }
    base.freeze();
    let full_graph = TemporalGraph::from_stream(&data.stream);

    let node_features = Tensor::zeros(data.stream.num_nodes(), cfg.dim);
    let t_query = data.stream.max_time() * 1.01;

    // Query points: half just past the stream's end (see every insert),
    // half at historical interaction times (inserts after t never touch
    // them — the retention the targeted sweep is supposed to deliver).
    let all: Vec<(NodeId, Time)> = edges
        .iter()
        .enumerate()
        .map(|(i, e)| (e.src, if i % 2 == 0 { t_query } else { e.time }))
        .collect();
    let hot: Vec<(NodeId, Time)> = all.iter().take(o.hot.max(1)).copied().collect();

    let bundle = Arc::new(
        ModelBundle::new(params, base, node_features, data.edge_features.clone())
            .unwrap_or_else(|e| fail("model bundle", e)),
    );

    println!(
        "dataset {} (scale {}): {} nodes, {} base + {} live edges; {} clients x {} ops, \
         batch {} workers {}",
        o.dataset,
        o.scale,
        data.stream.num_nodes(),
        base_edges.len(),
        tail.len(),
        o.clients,
        o.ops_per_client,
        o.max_batch,
        o.workers
    );

    let mut runs = Vec::new();
    for &ratio in &o.ratios {
        let r = run_ratio(&bundle, &o, ratio, tail, &hot, &all);
        let (deep_removed, deep_retained) = r
            .per_layer
            .iter()
            .filter(|l| l.layer >= 2)
            .fold((0u64, 0u64), |(rm, rt), l| (rm + l.removed, rt + l.retained));
        println!(
            "ratio {:>5.2}: {:>9.1} ops/s  ({} queries, {} inserts)  p50 {:>7.1}us p99 {:>8.1}us  \
             hit {:>5.1}%  inval {} retained {} (deep {}/{})  compactions {}",
            r.insert_ratio,
            r.ops_per_s,
            r.queries,
            r.inserts,
            r.query_p50_us,
            r.query_p99_us,
            100.0 * r.cache_hit_rate,
            r.entries_invalidated,
            r.entries_retained,
            deep_removed,
            deep_retained,
            r.compactions
        );
        runs.push(r);
    }

    let verify_report = if o.verify {
        let mut rng = StdRng::seed_from_u64(o.seed ^ 0xfeed);
        let n_sample = all.len().min(192);
        let sample: Vec<(NodeId, Time)> =
            (0..n_sample).map(|_| all[rng.gen_range(0..all.len())]).collect();
        let v = verify(&bundle, &full_graph, &o, tail, &sample);
        println!(
            "verify    : {} rows vs cold rebuild, max abs diff {:.3e} (tolerance {:.0e})",
            v.checked_rows, v.max_abs_diff, v.tolerance
        );
        Some(v)
    } else {
        None
    };

    if let Some(path) = &o.json {
        let report = Report {
            bench: "streaming".to_string(),
            dataset: o.dataset.clone(),
            scale: o.scale,
            seed: o.seed,
            base_edges: base_edges.len(),
            live_edges: tail.len(),
            clients: o.clients,
            ops_per_client: o.ops_per_client,
            base_frac: o.base_frac,
            runs,
            verify: verify_report,
        };
        let text =
            serde_json::to_string(&report).unwrap_or_else(|e| fail("report serialization", e));
        if let Err(e) = std::fs::write(path, table::pretty_json(&text) + "\n") {
            eprintln!("error: failed to write {path}: {e}");
            std::process::exit(1);
        }
        println!("wrote {path}");
    }
}
