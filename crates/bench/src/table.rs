//! Plain-text table and series rendering for experiment output.

/// Renders rows as a fixed-width table with a header and rule.
pub fn render(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        assert_eq!(row.len(), ncols, "row width must match header");
        for (w, cell) in widths.iter_mut().zip(row) {
            *w = (*w).max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, (cell, w)) in cells.iter().zip(widths).enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            // Right-align numerics, left-align text.
            if cell.chars().next().is_some_and(|c| c.is_ascii_digit() || c == '-' || c == '+') {
                line.push_str(&format!("{cell:>w$}", w = w));
            } else {
                line.push_str(&format!("{cell:<w$}", w = w));
            }
        }
        line
    };
    let hdr: Vec<String> = headers.iter().map(|s| s.to_string()).collect();
    out.push_str(&fmt_row(&hdr, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Renders an ASCII bar series (used for figure-style outputs).
pub fn bar_series(title: &str, labels: &[String], values: &[f64], width: usize) -> String {
    assert_eq!(labels.len(), values.len());
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let lw = labels.iter().map(|l| l.len()).max().unwrap_or(0);
    let mut out = format!("{title}\n");
    for (label, &v) in labels.iter().zip(values) {
        let n = ((v / max) * width as f64).round().max(0.0) as usize;
        out.push_str(&format!("{label:<lw$} | {} {v:.4}\n", "#".repeat(n), lw = lw));
    }
    out
}

/// Formats seconds adaptively (ms below 1s).
pub fn fmt_secs(s: f64) -> String {
    if s < 1.0 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{s:.2}s")
    }
}

/// Formats bytes as MiB with one decimal.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Re-indents compact JSON for a diff-friendly committed artifact (the
/// vendored `serde_json` shim has no pretty printer). Only structural
/// characters outside strings trigger breaks, so values pass through intact.
pub fn pretty_json(compact: &str) -> String {
    let mut out = String::with_capacity(compact.len() * 2);
    let mut depth = 0usize;
    let mut in_str = false;
    let mut escaped = false;
    let indent = |out: &mut String, depth: usize| {
        out.push('\n');
        for _ in 0..depth {
            out.push_str("  ");
        }
    };
    for c in compact.chars() {
        if in_str {
            out.push(c);
            if escaped {
                escaped = false;
            } else if c == '\\' {
                escaped = true;
            } else if c == '"' {
                in_str = false;
            }
            continue;
        }
        match c {
            '"' => {
                in_str = true;
                out.push(c);
            }
            '{' | '[' => {
                out.push(c);
                depth += 1;
                indent(&mut out, depth);
            }
            '}' | ']' => {
                depth = depth.saturating_sub(1);
                indent(&mut out, depth);
                out.push(c);
            }
            ',' => {
                out.push(c);
                indent(&mut out, depth);
            }
            ':' => out.push_str(": "),
            c => out.push(c),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let t = render(
            &["name", "value"],
            &[
                vec!["alpha".into(), "1.0".into()],
                vec!["b".into(), "123.45".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].contains("alpha"));
        // numeric right-alignment: both value cells end at same column
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn bars_scale_to_max() {
        let s = bar_series(
            "t",
            &["a".to_string(), "b".to_string()],
            &[1.0, 2.0],
            10,
        );
        assert!(s.contains("##########"));
        assert!(s.contains("#####"));
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(0.0123), "12.3ms");
        assert_eq!(fmt_secs(2.5), "2.50s");
        assert_eq!(fmt_mib(1024 * 1024), "1.0MiB");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_rows_panic() {
        let _ = render(&["a", "b"], &[vec!["x".into()]]);
    }
}
