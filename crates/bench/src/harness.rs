//! The standard inference replay (§5.1): iterate a dataset's edges
//! chronologically in fixed batches, generating temporal embeddings for both
//! endpoints of every edge.

use std::time::Instant;
use tg_datasets::Dataset;
use tg_graph::{BatchIter, TemporalGraph};
use tgat::engine::GraphContext;
use tgat::{BaselineEngine, OpStats, TgatParams};
use tgopt::{EngineCounters, OptConfig, TgoptEngine};

/// Which engine to replay.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum EngineKind {
    Baseline,
    Tgopt(OptConfig),
}

/// Per-batch observations (drive Figures 3 and 7).
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchRecord {
    /// Last edge timestamp in the batch.
    pub time: f32,
    /// Cache probes in this batch.
    pub lookups: u64,
    /// Cache hits (reused embeddings) in this batch.
    pub hits: u64,
    /// Unique embeddings recomputed in this batch.
    pub recomputed: u64,
}

impl BatchRecord {
    /// Hit rate of this batch (0 when nothing was probed).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Result of one full replay.
#[derive(Clone, Debug)]
pub struct RunResult {
    /// Wall time of the embedding work (graph build excluded, as the paper
    /// also uses a pre-built sampler structure).
    pub seconds: f64,
    pub stats: OpStats,
    pub counters: EngineCounters,
    pub batches: Vec<BatchRecord>,
    /// Cache payload bytes at the end of the run.
    pub cache_bytes: usize,
    /// Cached items at the end of the run.
    pub cache_items: usize,
    /// FIFO evictions performed over the run.
    pub cache_evictions: u64,
    /// Rows dropped because one store call exceeded the whole cache limit.
    pub cache_store_drops: u64,
    /// Configured cache row capacity (0 for the baseline engine).
    pub cache_limit: usize,
    /// Time-encoding cache `(hits, misses)` over the run (zeros for the
    /// baseline engine, which has no time cache).
    pub time_cache: (u64, u64),
    /// Embedding checksum (sum of all outputs) — lets callers assert the
    /// two engines did the same computation.
    pub checksum: f64,
}

impl RunResult {
    /// The unified telemetry snapshot of this replay (serving-layer fields
    /// stay zero: an offline replay has no admission queue or workers).
    pub fn telemetry(&self) -> tg_telemetry::TelemetrySnapshot {
        let (tc_hits, tc_misses) = self.time_cache;
        tg_telemetry::TelemetrySnapshot {
            stages: self.stats.breakdown(),
            engine: tg_telemetry::EngineTelemetry {
                cache_lookups: self.counters.cache_lookups,
                cache_hits: self.counters.cache_hits,
                cache_stores: self.counters.cache_stores,
                recomputed: self.counters.recomputed,
                dedup_removed: self.counters.dedup_removed,
                stores_skipped: self.counters.stores_skipped,
            },
            time_cache: tg_telemetry::TimeCacheTelemetry {
                lookups: tc_hits + tc_misses,
                hits: tc_hits,
            },
            embed_cache: tg_telemetry::EmbedCacheTelemetry {
                items: self.cache_items as u64,
                bytes: self.cache_bytes as u64,
                limit: self.cache_limit as u64,
                evictions: self.cache_evictions,
                store_drops: self.cache_store_drops,
            },
            ..tg_telemetry::TelemetrySnapshot::new()
        }
    }
}

/// Replays the standard inference task over `dataset` with `params`.
///
/// The temporal graph is built up-front (as in the official TGAT artifact);
/// the strict `t_j < t` sampling constraint ensures a batch never sees
/// same-or-later interactions, so results match incremental insertion.
pub fn replay(
    dataset: &Dataset,
    params: &TgatParams,
    kind: EngineKind,
    batch_size: usize,
    collect_stats: bool,
) -> RunResult {
    let graph = TemporalGraph::from_stream(&dataset.stream);
    let ctx = GraphContext {
        graph: &graph,
        node_features: &dataset.node_features,
        edge_features: &dataset.edge_features,
    };
    let mut batches = Vec::new();
    let mut checksum = 0.0f64;

    match kind {
        EngineKind::Baseline => {
            let mut eng = BaselineEngine::new(params, ctx);
            if collect_stats {
                eng.enable_stats();
            }
            let start = Instant::now();
            for batch in BatchIter::new(&dataset.stream, batch_size) {
                let (ns, ts) = batch.targets();
                let h = eng.embed_batch(&ns, &ts);
                checksum += h.as_slice().iter().map(|&v| v as f64).sum::<f64>();
                batches.push(BatchRecord {
                    time: batch.edges.last().map_or(0.0, |e| e.time),
                    ..Default::default()
                });
            }
            RunResult {
                seconds: start.elapsed().as_secs_f64(),
                stats: eng.stats().clone(),
                counters: EngineCounters::default(),
                batches,
                cache_bytes: 0,
                cache_items: 0,
                cache_evictions: 0,
                cache_store_drops: 0,
                cache_limit: 0,
                time_cache: (0, 0),
                checksum,
            }
        }
        EngineKind::Tgopt(opt) => {
            let mut eng = TgoptEngine::new(params, ctx, opt);
            if collect_stats {
                eng.enable_stats();
            }
            let start = Instant::now();
            let mut prev = eng.counters();
            for batch in BatchIter::new(&dataset.stream, batch_size) {
                let (ns, ts) = batch.targets();
                let h = eng
                    .embed_batch(&ns, &ts)
                    .unwrap_or_else(|e| panic!("tgopt replay failed: {e}"));
                checksum += h.as_slice().iter().map(|&v| v as f64).sum::<f64>();
                let now = eng.counters();
                let delta = now.delta_since(&prev);
                prev = now;
                batches.push(BatchRecord {
                    time: batch.edges.last().map_or(0.0, |e| e.time),
                    lookups: delta.cache_lookups,
                    hits: delta.cache_hits,
                    recomputed: delta.recomputed,
                });
            }
            let seconds = start.elapsed().as_secs_f64();
            RunResult {
                seconds,
                stats: eng.stats().clone(),
                counters: eng.counters(),
                cache_bytes: eng.cache().bytes_used(),
                cache_items: eng.cache().len(),
                cache_evictions: eng.cache().total_evictions(),
                cache_store_drops: eng.cache().total_store_dropped(),
                cache_limit: eng.cache().limit(),
                time_cache: eng.time_cache_stats(),
                batches,
                checksum,
            }
        }
    }
}

/// Generates the named dataset at the scale/seed given by `args`.
///
/// Node features are zero vectors (Table 2); their width is set to the
/// model dimension so `h^(0)` matches `--dim` even when it differs from the
/// dataset's edge feature dimension.
pub fn dataset_for(args: &crate::ExpArgs, name: &str) -> Dataset {
    let spec = tg_datasets::spec_by_name(name)
        .unwrap_or_else(|| panic!("unknown dataset {name}"));
    let mut ds = tg_datasets::generate(&spec, args.scale, args.seed)
        .unwrap_or_else(|e| panic!("failed to generate dataset {name}: {e}"));
    ds.node_features = tg_tensor::Tensor::zeros(ds.node_features.rows(), args.dim);
    ds
}

/// Seeded model parameters sized for `dataset` under `args`.
///
/// Inference runtime is weight-independent, so experiments use seeded
/// random weights; accuracy-sensitive tests train via `tgat::train`.
pub fn params_for(args: &crate::ExpArgs, dataset: &Dataset) -> TgatParams {
    TgatParams::init(args.model_config(dataset.dim()), args.seed)
        .unwrap_or_else(|e| panic!("invalid model configuration: {e}"))
}

/// Nearest-rank percentile of an ascending-sorted series: the smallest
/// element with at least `p`% of the data at or below it (1-based rank
/// `ceil(p/100 · n)`).
///
/// Replaces a `.round()` on `(p/100)·(n-1)`, which is neither
/// nearest-rank nor linear interpolation and biases small samples — e.g.
/// it reported the 2nd of 2 values as p50 and the 66th of 67 values as
/// p99 (the true nearest-rank p99 of 67 values is the maximum).
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((p / 100.0).clamp(0.0, 1.0) * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// Mean and sample standard deviation of a series.
pub fn mean_std(xs: &[f64]) -> (f64, f64) {
    if xs.is_empty() {
        return (0.0, 0.0);
    }
    let mean = xs.iter().sum::<f64>() / xs.len() as f64;
    if xs.len() < 2 {
        return (mean, 0.0);
    }
    let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (xs.len() - 1) as f64;
    (mean, var.sqrt())
}

/// Geometric mean.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::percentile;

    #[test]
    fn percentile_is_exact_nearest_rank() {
        // n = 1: every percentile is the single sample.
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
        assert_eq!(percentile(&[7.0], 99.0), 7.0);
        // n = 2: p50 rank = ceil(0.5·2) = 1 -> first; p51+ -> second. The
        // old rounding reported the *second* value as p50.
        assert_eq!(percentile(&[1.0, 2.0], 50.0), 1.0);
        assert_eq!(percentile(&[1.0, 2.0], 51.0), 2.0);
        assert_eq!(percentile(&[1.0, 2.0], 99.0), 2.0);
        // n = 100 (values 1..=100): rank p = ceil(p) -> the p-th value.
        let v100: Vec<f64> = (1..=100).map(f64::from).collect();
        assert_eq!(percentile(&v100, 50.0), 50.0);
        assert_eq!(percentile(&v100, 95.0), 95.0);
        assert_eq!(percentile(&v100, 99.0), 99.0);
        assert_eq!(percentile(&v100, 100.0), 100.0);
        // n = 101 (values 1..=101): p99 rank = ceil(99.99) = 100.
        let v101: Vec<f64> = (1..=101).map(f64::from).collect();
        assert_eq!(percentile(&v101, 50.0), 51.0);
        assert_eq!(percentile(&v101, 99.0), 100.0);
        // Degenerate inputs stay total: empty -> 0, p clamped to [0, 100].
        assert_eq!(percentile(&[], 99.0), 0.0);
        assert_eq!(percentile(&v100, 0.0), 1.0);
        assert_eq!(percentile(&v100, 150.0), 100.0);
    }

    #[test]
    fn percentile_agrees_with_brute_force_rank() {
        for n in [1usize, 2, 3, 5, 67, 100, 101, 1000] {
            let xs: Vec<f64> = (1..=n).map(|i| i as f64).collect();
            for p in [1.0, 10.0, 50.0, 90.0, 95.0, 99.0, 99.9] {
                let rank = ((p / 100.0) * n as f64).ceil().max(1.0) as usize;
                assert_eq!(percentile(&xs, p), xs[rank.min(n) - 1], "n={n} p={p}");
            }
        }
    }
}
