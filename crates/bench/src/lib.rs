//! Shared experiment harness for the TGOpt reproduction.
//!
//! Each `src/bin/exp_*.rs` binary regenerates one table or figure of the
//! paper (see DESIGN.md's per-experiment index); this library holds the
//! pieces they share: CLI parsing, the inference replay loop, and plain-text
//! table/series rendering.

pub mod args;
pub mod csv;
pub mod harness;
pub mod table;

pub use args::ExpArgs;
pub use harness::{replay, BatchRecord, EngineKind, RunResult};
