//! Minimal flag parsing shared by the experiment binaries.

use tgat::TgatConfig;

/// Common experiment options.
///
/// Defaults are sized for a single-core laptop run of the whole suite; pass
/// `--paper` (or individual overrides) to run the paper's full configuration
/// (dim 100, 20 neighbors, full |E|).
#[derive(Clone, Debug)]
pub struct ExpArgs {
    /// Fraction of each dataset's |E| to generate.
    pub scale: f64,
    /// Timed repetitions per measurement (Figure 5 uses 10 in the paper).
    pub runs: usize,
    /// RNG seed for generation and weights.
    pub seed: u64,
    /// Embedding/time dimensions of the model.
    pub dim: usize,
    /// Sampled neighbors per target.
    pub n_neighbors: usize,
    /// Edge interactions per batch.
    pub batch_size: usize,
    /// Restrict to these dataset names (empty = all).
    pub datasets: Vec<String>,
    /// Cache limit override (0 = paper default 2M).
    pub cache_limit: usize,
}

impl Default for ExpArgs {
    fn default() -> Self {
        Self {
            scale: 0.02,
            runs: 2,
            seed: 7,
            dim: 32,
            n_neighbors: 10,
            batch_size: 200,
            datasets: Vec::new(),
            cache_limit: 0,
        }
    }
}

impl ExpArgs {
    /// Parses `std::env::args`, exiting with usage on `-h/--help` or errors.
    pub fn parse() -> Self {
        Self::parse_from(std::env::args().skip(1))
    }

    /// Parses from an explicit iterator (testable).
    pub fn parse_from(args: impl IntoIterator<Item = String>) -> Self {
        let mut out = Self::default();
        let mut it = args.into_iter();
        while let Some(flag) = it.next() {
            let mut take = |name: &str| {
                it.next().unwrap_or_else(|| die(&format!("{name} needs a value")))
            };
            match flag.as_str() {
                "--scale" => out.scale = parse_num(&take("--scale"), "--scale"),
                "--runs" => out.runs = parse_num::<f64>(&take("--runs"), "--runs") as usize,
                "--seed" => out.seed = parse_num::<f64>(&take("--seed"), "--seed") as u64,
                "--dim" => out.dim = parse_num::<f64>(&take("--dim"), "--dim") as usize,
                "--neighbors" => {
                    out.n_neighbors =
                        parse_num::<f64>(&take("--neighbors"), "--neighbors") as usize
                }
                "--batch" => {
                    out.batch_size = parse_num::<f64>(&take("--batch"), "--batch") as usize
                }
                "--cache-limit" => {
                    out.cache_limit =
                        parse_num::<f64>(&take("--cache-limit"), "--cache-limit") as usize
                }
                "--datasets" | "-d" => {
                    out.datasets =
                        take("--datasets").split(',').map(|s| s.trim().to_string()).collect()
                }
                "--paper" => {
                    // Paper-scale configuration (§5.1): slow on one core.
                    out.scale = 1.0;
                    out.runs = 10;
                    out.dim = 100;
                    out.n_neighbors = 20;
                }
                "-h" | "--help" => {
                    eprintln!("{}", USAGE);
                    std::process::exit(0);
                }
                other => die(&format!("unknown flag {other}\n{USAGE}")),
            }
        }
        if out.scale <= 0.0 || out.runs == 0 || out.dim == 0 {
            die("scale, runs and dim must be positive");
        }
        out
    }

    /// Model configuration implied by these arguments for a dataset with the
    /// given edge feature dimension.
    pub fn model_config(&self, edge_dim: usize) -> TgatConfig {
        TgatConfig {
            dim: self.dim,
            edge_dim,
            time_dim: self.dim,
            n_layers: 2,
            n_heads: 2,
            n_neighbors: self.n_neighbors,
        }
    }

    /// True if `name` is selected by `--datasets` (or no filter given).
    pub fn selects(&self, name: &str) -> bool {
        self.datasets.is_empty() || self.datasets.iter().any(|d| d == name)
    }

    /// Cache limit with the paper default applied.
    pub fn effective_cache_limit(&self) -> usize {
        if self.cache_limit == 0 {
            2_000_000
        } else {
            self.cache_limit
        }
    }
}

const USAGE: &str = "\
Usage: exp_* [--scale F] [--runs N] [--seed N] [--dim N] [--neighbors N]
             [--batch N] [--cache-limit N] [--datasets a,b,...] [--paper]

  --scale F        fraction of each dataset's edges to generate (default 0.02)
  --runs N         timed repetitions per configuration (default 2)
  --dim N          model embedding/time dimension (default 32; paper 100)
  --neighbors N    sampled neighbors per target (default 10; paper 20)
  --batch N        edges per inference batch (default 200, as in the paper)
  --cache-limit N  embedding cache capacity (default 2,000,000)
  --datasets LIST  comma-separated dataset filter
  --paper          full paper configuration (scale 1.0, dim 100, 20 nbrs, 10 runs)";

fn parse_num<T: std::str::FromStr>(s: &str, flag: &str) -> T {
    s.parse().unwrap_or_else(|_| die(&format!("invalid value {s:?} for {flag}")))
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(v: &[&str]) -> ExpArgs {
        ExpArgs::parse_from(v.iter().map(|s| s.to_string()))
    }

    #[test]
    fn defaults_are_laptop_sized() {
        let a = parse(&[]);
        assert_eq!(a.scale, 0.02);
        assert_eq!(a.dim, 32);
        assert_eq!(a.batch_size, 200);
        assert!(a.selects("jodie-lastfm"));
        assert_eq!(a.effective_cache_limit(), 2_000_000);
    }

    #[test]
    fn flags_override() {
        let a = parse(&["--scale", "0.1", "--runs", "5", "--datasets", "snap-msg,jodie-wiki",
                        "--cache-limit", "1000"]);
        assert_eq!(a.scale, 0.1);
        assert_eq!(a.runs, 5);
        assert!(a.selects("snap-msg"));
        assert!(!a.selects("jodie-mooc"));
        assert_eq!(a.effective_cache_limit(), 1000);
    }

    #[test]
    fn paper_preset() {
        let a = parse(&["--paper"]);
        assert_eq!(a.dim, 100);
        assert_eq!(a.n_neighbors, 20);
        assert_eq!(a.scale, 1.0);
        assert_eq!(a.runs, 10);
        let cfg = a.model_config(172);
        assert_eq!(cfg.edge_dim, 172);
        assert!(cfg.validate().is_ok());
    }
}
