//! The chronological edge-interaction stream a CTDG is built from.

use crate::{EdgeId, NodeId, Time};

/// A single timestamped edge interaction `e_ij(t)`.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Edge {
    pub src: NodeId,
    pub dst: NodeId,
    pub time: Time,
    /// Index into the edge feature matrix.
    pub eid: EdgeId,
}

/// A chronologically ordered list of edge interactions.
///
/// This is the on-disk / generated representation of a dataset; the model's
/// inference task iterates it in batches while the [`crate::TemporalGraph`]
/// is grown alongside (so sampling at batch `b` only sees interactions from
/// batches `< b` plus earlier edges of `b` — enforced by the temporal
/// constraint `t_j < t` rather than insertion order, see `sampler`).
#[derive(Clone, Debug, Default)]
pub struct EdgeStream {
    edges: Vec<Edge>,
    num_nodes: usize,
}

impl EdgeStream {
    /// Builds a stream from parallel arrays, assigning edge ids `0..n`.
    ///
    /// # Panics
    /// Panics if the arrays disagree in length or timestamps are not
    /// non-decreasing.
    pub fn new(srcs: &[NodeId], dsts: &[NodeId], times: &[Time]) -> Self {
        assert_eq!(srcs.len(), dsts.len(), "src/dst length mismatch");
        assert_eq!(srcs.len(), times.len(), "src/time length mismatch");
        let mut edges = Vec::with_capacity(srcs.len());
        let mut max_node = 0;
        let mut prev_t = Time::NEG_INFINITY;
        for (i, ((&s, &d), &t)) in srcs.iter().zip(dsts).zip(times).enumerate() {
            assert!(t >= prev_t, "edge {i}: timestamps must be non-decreasing ({t} < {prev_t})");
            prev_t = t;
            max_node = max_node.max(s).max(d);
            edges.push(Edge { src: s, dst: d, time: t, eid: i as EdgeId });
        }
        let num_nodes = if edges.is_empty() { 0 } else { max_node as usize + 1 };
        Self { edges, num_nodes }
    }

    /// Builds from a pre-assembled edge list (must be time-sorted).
    pub fn from_edges(edges: Vec<Edge>) -> Self {
        let mut max_node = 0;
        let mut prev_t = Time::NEG_INFINITY;
        for e in &edges {
            assert!(e.time >= prev_t, "timestamps must be non-decreasing");
            prev_t = e.time;
            max_node = max_node.max(e.src).max(e.dst);
        }
        let num_nodes = if edges.is_empty() { 0 } else { max_node as usize + 1 };
        Self { edges, num_nodes }
    }

    /// All interactions, chronologically.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// Number of interactions.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the stream holds no interactions.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }

    /// Number of distinct node ids (max id + 1).
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }

    /// Largest timestamp, or 0 for an empty stream.
    pub fn max_time(&self) -> Time {
        self.edges.last().map_or(0.0, |e| e.time)
    }

    /// Keeps only the first `n` interactions (used by `--scale` runs).
    pub fn truncate(&mut self, n: usize) {
        self.edges.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_assigns_edge_ids_and_counts_nodes() {
        let s = EdgeStream::new(&[0, 5, 1], &[2, 1, 5], &[1.0, 2.0, 2.0]);
        assert_eq!(s.len(), 3);
        assert_eq!(s.num_nodes(), 6);
        assert_eq!(s.edges()[1].eid, 1);
        assert_eq!(s.max_time(), 2.0);
        assert!(!s.is_empty());
    }

    #[test]
    #[should_panic(expected = "non-decreasing")]
    fn unsorted_times_panic() {
        let _ = EdgeStream::new(&[0, 1], &[1, 0], &[2.0, 1.0]);
    }

    #[test]
    fn empty_stream() {
        let s = EdgeStream::new(&[], &[], &[]);
        assert_eq!(s.num_nodes(), 0);
        assert_eq!(s.max_time(), 0.0);
        assert!(s.is_empty());
    }

    #[test]
    fn truncate_limits_edges() {
        let mut s = EdgeStream::new(&[0, 1, 2], &[1, 2, 0], &[1.0, 2.0, 3.0]);
        s.truncate(2);
        assert_eq!(s.len(), 2);
        assert_eq!(s.max_time(), 2.0);
    }
}
