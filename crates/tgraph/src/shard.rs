//! Node-to-shard assignment for the partitioned serving engine.
//!
//! A sharded server routes each query to the shard that *owns* the target
//! node; everything else about the shard (its caches, its delta view, its
//! worker pool) follows from that single function. Two strategies:
//!
//! * [`ShardAssignment::hash`] — stateless multiply-shift hashing of the
//!   node id. No setup cost, no storage, uniform in expectation, and any
//!   node id (including ones first seen via live ingest) has an owner.
//! * [`ShardAssignment::degree_balanced`] — a greedy offline pass over
//!   the loaded graph assigning nodes in descending degree order to the
//!   currently lightest shard (by degree mass). Temporal-graph degree
//!   distributions are heavy-tailed (Table 2's Zipf exponents), so pure
//!   hashing can land several hubs on one shard; the greedy pass spreads
//!   the hubs first and the tail pads the remainder. Nodes outside the
//!   precomputed table (appended after load) fall back to hashing.
//!
//! The assignment is computed once at server construction and shared
//! read-only (`Arc`) by every shard — it is never mutated while serving,
//! so lookups take no locks.

use crate::{NodeId, TemporalGraph};

/// Multiplicative hash of a node id (Fibonacci constant, high bits).
/// Deliberately *not* `std::hash` (repo lint L3): one multiply and a
/// shift, deterministic across runs and platforms.
#[inline]
fn splat(node: NodeId) -> u64 {
    (node as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32
}

/// How nodes were mapped to shards (kept for telemetry/debug display).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardStrategy {
    /// Stateless multiply-shift hash of the node id.
    Hash,
    /// Greedy degree-balanced table computed from the loaded graph.
    DegreeBalanced,
}

/// An immutable node → shard map. Cheap to query (`O(1)`, lock-free);
/// build once and share via `Arc` across shards and client handles.
#[derive(Clone, Debug)]
pub struct ShardAssignment {
    n_shards: usize,
    strategy: ShardStrategy,
    /// Explicit owner per node id for the degree-balanced strategy;
    /// empty for pure hashing. Ids at or past the end hash instead.
    owners: Vec<u16>,
}

impl ShardAssignment {
    /// Stateless hash assignment over `n_shards` shards (at least 1).
    pub fn hash(n_shards: usize) -> Self {
        Self { n_shards: n_shards.max(1), strategy: ShardStrategy::Hash, owners: Vec::new() }
    }

    /// Greedy degree-balanced assignment computed from `graph`: nodes are
    /// visited in descending degree order (ties by ascending id, so the
    /// result is deterministic) and each goes to the shard with the
    /// smallest accumulated degree mass (ties to the lowest shard index).
    /// Node ids beyond `graph.num_nodes()` fall back to hashing.
    pub fn degree_balanced(graph: &TemporalGraph, n_shards: usize) -> Self {
        let n_shards = n_shards.max(1);
        let n = graph.num_nodes();
        if n_shards == 1 || n == 0 {
            return Self {
                n_shards,
                strategy: ShardStrategy::DegreeBalanced,
                owners: vec![0; n],
            };
        }
        let mut by_degree: Vec<u32> = (0..n as u32).collect(); // lint: allow(lossy-cast, node ids are u32 by type so num_nodes fits)
        // Descending degree, ascending id on ties: deterministic and
        // hub-first, which is what the greedy balance needs.
        by_degree.sort_by_key(|&v| (usize::MAX - graph.degree(v), v));
        let mut load = vec![0u64; n_shards];
        let mut owners = vec![0u16; n];
        for v in by_degree {
            let mut best = 0usize;
            for s in 1..n_shards {
                if load[s] < load[best] {
                    best = s;
                }
            }
            owners[v as usize] = best as u16;
            // Count every node at least once so the zero-degree tail still
            // spreads round-robin instead of piling onto shard 0.
            load[best] += graph.degree(v).max(1) as u64;
        }
        Self { n_shards, strategy: ShardStrategy::DegreeBalanced, owners }
    }

    /// The shard that owns `node`. Total: ids outside the precomputed
    /// table (live-ingested nodes) hash to a stable owner.
    #[inline]
    pub fn owner(&self, node: NodeId) -> usize {
        match self.owners.get(node as usize) {
            Some(&s) => s as usize,
            None => (splat(node) % self.n_shards as u64) as usize,
        }
    }

    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// Which strategy produced this assignment.
    pub fn strategy(&self) -> ShardStrategy {
        self.strategy
    }

    /// Nodes owned per shard over the id range `0..n_nodes`
    /// (telemetry/diagnostics; `O(n_nodes)`).
    pub fn counts(&self, n_nodes: usize) -> Vec<usize> {
        let mut out = vec![0usize; self.n_shards];
        for v in 0..n_nodes as u32 { // lint: allow(lossy-cast, node ids are u32 by type so the id range fits)
            out[self.owner(v)] += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Edge, Time};

    fn star_graph(hubs: usize, leaves_per_hub: usize) -> TemporalGraph {
        let n = hubs * (leaves_per_hub + 1);
        let mut g = TemporalGraph::with_nodes(n);
        let mut eid = 0u32;
        for h in 0..hubs {
            let hub = (h * (leaves_per_hub + 1)) as NodeId;
            for l in 1..=leaves_per_hub {
                let leaf = hub + l as NodeId;
                g.insert(&Edge { src: hub, dst: leaf, time: eid as Time, eid });
                eid += 1;
            }
        }
        g.freeze();
        g
    }

    #[test]
    fn hash_assignment_is_total_and_stable() {
        let a = ShardAssignment::hash(4);
        assert_eq!(a.n_shards(), 4);
        for v in [0u32, 1, 17, 65_536, u32::MAX] {
            let s = a.owner(v);
            assert!(s < 4);
            assert_eq!(s, a.owner(v), "same node, same owner");
        }
        // All shards get traffic over a modest id range.
        let counts = a.counts(4096);
        assert!(counts.iter().all(|&c| c > 0), "{counts:?}");
        assert_eq!(counts.iter().sum::<usize>(), 4096);
    }

    #[test]
    fn zero_shards_clamps_to_one() {
        let a = ShardAssignment::hash(0);
        assert_eq!(a.n_shards(), 1);
        assert_eq!(a.owner(123), 0);
    }

    #[test]
    fn degree_balanced_spreads_hubs() {
        // 4 hubs of degree 50 among 200 leaves; with 4 shards each hub
        // must land on its own shard for the masses to balance.
        let g = star_graph(4, 50);
        let a = ShardAssignment::degree_balanced(&g, 4);
        assert_eq!(a.strategy(), ShardStrategy::DegreeBalanced);
        let hubs: Vec<usize> = (0..4).map(|h| a.owner((h * 51) as NodeId)).collect();
        let mut sorted = hubs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, vec![0, 1, 2, 3], "hubs {hubs:?} not spread");
        // Degree mass per shard is exactly equal by symmetry.
        let mut mass = vec![0usize; 4];
        for v in 0..g.num_nodes() as u32 {
            mass[a.owner(v)] += g.degree(v);
        }
        assert!(mass.iter().all(|&m| m == mass[0]), "{mass:?}");
    }

    #[test]
    fn degree_balanced_is_total_past_the_table() {
        let g = star_graph(2, 3);
        let a = ShardAssignment::degree_balanced(&g, 2);
        // In-table nodes use the table; out-of-table ids still resolve.
        assert!(a.owner(0) < 2);
        let far = 1_000_000u32;
        assert!(a.owner(far) < 2);
        assert_eq!(a.owner(far), a.owner(far));
    }

    #[test]
    fn single_shard_owns_everything() {
        let g = star_graph(2, 3);
        for a in [ShardAssignment::hash(1), ShardAssignment::degree_balanced(&g, 1)] {
            for v in [0u32, 5, 999] {
                assert_eq!(a.owner(v), 0);
            }
        }
    }
}
