//! Time-sorted adjacency storage for continuous-time dynamic graphs.

use crate::{Edge, EdgeId, EdgeStream, NodeId, Time};

/// One adjacency entry: an interaction with `ngh` at `time`, whose features
/// live at row `eid` of the edge feature matrix.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AdjEntry {
    pub time: Time,
    pub ngh: NodeId,
    pub eid: EdgeId,
}

/// Physical layout of the adjacency.
///
/// * `Dynamic` — per-node growable vectors; O(1) chronological insertion.
/// * `Frozen` — a single flat CSR buffer (TGL's T-CSR): one allocation,
///   sequential per-node entries, better cache behavior for the sampler's
///   binary search + suffix scan. Built by [`TemporalGraph::freeze`];
///   mutation transparently thaws back to `Dynamic`.
#[derive(Clone, Debug)]
enum Storage {
    Dynamic(Vec<Vec<AdjEntry>>),
    Frozen { indptr: Vec<usize>, entries: Vec<AdjEntry> },
}

/// A dynamic graph as per-node, time-sorted adjacency lists.
///
/// Interactions are undirected (both endpoints see each other), following
/// the paper's treatment of all datasets as undirected graphs (§5.1.1).
/// Each node's list is kept sorted by timestamp so the most-recent sampler
/// can binary-search the temporal cutoff `t_j < t`.
#[derive(Clone, Debug)]
pub struct TemporalGraph {
    storage: Storage,
    num_edges: usize,
}

impl TemporalGraph {
    /// An empty graph over `num_nodes` node ids.
    pub fn with_nodes(num_nodes: usize) -> Self {
        Self { storage: Storage::Dynamic(vec![Vec::new(); num_nodes]), num_edges: 0 }
    }

    /// Builds a graph containing every interaction of the stream, in the
    /// compact frozen layout (replay workloads are read-only).
    pub fn from_stream(stream: &EdgeStream) -> Self {
        let mut g = Self::with_nodes(stream.num_nodes());
        for e in stream.edges() {
            g.insert(e);
        }
        g.freeze();
        g
    }

    /// Compacts the adjacency into a single flat CSR buffer. Idempotent;
    /// afterwards reads are allocation-local and [`TemporalGraph::is_frozen`]
    /// reports true until the next mutation.
    pub fn freeze(&mut self) {
        let Storage::Dynamic(adj) = &self.storage else { return };
        let mut indptr = Vec::with_capacity(adj.len() + 1);
        let total: usize = adj.iter().map(|v| v.len()).sum();
        let mut entries = Vec::with_capacity(total);
        indptr.push(0);
        for list in adj {
            entries.extend_from_slice(list);
            indptr.push(entries.len());
        }
        self.storage = Storage::Frozen { indptr, entries };
    }

    /// True if the adjacency currently uses the compact layout.
    pub fn is_frozen(&self) -> bool {
        matches!(self.storage, Storage::Frozen { .. })
    }

    /// Reverts to the growable layout (no-op if already dynamic).
    fn thaw(&mut self) {
        let Storage::Frozen { indptr, entries } = &self.storage else { return };
        let adj = indptr
            .windows(2)
            .map(|w| entries[w[0]..w[1]].to_vec())
            .collect();
        self.storage = Storage::Dynamic(adj);
    }

    /// Inserts one interaction (both directions).
    ///
    /// Appending is O(1) when events arrive chronologically (the normal
    /// replay case); out-of-order events fall back to sorted insertion so the
    /// per-node time order invariant always holds. A frozen graph thaws.
    pub fn insert(&mut self, e: &Edge) {
        self.thaw();
        // `thaw` always leaves the storage dynamic, so the guard never skips.
        if let Storage::Dynamic(adj) = &mut self.storage {
            let max = e.src.max(e.dst) as usize;
            if max >= adj.len() {
                adj.resize(max + 1, Vec::new());
            }
            Self::insert_one(&mut adj[e.src as usize], AdjEntry { time: e.time, ngh: e.dst, eid: e.eid });
            Self::insert_one(&mut adj[e.dst as usize], AdjEntry { time: e.time, ngh: e.src, eid: e.eid });
            self.num_edges += 1;
        }
    }

    fn insert_one(list: &mut Vec<AdjEntry>, entry: AdjEntry) {
        match list.last() {
            Some(last) if last.time > entry.time => {
                let pos = list.partition_point(|x| x.time <= entry.time);
                list.insert(pos, entry);
            }
            _ => list.push(entry),
        }
    }

    /// Deletes the interaction identified by `eid` incident to `src`/`dst`
    /// (future-work extension of the paper, §7). Returns true if found.
    pub fn delete_edge(&mut self, src: NodeId, dst: NodeId, eid: EdgeId) -> bool {
        self.thaw();
        let mut removed = false;
        // `thaw` always leaves the storage dynamic, so the guard never skips.
        if let Storage::Dynamic(adj) = &mut self.storage {
            for node in [src, dst] {
                if let Some(list) = adj.get_mut(node as usize) {
                    if let Some(pos) = list.iter().position(|x| x.eid == eid) {
                        list.remove(pos);
                        removed = true;
                    }
                }
            }
        }
        if removed {
            self.num_edges = self.num_edges.saturating_sub(1);
        }
        removed
    }

    /// Number of node ids the graph can address.
    pub fn num_nodes(&self) -> usize {
        match &self.storage {
            Storage::Dynamic(adj) => adj.len(),
            Storage::Frozen { indptr, .. } => indptr.len() - 1,
        }
    }

    /// Number of undirected interactions inserted.
    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    /// The full time-sorted adjacency list of `node`.
    pub fn neighbors(&self, node: NodeId) -> &[AdjEntry] {
        let n = node as usize;
        match &self.storage {
            Storage::Dynamic(adj) => adj.get(n).map_or(&[], |v| v.as_slice()),
            Storage::Frozen { indptr, entries } => {
                if n + 1 >= indptr.len() {
                    &[]
                } else {
                    &entries[indptr[n]..indptr[n + 1]]
                }
            }
        }
    }

    /// All interactions of `node` that happened strictly before `t` — the
    /// temporal neighborhood `N(i, t)` of the paper (§2), time-sorted.
    pub fn neighbors_before(&self, node: NodeId, t: Time) -> &[AdjEntry] {
        let list = self.neighbors(node);
        let cut = list.partition_point(|x| x.time < t);
        &list[..cut]
    }

    /// Degree of `node` counting all interactions.
    pub fn degree(&self, node: NodeId) -> usize {
        self.neighbors(node).len()
    }

    /// Nodes within `hops` undirected hops of `node` (including itself),
    /// ignoring time. Used to invalidate cached embeddings after an event
    /// that changes `node`'s history in models deeper than 2 layers: a
    /// layer-`l` embedding of a node `h` hops away can embed the change
    /// when `l > h`.
    pub fn k_hop_nodes(&self, node: NodeId, hops: usize) -> Vec<NodeId> {
        let mut seen = std::collections::HashSet::new();
        seen.insert(node);
        let mut frontier = vec![node];
        for _ in 0..hops {
            let mut next = Vec::new();
            for &n in &frontier {
                for e in self.neighbors(n) {
                    if seen.insert(e.ngh) {
                        next.push(e.ngh);
                    }
                }
            }
            frontier = next;
        }
        let mut out: Vec<NodeId> = seen.into_iter().collect();
        out.sort_unstable();
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: NodeId, dst: NodeId, time: Time, eid: EdgeId) -> Edge {
        Edge { src, dst, time, eid }
    }

    #[test]
    fn insert_is_bidirectional_and_sorted() {
        let mut g = TemporalGraph::with_nodes(3);
        g.insert(&edge(0, 1, 5.0, 0));
        g.insert(&edge(0, 2, 7.0, 1));
        assert_eq!(g.num_edges(), 2);
        assert_eq!(g.neighbors(0).len(), 2);
        assert_eq!(g.neighbors(1), &[AdjEntry { time: 5.0, ngh: 0, eid: 0 }]);
        assert_eq!(g.neighbors(2), &[AdjEntry { time: 7.0, ngh: 0, eid: 1 }]);
        assert!(g.neighbors(0).windows(2).all(|w| w[0].time <= w[1].time));
    }

    #[test]
    fn out_of_order_insert_keeps_time_order() {
        let mut g = TemporalGraph::with_nodes(4);
        g.insert(&edge(0, 1, 9.0, 0));
        g.insert(&edge(0, 2, 3.0, 1));
        g.insert(&edge(0, 3, 6.0, 2));
        let times: Vec<Time> = g.neighbors(0).iter().map(|e| e.time).collect();
        assert_eq!(times, vec![3.0, 6.0, 9.0]);
    }

    #[test]
    fn neighbors_before_enforces_strict_inequality() {
        let mut g = TemporalGraph::with_nodes(3);
        g.insert(&edge(0, 1, 5.0, 0));
        g.insert(&edge(0, 2, 7.0, 1));
        // t_j < t is strict: the edge at exactly t=5 is excluded.
        assert_eq!(g.neighbors_before(0, 5.0).len(), 0);
        assert_eq!(g.neighbors_before(0, 5.1).len(), 1);
        assert_eq!(g.neighbors_before(0, 100.0).len(), 2);
    }

    #[test]
    fn insert_grows_node_range() {
        let mut g = TemporalGraph::with_nodes(1);
        g.insert(&edge(0, 10, 1.0, 0));
        assert_eq!(g.num_nodes(), 11);
        assert_eq!(g.degree(10), 1);
    }

    #[test]
    fn from_stream_matches_incremental_and_is_frozen() {
        let s = EdgeStream::new(&[0, 1, 0], &[1, 2, 2], &[1.0, 2.0, 3.0]);
        let g = TemporalGraph::from_stream(&s);
        assert!(g.is_frozen());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(1), 2);
        assert_eq!(g.degree(2), 2);
    }

    #[test]
    fn freeze_preserves_every_read() {
        let mut dynamic = TemporalGraph::with_nodes(6);
        for i in 0..30u32 {
            dynamic.insert(&edge(i % 6, (i * 5 + 1) % 6, i as Time, i));
        }
        let mut frozen = dynamic.clone();
        frozen.freeze();
        assert!(frozen.is_frozen());
        assert!(!dynamic.is_frozen());
        assert_eq!(frozen.num_nodes(), dynamic.num_nodes());
        assert_eq!(frozen.num_edges(), dynamic.num_edges());
        for n in 0..6u32 {
            assert_eq!(frozen.neighbors(n), dynamic.neighbors(n));
            for t in [0.0, 3.0, 15.5, 100.0] {
                assert_eq!(frozen.neighbors_before(n, t), dynamic.neighbors_before(n, t));
            }
        }
        // Idempotent.
        frozen.freeze();
        assert!(frozen.is_frozen());
    }

    #[test]
    fn mutation_thaws_and_stays_correct() {
        let s = EdgeStream::new(&[0, 1], &[1, 2], &[1.0, 2.0]);
        let mut g = TemporalGraph::from_stream(&s);
        assert!(g.is_frozen());
        g.insert(&edge(0, 2, 3.0, 2));
        assert!(!g.is_frozen());
        assert_eq!(g.num_edges(), 3);
        assert_eq!(g.degree(0), 2);
        g.freeze();
        assert!(g.delete_edge(0, 2, 2));
        assert!(!g.is_frozen());
        assert_eq!(g.degree(0), 1);
    }

    #[test]
    fn delete_edge_removes_both_directions() {
        let mut g = TemporalGraph::with_nodes(3);
        g.insert(&edge(0, 1, 1.0, 0));
        g.insert(&edge(0, 2, 2.0, 1));
        assert!(g.delete_edge(0, 1, 0));
        assert_eq!(g.num_edges(), 1);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(1), 0);
        assert!(!g.delete_edge(0, 1, 0), "double delete reports missing");
    }

    #[test]
    fn unknown_node_has_empty_neighborhood() {
        let g = TemporalGraph::with_nodes(2);
        assert!(g.neighbors(77).is_empty());
        assert!(g.neighbors_before(77, 10.0).is_empty());
    }

    #[test]
    fn multigraph_same_pair_multiple_times() {
        let mut g = TemporalGraph::with_nodes(2);
        g.insert(&edge(0, 1, 1.0, 0));
        g.insert(&edge(0, 1, 2.0, 1));
        g.insert(&edge(0, 1, 2.0, 2));
        assert_eq!(g.degree(0), 3);
        assert_eq!(g.neighbors_before(0, 2.0).len(), 1);
    }

    #[test]
    fn k_hop_nodes_expands_by_hops() {
        // Path graph 0-1-2-3-4.
        let mut g = TemporalGraph::with_nodes(5);
        for i in 0..4u32 {
            g.insert(&edge(i, i + 1, (i + 1) as Time, i));
        }
        assert_eq!(g.k_hop_nodes(0, 0), vec![0]);
        assert_eq!(g.k_hop_nodes(0, 1), vec![0, 1]);
        assert_eq!(g.k_hop_nodes(0, 2), vec![0, 1, 2]);
        assert_eq!(g.k_hop_nodes(2, 1), vec![1, 2, 3]);
        assert_eq!(g.k_hop_nodes(2, 10), vec![0, 1, 2, 3, 4]);
    }
}
