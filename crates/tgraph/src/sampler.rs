//! Temporal neighborhood sampling (the `NghLookup` operation of Algorithm 1).
//!
//! Given target pairs `(node, t)` the sampler returns up to `k` neighbors
//! whose interactions satisfy the temporal constraint `t_j < t`. The paper
//! uses *most-recent* sampling (the last `k` interactions before `t`), which
//! is the property its memoization correctness argument rests on (§3.2); a
//! *uniform* strategy is provided for the future-work comparison (§7) — the
//! TGOpt engine automatically bypasses the embedding cache when it is used.

use crate::graph::AdjEntry;
use crate::live::GraphView;
use crate::{EdgeId, NodeId, TemporalGraph, Time};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use rayon::prelude::*;

/// Edge id marking a padding slot in a sampled neighborhood.
pub const INVALID_EDGE: EdgeId = EdgeId::MAX;

/// Anything the sampler can draw temporal neighborhoods from: the frozen
/// [`TemporalGraph`] or an epoch-stamped live [`GraphView`]. All three
/// accessors describe the same time-sorted sequence — the interactions of
/// `node` strictly before `t` — so any two sources that agree on it sample
/// identically (the streamed-view ≡ cold-rebuild equivalence rests here).
pub trait HistorySource {
    /// `|N(node, t)|`: interactions of `node` strictly before `t`.
    fn hist_len_before(&self, node: NodeId, t: Time) -> usize;
    /// Streams the last `take` interactions before `t` chronologically
    /// (`f(slot, entry)`, slot 0 oldest). `take` must not exceed
    /// [`HistorySource::hist_len_before`].
    fn most_recent<F: FnMut(usize, AdjEntry)>(&self, node: NodeId, t: Time, take: usize, f: F);
    /// Random access: the `i`-th chronological interaction before `t`.
    fn nth_before(&self, node: NodeId, t: Time, i: usize) -> Option<AdjEntry>;
}

impl HistorySource for TemporalGraph {
    fn hist_len_before(&self, node: NodeId, t: Time) -> usize {
        self.neighbors_before(node, t).len()
    }

    fn most_recent<F: FnMut(usize, AdjEntry)>(&self, node: NodeId, t: Time, take: usize, mut f: F) {
        let hist = self.neighbors_before(node, t);
        let tail = &hist[hist.len() - take.min(hist.len())..];
        for (slot, e) in tail.iter().enumerate() {
            f(slot, *e);
        }
    }

    fn nth_before(&self, node: NodeId, t: Time, i: usize) -> Option<AdjEntry> {
        self.neighbors_before(node, t).get(i).copied()
    }
}

impl HistorySource for GraphView {
    fn hist_len_before(&self, node: NodeId, t: Time) -> usize {
        GraphView::hist_len_before(self, node, t)
    }

    fn most_recent<F: FnMut(usize, AdjEntry)>(&self, node: NodeId, t: Time, take: usize, f: F) {
        GraphView::most_recent(self, node, t, take, f)
    }

    fn nth_before(&self, node: NodeId, t: Time, i: usize) -> Option<AdjEntry> {
        GraphView::nth_before(self, node, t, i)
    }
}

/// How neighbors are picked from the temporal neighborhood.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingStrategy {
    /// The `k` interactions with the largest timestamps below `t`.
    /// Deterministic — this is what makes embedding memoization sound.
    MostRecent,
    /// `k` interactions drawn uniformly (with replacement) from the history.
    /// Seeded per `(node, t)` so a given target is reproducible, but results
    /// change as the history grows, so cached embeddings cannot be reused.
    Uniform { seed: u64 },
}

/// A sampled `k`-neighborhood for each of `n` targets, stored as flat
/// `n * k` arrays (row-major; row `i` is target `i`'s slots).
#[derive(Clone, Debug)]
pub struct NeighborhoodBatch {
    pub n_targets: usize,
    pub k: usize,
    /// Neighbor node ids; padding slots hold 0 and must be masked.
    pub nodes: Vec<NodeId>,
    /// Neighbor interaction timestamps; padding slots hold the target time.
    pub times: Vec<Time>,
    /// Edge feature row per slot; [`INVALID_EDGE`] marks padding.
    pub eids: Vec<EdgeId>,
    /// Time deltas `t - t_j`; 0 for padding slots.
    pub dts: Vec<Time>,
}

impl NeighborhoodBatch {
    fn empty(n_targets: usize, k: usize, ts: &[Time]) -> Self { // alloc-ok: the sampled neighborhood is a per-wave output the caller owns; its id/time slots are not poolable f32 scratch
        let mut times = Vec::with_capacity(n_targets * k);
        for &t in ts {
            times.extend(std::iter::repeat_n(t, k));
        }
        Self {
            n_targets,
            k,
            nodes: vec![0; n_targets * k],
            times,
            eids: vec![INVALID_EDGE; n_targets * k],
            dts: vec![0.0; n_targets * k],
        }
    }

    /// True if slot `i` holds a real neighbor (not padding).
    #[inline]
    pub fn is_valid(&self, i: usize) -> bool {
        self.eids[i] != INVALID_EDGE
    }

    /// Boolean validity mask over all `n * k` slots.
    pub fn mask(&self) -> Vec<bool> { // alloc-ok: the validity mask is the return value, one bool per slot
        self.eids.iter().map(|&e| e != INVALID_EDGE).collect()
    }

    /// Number of real (non-padding) neighbor slots.
    pub fn num_valid(&self) -> usize {
        self.eids.iter().filter(|&&e| e != INVALID_EDGE).count()
    }
}

/// Batch temporal sampler.
///
/// ```
/// use tg_graph::{Edge, TemporalGraph, TemporalSampler};
///
/// let mut g = TemporalGraph::with_nodes(4);
/// for (i, (dst, t)) in [(1u32, 1.0f32), (2, 2.0), (3, 3.0)].iter().enumerate() {
///     g.insert(&Edge { src: 0, dst: *dst, time: *t, eid: i as u32 });
/// }
/// // Two most-recent neighbors of node 0 strictly before t=3.0:
/// let nb = TemporalSampler::most_recent(2).sample(&g, &[0], &[3.0]);
/// assert_eq!(&nb.nodes[..2], &[1, 2]);     // chronological order
/// assert_eq!(&nb.dts[..2], &[2.0, 1.0]);   // t - t_j
/// assert_eq!(nb.num_valid(), 2);           // the t=3.0 edge is excluded
/// ```
#[derive(Clone, Debug)]
pub struct TemporalSampler {
    k: usize,
    strategy: SamplingStrategy,
    /// Parallelize across targets when the batch is large enough.
    parallel: bool,
}

/// Below this many targets, sequential sampling beats rayon overheads.
const PAR_MIN_TARGETS: usize = 64;

impl TemporalSampler {
    pub fn new(k: usize, strategy: SamplingStrategy) -> Self {
        assert!(k > 0, "sampler needs k >= 1");
        Self { k, strategy, parallel: true }
    }

    /// Most-recent sampler with paper-default parallelism.
    pub fn most_recent(k: usize) -> Self {
        Self::new(k, SamplingStrategy::MostRecent)
    }

    /// Disables cross-target parallelism (for the ablation benches).
    pub fn sequential(mut self) -> Self {
        self.parallel = false;
        self
    }

    /// Neighbors sampled per target.
    pub fn k(&self) -> usize {
        self.k
    }

    /// The configured strategy.
    pub fn strategy(&self) -> SamplingStrategy {
        self.strategy
    }

    /// Samples the temporal neighborhood of every `(ns[i], ts[i])` target
    /// from a frozen graph.
    pub fn sample(&self, g: &TemporalGraph, ns: &[NodeId], ts: &[Time]) -> NeighborhoodBatch {
        self.sample_from(g, ns, ts)
    }

    /// Samples from an epoch-stamped live view: identical slot layout and
    /// selection to [`TemporalSampler::sample`] on the equivalent frozen
    /// graph (the stream prefix up to the view's epoch).
    pub fn sample_view(&self, v: &GraphView, ns: &[NodeId], ts: &[Time]) -> NeighborhoodBatch {
        self.sample_from(v, ns, ts)
    }

    /// Shared sampling core over any [`HistorySource`].
    pub fn sample_from<S: HistorySource + Sync>(&self, src: &S, ns: &[NodeId], ts: &[Time]) -> NeighborhoodBatch {
        assert_eq!(ns.len(), ts.len(), "node/time target arrays differ in length");
        let n = ns.len();
        let mut out = NeighborhoodBatch::empty(n, self.k, ts);
        let k = self.k;
        let strategy = self.strategy;
        let fill = |i: usize, nodes: &mut [NodeId], times: &mut [Time], eids: &mut [EdgeId], dts: &mut [Time]| {
            let len = src.hist_len_before(ns[i], ts[i]);
            if len == 0 {
                return;
            }
            match strategy {
                SamplingStrategy::MostRecent => {
                    src.most_recent(ns[i], ts[i], len.min(k), |slot, e| {
                        nodes[slot] = e.ngh;
                        times[slot] = e.time;
                        eids[slot] = e.eid;
                        dts[slot] = ts[i] - e.time;
                    });
                }
                SamplingStrategy::Uniform { seed } => {
                    // Deterministic per-target stream: reruns of the same
                    // (node, t) pick the same neighbors.
                    let s = seed
                        ^ (ns[i] as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
                        ^ (ts[i].to_bits() as u64).wrapping_mul(0xD1B5_4A32_D192_ED03);
                    let mut rng = StdRng::seed_from_u64(s);
                    for slot in 0..k.min(len) {
                        let Some(e) = src.nth_before(ns[i], ts[i], rng.gen_range(0..len)) else {
                            continue;
                        };
                        nodes[slot] = e.ngh;
                        times[slot] = e.time;
                        eids[slot] = e.eid;
                        dts[slot] = ts[i] - e.time;
                    }
                }
            }
        };
        if self.parallel && n >= PAR_MIN_TARGETS {
            out.nodes
                .par_chunks_mut(k)
                .zip(out.times.par_chunks_mut(k))
                .zip(out.eids.par_chunks_mut(k))
                .zip(out.dts.par_chunks_mut(k))
                .enumerate()
                .for_each(|(i, (((nodes, times), eids), dts))| fill(i, nodes, times, eids, dts));
        } else {
            for i in 0..n {
                let (nodes, times, eids, dts) = (
                    &mut out.nodes[i * k..(i + 1) * k],
                    &mut out.times[i * k..(i + 1) * k],
                    &mut out.eids[i * k..(i + 1) * k],
                    &mut out.dts[i * k..(i + 1) * k],
                );
                fill(i, nodes, times, eids, dts);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Edge;

    fn line_graph() -> TemporalGraph {
        // node 0 interacts with 1..=5 at times 1..=5
        let mut g = TemporalGraph::with_nodes(6);
        for i in 1..=5u32 {
            g.insert(&Edge { src: 0, dst: i, time: i as Time, eid: i - 1 });
        }
        g
    }

    #[test]
    fn most_recent_takes_latest_k_in_order() {
        let g = line_graph();
        let s = TemporalSampler::most_recent(3);
        let nb = s.sample(&g, &[0], &[10.0]);
        assert_eq!(nb.num_valid(), 3);
        // latest three interactions, chronological: 3, 4, 5
        assert_eq!(&nb.nodes[..3], &[3, 4, 5]);
        assert_eq!(&nb.times[..3], &[3.0, 4.0, 5.0]);
        assert_eq!(&nb.dts[..3], &[7.0, 6.0, 5.0]);
    }

    #[test]
    fn temporal_constraint_is_strict() {
        let g = line_graph();
        let s = TemporalSampler::most_recent(10);
        let nb = s.sample(&g, &[0], &[3.0]);
        // only interactions with t_j < 3 qualify
        assert_eq!(nb.num_valid(), 2);
        assert!(nb.times[..2].iter().all(|&t| t < 3.0));
    }

    #[test]
    fn padding_has_zero_dt_and_invalid_eid() {
        let g = line_graph();
        let s = TemporalSampler::most_recent(4);
        let nb = s.sample(&g, &[0, 5], &[2.5, 1.0]);
        // target 1 (node 5 at t=1.0) has no earlier interactions
        let row1 = &nb.eids[4..8];
        assert!(row1.iter().all(|&e| e == INVALID_EDGE));
        assert!(nb.dts[4..8].iter().all(|&d| d == 0.0));
        assert_eq!(nb.times[4..8], [1.0; 4]);
        let mask = nb.mask();
        assert_eq!(mask[..4].iter().filter(|&&m| m).count(), 2);
        assert!(mask[4..8].iter().all(|&m| !m));
    }

    #[test]
    fn same_target_same_subgraph() {
        // The memoization premise (§3.2): sampling the same (i, t) after the
        // graph gained new, later interactions yields the identical result.
        let mut g = line_graph();
        let s = TemporalSampler::most_recent(3);
        let before = s.sample(&g, &[0], &[4.5]);
        g.insert(&Edge { src: 0, dst: 1, time: 9.0, eid: 99 });
        let after = s.sample(&g, &[0], &[4.5]);
        assert_eq!(before.nodes, after.nodes);
        assert_eq!(before.times, after.times);
        assert_eq!(before.eids, after.eids);
    }

    #[test]
    fn parallel_and_sequential_agree() {
        let mut g = TemporalGraph::with_nodes(50);
        for (eid, t) in (1..400u32).enumerate() {
            g.insert(&Edge { src: t % 50, dst: (t * 7) % 50, time: t as Time, eid: eid as u32 });
        }
        let ns: Vec<NodeId> = (0..200).map(|i| i % 50).collect();
        let ts: Vec<Time> = (0..200).map(|i| 100.0 + i as Time).collect();
        let par = TemporalSampler::most_recent(5).sample(&g, &ns, &ts);
        let seq = TemporalSampler::most_recent(5).sequential().sample(&g, &ns, &ts);
        assert_eq!(par.nodes, seq.nodes);
        assert_eq!(par.eids, seq.eids);
        assert_eq!(par.dts, seq.dts);
    }

    #[test]
    fn uniform_is_deterministic_per_target_and_respects_time() {
        let g = line_graph();
        let s = TemporalSampler::new(4, SamplingStrategy::Uniform { seed: 7 });
        let a = s.sample(&g, &[0], &[4.0]);
        let b = s.sample(&g, &[0], &[4.0]);
        assert_eq!(a.nodes, b.nodes);
        for i in 0..4 {
            if a.is_valid(i) {
                assert!(a.times[i] < 4.0);
            }
        }
    }

    #[test]
    fn view_and_frozen_graph_sample_identically() {
        use crate::LiveGraph;
        // Split a scrambled-arrival stream: first half becomes the frozen
        // base, the second half is appended live. Sampling the view must
        // equal sampling a cold rebuild of the full stream — for both
        // strategies, including the seeded uniform draws.
        let mut edges = Vec::new();
        for i in 0..120u32 {
            let t = if i % 7 == 0 { (i / 2) as Time } else { i as Time }; // some out-of-order
            edges.push(Edge { src: i % 10, dst: (i * 3 + 1) % 10, time: t, eid: i });
        }
        let mut base = TemporalGraph::with_nodes(10);
        for e in &edges[..60] {
            base.insert(e);
        }
        base.freeze();
        let mut truth = base.clone();
        let live = LiveGraph::new(base);
        for e in &edges[60..] {
            live.append(e);
            truth.insert(e);
        }
        truth.freeze();
        let view = live.view();
        let ns: Vec<NodeId> = (0..100).map(|i| i % 10).collect();
        let ts: Vec<Time> = (0..100).map(|i| 20.0 + i as Time).collect();
        for sampler in [
            TemporalSampler::most_recent(5),
            TemporalSampler::most_recent(5).sequential(),
            TemporalSampler::new(4, SamplingStrategy::Uniform { seed: 11 }),
        ] {
            let frozen = sampler.sample(&truth, &ns, &ts);
            let streamed = sampler.sample_view(&view, &ns, &ts);
            assert_eq!(frozen.nodes, streamed.nodes);
            assert_eq!(frozen.times, streamed.times);
            assert_eq!(frozen.eids, streamed.eids);
            assert_eq!(frozen.dts, streamed.dts);
        }
    }

    #[test]
    fn empty_targets() {
        let g = line_graph();
        let nb = TemporalSampler::most_recent(3).sample(&g, &[], &[]);
        assert_eq!(nb.n_targets, 0);
        assert!(nb.nodes.is_empty());
    }
}
