//! Chronological fixed-size batching of an edge stream.
//!
//! The paper's inference task iterates all edges of a dataset in batches of
//! 200 (§5.1); each batch contributes both endpoints of every edge as
//! embedding targets.

use crate::{Edge, EdgeStream, NodeId, Time};

/// A view over one batch of consecutive edge interactions.
#[derive(Clone, Debug)]
pub struct EdgeBatch<'a> {
    pub edges: &'a [Edge],
    /// Index of this batch within the stream.
    pub index: usize,
}

impl EdgeBatch<'_> {
    /// Unpacks the batch into the target lists TGAT embeds: sources then
    /// destinations, each paired with the interaction timestamp (§3.1).
    pub fn targets(&self) -> (Vec<NodeId>, Vec<Time>) {
        let n = self.edges.len();
        let mut ns = Vec::with_capacity(2 * n);
        let mut ts = Vec::with_capacity(2 * n);
        for e in self.edges {
            ns.push(e.src);
            ts.push(e.time);
        }
        for e in self.edges {
            ns.push(e.dst);
            ts.push(e.time);
        }
        (ns, ts)
    }

    /// Number of edges in the batch.
    pub fn len(&self) -> usize {
        self.edges.len()
    }

    /// True if the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.edges.is_empty()
    }
}

/// Iterator over fixed-size chronological batches of a stream.
pub struct BatchIter<'a> {
    edges: &'a [Edge],
    batch_size: usize,
    pos: usize,
    index: usize,
}

impl<'a> BatchIter<'a> {
    pub fn new(stream: &'a EdgeStream, batch_size: usize) -> Self {
        assert!(batch_size > 0, "batch size must be positive");
        Self { edges: stream.edges(), batch_size, pos: 0, index: 0 }
    }

    /// Total number of batches this iterator will yield.
    pub fn num_batches(&self) -> usize {
        self.edges.len().div_ceil(self.batch_size)
    }
}

impl<'a> Iterator for BatchIter<'a> {
    type Item = EdgeBatch<'a>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.edges.len() {
            return None;
        }
        let end = (self.pos + self.batch_size).min(self.edges.len());
        let b = EdgeBatch { edges: &self.edges[self.pos..end], index: self.index };
        self.pos = end;
        self.index += 1;
        Some(b)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.edges.len() - self.pos).div_ceil(self.batch_size);
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BatchIter<'_> {}

#[cfg(test)]
mod tests {
    use super::*;

    fn stream(n: usize) -> EdgeStream {
        let srcs: Vec<NodeId> = (0..n as u32).collect();
        let dsts: Vec<NodeId> = (0..n as u32).map(|i| i + 1).collect();
        let times: Vec<Time> = (0..n).map(|i| i as Time).collect();
        EdgeStream::new(&srcs, &dsts, &times)
    }

    #[test]
    fn batches_cover_stream_without_overlap() {
        let s = stream(450);
        let it = BatchIter::new(&s, 200);
        assert_eq!(it.num_batches(), 3);
        let sizes: Vec<usize> = it.map(|b| b.len()).collect();
        assert_eq!(sizes, vec![200, 200, 50]);
    }

    #[test]
    fn batch_indices_are_sequential() {
        let s = stream(10);
        let idxs: Vec<usize> = BatchIter::new(&s, 3).map(|b| b.index).collect();
        assert_eq!(idxs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn targets_are_sources_then_destinations() {
        let s = stream(2);
        let b = BatchIter::new(&s, 2).next().unwrap();
        let (ns, ts) = b.targets();
        assert_eq!(ns, vec![0, 1, 1, 2]);
        assert_eq!(ts, vec![0.0, 1.0, 0.0, 1.0]);
    }

    #[test]
    fn exact_size_iterator() {
        let s = stream(7);
        let mut it = BatchIter::new(&s, 3);
        assert_eq!(it.len(), 3);
        it.next();
        assert_eq!(it.len(), 2);
    }

    #[test]
    fn empty_stream_yields_nothing() {
        let s = EdgeStream::new(&[], &[], &[]);
        assert_eq!(BatchIter::new(&s, 5).count(), 0);
    }
}
