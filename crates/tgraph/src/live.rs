//! Live streaming ingest: an append-friendly delta-log beside the frozen
//! T-CSR, with epoch-stamped consistent views for concurrent readers.
//!
//! The paper's replay workloads freeze the graph before inference, but a
//! deployed system interleaves edge arrivals with queries. [`LiveGraph`]
//! keeps the bulk of the adjacency in an immutable frozen
//! [`TemporalGraph`] (*base*) and routes appends into a small per-node
//! sorted *delta* beside it. Readers take a [`GraphView`] — an
//! `Arc`-pinned generation plus an epoch (the count of edges submitted so
//! far) — and see exactly the prefix of the edge stream up to that epoch,
//! no matter how many writers append concurrently.
//!
//! Epoch protocol (modeled in `tests/loom_concurrency.rs`):
//!
//! * `append` holds `gen.read` + `delta.write`, assigns the edge the next
//!   global sequence number, inserts it time-sorted into both endpoints'
//!   delta postings, and only then publishes `epoch = seq + 1` with a
//!   `Release` store (still inside the delta lock).
//! * `view` holds `gen.read`, clones the generation `Arc`, and loads the
//!   epoch with `Acquire` — so a view whose epoch covers an edge is
//!   guaranteed to observe its posting.
//! * Readers re-filter delta postings by `seq < epoch` under `delta.read`,
//!   so an in-flight sorted insertion that shifts positions can never leak
//!   a too-new edge into an older view.
//!
//! Compaction folds the delta log into a fresh frozen base under
//! `gen.write` and swaps in a new generation; pinned views keep the old
//! generation (whose delta is never mutated again) alive through their
//! `Arc`, so a long-running wave stays consistent across any number of
//! compactions.

use crate::graph::AdjEntry;
use crate::{Edge, NodeId, TemporalGraph, Time};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, LockResult, RwLock, RwLockReadGuard, RwLockWriteGuard};

/// Recovers the guard from a poisoned `read`. All guarded state here is
/// kept consistent by construction (sorted inserts never leave a gap), so
/// a panicking writer cannot strand it half-updated.
fn rlock<T>(r: LockResult<RwLockReadGuard<'_, T>>) -> RwLockReadGuard<'_, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

/// Recovers the guard from a poisoned `write` (see [`rlock`]).
fn wlock<T>(r: LockResult<RwLockWriteGuard<'_, T>>) -> RwLockWriteGuard<'_, T> {
    r.unwrap_or_else(|e| e.into_inner())
}

/// One delta posting: an adjacency entry stamped with the global sequence
/// number of the edge that produced it, so readers can filter by epoch.
#[derive(Clone, Copy, Debug)]
struct DeltaEntry {
    entry: AdjEntry,
    seq: u64,
}

/// Mutable tail of a generation: the append log (in submission order) and
/// per-node time-sorted postings mirroring `TemporalGraph::insert`'s
/// undirected, equal-times-append-after semantics.
#[derive(Debug, Default)]
struct DeltaState {
    log: Vec<Edge>,
    postings: Vec<Vec<DeltaEntry>>,
}

impl DeltaState {
    /// Sorted insert matching `TemporalGraph::insert_one`: chronological
    /// appends are O(1); an out-of-order entry lands *after* any
    /// equal-time entries already present (`time <= entry.time` cut), so a
    /// later submission is always the more recent interaction.
    fn push_posting(&mut self, node: NodeId, entry: AdjEntry, seq: u64) {
        let n = node as usize;
        if n >= self.postings.len() {
            self.postings.resize_with(n + 1, Vec::new);
        }
        let list = &mut self.postings[n];
        match list.last() {
            Some(last) if last.entry.time > entry.time => {
                let pos = list.partition_point(|x| x.entry.time <= entry.time);
                list.insert(pos, DeltaEntry { entry, seq });
            }
            _ => list.push(DeltaEntry { entry, seq }),
        }
    }

    fn node_postings(&self, node: NodeId) -> &[DeltaEntry] {
        self.postings.get(node as usize).map_or(&[], |v| v.as_slice())
    }
}

/// One immutable-base + mutable-delta snapshot unit. A compaction swaps
/// the whole generation; views pin the one they started on.
///
/// The base is held through an `Arc` so several [`LiveGraph`]s can share
/// one frozen T-CSR: a sharded server replicates the delta stream into
/// every shard's live graph while paying for the (large, immutable) base
/// exactly once.
struct Generation {
    /// Frozen T-CSR holding every edge with `seq < base_seq`.
    base: Arc<TemporalGraph>,
    /// Global sequence number of the first edge *not* in `base`.
    base_seq: u64,
    delta: RwLock<DeltaState>,
}

/// Monotonic ingest counters, read via [`IngestCounters::snapshot`] only
/// (L8): each field is an independent monotonic total, so a snapshot torn
/// across concurrent appends still never goes backwards.
#[derive(Debug, Default)]
struct IngestCounters {
    edges_appended: AtomicU64,
    compactions: AtomicU64,
}

impl IngestCounters {
    fn snapshot(&self) -> (u64, u64) {
        (self.edges_appended.load(Ordering::Relaxed), self.compactions.load(Ordering::Relaxed))
    }
}

/// Point-in-time ingest statistics of a [`LiveGraph`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Edges appended through [`LiveGraph::append`] since construction.
    pub edges_appended: u64,
    /// Delta-into-base compactions performed.
    pub compactions: u64,
    /// Edges currently in the delta log (not yet compacted).
    pub delta_edges: u64,
}

/// Delta log length at which [`LiveGraph::append`] triggers a compaction.
pub const DEFAULT_COMPACT_THRESHOLD: usize = 4096;

/// A temporal graph that accepts concurrent appends while serving
/// consistent epoch-stamped snapshots to readers.
///
/// ```
/// use tg_graph::{Edge, LiveGraph, TemporalGraph};
///
/// let live = LiveGraph::new(TemporalGraph::with_nodes(4));
/// let v0 = live.view();
/// live.append(&Edge { src: 0, dst: 1, time: 1.0, eid: 0 });
/// let v1 = live.view();
/// // v0 was taken before the append and never sees the edge; v1 does.
/// assert_eq!((v0.epoch(), v1.epoch()), (0, 1));
/// ```
pub struct LiveGraph {
    gen: RwLock<Arc<Generation>>,
    /// Published count of appended edges: an edge with global sequence
    /// number `s` is visible to exactly the views with `epoch > s`.
    /// Stored with `Release` *after* its postings land (see module docs);
    /// never used as bare branch-control — readers always confirm under
    /// the delta lock.
    epoch: AtomicU64,
    counters: IngestCounters,
    compact_threshold: usize,
}

impl LiveGraph {
    /// Wraps a base graph (frozen if it is not already) with an empty
    /// delta. Edges already in `base` occupy sequence numbers
    /// `0..base.num_edges()`.
    pub fn new(mut base: TemporalGraph) -> Self {
        base.freeze();
        Self::from_shared(Arc::new(base))
    }

    /// Wraps an already-shared frozen base without copying it. Several
    /// live graphs built from the same `Arc` each get an independent
    /// delta log over one physical T-CSR — the shard-replication shape.
    /// An unfrozen base is cloned and frozen (the shared original is
    /// left untouched); pass a frozen graph to stay zero-copy.
    pub fn from_shared(base: Arc<TemporalGraph>) -> Self {
        let base = if base.is_frozen() {
            base
        } else {
            let mut own = (*base).clone();
            own.freeze();
            Arc::new(own)
        };
        let base_seq = base.num_edges() as u64;
        Self {
            gen: RwLock::new(Arc::new(Generation {
                base,
                base_seq,
                delta: RwLock::new(DeltaState::default()),
            })),
            epoch: AtomicU64::new(base_seq),
            counters: IngestCounters::default(),
            compact_threshold: DEFAULT_COMPACT_THRESHOLD,
        }
    }

    /// Sets the delta-log length that triggers auto-compaction on append.
    /// A threshold of `usize::MAX` disables it (tests compact explicitly).
    pub fn with_compact_threshold(mut self, threshold: usize) -> Self {
        self.compact_threshold = threshold.max(1);
        self
    }

    /// Appends one interaction and returns its global sequence number.
    ///
    /// # Invariants
    ///
    /// * The edge's postings are inserted (both endpoints, time-sorted,
    ///   equal times after existing ones — identical to
    ///   `TemporalGraph::insert`) *before* the epoch advances past its
    ///   sequence number, so no view can have a visible-but-absent edge.
    /// * Sequence numbers are contiguous: this edge gets exactly
    ///   `epoch()` as observed before the call by any serialized caller.
    /// * Triggers compaction after releasing the generation lock once the
    ///   delta log reaches the configured threshold.
    pub fn append(&self, e: &Edge) -> u64 {
        let (seq, should_compact) = {
            let gen = rlock(self.gen.read());
            let mut delta = wlock(gen.delta.write());
            let seq = gen.base_seq + delta.log.len() as u64;
            // lint: allow(lock-held-effects, the append allocates under the inner delta write lock by design; gen is read-held only to pin the generation, and readers never wait on it — view() just clones the Arc)
            delta.log.push(*e);
            // lint: allow(lock-held-effects, posting inserts allocate under the delta lock by design; same rationale as the log push above)
            delta.push_posting(e.src, AdjEntry { time: e.time, ngh: e.dst, eid: e.eid }, seq);
            // lint: allow(lock-held-effects, posting inserts allocate under the delta lock by design; same rationale as the log push above)
            delta.push_posting(e.dst, AdjEntry { time: e.time, ngh: e.src, eid: e.eid }, seq);
            // Publish while still holding the delta lock: a view taken
            // after this store is guaranteed to find the postings.
            self.epoch.store(seq + 1, Ordering::Release);
            (seq, delta.log.len() >= self.compact_threshold)
        };
        self.counters.edges_appended.fetch_add(1, Ordering::Relaxed);
        if should_compact {
            self.compact();
        }
        seq
    }

    /// Takes a consistent snapshot: everything submitted before this call
    /// is visible, nothing submitted after ever becomes visible.
    pub fn view(&self) -> GraphView {
        let gen = rlock(self.gen.read());
        // Acquire pairs with `append`'s Release: an epoch that covers an
        // edge implies its postings are visible to this thread.
        let epoch = self.epoch.load(Ordering::Acquire);
        GraphView { gen: Arc::clone(&gen), epoch }
    }

    /// Total edges submitted (base + delta). Equals the epoch a fresh
    /// [`LiveGraph::view`] would carry, and the sequence number (= edge
    /// id slot) the next [`LiveGraph::append`] will assign if callers
    /// serialize their submissions.
    pub fn num_edges_total(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Folds the delta log into a fresh frozen base and swaps in a new
    /// empty-delta generation.
    ///
    /// # Invariants
    ///
    /// * Replays the log in sequence order through `TemporalGraph::insert`,
    ///   so the new base is bit-identical to a cold rebuild of the full
    ///   stream prefix.
    /// * Existing views keep the old generation alive via their `Arc`;
    ///   its delta is never mutated again, so they stay consistent.
    /// * The epoch does not move: compaction changes representation, not
    ///   visibility.
    pub fn compact(&self) {
        let mut gen_slot = wlock(self.gen.write());
        let folded = {
            let delta = rlock(gen_slot.delta.read());
            if delta.log.is_empty() {
                return;
            }
            let mut base = (*gen_slot.base).clone();
            for e in &delta.log {
                base.insert(e);
            }
            // lint: allow(lock-held-effects, the stop-the-world fold is deliberate: holding gen exclusively serializes compaction against appends so the new base is bit-identical to a cold rebuild; compact_threshold amortizes the pause)
            base.freeze();
            let base_seq = gen_slot.base_seq + delta.log.len() as u64;
            Generation { base: Arc::new(base), base_seq, delta: RwLock::new(DeltaState::default()) }
        };
        *gen_slot = Arc::new(folded);
        self.counters.compactions.fetch_add(1, Ordering::Relaxed);
    }

    /// Snapshot of the ingest counters plus the current delta backlog.
    pub fn ingest_stats(&self) -> IngestStats {
        let (edges_appended, compactions) = self.counters.snapshot();
        let delta_edges = {
            let gen = rlock(self.gen.read());
            let delta = rlock(gen.delta.read());
            delta.log.len() as u64
        };
        IngestStats { edges_appended, compactions, delta_edges }
    }
}

/// An epoch-stamped snapshot of a [`LiveGraph`]: a pinned generation plus
/// the visibility horizon. Cheap to clone; safe to hold across
/// compactions and concurrent appends.
#[derive(Clone)]
pub struct GraphView {
    gen: Arc<Generation>,
    epoch: u64,
}

impl GraphView {
    /// The visibility horizon: edges with sequence numbers `< epoch` are
    /// visible, everything newer is not.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Total visible edges (the stream prefix length this view serves).
    pub fn num_edges(&self) -> u64 {
        self.epoch
    }

    /// Node-id address space: the base graph's, extended by any delta
    /// postings for larger ids.
    pub fn num_nodes(&self) -> usize {
        let delta = rlock(self.gen.delta.read());
        // lint: allow(lock-held-effects, name-only resolution maps this onto the workspace's other num_nodes impls; the receiver is the immutable base snapshot whose num_nodes reads a field and takes no locks)
        self.gen.base.num_nodes().max(delta.postings.len())
    }

    /// Visible interactions of `node` strictly before `t` — the temporal
    /// neighborhood size `|N(node, t)|` this view serves.
    pub fn hist_len_before(&self, node: NodeId, t: Time) -> usize {
        let base = self.gen.base.neighbors_before(node, t);
        let delta = rlock(self.gen.delta.read());
        let d = delta.node_postings(node);
        let cut = d.partition_point(|x| x.entry.time < t);
        base.len() + d[..cut].iter().filter(|x| x.seq < self.epoch).count()
    }

    /// Streams the last `take` visible interactions of `node` strictly
    /// before `t`, in chronological order (`f(slot, entry)` with slot 0
    /// the oldest of the window). `take` must not exceed
    /// [`GraphView::hist_len_before`]; excess slots are left uncalled.
    ///
    /// The merge walks base and delta backward from the `t` cutoff,
    /// preferring delta at equal times (a delta edge was submitted later,
    /// hence is the more recent interaction — matching where
    /// `TemporalGraph::insert` would have placed it in a cold rebuild).
    pub fn most_recent<F: FnMut(usize, AdjEntry)>(&self, node: NodeId, t: Time, take: usize, mut f: F) {
        let base = self.gen.base.neighbors_before(node, t);
        let delta = rlock(self.gen.delta.read());
        let d = delta.node_postings(node);
        let cut = d.partition_point(|x| x.entry.time < t);
        let d = &d[..cut];
        let mut bi = base.len();
        let mut di = d.len();
        let mut slot = take;
        while slot > 0 {
            while di > 0 && d[di - 1].seq >= self.epoch {
                di -= 1;
            }
            slot -= 1;
            if di > 0 && (bi == 0 || d[di - 1].entry.time >= base[bi - 1].time) {
                f(slot, d[di - 1].entry);
                di -= 1;
            } else if bi > 0 {
                f(slot, base[bi - 1]);
                bi -= 1;
            } else {
                // take exceeded the visible history; leave the rest unfilled.
                return;
            }
        }
    }

    /// The `i`-th (0-based, chronological) visible interaction of `node`
    /// strictly before `t`, or `None` past the end. Random access for the
    /// uniform sampling strategy; O(history) forward merge.
    pub fn nth_before(&self, node: NodeId, t: Time, i: usize) -> Option<AdjEntry> {
        let base = self.gen.base.neighbors_before(node, t);
        let delta = rlock(self.gen.delta.read());
        let d = delta.node_postings(node);
        let cut = d.partition_point(|x| x.entry.time < t);
        let mut di = d[..cut].iter().filter(|x| x.seq < self.epoch);
        let mut next_d = di.next();
        let mut bi = base.iter();
        let mut next_b = bi.next();
        let mut idx = 0;
        loop {
            // Forward tie rule: base first (it was submitted earlier).
            let pick_base = match (next_b, next_d) {
                (Some(b), Some(dd)) => b.time <= dd.entry.time,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => return None,
            };
            let entry = if pick_base {
                let e = *next_b?;
                next_b = bi.next();
                e
            } else {
                let e = next_d?.entry;
                next_d = di.next();
                e
            };
            if idx == i {
                return Some(entry);
            }
            idx += 1;
        }
    }

    /// Collects the visible neighborhood before `t` into a vector
    /// (chronological). Test/diagnostic helper — the samplers use the
    /// streaming accessors above.
    pub fn neighbors_before_vec(&self, node: NodeId, t: Time) -> Vec<AdjEntry> {
        let len = self.hist_len_before(node, t);
        let mut out = vec![AdjEntry { time: 0.0, ngh: 0, eid: 0 }; len];
        self.most_recent(node, t, len, |slot, e| out[slot] = e);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn edge(src: NodeId, dst: NodeId, time: Time, eid: crate::EdgeId) -> Edge {
        Edge { src, dst, time, eid }
    }

    fn base_line() -> TemporalGraph {
        let mut g = TemporalGraph::with_nodes(6);
        for i in 1..=3u32 {
            g.insert(&edge(0, i, i as Time, i - 1));
        }
        g.freeze();
        g
    }

    /// Cold rebuild: every submitted edge inserted in order into one
    /// frozen graph — the ground truth every view must agree with.
    fn rebuild(base: &TemporalGraph, extra: &[Edge]) -> TemporalGraph {
        let mut g = base.clone();
        for e in extra {
            g.insert(e);
        }
        g.freeze();
        g
    }

    fn assert_view_matches(view: &GraphView, truth: &TemporalGraph, node: NodeId, t: Time) {
        let expect = truth.neighbors_before(node, t);
        assert_eq!(view.hist_len_before(node, t), expect.len(), "len for ({node}, {t})");
        assert_eq!(view.neighbors_before_vec(node, t), expect.to_vec(), "entries for ({node}, {t})");
        for (i, e) in expect.iter().enumerate() {
            assert_eq!(view.nth_before(node, t, i), Some(*e), "nth {i} for ({node}, {t})");
        }
        assert_eq!(view.nth_before(node, t, expect.len()), None);
    }

    #[test]
    fn view_pins_the_epoch_at_creation() {
        let live = LiveGraph::new(base_line());
        let v0 = live.view();
        assert_eq!(v0.epoch(), 3);
        live.append(&edge(0, 4, 4.0, 3));
        let v1 = live.view();
        assert_eq!(v0.epoch(), 3);
        assert_eq!(v1.epoch(), 4);
        assert_eq!(v0.hist_len_before(0, 10.0), 3, "old view must not see the append");
        assert_eq!(v1.hist_len_before(0, 10.0), 4);
    }

    #[test]
    fn view_equals_cold_rebuild_including_out_of_order_and_ties() {
        let base = base_line();
        let live = LiveGraph::new(base.clone());
        let extra = [
            edge(0, 4, 5.0, 3),
            edge(0, 5, 2.0, 4), // out of order: lands between base times 2 and 3
            edge(1, 2, 2.0, 5), // exact tie with base time 2.0 on node 2
            edge(0, 0, 6.0, 6), // self-loop: two postings on node 0
        ];
        for e in &extra {
            live.append(e);
        }
        let truth = rebuild(&base, &extra);
        let view = live.view();
        for node in 0..6u32 {
            for t in [0.5, 2.0, 2.5, 3.0, 5.5, 100.0] {
                assert_view_matches(&view, &truth, node, t);
            }
        }
    }

    #[test]
    fn compaction_preserves_views_and_visibility() {
        let base = base_line();
        let live = LiveGraph::new(base.clone());
        let extra = [edge(2, 3, 4.0, 3), edge(0, 5, 4.5, 4)];
        live.append(&extra[0]);
        let old_view = live.view();
        live.append(&extra[1]);
        live.compact();
        assert_eq!(live.ingest_stats().compactions, 1);
        assert_eq!(live.ingest_stats().delta_edges, 0);

        // The pre-compaction view still serves its prefix.
        let truth_old = rebuild(&base, &extra[..1]);
        for node in 0..6u32 {
            assert_view_matches(&old_view, &truth_old, node, 100.0);
        }
        // A fresh view serves everything, now from the compacted base.
        let truth_new = rebuild(&base, &extra);
        let new_view = live.view();
        assert_eq!(new_view.epoch(), 5);
        for node in 0..6u32 {
            assert_view_matches(&new_view, &truth_new, node, 100.0);
        }
        // Appends keep working after compaction, with contiguous seqs.
        assert_eq!(live.append(&edge(1, 4, 6.0, 5)), 5);
        assert_eq!(live.view().hist_len_before(1, 10.0), 2);
    }

    #[test]
    fn auto_compaction_triggers_at_threshold() {
        let live = LiveGraph::new(base_line()).with_compact_threshold(2);
        live.append(&edge(0, 1, 4.0, 3));
        assert_eq!(live.ingest_stats().compactions, 0);
        live.append(&edge(0, 2, 5.0, 4));
        let stats = live.ingest_stats();
        assert_eq!(stats.compactions, 1);
        assert_eq!(stats.delta_edges, 0);
        assert_eq!(stats.edges_appended, 2);
    }

    #[test]
    fn from_shared_gives_independent_deltas_over_one_base() {
        let base = Arc::new(base_line());
        let a = LiveGraph::from_shared(Arc::clone(&base));
        let b = LiveGraph::from_shared(Arc::clone(&base));
        a.append(&edge(0, 4, 4.0, 3));
        // a sees its append; b's delta is untouched.
        assert_eq!(a.view().hist_len_before(0, 10.0), 4);
        assert_eq!(b.view().hist_len_before(0, 10.0), 3);
        assert_eq!(a.view().epoch(), 4);
        assert_eq!(b.view().epoch(), 3);
        // Replicating the same edge into b catches it up to a.
        b.append(&edge(0, 4, 4.0, 3));
        assert_eq!(b.view().neighbors_before_vec(0, 10.0), a.view().neighbors_before_vec(0, 10.0));
    }

    #[test]
    fn from_shared_clones_an_unfrozen_base() {
        let mut g = TemporalGraph::with_nodes(4);
        g.insert(&edge(0, 1, 1.0, 0));
        assert!(!g.is_frozen());
        let shared = Arc::new(g);
        let live = LiveGraph::from_shared(Arc::clone(&shared));
        // The shared original stays unfrozen; the live copy serves reads.
        assert!(!shared.is_frozen());
        assert_eq!(live.view().hist_len_before(0, 10.0), 1);
        assert_eq!(live.append(&edge(0, 2, 2.0, 1)), 1);
    }

    #[test]
    fn node_range_grows_with_delta_postings() {
        let live = LiveGraph::new(base_line());
        assert_eq!(live.view().num_nodes(), 6);
        live.append(&edge(0, 9, 4.0, 3));
        let view = live.view();
        assert_eq!(view.num_nodes(), 10);
        assert_eq!(view.hist_len_before(9, 10.0), 1);
        // Unknown node ids past the range read as empty, not a panic.
        assert_eq!(view.hist_len_before(42, 10.0), 0);
        assert_eq!(view.nth_before(42, 10.0, 0), None);
    }

    #[test]
    fn most_recent_window_matches_suffix_of_rebuild() {
        let base = base_line();
        let live = LiveGraph::new(base.clone());
        let extra = [edge(0, 4, 2.5, 3), edge(0, 5, 9.0, 4)];
        for e in &extra {
            live.append(e);
        }
        let truth = rebuild(&base, &extra);
        let view = live.view();
        let full = truth.neighbors_before(0, 100.0);
        for take in 0..=full.len() {
            let mut got = vec![None; take];
            view.most_recent(0, 100.0, take, |slot, e| got[slot] = Some(e));
            let expect: Vec<Option<AdjEntry>> =
                full[full.len() - take..].iter().map(|e| Some(*e)).collect();
            assert_eq!(got, expect, "take={take}");
        }
    }
}
