//! Continuous-time dynamic graph (CTDG) storage and temporal sampling.
//!
//! A CTDG is a stream of timestamped edge interactions (paper §2). This
//! crate provides:
//!
//! * [`EdgeStream`] — the raw chronological interaction list a dataset
//!   produces and a model consumes in batches.
//! * [`TemporalGraph`] — a time-sorted CSR adjacency ("T-CSR", after TGL),
//!   supporting incremental insertion as the stream is replayed, plus edge
//!   deletion for the cache-invalidation extension.
//! * [`LiveGraph`] — streaming ingest: an append-friendly delta-log beside
//!   the frozen T-CSR with periodic compaction, serving epoch-stamped
//!   [`GraphView`] snapshots to concurrent readers.
//! * [`sampler`] — parallel most-recent and uniform temporal neighborhood
//!   samplers upholding the temporal constraint `t_j < t`, generic over
//!   frozen graphs and live views via [`HistorySource`].
//! * [`batch`] — fixed-size chronological batch iteration (batch size 200 in
//!   the paper's inference task).
//! * [`shard`] — immutable node→shard assignment (hash or degree-balanced)
//!   for the partitioned serving engine.
//!
//! Node ids are `u32` and timestamps `f32`, matching the 32-bit values the
//! paper's collision-free 64-bit hash packs together (§4.1).

pub mod batch;
pub mod graph;
pub mod live;
pub mod sampler;
pub mod shard;
pub mod stream;

pub use batch::{BatchIter, EdgeBatch};
pub use graph::TemporalGraph;
pub use live::{GraphView, IngestStats, LiveGraph};
pub use shard::{ShardAssignment, ShardStrategy};
pub use sampler::{
    HistorySource, NeighborhoodBatch, SamplingStrategy, TemporalSampler, INVALID_EDGE,
};
pub use stream::{Edge, EdgeStream};

/// Node identifier (32-bit, per the paper's key-packing scheme).
pub type NodeId = u32;
/// Edge identifier, used to index edge feature rows.
pub type EdgeId = u32;
/// Event timestamp (32-bit float, as in the reference implementation).
pub type Time = f32;
