//! Property-based tests for the temporal graph store and samplers: the
//! temporal constraint, the most-recent window semantics, and the
//! reuse-enabling invariance of §3.2.

use proptest::prelude::*;
use tg_graph::{
    BatchIter, Edge, EdgeStream, NodeId, SamplingStrategy, TemporalGraph, TemporalSampler, Time,
};

/// A random time-sorted edge stream over up to `max_nodes` nodes.
fn stream_strategy(max_nodes: u32, max_edges: usize) -> impl Strategy<Value = EdgeStream> {
    proptest::collection::vec((0..max_nodes, 0..max_nodes, 0u32..50), 1..max_edges).prop_map(
        |triples| {
            let mut t = 0.0f32;
            let edges: Vec<Edge> = triples
                .into_iter()
                .enumerate()
                .map(|(i, (s, d, gap))| {
                    t += gap as f32;
                    Edge { src: s, dst: d, time: t, eid: i as u32 }
                })
                .collect();
            EdgeStream::from_edges(edges)
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn adjacency_is_time_sorted_and_bidirectional(stream in stream_strategy(12, 60)) {
        let g = TemporalGraph::from_stream(&stream);
        prop_assert_eq!(g.num_edges(), stream.len());
        for n in 0..g.num_nodes() as NodeId {
            let adj = g.neighbors(n);
            prop_assert!(adj.windows(2).all(|w| w[0].time <= w[1].time));
            for e in adj {
                // The reverse direction must exist with the same edge id.
                prop_assert!(g.neighbors(e.ngh).iter().any(|r| r.eid == e.eid && r.ngh == n));
            }
        }
    }

    #[test]
    fn sampled_neighbors_respect_the_temporal_constraint(
        stream in stream_strategy(12, 60),
        k in 1usize..6,
        t_frac in 0.0f64..1.2,
    ) {
        let g = TemporalGraph::from_stream(&stream);
        let t = (stream.max_time() as f64 * t_frac) as Time;
        let ns: Vec<NodeId> = (0..12).collect();
        let ts = vec![t; ns.len()];
        let nb = TemporalSampler::most_recent(k).sample(&g, &ns, &ts);
        for i in 0..nb.nodes.len() {
            if nb.is_valid(i) {
                prop_assert!(nb.times[i] < t, "edge time {} !< target {}", nb.times[i], t);
                prop_assert!(nb.dts[i] > 0.0);
            } else {
                prop_assert_eq!(nb.dts[i], 0.0);
            }
        }
    }

    #[test]
    fn most_recent_is_the_suffix_of_the_history(
        stream in stream_strategy(10, 60),
        k in 1usize..6,
    ) {
        let g = TemporalGraph::from_stream(&stream);
        let t = stream.max_time() * 2.0 + 1.0;
        for n in 0..10u32 {
            let nb = TemporalSampler::most_recent(k).sample(&g, &[n], &[t]);
            let hist = g.neighbors_before(n, t);
            let take = hist.len().min(k);
            let expected = &hist[hist.len() - take..];
            for (slot, e) in expected.iter().enumerate() {
                prop_assert_eq!(nb.eids[slot], e.eid);
                prop_assert_eq!(nb.nodes[slot], e.ngh);
            }
            prop_assert_eq!(nb.num_valid(), take);
        }
    }

    #[test]
    fn same_target_same_subgraph_after_later_insertions(
        stream in stream_strategy(10, 50),
        extra in proptest::collection::vec((0u32..10, 0u32..10, 1u32..20), 1..10),
    ) {
        // §3.2: appending strictly-later interactions never changes the
        // sampled subgraph of an existing (node, t) target.
        let mut g = TemporalGraph::from_stream(&stream);
        let sampler = TemporalSampler::most_recent(4);
        let t = stream.max_time() * 0.7;
        let ns: Vec<NodeId> = (0..10).collect();
        let ts = vec![t; ns.len()];
        let before = sampler.sample(&g, &ns, &ts);
        let mut time = stream.max_time() + 1.0;
        for (i, (s, d, gap)) in extra.into_iter().enumerate() {
            time += gap as f32;
            g.insert(&Edge { src: s, dst: d, time, eid: 10_000 + i as u32 });
        }
        let after = sampler.sample(&g, &ns, &ts);
        prop_assert_eq!(before.nodes, after.nodes);
        prop_assert_eq!(before.times, after.times);
        prop_assert_eq!(before.eids, after.eids);
    }

    #[test]
    fn uniform_sampling_stays_within_history(
        stream in stream_strategy(10, 50),
        seed in 0u64..100,
    ) {
        let g = TemporalGraph::from_stream(&stream);
        let t = stream.max_time() * 0.9;
        let sampler = TemporalSampler::new(5, SamplingStrategy::Uniform { seed });
        let ns: Vec<NodeId> = (0..10).collect();
        let nb = sampler.sample(&g, &ns, &[t; 10]);
        for i in 0..nb.nodes.len() {
            if nb.is_valid(i) {
                let target = ns[i / 5];
                prop_assert!(nb.times[i] < t);
                prop_assert!(g
                    .neighbors(target)
                    .iter()
                    .any(|e| e.eid == nb.eids[i]), "sampled edge must exist in history");
            }
        }
    }

    #[test]
    fn batches_partition_the_stream(stream in stream_strategy(12, 80), bs in 1usize..30) {
        let total: usize = BatchIter::new(&stream, bs).map(|b| b.len()).sum();
        prop_assert_eq!(total, stream.len());
        let mut seen = 0usize;
        for b in BatchIter::new(&stream, bs) {
            for e in b.edges {
                prop_assert_eq!(e.eid as usize, seen, "batches must be chronological");
                seen += 1;
            }
            prop_assert!(b.len() <= bs);
        }
    }

    #[test]
    fn deletions_shrink_history(stream in stream_strategy(8, 40), victim in 0usize..40) {
        let mut g = TemporalGraph::from_stream(&stream);
        if victim >= stream.len() { return Ok(()); }
        let e = stream.edges()[victim];
        let before_src = g.degree(e.src);
        prop_assert!(g.delete_edge(e.src, e.dst, e.eid));
        if e.src == e.dst {
            prop_assert_eq!(g.degree(e.src), before_src - 2);
        } else {
            prop_assert_eq!(g.degree(e.src), before_src - 1);
        }
        prop_assert!(!g.neighbors(e.src).iter().any(|x| x.eid == e.eid));
        prop_assert!(!g.neighbors(e.dst).iter().any(|x| x.eid == e.eid));
    }
}
