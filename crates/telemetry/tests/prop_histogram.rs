//! Property tests for the log2-bucketed latency histogram: conservation
//! (count == sum of buckets), quantile error bounds (one bucket's relative
//! error versus the exact sorted-vector quantile), and merge equivalence
//! (merging two histograms == recording both streams into one).

use proptest::prelude::*;
use tg_telemetry::{HistogramSnapshot, LatencyHistogram};

/// Exact nearest-rank quantile of an unsorted sample set.
fn exact_quantile(samples: &[u64], q: f64) -> u64 {
    let mut sorted = samples.to_vec();
    sorted.sort_unstable();
    let rank = (q * sorted.len() as f64).ceil().max(1.0) as usize;
    sorted[rank.min(sorted.len()) - 1]
}

/// The histogram estimate is a bucket's inclusive upper edge, so for a
/// true value `t` the estimate `e` satisfies `t <= e <= max(2t - 1, 0)`.
/// Samples are capped at `2^53` so the bound never saturates and no
/// sum of 200 samples can overflow the `u64` `sum_ns` accumulator.
fn within_one_bucket(estimate: u64, exact: u64) -> bool {
    estimate >= exact && (exact == 0 && estimate == 0 || estimate < 2 * exact.max(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    fn count_equals_bucket_sum_and_sum_ns_is_exact(
        samples in proptest::collection::vec(0u64..(1u64 << 53), 1..200),
    ) {
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        prop_assert_eq!(snap.count(), samples.len() as u64);
        prop_assert_eq!(snap.count(), snap.buckets().iter().sum::<u64>());
        prop_assert_eq!(snap.sum_ns(), samples.iter().sum::<u64>());
    }

    fn quantiles_are_within_one_log_bucket(
        samples in proptest::collection::vec(0u64..(1u64 << 53), 1..200),
        q_raw in 1u32..1000,
    ) {
        let h = LatencyHistogram::new();
        for &s in &samples {
            h.record(s);
        }
        let snap = h.snapshot();
        let q = f64::from(q_raw) / 1000.0;
        let est = snap.quantile_ns(q);
        let exact = exact_quantile(&samples, q);
        prop_assert!(
            within_one_bucket(est, exact),
            "q={} estimate={} exact={}", q, est, exact
        );
    }

    fn merge_equals_recording_both_streams(
        left in proptest::collection::vec(0u64..(1u64 << 53), 0..100),
        right in proptest::collection::vec(0u64..(1u64 << 53), 0..100),
    ) {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for &s in &left {
            a.record(s);
            both.record(s);
        }
        for &s in &right {
            b.record(s);
            both.record(s);
        }
        // Snapshot-side merge.
        let mut merged: HistogramSnapshot = a.snapshot();
        merged.merge(&b.snapshot());
        prop_assert_eq!(merged, both.snapshot());
        // Atomic-side merge agrees.
        a.merge_from(&b);
        prop_assert_eq!(a.snapshot(), merged);
    }
}
