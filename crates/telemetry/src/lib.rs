//! `tg-telemetry`: the workspace's one observability layer.
//!
//! Three pieces, threaded through the whole inference stack:
//!
//! - [`Recorder`] — scoped per-stage spans reproducing the rows of paper
//!   Table 3 (sample / dedup / hash / time-encode / attention / cache
//!   traffic). `Option`-gated: a disabled recorder makes **zero** clock
//!   reads, so production inference pays nothing.
//! - [`LatencyHistogram`] — a lock-free log2-bucketed histogram (fixed
//!   64×u64 memory, atomic increments, mergeable) for *online* p50/p95/p99
//!   without retaining per-request samples.
//! - [`TelemetrySnapshot`] — engine counters, serving counters, embedding
//!   cache and time cache accounting, stage breakdown, and latency
//!   distributions unified into one serde-serializable struct with a
//!   stable JSON schema ([`SCHEMA_VERSION`], guarded by a golden-file test
//!   in CI).
//!
//! The crate sits at the bottom of the dependency graph (serde shim only);
//! `tgat`, `tgopt`, `tg-serve`, and `tg-bench` convert their native
//! counter types into the plain structs defined here.

mod hist;
mod snapshot;
mod span;

pub use hist::{HistogramSnapshot, LatencyHistogram, NUM_BUCKETS};
pub use snapshot::{
    schema_paths, EmbedCacheTelemetry, EngineTelemetry, IngestTelemetry, LatencyTelemetry,
    LayerSweepTelemetry, ServeTelemetry, ShardTelemetry, TelemetrySnapshot, TimeCacheTelemetry,
    SCHEMA_VERSION,
};
pub use span::{OpKind, Recorder, StageSpan};
