//! Per-operation span accounting (reproduces the rows of paper Table 3).

use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// The operations of Algorithm 1 that the breakdown analysis times.
///
/// The baseline engine only exercises `NghLookup`, the two `TimeEncode`
/// variants, and `Attention`; the TGOpt engine additionally reports its
/// dedup/cache overheads. Every engine reports all nine rows (zeros for
/// stages it never runs) so the breakdown schema is identical across
/// engines.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum OpKind {
    NghLookup,
    DedupFilter,
    DedupInvert,
    TimeEncodeZero,
    TimeEncodeDt,
    ComputeKeys,
    CacheLookup,
    CacheStore,
    Attention,
}

impl OpKind {
    /// All kinds, in Table 3's row order.
    pub const ALL: [OpKind; 9] = [
        OpKind::NghLookup,
        OpKind::DedupFilter,
        OpKind::DedupInvert,
        OpKind::TimeEncodeZero,
        OpKind::TimeEncodeDt,
        OpKind::ComputeKeys,
        OpKind::CacheLookup,
        OpKind::CacheStore,
        OpKind::Attention,
    ];

    /// Table 3's label for the operation.
    pub fn label(&self) -> &'static str {
        match self {
            OpKind::NghLookup => "NghLookup",
            OpKind::DedupFilter => "DedupFilter",
            OpKind::DedupInvert => "DedupInvert",
            OpKind::TimeEncodeZero => "TimeEncode (0)",
            OpKind::TimeEncodeDt => "TimeEncode (dt)",
            OpKind::ComputeKeys => "ComputeKeys",
            OpKind::CacheLookup => "CacheLookup",
            OpKind::CacheStore => "CacheStore",
            OpKind::Attention => "attention M",
        }
    }

    /// Stable machine-readable identifier used in the JSON snapshot schema.
    pub fn slug(&self) -> &'static str {
        match self {
            OpKind::NghLookup => "ngh_lookup",
            OpKind::DedupFilter => "dedup_filter",
            OpKind::DedupInvert => "dedup_invert",
            OpKind::TimeEncodeZero => "time_encode_zero",
            OpKind::TimeEncodeDt => "time_encode_dt",
            OpKind::ComputeKeys => "compute_keys",
            OpKind::CacheLookup => "cache_lookup",
            OpKind::CacheStore => "cache_store",
            OpKind::Attention => "attention",
        }
    }
}

/// One row of the serialized per-stage breakdown.
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSpan {
    /// Machine-readable stage identifier ([`OpKind::slug`]).
    pub stage: String,
    /// Table 3's human label ([`OpKind::label`]).
    pub label: String,
    /// Accumulated wall time, nanoseconds.
    pub total_ns: u64,
    /// Number of timed invocations.
    pub count: u64,
}

/// Heap-boxed accumulators; only allocated once timing is requested, so a
/// disabled [`Recorder`] is a single `None` pointer.
#[derive(Clone, Debug, Default)]
struct SpanTable {
    totals: [Duration; OpKind::ALL.len()],
    counts: [u64; OpKind::ALL.len()],
}

/// Accumulated wall time per operation.
///
/// `Option`-gated: [`Recorder::disabled`] holds no table and its
/// [`Recorder::time`] closure runs with **no `Instant::now()` calls at
/// all** — the disabled hot path pays one pointer null-check.
#[derive(Clone, Debug, Default)]
pub struct Recorder {
    inner: Option<Box<SpanTable>>,
}

impl Recorder {
    /// A recorder that actually measures. Disabled recorders
    /// ([`Recorder::disabled`]) skip the clock reads entirely so
    /// production inference pays nothing.
    pub fn enabled() -> Self {
        Self { inner: Some(Box::default()) }
    }

    /// A no-op recorder (zero overhead on the hot path).
    pub fn disabled() -> Self {
        Self::default()
    }

    /// True if timing is active.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Times `f`, attributing its wall time to `kind`. When disabled, `f`
    /// runs immediately — no timestamps are taken.
    #[inline]
    pub fn time<T>(&mut self, kind: OpKind, f: impl FnOnce() -> T) -> T {
        let Some(table) = self.inner.as_deref_mut() else {
            return f();
        };
        let start = Instant::now();
        let out = f();
        table.totals[kind as usize] += start.elapsed();
        table.counts[kind as usize] += 1;
        out
    }

    /// Adds an externally measured duration. Allocates the span table if
    /// this recorder had none (recording data implies wanting it kept).
    pub fn record(&mut self, kind: OpKind, d: Duration) {
        let table = self.inner.get_or_insert_with(Box::default);
        table.totals[kind as usize] += d;
        table.counts[kind as usize] += 1;
    }

    /// Total time attributed to `kind`.
    pub fn total(&self, kind: OpKind) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |t| t.totals[kind as usize])
    }

    /// Number of timed invocations of `kind`.
    pub fn count(&self, kind: OpKind) -> u64 {
        self.inner.as_ref().map_or(0, |t| t.counts[kind as usize])
    }

    /// Sum over all operations.
    pub fn grand_total(&self) -> Duration {
        self.inner.as_ref().map_or(Duration::ZERO, |t| t.totals.iter().sum())
    }

    /// Resets all accumulators, keeping the enabled flag.
    pub fn reset(&mut self) {
        if let Some(table) = self.inner.as_deref_mut() {
            *table = SpanTable::default();
        }
    }

    /// Merges another recorder into this one. Merging measured data into a
    /// disabled recorder allocates its table (the data is not dropped).
    pub fn merge(&mut self, other: &Recorder) {
        let Some(theirs) = other.inner.as_deref() else {
            return;
        };
        let table = self.inner.get_or_insert_with(Box::default);
        for i in 0..table.totals.len() {
            table.totals[i] += theirs.totals[i];
            table.counts[i] += theirs.counts[i];
        }
    }

    /// The per-stage breakdown in Table 3 row order, all nine stages always
    /// present (stable snapshot schema).
    pub fn breakdown(&self) -> Vec<StageSpan> {
        OpKind::ALL
            .iter()
            .map(|k| StageSpan {
                stage: k.slug().to_string(),
                label: k.label().to_string(),
                total_ns: u64::try_from(self.total(*k).as_nanos()).unwrap_or(u64::MAX),
                count: self.count(*k),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enabled_recorder_accumulates() {
        let mut s = Recorder::enabled();
        let v = s.time(OpKind::Attention, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(s.total(OpKind::Attention) >= Duration::from_millis(2));
        assert_eq!(s.count(OpKind::Attention), 1);
        assert_eq!(s.count(OpKind::NghLookup), 0);
    }

    #[test]
    fn disabled_recorder_records_nothing() {
        let mut s = Recorder::disabled();
        s.time(OpKind::CacheStore, || ());
        assert_eq!(s.total(OpKind::CacheStore), Duration::ZERO);
        assert_eq!(s.count(OpKind::CacheStore), 0);
        assert!(!s.is_enabled());
    }

    #[test]
    fn merge_and_reset() {
        let mut a = Recorder::enabled();
        a.record(OpKind::NghLookup, Duration::from_millis(5));
        let mut b = Recorder::enabled();
        b.record(OpKind::NghLookup, Duration::from_millis(3));
        b.record(OpKind::CacheLookup, Duration::from_millis(1));
        a.merge(&b);
        assert_eq!(a.total(OpKind::NghLookup), Duration::from_millis(8));
        assert_eq!(a.grand_total(), Duration::from_millis(9));
        a.reset();
        assert_eq!(a.grand_total(), Duration::ZERO);
        assert!(a.is_enabled());
    }

    #[test]
    fn merging_data_into_disabled_keeps_it() {
        let mut a = Recorder::disabled();
        let mut b = Recorder::enabled();
        b.record(OpKind::Attention, Duration::from_millis(7));
        a.merge(&b);
        assert_eq!(a.total(OpKind::Attention), Duration::from_millis(7));
        // Merging an empty recorder into a disabled one stays zero-cost.
        let mut c = Recorder::disabled();
        c.merge(&Recorder::disabled());
        assert!(!c.is_enabled());
    }

    #[test]
    fn labels_match_table3() {
        assert_eq!(OpKind::Attention.label(), "attention M");
        assert_eq!(OpKind::TimeEncodeZero.label(), "TimeEncode (0)");
        assert_eq!(OpKind::ALL.len(), 9);
    }

    #[test]
    fn breakdown_has_all_stages_in_table3_order() {
        let mut s = Recorder::enabled();
        s.record(OpKind::CacheLookup, Duration::from_micros(3));
        let rows = s.breakdown();
        assert_eq!(rows.len(), 9);
        assert_eq!(rows[0].stage, "ngh_lookup");
        assert_eq!(rows[8].stage, "attention");
        assert_eq!(rows[6].count, 1);
        assert_eq!(rows[6].total_ns, 3_000);
        // Disabled recorders produce the same schema, all zeros.
        let empty = Recorder::disabled().breakdown();
        assert_eq!(empty.len(), 9);
        assert!(empty.iter().all(|r| r.count == 0 && r.total_ns == 0));
    }
}
