//! The unified, serializable telemetry snapshot.
//!
//! One struct carries everything the stack knows about a run: engine
//! counters, serving counters, embedding-cache and time-cache accounting,
//! the Table-3 stage breakdown, and the latency distributions. The JSON
//! shape is frozen ([`SCHEMA_VERSION`]): every field is always present
//! (zeros when a layer was not exercised, e.g. `serve` for an offline
//! bench), and CI diffs the field-path fingerprint ([`schema_paths`])
//! against a committed golden file.

use crate::hist::HistogramSnapshot;
use crate::span::StageSpan;
use serde::{Deserialize, Serialize, Value};

/// Version stamp embedded in every snapshot; bump on any schema change
/// (and regenerate the committed golden fingerprint).
///
/// v3: per-shard sections ([`ShardTelemetry`] under `shards`) and the
/// replicated-frontier counters on [`ServeTelemetry`].
///
/// v4: constraint-tracked invalidation — per-layer sweep bins
/// ([`LayerSweepTelemetry`] under `ingest.per_layer`) and the
/// `store_drops` admission counter on [`EmbedCacheTelemetry`].
pub const SCHEMA_VERSION: u32 = 4;

/// TGOpt engine counters (mirror of `tgopt::EngineCounters`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EngineTelemetry {
    /// Keys probed against the embedding cache.
    pub cache_lookups: u64,
    /// Probes that hit (embeddings reused instead of recomputed).
    pub cache_hits: u64,
    /// Embeddings stored after recomputation.
    pub cache_stores: u64,
    /// Unique targets whose embedding had to be recomputed.
    pub recomputed: u64,
    /// Duplicate targets removed by the dedup filter.
    pub dedup_removed: u64,
    /// Recomputed embeddings not stored (degraded lookup-only mode).
    pub stores_skipped: u64,
}

/// Time-encoding memo cache accounting (§4.2 of the paper).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeCacheTelemetry {
    /// Delta encodings requested.
    pub lookups: u64,
    /// Requests served from memoized rows.
    pub hits: u64,
}

impl TimeCacheTelemetry {
    /// Hit fraction (0.0 before the first lookup — never NaN).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            0.0
        } else {
            self.hits as f64 / self.lookups as f64
        }
    }
}

/// Embedding-cache (`LayerCaches`) occupancy and eviction accounting.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct EmbedCacheTelemetry {
    /// Cached embedding rows across all layers.
    pub items: u64,
    /// Bytes held by cached rows.
    pub bytes: u64,
    /// Configured row capacity across all layers.
    pub limit: u64,
    /// FIFO evictions performed so far.
    pub evictions: u64,
    /// Rows dropped at admission because a single store call exceeded the
    /// whole item limit (never inserted, not counted as stores).
    pub store_drops: u64,
}

/// Serving-layer counters (mirror of `tg_serve::ServeStats`).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ServeTelemetry {
    /// Submission attempts not shed by backpressure.
    pub submitted: u64,
    /// Requests shed with `Overloaded`.
    pub rejected_overload: u64,
    /// Requests rejected with `DeadlineExceeded`.
    pub rejected_deadline: u64,
    /// Requests completed with an embedding row.
    pub completed: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Requests that entered a micro-batch (post-deadline-filter).
    pub batched_requests: u64,
    /// Engine rows actually computed/looked up after cross-request dedup.
    pub unique_rows: u64,
    /// Micro-batches run in degraded (store-skipping) mode.
    pub degraded_batches: u64,
    /// Sampled layer-1 frontier neighbor reads (sharded servers only;
    /// zero for a single-shard deployment).
    pub frontier_reads: u64,
    /// Frontier reads that hit a node owned by another shard — the
    /// replicated-frontier traffic a smarter placement could cut.
    pub frontier_remote: u64,
}

/// One cache layer's invalidation-sweep bin: how many entries streaming
/// inserts removed from it versus revalidated in place via their
/// recorded temporal-subgraph fingerprints.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LayerSweepTelemetry {
    /// Cache layer this bin covers (1-based); the last bin folds in every
    /// deeper layer.
    pub layer: u64,
    /// Entries this layer's sweeps removed as potentially stale.
    pub removed: u64,
    /// At-risk entries proven fresh by a submit-time sweep. For layers
    /// >= 2 these are exactly the entries the pre-fingerprint
    /// conservative `t > te` sweep would have dropped.
    pub retained: u64,
}

/// Streaming-ingest accounting: the delta-log write path plus the
/// targeted cache-invalidation sweep it drives (zeros for a frozen-graph
/// run).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct IngestTelemetry {
    /// Edges appended to the live graph's delta log.
    pub edges_appended: u64,
    /// Delta-to-CSR compactions performed.
    pub compactions: u64,
    /// Edges currently waiting in the delta log (not yet compacted).
    pub delta_edges: u64,
    /// Cached entries dropped by targeted invalidation (submit-time
    /// sweeps plus post-wave replays).
    pub entries_invalidated: u64,
    /// Cached entries examined by a submit-time sweep and proven fresh —
    /// the savings over sledgehammer per-node invalidation.
    pub entries_retained: u64,
    /// Per-layer sweep bins in layer order (empty for a frozen-graph
    /// run; a live server emits one bin per tracked layer).
    pub per_layer: Vec<LayerSweepTelemetry>,
}

impl IngestTelemetry {
    /// Fraction of sweep-examined entries retained (0.0 before the first
    /// sweep — never NaN).
    pub fn retention_rate(&self) -> f64 {
        let examined = self.entries_invalidated + self.entries_retained;
        if examined == 0 {
            0.0
        } else {
            self.entries_retained as f64 / examined as f64
        }
    }
}

/// One shard's slice of a partitioned serving deployment: queue depth,
/// admission/completion counters, its private cache's accounting, the
/// replicated-frontier traffic it observed, and its latency
/// distributions (each shard's worker histograms are folded into one via
/// `HistogramSnapshot::merge`). Empty (`shards: []`) for an unsharded
/// server.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShardTelemetry {
    /// Shard index within the router (0-based).
    pub shard: u64,
    /// Requests admitted but not yet batched at snapshot time.
    pub queue_depth: u64,
    /// Submission attempts routed to this shard.
    pub submitted: u64,
    /// Requests this shard completed with an embedding row.
    pub completed: u64,
    /// Requests this shard shed with `Overloaded`.
    pub rejected_overload: u64,
    /// Requests this shard rejected with `DeadlineExceeded`.
    pub rejected_deadline: u64,
    /// Micro-batches this shard executed.
    pub batches: u64,
    /// Keys probed against this shard's private embedding cache.
    pub cache_lookups: u64,
    /// Probes that hit (the shard-local hit rate's numerator).
    pub cache_hits: u64,
    /// Rows resident in this shard's cache at snapshot time.
    pub cache_items: u64,
    /// Sampled frontier neighbor reads this shard performed.
    pub frontier_reads: u64,
    /// Frontier reads hitting nodes owned by another shard.
    pub frontier_remote: u64,
    /// End-to-end submit-to-fulfill latency of this shard's requests.
    pub end_to_end: HistogramSnapshot,
    /// This shard's per-worker wave histograms merged into one.
    pub wave: HistogramSnapshot,
}

impl ShardTelemetry {
    /// Shard-local embedding-cache hit fraction (0.0 before the first
    /// lookup — never NaN).
    pub fn hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// Online latency distributions (log2-bucketed, nanoseconds).
#[derive(Clone, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencyTelemetry {
    /// End-to-end submit-to-fulfill latency across all completed requests.
    pub end_to_end: HistogramSnapshot,
    /// Per-worker wave (micro-batch) processing time, one entry per worker.
    pub workers: Vec<HistogramSnapshot>,
}

/// Everything the stack knows about a run, in one stable-schema struct.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetrySnapshot {
    /// Schema version ([`SCHEMA_VERSION`]); readers should reject others.
    pub schema_version: u32,
    /// Per-stage Table-3 breakdown, all nine stages in row order.
    pub stages: Vec<StageSpan>,
    /// TGOpt engine counters (zeros for a baseline-only run).
    pub engine: EngineTelemetry,
    /// Time-encode memo cache accounting.
    pub time_cache: TimeCacheTelemetry,
    /// Embedding cache occupancy/evictions.
    pub embed_cache: EmbedCacheTelemetry,
    /// Serving-layer counters (zeros for an offline bench).
    pub serve: ServeTelemetry,
    /// Streaming-ingest accounting (zeros for a frozen-graph run).
    pub ingest: IngestTelemetry,
    /// Per-shard sections of a partitioned deployment, in shard order
    /// (empty for a single/unsharded server). The flat sections above
    /// hold the merged totals across shards.
    pub shards: Vec<ShardTelemetry>,
    /// Latency distributions (empty histograms when not serving).
    pub latency: LatencyTelemetry,
}

impl TelemetrySnapshot {
    /// An empty snapshot with the current [`SCHEMA_VERSION`] stamped.
    pub fn new() -> Self {
        Self { schema_version: SCHEMA_VERSION, ..Default::default() }
    }
}

/// Flattens a serialized [`Value`] tree into its sorted set of field
/// paths with leaf type names (`latency.end_to_end.buckets[]: integer`).
/// Two snapshots with the same schema produce identical path sets
/// regardless of counter values — this is the fingerprint CI diffs
/// against the committed golden file to detect schema drift.
pub fn schema_paths(value: &Value) -> Vec<String> {
    let mut out = Vec::new();
    walk(value, String::new(), &mut out);
    out.sort();
    out.dedup();
    out
}

fn walk(value: &Value, path: String, out: &mut Vec<String>) {
    match value {
        Value::Map(fields) => {
            for (k, v) in fields {
                let child = if path.is_empty() { k.clone() } else { format!("{path}.{k}") };
                walk(v, child, out);
            }
        }
        Value::Seq(items) => {
            if items.is_empty() {
                out.push(format!("{path}[]"));
            }
            for v in items {
                walk(v, format!("{path}[]"), out);
            }
        }
        Value::Null => out.push(format!("{path}: null")),
        Value::Bool(_) => out.push(format!("{path}: bool")),
        Value::U64(_) | Value::I64(_) => out.push(format!("{path}: integer")),
        Value::F64(_) => out.push(format!("{path}: float")),
        Value::Str(_) => out.push(format!("{path}: string")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::{OpKind, Recorder};

    fn populated() -> TelemetrySnapshot {
        let mut rec = Recorder::enabled();
        rec.record(OpKind::Attention, std::time::Duration::from_micros(12));
        let hist = crate::LatencyHistogram::new();
        hist.record(1_234);
        hist.record(987_654);
        TelemetrySnapshot {
            schema_version: SCHEMA_VERSION,
            stages: rec.breakdown(),
            engine: EngineTelemetry { cache_lookups: 10, cache_hits: 7, ..Default::default() },
            time_cache: TimeCacheTelemetry { lookups: 5, hits: 2 },
            embed_cache: EmbedCacheTelemetry {
                items: 3,
                bytes: 4096,
                limit: 100,
                evictions: 1,
                store_drops: 2,
            },
            serve: ServeTelemetry { submitted: 9, completed: 8, rejected_deadline: 1, ..Default::default() },
            ingest: IngestTelemetry {
                edges_appended: 6,
                entries_invalidated: 2,
                per_layer: vec![
                    LayerSweepTelemetry { layer: 1, removed: 2, retained: 5 },
                    LayerSweepTelemetry { layer: 2, removed: 0, retained: 9 },
                ],
                ..Default::default()
            },
            shards: vec![ShardTelemetry {
                shard: 0,
                submitted: 9,
                completed: 8,
                cache_lookups: 10,
                cache_hits: 7,
                frontier_reads: 40,
                frontier_remote: 11,
                end_to_end: hist.snapshot(),
                wave: hist.snapshot(),
                ..Default::default()
            }],
            latency: LatencyTelemetry {
                end_to_end: hist.snapshot(),
                workers: vec![hist.snapshot(), Default::default()],
            },
        }
    }

    #[test]
    fn snapshot_round_trips_through_json() {
        let snap = populated();
        let json = serde_json::to_string(&snap).unwrap();
        let back: TelemetrySnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn schema_paths_ignore_values_but_not_shape() {
        // A fresh snapshot needs at least one stage row and one worker
        // histogram for the seq element paths to materialize.
        let mut fresh = TelemetrySnapshot::new();
        fresh.stages = Recorder::disabled().breakdown();
        fresh.latency.workers.push(Default::default());
        fresh.shards.push(Default::default());
        fresh.ingest.per_layer.push(Default::default());
        let pa = schema_paths(&serde::to_value(&populated()).unwrap());
        let pb = schema_paths(&serde::to_value(&fresh).unwrap());
        assert_eq!(pa, pb);
    }

    #[test]
    fn missing_fields_fail_round_trip() {
        let snap = populated();
        let json = serde_json::to_string(&snap).unwrap();
        let pruned = json.replacen("\"schema_version\"", "\"schema_version_x\"", 1);
        assert!(serde_json::from_str::<TelemetrySnapshot>(&pruned).is_err());
    }

    #[test]
    fn time_cache_hit_rate_never_nan() {
        assert_eq!(TimeCacheTelemetry::default().hit_rate(), 0.0);
        let t = TimeCacheTelemetry { lookups: 4, hits: 1 };
        assert!((t.hit_rate() - 0.25).abs() < 1e-12);
    }
}
