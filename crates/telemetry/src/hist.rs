//! Lock-free log2-bucketed latency histogram.
//!
//! Fixed memory (64 + 2 `u64` atomics), wait-free `fetch_add` recording,
//! mergeable snapshots — the online replacement for sorting a retained
//! per-request latency vector. Bucket `b` (for `b >= 1`) holds values in
//! `[2^(b-1), 2^b)` nanoseconds; bucket 0 holds zero. Quantile estimates
//! report the bucket's inclusive upper edge, so an estimate `e` of a true
//! quantile `t` satisfies `t <= e < 2·t` (one log-bucket's relative
//! error) for every `t < 2^62`.

use serde::{de, Deserialize, Deserializer, Serialize, Serializer, Value};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of log2 buckets: one per possible bit-width of a `u64` sample.
pub const NUM_BUCKETS: usize = 64;

/// Bucket holding `ns`: zero maps to bucket 0, otherwise the value's
/// bit-width, saturating into the last bucket.
#[inline]
fn bucket_index(ns: u64) -> usize {
    (64 - ns.leading_zeros() as usize).min(NUM_BUCKETS - 1)
}

/// Inclusive upper edge of `bucket` (what quantile estimates report).
fn bucket_upper_edge(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else if bucket >= NUM_BUCKETS - 1 {
        u64::MAX
    } else {
        (1u64 << bucket) - 1
    }
}

/// Shared online latency accounting. Record from any thread; read through
/// [`LatencyHistogram::snapshot`].
///
/// All atomics are statistics counters bumped with `Relaxed` `fetch_add`
/// (never control signals, never load-then-store), matching the L6/L8
/// counter discipline used by `ServeCounters`.
#[derive(Debug)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum_ns: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_ns: AtomicU64::new(0),
        }
    }

    /// Records one sample of `ns` nanoseconds. Wait-free; callable
    /// concurrently from any number of threads.
    #[inline]
    pub fn record(&self, ns: u64) {
        self.buckets[bucket_index(ns)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_ns.fetch_add(ns, Ordering::Relaxed);
    }

    /// A point-in-time copy of every bucket. Concurrent recording makes a
    /// snapshot consistent with *some* prefix of each thread's records
    /// (counters are monotone), not an instantaneous cut.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; NUM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(self.buckets.iter()) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum_ns: self.sum_ns.load(Ordering::Relaxed),
        }
    }

    /// Folds a point-in-time copy of `other` into this histogram
    /// (per-worker histograms merging into a global one).
    pub fn merge_from(&self, other: &LatencyHistogram) {
        self.merge_snapshot(&other.snapshot());
    }

    /// Folds an already-taken snapshot into this histogram.
    pub fn merge_snapshot(&self, snap: &HistogramSnapshot) {
        for (dst, &src) in self.buckets.iter().zip(snap.buckets.iter()) {
            if src != 0 {
                dst.fetch_add(src, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(snap.count, Ordering::Relaxed);
        self.sum_ns.fetch_add(snap.sum_ns, Ordering::Relaxed);
    }
}

/// An owned, mergeable, serializable copy of a [`LatencyHistogram`].
///
/// Invariant (checked by the property tests): `count` equals the sum of
/// `buckets`, and `sum_ns` is the sum of recorded samples.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct HistogramSnapshot {
    buckets: [u64; NUM_BUCKETS],
    count: u64,
    sum_ns: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        Self { buckets: [0; NUM_BUCKETS], count: 0, sum_ns: 0 }
    }
}

impl HistogramSnapshot {
    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of all recorded samples, nanoseconds.
    pub fn sum_ns(&self) -> u64 {
        self.sum_ns
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Per-bucket counts (bucket `b >= 1` holds `[2^(b-1), 2^b)` ns).
    pub fn buckets(&self) -> &[u64; NUM_BUCKETS] {
        &self.buckets
    }

    /// Mean sample, nanoseconds (0 when empty — never a division by zero).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ns as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile estimate in nanoseconds for `q` in `(0, 1]`:
    /// the upper edge of the bucket containing the ceil-rank sample, hence
    /// within one log-bucket's relative error (`< 2x`) of the exact
    /// sorted-vector quantile. Returns 0 when empty.
    pub fn quantile_ns(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = (q.clamp(0.0, 1.0) * self.count as f64).ceil().max(1.0);
        let mut seen = 0.0;
        for (b, &n) in self.buckets.iter().enumerate() {
            seen += n as f64;
            if seen >= rank {
                return bucket_upper_edge(b);
            }
        }
        bucket_upper_edge(NUM_BUCKETS - 1)
    }

    /// Median estimate, nanoseconds.
    pub fn p50_ns(&self) -> u64 {
        self.quantile_ns(0.50)
    }

    /// 95th-percentile estimate, nanoseconds.
    pub fn p95_ns(&self) -> u64 {
        self.quantile_ns(0.95)
    }

    /// 99th-percentile estimate, nanoseconds.
    pub fn p99_ns(&self) -> u64 {
        self.quantile_ns(0.99)
    }

    /// Adds `other`'s samples to this snapshot. Equivalent to having
    /// recorded both streams into one histogram (checked by property test).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (dst, &src) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *dst += src;
        }
        self.count += other.count;
        self.sum_ns += other.sum_ns;
    }
}

// Manual serde impls: the shim's derive does not handle `[u64; 64]`
// fields, and the wire shape (a plain `buckets` array) is part of the
// frozen snapshot schema.

impl Serialize for HistogramSnapshot {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        let buckets = Value::Seq(self.buckets.iter().map(|&b| Value::U64(b)).collect());
        serializer.serialize_value(Value::Map(vec![
            ("buckets".to_string(), buckets),
            ("count".to_string(), Value::U64(self.count)),
            ("sum_ns".to_string(), Value::U64(self.sum_ns)),
        ]))
    }
}

impl<'de> Deserialize<'de> for HistogramSnapshot {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = deserializer.take_value()?;
        let Value::Map(mut fields) = value else {
            return Err(de::Error::custom("HistogramSnapshot: expected a map"));
        };
        let buckets_vec: Vec<u64> = serde::take_field(&mut fields, "buckets")
            .map_err(|e| de::Error::custom(format!("HistogramSnapshot: {e}")))?;
        if buckets_vec.len() != NUM_BUCKETS {
            return Err(de::Error::custom(format!(
                "HistogramSnapshot: expected {NUM_BUCKETS} buckets, got {}",
                buckets_vec.len()
            )));
        }
        let mut buckets = [0u64; NUM_BUCKETS];
        buckets.copy_from_slice(&buckets_vec);
        let count: u64 = serde::take_field(&mut fields, "count")
            .map_err(|e| de::Error::custom(format!("HistogramSnapshot: {e}")))?;
        let sum_ns: u64 = serde::take_field(&mut fields, "sum_ns")
            .map_err(|e| de::Error::custom(format!("HistogramSnapshot: {e}")))?;
        Ok(Self { buckets, count, sum_ns })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges_bracket_samples() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        for b in 1..NUM_BUCKETS - 1 {
            let lo = 1u64 << (b - 1);
            let hi = bucket_upper_edge(b);
            assert_eq!(bucket_index(lo), b);
            assert_eq!(bucket_index(hi), b);
            assert!(hi < 2 * lo);
        }
    }

    #[test]
    fn record_snapshot_quantiles() {
        let h = LatencyHistogram::new();
        for ns in [100u64, 200, 400, 800, 100_000] {
            h.record(ns);
        }
        let s = h.snapshot();
        assert_eq!(s.count(), 5);
        assert_eq!(s.sum_ns(), 101_500);
        // p50 rank = 3 -> sample 400 -> bucket upper edge 511.
        assert_eq!(s.p50_ns(), 511);
        // p99 rank = 5 -> sample 100_000 (bucket 17: [65536, 131072)).
        assert_eq!(s.p99_ns(), (1u64 << 17) - 1);
        let exact_p99 = 100_000u64;
        assert!(s.p99_ns() >= exact_p99 && s.p99_ns() < 2 * exact_p99);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p50_ns(), 0);
        assert_eq!(s.mean_ns(), 0.0);
    }

    #[test]
    fn merge_equals_recording_both_streams() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        let both = LatencyHistogram::new();
        for ns in [1u64, 7, 300] {
            a.record(ns);
            both.record(ns);
        }
        for ns in [2u64, 9_000] {
            b.record(ns);
            both.record(ns);
        }
        let mut merged = a.snapshot();
        merged.merge(&b.snapshot());
        assert_eq!(merged, both.snapshot());
        // Atomic-side merge agrees with the snapshot-side merge.
        a.merge_from(&b);
        assert_eq!(a.snapshot(), merged);
    }

    #[test]
    fn serde_round_trip_preserves_everything() {
        let h = LatencyHistogram::new();
        for ns in [0u64, 1, 5, 1_000_000, u64::MAX] {
            h.record(ns);
        }
        let snap = h.snapshot();
        let json = serde_json::to_string(&snap).unwrap();
        let back: HistogramSnapshot = serde_json::from_str(&json).unwrap();
        assert_eq!(back, snap);
    }

    #[test]
    fn truncated_buckets_are_rejected() {
        let json = r#"{"buckets":[1,2,3],"count":6,"sum_ns":6}"#;
        assert!(serde_json::from_str::<HistogramSnapshot>(&json).is_err());
    }
}
