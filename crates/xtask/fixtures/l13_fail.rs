//! L13 fail fixture: calls with transitive effects made while a guard is
//! live — a blocking `join` two frames down, a re-acquisition of the held
//! lock, and (under a manifest declaring `delta` in `[lock-held]
//! no_alloc`) a transitive allocation.

struct Pool {
    state: Mutex<Vec<u64>>,
    delta: Mutex<u64>,
    handle: Handle,
    buf: Vec<u64>,
}

impl Pool {
    fn drain(&self) {
        let g = self.state.lock();
        self.wait_for_worker();
        drop(g);
    }

    fn wait_for_worker(&self) {
        self.handle.join();
    }

    fn reenter(&self) {
        let g = self.state.lock();
        self.locked_len();
        drop(g);
    }

    fn locked_len(&self) -> usize {
        let g = self.state.lock();
        let n = g.len();
        drop(g);
        n
    }

    fn record(&self) {
        let g = self.delta.lock();
        self.grow();
        drop(g);
    }

    fn grow(&self) {
        self.buf.push(1);
    }
}
