//! L15 pass fixture: every unsafe construct carries its soundness
//! argument — same line or alone on the line above.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p } // safety: callers pass a pointer into a live, non-empty buffer
}

// safety: Wrapper owns its buffer exclusively; no thread-affine state
unsafe impl Send for Wrapper {}
