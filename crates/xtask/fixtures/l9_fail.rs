//! L9 fail fixture: `embed_wave` is a hot-path root, and both of its
//! transitive callees allocate per call — a capacity'd Vec, an amortized
//! `push`, and a `format!` String — with no `// alloc-ok:` reasons.

// hot-path-root
pub fn embed_wave(xs: &mut [f32]) -> String {
    let idx = gather(xs);
    score(idx, xs)
}

fn gather(xs: &[f32]) -> Vec<usize> {
    let mut idx = Vec::with_capacity(xs.len());
    for (i, _) in xs.iter().enumerate() {
        idx.push(i);
    }
    idx
}

fn score(idx: Vec<usize>, xs: &[f32]) -> String {
    format!("{}:{}", idx.len(), xs.len())
}
