//! L1 pass fixture: library code that handles errors without panicking.
//! Asserts, test-module panics, and annotated sites are all permitted.

/// Parses a positive count, surfacing failure as an error value.
pub fn parse_count(text: &str) -> Result<usize, String> {
    let n: usize = text.trim().parse().map_err(|e| format!("bad count: {e}"))?;
    if n == 0 {
        return Err("count must be positive".to_string());
    }
    Ok(n)
}

/// Contract checks are not findings: they document caller obligations.
pub fn halve(n: usize) -> usize {
    assert!(n % 2 == 0, "halve expects an even number");
    debug_assert!(n < 1 << 40);
    n / 2
}

/// Mentioning .unwrap() in a comment or "panic! text" in a string is fine.
pub fn describe() -> &'static str {
    "never call panic! lightly"
}

pub fn last_resort() -> u8 {
    [1u8, 2].into_iter().max().unwrap() // lint: allow(panic, non-empty array)
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_unwrap_freely() {
        let v: Result<u8, ()> = Ok(3);
        assert_eq!(v.unwrap(), 3);
        if false {
            panic!("test-only panic is exempt");
        }
    }
}
