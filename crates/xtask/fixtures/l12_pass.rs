//! L12 pass fixture: every variant is both constructed somewhere and
//! matched somewhere.

pub enum TgError {
    Parse { message: String },
    Overloaded { capacity: usize },
}

pub fn admit(n: usize) -> Result<(), TgError> {
    if n > 8 {
        return Err(TgError::Overloaded { capacity: 8 });
    }
    Err(TgError::Parse { message: String::new() })
}

pub fn retryable(e: &TgError) -> bool {
    match e {
        TgError::Overloaded { .. } => true,
        TgError::Parse { .. } => false,
    }
}
