//! L6 fail fixture: a Relaxed store and a Relaxed load of the `closed`
//! control flag with no justification (two findings), and a load-then-
//! store on `count` that should be a single `compare_exchange` (one
//! finding).

pub struct Queue {
    closed: AtomicBool,
    count: AtomicUsize,
}

impl Queue {
    pub fn close(&self) {
        self.closed.store(true, Ordering::Relaxed);
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Relaxed)
    }

    pub fn reset_if_full(&self, cap: usize) {
        let n = self.count.load(Ordering::Acquire);
        if n >= cap {
            self.count.store(0, Ordering::Release);
        }
    }
}
