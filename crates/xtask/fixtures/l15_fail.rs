//! L15 fail fixture: unsafe without a `// safety:` justification — a
//! block, an impl, and a fn.

pub fn read_first(p: *const u8) -> u8 {
    unsafe { *p }
}

unsafe impl Send for Wrapper {}

unsafe fn raw_len(p: *const u8) -> usize {
    0
}
