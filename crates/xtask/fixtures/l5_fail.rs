//! L5 fail fixture: `store` takes `fifo` then `state`, `drain` takes
//! `state` then `fifo` — a lock-order cycle (flagged at both closing
//! edges) — and `rebalance` holds two guards of the same `shards` lock
//! (a self-edge).

impl Cache {
    pub fn store(&self) {
        let mut fifo = self.fifo.lock();
        let mut state = self.state.lock();
        state.push(fifo.pop_front());
    }

    pub fn drain(&self) {
        let mut state = self.state.lock();
        let mut fifo = self.fifo.lock();
        fifo.extend(state.drain(..));
    }

    pub fn rebalance(&self) {
        let mut a = self.shards[0].write();
        let mut b = self.shards[1].write();
        b.extend(a.drain());
    }
}
