//! L8 pass fixture: counters stay private; multi-counter reads go
//! through `snapshot()` (exempt by name), and other getters either read
//! one counter or delegate to the snapshot.

pub struct Counters {
    hits: AtomicU64,
    lookups: AtomicU64,
}

impl Counters {
    pub fn snapshot(&self) -> (u64, u64) {
        (self.hits.load(Ordering::Relaxed), self.lookups.load(Ordering::Relaxed))
    }

    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    pub fn hit_rate(&self) -> f64 {
        let (hits, lookups) = self.snapshot();
        hits as f64 / lookups.max(1) as f64
    }
}
