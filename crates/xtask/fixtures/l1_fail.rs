//! L1 fail fixture: four panic sites in non-test library code.

pub fn read_config(path: &str) -> String {
    std::fs::read_to_string(path).unwrap()
}

pub fn field(line: &str) -> f32 {
    line.split(',').next().expect("row has a field").parse().unwrap_or(0.0)
}

pub fn dispatch(kind: u8) -> &'static str {
    match kind {
        0 => "cache",
        1 => "dedup",
        2 => panic!("unknown kind"),
        _ => unreachable!(),
    }
}
