//! L11 fail fixture: a NaN-panicking comparator, a NaN-inconsistent
//! sort, and a float sum in hash-iteration order.

use rustc_hash::FxHashMap;

pub fn pick(a: f32, b: f32) -> std::cmp::Ordering {
    a.partial_cmp(&b).unwrap()
}

pub fn order(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
}

pub fn total(m: &FxHashMap<u64, f32>) -> f32 {
    m.values().sum::<f32>()
}
