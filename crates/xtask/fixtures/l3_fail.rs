//! L3 fail fixture: SipHash std maps on a hot path (one grouped import,
//! one fully qualified use).

use std::collections::{HashMap, VecDeque};

pub struct Cache {
    table: HashMap<u64, f32>,
    fifo: VecDeque<u64>,
}

pub fn dedup_nodes(nodes: &[u32]) -> Vec<u32> {
    let mut seen = std::collections::HashSet::new();
    nodes.iter().copied().filter(|n| seen.insert(*n)).collect()
}
