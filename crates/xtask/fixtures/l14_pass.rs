//! L14 pass fixture: every wait on the serve path is bounded — by a timed
//! variant, or by a `// bounded-by:` protocol argument.

// hot-path-root(serve)
pub fn serve_loop(rx: &Receiver<u64>) -> u64 {
    let tick = rx.recv_timeout(TICK_MS);
    let job = rx.recv(); // bounded-by: producer sends a shutdown token before closing the channel
    dispatch(tick, job)
}

fn dispatch(tick: u64, job: u64) -> u64 {
    tick.saturating_add(job)
}
