//! L14 fail fixture: unbounded waits reachable from the serve root — one
//! directly in the root, one two calls down.

// hot-path-root(serve)
pub fn serve_loop(rx: &Receiver<u64>) -> u64 {
    let job = rx.recv();
    dispatch(job)
}

fn dispatch(job: u64) -> u64 {
    collect_side(job)
}

fn collect_side(job: u64) -> u64 {
    let side = SIDE_RX.recv();
    job.saturating_add(side)
}
