//! L5 pass fixture: every function that takes both locks takes `fifo`
//! before `shards`, so the acquisition graph has one edge and no cycle.

pub struct Cache {
    fifo: Mutex<VecDeque<u64>>,
    shards: [RwLock<FxHashMap<u64, Vec<f32>>>; 4],
}

impl Cache {
    pub fn evict(&self) {
        let mut fifo = self.fifo.lock();
        let mut shard = self.shards[0].write();
        if let Some(key) = fifo.pop_front() {
            shard.remove(&key);
        }
    }

    pub fn export(&self) -> Vec<u64> {
        let fifo = self.fifo.lock();
        let shard = self.shards[1].read();
        fifo.iter().filter(|k| shard.contains_key(k)).copied().collect()
    }

    pub fn lookup(&self, key: u64) -> Option<Vec<f32>> {
        let shard = self.shards[2].read();
        shard.get(&key).cloned()
    }
}
