//! L2 fail fixture: four narrowing casts without annotations.

pub fn mean(sum: f64, count: usize) -> f32 {
    (sum / count as f64) as f32
}

pub fn bucket(key: u64) -> u32 {
    key as u32
}

pub fn index_of(dt: f32, frac: f64) -> (usize, usize) {
    (dt as usize, frac.round() as usize)
}
