//! L3 pass fixture: hot-path code on FxHashMap, with the std Entry API
//! (an accessor type, not a hasher choice) and non-hash std collections.

use std::collections::hash_map::Entry;
use std::collections::VecDeque;

pub struct Cache {
    table: rustc_hash::FxHashMap<u64, f32>,
    fifo: VecDeque<u64>,
}

impl Cache {
    pub fn upsert(&mut self, key: u64, value: f32) {
        match self.table.entry(key) {
            Entry::Occupied(mut e) => *e.get_mut() = value,
            Entry::Vacant(v) => {
                v.insert(value);
                self.fifo.push_back(key);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    /// Tests may use std maps: assertion readability beats hash speed.
    #[test]
    fn std_map_in_tests_is_fine() {
        let mut m = std::collections::HashMap::new();
        m.insert(1u8, 2u8);
        assert_eq!(m[&1], 2);
    }
}
