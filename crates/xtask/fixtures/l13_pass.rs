//! L13 pass fixture: critical sections either stay effect-free, hoist the
//! effectful call past the guard drop, or carry a reasoned allow.

struct Pool {
    state: Mutex<Vec<u64>>,
    handle: Handle,
}

impl Pool {
    fn drain(&self) -> u64 {
        let g = self.state.lock();
        let v = g.len() as u64;
        drop(g);
        self.fill(v) // guard dropped before the allocating call
    }

    fn fill(&self, v: u64) -> u64 {
        let mut buf = Vec::with_capacity(4);
        buf.push(v);
        v
    }

    fn drain_on_shutdown(&self) {
        let g = self.state.lock();
        self.wait_worker(); // lint: allow(lock-held-effects, shutdown path; the worker has already exited when this lock is taken)
        drop(g);
    }

    fn wait_worker(&self) {
        self.handle.join();
    }
}
