//! L12 fail fixture: `Overloaded` is constructed but nothing ever
//! matches it (callers can only stringify the error, never shed load on
//! it), and `Spare` is matched in one place but never constructed.

pub enum TgError {
    Parse { message: String },
    Overloaded { capacity: usize },
    Spare,
}

pub fn admit(n: usize) -> Result<(), TgError> {
    if n > 8 {
        return Err(TgError::Overloaded { capacity: 8 });
    }
    Ok(())
}

pub fn mk_parse() -> TgError {
    TgError::Parse { message: String::new() }
}

pub fn is_parse(e: &TgError) -> bool {
    matches!(e, TgError::Parse { .. })
}

pub fn is_spare(e: &TgError) -> bool {
    matches!(e, TgError::Spare)
}
