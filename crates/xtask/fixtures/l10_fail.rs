//! L10 fail fixture: the serve root reaches an `unwrap`, a `panic!`, and
//! an `expect` two calls deep — each one a request-killing panic site.

// hot-path-root(serve)
pub fn handle_request(req: &[u8]) -> u32 {
    let v = decode(req);
    seal(v)
}

fn decode(req: &[u8]) -> u32 {
    let b = req.first().unwrap();
    if *b > 9 {
        panic!("bad header");
    }
    u32::from(*b)
}

fn seal(v: u32) -> u32 {
    checked(v).expect("must fit")
}

fn checked(v: u32) -> Option<u32> {
    v.checked_mul(2)
}

pub fn offline_tool(xs: &[u32]) -> u32 {
    xs.iter().copied().max().unwrap() // unreachable from the serve root
}
