//! L7 fail fixture: `run_once` holds the `plan` guard across
//! `embed_batch` (serializing every other worker for the whole matmul),
//! and `consume` blocks on channel `recv` while holding the `rx` guard.

impl Worker {
    pub fn run_once(&self) {
        let guard = self.plan.lock();
        self.engine.embed_batch(&guard.nodes, &guard.times);
    }

    pub fn consume(&self) {
        let chan = self.rx.lock();
        let wave = chan.recv();
        self.handle(wave);
    }
}
