//! L4 fail fixture: two public mutators of shared cache state with doc
//! comments but no `# Invariants` section.

pub struct Table {
    shard: std::sync::RwLock<Vec<u64>>,
    count: std::sync::atomic::AtomicUsize,
}

impl Table {
    /// Appends a key to the shared shard.
    pub fn push(&self, key: u64) {
        self.shard.write().unwrap().push(key); // lint: allow(panic, fixture)
        self.count.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Drops every entry.
    pub fn clear(&mut self) {
        self.count.store(0, std::sync::atomic::Ordering::Relaxed);
    }
}
