//! L7 pass fixture: expensive calls run only after every guard is dead —
//! dropped explicitly, copied out of a statement temporary, or the call
//! carries an `allow(lock-across)` annotation stating the invariant.

impl Worker {
    pub fn run_once(&self) {
        let guard = self.plan.lock();
        let batch = guard.next_batch();
        drop(guard);
        self.engine.embed_batch(&batch.nodes, &batch.times);
    }

    pub fn snapshot_depth(&self) -> usize {
        let depth = *self.depth.lock();
        std::fs::write("depth.txt", depth.to_string()).ok();
        depth
    }

    pub fn consume(&self) {
        let wave = self.rx.recv(); // lint: allow(lock-across, rx is not guarded here; single consumer by design)
        self.handle(wave);
    }
}
