//! L10 pass fixture: the serve closure propagates errors instead of
//! panicking; the only `unwrap` in the file is outside the closure.

// hot-path-root(serve)
pub fn handle_request(req: &[u8]) -> Result<u32, Error> {
    let v = decode(req)?;
    Ok(double(v))
}

fn decode(req: &[u8]) -> Result<u32, Error> {
    match req.first() {
        Some(b) => Ok(u32::from(*b)),
        None => Err(Error::Empty),
    }
}

fn double(v: u32) -> u32 {
    v.saturating_mul(2)
}

pub fn offline_tool(xs: &[u32]) -> u32 {
    xs.iter().copied().max().unwrap() // unreachable from the serve root
}
