//! L11 pass fixture: `total_cmp` comparators, a sorted-key float sum,
//! and an integer count over hash iteration (associative, so order-free).

use rustc_hash::FxHashMap;

pub fn pick(a: f32, b: f32) -> std::cmp::Ordering {
    a.total_cmp(&b)
}

pub fn order(xs: &mut [f32]) {
    xs.sort_by(|a, b| a.total_cmp(b));
}

pub fn total(m: &FxHashMap<u64, f32>) -> f32 {
    let mut keys: Vec<u64> = m.keys().copied().collect();
    keys.sort_unstable();
    keys.iter().map(|k| m[k]).sum::<f32>()
}

pub fn live_entries(m: &FxHashMap<u64, f32>) -> usize {
    m.values().filter(|v| v.is_finite()).count()
}
