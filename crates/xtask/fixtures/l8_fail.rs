//! L8 fail fixture: `hits` is a pub atomic field (any caller can bump it
//! past the merge path), and `hit_rate` reads two counters with separate
//! loads — a torn snapshot whose ratio can leave [0, 1].

pub struct Counters {
    pub hits: AtomicU64,
    lookups: AtomicU64,
}

impl Counters {
    pub fn hit_rate(&self) -> f64 {
        let hits = self.hits.load(Ordering::Relaxed);
        let lookups = self.lookups.load(Ordering::Relaxed);
        hits as f64 / lookups.max(1) as f64
    }
}
