//! L4 pass fixture: every public mutator of shared cache state documents
//! its `# Invariants`; read-only accessors need none.

pub struct Counter {
    hits: std::sync::atomic::AtomicU64,
    limit: usize,
    items: Vec<u64>,
}

impl Counter {
    /// Records one hit.
    ///
    /// # Invariants
    ///
    /// - The hit counter is monotonically non-decreasing.
    pub fn record(&self) {
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Inserts a key, evicting the oldest entry at capacity.
    ///
    /// # Invariants
    ///
    /// - `self.items.len() <= self.limit` holds on return.
    /// - Keys already present are not duplicated.
    pub fn insert(&mut self, key: u64) {
        if !self.items.contains(&key) {
            if self.items.len() == self.limit {
                self.items.remove(0);
            }
            self.items.push(key);
        }
    }

    /// Read-only accessors carry no mutation, so no section is required.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}
