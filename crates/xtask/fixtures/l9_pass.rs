//! L9 pass fixture: the root's steady state reuses scratch buffers; the
//! one growth site carries an `// alloc-ok:` reason, the one-time pool
//! construction is `// cold-path:`, and the allocating helper outside the
//! closure is simply unreachable.

// hot-path-root(alloc)
pub fn embed_wave(xs: &mut [f32], scratch: &mut Scratch) {
    ensure_ready(scratch);
    let n = prepare(xs, scratch);
    finish(xs, n);
}

// cold-path: one-time pool construction before the first wave is admitted
fn ensure_ready(scratch: &mut Scratch) {
    if scratch.pool.is_empty() {
        scratch.pool = Vec::with_capacity(64);
    }
}

fn prepare(xs: &[f32], scratch: &mut Scratch) -> usize {
    scratch.idx.clear();
    scratch.idx.push(xs.len()); // alloc-ok: grows to the high-water mark once, then reuses
    xs.len()
}

fn finish(xs: &mut [f32], n: usize) {
    for x in xs.iter_mut().take(n) {
        *x += 1.0;
    }
}

pub fn offline_report(xs: &[f32]) -> Vec<f32> {
    xs.to_vec() // unreachable from the root: not a finding
}
