//! L2 pass fixture: widening casts, annotated narrowings, and test-only
//! casts are all permitted.

pub fn widen(node: u32, n: usize) -> (usize, u64, f64) {
    (node as usize, n as u64, n as f64)
}

pub fn annotated(total: usize) -> f32 {
    total as f32 // lint: allow(lossy-cast, batch sizes stay far below 2^24)
}

pub fn checked(big: u64) -> Result<u32, String> {
    u32::try_from(big).map_err(|_| format!("{big} overflows u32"))
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_cast_freely() {
        let xs: Vec<f32> = (0..10).map(|i| i as f32).collect();
        assert_eq!(xs.len() as u32, 10);
    }
}
