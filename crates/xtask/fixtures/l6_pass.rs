//! L6 pass fixture: the control flag uses Acquire/Release, the pure
//! statistics counter is Relaxed (fine — no one branches on it
//! cross-thread for correctness), and the one deliberate Relaxed read of
//! a control flag carries a `relaxed-ok` justification.

pub struct Queue {
    closed: AtomicBool,
    depth: AtomicUsize,
}

impl Queue {
    pub fn close(&self) {
        self.closed.store(true, Ordering::Release);
    }

    pub fn is_closed(&self) -> bool {
        self.closed.load(Ordering::Acquire)
    }

    pub fn is_closed_hint(&self) -> bool {
        // relaxed-ok: advisory fast-path only; callers re-check under the lock
        self.closed.load(Ordering::Relaxed)
    }

    pub fn note_push(&self) {
        self.depth.fetch_add(1, Ordering::Relaxed);
    }

    pub fn depth(&self) -> usize {
        self.depth.load(Ordering::Relaxed)
    }
}
