//! The line-oriented policy lints L1–L4 (see the [`super`] docs for the
//! full rule listing and DESIGN.md "Error handling & lint policy" for the
//! rationale).
//!
//! L2 details worth keeping next to the code: `as f32` and `as u32` always
//! narrow from this workspace's wider arithmetic types (usize / u64 / f64)
//! and are always flagged; `as usize` is flagged only when the source is
//! float-like (a `.round()`-style chain or one of the repo's conventional
//! f32 timestamp names). Widening or same-width casts are not findings.
//! For L3, the `std::collections::hash_map::Entry` API is fine: it is an
//! accessor type, not a hasher choice. For L4, mutation is detected as a
//! `&mut self` receiver or a body that takes a write lock (`.write()`) or
//! bumps shared counters (`.fetch_add(` / `.fetch_sub(`).

use super::calls::PANIC_PATTERNS;
use super::{bounded_matches, is_ident_byte, Finding, Lint};
use crate::source::SourceFile;

// --- L1: panic -------------------------------------------------------------

pub(crate) fn lint_panic(src: &SourceFile, out: &mut Vec<Finding>) {
    for &(pattern, message) in PANIC_PATTERNS {
        for at in bounded_matches(&src.code, pattern) {
            let line = src.line_of(at);
            if src.is_test_line(line) || src.is_allowed(line, Lint::Panic.name()) {
                continue;
            }
            out.push(Finding {
                lint: Lint::Panic,
                file: src.path.clone(),
                line,
                message: message.to_string(),
            });
        }
    }
    out.sort_by_key(|f| f.line);
}

// --- L2: lossy-cast --------------------------------------------------------

/// Float-producing method calls: `x.round() as usize` truncates a float.
const FLOAT_METHODS: &[&str] = &["round()", "floor()", "ceil()", "trunc()", "sqrt()", "abs()"];

/// The repo's conventional f32 timestamp/delta variable names (`Time` is an
/// `f32` alias); `dt as usize` is a float truncation even though the source
/// type is not spelled at the cast site.
const FLOAT_IDENTS: &[&str] = &["dt", "ts", "time", "t"];

pub(crate) fn lint_lossy_cast(src: &SourceFile, out: &mut Vec<Finding>) {
    for at in bounded_matches(&src.code, "as") {
        let bytes = src.code.as_bytes();
        let after = at + 2;
        if after >= bytes.len() || is_ident_byte(bytes[after]) {
            continue; // `assert`, `cast`, etc.
        }
        let rest = src.code[after..].trim_start();
        let target: String =
            rest.bytes().take_while(|&b| is_ident_byte(b)).map(char::from).collect();
        let narrowing = match target.as_str() {
            "f32" | "u32" => true,
            "usize" => source_is_float_like(&src.code[..at]),
            _ => false,
        };
        if !narrowing {
            continue;
        }
        let line = src.line_of(at);
        if src.is_test_line(line) || src.is_allowed(line, Lint::LossyCast.name()) {
            continue;
        }
        out.push(Finding {
            lint: Lint::LossyCast,
            file: src.path.clone(),
            line,
            message: format!(
                "cast to `{target}` can drop bits; annotate with \
                 `// lint: allow(lossy-cast, <why the value fits>)` or widen the type"
            ),
        });
    }
}

/// Heuristic: does the expression ending just before `as` look like an f32/
/// f64 value? True for `.round()`-style chains, chained float casts
/// (`x as f64 as usize`), float literals, and conventional timestamp names.
fn source_is_float_like(before: &str) -> bool {
    let trimmed = before.trim_end();
    if FLOAT_METHODS.iter().any(|m| trimmed.ends_with(m)) {
        return true;
    }
    let tail: String = trimmed
        .bytes()
        .rev()
        .take_while(|&b| is_ident_byte(b) || b == b'.')
        .map(char::from)
        .collect::<String>()
        .chars()
        .rev()
        .collect();
    let last = tail.rsplit('.').next().unwrap_or(&tail);
    if matches!(last, "f32" | "f64") {
        return true; // cast chain
    }
    if last.bytes().next().is_some_and(|b| b.is_ascii_digit()) && tail.contains('.') {
        return true; // float literal like 1.5
    }
    FLOAT_IDENTS.contains(&last)
}

// --- L3: std-hash ----------------------------------------------------------

pub(crate) fn lint_std_hash(src: &SourceFile, out: &mut Vec<Finding>) {
    const PREFIX: &str = "std::collections::";
    for at in bounded_matches(&src.code, PREFIX) {
        let rest = &src.code[at + PREFIX.len()..];
        let offenders: Vec<&str> = if let Some(group) = rest.strip_prefix('{') {
            let inner = &group[..group.find('}').unwrap_or(group.len())];
            inner
                .split(',')
                .map(str::trim)
                .filter(|item| {
                    item.starts_with("HashMap") || item.starts_with("HashSet")
                })
                .collect()
        } else if rest.starts_with("HashMap") {
            vec!["HashMap"]
        } else if rest.starts_with("HashSet") {
            vec!["HashSet"]
        } else {
            // `hash_map::Entry` and friends are accessor types, not a
            // hasher choice — not findings.
            continue;
        };
        for name in offenders {
            let line = src.line_of(at);
            if src.is_test_line(line) || src.is_allowed(line, Lint::StdHash.name()) {
                continue;
            }
            out.push(Finding {
                lint: Lint::StdHash,
                file: src.path.clone(),
                line,
                message: format!(
                    "`std::collections::{name}` (SipHash) on a hot path; \
                     use `rustc_hash::Fx{name}` instead"
                ),
            });
        }
    }
}

// --- L4: missing-invariants ------------------------------------------------

/// Tokens in a `pub fn` that mark it as mutating shared cache state.
const MUTATION_TOKENS: &[&str] = &[".write()", ".fetch_add(", ".fetch_sub("];

pub(crate) fn lint_invariants(src: &SourceFile, out: &mut Vec<Finding>) {
    let bytes = src.code.as_bytes();
    for at in bounded_matches(&src.code, "pub fn ") {
        let line = src.line_of(at);
        if src.is_test_line(line) || src.is_allowed(line, Lint::MissingInvariants.name()) {
            continue;
        }
        // Signature: up to the opening brace, or `;` for a bodyless trait
        // declaration — but a `;` inside `[f32; 4]`-style params is part of
        // the signature, so track bracket depth.
        let mut open = None;
        let mut nest = 0i32;
        for (j, &b) in bytes[at..].iter().enumerate() {
            match b {
                b'(' | b'[' | b'<' => nest += 1,
                b')' | b']' | b'>' => nest -= 1,
                b'{' => {
                    open = Some(at + j);
                    break;
                }
                b';' if nest <= 0 => break,
                _ => {}
            }
        }
        let Some(open) = open else { continue };
        let signature = &src.code[at..open];
        // Body span via brace matching.
        let mut depth = 0usize;
        let mut close = open;
        for (j, &b) in bytes[open..].iter().enumerate() {
            match b {
                b'{' => depth += 1,
                b'}' => {
                    depth -= 1;
                    if depth == 0 {
                        close = open + j;
                        break;
                    }
                }
                _ => {}
            }
        }
        let body = &src.code[open..=close.max(open)];
        let mutates = signature.contains("&mut self")
            || MUTATION_TOKENS.iter().any(|t| body.contains(t));
        if !mutates {
            continue;
        }
        if doc_block_has_invariants(src, line) {
            continue;
        }
        let fn_name: String = src.code[at + "pub fn ".len()..]
            .bytes()
            .take_while(|&b| is_ident_byte(b))
            .map(char::from)
            .collect();
        out.push(Finding {
            lint: Lint::MissingInvariants,
            file: src.path.clone(),
            line,
            message: format!(
                "`pub fn {fn_name}` mutates shared cache state but its doc \
                 comment has no `# Invariants` section"
            ),
        });
    }
}

/// Walks the contiguous doc-comment/attribute block directly above
/// 1-based `fn_line` in the raw text, looking for `# Invariants`.
fn doc_block_has_invariants(src: &SourceFile, fn_line: usize) -> bool {
    let lines: Vec<&str> = src.raw.lines().collect();
    let mut i = fn_line.saturating_sub(1); // index of the fn line
    while i > 0 {
        let above = lines[i - 1].trim_start();
        if above.starts_with("///") || above.starts_with("#[") || above.starts_with("//") {
            if above.starts_with("///") && above.contains("# Invariants") {
                return true;
            }
            i -= 1;
        } else {
            break;
        }
    }
    false
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{lint_source, Scope};

    fn findings(src: &str, scope: Scope) -> Vec<Finding> {
        lint_source(&SourceFile::parse("t.rs", src), scope)
    }

    #[test]
    fn unwrap_or_else_is_not_a_panic_finding() {
        let src = "fn f() { x.unwrap_or_else(|| 0); y.unwrap_or(1); z.unwrap_or_default(); }\n";
        let scope = Scope { panic: true, ..Default::default() };
        assert!(findings(src, scope).is_empty());
    }

    #[test]
    fn asserts_are_allowed_by_l1() {
        let src = "fn f(n: usize) { assert!(n > 0); debug_assert_eq!(n % 2, 0); }\n";
        let scope = Scope { panic: true, ..Default::default() };
        assert!(findings(src, scope).is_empty());
    }

    #[test]
    fn widening_casts_are_not_findings() {
        let src = "fn f(n: u32, x: f32) -> f64 { let _ = n as usize; let _ = n as u64; x as f64 }\n";
        let scope = Scope { lossy_cast: true, ..Default::default() };
        assert!(findings(src, scope).is_empty());
    }

    #[test]
    fn float_truncation_to_usize_is_flagged() {
        let src = "fn f(x: f64, dt: f32) { let _ = x.round() as usize; let _ = dt as usize; }\n";
        let scope = Scope { lossy_cast: true, ..Default::default() };
        assert_eq!(findings(src, scope).len(), 2);
    }

    #[test]
    fn entry_api_is_not_a_std_hash_finding() {
        let src = "use std::collections::hash_map::Entry;\nfn f() { let _: Entry<u8, u8>; }\n";
        let scope = Scope { std_hash: true, ..Default::default() };
        assert!(findings(src, scope).is_empty());
    }

    #[test]
    fn grouped_std_hash_import_is_flagged() {
        let src = "use std::collections::{HashMap, VecDeque};\n";
        let scope = Scope { std_hash: true, ..Default::default() };
        let f = findings(src, scope);
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("FxHashMap"));
    }

    #[test]
    fn allow_annotation_suppresses_on_its_line_only() {
        let src = "fn f(n: u64) {\n    let a = n as u32; // lint: allow(lossy-cast, n < 4e9)\n    let b = n as u32;\n}\n";
        let scope = Scope { lossy_cast: true, ..Default::default() };
        let f = findings(src, scope);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 3);
    }

    #[test]
    fn mut_self_without_invariants_doc_is_flagged() {
        let src = "pub struct C;\nimpl C {\n    pub fn insert(&mut self) {}\n}\n";
        let scope = Scope { invariants: true, ..Default::default() };
        let f = findings(src, scope);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].lint, Lint::MissingInvariants);
    }

    #[test]
    fn invariants_doc_satisfies_l4() {
        let src = "pub struct C;\nimpl C {\n    /// Inserts.\n    ///\n    /// # Invariants\n    ///\n    /// - count <= limit.\n    pub fn insert(&mut self) {}\n}\n";
        let scope = Scope { invariants: true, ..Default::default() };
        assert!(findings(src, scope).is_empty());
    }

    #[test]
    fn read_only_pub_fn_needs_no_invariants() {
        let src = "pub struct C;\nimpl C {\n    pub fn len(&self) -> usize { 0 }\n}\n";
        let scope = Scope { invariants: true, ..Default::default() };
        assert!(findings(src, scope).is_empty());
    }
}
