//! **L11 `float-determinism`** — order- and NaN-sensitive float patterns.
//!
//! The 10k-GPU-hours TGNN evaluation paper (PAPERS.md) documents how
//! easily reported numbers drift under nondeterminism, and PR-5's
//! `HashTimeCache` fix showed the same bug class live in this repo: float
//! results must not depend on hash-iteration order or on `partial_cmp`'s
//! NaN behavior. Three patterns:
//!
//! 1. `a.partial_cmp(b).unwrap()` (or `.expect(…)`) — panics on NaN;
//!    `f32::total_cmp` is total and branch-free.
//! 2. A float comparator built from `partial_cmp` inside `sort_by` /
//!    `sort_unstable_by` / `max_by` / `min_by` — NaN makes the comparator
//!    inconsistent and the result order-dependent. Comparators using
//!    `total_cmp` are clean.
//! 3. Iterating a hash map/set (`FxHashMap` included — Fx is faster, not
//!    ordered) into a numeric accumulation (`.sum()` / `.fold(…)` /
//!    `.product()` / a `+=` loop) — float addition is not associative, so
//!    the result depends on bucket order. Integer turbofish sums
//!    (`.sum::<usize>()` etc.) are associative and exempt.
//!
//! Escape hatch: `// lint: allow(float-determinism, <reason>)`.

use super::{bounded_matches, is_ident_byte, Finding, Lint};
use crate::source::SourceFile;

const SORTERS: &[&str] = &[".sort_by(", ".sort_unstable_by(", ".max_by(", ".min_by("];

const HASH_TYPES: &[&str] = &["HashMap", "HashSet", "FxHashMap", "FxHashSet"];

const INT_TURBOFISH: &[&str] = &[
    "::<usize>", "::<u64>", "::<u32>", "::<u16>", "::<u8>", "::<isize>", "::<i64>", "::<i32>",
    "::<i16>", "::<i8>",
];

pub(crate) fn lint_float_determinism(src: &SourceFile, out: &mut Vec<Finding>) {
    partial_cmp_unwrap(src, out);
    float_sorters(src, out);
    hash_iteration_accumulation(src, out);
    out.sort_by_key(|f| f.line);
    out.dedup();
}

/// Pattern 1: `partial_cmp` immediately unwrapped on the same statement.
fn partial_cmp_unwrap(src: &SourceFile, out: &mut Vec<Finding>) {
    for at in match_all(&src.code, ".partial_cmp(") {
        let Some(close) = paren_close(src.code.as_bytes(), at + ".partial_cmp".len()) else {
            continue;
        };
        let rest = &src.code[close + 1..];
        if !(rest.starts_with(".unwrap()") || rest.starts_with(".expect(")) {
            continue;
        }
        push(src, at, "`partial_cmp(..).unwrap()` panics on NaN; use `f32::total_cmp`", out);
    }
}

/// Pattern 2: `sort_by`-family call whose comparator uses `partial_cmp`.
fn float_sorters(src: &SourceFile, out: &mut Vec<Finding>) {
    let bytes = src.code.as_bytes();
    for sorter in SORTERS {
        for at in match_all(&src.code, sorter) {
            let Some(close) = paren_close(bytes, at + sorter.len() - 1) else { continue };
            let comparator = &src.code[at + sorter.len()..close];
            if comparator.contains("partial_cmp") && !comparator.contains("total_cmp") {
                push(
                    src,
                    at,
                    "float comparator via `partial_cmp` is inconsistent under NaN; \
                     use `f32::total_cmp`",
                    out,
                );
            }
        }
    }
}

/// Pattern 3: hash-container iteration feeding a numeric accumulation.
fn hash_iteration_accumulation(src: &SourceFile, out: &mut Vec<Finding>) {
    let names = hash_container_names(src);
    let bytes = src.code.as_bytes();
    for name in &names {
        // Iterator chains: `m.values().sum::<f32>()`, `m.iter().fold(…)`.
        for method in [".iter()", ".values()", ".keys()", ".into_iter()", ".into_values()"] {
            let pat = format!("{name}{method}");
            for at in bounded_matches(&src.code, &pat) {
                let stmt_end = src.code[at..].find(';').map_or(src.code.len(), |p| at + p);
                let chain = &src.code[at..stmt_end];
                if accumulates_floats(chain) {
                    push(
                        src,
                        at,
                        "numeric accumulation over hash-iteration order is \
                         nondeterministic; sort the keys (or accumulate integers) first",
                        out,
                    );
                }
            }
        }
        // `for … in name { … += … }` loops (`&name`, `name.iter()` both
        // reduce to the name token appearing between `in` and `{`).
        for at in match_all(&src.code, "for ") {
            if at > 0 && is_ident_byte(bytes[at - 1]) {
                continue;
            }
            let Some(rel_in) = src.code[at..].find(" in ") else { continue };
            let after_in = at + rel_in + 4;
            let Some(rel_open) = src.code[after_in..].find('{') else { continue };
            let head = &src.code[after_in..after_in + rel_open];
            if !bounded_matches(head, name).next().is_some() {
                continue;
            }
            let open = after_in + rel_open;
            let Some(close) = brace_close(bytes, open) else { continue };
            if src.code[open..close].contains("+=") {
                push(
                    src,
                    at,
                    "`+=` accumulation in hash-iteration order is nondeterministic \
                     for floats; sort the keys first",
                    out,
                );
            }
        }
    }
}

/// Identifiers declared (or typed) as a hash map/set in this file.
fn hash_container_names(src: &SourceFile) -> Vec<String> {
    let bytes = src.code.as_bytes();
    let mut names: Vec<String> = Vec::new();
    for ty in HASH_TYPES {
        let pats = [
            format!(": {ty}<"),
            format!(": &{ty}<"),
            format!(": &mut {ty}<"),
            format!("= {ty}::"),
            format!(":{ty}<"),
        ];
        for pat in pats {
            for at in match_all(&src.code, &pat) {
                // Identifier ending just before the `:` / `=` (skip back
                // over whitespace and the separator).
                let mut j = at;
                while j > 0 && (bytes[j - 1] == b' ' || bytes[j - 1] == b':' || bytes[j - 1] == b'=')
                {
                    j -= 1;
                }
                let end = j;
                while j > 0 && is_ident_byte(bytes[j - 1]) {
                    j -= 1;
                }
                if j < end {
                    let name = src.code[j..end].to_string();
                    if name != "mut" && !names.contains(&name) {
                        names.push(name);
                    }
                }
            }
        }
    }
    names
}

/// Does an iterator chain end in a float-valued accumulation?
fn accumulates_floats(chain: &str) -> bool {
    for acc in [".sum(", ".sum::<", ".product(", ".product::<", ".fold("] {
        let Some(at) = chain.find(acc) else { continue };
        let tail = &chain[at..];
        if INT_TURBOFISH.iter().any(|t| tail.starts_with(&format!(".sum{t}"))
            || tail.starts_with(&format!(".product{t}")))
        {
            continue; // integer accumulation is associative
        }
        if tail.starts_with(".sum::<") || tail.starts_with(".product::<") {
            // A turbofish that is not an integer type: float (or exotic).
            let args = &tail[tail.find('<').map_or(0, |p| p + 1)..];
            if INT_TURBOFISH.iter().any(|t| args.starts_with(&t[3..])) {
                continue;
            }
        }
        return true;
    }
    false
}

fn push(src: &SourceFile, at: usize, message: &str, out: &mut Vec<Finding>) {
    let line = src.line_of(at);
    if src.is_test_line(line) || src.is_allowed(line, Lint::FloatDeterminism.name()) {
        return;
    }
    out.push(Finding {
        lint: Lint::FloatDeterminism,
        file: src.path.clone(),
        line,
        message: message.to_string(),
    });
}

/// All occurrences, no word-boundary requirement (patterns here start
/// with `.` or carry their own trailing delimiter).
fn match_all<'a>(hay: &'a str, needle: &'a str) -> impl Iterator<Item = usize> + 'a {
    let mut from = 0;
    std::iter::from_fn(move || {
        let pos = hay[from..].find(needle)?;
        let at = from + pos;
        from = at + 1;
        Some(at)
    })
}

/// Index of the `)` matching the `(` at `open`.
fn paren_close(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'(' => depth += 1,
            b')' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + j);
                }
            }
            _ => {}
        }
    }
    None
}

fn brace_close(bytes: &[u8], open: usize) -> Option<usize> {
    let mut depth = 0usize;
    for (j, &b) in bytes[open..].iter().enumerate() {
        match b {
            b'{' => depth += 1,
            b'}' => {
                depth -= 1;
                if depth == 0 {
                    return Some(open + j);
                }
            }
            _ => {}
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rules::{lint_source, Scope};

    fn findings(src: &str) -> Vec<Finding> {
        let scope = Scope { float_determinism: true, ..Scope::default() };
        lint_source(&SourceFile::parse("t.rs", src), scope)
    }

    #[test]
    fn partial_cmp_unwrap_is_flagged() {
        let src = "fn f(a: f32, b: f32) { let _ = a.partial_cmp(&b).unwrap(); }\n";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn total_cmp_sort_is_clean() {
        let src = "fn f(xs: &mut [f32]) { xs.sort_by(|a, b| a.total_cmp(b)); }\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn partial_cmp_sort_is_flagged() {
        let src = "fn f(xs: &mut [f32]) { xs.sort_by(|a, b| a.partial_cmp(b).unwrap()); }\n";
        let f = findings(src);
        assert!(!f.is_empty());
        assert!(f.iter().any(|x| x.message.contains("total_cmp")));
    }

    #[test]
    fn float_sum_over_hash_values_is_flagged() {
        let src = "use rustc_hash::FxHashMap;\nfn f(m: &FxHashMap<u64, f32>) -> f32 {\n    let m: FxHashMap<u64, f32> = m.clone();\n    m.values().sum::<f32>()\n}\n";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn integer_count_over_hash_values_is_clean() {
        let src = "fn f() {\n    let m: FxHashMap<u64, u64> = FxHashMap::default();\n    let _ = m.values().sum::<u64>();\n}\n";
        assert!(findings(src).is_empty());
    }

    #[test]
    fn accumulating_for_loop_over_hash_map_is_flagged() {
        let src = "fn f() {\n    let m: FxHashMap<u64, f32> = FxHashMap::default();\n    let mut acc = 0.0;\n    for (_, v) in &m { acc += v; }\n}\n";
        assert_eq!(findings(src).len(), 1);
    }

    #[test]
    fn vec_iteration_is_clean() {
        let src = "fn f(xs: &[f32]) -> f32 { xs.iter().sum::<f32>() }\n";
        assert!(findings(src).is_empty());
    }
}
