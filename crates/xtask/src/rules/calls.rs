//! Shared call-pattern tables: the single source of truth for the call
//! classifications used by more than one rule.
//!
//! * [`PANIC_PATTERNS`] — panicking constructs. L1 (`panic`) flags them at
//!   file scope; L10 (`panic-reach`) flags them anywhere transitively
//!   reachable from a serve hot-path root.
//! * [`EXPENSIVE_CALLS`] — calls that must not run under a lock guard
//!   (L7 `lock-across`), and that the call-graph walker treats as leaf
//!   externals rather than workspace edges.
//! * [`ALLOC_CALLS`] — heap-allocating constructs. The runtime
//!   steady-state zero-alloc assertions (PR-4/5) check a handful of entry
//!   points empirically; L9 (`hot-path-alloc`) checks *everything*
//!   reachable from a `// hot-path-root` statically against this table.
//!
//! Keeping the tables in one module means a pattern added for one rule is
//! automatically considered by its siblings — the L7/L9/L10 drift this
//! file exists to prevent.

/// Panicking constructs, with the message L1/L10 attach to a finding.
pub const PANIC_PATTERNS: &[(&str, &str)] = &[
    (".unwrap()", "`.unwrap()` panics on Err/None; return a `TgError` instead"),
    (".expect(", "`.expect(...)` panics on Err/None; return a `TgError` instead"),
    ("panic!", "`panic!` in library code; return a `TgError` instead"),
    ("unreachable!", "`unreachable!` in library code; restructure so the compiler proves it"),
    ("todo!", "`todo!` must not ship in library code"),
    ("unimplemented!", "`unimplemented!` must not ship in library code"),
];

/// Calls that must not run under a lock guard (L7): inference and matmul
/// hot-path entry points, blocking channel/thread operations, and file
/// I/O. Condvar waits are deliberately absent — waiting *requires* the
/// guard.
pub const EXPENSIVE_CALLS: &[&str] = &[
    "embed_batch(",
    "matmul(",
    ".recv()",
    ".recv_timeout(",
    ".join()",
    "thread::sleep",
    "std::fs::",
    "File::open",
    "File::create",
    "read_to_string(",
    "write_all(",
    ".await",
];

/// Blocking constructs, classified for the effect engine (L13/L14). Each
/// entry is `(pattern, kind, auto_bounded)`:
///
/// * `pattern` — matched against the blanked code view; every pattern here
///   is also in [`EXPENSIVE_CALLS`] (unit-tested below) so L7 and the
///   `Blocking` effect never drift apart.
/// * `kind` — the short label carried by `Effect::Blocking` (`recv`,
///   `join`, `sleep`, `file-io`, `await`).
/// * `auto_bounded` — true for constructs that bound their own wait
///   (`recv_timeout`, `sleep`): L14 (`deadline-safety`) accepts them
///   without a `// bounded-by: <reason>` annotation.
///
/// `embed_batch(`/`matmul(` stay L7-only: they are expensive *compute*,
/// not unbounded waits, so they don't produce a `Blocking` effect.
pub const BLOCKING_CALLS: &[(&str, &str, bool)] = &[
    (".recv()", "recv", false),
    (".recv_timeout(", "recv", true),
    (".join()", "join", false),
    ("thread::sleep", "sleep", true),
    ("std::fs::", "file-io", false),
    ("File::open", "file-io", false),
    ("File::create", "file-io", false),
    ("read_to_string(", "file-io", false),
    ("write_all(", "file-io", false),
    (".await", "await", false),
];

/// Heap-allocating constructs flagged by L9 (`hot-path-alloc`) when they
/// are reachable from a `// hot-path-root`, unless the line (or the
/// enclosing fn's declaration line) carries `// alloc-ok: <reason>`.
///
/// `Tensor::zeros(` / `Tensor::full(` are this workspace's idiomatic
/// buffer constructors — spelled here so a hot path that "hides" an
/// allocation behind them is still caught even though the `vec![]` lives
/// inside `tg-tensor`.
pub const ALLOC_CALLS: &[(&str, &str)] = &[
    ("Vec::new(", "`Vec::new` allocates on first push; take a scratch buffer instead"),
    ("Vec::with_capacity(", "`Vec::with_capacity` heap-allocates; take a scratch buffer instead"),
    ("vec![", "`vec![...]` heap-allocates; take a scratch buffer instead"),
    (".to_vec()", "`.to_vec()` clones into a fresh heap buffer"),
    (".collect()", "`.collect()` materializes a fresh container"),
    (".collect::<", "`.collect::<...>()` materializes a fresh container"),
    (".push(", "`.push` can grow its container; reserve up front or reuse a scratch buffer"),
    ("format!", "`format!` allocates a `String`"),
    ("Box::new(", "`Box::new` heap-allocates"),
    ("String::new(", "`String::new` allocates on first push"),
    ("String::from(", "`String::from` heap-allocates"),
    (".to_string(", "`.to_string()` allocates a `String`"),
    ("Tensor::zeros(", "`Tensor::zeros` heap-allocates a buffer; use the scratch arena"),
    ("Tensor::full(", "`Tensor::full` heap-allocates a buffer; use the scratch arena"),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_blocking_call_is_also_an_expensive_call() {
        // L7 (lock-across) and the Blocking effect must classify the same
        // constructs; a wait pattern added to one table but not the other
        // would let L13/L14 and L7 disagree about what "blocking" means.
        for (pattern, _, _) in BLOCKING_CALLS {
            assert!(
                EXPENSIVE_CALLS.contains(pattern),
                "BLOCKING_CALLS entry `{pattern}` missing from EXPENSIVE_CALLS"
            );
        }
    }

    #[test]
    fn auto_bounded_flags_match_the_construct_semantics() {
        for &(pattern, kind, auto_bounded) in BLOCKING_CALLS {
            let bounds_itself = pattern.contains("timeout") || kind == "sleep";
            assert_eq!(
                auto_bounded, bounds_itself,
                "`{pattern}` auto_bounded flag disagrees with its semantics"
            );
        }
    }
}
