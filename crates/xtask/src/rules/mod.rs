//! The repo-specific lints (see DESIGN.md "Error handling & lint policy"
//! and "Concurrency model").
//!
//! Line-oriented policy rules ([`basic`]):
//!
//! - **L1 `panic`** — no `.unwrap()` / `.expect(...)` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test library code.
//! - **L2 `lossy-cast`** — no narrowing numeric casts without an
//!   annotation stating why the value fits.
//! - **L3 `std-hash`** — hot-path files must use `FxHashMap`/`FxHashSet`,
//!   never SipHash `std::collections` maps.
//! - **L4 `missing-invariants`** — `pub fn`s mutating shared cache state
//!   must document an `# Invariants` section.
//!
//! Concurrency-safety rules (this PR's [`concurrency`], [`atomics`], and
//! [`counters`] modules, backed by the [`crate::scopes`] walker and the
//! `concurrency.toml` manifest):
//!
//! - **L5 `lock-order`** — the per-crate lock-acquisition graph (which
//!   locks are taken while which are held) must be acyclic and must not
//!   contradict the canonical order declared in `concurrency.toml`.
//! - **L6 `atomics`** — `Ordering::Relaxed` on cross-thread *control*
//!   atomics (every `AtomicBool`, plus the manifest's `control` list)
//!   needs a `// relaxed-ok: <invariant>` justification; load-then-store
//!   sequences on one atomic must use `fetch_*`/`compare_exchange`.
//! - **L7 `lock-across`** — no lock guard may be held across an
//!   expensive or blocking call (`embed_batch`, `matmul`, channel
//!   `recv`, file I/O, `.await`).
//! - **L8 `unguarded-counter`** — accounting state must stay private and
//!   be read through an aggregating `snapshot()`/`merge()` path, never as
//!   `pub` atomic fields or torn multi-counter getters.
//!
//! Every lint honors a same-line `// lint: allow(<name>[, reason])`
//! escape hatch and skips `#[cfg(test)]` items; L6's Relaxed findings use
//! the dedicated `// relaxed-ok: <reason>` form so the justification
//! reads as a memory-ordering invariant, not a lint toggle.

pub mod atomics;
pub mod basic;
pub mod concurrency;
pub mod counters;

pub use concurrency::{check_lock_graph, extract_lock_edges, LockEdge};

use crate::manifest::ConcurrencyManifest;
use crate::source::SourceFile;

/// Which lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    Panic,
    LossyCast,
    StdHash,
    MissingInvariants,
    LockOrder,
    Atomics,
    LockAcross,
    UnguardedCounter,
}

impl Lint {
    /// The name used in `// lint: allow(...)` annotations and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Panic => "panic",
            Lint::LossyCast => "lossy-cast",
            Lint::StdHash => "std-hash",
            Lint::MissingInvariants => "missing-invariants",
            Lint::LockOrder => "lock-order",
            Lint::Atomics => "atomics",
            Lint::LockAcross => "lock-across",
            Lint::UnguardedCounter => "unguarded-counter",
        }
    }
}

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub lint: Lint,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// Which lints apply to a given file (decided by the workspace walker from
/// the file's crate and path).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope {
    pub panic: bool,
    pub lossy_cast: bool,
    pub std_hash: bool,
    pub invariants: bool,
    /// L5. In a whole-workspace run the walker disables this per-file flag
    /// and checks the aggregated per-crate graph instead (a cycle can span
    /// two files); single-file runs (fixtures) check the file's own graph.
    pub lock_order: bool,
    /// L6.
    pub atomics: bool,
    /// L7.
    pub lock_across: bool,
    /// L8.
    pub counters: bool,
}

impl Scope {
    pub fn all() -> Self {
        Self {
            panic: true,
            lossy_cast: true,
            std_hash: true,
            invariants: true,
            lock_order: true,
            atomics: true,
            lock_across: true,
            counters: true,
        }
    }

    /// The scope for integration-test files of covered crates: panics are
    /// the test harness's failure mechanism, but a deadlock or a guard
    /// held across a blocking call hangs CI just as hard in a test.
    pub fn concurrency_only() -> Self {
        Self { lock_order: true, atomics: true, lock_across: true, ..Self::default() }
    }
}

/// Runs every in-scope lint over one parsed file with no manifest (the
/// canonical-order and control-atomics checks degrade gracefully).
pub fn lint_source(src: &SourceFile, scope: Scope) -> Vec<Finding> {
    lint_source_with(src, scope, &ConcurrencyManifest::default())
}

/// Runs every in-scope lint over one parsed file against `manifest`.
pub fn lint_source_with(
    src: &SourceFile,
    scope: Scope,
    manifest: &ConcurrencyManifest,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if scope.panic {
        basic::lint_panic(src, &mut out);
    }
    if scope.lossy_cast {
        basic::lint_lossy_cast(src, &mut out);
    }
    if scope.std_hash {
        basic::lint_std_hash(src, &mut out);
    }
    if scope.invariants {
        basic::lint_invariants(src, &mut out);
    }
    if scope.lock_order {
        let edges = concurrency::extract_lock_edges(src);
        out.extend(concurrency::check_lock_graph(&edges, manifest));
    }
    if scope.atomics {
        atomics::lint_atomics(src, manifest, &mut out);
    }
    if scope.lock_across {
        concurrency::lint_lock_across(src, &mut out);
    }
    if scope.counters {
        counters::lint_unguarded_counter(src, &mut out);
    }
    out
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Offsets of every occurrence of `needle` in `hay` where the preceding
/// byte is not part of an identifier (word-boundary on the left).
pub(crate) fn bounded_matches<'a>(
    hay: &'a str,
    needle: &'a str,
) -> impl Iterator<Item = usize> + 'a {
    let bytes = hay.as_bytes();
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(pos) = hay[from..].find(needle) {
            let at = from + pos;
            from = at + 1;
            if at == 0 || !is_ident_byte(bytes[at - 1]) {
                return Some(at);
            }
        }
        None
    })
}
