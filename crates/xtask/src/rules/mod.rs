//! The repo-specific lints (see DESIGN.md "Error handling & lint policy"
//! and "Concurrency model").
//!
//! Line-oriented policy rules ([`basic`]):
//!
//! - **L1 `panic`** — no `.unwrap()` / `.expect(...)` / `panic!` /
//!   `unreachable!` / `todo!` / `unimplemented!` in non-test library code.
//! - **L2 `lossy-cast`** — no narrowing numeric casts without an
//!   annotation stating why the value fits.
//! - **L3 `std-hash`** — hot-path files must use `FxHashMap`/`FxHashSet`,
//!   never SipHash `std::collections` maps.
//! - **L4 `missing-invariants`** — `pub fn`s mutating shared cache state
//!   must document an `# Invariants` section.
//!
//! Concurrency-safety rules (this PR's [`concurrency`], [`atomics`], and
//! [`counters`] modules, backed by the [`crate::scopes`] walker and the
//! `concurrency.toml` manifest):
//!
//! - **L5 `lock-order`** — the per-crate lock-acquisition graph (which
//!   locks are taken while which are held) must be acyclic and must not
//!   contradict the canonical order declared in `concurrency.toml`.
//! - **L6 `atomics`** — `Ordering::Relaxed` on cross-thread *control*
//!   atomics (every `AtomicBool`, plus the manifest's `control` list)
//!   needs a `// relaxed-ok: <invariant>` justification; load-then-store
//!   sequences on one atomic must use `fetch_*`/`compare_exchange`.
//! - **L7 `lock-across`** — no lock guard may be held across an
//!   expensive or blocking call (`embed_batch`, `matmul`, channel
//!   `recv`, file I/O, `.await`).
//! - **L8 `unguarded-counter`** — accounting state must stay private and
//!   be read through an aggregating `snapshot()`/`merge()` path, never as
//!   `pub` atomic fields or torn multi-counter getters.
//!
//! Reachability and whole-workspace rules (the [`crate::callgraph`]
//! engine, plus [`determinism`] and [`errors`]):
//!
//! - **L9 `hot-path-alloc`** — no heap allocation (the
//!   [`calls::ALLOC_CALLS`] table) reachable from a `// hot-path-root`
//!   without an `// alloc-ok: <reason>` annotation.
//! - **L10 `panic-reach`** — no panic site reachable from a serve-side
//!   root (`// hot-path-root(serve)`), plus non-literal slice indexing
//!   inside reachable `crates/serve/` code.
//! - **L11 `float-determinism`** — NaN-unsound comparators
//!   (`partial_cmp().unwrap()`, float `sort_by`) and numeric accumulation
//!   over hash-iteration order.
//! - **L12 `error-coverage`** — every `TgError` variant must be both
//!   constructed and matched somewhere in the workspace.
//!
//! Effect-inference rules (the [`crate::effects`] engine: per-function
//! transitive effect summaries over the SCC-condensed call graph):
//!
//! - **L13 `lock-held-effects`** — the interprocedural L7: no call with a
//!   transitive `Blocking`/`LockAcquire`/`Alloc` effect while a lock guard
//!   is live (lock acquisitions checked against the canonical
//!   `concurrency.toml` order; `Alloc` only under `[lock-held] no_alloc`
//!   locks).
//! - **L14 `deadline-safety`** — no unbounded blocking construct reachable
//!   from a serve root without a `// bounded-by: <reason>` annotation.
//! - **L15 `unsafe-audit`** ([`unsafe_audit`]) — every `unsafe` block, fn,
//!   trait, or impl outside `vendor/` needs a `// safety: <reason>`
//!   justification.
//! - **L16 `effects-drift`** — hot-path-root summaries must match the
//!   committed `effects.lock` (whole-workspace only; regenerate with
//!   `UPDATE_EFFECTS_LOCK=1`).
//!
//! Every lint honors a same-line `// lint: allow(<name>[, reason])`
//! escape hatch and skips `#[cfg(test)]` items; L6's Relaxed findings use
//! the dedicated `// relaxed-ok: <reason>` form so the justification
//! reads as a memory-ordering invariant, not a lint toggle. L9's
//! `// alloc-ok:` and the call-graph's `// cold-path:` / `// hot-path-root`
//! markers are documented in [`crate::callgraph`].

pub mod atomics;
pub mod basic;
pub mod calls;
pub mod concurrency;
pub mod counters;
pub mod determinism;
pub mod errors;
pub mod unsafe_audit;

pub use concurrency::{check_lock_graph, extract_lock_edges, LockEdge};
pub use errors::lint_error_coverage;

use crate::manifest::ConcurrencyManifest;
use crate::source::SourceFile;

/// Which lint produced a finding.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Lint {
    Panic,
    LossyCast,
    StdHash,
    MissingInvariants,
    LockOrder,
    Atomics,
    LockAcross,
    UnguardedCounter,
    /// L9 — allocation reachable from a `// hot-path-root` (call-graph).
    HotPathAlloc,
    /// L10 — panic site reachable from a serve root (call-graph).
    PanicReach,
    /// L11 — NaN/order-sensitive float patterns.
    FloatDeterminism,
    /// L12 — `TgError` variants never constructed or never matched.
    ErrorCoverage,
    /// L13 — transitive effect invoked while a lock guard is live.
    LockHeldEffects,
    /// L14 — unbounded blocking reachable from the serve deadline path.
    DeadlineSafety,
    /// L15 — `unsafe` without a `// safety: <reason>` justification.
    UnsafeAudit,
    /// L16 — root effect summaries drifted from the committed
    /// `effects.lock`.
    EffectsDrift,
}

impl Lint {
    /// The name used in `// lint: allow(...)` annotations and JSON output.
    pub fn name(self) -> &'static str {
        match self {
            Lint::Panic => "panic",
            Lint::LossyCast => "lossy-cast",
            Lint::StdHash => "std-hash",
            Lint::MissingInvariants => "missing-invariants",
            Lint::LockOrder => "lock-order",
            Lint::Atomics => "atomics",
            Lint::LockAcross => "lock-across",
            Lint::UnguardedCounter => "unguarded-counter",
            Lint::HotPathAlloc => "hot-path-alloc",
            Lint::PanicReach => "panic-reach",
            Lint::FloatDeterminism => "float-determinism",
            Lint::ErrorCoverage => "error-coverage",
            Lint::LockHeldEffects => "lock-held-effects",
            Lint::DeadlineSafety => "deadline-safety",
            Lint::UnsafeAudit => "unsafe-audit",
            Lint::EffectsDrift => "effects-drift",
        }
    }
}

/// One lint violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Finding {
    pub lint: Lint,
    pub file: String,
    pub line: usize,
    pub message: String,
}

/// Which lints apply to a given file (decided by the workspace walker from
/// the file's crate and path).
#[derive(Clone, Copy, Debug, Default)]
pub struct Scope {
    pub panic: bool,
    pub lossy_cast: bool,
    pub std_hash: bool,
    pub invariants: bool,
    /// L5. In a whole-workspace run the walker disables this per-file flag
    /// and checks the aggregated per-crate graph instead (a cycle can span
    /// two files); single-file runs (fixtures) check the file's own graph.
    pub lock_order: bool,
    /// L6.
    pub atomics: bool,
    /// L7.
    pub lock_across: bool,
    /// L8.
    pub counters: bool,
    /// L9. In a whole-workspace run the walker disables this per-file flag
    /// and checks one graph spanning every crate instead (hot paths cross
    /// crate boundaries); single-file runs (fixtures) build the file's own
    /// graph from its `// hot-path-root` annotations.
    pub hot_path_alloc: bool,
    /// L10. Same per-file/workspace split as L9.
    pub panic_reach: bool,
    /// L13. Same per-file/workspace split as L9 (effects cross crates);
    /// single-file runs check the file's own guarded regions against the
    /// summaries of functions defined in that file.
    pub lock_held: bool,
    /// L14. Same per-file/workspace split as L9.
    pub deadline: bool,
    /// L15. Purely per-file.
    pub unsafe_audit: bool,
    /// L11.
    pub float_determinism: bool,
    /// L12. In a whole-workspace run the walker checks construction and
    /// matching across every file at once; a single-file run covers
    /// fixtures that define their own `TgError`.
    pub error_coverage: bool,
}

impl Scope {
    pub fn all() -> Self {
        Self {
            panic: true,
            lossy_cast: true,
            std_hash: true,
            invariants: true,
            lock_order: true,
            atomics: true,
            lock_across: true,
            counters: true,
            hot_path_alloc: true,
            panic_reach: true,
            lock_held: true,
            deadline: true,
            unsafe_audit: true,
            float_determinism: true,
            error_coverage: true,
        }
    }

    /// The scope for integration-test files of covered crates: panics are
    /// the test harness's failure mechanism, but a deadlock or a guard
    /// held across a blocking call hangs CI just as hard in a test.
    pub fn concurrency_only() -> Self {
        Self { lock_order: true, atomics: true, lock_across: true, ..Self::default() }
    }
}

/// Runs every in-scope lint over one parsed file with no manifest (the
/// canonical-order and control-atomics checks degrade gracefully).
pub fn lint_source(src: &SourceFile, scope: Scope) -> Vec<Finding> {
    lint_source_with(src, scope, &ConcurrencyManifest::default())
}

/// Runs every in-scope lint over one parsed file against `manifest`.
pub fn lint_source_with(
    src: &SourceFile,
    scope: Scope,
    manifest: &ConcurrencyManifest,
) -> Vec<Finding> {
    let mut out = Vec::new();
    if scope.panic {
        basic::lint_panic(src, &mut out);
    }
    if scope.lossy_cast {
        basic::lint_lossy_cast(src, &mut out);
    }
    if scope.std_hash {
        basic::lint_std_hash(src, &mut out);
    }
    if scope.invariants {
        basic::lint_invariants(src, &mut out);
    }
    if scope.lock_order {
        let edges = concurrency::extract_lock_edges(src);
        out.extend(concurrency::check_lock_graph(&edges, manifest));
    }
    if scope.atomics {
        atomics::lint_atomics(src, manifest, &mut out);
    }
    if scope.lock_across {
        concurrency::lint_lock_across(src, &mut out);
    }
    if scope.counters {
        counters::lint_unguarded_counter(src, &mut out);
    }
    if scope.float_determinism {
        determinism::lint_float_determinism(src, &mut out);
    }
    if scope.unsafe_audit {
        unsafe_audit::lint_unsafe_audit(src, &mut out);
    }
    if scope.hot_path_alloc || scope.panic_reach || scope.lock_held || scope.deadline {
        // Single-file effect inference (fixtures): the file's own
        // `// hot-path-root` annotations seed the closures and its own
        // function set bounds the summaries.
        let sources = std::slice::from_ref(src);
        let engine = crate::effects::EffectEngine::build(sources);
        if scope.hot_path_alloc {
            out.extend(engine.lint_hot_path_alloc());
        }
        if scope.panic_reach {
            out.extend(engine.lint_panic_reach());
        }
        if scope.lock_held {
            out.extend(engine.lint_lock_held(manifest));
        }
        if scope.deadline {
            out.extend(engine.lint_deadline());
        }
    }
    if scope.error_coverage {
        out.extend(errors::lint_error_coverage(&[src]));
    }
    out
}

pub(crate) fn is_ident_byte(b: u8) -> bool {
    b.is_ascii_alphanumeric() || b == b'_'
}

/// Offsets of every occurrence of `needle` in `hay` where the preceding
/// byte is not part of an identifier (word-boundary on the left).
pub(crate) fn bounded_matches<'a>(
    hay: &'a str,
    needle: &'a str,
) -> impl Iterator<Item = usize> + 'a {
    let bytes = hay.as_bytes();
    let mut from = 0;
    std::iter::from_fn(move || {
        while let Some(pos) = hay[from..].find(needle) {
            let at = from + pos;
            from = at + 1;
            if at == 0 || !is_ident_byte(bytes[at - 1]) {
                return Some(at);
            }
        }
        None
    })
}
